package approxiot

import (
	"time"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/sample"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/workload"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Estimator is the single-node form of ApproxIoT (§III-C case i): feed it a
// stream of readings, close a window whenever you want answers, and get
// approximate SUM/MEAN/COUNT with confidence intervals. Internally it is one
// sampling node and a query engine — the same code the full tree runs.
//
// Estimator is not safe for concurrent use; wrap it or shard by goroutine.
type Estimator struct {
	root  *core.Root
	kinds []QueryKind
}

// EstimatorOption customizes an Estimator.
type EstimatorOption func(*estimatorConfig)

type estimatorConfig struct {
	fraction   float64
	confidence Confidence
	kinds      []QueryKind
	seed       uint64
	cost       core.CostFunction
}

// WithAdaptiveBudget installs a feedback controller as the estimator's cost
// function: feed each window's Result back via controller.Observe and the
// sampling fraction converges on the controller's error target (§IV-B).
// This is the single-node installation point; full-tree runs — simulated
// and live — adapt via Config.Adaptive instead, where the runner observes
// every root window itself. Without this option the estimator keeps the
// fixed fraction passed to NewEstimator.
func WithAdaptiveBudget(controller *FeedbackController) EstimatorOption {
	return func(c *estimatorConfig) {
		if controller != nil {
			c.cost = controller
		}
	}
}

// WithQueries sets the aggregates computed per window (default Sum, Mean,
// Count).
func WithQueries(kinds ...QueryKind) EstimatorOption {
	return func(c *estimatorConfig) {
		if len(kinds) > 0 {
			c.kinds = kinds
		}
	}
}

// WithConfidence sets the error-bound level (default 95%).
func WithConfidence(conf Confidence) EstimatorOption {
	return func(c *estimatorConfig) { c.confidence = conf }
}

// WithSeed makes sampling reproducible.
func WithSeed(seed uint64) EstimatorOption {
	return func(c *estimatorConfig) { c.seed = seed }
}

// NewEstimator returns an estimator that keeps the given fraction of each
// window's items, stratified per source. Fractions outside (0, 1] fall
// back to 1 (keep everything); defaults are 95% confidence, queries
// [Sum, Mean, Count], and seed 1.
func NewEstimator(fraction float64, opts ...EstimatorOption) *Estimator {
	cfg := estimatorConfig{
		fraction:   fraction,
		confidence: TwoSigma,
		kinds:      []QueryKind{Sum, Mean, Count},
		seed:       1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.fraction <= 0 || cfg.fraction > 1 {
		cfg.fraction = 1
	}
	if cfg.cost == nil {
		cfg.cost = core.EffectiveFractionBudget{Fraction: cfg.fraction}
	}
	sampler := sample.NewWHS(xrand.New(cfg.seed), sample.WithAllocator(sample.WaterFill{}))
	engine := query.NewEngine(query.WithConfidence(cfg.confidence), query.WithPerSubstream())
	root := core.NewRoot("estimator", sampler, cfg.cost, engine, cfg.kinds...)
	return &Estimator{root: root, kinds: cfg.kinds}
}

// Add feeds one reading into the current window.
func (e *Estimator) Add(source SourceID, value float64) {
	e.AddItem(Item{Source: source, Value: value, Ts: time.Now()})
}

// AddItem feeds one item into the current window.
func (e *Estimator) AddItem(it Item) {
	e.root.IngestItems([]stream.Item{it})
}

// AddBatch feeds a pre-weighted batch — e.g. one produced by an upstream
// ApproxIoT node — into the current window.
func (e *Estimator) AddBatch(b Batch) { e.root.IngestBatch(b) }

// Close ends the current window and returns its approximate answers. The
// estimator is immediately ready for the next window.
func (e *Estimator) Close() WindowResult {
	win, _ := e.root.CloseWindow(time.Now())
	return win
}

// Observed returns the number of items in the current (open) window.
func (e *Estimator) Observed() int { return e.root.Node().Observed() }

// QuantileResult is an approximate quantile with a confidence interval.
type QuantileResult = query.QuantileResult

// GroupEstimate is one sub-stream's entry in a TopK answer.
type GroupEstimate = query.GroupEstimate

// Quantile estimates the q-th quantile of the original values behind a
// window's weighted sample. Extension beyond the paper (§VIII future work).
func Quantile(theta []Batch, q float64) QuantileResult {
	return query.Quantile(theta, q)
}

// TopK ranks sub-streams by estimated SUM over a window's weighted sample.
// Extension beyond the paper (§VIII future work).
func TopK(theta []Batch, k int) []GroupEstimate {
	return query.TopK(theta, k)
}

// CloseTheta ends the current window like Close but also returns the
// window's weighted sample batches (Θ), for use with Quantile and TopK.
func (e *Estimator) CloseTheta() (WindowResult, []Batch) {
	return e.root.CloseWindow(time.Now())
}

// Slider composes consecutive window estimates into a sliding-window
// aggregate with a combined error bound (additive queries: Sum, Count).
type Slider = query.Slider

// NewSlider returns a slider over the last k windows.
func NewSlider(k int) *Slider { return query.NewSlider(k) }

// NewReplay returns a Source that replays recorded items, preserving their
// inter-arrival spacing (optionally compressed via workload.WithSpeedup).
func NewReplay(items []Item) *Replay { return workload.NewReplay(items) }
