package approxiot

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/workload"
)

func gaussianSources(seed uint64, rate float64) func(i int) Source {
	return func(i int) Source {
		return workload.GaussianMicro(seed+uint64(i)*101, rate)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalize()
	if c.Strategy != WHS {
		t.Errorf("default strategy = %v, want WHS", c.Strategy)
	}
	if c.Fraction != 0.1 {
		t.Errorf("default fraction = %g, want 0.1", c.Fraction)
	}
	if c.Tree.Sources != 8 {
		t.Errorf("default tree sources = %d, want testbed's 8", c.Tree.Sources)
	}
	if len(c.Queries) != 1 || c.Queries[0] != Sum {
		t.Errorf("default queries = %v, want [Sum]", c.Queries)
	}
	if c.Confidence != TwoSigma {
		t.Errorf("default confidence = %v, want TwoSigma", c.Confidence)
	}
	if c.Partitions != 1 || c.RootShards != 1 {
		t.Errorf("default partitions/shards = %d/%d, want 1/1", c.Partitions, c.RootShards)
	}
	if c.LayerShards != 1 {
		t.Errorf("default layer shards = %d, want 1", c.LayerShards)
	}
	// RootShards and LayerShards clamp to Partitions rather than erroring
	// at the facade.
	c = Config{Partitions: 2, RootShards: 8, LayerShards: 8}.normalize()
	if c.RootShards != 2 {
		t.Errorf("RootShards = %d, want clamped to Partitions 2", c.RootShards)
	}
	if c.LayerShards != 2 {
		t.Errorf("LayerShards = %d, want clamped to Partitions 2", c.LayerShards)
	}
	// The uniform knob expands to one entry per edge layer (never the root).
	if got := c.layerShards(); len(got) != c.Tree.RootLayer() || got[0] != 2 {
		t.Errorf("layerShards() = %v, want %d entries of 2", got, c.Tree.RootLayer())
	}
	if got := (Config{}).normalize().layerShards(); got != nil {
		t.Errorf("single-member layerShards() = %v, want nil", got)
	}
}

func TestStrategyString(t *testing.T) {
	tests := map[Strategy]string{
		WHS:         "ApproxIoT",
		SRS:         "SRS",
		Native:      "Native",
		ParallelWHS: "ApproxIoT-parallel",
	}
	for s, want := range tests {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestSimulateFacade(t *testing.T) {
	res, err := Simulate(Config{Fraction: 0.5, Queries: []QueryKind{Sum, Count}, Seed: 5},
		gaussianSources(1, 200), 4*time.Second)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Generated == 0 || len(res.Windows) == 0 {
		t.Fatalf("empty simulation: %+v", res)
	}
	if loss := res.AccuracyLoss(Sum); loss > 0.02 {
		t.Fatalf("accuracy loss = %g at 50%%, want < 2%%", loss)
	}
}

func TestSimulateAllStrategies(t *testing.T) {
	for _, s := range []Strategy{WHS, SRS, Native, ParallelWHS} {
		res, err := Simulate(Config{Strategy: s, Fraction: 0.3, Queries: []QueryKind{Sum, Count}},
			gaussianSources(2, 100), 3*time.Second)
		if err != nil {
			t.Fatalf("Simulate(%v): %v", s, err)
		}
		if res.Generated == 0 {
			t.Fatalf("Simulate(%v) generated nothing", s)
		}
		if s == Native && res.AccuracyLoss(Sum) > 1e-9 {
			t.Fatalf("native loss = %g", res.AccuracyLoss(Sum))
		}
	}
}

func TestRunFacadeLive(t *testing.T) {
	res, err := Run(Config{Fraction: 0.25, Queries: []QueryKind{Sum, Count}, Seed: 9},
		gaussianSources(3, 1000), 8000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Produced != 8000 {
		t.Fatalf("produced = %d, want 8000", res.Produced)
	}
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("live count invariant broken: %g vs %d", res.EstimateCount, res.Produced)
	}
}

func TestRunFacadePartitioned(t *testing.T) {
	res, err := Run(Config{Fraction: 0.25, Queries: []QueryKind{Sum, Count},
		Partitions: 4, RootShards: 4, Seed: 9},
		gaussianSources(3, 1000), 8000)
	if err != nil {
		t.Fatalf("Run partitioned: %v", err)
	}
	if res.Produced != 8000 {
		t.Fatalf("produced = %d, want 8000", res.Produced)
	}
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("sharded live count invariant broken: %g vs %d", res.EstimateCount, res.Produced)
	}
}

func TestRunFacadeLayerSharded(t *testing.T) {
	// Every tier of the tree scaled out through the facade: 4-partition
	// topics, every edge node a 4-member group, a 4-shard root — the count
	// invariant must survive the full scale-out.
	res, err := Run(Config{Fraction: 0.25, Queries: []QueryKind{Sum, Count},
		Partitions: 4, RootShards: 4, LayerShards: 4, Seed: 9},
		gaussianSources(3, 1000), 8000)
	if err != nil {
		t.Fatalf("Run layer-sharded: %v", err)
	}
	if res.Produced != 8000 {
		t.Fatalf("produced = %d, want 8000", res.Produced)
	}
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("layer-sharded live count invariant broken: %g vs %d", res.EstimateCount, res.Produced)
	}
	if res.DecodeErrors != 0 {
		t.Fatalf("clean run reported %d decode errors", res.DecodeErrors)
	}
}

func TestRunFacadeAdaptive(t *testing.T) {
	// Config.Adaptive closes the §IV-B loop end to end through the facade:
	// the fraction trajectory is reported, the count invariant holds while
	// the fraction moves, and the run carries live telemetry.
	ctl := NewFeedbackController(0.1, 0.02)
	res, err := Run(Config{Queries: []QueryKind{Sum, Count},
		Partitions: 4, RootShards: 2, LayerShards: 2, Seed: 9,
		Adaptive: ctl, SourceRate: 12000},
		gaussianSources(3, 1000), 12000)
	if err != nil {
		t.Fatalf("Run adaptive: %v", err)
	}
	if res.Produced != 12000 {
		t.Fatalf("produced = %d, want 12000", res.Produced)
	}
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("adaptive live count invariant broken: %g vs %d", res.EstimateCount, res.Produced)
	}
	if len(res.Fractions) != len(res.Windows) || len(res.Fractions) == 0 {
		t.Fatalf("fraction trajectory %d entries over %d windows", len(res.Fractions), len(res.Windows))
	}
	if res.Latency.Count() == 0 || res.Bandwidth.Total() == 0 || len(res.Nodes) == 0 {
		t.Fatal("live telemetry missing on adaptive run")
	}

	// The same controller knob drives Simulate (shared-memory form).
	sim, err := Simulate(Config{Queries: []QueryKind{Sum, Count}, Seed: 9,
		Adaptive: NewFeedbackController(0.1, 0.02)},
		gaussianSources(3, 250), 6*time.Second)
	if err != nil {
		t.Fatalf("Simulate adaptive: %v", err)
	}
	if len(sim.Fractions) != len(sim.Windows) || len(sim.Fractions) == 0 {
		t.Fatalf("sim fraction trajectory %d entries over %d windows", len(sim.Fractions), len(sim.Windows))
	}
}

func TestEstimatorQuickstartFlow(t *testing.T) {
	e := NewEstimator(0.2, WithSeed(7))
	for i := 0; i < 10000; i++ {
		e.Add("sensor-a", 10)
		if i%10 == 0 {
			e.Add("sensor-b", 1000)
		}
	}
	if e.Observed() != 11000 {
		t.Fatalf("Observed = %d, want 11000", e.Observed())
	}
	win := e.Close()
	truth := 10.0*10000 + 1000.0*1000
	sum := win.Result(Sum)
	if sum.Estimate.Value <= 0 {
		t.Fatal("no SUM estimate")
	}
	if loss := math.Abs(sum.Estimate.Value-truth) / truth; loss > 0.05 {
		t.Fatalf("estimator loss = %g, want < 5%%", loss)
	}
	// Constant-valued strata: the error bound should be small relative to
	// the estimate.
	if sum.Bound() > 0.05*sum.Estimate.Value {
		t.Fatalf("bound %g implausibly wide for constant strata", sum.Bound())
	}
	count := win.Result(Count)
	if math.Abs(count.Estimate.Value-11000) > 1e-6 {
		t.Fatalf("COUNT = %g, want exactly 11000 (Eq. 8)", count.Estimate.Value)
	}
	// Per-substream breakdown is on for the estimator.
	if len(sum.PerSubstream) != 2 {
		t.Fatalf("per-substream entries = %d, want 2", len(sum.PerSubstream))
	}
}

func TestEstimatorWindowsAreIndependent(t *testing.T) {
	e := NewEstimator(0.5, WithSeed(1), WithQueries(Count))
	e.Add("s", 1)
	e.Add("s", 1)
	first := e.Close()
	e.Add("s", 1)
	second := e.Close()
	if first.Result(Count).Estimate.Value != 2 {
		t.Fatalf("first window count = %g, want 2", first.Result(Count).Estimate.Value)
	}
	if second.Result(Count).Estimate.Value != 1 {
		t.Fatalf("second window count = %g, want 1", second.Result(Count).Estimate.Value)
	}
}

func TestEstimatorInvalidFractionKeepsEverything(t *testing.T) {
	e := NewEstimator(-3, WithQueries(Count))
	for i := 0; i < 100; i++ {
		e.Add("s", 1)
	}
	win := e.Close()
	if win.SampleSize != 100 {
		t.Fatalf("invalid fraction sampled %d of 100, want census", win.SampleSize)
	}
}

func TestEstimatorAddBatchWeighted(t *testing.T) {
	e := NewEstimator(1, WithQueries(Sum, Count))
	e.AddBatch(Batch{Source: "up", Weight: 3, Items: []Item{
		{Source: "up", Value: 5}, {Source: "up", Value: 3},
	}})
	win := e.Close()
	if got := win.Result(Sum).Estimate.Value; got != 24 {
		t.Fatalf("weighted SUM = %g, want 3·5+3·3 = 24 (Fig. 3)", got)
	}
	if got := win.Result(Count).Estimate.Value; got != 6 {
		t.Fatalf("weighted COUNT = %g, want 6", got)
	}
}

func TestNewGeneratorFacade(t *testing.T) {
	g := NewGenerator(1, SubstreamSpec{Source: "x", Rate: 100, Value: workload.Constant{V: 2}})
	items := g.Generate(time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC), time.Second)
	if len(items) != 100 {
		t.Fatalf("generated %d, want 100", len(items))
	}
}

func TestFeedbackControllerFacade(t *testing.T) {
	fc := NewFeedbackController(0.1, 0.01)
	if fc.Fraction() != 0.1 {
		t.Fatalf("initial fraction = %g", fc.Fraction())
	}
}
