package approxiot_test

import (
	"context"
	"fmt"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

// The estimated COUNT is exact whatever the sampler drops — that is the
// paper's Eq. 8 invariant, which makes this output deterministic even
// though only 10% of the items survive.
func ExampleEstimator() {
	est := approxiot.NewEstimator(0.10,
		approxiot.WithSeed(42),
		approxiot.WithQueries(approxiot.Sum, approxiot.Count),
	)
	for i := 0; i < 5000; i++ {
		est.Add("sensor-a", 2.0)
		est.Add("sensor-b", 10.0)
	}
	win := est.Close()
	fmt.Printf("sampled %d of %.0f items\n", win.SampleSize, win.EstimatedInput)
	fmt.Printf("count = %.0f (exact)\n", win.Result(approxiot.Count).Estimate.Value)
	fmt.Printf("sum   = %.0f (exact here: constant-valued strata)\n",
		win.Result(approxiot.Sum).Estimate.Value)
	// Output:
	// sampled 1000 of 10000 items
	// count = 10000 (exact)
	// sum   = 60000 (exact here: constant-valued strata)
}

// TopK ranks sub-streams by estimated total; with constant values per
// stratum the weighted estimate is exact, so the ranking is deterministic.
func ExampleTopK() {
	est := approxiot.NewEstimator(0.2, approxiot.WithSeed(7), approxiot.WithQueries(approxiot.Sum))
	for i := 0; i < 1000; i++ {
		est.Add("alpha", 1) // total 1000
		est.Add("beta", 5)  // total 5000
		est.Add("gamma", 2) // total 2000
	}
	_, theta := est.CloseTheta()
	for rank, g := range approxiot.TopK(theta, 2) {
		fmt.Printf("#%d %s = %.0f\n", rank+1, g.Source, g.Sum.Value)
	}
	// Output:
	// #1 beta = 5000
	// #2 gamma = 2000
}

// A Slider composes tumbling windows into a sliding aggregate; values and
// variances add.
func ExampleSlider() {
	s := approxiot.NewSlider(3)
	for _, v := range []float64{10, 20, 30, 40} {
		s.Push(approxiot.Estimate{Value: v})
	}
	fmt.Printf("%.0f\n", s.Current().Value) // 20+30+40
	// Output: 90
}

// Simulate runs the paper's whole 8/4/2/1 testbed on virtual time. The
// estimated input count equals the generated count exactly, end to end.
func ExampleSimulate() {
	source := func(i int) approxiot.Source {
		return workload.GaussianMicro(uint64(i)+1, 100)
	}
	res, err := approxiot.Simulate(approxiot.Config{
		Fraction: 0.25,
		Queries:  []approxiot.QueryKind{approxiot.Count},
		Seed:     11,
	}, source, 3*time.Second)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("generated %d, estimated %.0f\n",
		res.Generated, res.TotalEstimate(approxiot.Count))
	// Output: generated 9600, estimated 9600
}

// Open is the session-shaped live entry point: a long-lived Deployment
// handle with push ingestion, streaming window results, and graceful
// shutdown. The Eq. 8 invariant survives sampling, sharding, and the
// drain, so the final estimated count equals what was pushed, exactly.
func ExampleOpen() {
	d, err := approxiot.Open(context.Background(), approxiot.Config{
		Fraction: 0.25,
		Queries:  []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
		Seed:     42,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	items := make([]approxiot.Item, 1000)
	for i := range items {
		items[i].Value = float64(i)
	}
	for _, sensor := range []approxiot.SourceID{"temp-hall", "co2-lab"} {
		if err := d.Ingest(sensor, items...); err != nil {
			fmt.Println(err)
			return
		}
	}
	res, err := d.Close() // drains in-flight windows, returns the merged result
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("pushed %d, estimated count %.0f\n", res.Produced, res.EstimateCount)
	// Output: pushed 2000, estimated count 2000
}
