package approxiot

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/workload"
	"github.com/approxiot/approxiot/internal/xrand"
)

// The extended query surface: TopK, Quantile, Slider, Replay — the paper's
// §VIII future-work items, exercised through the public facade.

func TestTopKThroughEstimator(t *testing.T) {
	e := NewEstimator(0.25, WithSeed(3), WithQueries(Sum))
	rng := xrand.New(1)
	// Three zones with clearly ordered totals.
	for i := 0; i < 30000; i++ {
		e.Add("downtown", rng.Normal(30, 5))
		if i%3 == 0 {
			e.Add("airport", rng.Normal(60, 8))
		}
		if i%100 == 0 {
			e.Add("suburb", rng.Normal(10, 2))
		}
	}
	_, theta := e.CloseTheta()
	top := TopK(theta, 2)
	if len(top) != 2 {
		t.Fatalf("TopK returned %d groups", len(top))
	}
	// downtown ≈ 900k, airport ≈ 600k, suburb ≈ 3k.
	if top[0].Source != "downtown" || top[1].Source != "airport" {
		t.Fatalf("ranking = [%s, %s], want [downtown, airport]", top[0].Source, top[1].Source)
	}
	if top[0].Sum.Value < 800000 || top[0].Sum.Value > 1000000 {
		t.Fatalf("downtown total = %g, want ~900k", top[0].Sum.Value)
	}
}

func TestQuantileThroughEstimator(t *testing.T) {
	e := NewEstimator(0.2, WithSeed(5), WithQueries(Sum))
	rng := xrand.New(2)
	for i := 0; i < 50000; i++ {
		e.Add("s", rng.Normal(1000, 100))
	}
	_, theta := e.CloseTheta()
	med := Quantile(theta, 0.5)
	if math.Abs(med.Value-1000) > 15 {
		t.Fatalf("median = %g, want ~1000", med.Value)
	}
	p99 := Quantile(theta, 0.99)
	want := 1000 + 2.326*100 // z(0.99)·σ
	if math.Abs(p99.Value-want) > 40 {
		t.Fatalf("p99 = %g, want ~%g", p99.Value, want)
	}
	if med.Lo >= med.Hi {
		t.Fatalf("degenerate interval [%g, %g]", med.Lo, med.Hi)
	}
}

func TestSliderOverEstimatorWindows(t *testing.T) {
	e := NewEstimator(0.5, WithSeed(7), WithQueries(Sum))
	slider := NewSlider(3)
	var last Estimate
	truthPerWindow := 1000.0 * 10
	for w := 0; w < 6; w++ {
		for i := 0; i < 1000; i++ {
			e.Add("s", 10)
		}
		last = slider.Push(e.Close().Result(Sum).Estimate)
	}
	// Sliding window = last 3 panes ≈ 3 × per-window truth.
	if math.Abs(last.Value-3*truthPerWindow)/(3*truthPerWindow) > 0.05 {
		t.Fatalf("sliding sum = %g, want ~%g", last.Value, 3*truthPerWindow)
	}
	if slider.Len() != 3 {
		t.Fatalf("slider len = %d, want capped at 3", slider.Len())
	}
}

func TestReplayThroughSimulate(t *testing.T) {
	// Record a synthetic trace, then replay it through the full tree: the
	// pipeline must treat recorded data exactly like generated data.
	epoch := time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)
	gen := workload.GaussianMicro(9, 200)
	var items []Item
	var truth float64
	for w := 0; w < 4; w++ {
		for _, it := range gen.Generate(epoch.Add(time.Duration(w)*time.Second), time.Second) {
			items = append(items, it)
			truth += it.Value
		}
	}

	// One replayed source feeds the tree (others idle).
	source := func(i int) Source {
		if i == 0 {
			return NewReplay(items)
		}
		return NewGenerator(uint64(i)) // no sub-streams: silent
	}
	res, err := Simulate(Config{Fraction: 0.5, Queries: []QueryKind{Sum, Count}, Seed: 4},
		source, 5*time.Second)
	if err != nil {
		t.Fatalf("Simulate(replay): %v", err)
	}
	if res.Generated != int64(len(items)) {
		t.Fatalf("replayed %d of %d items", res.Generated, len(items))
	}
	if got := res.TotalEstimate(Count); math.Abs(got-float64(len(items))) > 1e-6 {
		t.Fatalf("count invariant on replayed trace: %g vs %d", got, len(items))
	}
	if loss := res.AccuracyLoss(Sum); loss > 0.05 {
		t.Fatalf("replay accuracy loss = %g", loss)
	}
}

func TestReplaySpeedupThroughFacade(t *testing.T) {
	base := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	items := []Item{
		{Source: "a", Value: 1, Ts: base},
		{Source: "a", Value: 2, Ts: base.Add(10 * time.Second)},
	}
	r := workload.NewReplay(items, workload.WithSpeedup(20)) // 10s → 0.5s
	out := r.Generate(base, time.Second)
	if len(out) != 2 {
		t.Fatalf("sped-up replay yielded %d items, want 2", len(out))
	}
}
