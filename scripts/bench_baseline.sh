#!/usr/bin/env sh
# Regenerates the tracked-benchmark numbers behind BENCH_baseline.json.
#
# Usage:
#   scripts/bench_baseline.sh            # default scale (48k/24k items per run)
#   APPROXIOT_BENCH_ITEMS=192000 scripts/bench_baseline.sh
#                                        # longer runs: amortizes the fixed
#                                        # ~2-3 window drain tail out of the
#                                        # items/s figure (the EXPERIMENTS.md
#                                        # hot-path numbers use 192000)
#
# Results are machine-dependent: record `nproc` and the cpu: line go test
# prints alongside any numbers you paste into BENCH_baseline.json or
# EXPERIMENTS.md. -benchtime=2x keeps a full sweep under a minute; raise it
# (and prefer the median of a few runs) when updating the baseline file on a
# quiet machine.
set -eu
cd "$(dirname "$0")/.."

echo "# cores: $(nproc 2>/dev/null || sysctl -n hw.ncpu)"
go test -run xxx -bench 'BenchmarkLiveAdaptive|BenchmarkLiveLayerShards|BenchmarkLiveEventTime' -benchtime=2x .
go test -run xxx -bench 'BenchmarkLiveRootShards' -benchtime=2x ./internal/core/
go test -run xxx -bench 'BenchmarkSessionIngest' -benchtime=2000x ./internal/core/
