#!/usr/bin/env bash
# Multi-process smoke: run the 3-tier tree as four OS processes (broker,
# root, mid, leaf) over TCP and assert that
#   1. the root's per-window results match a single-process run of the
#      identical workload exactly (start, end, count, and sample size);
#   2. the cross-process accounting identity holds: the sum of the root's
#      window counts plus every tier's late drops equals what the leaf's
#      valves produced;
#   3. every tier exits 0 on its own once the stream ends, and a broker +
#      idle tier pair drains cleanly on SIGINT.
# Run from the repository root: bash scripts/multiproc_smoke.sh
set -euo pipefail

BIN=${BIN:-/tmp/approxiot-node}
PORT=${PORT:-9412}
ITEMS=${ITEMS:-1000}

go build -o "$BIN" ./cmd/approxiot-node

workdir=$(mktemp -d)
cleanup() {
  kill "$(jobs -p)" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== single-process reference =="
"$BIN" -role single -items "$ITEMS" | tee "$workdir/single.out"

echo "== multi-process run (broker + root + mid + leaf) =="
"$BIN" -role broker -addr "127.0.0.1:$PORT" >"$workdir/broker.out" 2>&1 &
broker=$!
"$BIN" -role root -addr "127.0.0.1:$PORT" >"$workdir/root.out" 2>&1 &
root=$!
"$BIN" -role mid -addr "127.0.0.1:$PORT" >"$workdir/mid.out" 2>&1 &
mid=$!
"$BIN" -role leaf -addr "127.0.0.1:$PORT" -items "$ITEMS" >"$workdir/leaf.out" 2>&1
wait "$root"
wait "$mid"
cat "$workdir/root.out"

# 1. Window equivalence: start, end, count, and zeta must match the
# reference line for line. (The sum field is excluded only because float
# summation order across partitions is not pinned; counts are exact by the
# paper's Eq. 8 telescoping weights and must be identical.)
awk '/^window/{print $2, $3, $4, $6}' "$workdir/single.out" >"$workdir/single.windows"
awk '/^window/{print $2, $3, $4, $6}' "$workdir/root.out" >"$workdir/root.windows"
if ! diff -u "$workdir/single.windows" "$workdir/root.windows"; then
  echo "FAIL: multi-process windows differ from the single-process run" >&2
  exit 1
fi
test -s "$workdir/root.windows" || { echo "FAIL: no windows closed" >&2; exit 1; }
echo "OK: $(wc -l <"$workdir/root.windows") windows identical to the single-process run"

# 2. Accounting identity across processes.
produced=$(grep -o 'produced=[0-9]*' "$workdir/leaf.out" | head -1 | cut -d= -f2)
counts=$(awk -F'count=' '/^window/{split($2, a, " "); s += a[1]} END{printf "%d", s}' "$workdir/root.out")
late=0
for out in leaf mid root; do
  l=$(grep -o 'lateDropped=[0-9]*' "$workdir/$out.out" | head -1 | cut -d= -f2)
  late=$((late + l))
done
if [ $((counts + late)) -ne "$produced" ]; then
  echo "FAIL: window counts ($counts) + late drops ($late) != produced ($produced)" >&2
  exit 1
fi
echo "OK: $counts window items + $late late = $produced produced"

# 3a. The broker drains cleanly on SIGINT.
kill -INT "$broker"
wait "$broker"
echo "OK: broker exited 0 on SIGINT"

# 3b. A tier parked on an endless stream drains cleanly on SIGINT too.
"$BIN" -role broker -addr "127.0.0.1:$((PORT + 1))" >"$workdir/broker2.out" 2>&1 &
broker2=$!
sleep 0.3
timeout --preserve-status -s INT 3s "$BIN" -role root -addr "127.0.0.1:$((PORT + 1))" >"$workdir/root2.out" 2>&1
grep -q 'final role=root' "$workdir/root2.out" || { echo "FAIL: interrupted root printed no summary" >&2; exit 1; }
kill -INT "$broker2"
wait "$broker2"
echo "OK: idle root drained on SIGINT, broker followed"

echo "PASS"
