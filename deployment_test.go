package approxiot

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// deployConfig is the facade config the session tests share: small window so
// several windows close quickly, paced sources so production spans them.
func deployConfig() Config {
	return Config{
		Fraction:   0.25,
		Queries:    []QueryKind{Sum, Count},
		Seed:       7,
		Window:     30 * time.Millisecond,
		SourceRate: 6000,
	}
}

// pushSources drives every slot of the deployment with the generator stream
// Run's built-in client would produce for (seed, items): same quota split,
// same chunking. Deliberately re-implemented rather than shared with the
// wrapper's feed client — the session-vs-Run equivalence assertion is only
// meaningful if the pusher is independent of the code it is compared
// against. Returns once every slot's quota is pushed.
func pushSources(t *testing.T, d *Deployment, seed uint64, items int64) {
	t.Helper()
	source := gaussianSources(seed, 1000)
	sources := deployConfig().normalize().Tree.Sources
	perSource := items / int64(sources)
	remainder := items % int64(sources)
	chunk := 30 * time.Millisecond / 4
	var wg sync.WaitGroup
	for slot := 0; slot < sources; slot++ {
		quota := perSource
		if int64(slot) < remainder {
			quota++
		}
		ing, err := d.Ingester(slot)
		if err != nil {
			t.Errorf("Ingester(%d): %v", slot, err)
			return
		}
		wg.Add(1)
		go func(slot int, quota int64, ing *Ingester) {
			defer wg.Done()
			gen := source(slot)
			now := time.Now()
			var sent int64
			for sent < quota {
				batch := gen.Generate(now, chunk)
				now = now.Add(chunk)
				if len(batch) == 0 {
					continue
				}
				if int64(len(batch)) > quota-sent {
					batch = batch[:quota-sent]
				}
				if err := ing.Push(batch...); err != nil {
					t.Errorf("Push(slot %d): %v", slot, err)
					return
				}
				sent += int64(len(batch))
			}
		}(slot, quota, ing)
	}
	wg.Wait()
}

// TestOpenDeploymentEndToEnd is the facade acceptance path: Open a
// deployment, push items through the valves, receive ≥2 window results over
// the subscription while the run is in flight, read a mid-run Snapshot, and
// get a final LiveResult from Close equivalent to the legacy Run path at the
// same seed and volume.
func TestOpenDeploymentEndToEnd(t *testing.T) {
	const items = 16000
	cfg := deployConfig()
	d, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := d.State(); got != StateIngesting {
		t.Fatalf("state after Open = %v, want ingesting", got)
	}

	windows := d.Windows()
	seen2 := make(chan struct{})
	var live []WindowResult
	var collectWG sync.WaitGroup
	collectWG.Add(1)
	go func() {
		defer collectWG.Done()
		for w := range windows {
			live = append(live, w)
			if len(live) == 2 {
				close(seen2)
			}
		}
	}()

	pushSources(t, d, cfg.Seed, items)

	select {
	case <-seen2:
	case <-time.After(10 * time.Second):
		t.Fatal("did not receive 2 window results while ingesting")
	}

	snap := d.Snapshot()
	if snap.State != StateIngesting {
		t.Fatalf("snapshot state = %v, want ingesting", snap.State)
	}
	if snap.Produced == 0 || snap.RootProcessed == 0 || snap.WindowsClosed < 2 {
		t.Fatalf("snapshot counters implausible: %+v", snap)
	}
	if snap.Latency.Count() == 0 || len(snap.Bandwidth) == 0 || len(snap.Nodes) == 0 {
		t.Fatal("snapshot telemetry empty mid-run")
	}

	res, err := d.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	collectWG.Wait()
	if d.State() != StateClosed {
		t.Fatalf("state after Close = %v, want closed", d.State())
	}

	legacy, err := Run(cfg, gaussianSources(cfg.Seed, 1000), items)
	if err != nil {
		t.Fatalf("legacy Run: %v", err)
	}
	if res.Produced != items || legacy.Produced != items {
		t.Fatalf("produced %d (session) / %d (legacy), want %d", res.Produced, legacy.Produced, items)
	}
	if rel := math.Abs(res.TruthSum-legacy.TruthSum) / math.Abs(legacy.TruthSum); rel > 1e-12 {
		t.Fatalf("truth diverged: %g vs %g", res.TruthSum, legacy.TruthSum)
	}
	for name, r := range map[string]*LiveResult{"session": res, "legacy": legacy} {
		if rel := math.Abs(r.EstimateCount-float64(items)) / items; rel > 1e-9 {
			t.Fatalf("%s: estimated count %.1f, want %d exactly (Eq. 8)", name, r.EstimateCount, items)
		}
	}
	if len(live) == 0 || len(live) > len(res.Windows) {
		t.Fatalf("subscription saw %d windows, result has %d", len(live), len(res.Windows))
	}
}

func TestOpenCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d, err := Open(ctx, deployConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := d.Ingest("sensor-a", Item{Value: 1}, Item{Value: 2}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	cancel()
	select {
	case <-d.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("deployment did not close after cancel")
	}
	if _, err := d.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after cancel err = %v, want context.Canceled", err)
	}
	if !errors.Is(d.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", d.Err())
	}
	if err := d.Ingest("sensor-a", Item{Value: 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after cancel err = %v, want ErrClosed", err)
	}
}

func TestOpenIngestAfterCloseAndSetTarget(t *testing.T) {
	d, err := Open(nil, deployConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := d.SetTarget(0.05); !errors.Is(err, ErrNotAdaptive) {
		t.Fatalf("SetTarget on frozen deployment err = %v, want ErrNotAdaptive", err)
	}
	if _, err := d.Ingester(-1); !errors.Is(err, ErrBadSourceSlot) {
		t.Fatalf("Ingester(-1) err = %v, want ErrBadSourceSlot", err)
	}
	if _, err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Ingest("late", Item{Value: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close err = %v, want ErrClosed", err)
	}

	cfg := deployConfig()
	cfg.Adaptive = NewFeedbackController(0.2, 0.02)
	da, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Open adaptive: %v", err)
	}
	defer da.Close()
	if err := da.SetTarget(0.1); err != nil {
		t.Fatalf("SetTarget: %v", err)
	}
	if got := da.Target(); got != 0.1 {
		t.Fatalf("Target = %v, want 0.1", got)
	}
}

// TestSimulateOnWindowHook closes the facade gap: incremental window
// observation for Simulate via Config.OnWindow, mirroring the live
// Windows() subscription.
func TestSimulateOnWindowHook(t *testing.T) {
	var hooked []WindowResult
	cfg := Config{
		Fraction: 0.2,
		Seed:     5,
		OnWindow: func(w WindowResult) { hooked = append(hooked, w) },
	}
	res, err := Simulate(cfg, gaussianSources(5, 2000), 3*time.Second)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Windows) == 0 {
		t.Fatal("no windows produced")
	}
	if len(hooked) != len(res.Windows) {
		t.Fatalf("OnWindow observed %d windows, result has %d", len(hooked), len(res.Windows))
	}
	for i := range hooked {
		if hooked[i].SampleSize != res.Windows[i].SampleSize {
			t.Fatalf("hooked window %d differs from result window", i)
		}
	}
}

// TestRunOnWindowHook checks the same knob on the live batch path.
func TestRunOnWindowHook(t *testing.T) {
	var mu sync.Mutex
	var hooked int
	cfg := deployConfig()
	cfg.OnWindow = func(WindowResult) {
		mu.Lock()
		hooked++
		mu.Unlock()
	}
	res, err := Run(cfg, gaussianSources(7, 1000), 8000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hooked != len(res.Windows) {
		t.Fatalf("OnWindow ran %d times for %d windows", hooked, len(res.Windows))
	}
}

// TestOpenEventTime drives the event-time mode through the public facade:
// out-of-order pushes within AllowedLateness land in the windows their
// timestamps name (Start/End populated, exact per-window counts), a record
// beyond the horizon is counted into LateDropped, and the streaming
// baselines are rejected.
func TestOpenEventTime(t *testing.T) {
	epoch := time.Now().Truncate(time.Second)
	d, err := Open(context.Background(), Config{
		Fraction:        1, // census: per-window counts are exact and order-free
		Queries:         []QueryKind{Sum, Count},
		Window:          10 * time.Millisecond,
		EventTime:       true,
		AllowedLateness: 5 * time.Second,
		Seed:            11,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Three windows' worth per sensor, pushed in scrambled order.
	order := []int{7, 2, 11, 0, 9, 4, 1, 10, 5, 8, 3, 6} // 12 readings over 3 s
	for slot := 0; slot < 2; slot++ {
		items := make([]Item, 0, len(order))
		for _, k := range order {
			items = append(items, Item{
				Value: 1,
				Ts:    epoch.Add(time.Duration(k) * 250 * time.Millisecond),
			})
		}
		if err := d.Ingest(SourceID(fmt.Sprintf("sensor-%d", slot)), items...); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	res, err := d.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(res.Windows) != 3 {
		t.Fatalf("closed %d windows, want 3", len(res.Windows))
	}
	for i, w := range res.Windows {
		wantStart := epoch.Add(time.Duration(i) * time.Second)
		if !w.Start.Equal(wantStart) || !w.End.Equal(wantStart.Add(time.Second)) {
			t.Fatalf("window %d bounds [%v, %v), want start %v", i, w.Start, w.End, wantStart)
		}
		if got := w.Result(Count).Estimate.Value; got != 8 { // 4 readings × 2 sensors
			t.Fatalf("window %d count %.1f, want 8", i, got)
		}
	}
	if res.LateDropped != 0 {
		t.Fatalf("dropped %d in-horizon records", res.LateDropped)
	}

	// Streaming strategies have no windows to assign records to.
	if _, err := Open(context.Background(), Config{Strategy: SRS, EventTime: true}); !errors.Is(err, ErrEventTimeStreaming) {
		t.Fatalf("SRS+EventTime err = %v, want ErrEventTimeStreaming", err)
	}
}

// TestOpenEventTimeLateDrop pins the facade's late-data surface: a record
// pushed past the horizon shows up in LateDropped (and in Snapshot), never
// in a closed window.
func TestOpenEventTimeLateDrop(t *testing.T) {
	epoch := time.Now().Truncate(time.Second)
	d, err := Open(context.Background(), Config{
		// One source feeding the root directly: with the idle exclusion
		// disabled, every statically-expected producer must actually speak,
		// so the tree must not contain unused source slots.
		Tree:            SingleNode(1),
		Fraction:        1,
		Queries:         []QueryKind{Count},
		Window:          10 * time.Millisecond,
		EventTime:       true,
		AllowedLateness: 0,
		IdleTimeout:     -1, // watermark-driven only: the test controls every close
		Seed:            3,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// In-order stream pushes the watermark to 4 s: windows 0–2 close.
	items := make([]Item, 16)
	for k := range items {
		items[k] = Item{Value: 1, Ts: epoch.Add(time.Duration(k) * 250 * time.Millisecond)}
	}
	if err := d.Ingest("sensor", items...); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	// Wait until the straggler's window has actually closed (the ticker
	// sweeps due windows every Window; RootProcessed alone would only prove
	// the records arrived, not that window 0 is closed territory yet).
	deadline := time.Now().Add(10 * time.Second)
	for d.Snapshot().WindowsClosed < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.Ingest("sensor", Item{Value: 1e9, Ts: epoch.Add(100 * time.Millisecond)}); err != nil {
		t.Fatalf("late Ingest: %v", err)
	}
	res, err := d.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.LateDropped != 1 {
		t.Fatalf("LateDropped = %d, want 1", res.LateDropped)
	}
	var total float64
	for _, w := range res.Windows {
		total += w.Result(Count).Estimate.Value
	}
	if total != 16 {
		t.Fatalf("windows hold %.0f records, want the 16 on-time ones", total)
	}
}

// TestOpsSurface opens a deployment with Config.OpsAddr, exercises all
// three HTTP endpoints against the live pipeline, and verifies the surface
// dies with the Deployment.
func TestOpsSurface(t *testing.T) {
	cfg := deployConfig()
	cfg.OpsAddr = "127.0.0.1:0"
	d, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	addr := d.OpsAddr()
	if addr == "" {
		t.Fatal("OpsAddr empty after Open with Config.OpsAddr")
	}
	if _, err := d.ServeOps("127.0.0.1:0"); !errors.Is(err, ErrOpsServing) {
		t.Fatalf("second ServeOps = %v, want ErrOpsServing", err)
	}

	pushSources(t, d, 7, 4000)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/health")
	if code != http.StatusOK {
		t.Fatalf("GET /health = %d: %s", code, body)
	}
	if !strings.Contains(body, `"lifecycle"`) || !strings.Contains(body, `"ingest"`) {
		t.Fatalf("health body missing components: %s", body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"approxiot_produced_total 4000",
		"approxiot_up 1",
		"approxiot_bandwidth_bytes_total{topic=",
		"approxiot_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}

	code, body = get("/metrics/query?window=1s")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics/query = %d: %s", code, body)
	}
	if !strings.Contains(body, `"points"`) {
		t.Fatalf("query body missing points: %s", body)
	}

	if _, err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close waits for the ops teardown, so the port is already released.
	if _, err := http.Get("http://" + addr + "/health"); err == nil {
		t.Fatal("ops surface still serving after Close")
	}
	if _, err := d.ServeOps("127.0.0.1:0"); !errors.Is(err, ErrOpsServing) && !errors.Is(err, ErrClosed) {
		t.Fatalf("ServeOps after Close = %v, want ErrOpsServing or ErrClosed", err)
	}
}

// TestDrainTimeoutKnob verifies the facade plumbs Config.DrainTimeout to
// the session and surfaces ErrDrainTimeout: a census-sampling run whose
// root spins longer per item than the pushers take to produce cannot
// quiesce before a tiny deadline.
func TestDrainTimeoutKnob(t *testing.T) {
	d, err := Open(context.Background(), Config{
		Strategy:     Native,
		Window:       25 * time.Millisecond,
		Seed:         7,
		DrainTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// A big backlog against a root that has to process it exactly: with a
	// 50 ms deadline the drain cannot finish behind ~8 windows of data.
	items := make([]Item, 20000)
	for k := range items {
		items[k] = Item{Value: 1}
	}
	if err := d.Ingest("wedge", items...); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	// The drain probe requires 4×Window (100 ms) of root-side silence, and
	// the root was active moments ago — a 50 ms deadline must expire.
	res, err := d.Close()
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Close = %v, want ErrDrainTimeout", err)
	}
	if !res.DrainTimedOut {
		t.Fatal("DrainTimedOut unset despite ErrDrainTimeout")
	}
}
