package approxiot

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// elasticDeployConfig shapes a small sharded deployment with checkpointing:
// 4 partitions per topic, two members per edge node, a memory-backed
// checkpoint store so members can be killed and resurrected.
func elasticDeployConfig() Config {
	return Config{
		Fraction:    0.3,
		Queries:     []QueryKind{Sum, Count},
		Seed:        19,
		Window:      25 * time.Millisecond,
		Partitions:  4,
		LayerShards: 2,
		Checkpoint:  NewMemoryCheckpointStore(),
	}
}

// pushElasticRound pushes perSlot items into every source slot, tolerating
// detached leaves (their slots reject with ErrNodeDetached by design).
func pushElasticRound(t *testing.T, d *Deployment, round, perSlot int) int64 {
	t.Helper()
	slots := elasticDeployConfig().normalize().Tree.Sources
	var pushed int64
	for slot := 0; slot < slots; slot++ {
		ing, err := d.Ingester(slot)
		if err != nil {
			t.Fatalf("Ingester(%d): %v", slot, err)
		}
		items := make([]Item, perSlot)
		for i := range items {
			items[i] = Item{Value: float64(round*perSlot + i)}
		}
		err = ing.Push(items...)
		switch {
		case err == nil:
			pushed += int64(perSlot)
		case errors.Is(err, ErrNodeDetached):
			// expected while the slot's leaf is detached
		default:
			t.Fatalf("Push(slot %d): %v", slot, err)
		}
	}
	return pushed
}

// TestDeploymentElasticLifecycle drives every elastic operation through the
// facade: grow a group, kill and resurrect a member, detach and re-attach a
// leaf node — then checks the exact-count identity
// Σ EstimatedInput + LateDroppedInput == Produced survived all of it.
func TestDeploymentElasticLifecycle(t *testing.T) {
	d, err := Open(context.Background(), elasticDeployConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()

	nodes := d.EdgeNodeIDs()
	if len(nodes) != 6 { // testbed edge layers: 4 + 2 (the root is not elastic)
		t.Fatalf("EdgeNodeIDs = %v, want 6 nodes", nodes)
	}

	var produced int64
	for round := 0; round < 10; round++ {
		produced += pushElasticRound(t, d, round, 25)
		switch round {
		case 1:
			if _, err := d.AddMember("edge1-0"); err != nil {
				t.Fatalf("AddMember: %v", err)
			}
		case 3:
			if err := d.KillMember("edge1-1-shard1"); err != nil {
				t.Fatalf("KillMember: %v", err)
			}
		case 5:
			if err := d.RestartMember("edge1-1-shard1"); err != nil {
				t.Fatalf("RestartMember: %v", err)
			}
		case 6:
			if err := d.RemoveEdgeNode("edge1-3"); err != nil {
				t.Fatalf("RemoveEdgeNode: %v", err)
			}
		case 8:
			if err := d.AddEdgeNode("edge1-3"); err != nil {
				t.Fatalf("AddEdgeNode: %v", err)
			}
		}
		time.Sleep(elasticDeployConfig().Window / 2)
	}

	members, err := d.GroupMembers("edge1-0")
	if err != nil {
		t.Fatalf("GroupMembers: %v", err)
	}
	live := 0
	for _, m := range members {
		if m.State == "live" {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("edge1-0 live members = %d (of %v), want 3", live, members)
	}

	res, err := d.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.Produced != produced {
		t.Fatalf("Produced = %d, want %d", res.Produced, produced)
	}
	var estimated float64
	for _, w := range res.Windows {
		estimated += w.EstimatedInput
	}
	got := estimated + res.LateDroppedInput
	if math.Abs(got-float64(produced)) > 1e-9*math.Max(math.Abs(got), float64(produced)) {
		t.Fatalf("count invariant broken: estimated+late = %v, produced = %d", got, produced)
	}
	if snap := d.Snapshot(); snap.CheckpointErrors != 0 {
		t.Fatalf("CheckpointErrors = %d, want 0", snap.CheckpointErrors)
	}
}

// TestDeploymentElasticErrors exercises the re-exported error identities
// through the facade surface.
func TestDeploymentElasticErrors(t *testing.T) {
	cfg := elasticDeployConfig()
	cfg.Checkpoint = nil
	d, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()

	if _, err := d.GroupMembers("nonesuch"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("GroupMembers(nonesuch) = %v, want ErrUnknownNode", err)
	}
	if _, err := d.AddMember("root-0"); !errors.Is(err, ErrNotEdgeNode) {
		t.Errorf("AddMember(root-0) = %v, want ErrNotEdgeNode", err)
	}
	if err := d.RemoveEdgeNode("edge2-0"); !errors.Is(err, ErrNotLeafNode) {
		t.Errorf("RemoveEdgeNode(edge2-0) = %v, want ErrNotLeafNode", err)
	}
	if err := d.KillMember("edge1-0"); err != nil {
		t.Fatalf("KillMember: %v", err)
	}
	if err := d.RestartMember("edge1-0"); !errors.Is(err, ErrNoCheckpointStore) {
		t.Errorf("RestartMember without store = %v, want ErrNoCheckpointStore", err)
	}
	if _, err := d.RemoveMember("edge1-0"); !errors.Is(err, ErrLastMember) {
		t.Errorf("RemoveMember(last live) = %v, want ErrLastMember", err)
	}
}

// TestCheckpointStoreReexports pins the backend constructors and error
// identities the facade re-exports.
func TestCheckpointStoreReexports(t *testing.T) {
	mem := NewMemoryCheckpointStore()
	if _, err := mem.Load("ghost"); !errors.Is(err, ErrCheckpointNotFound) {
		t.Errorf("memory Load(ghost) = %v, want ErrCheckpointNotFound", err)
	}
	fs, err := NewFileCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileCheckpointStore: %v", err)
	}
	if err := fs.Save("m", []byte("state")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	blob, err := fs.Load("m")
	if err != nil || string(blob) != "state" {
		t.Fatalf("Load = %q, %v", blob, err)
	}
}
