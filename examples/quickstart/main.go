// Quickstart: approximate windowed aggregates over a sensor stream with the
// single-node Estimator — ApproxIoT's algorithm in five lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/xrand"
)

func main() {
	// Keep 10% of each window, stratified per sensor, 95% confidence.
	est := approxiot.NewEstimator(0.10,
		approxiot.WithSeed(42),
		approxiot.WithQueries(approxiot.Sum, approxiot.Mean, approxiot.Count),
		approxiot.WithConfidence(approxiot.TwoSigma),
	)

	// Three sensors with very different scales and rates — the setting
	// where naive random sampling goes wrong and stratification shines.
	rng := xrand.New(7)
	var exactSum float64
	for i := 0; i < 100000; i++ {
		v := rng.Normal(20, 5) // a chatty temperature sensor
		est.Add("temp", v)
		exactSum += v
		if i%10 == 0 {
			v := rng.Normal(1000, 50) // a 10× slower power meter
			est.Add("power", v)
			exactSum += v
		}
		if i%1000 == 0 {
			v := rng.Normal(250000, 10000) // a rare but huge flow gauge
			est.Add("flow", v)
			exactSum += v
		}
	}

	// Close the window: approximate answers with rigorous error bounds.
	win := est.Close()
	sum := win.Result(approxiot.Sum)
	mean := win.Result(approxiot.Mean)
	count := win.Result(approxiot.Count)

	fmt.Printf("sampled %d items out of %.0f\n\n", win.SampleSize, win.EstimatedInput)
	fmt.Printf("SUM   = %.6g ± %.4g   (exact %.6g, off by %.4f%%)\n",
		sum.Estimate.Value, sum.Bound(), exactSum,
		100*abs(sum.Estimate.Value-exactSum)/exactSum)
	fmt.Printf("MEAN  = %.6g ± %.4g\n", mean.Estimate.Value, mean.Bound())
	fmt.Printf("COUNT = %.0f (exact — the Eq. 8 invariant)\n\n", count.Estimate.Value)

	fmt.Println("per-sensor totals:")
	for src, e := range sum.PerSubstream {
		fmt.Printf("  %-6s %.6g ± %.4g\n", src, e.Value, e.Bound(approxiot.TwoSigma))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
