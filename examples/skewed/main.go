// Skewed streams: why stratification matters. Replays the paper's Fig. 10c
// setting — sub-stream D is 0.01% of the items but, with Poisson(10⁷)
// values, carries ~99% of the total — and runs ApproxIoT and the SRS
// baseline side by side at a 10% sampling fraction. SRS routinely loses or
// over-represents D and its estimate swings wildly; ApproxIoT's stratified
// reservoirs always keep D represented with the right weight.
//
//	go run ./examples/skewed
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	// 10k items/s per source for 6 s → ~480k items per trial, of which
	// sub-stream D contributes only ~48 — but ~99% of the total value.
	source := func(seed uint64) func(i int) approxiot.Source {
		return func(i int) approxiot.Source {
			return workload.ExtremeSkew(seed+uint64(i)*211, 10000)
		}
	}

	fmt.Println("Extreme skew (Fig. 10c): D = 0.01% of items, ~99% of the value")
	fmt.Println("10 trials at a 10% sampling fraction, accuracy loss per trial:")
	fmt.Println()
	fmt.Printf("%8s  %12s  %12s\n", "trial", "ApproxIoT", "SRS")

	var whsWorst, srsWorst float64
	for trial := 0; trial < 10; trial++ {
		seed := 1000 + uint64(trial)*37

		run := func(strategy approxiot.Strategy) float64 {
			res, err := approxiot.Simulate(approxiot.Config{
				Strategy: strategy,
				Fraction: 0.10,
				Queries:  []approxiot.QueryKind{approxiot.Sum},
				Seed:     seed,
			}, source(seed), 6*time.Second)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return 100 * res.AccuracyLoss(approxiot.Sum)
		}

		whs, srs := run(approxiot.WHS), run(approxiot.SRS)
		if whs > whsWorst {
			whsWorst = whs
		}
		if srs > srsWorst {
			srsWorst = srs
		}
		fmt.Printf("%8d  %11.4f%%  %11.4f%%\n", trial+1, whs, srs)
	}

	fmt.Printf("\nworst case:  ApproxIoT %.4f%%   SRS %.4f%%\n", whsWorst, srsWorst)
	fmt.Println("\nthe paper reports the same contrast: SRS error can exceed 100%")
	fmt.Println("(it may even overestimate by catching too many D items), while")
	fmt.Println("ApproxIoT stays below ~0.035% because every stratum keeps a")
	fmt.Println("reservoir — rare-but-significant data is never lost.")
}
