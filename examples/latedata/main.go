// Late data under event-time windows: a deployment ingests readings whose
// arrival order is scrambled — a fraction of each sensor's records is held
// back and delivered only after the rest of the stream, the shape of a
// flaky uplink or a store-and-forward edge hop. Processing-time windows
// would silently book those records into whatever window happens to be
// open when they arrive; event-time windows assign every record to the
// window its timestamp names, hold windows open for AllowedLateness past
// their end, and count anything beyond that horizon into
// LiveResult.LateDropped instead of corrupting a closed window.
//
// Sweep the two knobs and watch the trade:
//
//	go run ./examples/latedata                          # defaults: 10% held back, 1 s lateness
//	go run ./examples/latedata -reorder 0.3 -lateness 0 # drop everything displaced
//	go run ./examples/latedata -reorder 0.3 -lateness 8s # horizon covers the run: nothing dropped
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/approxiot/approxiot"
)

func main() {
	reorder := flag.Float64("reorder", 0.1, "fraction of each sensor's records held back to the end of the stream")
	lateness := flag.Duration("lateness", time.Second, "AllowedLateness: how far past a window's end stragglers are still admitted")
	perSlot := flag.Int("items", 400, "records per source slot")
	span := flag.Duration("span", 8*time.Second, "event-time span the records cover")
	seed := flag.Int64("seed", 42, "reorder shuffle seed")
	flag.Parse()

	tree := approxiot.Testbed() // 8 sources, 1 s event windows
	d, err := approxiot.Open(context.Background(), approxiot.Config{
		Tree:            tree,
		Fraction:        1, // census: the exact-count bookkeeping is the story here
		Queries:         []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
		Window:          20 * time.Millisecond, // wall-clock sweep cadence, not the window size
		EventTime:       true,
		AllowedLateness: *lateness,
		Seed:            7,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}

	// Per slot: evenly spaced event timestamps over the span, then displace
	// a random subset to the back of the push order. Displaced records
	// arrive after the sensor's watermark has already passed them — they
	// are genuinely late, and AllowedLateness decides their fate.
	rng := rand.New(rand.NewSource(*seed))
	epoch := time.Now().Truncate(tree.Window)
	total, displaced := 0, 0
	for slot := 0; slot < tree.Sources; slot++ {
		ing, err := d.Ingester(slot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingester:", err)
			os.Exit(1)
		}
		var onTime, held []approxiot.Item
		step := *span / time.Duration(*perSlot)
		for k := 0; k < *perSlot; k++ {
			it := approxiot.Item{
				Source: approxiot.SourceID(fmt.Sprintf("sensor-%d", slot)),
				Value:  10 + rng.NormFloat64(),
				Ts:     epoch.Add(time.Duration(k) * step),
			}
			if rng.Float64() < *reorder {
				held = append(held, it)
			} else {
				onTime = append(onTime, it)
			}
		}
		if err := ing.Push(onTime...); err != nil {
			fmt.Fprintln(os.Stderr, "push:", err)
			os.Exit(1)
		}
		if err := ing.Push(held...); err != nil {
			fmt.Fprintln(os.Stderr, "push stragglers:", err)
			os.Exit(1)
		}
		total += *perSlot
		displaced += len(held)
	}

	res, err := d.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}

	fmt.Printf("pushed %d records (%d displaced to the back, %.0f%%), lateness horizon %v\n\n",
		total, displaced, 100*float64(displaced)/float64(total), *lateness)
	fmt.Println("window               count        SUM ± bound")
	var counted float64
	for _, w := range res.Windows {
		sum := w.Result(approxiot.Sum)
		cnt := w.Result(approxiot.Count).Estimate.Value
		counted += cnt
		fmt.Printf("[%6s, %6s)  %8.0f  %12.1f ± %.1f\n",
			w.Start.Sub(epoch), w.End.Sub(epoch), cnt, sum.Estimate.Value, sum.Bound())
	}
	fmt.Printf("\nwindows account for %.0f records; LateDropped = %d; total = %.0f (= pushed %d)\n",
		counted, res.LateDropped, counted+float64(res.LateDropped), total)
	if counted+float64(res.LateDropped) != float64(total) {
		fmt.Fprintln(os.Stderr, "accounting violated: windows + late != pushed")
		os.Exit(1)
	}
}
