// Live tree: runs the full 8/4/2/1 topology as real goroutines chained by
// the in-memory Kafka-style broker — the deployment form of the paper's
// prototype (Fig. 4) — and compares ApproxIoT's live throughput against
// native execution with a busy datacenter node.
//
//	go run ./examples/livetree
package main

import (
	"fmt"
	"os"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	source := func(i int) approxiot.Source {
		return workload.GaussianMicro(77+uint64(i)*211, 500)
	}
	const items = 60000

	run := func(strategy approxiot.Strategy, fraction float64, partitions, rootShards, layerShards int) *approxiot.LiveResult {
		res, err := approxiot.Run(approxiot.Config{
			Strategy:    strategy,
			Fraction:    fraction,
			Queries:     []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
			Partitions:  partitions,
			RootShards:  rootShards,
			LayerShards: layerShards,
			Seed:        77,
		}, source, items)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res
	}

	fmt.Printf("live pipeline, %d items through 8 sources → 4 → 2 → root\n\n", items)
	fmt.Printf("%-12s %-10s %-6s %-6s %-14s %-14s %-10s\n",
		"system", "fraction", "root", "layer", "root items", "throughput", "loss")
	for _, cfg := range []struct {
		strategy                    approxiot.Strategy
		fraction                    float64
		partitions, rootSh, layerSh int
	}{
		{approxiot.Native, 1, 1, 1, 1},
		{approxiot.WHS, 0.5, 1, 1, 1},
		{approxiot.WHS, 0.1, 1, 1, 1},
		// Same deployment compiled with 4-partition topics and a 4-shard
		// root consumer group: sub-streams are keyed onto partitions, the
		// shards sample their share, and window close merges them — the
		// count invariant and accuracy are unchanged.
		{approxiot.WHS, 0.1, 4, 4, 1},
		// Every tier scaled out: each edge node runs as a 4-member
		// consumer group too. Members forward weighted batches
		// independently — weight compounding needs no merge barrier, so
		// the invariant still holds.
		{approxiot.WHS, 0.1, 4, 4, 4},
		{approxiot.SRS, 0.1, 1, 1, 1},
	} {
		res := run(cfg.strategy, cfg.fraction, cfg.partitions, cfg.rootSh, cfg.layerSh)
		loss := 0.0
		if res.TruthSum != 0 {
			loss = 100 * abs(res.EstimateSum-res.TruthSum) / res.TruthSum
		}
		fmt.Printf("%-12s %-10.0f %-6d %-6d %-14d %-14.0f %.4f%%\n",
			cfg.strategy, cfg.fraction*100, cfg.rootSh, cfg.layerSh, res.RootProcessed, res.Throughput, loss)
	}
	fmt.Println("\nroot items shrink with the fraction; the estimate stays close to")
	fmt.Println("the exact total and the count invariant holds end to end — at any")
	fmt.Println("partition/shard count, on every tier of the tree.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
