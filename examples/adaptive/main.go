// Adaptive budgets (§IV-B): the paper's feedback mechanism refines the
// sampling parameters when a window's error bound exceeds the analyst's
// budget. Two demonstrations:
//
// Part 1 streams a volatile workload through a single-node Estimator whose
// cost function is a FeedbackController targeting a 0.5% relative error:
// watch the sampling fraction climb during the high-variance phase and
// relax again when the stream calms down.
//
// Part 2 runs the same mechanism on the *live tree*: a paced workload flows
// through the full 8/4/2/1 topology over the in-memory broker, the root
// observes every merged window result, and each fraction adjustment is
// broadcast over the deployment's control topic to every edge
// consumer-group member (the colocated root updates at the merge) —
// applied only at window boundaries, so the count estimate stays
// exact while the fraction moves. The run also surfaces the live
// telemetry the control loop can react to: end-to-end latency, per-link
// bytes, and per-node throughput.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"
	"sort"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
	"github.com/approxiot/approxiot/internal/xrand"
)

func main() {
	estimatorDemo()
	liveDemo()
}

func estimatorDemo() {
	const target = 0.005 // 0.5% relative error at 95% confidence

	controller := approxiot.NewFeedbackController(0.05, target)
	est := approxiot.NewEstimator(0.05,
		approxiot.WithSeed(11),
		approxiot.WithQueries(approxiot.Sum),
		approxiot.WithAdaptiveBudget(controller),
	)

	rng := xrand.New(3)
	fmt.Println("— part 1: single-node estimator —")
	fmt.Println("window   fraction   rel-error   phase")
	for window := 0; window < 30; window++ {
		// Windows 10–19 are turbulent: value dispersion jumps 50×.
		sigma, phase := 50.0, "calm"
		if window >= 10 && window < 20 {
			sigma, phase = 2500, "volatile"
		}
		for i := 0; i < 20000; i++ {
			est.Add("sensor", rng.Normal(1000, sigma))
		}

		res := est.Close().Result(approxiot.Sum)
		rel := 0.0
		if res.Estimate.Value != 0 {
			rel = res.Bound() / res.Estimate.Value
		}
		fraction := controller.Observe(res) // §IV-B feedback step

		fmt.Printf("%6d   %7.1f%%   %8.4f%%   %s\n",
			window+1, 100*fraction, 100*rel, phase)
	}

	fmt.Printf("\ntarget relative error: %.2f%% — the fraction rises through the\n", 100*target)
	fmt.Println("volatile phase to hold the bound, then decays to save resources.")
}

func liveDemo() {
	const (
		target = 0.02 // 2% relative error at 95% confidence
		items  = 48000
	)
	source := func(i int) approxiot.Source {
		return workload.GaussianMicro(21+uint64(i)*1000, 1000)
	}

	fmt.Println("\n— part 2: live tree with a control plane —")
	for _, combo := range []struct {
		partitions, rootShards, layerShards int
		trace                               bool
	}{
		{1, 1, 1, false},
		{4, 2, 2, true},
	} {
		controller := approxiot.NewFeedbackController(0.05, target)
		res, err := approxiot.Run(approxiot.Config{
			Queries:     []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
			Partitions:  combo.partitions,
			RootShards:  combo.rootShards,
			LayerShards: combo.layerShards,
			Seed:        21,
			Adaptive:    controller,
			SourceRate:  10000, // pace production across ~12 windows
		}, source, items)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		fmt.Printf("\ndeployment {partitions=%d, root shards=%d, layer shards=%d}\n",
			combo.partitions, combo.rootShards, combo.layerShards)
		if combo.trace {
			fmt.Println("window   fraction   rel-error   sample")
			for i, w := range res.Windows {
				r := w.Result(approxiot.Sum)
				rel := 0.0
				if r.Estimate.Value != 0 {
					rel = r.Bound() / r.Estimate.Value
				}
				fmt.Printf("%6d   %7.2f%%   %8.3f%%   %6d\n",
					i+1, 100*res.Fractions[i], 100*rel, w.SampleSize)
			}
		}
		final := res.Fractions[len(res.Fractions)-1]
		fmt.Printf("final fraction %.2f%% after %d windows; estimated count %.0f of %d produced (exact)\n",
			100*final, len(res.Windows), res.EstimateCount, res.Produced)
		fmt.Printf("latency    p50=%v p95=%v (end to end, source publish → root)\n",
			res.Latency.Quantile(0.50), res.Latency.Quantile(0.95))
		fmt.Printf("bandwidth  %d bytes total, %d on the control topic\n",
			res.Bandwidth.Total(), res.Bandwidth.Link(approxiot.ControlTopic))
		fmt.Printf("nodes      %s\n", busiestNodes(res.Nodes, 3))
	}

	fmt.Printf("\nthe controller holds the %.0f%% error target on the live tree exactly\n", 100*target)
	fmt.Println("as it does in simulation — fraction updates ride the control topic and")
	fmt.Println("land on window boundaries, so the count invariant never bends.")
}

// busiestNodes formats the top-k members by observed throughput.
func busiestNodes(nodes map[string]approxiot.NodeTelemetry, k int) string {
	type entry struct {
		id  string
		tel approxiot.NodeTelemetry
	}
	all := make([]entry, 0, len(nodes))
	for id, tel := range nodes {
		all = append(all, entry{id, tel})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].tel.Throughput != all[j].tel.Throughput {
			return all[i].tel.Throughput > all[j].tel.Throughput
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := ""
	for _, e := range all[:k] {
		out += fmt.Sprintf("%s %.0f items/s  ", e.id, e.tel.Throughput)
	}
	return out
}
