// Adaptive budgets (§IV-B): the paper's feedback mechanism refines the
// sampling parameters when a window's error bound exceeds the analyst's
// budget. This example streams a volatile workload through an Estimator
// whose cost function is a FeedbackController targeting a 0.5% relative
// error: watch the sampling fraction climb during the high-variance phase
// and relax again when the stream calms down.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/xrand"
)

func main() {
	const target = 0.005 // 0.5% relative error at 95% confidence

	controller := approxiot.NewFeedbackController(0.05, target)
	est := approxiot.NewEstimator(0.05,
		approxiot.WithSeed(11),
		approxiot.WithQueries(approxiot.Sum),
		approxiot.WithAdaptiveBudget(controller),
	)

	rng := xrand.New(3)
	fmt.Println("window   fraction   rel-error   phase")
	for window := 0; window < 30; window++ {
		// Windows 10–19 are turbulent: value dispersion jumps 50×.
		sigma, phase := 50.0, "calm"
		if window >= 10 && window < 20 {
			sigma, phase = 2500, "volatile"
		}
		for i := 0; i < 20000; i++ {
			est.Add("sensor", rng.Normal(1000, sigma))
		}

		res := est.Close().Result(approxiot.Sum)
		rel := 0.0
		if res.Estimate.Value != 0 {
			rel = res.Bound() / res.Estimate.Value
		}
		fraction := controller.Observe(res) // §IV-B feedback step

		fmt.Printf("%6d   %7.1f%%   %8.4f%%   %s\n",
			window+1, 100*fraction, 100*rel, phase)
	}

	fmt.Printf("\ntarget relative error: %.2f%% — the fraction rises through the\n", 100*target)
	fmt.Println("volatile phase to hold the bound, then decays to save resources.")
}
