// A minimal push-ingestion session: Open a live deployment, push readings
// for a few sensors by hand (no workload generators — this is the shape an
// external data feed takes), watch window results stream out as the root
// closes them, peek at mid-run telemetry, and Close for the final result.
//
//	go run ./examples/session
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/approxiot/approxiot"
)

func main() {
	// A deployment on the paper's 8/4/2/1 testbed tree, sampling 25% and
	// closing a query window every 40 ms. Open returns immediately: the
	// tree is pumping, waiting for pushes.
	d, err := approxiot.Open(context.Background(), approxiot.Config{
		Fraction: 0.25,
		Queries:  []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
		Window:   40 * time.Millisecond,
		Seed:     42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}

	// Subscribe before pushing so no window is missed. The channel closes
	// when the deployment does.
	windows := d.Windows()
	printerDone := make(chan struct{})
	go func() {
		defer close(printerDone)
		n := 0
		for w := range windows {
			n++
			sum := w.Result(approxiot.Sum)
			fmt.Printf("window %2d  SUM = %12.1f ± %-10.1f  (ζ=%d of ~%.0f items)\n",
				n, sum.Estimate.Value, sum.Bound(), w.SampleSize, w.EstimatedInput)
		}
	}()

	// Push readings for three sensors. Ingest hashes each SourceID to a
	// stable leaf, so a stratum always takes the same path up the tree.
	// Spread the pushes across ~8 windows so several results stream out
	// mid-run.
	const rounds, perRound = 16, 500
	var truth float64
	for r := 0; r < rounds; r++ {
		for _, sensor := range []approxiot.SourceID{"temp-hall", "temp-roof", "co2-lab"} {
			items := make([]approxiot.Item, perRound)
			for i := range items {
				v := 20 + 5*math.Sin(float64(r*perRound+i)/300)
				items[i] = approxiot.Item{Value: v}
				truth += v
			}
			if err := d.Ingest(sensor, items...); err != nil {
				fmt.Fprintln(os.Stderr, "ingest:", err)
				os.Exit(1)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Mid-run telemetry: before the session API this view existed only
	// once, assembled at exit.
	snap := d.Snapshot()
	fmt.Printf("\nmid-run: state=%v pushed=%d at-root=%d windows=%d mean-latency=%v\n\n",
		snap.State, snap.Produced, snap.RootProcessed, snap.WindowsClosed,
		snap.Latency.Mean().Round(time.Microsecond))

	// Graceful shutdown: drain in-flight windows, then read the final
	// merged result.
	res, err := d.Close()
	<-printerDone
	if err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
	fmt.Printf("final: pushed=%d estimated-count=%.0f (exact by Eq. 8)\n",
		res.Produced, res.EstimateCount)
	fmt.Printf("       exact SUM=%.1f estimated SUM=%.1f (%.3f%% off)\n",
		truth, res.EstimateSum, 100*(res.EstimateSum-truth)/truth)
}
