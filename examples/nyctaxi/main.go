// NYC taxi case study (§VI-A): the paper's query — "what is the total
// payment for taxi fares in NYC at each time window?" — over the full edge
// tree with a 10% sampling fraction, on the synthetic DEBS'15 substitute
// trace (heterogeneous zone activity, heavy-tailed fares, diurnal demand).
//
//	go run ./examples/nyctaxi
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	cfg := approxiot.Config{
		Strategy: approxiot.WHS,
		Fraction: 0.10,
		Queries:  []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
		Seed:     2013, // the trace's vintage
	}

	// Eight source nodes, each receiving rides from 12 dispatch zones.
	source := func(i int) approxiot.Source {
		return workload.NYCTaxi(2013+uint64(i)*97, 12, 150)
	}

	fmt.Println("NYC taxi — total fares per window, 10% sampling on the edge tree")
	fmt.Println()

	res, err := approxiot.Simulate(cfg, source, 15*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for i, w := range res.Windows {
		sum := w.Result(approxiot.Sum)
		lo, hi := sum.Interval()
		fmt.Printf("window %2d  total fares ≈ $%11.2f   95%% CI [$%.2f, $%.2f]   rides ≈ %.0f\n",
			i+1, sum.Estimate.Value, lo, hi, w.EstimatedInput)
	}

	fmt.Printf("\nrun total:  estimated $%.2f vs exact $%.2f  (loss %.4f%%)\n",
		res.TotalEstimate(approxiot.Sum), res.TotalTruth(),
		100*res.AccuracyLoss(approxiot.Sum))
	fmt.Printf("bandwidth:  edge uplinks carried %.1f%% of the raw stream\n",
		100*float64(res.LayerBytes[1]+res.LayerBytes[2])/float64(2*res.LayerBytes[0]))
	fmt.Printf("latency:    mean %v, p95 %v\n",
		res.Latency.Mean().Round(time.Millisecond),
		res.Latency.Quantile(0.95).Round(time.Millisecond))
}
