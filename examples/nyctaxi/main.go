// NYC taxi case study (§VI-A), geospatial form: the paper's query — "what
// is the total payment for taxi fares in NYC at each time window?" — grown
// into a millions-of-events replay over the full edge tree. Rides come from
// dispatch-zone clusters at NYC-ish coordinates (heavy-tailed fares, skewed
// zone activity, diurnal demand) and are stratified by spatial grid cell
// (workload.StratifyByCell), so the strata the tree samples over are map
// cells, not logical zone names. Alongside the paper's SUM, the replay
// answers a group-by top-k ("which cells collect the most fares?") and an
// approximate fare quantile, each with per-window error bounds.
//
// The program is also a gate: it exits non-zero unless the Eq. 8 accounting
// identity holds to relative 1e-9 (Σ window estimated input + late-dropped
// input == events produced) and the COUNT estimate is census-exact in the
// same tolerance.
//
//	go run ./examples/nyctaxi             # ≥1M-event replay at 10%
//	go run ./examples/nyctaxi -sweep      # fraction-vs-error table
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

const relTol = 1e-9

var (
	fraction = flag.Float64("fraction", 0.10, "sampling fraction in (0, 1]")
	events   = flag.Int64("events", 1_000_000, "minimum events the replay must produce")
	zones    = flag.Int("zones", 12, "dispatch zones per source node")
	cellRes  = flag.Float64("cellres", 0.02, "stratification grid resolution, degrees per cell")
	baseRate = flag.Float64("rate", 1200, "busiest zone's rides per second, per source node")
	topk     = flag.Int("topk", 5, "cells to rank per window")
	quant    = flag.Float64("q", 0.9, "fare quantile to estimate")
	seed     = flag.Uint64("seed", 2015, "RNG seed (the DEBS'15 trace vintage)")
	sweep    = flag.Bool("sweep", false, "sweep sampling fractions and print an error table")
)

// replay simulates one full run at the given fraction and gates the
// accounting identity before returning.
func replay(f float64) (*approxiot.SimResult, error) {
	cfg := approxiot.Config{
		Strategy: approxiot.WHS,
		Fraction: f,
		Queries: []approxiot.QueryKind{
			approxiot.Sum, approxiot.Count,
			approxiot.TopKOf(*topk), approxiot.QuantileOf(*quant),
		},
		Seed: *seed,
	}

	// Size the virtual duration from the generators' nominal rate so the
	// replay clears the -events floor (the diurnal cycle sits ~13% above
	// nominal at the simulator's epoch; the 1.1 margin absorbs drift).
	tree := approxiot.Testbed()
	perSlot := workload.NYCTaxiGeo(*seed, *zones, *baseRate, *cellRes).TotalRate()
	dur := time.Duration(float64(*events) / (perSlot * float64(tree.Sources)) * 1.1 * float64(time.Second))
	if dur < 2*time.Second {
		dur = 2 * time.Second
	}

	source := func(i int) approxiot.Source {
		return workload.NYCTaxiGeo(*seed+uint64(i)*97, *zones, *baseRate, *cellRes)
	}
	res, err := approxiot.Simulate(cfg, source, dur)
	if err != nil {
		return nil, err
	}

	// Eq. 8 accounting identity: every produced event is either estimated
	// input of some window or accounted late-dropped input.
	var estInput float64
	for _, w := range res.Windows {
		estInput += w.EstimatedInput
	}
	produced := float64(res.Generated)
	if rel := relErr(estInput+res.LateDroppedInput, produced); rel > relTol {
		return nil, fmt.Errorf("accounting identity violated at fraction %.2f: Σ estimated input %.3f + late %.3f != produced %.0f (rel %.3g)",
			f, estInput, res.LateDroppedInput, produced, rel)
	}
	// COUNT is census-exact under Eq. 8 regardless of the fraction.
	if loss := res.AccuracyLoss(approxiot.Count); loss > relTol {
		return nil, fmt.Errorf("COUNT not census-exact at fraction %.2f: loss %.3g", f, loss)
	}
	return res, nil
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Abs(b))
}

// meanQuantile averages the per-window quantile value and CI half-width.
func meanQuantile(res *approxiot.SimResult) (value, halfWidth float64) {
	var n float64
	for _, w := range res.Windows {
		r := w.Result(approxiot.QuantileOf(*quant))
		if r.Quantile == nil || r.Quantile.SampleSize == 0 {
			continue
		}
		value += r.Quantile.Value
		halfWidth += (r.Quantile.Hi - r.Quantile.Lo) / 2
		n++
	}
	if n > 0 {
		value /= n
		halfWidth /= n
	}
	return value, halfWidth
}

// uplinkShare is the fraction of the raw stream's bytes the two edge
// uplink layers actually carried.
func uplinkShare(res *approxiot.SimResult) float64 {
	return float64(res.LayerBytes[1]+res.LayerBytes[2]) / float64(2*res.LayerBytes[0])
}

// busiest returns the window with the most estimated input — the one worth
// showing ranked cells for.
func busiest(res *approxiot.SimResult) approxiot.WindowResult {
	best := res.Windows[0]
	for _, w := range res.Windows {
		if w.EstimatedInput > best.EstimatedInput {
			best = w
		}
	}
	return best
}

func runOnce() error {
	fmt.Printf("NYC taxi geo replay — %d zones/node stratified into %.2f° grid cells, %.0f%% sampling\n\n",
		*zones, *cellRes, 100**fraction)

	res, err := replay(*fraction)
	if err != nil {
		return err
	}
	if res.Generated < *events {
		return fmt.Errorf("replay produced %d events, below the -events floor %d", res.Generated, *events)
	}

	fmt.Printf("replayed %d events across %d windows (%v of virtual time)\n\n",
		res.Generated, len(res.Windows), res.Elapsed.Round(time.Second))

	w := busiest(res)
	tk := w.Result(approxiot.TopKOf(*topk))
	fmt.Printf("top-%d cells by estimated fares, busiest window (≈%.0f rides):\n", *topk, w.EstimatedInput)
	for i, g := range tk.Groups {
		fmt.Printf("  %d. %-14s  $%11.2f ± $%.2f   rides ≈ %.0f\n",
			i+1, g.Source, g.Sum.Value, g.Sum.Bound(tk.Confidence), g.Count)
	}

	if qr := w.Result(approxiot.QuantileOf(*quant)).Quantile; qr != nil {
		fmt.Printf("\np%.0f fare, same window: $%.2f  95%% CI [$%.2f, $%.2f]  (ζ = %d sampled)\n",
			100**quant, qr.Value, qr.Lo, qr.Hi, qr.SampleSize)
	}
	qv, qh := meanQuantile(res)
	fmt.Printf("p%.0f fare, run mean:    $%.2f ± $%.2f\n", 100**quant, qv, qh)

	fmt.Printf("\nrun totals: fares estimated $%.2f vs exact $%.2f (loss %.4f%%)\n",
		res.TotalEstimate(approxiot.Sum), res.TotalTruth(), 100*res.AccuracyLoss(approxiot.Sum))
	fmt.Printf("accounting: COUNT census-exact, identity holds to rel %.0e (gated)\n", relTol)
	fmt.Printf("bandwidth:  edge uplinks carried %.1f%% of the raw stream\n", 100*uplinkShare(res))
	fmt.Printf("latency:    mean %v, p95 %v\n",
		res.Latency.Mean().Round(time.Millisecond),
		res.Latency.Quantile(0.95).Round(time.Millisecond))
	return nil
}

func runSweep() error {
	fractions := []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.00}

	fmt.Printf("NYC taxi geo sweep — fraction vs error, ~%d events per run\n\n", *events)

	// Census first: its quantile is the exact weighted quantile of the
	// full stream and anchors the per-fraction quantile error column.
	census, err := replay(1)
	if err != nil {
		return err
	}
	censusQ, _ := meanQuantile(census)

	fmt.Printf("%-9s  %-12s  %-14s  %-12s  %s\n",
		"fraction", "SUM loss", fmt.Sprintf("p%.0f err", 100**quant), "p-CI half", "uplink bytes")
	for _, f := range fractions {
		res := census
		if f != 1 {
			if res, err = replay(f); err != nil {
				return err
			}
		}
		qv, qh := meanQuantile(res)
		fmt.Printf("%-9.2f  %-12s  %-14s  $%-11.2f  %.1f%% of raw\n",
			f,
			fmt.Sprintf("%.4f%%", 100*res.AccuracyLoss(approxiot.Sum)),
			fmt.Sprintf("%.3f%%", 100*relErr(qv, censusQ)),
			qh, 100*uplinkShare(res))
	}
	fmt.Println("\nevery run above passed the Eq. 8 identity and COUNT-exactness gates")
	return nil
}

func main() {
	flag.Parse()
	var err error
	if *sweep {
		err = runSweep()
	} else {
		err = runOnce()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nyctaxi:", err)
		os.Exit(1)
	}
}
