// Extended queries (the paper's §VIII future work, implemented here):
// top-k group ranking, approximate quantiles, and sliding-window aggregates
// over the weighted sample — all on a taxi-style workload.
//
//	go run ./examples/topzones
package main

import (
	"fmt"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	est := approxiot.NewEstimator(0.15,
		approxiot.WithSeed(99),
		approxiot.WithQueries(approxiot.Sum, approxiot.Count),
	)
	slider := approxiot.NewSlider(3) // 3-window sliding total

	gen := workload.NYCTaxi(41, 8, 400)
	epoch := time.Date(2013, 1, 14, 8, 0, 0, 0, time.UTC)

	fmt.Println("taxi zones — windowed extended queries at a 15% sample")
	fmt.Println()
	for w := 0; w < 6; w++ {
		for _, it := range gen.Generate(epoch.Add(time.Duration(w)*time.Second), time.Second) {
			est.AddItem(it)
		}
		win, theta := est.CloseTheta()

		fmt.Printf("window %d  (%d rides sampled of ~%.0f)\n", w+1, win.SampleSize, win.EstimatedInput)

		// Top-3 zones by estimated fare total.
		for rank, g := range approxiot.TopK(theta, 3) {
			fmt.Printf("  #%d %-8s $%9.2f ± %-8.2f (~%.0f rides)\n",
				rank+1, g.Source, g.Sum.Value, g.Sum.Bound(approxiot.TwoSigma), g.Count)
		}

		// Fare distribution: median and the heavy tail.
		med := approxiot.Quantile(theta, 0.5)
		p95 := approxiot.Quantile(theta, 0.95)
		fmt.Printf("  fares: median $%.2f [%.2f, %.2f]   p95 $%.2f\n",
			med.Value, med.Lo, med.Hi, p95.Value)

		// Sliding 3-window total with a combined bound.
		sliding := slider.Push(win.Result(approxiot.Sum).Estimate)
		fmt.Printf("  3-window sliding total: $%.2f ± %.2f\n\n",
			sliding.Value, sliding.Bound(approxiot.TwoSigma))
	}
}
