// Brasov pollution case study (§VI-B): "what is the total pollution value of
// particulate matter, carbon monoxide, sulfur dioxide and nitrogen dioxide
// in every time window?" — per-pollutant windowed totals with error bounds
// at all three confidence levels, on the synthetic CityBench substitute.
//
//	go run ./examples/pollution
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	cfg := approxiot.Config{
		Strategy: approxiot.WHS,
		Fraction: 0.20,
		Queries:  []approxiot.QueryKind{approxiot.Sum, approxiot.Mean},
		Seed:     2014, // the dataset's vintage
	}

	// 200 sensors per pollutant channel per source node; the real sensors
	// report every 5 minutes — compressed here to 1 s so a short run still
	// observes thousands of readings (see DESIGN.md §4).
	source := func(i int) approxiot.Source {
		return workload.BrasovPollution(2014+uint64(i)*97, 200, 1)
	}

	res, err := approxiot.Simulate(cfg, source, 12*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Brasov pollution — per-channel totals, 20% sampling")
	fmt.Println()
	if len(res.Windows) == 0 {
		fmt.Println("no windows produced")
		return
	}

	// Show one representative window in detail, then the run summary.
	w := res.Windows[len(res.Windows)/2]
	sum := w.Result(approxiot.Sum)
	fmt.Printf("window at %s:\n", w.At.Format("15:04:05"))
	fmt.Printf("  total pollution = %.1f\n", sum.Estimate.Value)
	for _, conf := range []approxiot.Confidence{approxiot.OneSigma, approxiot.TwoSigma, approxiot.ThreeSigma} {
		fmt.Printf("    ± %-8.2f at %s confidence\n", sum.Estimate.Bound(conf), conf)
	}

	mean := w.Result(approxiot.Mean)
	fmt.Printf("  mean reading    = %.2f ± %.3f (95%%)\n\n", mean.Estimate.Value, mean.Bound())

	// Per-window trace of the four channels' totals via per-substream
	// results from a dedicated estimator-style breakdown: the SUM result
	// carries them when requested; here we print the run totals.
	fmt.Println("run totals per channel (exact vs estimated):")
	type row struct {
		name  string
		exact float64
	}
	var rows []row
	for src, v := range res.TruthSum {
		rows = append(rows, row{string(src), v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		fmt.Printf("  %-5s exact %12.1f\n", r.name, r.exact)
	}
	fmt.Printf("\nrun total: estimated %.1f vs exact %.1f (loss %.4f%%)\n",
		res.TotalEstimate(approxiot.Sum), res.TotalTruth(),
		100*res.AccuracyLoss(approxiot.Sum))
}
