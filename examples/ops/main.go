// Operational surface: every live deployment can serve its telemetry over
// HTTP — the paper's three evaluation metrics (throughput, end-to-end
// latency, network bandwidth, §V-A) plus lifecycle health, without linking
// the Go package into your monitoring stack.
//
// This program opens the testbed tree with Config.OpsAddr set, pushes a
// paced workload for a few seconds, and plays the monitoring client against
// its own deployment: a /health probe (the JSON a load balancer or
// Kubernetes would gate on), a /metrics scrape (the Prometheus text
// exposition a collector would ingest), and a /metrics/query call (sar-style
// windowed rates from the built-in sampler — no external scraper needed).
//
//	go run ./examples/ops
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	d, err := approxiot.Open(context.Background(), approxiot.Config{
		Fraction:   0.25,
		Queries:    []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
		Window:     200 * time.Millisecond,
		SourceRate: 8000,
		Seed:       2018,
		OpsAddr:    "127.0.0.1:0", // ephemeral port; a service would pin one
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	addr := d.OpsAddr()
	fmt.Printf("deployment open, ops surface on http://%s\n\n", addr)

	// Push the Gaussian micro-benchmark stream through every source valve
	// for a few seconds, the way a fleet of IoT gateways would.
	stop := make(chan struct{})
	tree := approxiot.Testbed()
	for slot := 0; slot < tree.Sources; slot++ {
		ing, err := d.Ingester(slot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingester:", err)
			os.Exit(1)
		}
		go func(slot int, ing *approxiot.Ingester) {
			gen := workload.GaussianMicro(2018+uint64(slot)*211, 1000)
			now := time.Now()
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := gen.Generate(now, 50*time.Millisecond)
				now = now.Add(50 * time.Millisecond)
				if ing.Push(batch...) != nil {
					return
				}
			}
		}(slot, ing)
	}
	time.Sleep(2 * time.Second)

	// 1. The health probe: component checks, overall status in the code.
	body, status := get(addr, "/health")
	fmt.Printf("GET /health → %s\n%s\n", status, body)

	// 2. The Prometheus scrape: show the run counters and one histogram
	// line (the full exposition carries per-topic and per-node families).
	body, status = get(addr, "/metrics")
	fmt.Printf("GET /metrics → %s (excerpt)\n", status)
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "approxiot_produced_total") ||
			strings.HasPrefix(line, "approxiot_root_processed_total") ||
			strings.HasPrefix(line, "approxiot_throughput") ||
			strings.HasPrefix(line, "approxiot_latency_seconds_count") {
			fmt.Println(line)
		}
	}
	fmt.Println()

	// 3. The windowed history: per-second rates at a 500 ms grain over the
	// retained span (the lookback is clamped to what the ring holds).
	body, status = get(addr, "/metrics/query?window=500ms&lookback=10m")
	fmt.Printf("GET /metrics/query?window=500ms&lookback=10m → %s\n%s\n", status, body)

	close(stop)
	res, err := d.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
	}
	fmt.Printf("closed: %d items, %.0f items/s — the ops listener shut down with the deployment\n",
		res.Produced, res.Throughput)
}

// get fetches one ops endpoint and returns (body, status line).
func get(addr, path string) (string, string) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "get:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "read:", err)
		os.Exit(1)
	}
	return string(b), resp.Status
}
