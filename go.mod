module github.com/approxiot/approxiot

go 1.21
