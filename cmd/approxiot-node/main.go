// Command approxiot-node runs ONE tier of an ApproxIoT tree as its own OS
// process, the deployment shape of the paper's prototype (edge brokers and
// samplers as separate machines, Kafka in between): a broker daemon serves
// the message fabric over TCP, and leaf / intermediate / root processes
// dial in and run their slice of the same compiled plan. Every process is
// handed identical tree flags, so topic names, member IDs, seeds, and
// watermark expectations agree by construction; the root's per-window
// counts are then bit-identical to a single-process run of the same
// workload (-role single prints the reference).
//
// A 3-tier tree as four processes:
//
//	approxiot-node -role broker -addr 127.0.0.1:9399
//	approxiot-node -role root   -addr 127.0.0.1:9399
//	approxiot-node -role mid    -addr 127.0.0.1:9399
//	approxiot-node -role leaf   -addr 127.0.0.1:9399 -items 4000
//
// The leaf pushes a deterministic event-time workload, broadcasts end of
// stream, and every process exits on its own once the root has seen the
// whole stream out. The same workload in one process, for comparison:
//
//	approxiot-node -role single -items 4000
//
// Interrupt (Ctrl-C) drains the process's groups and exits cleanly; a
// second interrupt aborts. -ops serves /health and /metrics (including the
// process's transport-link counters) while the tier runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/ops"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/transport"
	"github.com/approxiot/approxiot/internal/transport/tcp"
)

// eventEpoch pins the workload's event time to an absolute instant so
// every process — and every comparison run — buckets the same items into
// the same windows regardless of when it is launched.
var eventEpoch = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)

func main() {
	var (
		role     = flag.String("role", "", "broker | leaf | mid | root | single")
		addr     = flag.String("addr", "127.0.0.1:9399", "broker address (serve when -role broker, dial otherwise)")
		opsAddr  = flag.String("ops", "", "serve /health and /metrics on this address (empty = off)")
		sources  = flag.Int("sources", 8, "source slots feeding the tree")
		l0       = flag.Int("l0", 4, "edge-layer nodes")
		l1       = flag.Int("l1", 2, "intermediate-layer nodes (0 = two-tier tree)")
		items    = flag.Int("items", 2000, "items pushed per source (leaf and single roles)")
		span     = flag.Duration("span", 4*time.Second, "event-time span the items cover")
		ewindow  = flag.Duration("ewindow", time.Second, "event-time window size")
		cadence  = flag.Duration("cadence", 20*time.Millisecond, "window sweep cadence")
		lateness = flag.Duration("lateness", 0, "allowed lateness (0 = one event window)")
		fraction = flag.Float64("fraction", 1.0, "end-to-end sampling fraction (0,1]")
		seed     = flag.Uint64("seed", 2018, "deterministic seed shared by every process")
		idle     = flag.Duration("idle", 30*time.Second, "event-time idle timeout (high: completeness by watermark only)")
		rate     = flag.Float64("rate", 0, "items/s pacing per source (0 = unpaced)")
		dialWait = flag.Duration("dialwait", 15*time.Second, "how long to retry dialing the broker")
	)
	flag.Parse()

	if *lateness == 0 {
		*lateness = *ewindow
	}
	layers := []topology.LayerSpec{{Name: "edge", Nodes: *l0}}
	if *l1 > 0 {
		layers = append(layers, topology.LayerSpec{Name: "fog", Nodes: *l1})
	}
	layers = append(layers, topology.LayerSpec{Name: "root", Nodes: 1})
	spec := topology.TreeSpec{Sources: *sources, Layers: layers, Window: *ewindow}
	cfg := core.LiveConfig{
		Spec:            spec,
		NewSampler:      core.WHSFactory(),
		Cost:            core.FractionBudget{Fraction: *fraction},
		Window:          *cadence,
		Queries:         []query.Kind{query.Sum, query.Count},
		Seed:            *seed,
		EventTime:       true,
		AllowedLateness: *lateness,
		IdleTimeout:     *idle,
		SourceRate:      *rate,
	}

	var code int
	switch *role {
	case "broker":
		code = runBroker(*addr)
	case "leaf", "mid", "root":
		code = runTier(*role, *addr, *opsAddr, cfg, *items, *span, *dialWait)
	case "single":
		code = runSingle(cfg, *opsAddr, *items, *span)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q (want broker | leaf | mid | root | single)\n", *role)
		code = 2
	}
	os.Exit(code)
}

// interrupts returns a channel closed on the first interrupt and an abort
// context cancelled on the second. Duplicate deliveries of the same
// logical interrupt (process-group `timeout -s INT`) are debounced so a
// graceful CI drain cannot escalate itself into an abort.
func interrupts() (<-chan struct{}, context.Context) {
	stop := make(chan struct{})
	abortCtx, abort := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "interrupt — draining (interrupt again to abort)")
		close(stop)
		first := time.Now()
		for range sig {
			if time.Since(first) < 250*time.Millisecond {
				continue
			}
			fmt.Fprintln(os.Stderr, "second interrupt — aborting without drain")
			abort()
			return
		}
	}()
	return stop, abortCtx
}

// runBroker serves the message fabric: an in-memory broker behind the TCP
// transport daemon, until interrupted.
func runBroker(addr string) int {
	b := mq.NewBroker()
	srv, err := tcp.Listen(addr, transport.WrapBroker(b))
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		return 1
	}
	fmt.Printf("broker serving on %s\n", srv.Addr())
	stop, abortCtx := interrupts()
	select {
	case <-stop:
	case <-abortCtx.Done():
	}
	srv.Close()
	b.Close()
	ctr := srv.Counters()
	fmt.Printf("final role=broker bytes_in=%d bytes_out=%d send_errors=%d poll_errors=%d\n",
		ctr.BytesIn, ctr.BytesOut, ctr.SendErrors, ctr.PollErrors)
	return 0
}

// dialRetry dials the broker, retrying while it comes up — tier processes
// are expected to race the broker's startup.
func dialRetry(addr string, wait time.Duration) (*tcp.Client, error) {
	deadline := time.Now().Add(wait)
	for {
		c, err := tcp.Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// tierFor maps a role name to the slice of the tree it runs.
func tierFor(role string, spec topology.TreeSpec) (core.NodeTier, error) {
	switch role {
	case "leaf":
		return core.NodeTier{Layers: []int{0}, Ingest: true}, nil
	case "mid":
		if len(spec.Layers) < 3 {
			return core.NodeTier{}, fmt.Errorf("two-tier tree (-l1 0) has no intermediate layer for -role mid")
		}
		mids := make([]int, 0, len(spec.Layers)-2)
		for l := 1; l < len(spec.Layers)-1; l++ {
			mids = append(mids, l)
		}
		return core.NodeTier{Layers: mids}, nil
	case "root":
		return core.NodeTier{Root: true}, nil
	}
	return core.NodeTier{}, fmt.Errorf("unknown tier role %q", role)
}

// runTier runs one process of the multi-process deployment.
func runTier(role, addr, opsAddr string, cfg core.LiveConfig, items int, span, dialWait time.Duration) int {
	tier, err := tierFor(role, cfg.Spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	client, err := dialRetry(addr, dialWait)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dial %s: %v\n", addr, err)
		return 1
	}
	defer client.Close()
	cfg.Bus = client

	stop, abortCtx := interrupts()
	sess, err := core.OpenNode(abortCtx, cfg, tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open node:", err)
		return 1
	}
	fmt.Printf("%s tier up against %s (%d sources, %d layers, %v windows)\n",
		role, addr, cfg.Spec.Sources, len(cfg.Spec.Layers), cfg.Spec.Window)
	stopOps := serveOps(opsAddr, sess, client.Counters)
	defer stopOps()

	interrupted := false
	if role == "leaf" {
		if ok := pushWorkload(sess, cfg, items, span, stop); !ok {
			interrupted = true
		} else if err := sess.FinishIngest(); err != nil {
			fmt.Fprintln(os.Stderr, "finish ingest:", err)
			return 1
		}
	}

	// Wait for the deployment-wide end of stream — or for an interrupt,
	// which skips straight to this process's drain.
	if !interrupted {
		waitCtx, cancel := context.WithCancel(abortCtx)
		go func() {
			select {
			case <-stop:
				cancel()
			case <-waitCtx.Done():
			}
		}()
		if err := sess.WaitDone(waitCtx); err != nil {
			interrupted = true
		}
		cancel()
	}

	drainCtx, cancel := context.WithTimeout(abortCtx, 30*time.Second)
	if err := sess.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	cancel()
	res := sess.Close()
	if tier.Root {
		printWindows(res.Windows)
	}
	ctr := client.Counters()
	fmt.Printf("final role=%s produced=%d rootProcessed=%d windows=%d lateDropped=%d decodeErrors=%d interrupted=%v\n",
		role, res.Produced, res.RootProcessed, len(res.Windows), res.LateDropped, res.DecodeErrors, interrupted)
	fmt.Printf("transport bytes_out=%d bytes_in=%d reconnects=%d send_errors=%d poll_errors=%d\n",
		ctr.BytesOut, ctr.BytesIn, ctr.Reconnects, ctr.SendErrors, ctr.PollErrors)
	return 0
}

// runSingle runs the identical workload as one in-process session — the
// reference a multi-process run's windows are compared against.
func runSingle(cfg core.LiveConfig, opsAddr string, items int, span time.Duration) int {
	stop, abortCtx := interrupts()
	sess, err := core.OpenLive(abortCtx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open live:", err)
		return 1
	}
	fmt.Printf("single-process run (%d sources, %d layers, %v windows)\n",
		cfg.Spec.Sources, len(cfg.Spec.Layers), cfg.Spec.Window)
	stopOps := serveOps(opsAddr, sess, nil)
	defer stopOps()

	for slot := 0; slot < cfg.Spec.Sources; slot++ {
		ing, err := sess.Ingester(slot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingester:", err)
			return 1
		}
		if !pushSlot(func(batch []stream.Item) error { return ing.Push(batch...) }, slot, cfg, items, span, stop) {
			break
		}
	}
	res, err := sess.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "closed with:", err)
	}
	printWindows(res.Windows)
	fmt.Printf("final role=single produced=%d rootProcessed=%d windows=%d lateDropped=%d decodeErrors=%d interrupted=%v\n",
		res.Produced, res.RootProcessed, len(res.Windows), res.LateDropped, res.DecodeErrors, false)
	return 0
}

// serveOps mounts the operational surface when an address is given; the
// transport hook adds the process's bus-link counters to /metrics.
func serveOps(addr string, src ops.Source, counters func() transport.Counters) func() {
	if addr == "" {
		return func() {}
	}
	srv := ops.NewServer(src, ops.Config{Transport: counters})
	srv.Start()
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "ops:", err)
		}
	}()
	fmt.Printf("ops surface on http://%s  (/health, /metrics)\n", addr)
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Stop()
	}
}

// genSlot builds source slot's deterministic event-time items: timestamps
// laid out evenly across span from the fixed epoch (offset per slot so
// sub-streams interleave), values a fixed function of position. Identical
// across processes and runs by construction.
func genSlot(slot, items int, span time.Duration) []stream.Item {
	out := make([]stream.Item, items)
	step := span / time.Duration(items)
	src := stream.SourceID(fmt.Sprintf("sensor-%d", slot))
	for k := 0; k < items; k++ {
		out[k] = stream.Item{
			Source: src,
			Value:  0.5*float64(slot+1) + 0.25*float64(k%17),
			Ts:     eventEpoch.Add(time.Duration(k)*step + time.Duration(slot)*time.Millisecond),
		}
	}
	return out
}

// pushSlot feeds one slot's workload through push in window-sized chunks,
// honoring stop. Reports whether the slot was fully pushed.
func pushSlot(push func([]stream.Item) error, slot int, cfg core.LiveConfig, items int, span time.Duration, stop <-chan struct{}) bool {
	workload := genSlot(slot, items, span)
	const chunk = 512
	for lo := 0; lo < len(workload); lo += chunk {
		select {
		case <-stop:
			return false
		default:
		}
		hi := lo + chunk
		if hi > len(workload) {
			hi = len(workload)
		}
		if err := push(workload[lo:hi]); err != nil {
			fmt.Fprintf(os.Stderr, "push slot %d: %v\n", slot, err)
			return false
		}
	}
	return true
}

// pushWorkload feeds every source slot (leaf role). Reports whether the
// whole workload went through.
func pushWorkload(sess *core.NodeSession, cfg core.LiveConfig, items int, span time.Duration, stop <-chan struct{}) bool {
	for slot := 0; slot < cfg.Spec.Sources; slot++ {
		pusher, err := sess.Pusher(slot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pusher:", err)
			return false
		}
		if !pushSlot(func(batch []stream.Item) error { return pusher.Push(batch...) }, slot, cfg, items, span, stop) {
			return false
		}
	}
	return true
}

// printWindows renders the closed windows one per line. The smoke harness
// compares these lines between the multi-process root and the single-
// process reference: start and count must match exactly.
func printWindows(windows []core.WindowResult) {
	for _, w := range windows {
		fmt.Printf("window start=%d end=%d count=%.0f sum=%.6g zeta=%d\n",
			w.Start.UnixNano(), w.End.UnixNano(),
			w.Result(query.Count).Estimate.Value,
			w.Result(query.Sum).Estimate.Value,
			w.SampleSize)
	}
}
