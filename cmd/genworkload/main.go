// Command genworkload dumps one of the evaluation workloads as CSV
// (source,value,timestamp_ns) — useful for inspecting the synthetic trace
// substitutes or feeding them to external tooling.
//
// Usage:
//
//	genworkload -workload taxi -duration 60s > taxi.csv
//	genworkload -workload skew -rate 10000 -o skew.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	var (
		load     = flag.String("workload", "gaussian", "gaussian | poisson | skew | taxi | pollution")
		rate     = flag.Float64("rate", 1000, "total items/second")
		duration = flag.Duration("duration", 10*time.Second, "trace span")
		window   = flag.Duration("window", time.Second, "generation granularity")
		seed     = flag.Uint64("seed", 2018, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	gen := build(*load, *seed, *rate)
	if gen == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *load)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintln(w, "source,value,timestamp_ns")
	start := time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)
	var count int64
	for at := start; at.Before(start.Add(*duration)); at = at.Add(*window) {
		for _, it := range gen.Generate(at, *window) {
			w.WriteString(string(it.Source))
			w.WriteByte(',')
			w.WriteString(strconv.FormatFloat(it.Value, 'g', -1, 64))
			w.WriteByte(',')
			w.WriteString(strconv.FormatInt(it.Ts.UnixNano(), 10))
			w.WriteByte('\n')
			count++
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d items\n", count)
}

func build(name string, seed uint64, rate float64) *workload.Generator {
	switch name {
	case "gaussian":
		return workload.GaussianMicro(seed, rate/4)
	case "poisson":
		return workload.PoissonMicro(seed, rate/4)
	case "skew":
		return workload.ExtremeSkew(seed, rate)
	case "taxi":
		return workload.NYCTaxi(seed, 12, rate/3.87)
	case "pollution":
		return workload.BrasovPollution(seed, int(rate/4), 1)
	default:
		return nil
	}
}
