// Command approxiot-demo runs the paper's testbed topology as a live
// deployment: a long-lived session over the in-memory broker, generator
// sources pushing through the same Ingester valves an external client would
// use, and the root's window results — approximate answers with rigorous
// error bounds — printed as they close. Interrupt (Ctrl-C) drains the
// pipeline gracefully and prints the final telemetry; a second interrupt
// aborts without draining.
//
// Usage:
//
//	approxiot-demo                     # ApproxIoT at 10%, run until Ctrl-C
//	approxiot-demo -fraction 0.5
//	approxiot-demo -strategy srs       # the SRS baseline
//	approxiot-demo -workload skew      # the Fig. 10c extreme-skew stream
//	approxiot-demo -duration 10s       # stop on its own after 10 s
//	approxiot-demo -target 0.01        # §IV-B adaptive, 1% error target
//	approxiot-demo -ops 127.0.0.1:9377 # serve /health and /metrics over HTTP
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	var (
		fraction = flag.Float64("fraction", 0.1, "end-to-end sampling fraction (0,1]")
		strategy = flag.String("strategy", "whs", "whs | srs | native | parallel")
		load     = flag.String("workload", "gaussian", "gaussian | poisson | skew | taxi | pollution")
		rate     = flag.Float64("rate", 20000, "items/s pushed per source")
		window   = flag.Duration("window", 500*time.Millisecond, "live query window")
		duration = flag.Duration("duration", 0, "stop after this long (0 = run until interrupt)")
		target   = flag.Float64("target", 0, "adaptive relative-error target (0 = frozen fraction)")
		ops      = flag.String("ops", "", "serve the operational HTTP surface (/health, /metrics, /metrics/query) on this address (empty = off)")
		seed     = flag.Uint64("seed", 2018, "random seed")
	)
	flag.Parse()

	var strat approxiot.Strategy
	switch *strategy {
	case "whs":
		strat = approxiot.WHS
	case "srs":
		strat = approxiot.SRS
	case "native":
		strat = approxiot.Native
	case "parallel":
		strat = approxiot.ParallelWHS
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	source := sources(*load, *seed)
	if source == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *load)
		os.Exit(2)
	}
	if *window < time.Millisecond {
		fmt.Fprintf(os.Stderr, "window %v too small (minimum 1ms)\n", *window)
		os.Exit(2)
	}

	cfg := approxiot.Config{
		Strategy:   strat,
		Fraction:   *fraction,
		Queries:    []approxiot.QueryKind{approxiot.Sum, approxiot.Mean, approxiot.Count},
		Confidence: approxiot.TwoSigma,
		Window:     *window,
		SourceRate: *rate,
		Seed:       *seed,
		OpsAddr:    *ops,
	}
	if *target > 0 {
		cfg.Adaptive = approxiot.NewFeedbackController(*fraction, *target)
	}

	// abortCtx is wired into Open: cancelling it is the hard stop (no
	// drain). The graceful path never touches it — Close does the draining.
	abortCtx, abort := context.WithCancel(context.Background())
	defer abort()
	d, err := approxiot.Open(abortCtx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}

	fmt.Printf("ApproxIoT live deployment — %s at %.0f%% on the 8/4/2/1 testbed, %v windows, %.0f items/s per source\n",
		strat, *fraction*100, *window, *rate)
	if addr := d.OpsAddr(); addr != "" {
		fmt.Printf("ops surface on http://%s  (/health, /metrics, /metrics/query)\n", addr)
	}
	fmt.Println("Ctrl-C drains and exits; Ctrl-C twice aborts without draining.")
	fmt.Println()

	// stop ends ingestion: closed by the first interrupt or the -duration
	// timer. The second interrupt escalates to an abort.
	stop := make(chan struct{})
	var stopOnce sync.Once
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\ninterrupt — draining in-flight windows (interrupt again to abort)")
		stopOnce.Do(func() { close(stop) })
		first := time.Now()
		for range sig {
			// Debounce duplicate deliveries of the same logical interrupt:
			// `timeout -s INT` (process-group delivery) can hand the signal
			// to this process twice back-to-back, and that must not turn a
			// graceful CI drain into an abort.
			if time.Since(first) < 250*time.Millisecond {
				continue
			}
			fmt.Println("second interrupt — aborting without drain")
			abort()
			return
		}
	}()
	if *duration > 0 {
		go func() {
			select {
			case <-time.After(*duration):
				stopOnce.Do(func() { close(stop) })
			case <-stop:
			}
		}()
	}

	// Print every window result as the root closes it — the streaming
	// subscription, not the batch result.
	printerDone := make(chan struct{})
	go func() {
		defer close(printerDone)
		i := 0
		for w := range d.Windows() {
			i++
			sum := w.Result(approxiot.Sum)
			mean := w.Result(approxiot.Mean)
			fmt.Printf("window %3d  SUM = %14.6g ± %-12.6g  MEAN = %10.6g ± %-10.6g  (ζ=%d of ~%.0f)\n",
				i, sum.Estimate.Value, sum.Bound(),
				mean.Estimate.Value, mean.Bound(),
				w.SampleSize, w.EstimatedInput)
		}
	}()

	// One pusher per source slot: generator items through the public
	// Ingester valve, paced by Config.SourceRate, until stop.
	tree := approxiot.Testbed()
	var feeders sync.WaitGroup
	for slot := 0; slot < tree.Sources; slot++ {
		ing, err := d.Ingester(slot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingester:", err)
			os.Exit(1)
		}
		feeders.Add(1)
		go func(slot int, ing *approxiot.Ingester) {
			defer feeders.Done()
			gen := source(slot)
			now := time.Now()
			chunk := *window / 4
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := gen.Generate(now, chunk)
				now = now.Add(chunk)
				if len(batch) == 0 {
					continue
				}
				if err := ing.Push(batch...); err != nil {
					return // draining or aborted
				}
			}
		}(slot, ing)
	}

	<-stop
	feeders.Wait()
	res, err := d.Close()
	<-printerDone
	if err != nil {
		fmt.Fprintln(os.Stderr, "closed with:", err)
	}
	printSummary(res)
}

// printSummary renders the final telemetry the deployment assembled:
// counters, accuracy against ground truth, latency, and per-link bytes.
func printSummary(res *approxiot.LiveResult) {
	fmt.Printf("\n— final telemetry —\n")
	produced := res.Produced
	if produced == 0 {
		produced = 1 // avoid 0/0 in the ratio below on an aborted empty run
	}
	fmt.Printf("items pushed:     %d   at root: %d (%.1f%%)   decode errors: %d\n",
		res.Produced, res.RootProcessed,
		100*float64(res.RootProcessed)/float64(produced), res.DecodeErrors)
	fmt.Printf("elapsed:          %v   throughput: %.0f items/s\n",
		res.Elapsed.Round(time.Millisecond), res.Throughput)
	fmt.Printf("windows closed:   %d\n", len(res.Windows))
	if res.TruthSum != 0 {
		loss := (res.EstimateSum - res.TruthSum) / res.TruthSum
		fmt.Printf("exact total:      %.6g\n", res.TruthSum)
		fmt.Printf("estimated total:  %.6g  (%.4f%% off)\n", res.EstimateSum, 100*loss)
	}
	if res.Latency.Count() > 0 {
		fmt.Printf("latency:          mean=%v p95=%v p99=%v\n",
			res.Latency.Mean().Round(time.Millisecond),
			res.Latency.Quantile(0.95).Round(time.Millisecond),
			res.Latency.Quantile(0.99).Round(time.Millisecond))
	}
	if len(res.Fractions) > 0 {
		fmt.Printf("fraction path:    %.3f → %.3f over %d adjustments\n",
			res.Fractions[0], res.Fractions[len(res.Fractions)-1], len(res.Fractions))
	}
	links := res.Bandwidth.Snapshot()
	fmt.Printf("bytes produced:   %.2f MB across %d links\n",
		float64(res.Bandwidth.Total())/1e6, len(links))
}

// sources builds the per-source generator for a named workload.
func sources(name string, seed uint64) func(i int) approxiot.Source {
	switch name {
	case "gaussian":
		return func(i int) approxiot.Source {
			return workload.GaussianMicro(seed+uint64(i)*211, 125)
		}
	case "poisson":
		return func(i int) approxiot.Source {
			return workload.PoissonMicro(seed+uint64(i)*211, 125)
		}
	case "skew":
		return func(i int) approxiot.Source {
			return workload.ExtremeSkew(seed+uint64(i)*211, 500)
		}
	case "taxi":
		return func(i int) approxiot.Source {
			return workload.NYCTaxi(seed+uint64(i)*211, 12, 125)
		}
	case "pollution":
		return func(i int) approxiot.Source {
			return workload.BrasovPollution(seed+uint64(i)*211, 125, 1)
		}
	default:
		return nil
	}
}
