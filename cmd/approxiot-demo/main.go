// Command approxiot-demo runs the paper's testbed topology end to end on
// simulated time and streams the root node's window results — approximate
// answers with rigorous error bounds — to stdout, followed by a run summary
// comparing the estimate against the exact ground truth.
//
// Usage:
//
//	approxiot-demo                     # ApproxIoT at 10% for 10 simulated s
//	approxiot-demo -fraction 0.5
//	approxiot-demo -strategy srs       # the SRS baseline
//	approxiot-demo -workload skew      # the Fig. 10c extreme-skew stream
//	approxiot-demo -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/workload"
)

func main() {
	var (
		fraction = flag.Float64("fraction", 0.1, "end-to-end sampling fraction (0,1]")
		strategy = flag.String("strategy", "whs", "whs | srs | native | parallel")
		load     = flag.String("workload", "gaussian", "gaussian | poisson | skew | taxi | pollution")
		duration = flag.Duration("duration", 10*time.Second, "simulated generation span")
		seed     = flag.Uint64("seed", 2018, "random seed")
	)
	flag.Parse()

	var strat approxiot.Strategy
	switch *strategy {
	case "whs":
		strat = approxiot.WHS
	case "srs":
		strat = approxiot.SRS
	case "native":
		strat = approxiot.Native
	case "parallel":
		strat = approxiot.ParallelWHS
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	source := sources(*load, *seed)
	if source == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *load)
		os.Exit(2)
	}

	cfg := approxiot.Config{
		Strategy:   strat,
		Fraction:   *fraction,
		Queries:    []approxiot.QueryKind{approxiot.Sum, approxiot.Mean, approxiot.Count},
		Confidence: approxiot.TwoSigma,
		Seed:       *seed,
	}

	fmt.Printf("ApproxIoT demo — %s at %.0f%% on the 8/4/2/1 testbed, %v of stream\n\n",
		strat, *fraction*100, *duration)

	res, err := approxiot.Simulate(cfg, source, *duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}

	for i, w := range res.Windows {
		sum := w.Result(approxiot.Sum)
		mean := w.Result(approxiot.Mean)
		fmt.Printf("window %2d  SUM = %14.6g ± %-12.6g  MEAN = %10.6g ± %-10.6g  (ζ=%d of ~%.0f)\n",
			i+1, sum.Estimate.Value, sum.Bound(),
			mean.Estimate.Value, mean.Bound(),
			w.SampleSize, w.EstimatedInput)
	}

	truth := res.TotalTruth()
	est := res.TotalEstimate(approxiot.Sum)
	fmt.Printf("\nitems generated: %d   items at root: %d (%.1f%%)\n",
		res.Generated, res.RootObserved, 100*float64(res.RootObserved)/float64(res.Generated))
	fmt.Printf("exact total:     %.6g\n", truth)
	fmt.Printf("estimated total: %.6g\n", est)
	fmt.Printf("accuracy loss:   %.4f%%\n", 100*res.AccuracyLoss(approxiot.Sum))
	fmt.Printf("latency:         mean=%v p95=%v\n", res.Latency.Mean().Round(time.Millisecond),
		res.Latency.Quantile(0.95).Round(time.Millisecond))
	var mb float64
	for l, b := range res.LayerBytes {
		fmt.Printf("layer %d traffic: %.2f MB\n", l, float64(b)/1e6)
		mb += float64(b) / 1e6
	}
	fmt.Printf("total traffic:   %.2f MB\n", mb)
}

// sources builds the per-source generator for a named workload.
func sources(name string, seed uint64) func(i int) approxiot.Source {
	switch name {
	case "gaussian":
		return func(i int) approxiot.Source {
			return workload.GaussianMicro(seed+uint64(i)*211, 125)
		}
	case "poisson":
		return func(i int) approxiot.Source {
			return workload.PoissonMicro(seed+uint64(i)*211, 125)
		}
	case "skew":
		return func(i int) approxiot.Source {
			return workload.ExtremeSkew(seed+uint64(i)*211, 500)
		}
	case "taxi":
		return func(i int) approxiot.Source {
			return workload.NYCTaxi(seed+uint64(i)*211, 12, 125)
		}
	case "pollution":
		return func(i int) approxiot.Source {
			return workload.BrasovPollution(seed+uint64(i)*211, 125, 1)
		}
	default:
		return nil
	}
}
