// Command approxbench regenerates the figures of the ApproxIoT paper's
// evaluation on this repository's implementation.
//
// Usage:
//
//	approxbench -fig all            # every paper figure + ablations (quick)
//	approxbench -fig 5a,10c         # specific figures
//	approxbench -fig list           # list known figure IDs
//	approxbench -fig all -full      # paper-scale runs (slower)
//	approxbench -fig 6 -reps 5      # override repetition count
//
// Output is one aligned table per figure — the same series the paper plots.
// Absolute numbers differ from the paper's 25-node testbed; EXPERIMENTS.md
// records the expected shapes and the measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/approxiot/approxiot/internal/bench"
)

func main() {
	var (
		figs     = flag.String("fig", "all", "comma-separated figure IDs, 'all', or 'list'")
		full     = flag.Bool("full", false, "paper-scale runs (slower, tighter estimates)")
		reps     = flag.Int("reps", 0, "override repetitions for accuracy figures")
		duration = flag.Duration("duration", 0, "override simulated generation span")
		seed     = flag.Uint64("seed", 0, "override base seed")
	)
	flag.Parse()

	scale := bench.Quick()
	if *full {
		scale = bench.Full()
	}
	if *reps > 0 {
		scale.Reps = *reps
	}
	if *duration > 0 {
		scale.SimDuration = *duration
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	if *figs == "list" {
		fmt.Println("known figures:", strings.Join(bench.IDs(), " "))
		return
	}

	ids := bench.IDs()
	if *figs != "all" {
		ids = strings.Split(*figs, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	failed := false
	for _, id := range ids {
		start := time.Now()
		fig, err := bench.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(fig.Format())
		fmt.Printf("  [generated in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
