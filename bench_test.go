// Figure-reproduction benchmarks: one testing.B entry per figure of the
// paper's evaluation (plus the ablations). Each benchmark regenerates its
// figure at the Quick scale and prints the series table; headline values
// are also attached as custom benchmark metrics.
//
//	go test -bench=BenchmarkFig -benchtime=1x
//
// regenerates everything; cmd/approxbench does the same with flags
// (including -full for paper-scale runs).
package approxiot_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/bench"
	"github.com/approxiot/approxiot/internal/workload"
)

var (
	figMu    sync.Mutex
	figCache = map[string]bench.Figure{}
)

// figure computes (once per process) and prints a figure.
func figure(b *testing.B, id string) bench.Figure {
	b.Helper()
	figMu.Lock()
	defer figMu.Unlock()
	if fig, ok := figCache[id]; ok {
		return fig
	}
	fig, err := bench.Run(id, bench.Quick())
	if err != nil {
		b.Fatalf("figure %s: %v", id, err)
	}
	figCache[id] = fig
	fmt.Println(fig.Format())
	return fig
}

// benchItems returns the per-iteration item count for the live throughput
// benchmarks: def by default, overridable with APPROXIOT_BENCH_ITEMS for
// longer runs where the fixed ~2-3 window drain tail should be amortized
// away (see EXPERIMENTS.md).
func benchItems(def int64) int64 {
	if v := os.Getenv("APPROXIOT_BENCH_ITEMS"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// reportSeries attaches a series' value at x as a benchmark metric.
func reportSeries(b *testing.B, fig bench.Figure, label string, x float64, unit string) {
	if s := fig.Find(label); s != nil {
		if y, ok := s.At(x); ok {
			b.ReportMetric(y, unit)
		}
	}
}

func BenchmarkFig05a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "5a")
		reportSeries(b, fig, "ApproxIoT", 10, "loss%@10")
	}
}

func BenchmarkFig05b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "5b")
		reportSeries(b, fig, "ApproxIoT", 10, "loss%@10")
	}
}

func BenchmarkFig06(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "6")
		reportSeries(b, fig, "ApproxIoT", 10, "items/s@10")
	}
}

func BenchmarkFig07(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "7")
		reportSeries(b, fig, "ApproxIoT", 10, "saving%@10")
	}
}

func BenchmarkFig08(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "8")
		reportSeries(b, fig, "ApproxIoT", 10, "latency_s@10")
	}
}

func BenchmarkFig09(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "9")
		reportSeries(b, fig, "ApproxIoT", 4, "latency_s@4s")
	}
}

func BenchmarkFig10a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "10a")
		reportSeries(b, fig, "ApproxIoT", 1, "loss%@setting1")
	}
}

func BenchmarkFig10b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "10b")
		reportSeries(b, fig, "ApproxIoT", 1, "loss%@setting1")
	}
}

func BenchmarkFig10c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "10c")
		reportSeries(b, fig, "SRS", 10, "srs_loss%@10")
	}
}

func BenchmarkFig11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "11a")
		reportSeries(b, fig, "NYC-Taxi", 10, "loss%@10")
	}
}

func BenchmarkFig11b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := figure(b, "11b")
		reportSeries(b, fig, "NYC-Taxi", 10, "items/s@10")
	}
}

func BenchmarkAblationHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figure(b, "A1")
	}
}

func BenchmarkAblationAllocator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figure(b, "A2")
	}
}

func BenchmarkAblationParallelWorkers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figure(b, "A3")
	}
}

func BenchmarkAblationAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figure(b, "A4")
	}
}

// BenchmarkLiveAdaptive measures what the §IV-B control plane costs on the
// live tree: the same fully-sharded deployment once with a frozen 25%
// fraction and once with a FeedbackController steering toward a 2% error
// target (unpaced — throughput is the point here, so no SourceRate). The
// adaptive run's extra work is one Observe per window, one control record
// published, and one control-topic drain per member per window; throughput
// should be within noise of the frozen run.
func BenchmarkLiveAdaptive(b *testing.B) {
	source := func(i int) approxiot.Source {
		return workload.GaussianMicro(7+uint64(i)*131, 1500)
	}
	run := func(b *testing.B, adaptive bool) {
		b.ReportAllocs()
		items := benchItems(48000)
		var throughput float64
		for i := 0; i < b.N; i++ {
			cfg := approxiot.Config{
				Fraction:    0.25,
				Queries:     []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
				Partitions:  8,
				RootShards:  4,
				LayerShards: 4,
				Seed:        7,
			}
			if adaptive {
				cfg.Adaptive = approxiot.NewFeedbackController(0.25, 0.02)
			}
			res, err := approxiot.Run(cfg, source, items)
			if err != nil {
				b.Fatal(err)
			}
			throughput += res.Throughput
		}
		b.ReportMetric(throughput/float64(b.N), "items/s")
	}
	b.Run("frozen", func(b *testing.B) { run(b, false) })
	b.Run("adaptive", func(b *testing.B) { run(b, true) })
}

// BenchmarkLiveLayerShards measures end-to-end live throughput as every
// tier of the tree scales out: shards×-member consumer groups at each edge
// layer plus a shards×-member root group over 8-partition topics. On a
// multi-core runner throughput grows with the shard count because every
// node's sampling work — not just the root's — spreads across members.
func BenchmarkLiveLayerShards(b *testing.B) {
	source := func(i int) approxiot.Source {
		return workload.GaussianMicro(7+uint64(i)*131, 1500)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			items := benchItems(48000)
			var throughput float64
			for i := 0; i < b.N; i++ {
				res, err := approxiot.Run(approxiot.Config{
					Fraction:    0.25,
					Queries:     []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
					Partitions:  8,
					RootShards:  shards,
					LayerShards: shards,
					Seed:        7,
				}, source, items)
				if err != nil {
					b.Fatal(err)
				}
				throughput += res.Throughput
			}
			b.ReportMetric(throughput/float64(b.N), "items/s")
		})
	}
}

// BenchmarkLiveEventTime prices the event-time machinery against
// processing-time windows on the same single-member deployment: per-record
// window assignment by timestamp, per-chain watermark tracking, and the
// heartbeat ladder, versus "whatever the ticker finds buffered".
// Generator timestamps advance with the feed, so watermarks progress and
// windows close in-band, not just at the end-of-stream sweep. The two
// rows are an end-to-end cost comparison, not like-for-like windows: the
// event-time run closes 1 s event windows driven by the generator's
// virtual timeline, the processing-time run closes 50 ms wall-clock ones,
// so window counts (and with them per-window overheads) differ by design.
func BenchmarkLiveEventTime(b *testing.B) {
	source := func(i int) approxiot.Source {
		return workload.GaussianMicro(7+uint64(i)*131, 1500)
	}
	run := func(b *testing.B, eventTime bool) {
		b.ReportAllocs()
		items := benchItems(48000)
		var throughput float64
		for i := 0; i < b.N; i++ {
			cfg := approxiot.Config{
				Fraction: 0.25,
				Queries:  []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
				Seed:     7,
			}
			if eventTime {
				cfg.EventTime = true
				cfg.AllowedLateness = 500 * time.Millisecond
			}
			res, err := approxiot.Run(cfg, source, items)
			if err != nil {
				b.Fatal(err)
			}
			throughput += res.Throughput
		}
		b.ReportMetric(throughput/float64(b.N), "items/s")
	}
	b.Run("processing-time", func(b *testing.B) { run(b, false) })
	b.Run("event-time", func(b *testing.B) { run(b, true) })
}

// BenchmarkLiveSliding prices pane composition (Config.Slide) on the live
// tree: the same event-time deployment once with plain tumbling windows and
// once additionally composing a 4-pane sliding estimate at every root window
// close. Sliding work is O(slide) per window at the root only — never on the
// per-record path — so throughput should stay within noise of tumbling.
func BenchmarkLiveSliding(b *testing.B) {
	source := func(i int) approxiot.Source {
		return workload.GaussianMicro(7+uint64(i)*131, 1500)
	}
	run := func(b *testing.B, slide int) {
		b.ReportAllocs()
		items := benchItems(48000)
		var throughput float64
		for i := 0; i < b.N; i++ {
			res, err := approxiot.Run(approxiot.Config{
				Fraction:        0.25,
				Queries:         []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
				Slide:           slide,
				EventTime:       true,
				AllowedLateness: 500 * time.Millisecond,
				Seed:            7,
			}, source, items)
			if err != nil {
				b.Fatal(err)
			}
			throughput += res.Throughput
		}
		b.ReportMetric(throughput/float64(b.N), "items/s")
	}
	b.Run("tumbling", func(b *testing.B) { run(b, 0) })
	b.Run("slide=4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkLiveTopK prices the extended query kinds against the linear
// ones: the same sharded deployment answering SUM+COUNT only, versus
// additionally ranking the top-8 strata and estimating the p90 per window.
// Both extensions execute at root window close over the merged reservoir
// (top-k sorts strata, the quantile sorts sampled items), so the per-record
// hot path — sampling, batching, merging — is untouched and the rows should
// differ only by the per-window post-processing.
func BenchmarkLiveTopK(b *testing.B) {
	source := func(i int) approxiot.Source {
		return workload.GaussianMicro(7+uint64(i)*131, 1500)
	}
	run := func(b *testing.B, extended bool) {
		b.ReportAllocs()
		items := benchItems(48000)
		var throughput float64
		for i := 0; i < b.N; i++ {
			queries := []approxiot.QueryKind{approxiot.Sum, approxiot.Count}
			if extended {
				queries = append(queries, approxiot.TopKOf(8), approxiot.QuantileOf(0.9))
			}
			res, err := approxiot.Run(approxiot.Config{
				Fraction:    0.25,
				Queries:     queries,
				Partitions:  8,
				RootShards:  4,
				LayerShards: 4,
				Seed:        7,
			}, source, items)
			if err != nil {
				b.Fatal(err)
			}
			throughput += res.Throughput
		}
		b.ReportMetric(throughput/float64(b.N), "items/s")
	}
	b.Run("linear", func(b *testing.B) { run(b, false) })
	b.Run("topk+quantile", func(b *testing.B) { run(b, true) })
}

// BenchmarkLiveOpsSurface prices the operational surface: the same pushed
// deployment with and without Config.OpsAddr. The ops sampler polls
// Snapshot once a second off the hot path, so the two rows should differ
// only by run-to-run noise — this benchmark is the receipt for that claim
// (EXPERIMENTS.md records the numbers).
func BenchmarkLiveOpsSurface(b *testing.B) {
	run := func(b *testing.B, ops bool) {
		b.ReportAllocs()
		items := benchItems(48000)
		var throughput float64
		for i := 0; i < b.N; i++ {
			cfg := approxiot.Config{
				Fraction: 0.25,
				Queries:  []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
				Seed:     7,
			}
			if ops {
				cfg.OpsAddr = "127.0.0.1:0"
			}
			d, err := approxiot.Open(nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Generator-fed pushes through the public valves, every slot
			// concurrently — the same feed shape Run uses.
			tree := cfg.Tree
			if tree.Sources == 0 {
				tree = approxiot.Testbed()
			}
			perSlot := items / int64(tree.Sources)
			var wg sync.WaitGroup
			for slot := 0; slot < tree.Sources; slot++ {
				ing, err := d.Ingester(slot)
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func(slot int, ing *approxiot.Ingester) {
					defer wg.Done()
					gen := workload.GaussianMicro(7+uint64(slot)*131, 1500)
					now := time.Now()
					var sent int64
					for sent < perSlot {
						batch := gen.Generate(now, 12*time.Millisecond)
						now = now.Add(12 * time.Millisecond)
						if len(batch) == 0 {
							continue
						}
						if int64(len(batch)) > perSlot-sent {
							batch = batch[:perSlot-sent]
						}
						if err := ing.Push(batch...); err != nil {
							return
						}
						sent += int64(len(batch))
					}
				}(slot, ing)
			}
			wg.Wait()
			res, err := d.Close()
			if err != nil {
				b.Fatal(err)
			}
			throughput += res.Throughput
		}
		b.ReportMetric(throughput/float64(b.N), "items/s")
	}
	b.Run("no-ops", func(b *testing.B) { run(b, false) })
	b.Run("ops", func(b *testing.B) { run(b, true) })
}
