package query

import "github.com/approxiot/approxiot/internal/stats"

// Slider composes consecutive tumbling-window (pane) estimates into a
// sliding-window aggregate, the pane-based technique of the sliding-window
// literature the paper builds on ([10], [11]): a sliding window of length
// k·pane is the combination of the last k panes. Because panes are sampled
// independently, SUM/COUNT estimates and their variances both add, so the
// sliding answer keeps a rigorous error bound with no re-aggregation.
//
// Slider works for additive aggregates (Sum, Count). The zero value is not
// usable; construct with NewSlider.
type Slider struct {
	panes    []stats.Estimate
	capacity int
	head     int
	filled   int
}

// NewSlider returns a slider over the last k panes. k < 1 is treated as 1.
func NewSlider(k int) *Slider {
	if k < 1 {
		k = 1
	}
	return &Slider{panes: make([]stats.Estimate, k), capacity: k}
}

// Panes returns the configured window length in panes.
func (s *Slider) Panes() int { return s.capacity }

// Len returns how many panes are currently in the window.
func (s *Slider) Len() int { return s.filled }

// Push appends the newest pane estimate, evicting the oldest when full, and
// returns the current sliding estimate.
func (s *Slider) Push(pane stats.Estimate) stats.Estimate {
	s.panes[s.head] = pane
	s.head = (s.head + 1) % s.capacity
	if s.filled < s.capacity {
		s.filled++
	}
	return s.Current()
}

// Current returns the sliding aggregate over the panes in the window:
// values and variances summed.
func (s *Slider) Current() stats.Estimate {
	var out stats.Estimate
	for i := 0; i < s.filled; i++ {
		p := s.panes[(s.head-1-i+s.capacity*2)%s.capacity]
		out.Value += p.Value
		out.Variance += p.Variance
	}
	return out
}

// Reset empties the window.
func (s *Slider) Reset() {
	s.head = 0
	s.filled = 0
}
