package query

import (
	"math"
	"sort"
	"testing"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

func TestQuantileUnweightedMedian(t *testing.T) {
	theta := []stream.Batch{{Source: "s", Weight: 1, Items: items("s", 1, 2, 3, 4, 5, 6, 7, 8, 9)}}
	res := Quantile(theta, 0.5)
	if res.Value != 5 {
		t.Fatalf("median = %g, want 5", res.Value)
	}
	if res.SampleSize != 9 {
		t.Fatalf("SampleSize = %d, want 9", res.SampleSize)
	}
	if res.Lo > res.Value || res.Hi < res.Value {
		t.Fatalf("interval [%g,%g] excludes the estimate %g", res.Lo, res.Hi, res.Value)
	}
}

func TestQuantileRespectsWeights(t *testing.T) {
	// Value 100 carries weight 9, value 1 carries weight 1: every quantile
	// above 0.1 must be 100.
	theta := []stream.Batch{
		{Source: "a", Weight: 1, Items: items("a", 1)},
		{Source: "b", Weight: 9, Items: items("b", 100)},
	}
	if got := Quantile(theta, 0.5).Value; got != 100 {
		t.Fatalf("weighted median = %g, want 100", got)
	}
	if got := Quantile(theta, 0.05).Value; got != 1 {
		t.Fatalf("5th percentile = %g, want 1", got)
	}
}

func TestQuantileInvalidInputs(t *testing.T) {
	theta := []stream.Batch{{Source: "s", Weight: 1, Items: items("s", 1)}}
	for _, q := range []float64{0, 1, -0.5, 2} {
		if res := Quantile(theta, q); res.Value != 0 || res.SampleSize != 0 {
			t.Errorf("Quantile(q=%g) = %+v, want zero result", q, res)
		}
	}
	if res := Quantile(nil, 0.5); res.Value != 0 {
		t.Errorf("Quantile(empty) = %+v", res)
	}
}

func TestQuantileOnSampledStreamApproximatesTruth(t *testing.T) {
	// Sample 10% of a known distribution with weights 10; the weighted
	// sample quantile must approximate the population quantile.
	rng := xrand.New(9)
	var population []float64
	for i := 0; i < 20000; i++ {
		population = append(population, rng.Normal(500, 100))
	}
	var kept []stream.Item
	for _, v := range population {
		if rng.Bernoulli(0.1) {
			kept = append(kept, stream.Item{Source: "s", Value: v})
		}
	}
	theta := []stream.Batch{{Source: "s", Weight: 10, Items: kept}}
	sort.Float64s(population)

	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		truth := population[int(q*float64(len(population)))]
		got := Quantile(theta, q)
		if math.Abs(got.Value-truth) > 15 { // ~0.15σ tolerance
			t.Errorf("q=%g: estimate %.1f vs truth %.1f", q, got.Value, truth)
		}
		if got.Lo > truth || got.Hi < truth {
			// The 95% interval can miss occasionally; only flag wild misses.
			if math.Abs(got.Value-truth) > 30 {
				t.Errorf("q=%g: interval [%.1f,%.1f] far from truth %.1f", q, got.Lo, got.Hi, truth)
			}
		}
	}
}

func TestTopKRanking(t *testing.T) {
	theta := []stream.Batch{
		{Source: "small", Weight: 1, Items: items("small", 5)},           // 5
		{Source: "big", Weight: 10, Items: items("big", 100, 200)},       // 3000
		{Source: "mid", Weight: 2, Items: items("mid", 50, 60, 70)},      // 360
		{Source: "rare-huge", Weight: 1, Items: items("rare-huge", 9e6)}, // 9e6
	}
	top := TopK(theta, 2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d groups", len(top))
	}
	if top[0].Source != "rare-huge" || top[1].Source != "big" {
		t.Fatalf("ranking = [%s, %s], want [rare-huge, big]", top[0].Source, top[1].Source)
	}
	if top[0].Sum.Value != 9e6 {
		t.Fatalf("top sum = %g, want 9e6", top[0].Sum.Value)
	}
	if top[1].Count != 20 { // 2 items × weight 10
		t.Fatalf("big count = %g, want 20", top[1].Count)
	}
}

func TestTopKDefaultsToAllGroups(t *testing.T) {
	theta := []stream.Batch{
		{Source: "a", Weight: 1, Items: items("a", 1)},
		{Source: "b", Weight: 1, Items: items("b", 2)},
	}
	if got := len(TopK(theta, 0)); got != 2 {
		t.Fatalf("TopK(0) returned %d groups, want all 2", got)
	}
	if got := len(TopK(theta, 99)); got != 2 {
		t.Fatalf("TopK(99) returned %d groups, want 2", got)
	}
}

func TestTopKTieBreaksLexicographically(t *testing.T) {
	theta := []stream.Batch{
		{Source: "zeta", Weight: 1, Items: items("zeta", 7)},
		{Source: "alpha", Weight: 1, Items: items("alpha", 7)},
	}
	top := TopK(theta, 2)
	if top[0].Source != "alpha" {
		t.Fatalf("tie broken to %s, want alpha first", top[0].Source)
	}
}

func TestTopKEmpty(t *testing.T) {
	if got := TopK(nil, 3); len(got) != 0 {
		t.Fatalf("TopK(nil) = %v", got)
	}
}
