package query

import (
	"math"
	"sort"

	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
)

// This file implements the query classes the paper defers to future work
// (§VIII: "we plan to extend the system to support more complex queries
// such as joins, top-k, etc."): approximate quantiles and top-k over the
// weighted Θ store. Both are estimators over the Horvitz–Thompson-weighted
// sample, so they compose with the same hierarchical sampling pipeline.

// QuantileResult is an approximate quantile with an order-statistic
// confidence interval.
type QuantileResult struct {
	// Q is the requested quantile in (0, 1).
	Q float64
	// Value is the weighted sample quantile.
	Value float64
	// Lo and Hi bound the quantile with ~95% confidence, from the normal
	// approximation to the rank distribution (rank ± 2·√(q(1−q)·ζ)).
	Lo, Hi float64
	// SampleSize is ζ, the number of sampled items used.
	SampleSize int64
}

// Quantile estimates the q-th quantile of the original stream's values from
// a weighted Θ store: items are ranked by value and weights accumulate until
// q·Ŵ of the estimated total weight is covered. An empty store or invalid q
// yields a zero result.
func Quantile(theta []stream.Batch, q float64) QuantileResult {
	if q <= 0 || q >= 1 {
		return QuantileResult{Q: q}
	}
	var (
		items       []weightedValue
		totalWeight float64
	)
	for _, b := range theta {
		for _, it := range b.Items {
			items = append(items, weightedValue{v: it.Value, w: b.Weight})
			totalWeight += b.Weight
		}
	}
	if len(items) == 0 || totalWeight <= 0 {
		return QuantileResult{Q: q}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })

	res := QuantileResult{Q: q, SampleSize: int64(len(items))}
	res.Value = weightedRankValue(items, q*totalWeight)

	// Rank confidence interval: the number of sampled items below the true
	// quantile is ~Binomial(ζ, q); two standard deviations of rank map to
	// a value interval through the same cumulative-weight walk.
	zeta := float64(len(items))
	span := 2 * math.Sqrt(q*(1-q)*zeta) / zeta // rank fraction half-width
	loQ, hiQ := q-span, q+span
	if loQ < 0 {
		loQ = 0
	}
	if hiQ > 1 {
		hiQ = 1
	}
	res.Lo = weightedRankValue(items, loQ*totalWeight)
	res.Hi = weightedRankValue(items, hiQ*totalWeight)
	return res
}

type weightedValue struct{ v, w float64 }

// weightedRankValue walks the sorted weighted items until the cumulative
// weight reaches target and returns that item's value.
func weightedRankValue(items []weightedValue, target float64) float64 {
	var cum float64
	for _, it := range items {
		cum += it.w
		if cum >= target {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// GroupEstimate is one sub-stream's entry in a top-k answer.
type GroupEstimate struct {
	Source stream.SourceID
	// Sum is the estimated SUM of the group's items (Eq. 3) with its
	// Eq. 11 variance.
	Sum stats.Estimate
	// Count is the estimated number of original items in the group.
	Count float64
}

// TopK estimates the k sub-streams with the largest SUM. Because every
// sub-stream keeps a reservoir, even rare groups are ranked — the property
// simple random sampling loses. Ties rank lexicographically for
// reproducibility; k <= 0 or k beyond the group count returns all groups.
func TopK(theta []stream.Batch, k int) []GroupEstimate {
	strata, sources := Strata(theta)
	return topKGroups(strata, sources, k)
}

// topKGroups ranks already-stratified groups by estimated SUM; shared by the
// standalone TopK helper and Engine.Run's TopKOf path so both answer
// identically.
func topKGroups(strata []*stats.Stratum, sources []stream.SourceID, k int) []GroupEstimate {
	groups := make([]GroupEstimate, len(sources))
	for i, src := range sources {
		groups[i] = GroupEstimate{
			Source: src,
			Sum:    stats.Sum(strata[i : i+1]),
			Count:  strata[i].EstimatedCount(),
		}
	}
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].Sum.Value != groups[j].Sum.Value {
			return groups[i].Sum.Value > groups[j].Sum.Value
		}
		return groups[i].Source < groups[j].Source
	})
	if k > 0 && k < len(groups) {
		groups = groups[:k]
	}
	return groups
}
