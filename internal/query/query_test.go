package query

import (
	"math"
	"strings"
	"testing"

	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
)

func items(src stream.SourceID, vals ...float64) []stream.Item {
	out := make([]stream.Item, len(vals))
	for i, v := range vals {
		out[i] = stream.Item{Source: src, Value: v}
	}
	return out
}

func TestSumOverWeightedTheta(t *testing.T) {
	// Paper Fig. 3: Θ = {(3, {5}), (3, {3})} → SUM = 24.
	theta := []stream.Batch{
		{Source: "s", Weight: 3, Items: items("s", 5)},
		{Source: "s", Weight: 3, Items: items("s", 3)},
	}
	res := NewEngine().Run(Sum, theta)
	if res.Estimate.Value != 24 {
		t.Fatalf("SUM = %g, want 24", res.Estimate.Value)
	}
	if res.SampleSize != 2 {
		t.Fatalf("SampleSize = %d, want 2", res.SampleSize)
	}
	if res.EstimatedInput != 6 {
		t.Fatalf("EstimatedInput = %g, want 6", res.EstimatedInput)
	}
}

func TestSumAcrossSubstreams(t *testing.T) {
	theta := []stream.Batch{
		{Source: "a", Weight: 2, Items: items("a", 1, 2, 3)}, // 12
		{Source: "b", Weight: 1, Items: items("b", 10)},      // 10
	}
	res := NewEngine().Run(Sum, theta)
	if res.Estimate.Value != 22 {
		t.Fatalf("SUM = %g, want 22", res.Estimate.Value)
	}
}

func TestMeanQuery(t *testing.T) {
	theta := []stream.Batch{
		{Source: "a", Weight: 2, Items: items("a", 1, 3)}, // ĉ=4, mean 2
		{Source: "b", Weight: 1, Items: items("b", 10)},   // ĉ=1, mean 10
	}
	res := NewEngine().Run(Mean, theta)
	want := (4.0*2 + 1.0*10) / 5.0
	if math.Abs(res.Estimate.Value-want) > 1e-12 {
		t.Fatalf("MEAN = %g, want %g", res.Estimate.Value, want)
	}
}

func TestCountQuery(t *testing.T) {
	theta := []stream.Batch{
		{Source: "a", Weight: 5, Items: items("a", 1, 1)},
		{Source: "b", Weight: 1, Items: items("b", 1)},
	}
	res := NewEngine().Run(Count, theta)
	if res.Estimate.Value != 11 {
		t.Fatalf("COUNT = %g, want 11", res.Estimate.Value)
	}
	if res.Estimate.Variance != 0 {
		t.Fatalf("COUNT variance = %g, want 0", res.Estimate.Variance)
	}
}

func TestEmptyTheta(t *testing.T) {
	res := NewEngine().Run(Sum, nil)
	if res.Estimate.Value != 0 || res.SampleSize != 0 {
		t.Fatalf("empty Θ produced %+v", res)
	}
}

func TestPerSubstreamBreakdown(t *testing.T) {
	theta := []stream.Batch{
		{Source: "a", Weight: 2, Items: items("a", 1, 2)},
		{Source: "b", Weight: 3, Items: items("b", 10)},
	}
	res := NewEngine(WithPerSubstream()).Run(Sum, theta)
	if got := res.PerSubstream["a"].Value; got != 6 {
		t.Fatalf("per-substream a = %g, want 6", got)
	}
	if got := res.PerSubstream["b"].Value; got != 30 {
		t.Fatalf("per-substream b = %g, want 30", got)
	}
}

func TestPerSubstreamOffByDefault(t *testing.T) {
	res := NewEngine().Run(Sum, []stream.Batch{{Source: "a", Weight: 1, Items: items("a", 1)}})
	if res.PerSubstream != nil {
		t.Fatal("PerSubstream populated without WithPerSubstream")
	}
}

func TestConfidencePropagates(t *testing.T) {
	theta := []stream.Batch{{Source: "a", Weight: 2, Items: items("a", 1, 5, 9)}}
	res99 := NewEngine(WithConfidence(stats.ThreeSigma)).Run(Sum, theta)
	res68 := NewEngine(WithConfidence(stats.OneSigma)).Run(Sum, theta)
	if res99.Confidence != stats.ThreeSigma {
		t.Fatalf("Confidence = %v, want ThreeSigma", res99.Confidence)
	}
	if !(res99.Bound() > res68.Bound()) {
		t.Fatalf("3σ bound %g not wider than 1σ bound %g", res99.Bound(), res68.Bound())
	}
}

func TestRunAllSharesTheta(t *testing.T) {
	theta := []stream.Batch{{Source: "a", Weight: 2, Items: items("a", 1, 3)}}
	results := NewEngine().RunAll([]Kind{Sum, Mean, Count}, theta)
	if len(results) != 3 {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	if results[0].Kind != Sum || results[1].Kind != Mean || results[2].Kind != Count {
		t.Fatal("RunAll result order mismatch")
	}
	if results[0].Estimate.Value != 8 || results[2].Estimate.Value != 4 {
		t.Fatalf("SUM=%g COUNT=%g, want 8 and 4", results[0].Estimate.Value, results[2].Estimate.Value)
	}
}

func TestResultString(t *testing.T) {
	theta := []stream.Batch{{Source: "a", Weight: 1, Items: items("a", 2)}}
	s := NewEngine().Run(Sum, theta).String()
	if !strings.Contains(s, "SUM") || !strings.Contains(s, "±") {
		t.Fatalf("Result.String() = %q, want form 'SUM = x ± y'", s)
	}
}

func TestKindString(t *testing.T) {
	if Sum.String() != "SUM" || Mean.String() != "MEAN" || Count.String() != "COUNT" {
		t.Fatal("Kind.String() wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Fatal("unknown Kind should include the number")
	}
}

func TestUnknownKindYieldsZeroEstimate(t *testing.T) {
	theta := []stream.Batch{{Source: "a", Weight: 1, Items: items("a", 2)}}
	res := NewEngine().Run(Kind(42), theta)
	if res.Estimate.Value != 0 {
		t.Fatalf("unknown kind produced %g", res.Estimate.Value)
	}
}

func TestStrataSortedDeterministic(t *testing.T) {
	theta := []stream.Batch{
		{Source: "z", Weight: 1, Items: items("z", 1)},
		{Source: "a", Weight: 1, Items: items("a", 1)},
		{Source: "m", Weight: 1, Items: items("m", 1)},
	}
	_, sources := Strata(theta)
	if sources[0] != "a" || sources[1] != "m" || sources[2] != "z" {
		t.Fatalf("sources = %v, want sorted", sources)
	}
}

func BenchmarkSumQuery(b *testing.B) {
	var theta []stream.Batch
	for s := 0; s < 8; s++ {
		src := stream.SourceID(string(rune('a' + s)))
		vals := make([]float64, 500)
		for i := range vals {
			vals[i] = float64(i)
		}
		theta = append(theta, stream.Batch{Source: src, Weight: 2, Items: items(src, vals...)})
	}
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(Sum, theta)
	}
}
