// Package query executes the approximate linear queries ApproxIoT's root
// node supports — SUM, MEAN, and COUNT over a window's Θ store of weighted
// batches (§III-C) — and attaches the §III-D error bounds to every answer.
// The paper's prototype ran these as Kafka Streams DSL jobs; here they are
// direct aggregations over the stratified estimates.
package query

import (
	"fmt"
	"sort"

	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
)

// Kind selects the aggregate a query computes.
type Kind int

// Supported linear queries (the paper defers joins/top-k to future work).
const (
	Sum Kind = iota + 1
	Mean
	Count
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Sum:
		return "SUM"
	case Mean:
		return "MEAN"
	case Count:
		return "COUNT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result is one approximate answer in the paper's "result ± error" form.
type Result struct {
	Kind       Kind
	Estimate   stats.Estimate
	Confidence stats.Confidence
	// SampleSize is ζ summed over sub-streams: items the root aggregated.
	SampleSize int64
	// EstimatedInput is Σ ĉ_{i,b}: the estimated original item count.
	EstimatedInput float64
	// PerSubstream holds the per-stratum estimates when requested.
	PerSubstream map[stream.SourceID]stats.Estimate
}

// Bound returns the half-width of the confidence interval.
func (r Result) Bound() float64 { return r.Estimate.Bound(r.Confidence) }

// Interval returns the [lo, hi] confidence interval.
func (r Result) Interval() (lo, hi float64) { return r.Estimate.Interval(r.Confidence) }

// String formats the answer the way the root node writes it.
func (r Result) String() string {
	return fmt.Sprintf("%s = %.6g ± %.6g (%s, ζ=%d)",
		r.Kind, r.Estimate.Value, r.Bound(), r.Confidence, r.SampleSize)
}

// Engine evaluates queries over Θ stores.
type Engine struct {
	conf         stats.Confidence
	perSubstream bool
}

// Option customizes an Engine.
type Option func(*Engine)

// WithConfidence sets the error-bound level (default TwoSigma / 95%).
func WithConfidence(c stats.Confidence) Option {
	return func(e *Engine) { e.conf = c }
}

// WithPerSubstream includes per-stratum estimates in every Result.
func WithPerSubstream() Option {
	return func(e *Engine) { e.perSubstream = true }
}

// NewEngine returns a query engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{conf: stats.TwoSigma}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Strata folds a Θ store into per-sub-stream accumulators, sorted by source
// for deterministic iteration.
func Strata(theta []stream.Batch) ([]*stats.Stratum, []stream.SourceID) {
	bySource := make(map[stream.SourceID]*stats.Stratum)
	for _, b := range theta {
		s, ok := bySource[b.Source]
		if !ok {
			s = &stats.Stratum{}
			bySource[b.Source] = s
		}
		s.AddBatch(b.Weight, b.Values())
	}
	sources := make([]stream.SourceID, 0, len(bySource))
	for src := range bySource {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	strata := make([]*stats.Stratum, len(sources))
	for i, src := range sources {
		strata[i] = bySource[src]
	}
	return strata, sources
}

// Run evaluates one query over the window's Θ store.
func (e *Engine) Run(kind Kind, theta []stream.Batch) Result {
	strata, sources := Strata(theta)
	res := Result{Kind: kind, Confidence: e.conf}
	for _, s := range strata {
		res.SampleSize += s.SampleCount()
		res.EstimatedInput += s.EstimatedCount()
	}
	switch kind {
	case Sum:
		res.Estimate = stats.Sum(strata)
	case Mean:
		res.Estimate = stats.Mean(strata)
	case Count:
		res.Estimate = stats.Count(strata)
	default:
		res.Estimate = stats.Estimate{}
	}
	if e.perSubstream {
		res.PerSubstream = make(map[stream.SourceID]stats.Estimate, len(sources))
		for i, src := range sources {
			one := []*stats.Stratum{strata[i]}
			switch kind {
			case Sum:
				res.PerSubstream[src] = stats.Sum(one)
			case Mean:
				res.PerSubstream[src] = stats.Mean(one)
			case Count:
				res.PerSubstream[src] = stats.Count(one)
			}
		}
	}
	return res
}

// RunAll evaluates several query kinds over the same Θ store, sharing the
// stratification pass.
func (e *Engine) RunAll(kinds []Kind, theta []stream.Batch) []Result {
	out := make([]Result, len(kinds))
	for i, k := range kinds {
		out[i] = e.Run(k, theta)
	}
	return out
}
