// Package query executes the approximate linear queries ApproxIoT's root
// node supports — SUM, MEAN, and COUNT over a window's Θ store of weighted
// batches (§III-C) — and attaches the §III-D error bounds to every answer.
// The paper's prototype ran these as Kafka Streams DSL jobs; here they are
// direct aggregations over the stratified estimates.
package query

import (
	"fmt"
	"sort"

	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
)

// Kind selects the aggregate a query computes. Beyond the three linear
// queries, Kind carries parameterized aggregates — TopKOf(k) and
// QuantileOf(q) — encoded in high bits so every []Kind plumbing through plan
// compilation, window results, and the facade works unchanged.
type Kind int

// Supported linear queries (the paper defers joins/top-k to future work;
// TopKOf and QuantileOf below implement that future work).
const (
	Sum Kind = iota + 1
	Mean
	Count
)

// Parameterized-kind encoding: top-k kinds live at topKBase+k, quantile
// kinds at quantileBase+permille(q). The bases are far above any plain
// enum value so the spaces never collide.
const (
	topKBase     Kind = 1 << 16
	quantileBase Kind = 1 << 24
)

// TopKOf returns the Kind for a group-by top-k query: the k sub-streams
// with the largest estimated SUM, each with its Eq. 11 error bound.
// k is clamped to at least 1.
func TopKOf(k int) Kind {
	if k < 1 {
		k = 1
	}
	return topKBase + Kind(k)
}

// QuantileOf returns the Kind for an approximate quantile query at q in
// (0, 1). q is stored with permille resolution (rounded to 1/1000).
func QuantileOf(q float64) Kind {
	m := int(q*1000 + 0.5)
	if m < 1 {
		m = 1
	}
	if m > 999 {
		m = 999
	}
	return quantileBase + Kind(m)
}

// IsTopK reports whether the kind is a parameterized top-k query.
func (k Kind) IsTopK() bool { return k >= topKBase && k < quantileBase }

// K returns the k of a top-k kind, or 0 for other kinds.
func (k Kind) K() int {
	if !k.IsTopK() {
		return 0
	}
	return int(k - topKBase)
}

// IsQuantile reports whether the kind is a parameterized quantile query.
func (k Kind) IsQuantile() bool { return k >= quantileBase && k < quantileBase+1000 }

// Q returns the quantile of a quantile kind in (0, 1), or 0 for other kinds.
func (k Kind) Q() float64 {
	if !k.IsQuantile() {
		return 0
	}
	return float64(k-quantileBase) / 1000
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch {
	case k == Sum:
		return "SUM"
	case k == Mean:
		return "MEAN"
	case k == Count:
		return "COUNT"
	case k.IsTopK():
		return fmt.Sprintf("TOP%d", k.K())
	case k.IsQuantile():
		m := int(k - quantileBase)
		if m%10 == 0 {
			return fmt.Sprintf("P%d", m/10)
		}
		return fmt.Sprintf("P%g", float64(m)/10)
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result is one approximate answer in the paper's "result ± error" form.
type Result struct {
	Kind       Kind
	Estimate   stats.Estimate
	Confidence stats.Confidence
	// SampleSize is ζ summed over sub-streams: items the root aggregated.
	SampleSize int64
	// EstimatedInput is Σ ĉ_{i,b}: the estimated original item count.
	EstimatedInput float64
	// PerSubstream holds the per-stratum estimates when requested.
	PerSubstream map[stream.SourceID]stats.Estimate
	// Groups holds the ranked group estimates of a top-k query (nil
	// otherwise). Estimate is then the sum of the top-k group SUMs, with
	// variances added across independent strata.
	Groups []GroupEstimate
	// Quantile holds the full order-statistic answer of a quantile query
	// (nil otherwise). Estimate.Value mirrors Quantile.Value and
	// Estimate.Variance is ((Hi−Lo)/4)² so Bound(TwoSigma) recovers the
	// rank-interval half-width.
	Quantile *QuantileResult
}

// Bound returns the half-width of the confidence interval.
func (r Result) Bound() float64 { return r.Estimate.Bound(r.Confidence) }

// Interval returns the [lo, hi] confidence interval.
func (r Result) Interval() (lo, hi float64) { return r.Estimate.Interval(r.Confidence) }

// String formats the answer the way the root node writes it.
func (r Result) String() string {
	return fmt.Sprintf("%s = %.6g ± %.6g (%s, ζ=%d)",
		r.Kind, r.Estimate.Value, r.Bound(), r.Confidence, r.SampleSize)
}

// Engine evaluates queries over Θ stores.
type Engine struct {
	conf         stats.Confidence
	perSubstream bool
}

// Option customizes an Engine.
type Option func(*Engine)

// WithConfidence sets the error-bound level (default TwoSigma / 95%).
func WithConfidence(c stats.Confidence) Option {
	return func(e *Engine) { e.conf = c }
}

// WithPerSubstream includes per-stratum estimates in every Result.
func WithPerSubstream() Option {
	return func(e *Engine) { e.perSubstream = true }
}

// NewEngine returns a query engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{conf: stats.TwoSigma}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Strata folds a Θ store into per-sub-stream accumulators, sorted by source
// for deterministic iteration.
func Strata(theta []stream.Batch) ([]*stats.Stratum, []stream.SourceID) {
	bySource := make(map[stream.SourceID]*stats.Stratum)
	for _, b := range theta {
		s, ok := bySource[b.Source]
		if !ok {
			s = &stats.Stratum{}
			bySource[b.Source] = s
		}
		s.AddBatch(b.Weight, b.Values())
	}
	sources := make([]stream.SourceID, 0, len(bySource))
	for src := range bySource {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	strata := make([]*stats.Stratum, len(sources))
	for i, src := range sources {
		strata[i] = bySource[src]
	}
	return strata, sources
}

// Run evaluates one query over the window's Θ store.
func (e *Engine) Run(kind Kind, theta []stream.Batch) Result {
	strata, sources := Strata(theta)
	res := Result{Kind: kind, Confidence: e.conf}
	for _, s := range strata {
		res.SampleSize += s.SampleCount()
		res.EstimatedInput += s.EstimatedCount()
	}
	switch {
	case kind == Sum:
		res.Estimate = stats.Sum(strata)
	case kind == Mean:
		res.Estimate = stats.Mean(strata)
	case kind == Count:
		res.Estimate = stats.Count(strata)
	case kind.IsTopK():
		res.Groups = topKGroups(strata, sources, kind.K())
		// The headline estimate is the combined SUM of the top-k groups;
		// strata are sampled independently so their variances add.
		for _, g := range res.Groups {
			res.Estimate.Value += g.Sum.Value
			res.Estimate.Variance += g.Sum.Variance
		}
	case kind.IsQuantile():
		qr := Quantile(theta, kind.Q())
		res.Quantile = &qr
		half := (qr.Hi - qr.Lo) / 2
		res.Estimate = stats.Estimate{Value: qr.Value, Variance: half * half / 4}
	default:
		res.Estimate = stats.Estimate{}
	}
	if e.perSubstream {
		res.PerSubstream = make(map[stream.SourceID]stats.Estimate, len(sources))
		for i, src := range sources {
			one := []*stats.Stratum{strata[i]}
			switch kind {
			case Sum:
				res.PerSubstream[src] = stats.Sum(one)
			case Mean:
				res.PerSubstream[src] = stats.Mean(one)
			case Count:
				res.PerSubstream[src] = stats.Count(one)
			}
		}
	}
	return res
}

// RunAll evaluates several query kinds over the same Θ store, sharing the
// stratification pass.
func (e *Engine) RunAll(kinds []Kind, theta []stream.Batch) []Result {
	out := make([]Result, len(kinds))
	for i, k := range kinds {
		out[i] = e.Run(k, theta)
	}
	return out
}
