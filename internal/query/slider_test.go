package query

import (
	"testing"
	"testing/quick"

	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/xrand"
)

func est(v, variance float64) stats.Estimate {
	return stats.Estimate{Value: v, Variance: variance}
}

func TestSliderSumsLastKPanes(t *testing.T) {
	s := NewSlider(3)
	s.Push(est(1, 0.1))
	s.Push(est(2, 0.2))
	got := s.Push(est(3, 0.3))
	if got.Value != 6 {
		t.Fatalf("sliding value = %g, want 6", got.Value)
	}
	if diff := got.Variance - 0.6; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("sliding variance = %g, want 0.6", got.Variance)
	}

	// Fourth pane evicts the first.
	got = s.Push(est(10, 1))
	if got.Value != 15 { // 2+3+10
		t.Fatalf("after slide, value = %g, want 15", got.Value)
	}
}

func TestSliderPartialWindow(t *testing.T) {
	s := NewSlider(4)
	got := s.Push(est(5, 0.5))
	if got.Value != 5 || s.Len() != 1 {
		t.Fatalf("partial window = %+v len %d", got, s.Len())
	}
}

func TestSliderSinglePaneDegeneratesToTumbling(t *testing.T) {
	s := NewSlider(1)
	s.Push(est(7, 1))
	got := s.Push(est(9, 2))
	if got.Value != 9 || got.Variance != 2 {
		t.Fatalf("1-pane slider = %+v, want the newest pane only", got)
	}
}

func TestSliderInvalidK(t *testing.T) {
	s := NewSlider(0)
	if s.Panes() != 1 {
		t.Fatalf("Panes = %d, want clamp to 1", s.Panes())
	}
}

func TestSliderReset(t *testing.T) {
	s := NewSlider(2)
	s.Push(est(1, 1))
	s.Reset()
	if s.Len() != 0 || s.Current().Value != 0 {
		t.Fatal("Reset left residue")
	}
}

// Property: after >= k pushes, Current equals the plain sum of the last k
// pane values regardless of push history.
func TestSliderMatchesDirectSum(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint8) bool {
		k := 1 + int(kRaw)%8
		n := int(nRaw)%50 + k
		rng := xrand.New(seed)
		s := NewSlider(k)
		vals := make([]float64, 0, n)
		var got stats.Estimate
		for i := 0; i < n; i++ {
			v := rng.Normal(0, 100)
			vals = append(vals, v)
			got = s.Push(est(v, 1))
		}
		var want float64
		for _, v := range vals[len(vals)-k:] {
			want += v
		}
		diff := got.Value - want
		return diff < 1e-6 && diff > -1e-6 && got.Variance == float64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
