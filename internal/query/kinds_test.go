package query

import (
	"math"
	"testing"

	"github.com/approxiot/approxiot/internal/stream"
)

// Tests for the parameterized Kind encoding (TopKOf / QuantileOf) and their
// Engine.Run evaluation paths.

func TestParameterizedKindEncoding(t *testing.T) {
	cases := []struct {
		kind Kind
		str  string
	}{
		{TopKOf(1), "TOP1"},
		{TopKOf(3), "TOP3"},
		{TopKOf(100), "TOP100"},
		{QuantileOf(0.5), "P50"},
		{QuantileOf(0.9), "P90"},
		{QuantileOf(0.99), "P99"},
		{QuantileOf(0.999), "P99.9"},
		{QuantileOf(0.001), "P0.1"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.str {
			t.Errorf("%d.String() = %q, want %q", int(c.kind), got, c.str)
		}
	}
	if TopKOf(3).K() != 3 {
		t.Fatalf("TopKOf(3).K() = %d", TopKOf(3).K())
	}
	if !TopKOf(3).IsTopK() || TopKOf(3).IsQuantile() {
		t.Fatal("TopKOf predicate mismatch")
	}
	if q := QuantileOf(0.95).Q(); math.Abs(q-0.95) > 1e-12 {
		t.Fatalf("QuantileOf(0.95).Q() = %g", q)
	}
	if !QuantileOf(0.5).IsQuantile() || QuantileOf(0.5).IsTopK() {
		t.Fatal("QuantileOf predicate mismatch")
	}
	// Plain kinds must not satisfy the parameterized predicates.
	for _, k := range []Kind{Sum, Mean, Count} {
		if k.IsTopK() || k.IsQuantile() {
			t.Fatalf("%v misclassified as parameterized", k)
		}
	}
	// Clamping.
	if TopKOf(0) != TopKOf(1) {
		t.Fatal("TopKOf(0) should clamp to 1")
	}
	if QuantileOf(0) != QuantileOf(0.001) || QuantileOf(1) != QuantileOf(0.999) {
		t.Fatal("QuantileOf should clamp into (0,1)")
	}
}

func TestEngineRunTopK(t *testing.T) {
	theta := []stream.Batch{
		{Source: "a", Weight: 2, Items: items("a", 10, 10)}, // SUM 40
		{Source: "b", Weight: 1, Items: items("b", 100)},    // SUM 100
		{Source: "c", Weight: 1, Items: items("c", 1)},      // SUM 1
	}
	res := NewEngine().Run(TopKOf(2), theta)
	if res.Kind != TopKOf(2) {
		t.Fatalf("Kind = %v", res.Kind)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("Groups = %d, want 2", len(res.Groups))
	}
	if res.Groups[0].Source != "b" || res.Groups[1].Source != "a" {
		t.Fatalf("ranking = [%s, %s], want [b, a]", res.Groups[0].Source, res.Groups[1].Source)
	}
	if res.Estimate.Value != 140 {
		t.Fatalf("top-2 combined SUM = %g, want 140", res.Estimate.Value)
	}
	// Engine path must answer identically to the standalone helper.
	direct := TopK(theta, 2)
	for i := range direct {
		if direct[i] != res.Groups[i] {
			t.Fatalf("Engine group %d = %+v, TopK = %+v", i, res.Groups[i], direct[i])
		}
	}
	// SampleSize/EstimatedInput stay the generic whole-window totals.
	if res.SampleSize != 4 || res.EstimatedInput != 6 {
		t.Fatalf("ζ=%d ĉ=%g, want 4 and 6", res.SampleSize, res.EstimatedInput)
	}
	if math.IsNaN(res.Bound()) || math.IsInf(res.Bound(), 0) {
		t.Fatalf("top-k bound = %g", res.Bound())
	}
}

func TestEngineRunQuantile(t *testing.T) {
	vals := make([]float64, 0, 999)
	for i := 1; i <= 999; i++ {
		vals = append(vals, float64(i))
	}
	theta := []stream.Batch{{Source: "s", Weight: 1, Items: items("s", vals...)}}
	res := NewEngine().Run(QuantileOf(0.5), theta)
	if res.Quantile == nil {
		t.Fatal("Quantile result missing")
	}
	direct := Quantile(theta, 0.5)
	if *res.Quantile != direct {
		t.Fatalf("Engine quantile %+v != direct %+v", *res.Quantile, direct)
	}
	if res.Estimate.Value != direct.Value {
		t.Fatalf("Estimate.Value = %g, want %g", res.Estimate.Value, direct.Value)
	}
	// Bound(TwoSigma) must recover the rank-interval half-width.
	half := (direct.Hi - direct.Lo) / 2
	if math.Abs(res.Bound()-half) > 1e-9*half {
		t.Fatalf("bound %g != interval half-width %g", res.Bound(), half)
	}
	if math.Abs(res.Estimate.Value-500) > 25 {
		t.Fatalf("median of 1..999 = %g", res.Estimate.Value)
	}
}

func TestEngineRunParameterizedEmptyTheta(t *testing.T) {
	for _, k := range []Kind{TopKOf(3), QuantileOf(0.9)} {
		res := NewEngine().Run(k, nil)
		if res.Estimate.Value != 0 || res.SampleSize != 0 {
			t.Fatalf("%v over empty Θ produced %+v", k, res)
		}
		if math.IsNaN(res.Bound()) {
			t.Fatalf("%v empty bound is NaN", k)
		}
	}
}

func TestRunAllMixedKinds(t *testing.T) {
	theta := []stream.Batch{
		{Source: "a", Weight: 1, Items: items("a", 1, 2, 3)},
		{Source: "b", Weight: 1, Items: items("b", 10)},
	}
	kinds := []Kind{Sum, Count, TopKOf(1), QuantileOf(0.5)}
	results := NewEngine().RunAll(kinds, theta)
	if len(results) != 4 {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	for i, k := range kinds {
		if results[i].Kind != k {
			t.Fatalf("result %d kind = %v, want %v", i, results[i].Kind, k)
		}
	}
	if results[2].Groups[0].Source != "b" {
		t.Fatalf("top-1 group = %s, want b", results[2].Groups[0].Source)
	}
	if results[3].Quantile == nil {
		t.Fatal("quantile missing from RunAll")
	}
}
