package ops

import (
	"io"

	"github.com/approxiot/approxiot/internal/transport"
)

// writeTransportMetrics renders one transport.Counters snapshot as
// Prometheus families, appended after the session metrics on /metrics. The
// counters describe the process's OWN bus connection — bytes framed onto
// and off the wire, reconnect attempts, and failed operations — which is
// what distinguishes a node process starving because its broker link is
// flapping from one starving because upstream tiers are idle.
func writeTransportMetrics(w io.Writer, ns string, c transport.Counters) {
	e := expo{w: w, ns: ns}
	e.counter("transport_bytes_out_total", "Payload bytes this process sent to its bus backend.",
		float64(c.BytesOut))
	e.counter("transport_bytes_in_total", "Payload bytes this process received from its bus backend.",
		float64(c.BytesIn))
	e.counter("transport_reconnects_total", "Connection re-establishments to the bus backend.",
		float64(c.Reconnects))
	e.counter("transport_send_errors_total", "Send operations that failed at the transport layer.",
		float64(c.SendErrors))
	e.counter("transport_poll_errors_total", "Poll/fetch operations that failed at the transport layer.",
		float64(c.PollErrors))
}
