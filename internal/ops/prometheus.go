package ops

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/approxiot/approxiot/internal/core"
)

// writeMetrics renders one snapshot in the Prometheus text exposition format
// (version 0.0.4): counters as <ns>_*_total, gauges plain, the end-to-end
// latency distribution as a classic cumulative-bucket histogram. Families
// and labels are emitted in sorted order so the output is deterministic and
// diffable across scrapes.
func writeMetrics(w io.Writer, ns string, snap core.LiveSnapshot, now time.Time) {
	e := expo{w: w, ns: ns}

	// Run counters: the paper's primary measurements plus the pipeline's
	// loss accounting.
	e.counter("produced_total", "Items generated and published by the sources.",
		float64(snap.Produced))
	e.counter("root_processed_total", "Items the root aggregated after sampling.",
		float64(snap.RootProcessed))
	e.counter("decode_errors_total", "Data-plane records whose batch payload failed to decode.",
		float64(snap.DecodeErrors))
	e.counter("late_dropped_total", "Items dropped past the lateness horizon in event-time mode.",
		float64(snap.LateDropped))
	e.counter("subscriber_drops_total", "Window results dropped on full subscriber buffers.",
		float64(snap.SubscriberDrops))
	e.counter("windows_closed_total", "Non-empty windows closed at the root.",
		float64(snap.WindowsClosed))

	// Lifecycle and health-probe gauges.
	e.header("state", "Deployment lifecycle phase as a one-hot gauge.", "gauge")
	for _, st := range []core.SessionState{core.StateIngesting, core.StateDraining, core.StateClosed} {
		v := 0.0
		if snap.State == st {
			v = 1
		}
		e.sample("state", labels{{"state", st.String()}}, v)
	}
	up := 0.0
	if snap.State == core.StateIngesting {
		up = 1
	}
	e.gauge("up", "1 while the deployment accepts pushes, 0 once draining or closed.", up)
	e.gauge("elapsed_seconds", "Run span: first publish to now (to the run's end once closed).",
		snap.Elapsed.Seconds())
	e.gauge("throughput_items_per_second", "Produced items divided by the elapsed span.",
		snap.Throughput)
	e.gauge("ingest_lag_records", "Unconsumed backlog across the leaf topics (pushers ahead of the pipeline).",
		float64(snap.IngestLag))
	if snap.EventTime {
		lag := 0.0
		if !snap.Watermark.IsZero() {
			lag = now.Sub(snap.Watermark).Seconds()
		}
		e.gauge("watermark_lag_seconds", "Merged root watermark's distance behind wall clock (0 while blocked or idle).",
			lag)
	}

	// Adaptive controller gauges, only meaningful under feedback.
	if snap.Adaptive {
		e.gauge("adaptive_fraction", "Feedback controller's current sampling fraction.",
			snap.Fraction)
		e.gauge("adaptive_target", "Feedback controller's relative-error target.",
			snap.Target)
	}

	// Per-query gauges from the most recently closed window: every
	// registered kind's estimate ± bound, sliding composites, and the
	// window's sample size — the "result ± error" line the paper's root
	// writes, as scrapable series.
	if lw := snap.LastWindow; lw != nil {
		e.header("query_estimate", "Latest window's estimate per registered query kind.", "gauge")
		for _, r := range lw.Results {
			e.sample("query_estimate", labels{{"kind", r.Kind.String()}}, r.Estimate.Value)
		}
		e.header("query_bound", "Latest window's confidence-interval half-width per query kind.", "gauge")
		for _, r := range lw.Results {
			e.sample("query_bound", labels{{"kind", r.Kind.String()}}, r.Bound())
		}
		if len(lw.Sliding) > 0 {
			e.header("query_sliding_estimate", "Latest sliding-window estimate (pane composition) per additive query kind.", "gauge")
			for _, s := range lw.Sliding {
				e.sample("query_sliding_estimate", labels{{"kind", s.Kind.String()}}, s.Estimate.Value)
			}
			e.header("query_sliding_bound", "Latest sliding-window confidence-interval half-width per additive query kind.", "gauge")
			for _, s := range lw.Sliding {
				e.sample("query_sliding_bound", labels{{"kind", s.Kind.String()}}, s.Bound())
			}
		}
		e.gauge("window_sample_size", "Items aggregated into the latest window (zeta over all strata).",
			float64(lw.SampleSize))
	}

	// Per-topic bandwidth: produce-side bytes per link, the paper's
	// network-bandwidth measurement.
	e.header("bandwidth_bytes_total", "Bytes produced onto each link, keyed by destination topic.", "counter")
	for _, topic := range sortedKeys(snap.Bandwidth) {
		e.sample("bandwidth_bytes_total", labels{{"topic", topic}}, float64(snap.Bandwidth[topic]))
	}

	// Per-member node telemetry.
	if len(snap.Nodes) > 0 {
		e.header("node_observed_total", "Items each member received.", "counter")
		for _, id := range sortedKeys(snap.Nodes) {
			e.sample("node_observed_total", labels{{"node", id}}, float64(snap.Nodes[id].Observed))
		}
		e.header("node_emitted_total", "Items each member forwarded after sampling.", "counter")
		for _, id := range sortedKeys(snap.Nodes) {
			e.sample("node_emitted_total", labels{{"node", id}}, float64(snap.Nodes[id].Emitted))
		}
		e.header("node_intervals_total", "Window closes at each member.", "counter")
		for _, id := range sortedKeys(snap.Nodes) {
			e.sample("node_intervals_total", labels{{"node", id}}, float64(snap.Nodes[id].Intervals))
		}
		e.header("node_throughput_items_per_second", "Observed items per second at each member over the run.", "gauge")
		for _, id := range sortedKeys(snap.Nodes) {
			e.sample("node_throughput_items_per_second", labels{{"node", id}}, snap.Nodes[id].Throughput)
		}
	}

	// End-to-end latency as a classic Prometheus histogram: cumulative
	// buckets in seconds, closed by the mandatory +Inf bucket.
	e.header("latency_seconds", "End-to-end item latency, source publish to root-side processing.", "histogram")
	var total int64
	if snap.Latency != nil {
		for _, b := range snap.Latency.Buckets() {
			e.sample("latency_seconds_bucket", labels{{"le", formatFloat(b.UpperBound.Seconds())}}, float64(b.Count))
			total = b.Count
		}
	}
	e.sample("latency_seconds_bucket", labels{{"le", "+Inf"}}, float64(total))
	var sum time.Duration
	if snap.Latency != nil {
		sum = snap.Latency.Sum()
	}
	e.sample("latency_seconds_sum", nil, sum.Seconds())
	e.sample("latency_seconds_count", nil, float64(total))
}

// expo writes one exposition; it tracks nothing but the destination and the
// metric namespace.
type expo struct {
	w  io.Writer
	ns string
}

type labels [][2]string

func (e *expo) header(name, help, typ string) {
	fmt.Fprintf(e.w, "# HELP %s_%s %s\n", e.ns, name, help)
	fmt.Fprintf(e.w, "# TYPE %s_%s %s\n", e.ns, name, typ)
}

func (e *expo) sample(name string, ls labels, v float64) {
	fmt.Fprintf(e.w, "%s_%s%s %s\n", e.ns, name, ls.String(), formatFloat(v))
}

func (e *expo) counter(name, help string, v float64) {
	e.header(name, help, "counter")
	e.sample(name, nil, v)
}

func (e *expo) gauge(name, help string, v float64) {
	e.header(name, help, "gauge")
	e.sample(name, nil, v)
}

// String renders the label set as {k="v",...}, escaping per the exposition
// format: backslash, double quote, and newline inside label values.
func (ls labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips, no exponent for typical counter
// magnitudes.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
