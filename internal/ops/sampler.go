package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/approxiot/approxiot/internal/core"
)

// sample is one sampler observation: the monotone counters (differenced
// into rates at query time) plus the instantaneous gauges.
type sample struct {
	t time.Time

	produced      int64
	rootProcessed int64
	decodeErrors  int64
	lateDropped   int64
	windowsClosed int64
	bandwidth     int64 // bytes across all links

	ingestLag int64
	fraction  float64
}

func newSample(now time.Time, snap core.LiveSnapshot) sample {
	var bw int64
	for _, b := range snap.Bandwidth {
		bw += b
	}
	return sample{
		t:             now,
		produced:      snap.Produced,
		rootProcessed: snap.RootProcessed,
		decodeErrors:  snap.DecodeErrors,
		lateDropped:   snap.LateDropped,
		windowsClosed: int64(snap.WindowsClosed),
		bandwidth:     bw,
		ingestLag:     snap.IngestLag,
		fraction:      snap.Fraction,
	}
}

// ring is the sampler's fixed-capacity history: at capacity each add
// overwrites the oldest sample, so retention is bounded by construction —
// capacity × cadence of wall clock, a fixed memory footprint regardless of
// how long the deployment serves.
type ring struct {
	mu   sync.Mutex
	buf  []sample
	next int // slot the next add writes
	n    int // live samples, ≤ len(buf)
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]sample, capacity)}
}

func (r *ring) add(s sample) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot copies the live samples in chronological order.
func (r *ring) snapshot() []sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sample, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// QueryPoint is one windowed rate observation in a /metrics/query response.
// Rates are per-second deltas of the counters across the window; gauges are
// the values at the window's closing sample.
type QueryPoint struct {
	Time                   time.Time `json:"time"`
	ProducedPerSecond      float64   `json:"produced_per_second"`
	RootProcessedPerSecond float64   `json:"root_processed_per_second"`
	DecodeErrorsPerSecond  float64   `json:"decode_errors_per_second"`
	LateDroppedPerSecond   float64   `json:"late_dropped_per_second"`
	WindowsPerSecond       float64   `json:"windows_per_second"`
	BandwidthBytesPerSec   float64   `json:"bandwidth_bytes_per_second"`
	IngestLag              int64     `json:"ingest_lag"`
	Fraction               float64   `json:"fraction"`
}

// QueryResponse is the /metrics/query response body.
type QueryResponse struct {
	// Window and Lookback echo the (defaulted, clamped) query parameters.
	Window   string `json:"window"`
	Lookback string `json:"lookback"`
	// Clamped reports that the requested lookback exceeded the retained
	// span and was cut down to it.
	Clamped bool `json:"clamped"`
	// Retained is the span of history the ring currently holds.
	Retained string `json:"retained"`
	// Points are the windowed rates, oldest first.
	Points []QueryPoint `json:"points"`
}

// Query defaults: a sar-style one-minute grain over the last hour.
const (
	defaultQueryWindow   = time.Minute
	defaultQueryLookback = time.Hour
)

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	window, err := durationParam(r, "window", defaultQueryWindow)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lookback, err := durationParam(r, "lookback", defaultQueryLookback)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if lookback < window {
		lookback = window
	}
	resp := buildQuery(s.ring.snapshot(), window, lookback)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func durationParam(r *http.Request, name string, def time.Duration) (time.Duration, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad %s: must be positive", name)
	}
	return d, nil
}

// buildQuery differences the retained samples into windowed rates. The
// lookback is clamped to the retained span; each window's rates are the
// counter deltas between the last sample at or before the window's start
// and the last sample inside the window, divided by the actual span between
// those samples — so a cadence that does not divide the window evenly still
// yields correct per-second rates, and each sample is the baseline of the
// next window (chained deltas: nothing counted twice, nothing skipped).
func buildQuery(samples []sample, window, lookback time.Duration) QueryResponse {
	resp := QueryResponse{
		Window:   window.String(),
		Lookback: lookback.String(),
		Retained: "0s",
		Points:   []QueryPoint{},
	}
	if len(samples) == 0 {
		return resp
	}
	oldest, newest := samples[0].t, samples[len(samples)-1].t
	retained := newest.Sub(oldest)
	resp.Retained = retained.String()
	if lookback > retained {
		lookback = retained
		resp.Clamped = true
		resp.Lookback = lookback.String()
	}
	if len(samples) < 2 {
		return resp
	}

	start := newest.Add(-lookback)
	// base: the last sample at or before the current window boundary —
	// the baseline the next window's deltas are taken against.
	base := 0
	for base+1 < len(samples) && !samples[base+1].t.After(start) {
		base++
	}
	i := base
	for b0 := start; b0.Before(newest); b0 = b0.Add(window) {
		b1 := b0.Add(window)
		// end: the last sample inside (b0, b1].
		end := i
		for end+1 < len(samples) && !samples[end+1].t.After(b1) {
			end++
		}
		if end == i && !samples[end].t.After(b0) {
			continue // no sample landed in this window
		}
		a, b := samples[i], samples[end]
		span := b.t.Sub(a.t).Seconds()
		if span > 0 {
			rate := func(d int64) float64 { return float64(d) / span }
			resp.Points = append(resp.Points, QueryPoint{
				Time:                   b.t,
				ProducedPerSecond:      rate(b.produced - a.produced),
				RootProcessedPerSecond: rate(b.rootProcessed - a.rootProcessed),
				DecodeErrorsPerSecond:  rate(b.decodeErrors - a.decodeErrors),
				LateDroppedPerSecond:   rate(b.lateDropped - a.lateDropped),
				WindowsPerSecond:       rate(b.windowsClosed - a.windowsClosed),
				BandwidthBytesPerSec:   rate(b.bandwidth - a.bandwidth),
				IngestLag:              b.ingestLag,
				Fraction:               b.fraction,
			})
		}
		i = end
	}
	return resp
}
