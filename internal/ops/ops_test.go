package ops

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/metrics"
	"github.com/approxiot/approxiot/internal/transport"
)

// fakeSource serves a canned snapshot.
type fakeSource struct{ snap core.LiveSnapshot }

func (f *fakeSource) Snapshot() core.LiveSnapshot { return f.snap }

// healthySnapshot is a plausible mid-run ingesting snapshot.
func healthySnapshot(now time.Time) core.LiveSnapshot {
	h := metrics.NewHistogram()
	h.Observe(3 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	return core.LiveSnapshot{
		State:         core.StateIngesting,
		Produced:      1000,
		RootProcessed: 400,
		WindowsClosed: 7,
		Elapsed:       2 * time.Second,
		Throughput:    500,
		Latency:       h,
		Bandwidth:     map[string]int64{"t0-e1": 2048, "t1-root": 512},
		Nodes: map[string]core.NodeTelemetry{
			"edge1-0": {Observed: 1000, Emitted: 400, Intervals: 7, Throughput: 500},
			"root-0":  {Observed: 400, Emitted: 0, Intervals: 7, Throughput: 200},
		},
		Window:       50 * time.Millisecond,
		MaxIngestLag: 8192,
		IngestLag:    12,
		Start:        now.Add(-2 * time.Second),
		LastActivity: now.Add(-10 * time.Millisecond),
	}
}

func TestMetricsExposition(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	src := &fakeSource{snap: healthySnapshot(now)}
	srv := NewServer(src, Config{now: func() time.Time { return now }})

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body := rec.Body.String()

	for _, want := range []string{
		"# TYPE approxiot_produced_total counter",
		"approxiot_produced_total 1000",
		"approxiot_root_processed_total 400",
		"approxiot_windows_closed_total 7",
		"approxiot_up 1",
		`approxiot_state{state="ingesting"} 1`,
		`approxiot_state{state="closed"} 0`,
		"approxiot_ingest_lag_records 12",
		`approxiot_bandwidth_bytes_total{topic="t0-e1"} 2048`,
		`approxiot_bandwidth_bytes_total{topic="t1-root"} 512`,
		`approxiot_node_observed_total{node="edge1-0"} 1000`,
		`approxiot_node_emitted_total{node="edge1-0"} 400`,
		`approxiot_node_intervals_total{node="root-0"} 7`,
		"# TYPE approxiot_latency_seconds histogram",
		`approxiot_latency_seconds_bucket{le="+Inf"} 3`,
		"approxiot_latency_seconds_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Histogram buckets must be cumulative: the two 3ms observations land
	// below the 40ms one, so some bucket line carries count 2 before the
	// final cumulative 3.
	if !strings.Contains(body, "} 2\n") {
		t.Errorf("expected an intermediate cumulative bucket count of 2:\n%s", body)
	}
	// _sum is 46ms in seconds.
	if !strings.Contains(body, "approxiot_latency_seconds_sum 0.046") {
		t.Errorf("expected latency sum 0.046, body:\n%s", body)
	}
	// Adaptive gauges absent when not adaptive.
	if strings.Contains(body, "adaptive_fraction") {
		t.Errorf("adaptive gauges exported for a non-adaptive run")
	}
}

func TestMetricsAdaptiveAndEventTimeGauges(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	snap := healthySnapshot(now)
	snap.Adaptive = true
	snap.Fraction = 0.25
	snap.Target = 0.05
	snap.EventTime = true
	snap.Watermark = now.Add(-1500 * time.Millisecond)
	srv := NewServer(&fakeSource{snap: snap}, Config{now: func() time.Time { return now }})

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"approxiot_adaptive_fraction 0.25",
		"approxiot_adaptive_target 0.05",
		"approxiot_watermark_lag_seconds 1.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	ls := labels{{"topic", "a\"b\\c\nd"}}
	want := `{topic="a\"b\\c\nd"}`
	if got := ls.String(); got != want {
		t.Fatalf("labels.String() = %q, want %q", got, want)
	}
}

func TestHealthStates(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	t.Run("ingesting ok", func(t *testing.T) {
		rep := buildHealth(healthySnapshot(now), now)
		if rep.Status != StatusOK {
			t.Fatalf("status = %q, want ok: %+v", rep.Status, rep.Components)
		}
		for _, name := range []string{"lifecycle", "ingest", "progress"} {
			if _, ok := rep.Components[name]; !ok {
				t.Errorf("missing component %q", name)
			}
		}
		if _, ok := rep.Components["watermark"]; ok {
			t.Errorf("watermark check present for a processing-time run")
		}
	})

	t.Run("draining degraded", func(t *testing.T) {
		snap := healthySnapshot(now)
		snap.State = core.StateDraining
		rep := buildHealth(snap, now)
		if rep.Status != StatusDegraded {
			t.Fatalf("status = %q, want degraded", rep.Status)
		}
	})

	t.Run("closed fails", func(t *testing.T) {
		snap := healthySnapshot(now)
		snap.State = core.StateClosed
		snap.IngestLag = 0
		rep := buildHealth(snap, now)
		if rep.Status != StatusFail {
			t.Fatalf("status = %q, want fail", rep.Status)
		}
	})

	t.Run("backpressure high-water degraded", func(t *testing.T) {
		snap := healthySnapshot(now)
		snap.IngestLag = int64(snap.MaxIngestLag)
		rep := buildHealth(snap, now)
		if rep.Components["ingest"].Status != StatusDegraded {
			t.Fatalf("ingest = %+v, want degraded", rep.Components["ingest"])
		}
	})

	t.Run("stall fails", func(t *testing.T) {
		snap := healthySnapshot(now)
		snap.LastActivity = now.Add(-time.Minute) // backlog + long silence
		rep := buildHealth(snap, now)
		if rep.Components["progress"].Status != StatusFail {
			t.Fatalf("progress = %+v, want fail", rep.Components["progress"])
		}
		if rep.Status != StatusFail {
			t.Fatalf("status = %q, want fail", rep.Status)
		}
	})

	t.Run("idle without backlog stays ok", func(t *testing.T) {
		snap := healthySnapshot(now)
		snap.IngestLag = 0
		snap.LastActivity = now.Add(-time.Minute)
		rep := buildHealth(snap, now)
		if rep.Components["progress"].Status != StatusOK {
			t.Fatalf("progress = %+v, want ok for an idle deployment", rep.Components["progress"])
		}
	})

	t.Run("blocked watermark degraded", func(t *testing.T) {
		snap := healthySnapshot(now)
		snap.EventTime = true
		// Watermark zero with traffic: an expected producer is unheard.
		rep := buildHealth(snap, now)
		if rep.Components["watermark"].Status != StatusDegraded {
			t.Fatalf("watermark = %+v, want degraded", rep.Components["watermark"])
		}
	})
}

func TestHealthEndpointStatusCodes(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	src := &fakeSource{snap: healthySnapshot(now)}
	srv := NewServer(src, Config{now: func() time.Time { return now }})

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy GET /health = %d, want 200", rec.Code)
	}
	var rep HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("health body not JSON: %v", err)
	}
	if rep.Status != StatusOK || rep.State != "ingesting" {
		t.Fatalf("report = %+v", rep)
	}

	src.snap.State = core.StateClosed
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/health", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed GET /health = %d, want 503", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/health", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /health = %d, want 405", rec.Code)
	}
}

// syntheticSamples builds n samples at the given cadence: produced rises
// 100/sample, bandwidth 1000/sample.
func syntheticSamples(start time.Time, n int, cadence time.Duration) []sample {
	out := make([]sample, n)
	for i := range out {
		out[i] = sample{
			t:             start.Add(time.Duration(i) * cadence),
			produced:      int64(i) * 100,
			rootProcessed: int64(i) * 40,
			windowsClosed: int64(i),
			bandwidth:     int64(i) * 1000,
			ingestLag:     int64(i % 5),
			fraction:      0.5,
		}
	}
	return out
}

func TestRingEvictsAtCapacity(t *testing.T) {
	r := newRing(4)
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for _, s := range syntheticSamples(start, 10, time.Second) {
		r.add(s)
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want capacity 4", len(got))
	}
	// The four newest samples, in chronological order.
	for i, s := range got {
		wantT := start.Add(time.Duration(6+i) * time.Second)
		if !s.t.Equal(wantT) {
			t.Fatalf("sample %d at %v, want %v", i, s.t, wantT)
		}
	}
}

func TestQueryWindowedRates(t *testing.T) {
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	// 61 samples at 1s: 60s retained, produced +100/s.
	samples := syntheticSamples(start, 61, time.Second)
	resp := buildQuery(samples, 10*time.Second, time.Minute)
	if resp.Clamped {
		t.Fatalf("lookback equals retention, should not clamp: %+v", resp)
	}
	if len(resp.Points) != 6 {
		t.Fatalf("got %d points, want 6: %+v", len(resp.Points), resp.Points)
	}
	for i, p := range resp.Points {
		if p.ProducedPerSecond != 100 {
			t.Errorf("point %d produced rate = %v, want 100", i, p.ProducedPerSecond)
		}
		if p.BandwidthBytesPerSec != 1000 {
			t.Errorf("point %d bandwidth rate = %v, want 1000", i, p.BandwidthBytesPerSec)
		}
	}
	last := resp.Points[len(resp.Points)-1]
	if !last.Time.Equal(start.Add(60 * time.Second)) {
		t.Fatalf("last point at %v, want the newest sample", last.Time)
	}
}

func TestQueryLookbackClampedToRetention(t *testing.T) {
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	// 5 minutes retained, 2 hours asked.
	samples := syntheticSamples(start, 301, time.Second)
	resp := buildQuery(samples, time.Minute, 2*time.Hour)
	if !resp.Clamped {
		t.Fatalf("expected clamping: %+v", resp)
	}
	if resp.Lookback != "5m0s" || resp.Retained != "5m0s" {
		t.Fatalf("lookback %q retained %q, want both 5m0s", resp.Lookback, resp.Retained)
	}
	if len(resp.Points) != 5 {
		t.Fatalf("got %d points, want 5", len(resp.Points))
	}
}

func TestQueryEmptyAndSparseHistory(t *testing.T) {
	resp := buildQuery(nil, time.Minute, time.Hour)
	if len(resp.Points) != 0 || resp.Retained != "0s" {
		t.Fatalf("empty history: %+v", resp)
	}
	one := syntheticSamples(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC), 1, time.Second)
	resp = buildQuery(one, time.Minute, time.Hour)
	if len(resp.Points) != 0 {
		t.Fatalf("single sample cannot produce a rate: %+v", resp)
	}
}

func TestQueryEndpoint(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	src := &fakeSource{snap: healthySnapshot(now)}
	srv := NewServer(src, Config{now: func() time.Time { return now }})
	// Seed a little history by hand (Start would race the canned clock).
	for i := 0; i < 10; i++ {
		s := newSample(now.Add(time.Duration(i)*time.Second), src.Snapshot())
		srv.ring.add(s)
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/query?window=2s&lookback=30s", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics/query = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("query body not JSON: %v", err)
	}
	if !resp.Clamped {
		t.Fatalf("9s retained vs 30s asked should clamp: %+v", resp)
	}
	if resp.Window != "2s" {
		t.Fatalf("window echoed as %q", resp.Window)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/query?window=banana", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad window = %d, want 400", rec.Code)
	}
}

func TestSamplerStartStop(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	src := &fakeSource{snap: healthySnapshot(now)}
	srv := NewServer(src, Config{Cadence: time.Millisecond, Capacity: 8})
	srv.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.ring.snapshot()) < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler never filled the ring: %d samples", len(srv.ring.snapshot()))
		}
		time.Sleep(time.Millisecond)
	}
	srv.Stop()
	n := len(srv.ring.snapshot())
	if n != 8 {
		t.Fatalf("ring holds %d samples, want capacity 8", n)
	}
	srv.Stop() // idempotent
}

func TestStopBeforeStart(t *testing.T) {
	srv := NewServer(&fakeSource{}, Config{})
	done := make(chan struct{})
	go func() { srv.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop before Start hung")
	}
}

// TestMetricsTransportFamilies checks the transport-counter families: absent
// without a Transport hook, present and live-polled with one — the
// multi-process node shape, where /metrics must also describe the process's
// own broker link.
func TestMetricsTransportFamilies(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	src := &fakeSource{snap: healthySnapshot(now)}

	bare := NewServer(src, Config{now: func() time.Time { return now }})
	rec := httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rec.Body.String(), "transport_bytes_out_total") {
		t.Fatal("transport families rendered without a Transport hook")
	}

	ctr := transport.Counters{BytesOut: 111, BytesIn: 222, Reconnects: 3, SendErrors: 4, PollErrors: 5}
	srv := NewServer(src, Config{
		now:       func() time.Time { return now },
		Transport: func() transport.Counters { return ctr },
	})
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"approxiot_transport_bytes_out_total 111",
		"approxiot_transport_bytes_in_total 222",
		"approxiot_transport_reconnects_total 3",
		"approxiot_transport_send_errors_total 4",
		"approxiot_transport_poll_errors_total 5",
		"# TYPE approxiot_transport_reconnects_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, body)
		}
	}

	// The hook is polled per scrape, not captured once.
	ctr.Reconnects = 9
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "approxiot_transport_reconnects_total 9") {
		t.Fatal("transport counters are stale: hook not polled per scrape")
	}
}
