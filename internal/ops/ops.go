// Package ops is the operational HTTP surface of a live deployment. The
// paper evaluates ApproxIoT on exactly three metrics — throughput,
// end-to-end latency, and network bandwidth (§V-A) — and the session layer
// already measures all of them (core.LiveSnapshot); this package makes them
// observable without linking the Go package and calling Snapshot yourself:
//
//	/health         JSON component checks: lifecycle state, ingest lag vs
//	                the backpressure high-water mark, consumer-group stall
//	                detection, and watermark progress in event-time mode.
//	                HTTP 200 while serviceable, 503 once any check fails.
//	/metrics        Prometheus text exposition: run counters, adaptive
//	                gauges, per-topic bandwidth, per-member node telemetry,
//	                and the latency histogram as cumulative buckets.
//	/metrics/query  sar-style windowed counter rates over the sampler's
//	                retained history (?window=5m&lookback=2h), lookback
//	                clamped to what the ring still holds.
//
// The surface is read-only and stays off the hot path: every handler reads
// one LiveSnapshot — which copies the already lock-free instruments — and
// the background sampler polls the same snapshot on a fixed cadence into a
// fixed-capacity ring, so retention (and memory) stays bounded no matter
// how long a soak run serves.
package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/transport"
)

// Source is anything that can produce a live telemetry snapshot — a
// *core.LiveSession, or the facade Deployment wrapping one.
type Source interface {
	Snapshot() core.LiveSnapshot
}

// Config tunes the ops surface. The zero value is ready to use.
type Config struct {
	// Cadence is the sampler's poll period (default 1s). Retention spans
	// Cadence × Capacity — raise Cadence for longer lookbacks at the same
	// memory.
	Cadence time.Duration
	// Capacity is the sample ring's size in samples (default 7200 — two
	// hours at the default cadence, a few hundred kilobytes). The ring
	// overwrites its oldest sample at capacity; it never grows.
	Capacity int
	// Namespace prefixes every exported metric family (default
	// "approxiot").
	Namespace string
	// Transport, when set, is polled on every /metrics scrape for the
	// process's bus-connection counters (bytes on the wire, reconnects,
	// transport-level errors) and rendered after the session families.
	// Multi-process deployments set it to their TCP client's Counters
	// method; in-process deployments leave it nil.
	Transport func() transport.Counters

	// now substitutes the sampler's clock in tests.
	now func() time.Time
}

// Defaults for Config's zero values.
const (
	DefaultCadence   = time.Second
	DefaultCapacity  = 7200
	defaultNamespace = "approxiot"
)

func (c Config) withDefaults() Config {
	if c.Cadence <= 0 {
		c.Cadence = DefaultCadence
	}
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.Namespace == "" {
		c.Namespace = defaultNamespace
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server serves one deployment's operational surface. Construct with
// NewServer, mount Handler on any HTTP server, Start the sampler, and Stop
// it when the deployment closes. All methods are safe for concurrent use.
type Server struct {
	src  Source
	cfg  Config
	ring *ring
	mux  *http.ServeMux

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	doneCh    chan struct{}
}

// NewServer builds the ops surface over src. The sampler does not run until
// Start; the handlers work either way (the query endpoint just has no
// history yet).
func NewServer(src Source, cfg Config) *Server {
	s := &Server{
		src:    src,
		cfg:    cfg.withDefaults(),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	s.ring = newRing(s.cfg.Capacity)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/health", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/query", s.handleQuery)
	return s
}

// Handler returns the HTTP handler serving /health, /metrics, and
// /metrics/query.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the background sampler: one Snapshot per cadence tick into
// the retention ring. Idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.doneCh)
			ticker := time.NewTicker(s.cfg.Cadence)
			defer ticker.Stop()
			s.observe(s.cfg.now())
			for {
				select {
				case <-s.stopCh:
					return
				case <-ticker.C:
					s.observe(s.cfg.now())
				}
			}
		}()
	})
}

// Stop halts the sampler and waits for it to exit. Handlers keep working on
// the frozen history. Idempotent, and safe before Start.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.startOnce.Do(func() { close(s.doneCh) }) // never started: nothing to wait out
	<-s.doneCh
}

// observe takes one sample of the deployment into the ring.
func (s *Server) observe(now time.Time) {
	s.ring.add(newSample(now, s.src.Snapshot()))
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "approxiot ops surface\n\n/health\n/metrics\n/metrics/query?window=5m&lookback=2h\n")
}

// Health statuses, ordered by severity.
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
	StatusFail     = "fail"
)

// ComponentHealth is one named check's verdict.
type ComponentHealth struct {
	Status string `json:"status"`
	Detail string `json:"detail"`
}

// HealthReport is the /health response body.
type HealthReport struct {
	// Status is the worst component status: ok, degraded, or fail.
	Status string `json:"status"`
	// State echoes the deployment lifecycle phase.
	State string `json:"state"`
	// Time is the probe instant.
	Time time.Time `json:"time"`
	// Components holds the individual checks: lifecycle, ingest,
	// progress, and (event-time deployments only) watermark.
	Components map[string]ComponentHealth `json:"components"`
}

func severity(status string) int {
	switch status {
	case StatusFail:
		return 2
	case StatusDegraded:
		return 1
	default:
		return 0
	}
}

// buildHealth derives the component checks from one snapshot. Pure, so the
// checks are unit-testable without HTTP.
func buildHealth(snap core.LiveSnapshot, now time.Time) HealthReport {
	rep := HealthReport{
		Status:     StatusOK,
		State:      snap.State.String(),
		Time:       now,
		Components: make(map[string]ComponentHealth),
	}
	set := func(name, status, detail string) {
		rep.Components[name] = ComponentHealth{Status: status, Detail: detail}
		if severity(status) > severity(rep.Status) {
			rep.Status = status
		}
	}

	// Lifecycle: the deployment is serviceable while ingesting, winding
	// down while draining, and gone once closed.
	switch snap.State {
	case core.StateIngesting:
		set("lifecycle", StatusOK, "ingesting")
	case core.StateDraining:
		set("lifecycle", StatusDegraded, "draining: pushes rejected, in-flight windows finishing")
	default:
		set("lifecycle", StatusFail, "closed: deployment has shut down")
	}

	// Ingest: how far the pushers are ahead of the pipeline, against the
	// backpressure high-water mark the valves block at.
	switch {
	case snap.MaxIngestLag < 0:
		set("ingest", StatusOK, fmt.Sprintf("backlog %d (backpressure disabled)", snap.IngestLag))
	case snap.IngestLag >= int64(snap.MaxIngestLag):
		set("ingest", StatusDegraded, fmt.Sprintf("backlog %d at high-water %d: pushers are blocked on backpressure", snap.IngestLag, snap.MaxIngestLag))
	default:
		set("ingest", StatusOK, fmt.Sprintf("backlog %d of high-water %d", snap.IngestLag, snap.MaxIngestLag))
	}

	// Progress: consumer-group stall detection. Backlog with no root-side
	// processing for many windows means the groups stopped consuming —
	// distinct from an idle deployment, which has no backlog to work on.
	stallAfter := 10 * snap.Window
	if stallAfter < time.Second {
		stallAfter = time.Second
	}
	idle := now.Sub(snap.LastActivity)
	switch {
	case snap.Produced == 0:
		set("progress", StatusOK, "no traffic yet")
	case snap.IngestLag > 0 && idle > stallAfter:
		set("progress", StatusFail, fmt.Sprintf("stalled: backlog %d with no root-side processing for %v", snap.IngestLag, idle.Round(time.Millisecond)))
	case snap.RootProcessed == 0 && idle > stallAfter:
		set("progress", StatusFail, fmt.Sprintf("stalled: %d items pushed, none reached the root in %v", snap.Produced, idle.Round(time.Millisecond)))
	default:
		set("progress", StatusOK, fmt.Sprintf("last root-side processing %v ago", idle.Round(time.Millisecond)))
	}

	// Watermark: event-time deployments must keep event time moving — a
	// zero merged watermark under traffic means an expected producer has
	// not been heard and every window is blocked behind it.
	if snap.EventTime && snap.State == core.StateIngesting {
		switch {
		case snap.Produced == 0:
			set("watermark", StatusOK, "no traffic yet")
		case snap.Watermark.IsZero():
			set("watermark", StatusDegraded, "blocked: an expected producer has not been heard from")
		default:
			set("watermark", StatusOK, fmt.Sprintf("event time %s, %v behind wall clock", snap.Watermark.Format(time.RFC3339), now.Sub(snap.Watermark).Round(time.Millisecond)))
		}
	}
	return rep
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rep := buildHealth(s.src.Snapshot(), s.cfg.now())
	w.Header().Set("Content-Type", "application/json")
	if rep.Status == StatusFail {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s.cfg.Namespace, s.src.Snapshot(), s.cfg.now())
	if s.cfg.Transport != nil {
		writeTransportMetrics(w, s.cfg.Namespace, s.cfg.Transport())
	}
}
