// Package topology describes the logical edge-computing tree of Figure 1:
// IoT sources at the bottom, one or more layers of sampling nodes, and a
// single root (datacenter) node where queries run. A TreeSpec is pure
// configuration; the core package instantiates it into live or simulated
// pipelines.
package topology

import (
	"errors"
	"fmt"
	"time"
)

// LayerSpec describes one layer of sampling nodes and the WAN links feeding
// it from below.
type LayerSpec struct {
	// Name labels the layer ("edge1", "root", ...).
	Name string
	// Nodes is the number of computing nodes in this layer.
	Nodes int
	// LinkRTT is the round-trip time of the links from the layer below
	// (or from the sources, for the first layer) into this layer.
	LinkRTT time.Duration
	// LinkBandwidth is the capacity of those links in bits/second
	// (0 = unlimited).
	LinkBandwidth float64
}

// TreeSpec is the full logical tree.
type TreeSpec struct {
	// Sources is the number of IoT source nodes producing sub-streams.
	Sources int
	// Layers lists the computing layers bottom-up; the last layer is the
	// root and must contain exactly one node.
	Layers []LayerSpec
	// Window is the interval length every node samples over (§III-B).
	Window time.Duration
}

// Validation errors.
var (
	ErrNoSources   = errors.New("topology: need at least one source")
	ErrNoLayers    = errors.New("topology: need at least one layer")
	ErrRootNodes   = errors.New("topology: root layer must have exactly one node")
	ErrLayerNodes  = errors.New("topology: every layer needs at least one node")
	ErrFanIn       = errors.New("topology: layer may not have more nodes than the layer below")
	ErrWindow      = errors.New("topology: window must be positive")
	ErrDuplicate   = errors.New("topology: duplicate layer name")
	ErrUnnamedNode = errors.New("topology: layer name must not be empty")
)

// Validate checks structural soundness.
func (s TreeSpec) Validate() error {
	if s.Sources < 1 {
		return ErrNoSources
	}
	if len(s.Layers) == 0 {
		return ErrNoLayers
	}
	if s.Window <= 0 {
		return ErrWindow
	}
	seen := make(map[string]bool, len(s.Layers))
	below := s.Sources
	for i, l := range s.Layers {
		if l.Name == "" {
			return fmt.Errorf("%w (layer %d)", ErrUnnamedNode, i)
		}
		if seen[l.Name] {
			return fmt.Errorf("%w: %q", ErrDuplicate, l.Name)
		}
		seen[l.Name] = true
		if l.Nodes < 1 {
			return fmt.Errorf("%w: %q", ErrLayerNodes, l.Name)
		}
		if l.Nodes > below {
			return fmt.Errorf("%w: %q has %d nodes above %d", ErrFanIn, l.Name, l.Nodes, below)
		}
		below = l.Nodes
	}
	if s.Layers[len(s.Layers)-1].Nodes != 1 {
		return ErrRootNodes
	}
	return nil
}

// RootLayer returns the index of the root layer.
func (s TreeSpec) RootLayer() int { return len(s.Layers) - 1 }

// NodeCount returns the total number of computing nodes in the tree.
func (s TreeSpec) NodeCount() int {
	n := 0
	for _, l := range s.Layers {
		n += l.Nodes
	}
	return n
}

// ParentIndex maps child index i of a layer with childCount nodes onto its
// parent in a layer with parentCount nodes, grouping children contiguously:
// with 8 children and 4 parents, children {0,1}→0, {2,3}→1, and so on.
func ParentIndex(childCount, parentCount, childIdx int) int {
	if childCount <= 0 || parentCount <= 0 {
		return 0
	}
	if childIdx < 0 {
		childIdx = 0
	}
	if childIdx >= childCount {
		childIdx = childCount - 1
	}
	return childIdx * parentCount / childCount
}

// ChildRange is the inverse of ParentIndex: the contiguous half-open range
// [lo, hi) of child indices that map onto parentIdx. With 8 children and 4
// parents, parent 1 owns children [2, 4). An empty range (lo == hi) means
// the parent has no children — possible when parentCount > childCount.
func ChildRange(childCount, parentCount, parentIdx int) (lo, hi int) {
	if childCount <= 0 || parentCount <= 0 || parentIdx < 0 || parentIdx >= parentCount {
		return 0, 0
	}
	// ParentIndex is non-decreasing in childIdx, so the preimage of
	// parentIdx is exactly the ceiling-division bracket below.
	lo = (parentIdx*childCount + parentCount - 1) / parentCount
	hi = ((parentIdx+1)*childCount + parentCount - 1) / parentCount
	return lo, hi
}

// SourceRange returns the half-open range [lo, hi) of source slots feeding
// layer-0 node nodeIdx — the slots that go dark when that node is detached
// from a live deployment.
func (s TreeSpec) SourceRange(nodeIdx int) (lo, hi int) {
	if len(s.Layers) == 0 {
		return 0, 0
	}
	return ChildRange(s.Sources, s.Layers[0].Nodes, nodeIdx)
}

// Testbed returns the paper's evaluation deployment (§V-A): 8 source nodes,
// a 4-node first edge layer (20 ms RTT from the sources), a 2-node second
// edge layer (40 ms RTT), and the datacenter root (80 ms RTT), all over
// 1 Gbps links, with the 1-second default window used in Fig. 8.
func Testbed() TreeSpec {
	return TreeSpec{
		Sources: 8,
		Layers: []LayerSpec{
			{Name: "edge1", Nodes: 4, LinkRTT: 20 * time.Millisecond, LinkBandwidth: 1e9},
			{Name: "edge2", Nodes: 2, LinkRTT: 40 * time.Millisecond, LinkBandwidth: 1e9},
			{Name: "root", Nodes: 1, LinkRTT: 80 * time.Millisecond, LinkBandwidth: 1e9},
		},
		Window: time.Second,
	}
}

// SingleNode returns the degenerate one-node deployment used for the
// single-node analysis of §III-C(i): sources feed the root directly.
func SingleNode(sources int) TreeSpec {
	return TreeSpec{
		Sources: sources,
		Layers: []LayerSpec{
			{Name: "root", Nodes: 1},
		},
		Window: time.Second,
	}
}
