package topology

import (
	"errors"
	"testing"
	"time"
)

func TestTestbedMatchesPaperSetup(t *testing.T) {
	s := Testbed()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Sources != 8 {
		t.Fatalf("Sources = %d, want 8", s.Sources)
	}
	wantNodes := []int{4, 2, 1}
	wantRTTs := []time.Duration{20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond}
	if len(s.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(s.Layers))
	}
	for i, l := range s.Layers {
		if l.Nodes != wantNodes[i] {
			t.Errorf("layer %d nodes = %d, want %d", i, l.Nodes, wantNodes[i])
		}
		if l.LinkRTT != wantRTTs[i] {
			t.Errorf("layer %d RTT = %v, want %v", i, l.LinkRTT, wantRTTs[i])
		}
		if l.LinkBandwidth != 1e9 {
			t.Errorf("layer %d bandwidth = %g, want 1 Gbps", i, l.LinkBandwidth)
		}
	}
	if s.NodeCount() != 7 {
		t.Fatalf("NodeCount = %d, want 7", s.NodeCount())
	}
	if s.RootLayer() != 2 {
		t.Fatalf("RootLayer = %d, want 2", s.RootLayer())
	}
}

func TestSingleNodeValid(t *testing.T) {
	s := SingleNode(4)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d, want 1", s.NodeCount())
	}
}

func TestValidateRejections(t *testing.T) {
	base := Testbed()
	tests := []struct {
		name   string
		mutate func(*TreeSpec)
		want   error
	}{
		{"no sources", func(s *TreeSpec) { s.Sources = 0 }, ErrNoSources},
		{"no layers", func(s *TreeSpec) { s.Layers = nil }, ErrNoLayers},
		{"zero window", func(s *TreeSpec) { s.Window = 0 }, ErrWindow},
		{"multi root", func(s *TreeSpec) { s.Layers[2].Nodes = 2 }, ErrRootNodes},
		{"zero layer nodes", func(s *TreeSpec) { s.Layers[1].Nodes = 0 }, ErrLayerNodes},
		{"widening layer", func(s *TreeSpec) { s.Layers[1].Nodes = 6 }, ErrFanIn},
		{"too many edge1", func(s *TreeSpec) { s.Layers[0].Nodes = 16 }, ErrFanIn},
		{"dup name", func(s *TreeSpec) { s.Layers[1].Name = "edge1" }, ErrDuplicate},
		{"empty name", func(s *TreeSpec) { s.Layers[0].Name = "" }, ErrUnnamedNode},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Layers = append([]LayerSpec(nil), base.Layers...)
			tc.mutate(&s)
			if err := s.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestParentIndexContiguousGrouping(t *testing.T) {
	// 8 children over 4 parents: pairs.
	wants := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, want := range wants {
		if got := ParentIndex(8, 4, i); got != want {
			t.Errorf("ParentIndex(8,4,%d) = %d, want %d", i, got, want)
		}
	}
	// 4 over 2.
	for i, want := range []int{0, 0, 1, 1} {
		if got := ParentIndex(4, 2, i); got != want {
			t.Errorf("ParentIndex(4,2,%d) = %d, want %d", i, got, want)
		}
	}
	// everything into a single root.
	for i := 0; i < 5; i++ {
		if got := ParentIndex(5, 1, i); got != 0 {
			t.Errorf("ParentIndex(5,1,%d) = %d, want 0", i, got)
		}
	}
}

func TestParentIndexUnbalanced(t *testing.T) {
	// 5 children over 2 parents: {0,1}→0, {2,3,4}→1 (contiguous, monotone).
	prev := 0
	for i := 0; i < 5; i++ {
		p := ParentIndex(5, 2, i)
		if p < prev {
			t.Fatalf("ParentIndex not monotone at child %d", i)
		}
		if p < 0 || p > 1 {
			t.Fatalf("ParentIndex(5,2,%d) = %d out of range", i, p)
		}
		prev = p
	}
}

func TestParentIndexDegenerateInputs(t *testing.T) {
	if ParentIndex(0, 4, 0) != 0 || ParentIndex(4, 0, 2) != 0 {
		t.Fatal("degenerate counts should map to 0")
	}
	if got := ParentIndex(4, 2, -1); got != 0 {
		t.Fatalf("negative child clamped = %d, want 0", got)
	}
	if got := ParentIndex(4, 2, 99); got != 1 {
		t.Fatalf("overflow child clamped = %d, want last parent", got)
	}
}

func TestParentIndexSingleNodeLayers(t *testing.T) {
	// A 1-node layer absorbs everything below it, and a chain of 1-node
	// layers maps 0→0 at every hop.
	for children := 1; children <= 16; children++ {
		for i := 0; i < children; i++ {
			if got := ParentIndex(children, 1, i); got != 0 {
				t.Fatalf("ParentIndex(%d,1,%d) = %d, want 0", children, i, got)
			}
		}
	}
	if got := ParentIndex(1, 1, 0); got != 0 {
		t.Fatalf("ParentIndex(1,1,0) = %d, want 0", got)
	}
	// A spec with a single-node middle layer (everything above must also be
	// single-node by the fan-in rule) validates.
	s := TreeSpec{
		Sources: 4,
		Layers: []LayerSpec{
			{Name: "edge", Nodes: 3},
			{Name: "mid", Nodes: 1},
			{Name: "root", Nodes: 1},
		},
		Window: time.Second,
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("single-node middle layer rejected: %v", err)
	}
}

func TestParentIndexUnevenFanInBalance(t *testing.T) {
	// Uneven fan-in must stay contiguous (monotone, no skipped parents) and
	// balanced: every parent receives floor(c/p) or ceil(c/p) children.
	for _, tc := range []struct{ children, parents int }{
		{7, 3}, {9, 4}, {5, 3}, {11, 2}, {13, 5}, {6, 4},
	} {
		counts := make([]int, tc.parents)
		prev := 0
		for i := 0; i < tc.children; i++ {
			p := ParentIndex(tc.children, tc.parents, i)
			if p < prev || p > prev+1 {
				t.Fatalf("%d/%d: parent jumped %d→%d at child %d", tc.children, tc.parents, prev, p, i)
			}
			prev = p
			counts[p]++
		}
		lo, hi := tc.children/tc.parents, (tc.children+tc.parents-1)/tc.parents
		for p, c := range counts {
			if c < lo || c > hi {
				t.Fatalf("%d/%d: parent %d received %d children, want %d..%d",
					tc.children, tc.parents, p, c, lo, hi)
			}
		}
	}
	// Equal counts: identity mapping.
	for i := 0; i < 6; i++ {
		if got := ParentIndex(6, 6, i); got != i {
			t.Fatalf("ParentIndex(6,6,%d) = %d, want identity", i, got)
		}
	}
}

func TestEveryParentGetsAChild(t *testing.T) {
	for _, tc := range []struct{ children, parents int }{{8, 4}, {4, 2}, {2, 1}, {7, 3}, {10, 10}} {
		seen := make(map[int]bool)
		for i := 0; i < tc.children; i++ {
			seen[ParentIndex(tc.children, tc.parents, i)] = true
		}
		if len(seen) != tc.parents {
			t.Errorf("%d/%d: only %d parents received children", tc.children, tc.parents, len(seen))
		}
	}
}

func TestChildRangeInvertsParentIndex(t *testing.T) {
	// Exhaustive over small shapes: ChildRange(p) must be exactly the
	// preimage of p under ParentIndex, and the ranges must tile [0, c).
	for c := 1; c <= 24; c++ {
		for p := 1; p <= 24; p++ {
			next := 0
			for parent := 0; parent < p; parent++ {
				lo, hi := ChildRange(c, p, parent)
				if lo != next {
					t.Fatalf("c=%d p=%d parent=%d: lo=%d, want %d (ranges must tile)", c, p, parent, lo, next)
				}
				if hi < lo {
					t.Fatalf("c=%d p=%d parent=%d: inverted range [%d,%d)", c, p, parent, lo, hi)
				}
				for i := lo; i < hi; i++ {
					if got := ParentIndex(c, p, i); got != parent {
						t.Fatalf("c=%d p=%d: child %d in range of parent %d but ParentIndex=%d", c, p, i, parent, got)
					}
				}
				next = hi
			}
			if next != c {
				t.Fatalf("c=%d p=%d: ranges cover [0,%d), want [0,%d)", c, p, next, c)
			}
		}
	}
}

func TestChildRangeDegenerateInputs(t *testing.T) {
	for _, tc := range []struct{ c, p, idx int }{{0, 4, 0}, {8, 0, 0}, {8, 4, -1}, {8, 4, 4}} {
		if lo, hi := ChildRange(tc.c, tc.p, tc.idx); lo != 0 || hi != 0 {
			t.Errorf("ChildRange(%d,%d,%d) = [%d,%d), want empty", tc.c, tc.p, tc.idx, lo, hi)
		}
	}
}

func TestSourceRangeTestbed(t *testing.T) {
	spec := Testbed()
	for node := 0; node < spec.Layers[0].Nodes; node++ {
		lo, hi := spec.SourceRange(node)
		if lo != 2*node || hi != 2*node+2 {
			t.Errorf("SourceRange(%d) = [%d,%d), want [%d,%d)", node, lo, hi, 2*node, 2*node+2)
		}
	}
	if lo, hi := (TreeSpec{Sources: 4}).SourceRange(0); lo != 0 || hi != 0 {
		t.Errorf("layerless spec SourceRange = [%d,%d), want empty", lo, hi)
	}
}
