package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// stores builds one of each backend for table-driven coverage.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	return map[string]Store{"memory": NewMemoryStore(), "file": fs}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Load("m0"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load before Save: err = %v, want ErrNotFound", err)
			}
			blob := []byte("state-v1")
			if err := s.Save("m0", blob); err != nil {
				t.Fatalf("Save: %v", err)
			}
			blob[0] = 'X' // caller reuse must not corrupt the store
			got, err := s.Load("m0")
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if !bytes.Equal(got, []byte("state-v1")) {
				t.Fatalf("Load = %q, want %q", got, "state-v1")
			}
			// Overwrite replaces, mutating the returned copy is safe.
			got[0] = 'Y'
			if err := s.Save("m0", []byte("state-v2")); err != nil {
				t.Fatalf("Save v2: %v", err)
			}
			if got, _ := s.Load("m0"); !bytes.Equal(got, []byte("state-v2")) {
				t.Fatalf("Load after overwrite = %q, want state-v2", got)
			}
			if err := s.Delete("m0"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := s.Load("m0"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load after Delete: err = %v, want ErrNotFound", err)
			}
			if err := s.Delete("m0"); err != nil {
				t.Fatalf("Delete of missing checkpoint: %v", err)
			}
		})
	}
}

func TestStoreIsolatesMembers(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Save("a", []byte("aaa")); err != nil {
				t.Fatalf("Save a: %v", err)
			}
			if err := s.Save("b", []byte("bbb")); err != nil {
				t.Fatalf("Save b: %v", err)
			}
			if err := s.Delete("a"); err != nil {
				t.Fatalf("Delete a: %v", err)
			}
			got, err := s.Load("b")
			if err != nil || !bytes.Equal(got, []byte("bbb")) {
				t.Fatalf("Load b = %q, %v; want bbb", got, err)
			}
		})
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if err := s.Save("edge0-shard1", []byte("persisted")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	reopened, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := reopened.Load("edge0-shard1")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("Load after reopen = %q, %v", got, err)
	}
}

// TestFileStoreRejectsCorruption is the corrupted-checkpoint-file rejection
// test: flipped payload bytes, truncation, and a wrong magic must all
// surface as ErrCorrupt, never as a successful Load of damaged state.
func TestFileStoreRejectsCorruption(t *testing.T) {
	damage := map[string]func([]byte) []byte{
		"payload-flip": func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		},
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"bad-magic": func(b []byte) []byte {
			b[0] = '?'
			return b
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := NewFileStore(dir)
			if err != nil {
				t.Fatalf("NewFileStore: %v", err)
			}
			if err := s.Save("m", []byte("precious reservoir state")); err != nil {
				t.Fatalf("Save: %v", err)
			}
			path := filepath.Join(dir, "m.ckpt")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read back: %v", err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatalf("write damage: %v", err)
			}
			if _, err := s.Load("m"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load corrupted: err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestFileStoreSanitizesIDs(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if err := s.Save("../escape/attempt", []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".._escape_attempt.ckpt")); err != nil {
		t.Fatalf("sanitized file missing: %v", err)
	}
	got, err := s.Load("../escape/attempt")
	if err != nil || string(got) != "x" {
		t.Fatalf("Load = %q, %v", got, err)
	}
}
