// Package checkpoint provides the pluggable stores that shard-group members
// save their recovery state into: reservoir (Ψ) contents, watermark chains,
// and consumer offsets, serialized by the session layer into an opaque blob
// keyed by member ID. A restarted member loads its blob, restores state,
// replays the gap from the broker's retained log, and rejoins its group.
//
// Two backends ship: MemoryStore (tests, single-process deployments) and
// FileStore (one file per member, atomic replace, CRC-checked so a torn or
// tampered file is rejected instead of silently restoring garbage).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store persists opaque per-member checkpoint blobs. Implementations must be
// safe for concurrent use: distinct members checkpoint from their own
// goroutines.
type Store interface {
	// Save durably replaces the blob for member id. The caller may reuse
	// state after Save returns.
	Save(id string, state []byte) error
	// Load returns the most recently saved blob for member id:
	// ErrNotFound when no checkpoint exists, ErrCorrupt when one exists
	// but fails integrity verification.
	Load(id string) ([]byte, error)
	// Delete removes member id's checkpoint; deleting a missing
	// checkpoint is not an error.
	Delete(id string) error
}

var (
	// ErrNotFound reports that no checkpoint exists for the member.
	ErrNotFound = errors.New("checkpoint: not found")
	// ErrCorrupt reports that a stored checkpoint failed integrity
	// verification (bad magic, truncation, or CRC mismatch) and must not
	// be restored.
	ErrCorrupt = errors.New("checkpoint: corrupt")
)

// MemoryStore keeps checkpoints in process memory: the right backend for
// tests and for deployments where a member restart means a new goroutine in
// the same process, not a new process.
type MemoryStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{blobs: make(map[string][]byte)}
}

func (s *MemoryStore) Save(id string, state []byte) error {
	cp := append([]byte(nil), state...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[id] = cp
	return nil
}

func (s *MemoryStore) Load(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), blob...), nil
}

func (s *MemoryStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, id)
	return nil
}

// FileStore persists one file per member under a directory. Writes go to a
// temp file first and are renamed into place, so a crash mid-save leaves the
// previous checkpoint intact; every file carries a magic header and a CRC32
// of the payload, so torn or tampered files surface as ErrCorrupt.
type FileStore struct {
	dir string
}

// fileMagic identifies a checkpoint file and its on-disk format version.
var fileMagic = []byte("APXCKPT1")

// NewFileStore returns a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// path maps a member id to its checkpoint file, flattening any separator
// characters so an id can never escape the store directory.
func (s *FileStore) path(id string) string {
	safe := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', 0:
			return '_'
		}
		return r
	}, id)
	return filepath.Join(s.dir, safe+".ckpt")
}

func (s *FileStore) Save(id string, state []byte) error {
	buf := make([]byte, 0, len(fileMagic)+8+len(state))
	buf = append(buf, fileMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(state)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(state))
	buf = append(buf, state...)

	dst := s.path(id)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

func (s *FileStore) Load(id string) ([]byte, error) {
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	header := len(fileMagic) + 8
	if len(raw) < header || string(raw[:len(fileMagic)]) != string(fileMagic) {
		return nil, ErrCorrupt
	}
	size := binary.LittleEndian.Uint32(raw[len(fileMagic):])
	sum := binary.LittleEndian.Uint32(raw[len(fileMagic)+4:])
	payload := raw[header:]
	if uint32(len(payload)) != size || crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrCorrupt
	}
	return payload, nil
}

func (s *FileStore) Delete(id string) error {
	err := os.Remove(s.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: delete: %w", err)
	}
	return nil
}
