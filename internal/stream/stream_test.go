package stream

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/approxiot/approxiot/internal/xrand"
)

func testBatch() Batch {
	ts := time.Date(2018, 7, 2, 10, 0, 0, 123456789, time.UTC)
	return Batch{
		Source: "sensor-42",
		Weight: 1.5,
		Items: []Item{
			{Source: "sensor-42", Value: 3.25, Ts: ts},
			{Source: "sensor-42", Value: -17, Ts: ts.Add(time.Millisecond)},
			{Source: "sensor-42", Value: 0, Ts: ts.Add(2 * time.Millisecond)},
		},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	in := testBatch()
	out, err := UnmarshalBatch(in.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalBatch: %v", err)
	}
	if out.Source != in.Source || out.Weight != in.Weight || len(out.Items) != len(in.Items) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Items {
		if out.Items[i].Value != in.Items[i].Value {
			t.Errorf("item %d value = %g, want %g", i, out.Items[i].Value, in.Items[i].Value)
		}
		if !out.Items[i].Ts.Equal(in.Items[i].Ts) {
			t.Errorf("item %d ts = %v, want %v", i, out.Items[i].Ts, in.Items[i].Ts)
		}
		if out.Items[i].Source != in.Source {
			t.Errorf("item %d source = %q, want %q", i, out.Items[i].Source, in.Source)
		}
	}
}

func TestMarshalEmptyBatch(t *testing.T) {
	in := Batch{Source: "s", Weight: 1}
	out, err := UnmarshalBatch(in.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalBatch: %v", err)
	}
	if len(out.Items) != 0 || out.Source != "s" || out.Weight != 1 {
		t.Fatalf("empty batch mangled: %+v", out)
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	b := testBatch()
	if got, want := b.WireSize(), len(b.Marshal()); got != want {
		t.Fatalf("WireSize = %d, encoded length = %d", got, want)
	}
}

func TestWireSizeMatchesEncodingProperty(t *testing.T) {
	f := func(seed uint64, srcLen uint16, n uint8) bool {
		r := xrand.New(seed)
		src := make([]byte, int(srcLen)%300) // cross the uvarint 1→2 byte boundary
		for i := range src {
			src[i] = byte('a' + r.Intn(26))
		}
		b := Batch{Source: SourceID(src), Weight: r.Float64() * 10}
		for i := 0; i < int(n); i++ {
			b.Items = append(b.Items, Item{Value: r.Normal(0, 1e6), Ts: time.Unix(0, int64(r.Uint64()>>1)).UTC()})
		}
		enc := b.Marshal()
		if len(enc) != b.WireSize() {
			return false
		}
		out, err := UnmarshalBatch(enc)
		return err == nil && out.Source == b.Source && len(out.Items) == len(b.Items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsBadVersion(t *testing.T) {
	enc := testBatch().Marshal()
	enc[0] = 99
	if _, err := UnmarshalBatch(enc); !errors.Is(err, ErrCodecVersion) {
		t.Fatalf("err = %v, want ErrCodecVersion", err)
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	enc := testBatch().Marshal()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := UnmarshalBatch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(enc))
		}
	}
}

func TestUnmarshalEmptyInput(t *testing.T) {
	if _, err := UnmarshalBatch(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestBatchValues(t *testing.T) {
	b := testBatch()
	vals := b.Values()
	want := []float64{3.25, -17, 0}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values() = %v, want %v", vals, want)
		}
	}
}

func TestBatchCloneIsDeep(t *testing.T) {
	b := testBatch()
	c := b.Clone()
	c.Items[0].Value = 999
	if b.Items[0].Value == 999 {
		t.Fatal("Clone shares item storage with original")
	}
}

func TestWeightMapDefaultsToOne(t *testing.T) {
	var m WeightMap
	if got := m.Get("unknown"); got != 1 {
		t.Fatalf("nil map Get = %g, want 1 (paper: W_in=1 at sources)", got)
	}
	m.Set("a", 2.5)
	if got := m.Get("a"); got != 2.5 {
		t.Fatalf("Get after Set = %g, want 2.5", got)
	}
	if got := m.Get("b"); got != 1 {
		t.Fatalf("Get missing = %g, want 1", got)
	}
}

func TestWeightMapSetOnNil(t *testing.T) {
	var m WeightMap
	m.Set("x", 3)
	if m.Get("x") != 3 {
		t.Fatal("Set on nil map did not allocate")
	}
}

func TestUnmarshalBatchIntoReusesStorage(t *testing.T) {
	in := testBatch()
	enc := in.Marshal()

	var scratch Batch
	if err := UnmarshalBatchInto(&scratch, enc); err != nil {
		t.Fatalf("UnmarshalBatchInto: %v", err)
	}
	if scratch.Source != in.Source || scratch.Weight != in.Weight || len(scratch.Items) != len(in.Items) {
		t.Fatalf("decode mismatch: %+v vs %+v", scratch, in)
	}
	firstItems := &scratch.Items[0]
	firstSource := scratch.Source

	// Second decode of the same batch: items storage and source string are
	// both reused, and the contents still round-trip.
	if err := UnmarshalBatchInto(&scratch, enc); err != nil {
		t.Fatalf("second decode: %v", err)
	}
	if &scratch.Items[0] != firstItems {
		t.Error("items storage reallocated on same-size decode")
	}
	if scratch.Source != firstSource {
		t.Error("source re-decoded despite matching previous batch")
	}
	for i := range in.Items {
		if scratch.Items[i].Value != in.Items[i].Value || !scratch.Items[i].Ts.Equal(in.Items[i].Ts) {
			t.Fatalf("item %d mangled on reuse: %+v", i, scratch.Items[i])
		}
	}

	// A different source must replace the string and retag items.
	other := testBatch()
	other.Source = "sensor-99"
	for i := range other.Items {
		other.Items[i].Source = other.Source
	}
	if err := UnmarshalBatchInto(&scratch, other.Marshal()); err != nil {
		t.Fatalf("decode other source: %v", err)
	}
	if scratch.Source != "sensor-99" || scratch.Items[0].Source != "sensor-99" {
		t.Fatalf("source switch mishandled: %+v", scratch)
	}

	// A smaller batch shrinks the view without reallocating.
	small := Batch{Source: "sensor-99", Weight: 1, Items: other.Items[:1]}
	if err := UnmarshalBatchInto(&scratch, small.Marshal()); err != nil {
		t.Fatalf("decode small: %v", err)
	}
	if len(scratch.Items) != 1 {
		t.Fatalf("small decode has %d items, want 1", len(scratch.Items))
	}
}

func TestUnmarshalBatchIntoTruncation(t *testing.T) {
	enc := testBatch().Marshal()
	var scratch Batch
	for cut := 0; cut < len(enc); cut++ {
		if err := UnmarshalBatchInto(&scratch, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(enc))
		}
	}
}

func TestUnmarshalBatchRejectsOverflowedCount(t *testing.T) {
	// A crafted item count near 2^64 must fail the length check, not wrap
	// count*itemWireSize to a small number and panic in make.
	enc := Batch{Source: "s", Weight: 1}.Marshal()
	enc = enc[:len(enc)-1] // drop the 0 item count
	enc = binary.AppendUvarint(enc, 1<<60)
	if _, err := UnmarshalBatch(enc); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestAppendMarshalExtendsBuffer(t *testing.T) {
	in := testBatch()
	prefix := []byte("prefix")
	buf := in.AppendMarshal(append([]byte(nil), prefix...))
	if string(buf[:len(prefix)]) != "prefix" {
		t.Fatal("AppendMarshal clobbered existing bytes")
	}
	out, err := UnmarshalBatch(buf[len(prefix):])
	if err != nil {
		t.Fatalf("decode appended encoding: %v", err)
	}
	if out.Source != in.Source || len(out.Items) != len(in.Items) {
		t.Fatalf("append round trip mismatch: %+v", out)
	}
}

func benchBatch(items int) Batch {
	batch := Batch{Source: "src-1", Weight: 2}
	for i := 0; i < items; i++ {
		batch.Items = append(batch.Items, Item{Source: "src-1", Value: float64(i), Ts: time.Unix(0, int64(i))})
	}
	return batch
}

func BenchmarkBatchMarshal(b *testing.B) {
	batch := benchBatch(128)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(batch.WireSize()))
		for i := 0; i < b.N; i++ {
			batch.Marshal()
		}
	})
	b.Run("append-reuse", func(b *testing.B) {
		buf := make([]byte, 0, batch.WireSize())
		b.ReportAllocs()
		b.SetBytes(int64(batch.WireSize()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = batch.AppendMarshal(buf[:0])
		}
	})
}

func BenchmarkBatchUnmarshal(b *testing.B) {
	batch := benchBatch(128)
	enc := batch.Marshal()
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(enc)))
		for i := 0; i < b.N; i++ {
			if _, err := UnmarshalBatch(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into-reuse", func(b *testing.B) {
		var scratch Batch
		b.ReportAllocs()
		b.SetBytes(int64(len(enc)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := UnmarshalBatchInto(&scratch, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
