package streams

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/transport"
)

func runDSL(t *testing.T, b *mq.Broker, sb *StreamBuilder, appID string) *Runtime {
	t.Helper()
	topo, err := sb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rt, err := NewRuntime(transport.WrapBroker(b), topo, appID, WithPollWait(time.Millisecond))
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { rt.Stop() })
	return rt
}

func TestDSLFilterMap(t *testing.T) {
	b := buildBroker(t, "in", "out")
	sb := NewStreamBuilder()
	sb.Stream("in").
		Filter(func(m Message) bool { return m.Value[0]%2 == 0 }).
		Map(func(m Message) Message { return Message{Key: m.Key, Value: []byte{m.Value[0] * 10}} }).
		To("out")
	runDSL(t, b, sb, "app")

	p := mq.NewProducer(b)
	for i := byte(0); i < 6; i++ {
		p.Send("in", nil, []byte{i})
	}
	recs := drain(t, b, "out", 3, 2*time.Second)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (evens only)", len(recs))
	}
	sum := 0
	for _, r := range recs {
		sum += int(r.Value[0])
	}
	if sum != 0+20+40 {
		t.Fatalf("mapped values sum = %d, want 60", sum)
	}
}

func TestDSLFlatMap(t *testing.T) {
	b := buildBroker(t, "in", "out")
	sb := NewStreamBuilder()
	sb.Stream("in").
		FlatMap(func(m Message) []Message {
			n := int(m.Value[0])
			out := make([]Message, n)
			for i := range out {
				out[i] = Message{Value: []byte{byte(i)}}
			}
			return out
		}).
		To("out")
	runDSL(t, b, sb, "app")

	mq.NewProducer(b).Send("in", nil, []byte{4})
	recs := drain(t, b, "out", 4, 2*time.Second)
	if len(recs) != 4 {
		t.Fatalf("FlatMap emitted %d, want 4", len(recs))
	}
}

func TestDSLPeekDoesNotMutate(t *testing.T) {
	b := buildBroker(t, "in", "out")
	var mu sync.Mutex
	seen := 0
	sb := NewStreamBuilder()
	sb.Stream("in").
		Peek(func(Message) { mu.Lock(); seen++; mu.Unlock() }).
		To("out")
	runDSL(t, b, sb, "app")

	mq.NewProducer(b).Send("in", nil, []byte("x"))
	recs := drain(t, b, "out", 1, 2*time.Second)
	if len(recs) != 1 || string(recs[0].Value) != "x" {
		t.Fatalf("Peek altered the stream: %v", recs)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen != 1 {
		t.Fatalf("Peek saw %d messages, want 1", seen)
	}
}

func TestDSLMerge(t *testing.T) {
	b := buildBroker(t, "in1", "in2", "out")
	sb := NewStreamBuilder()
	s1 := sb.Stream("in1")
	s2 := sb.Stream("in2")
	s1.Merge(s2).To("out")
	runDSL(t, b, sb, "app")

	p := mq.NewProducer(b)
	p.Send("in1", nil, []byte("a"))
	p.Send("in2", nil, []byte("b"))
	recs := drain(t, b, "out", 2, 2*time.Second)
	if len(recs) != 2 {
		t.Fatalf("merged %d records, want 2", len(recs))
	}
}

func TestDSLWindowedAggregateCountsPerKey(t *testing.T) {
	b := buildBroker(t, "in", "out")
	sb := NewStreamBuilder()
	sb.Stream("in").
		GroupByKey().
		WindowedAggregate(
			20*time.Millisecond,
			func() any { return 0 },
			func(_ string, _ Message, acc any) any { return acc.(int) + 1 },
			func(key string, acc any, _ time.Time) Message {
				return Message{Key: []byte(key), Value: []byte(strconv.Itoa(acc.(int)))}
			},
		).
		To("out")
	runDSL(t, b, sb, "app")

	p := mq.NewProducer(b)
	for i := 0; i < 6; i++ {
		p.Send("in", []byte("a"), []byte("x"))
	}
	for i := 0; i < 2; i++ {
		p.Send("in", []byte("b"), []byte("x"))
	}

	// Counts may split across windows; totals per key must come out exact.
	counts := map[string]int{}
	deadline := time.Now().Add(2 * time.Second)
	c, _ := mq.NewConsumer(b, "out")
	defer c.Close()
	for time.Now().Before(deadline) && (counts["a"] < 6 || counts["b"] < 2) {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		recs, err := c.Poll(ctx, 16)
		cancel()
		if err != nil {
			continue
		}
		for _, r := range recs {
			n, _ := strconv.Atoi(string(r.Value))
			counts[string(r.Key)] += n
		}
	}
	if counts["a"] != 6 || counts["b"] != 2 {
		t.Fatalf("windowed counts = %v, want a:6 b:2", counts)
	}
}

func TestDSLWindowedAggregateSum(t *testing.T) {
	// The root's "computation engine" pattern from §IV-B: windowed SUM per
	// key over float payloads.
	b := buildBroker(t, "in", "out")
	encode := func(v float64) []byte {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		return buf[:]
	}
	decode := func(p []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(p))
	}
	sb := NewStreamBuilder()
	sb.Stream("in").
		GroupByKey().
		WindowedAggregate(
			20*time.Millisecond,
			func() any { return 0.0 },
			func(_ string, m Message, acc any) any { return acc.(float64) + decode(m.Value) },
			func(key string, acc any, _ time.Time) Message {
				return Message{Key: []byte(key), Value: encode(acc.(float64))}
			},
		).
		To("out")
	runDSL(t, b, sb, "app")

	p := mq.NewProducer(b)
	want := 0.0
	for i := 1; i <= 10; i++ {
		p.Send("in", []byte("sensor"), encode(float64(i)))
		want += float64(i)
	}
	got := 0.0
	c, _ := mq.NewConsumer(b, "out")
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && got < want {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		recs, err := c.Poll(ctx, 16)
		cancel()
		if err != nil {
			continue
		}
		for _, r := range recs {
			got += decode(r.Value)
		}
	}
	if got != want {
		t.Fatalf("windowed SUM = %g, want %g", got, want)
	}
}

func TestDSLProcessEscapeHatch(t *testing.T) {
	// The paper's sampling module pattern: a custom low-level processor
	// inside a DSL chain.
	b := buildBroker(t, "in", "out")
	sb := NewStreamBuilder()
	sb.Stream("in").
		Process(func() Processor {
			return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
				ctx.Forward(Message{Value: append([]byte("proc:"), msg.Value...)})
				return nil
			})
		}).
		To("out")
	runDSL(t, b, sb, "app")

	mq.NewProducer(b).Send("in", nil, []byte("x"))
	recs := drain(t, b, "out", 1, 2*time.Second)
	if len(recs) != 1 || string(recs[0].Value) != "proc:x" {
		t.Fatalf("custom processor output = %q", recs)
	}
}

func TestDSLChainsCompileToValidTopology(t *testing.T) {
	sb := NewStreamBuilder()
	s := sb.Stream("a")
	s.Filter(func(Message) bool { return true }).To("x")
	s.Map(func(m Message) Message { return m }).To("y") // fan-out from one stream
	topo, err := sb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(topo.Sources()) != 1 {
		t.Fatalf("sources = %v", topo.Sources())
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put("b", 2)
	s.Put("a", 1)
	if keys := s.Keys(); len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("Keys = %v, want sorted [a b]", keys)
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("Delete did not remove key")
	}
	s.Clear()
	if len(s.Keys()) != 0 {
		t.Fatal("Clear left keys")
	}
}

func TestDSLUniqueNodeNames(t *testing.T) {
	sb := NewStreamBuilder()
	names := map[string]bool{}
	for i := 0; i < 5; i++ {
		s := sb.Stream(fmt.Sprintf("t%d", i))
		if names[s.node] {
			t.Fatalf("duplicate generated name %s", s.node)
		}
		names[s.node] = true
	}
}
