package streams

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/transport"
	"github.com/approxiot/approxiot/internal/vclock"
)

// Runtime executes a Topology against a transport bus: one pump goroutine
// polls the topology's source topics, pushes each record synchronously
// through the DAG, and fires punctuations when they come due. It models a
// single Kafka Streams instance on one edge node; with a network bus the
// instance really is remote from its broker.
type Runtime struct {
	bus       transport.Bus
	topo      *Topology
	appID     string
	clock     vclock.Clock
	pollBatch int
	pollWait  time.Duration
	noBatch   bool // WithRecordAtATime: force the per-record seed path

	consumers map[string]transport.Consumer // source name → consumer
	producer  transport.Producer
	contexts  map[string]*nodeContext
	instances map[string]Processor
	observers []CycleObserver // processors implementing CycleObserver, in topology order

	// Pump scratch, reused every poll cycle so the steady-state hot path
	// allocates nothing: polled records, their Message views, and the
	// record form ForwardBatch hands to sink sends. Owned by the single
	// pump goroutine (sinkScratch also by synchronous dispatch from it).
	recScratch  []mq.Record
	msgScratch  []Message
	sinkScratch []mq.Record

	mu      sync.Mutex
	puncts  []*punctuation
	started bool
	stopped bool
	frozen  bool        // Freeze: pump halted, consumers still in their groups
	busy    atomic.Bool // pump mid-cycle (set before fetching, cleared when idle)

	syncCh chan func() // Sync: closures executed on the pump goroutine
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// PartitionOffset pairs a partition with a consumer offset; SourceCommitted
// returns one per owned partition.
type PartitionOffset struct {
	Partition int
	Offset    int64
}

// OffsetReader is implemented by the ProcessorContext a Runtime hands its
// processors: it exposes the committed offsets of the runtime's source
// consumers, so a processor can checkpoint "state as of these offsets"
// without widening the ProcessorContext interface for every implementation.
type OffsetReader interface {
	SourceCommitted() []PartitionOffset
}

// CycleObserver is an optional Processor extension: AfterCycle runs on the
// pump goroutine at the end of every poll cycle that dispatched records —
// the same consistent cut Sync closures see, where every fetched record has
// been dispatched and the committed source offsets account for exactly the
// records the processor has ingested. Processors that emit output mid-cycle
// (event-time inline window closes) use it to checkpoint immediately after
// emitting, so no output ever exists that a checkpoint does not cover.
type CycleObserver interface {
	AfterCycle()
}

type punctuation struct {
	interval  time.Duration
	next      time.Time
	fn        func(now time.Time)
	cancelled bool
}

// RuntimeOption customizes a Runtime.
type RuntimeOption func(*Runtime)

// WithClock overrides the runtime clock (default wall clock).
func WithClock(c vclock.Clock) RuntimeOption {
	return func(r *Runtime) { r.clock = c }
}

// WithPollBatch sets the per-poll record cap (default 256).
func WithPollBatch(n int) RuntimeOption {
	return func(r *Runtime) {
		if n > 0 {
			r.pollBatch = n
		}
	}
}

// WithPollWait bounds how long the pump blocks waiting for records before
// re-checking punctuations (default 10ms).
func WithPollWait(d time.Duration) RuntimeOption {
	return func(r *Runtime) {
		if d > 0 {
			r.pollWait = d
		}
	}
}

// WithRecordAtATime forces the pre-batching hot path: every polled record is
// dispatched with its own Process call and every sink emission is its own
// broker append, even for BatchProcessor instances. The equivalence suite
// uses it as the semantic reference the batched path must match; it is not
// meant for production topologies.
func WithRecordAtATime() RuntimeOption {
	return func(r *Runtime) { r.noBatch = true }
}

// NewRuntime prepares a runtime for topo over the given bus. appID
// namespaces the consumer groups, so multiple runtimes with distinct IDs
// each receive the full stream, while runtimes sharing an ID split
// partitions like a Kafka Streams application scaled horizontally — whether
// they share a process (in-memory bus) or not (network bus).
func NewRuntime(bus transport.Bus, topo *Topology, appID string, opts ...RuntimeOption) (*Runtime, error) {
	r := &Runtime{
		bus:       bus,
		topo:      topo,
		appID:     appID,
		clock:     vclock.WallClock{},
		pollBatch: 256,
		pollWait:  10 * time.Millisecond,
		consumers: make(map[string]transport.Consumer),
		contexts:  make(map[string]*nodeContext),
		instances: make(map[string]Processor),
		producer:  bus.NewProducer(),
		syncCh:    make(chan func()),
		done:      make(chan struct{}),
	}
	for _, opt := range opts {
		opt(r)
	}

	for _, name := range topo.order {
		n := topo.nodes[name]
		switch n.kind {
		case kindSource:
			c, err := bus.NewGroupConsumer(n.topic, appID+"-"+name)
			if err != nil {
				return nil, fmt.Errorf("streams: source %q: %w", name, err)
			}
			r.consumers[name] = c
		case kindProcessor:
			inst := n.supplier()
			r.instances[name] = inst
			if o, ok := inst.(CycleObserver); ok {
				r.observers = append(r.observers, o)
			}
		}
		r.contexts[name] = &nodeContext{rt: r, node: n}
	}
	return r, nil
}

// nodeContext implements ProcessorContext for one topology node.
type nodeContext struct {
	rt   *Runtime
	node *node
}

var (
	_ ProcessorContext = (*nodeContext)(nil)
	_ OffsetReader     = (*nodeContext)(nil)
)

func (c *nodeContext) NodeName() string { return c.node.name }
func (c *nodeContext) Now() time.Time   { return c.rt.clock.Now() }

func (c *nodeContext) SourceCommitted() []PartitionOffset { return c.rt.SourceCommitted() }

func (c *nodeContext) Forward(msg Message) {
	for _, child := range c.node.children {
		if err := c.rt.dispatch(child, msg); err != nil {
			c.rt.fail(err)
		}
	}
}

func (c *nodeContext) ForwardBatch(msgs []Message) {
	if len(msgs) == 0 {
		return
	}
	for _, child := range c.node.children {
		if err := c.rt.dispatchBatch(child, msgs); err != nil {
			c.rt.fail(err)
		}
	}
}

func (c *nodeContext) Schedule(interval time.Duration, fn func(now time.Time)) func() {
	if interval <= 0 {
		interval = time.Millisecond
	}
	p := &punctuation{interval: interval, next: c.rt.clock.Now().Add(interval), fn: fn}
	c.rt.mu.Lock()
	c.rt.puncts = append(c.rt.puncts, p)
	c.rt.mu.Unlock()
	return func() {
		c.rt.mu.Lock()
		p.cancelled = true
		c.rt.mu.Unlock()
	}
}

// dispatch routes one message into the node named name.
func (r *Runtime) dispatch(name string, msg Message) error {
	n := r.topo.nodes[name]
	switch n.kind {
	case kindProcessor:
		return r.instances[name].Process(msg)
	case kindSink:
		_, _, err := r.producer.SendWatermarked(n.topic, msg.Key, msg.Value, msg.Watermark)
		return err
	default:
		return fmt.Errorf("streams: cannot dispatch into source %q", name)
	}
}

// dispatchBatch routes a whole polled batch into the node named name:
// BatchProcessor instances take the slice in one call, plain processors get
// the per-record loop (same order, same semantics), and sinks produce the
// batch with a single SendBatch append. msgs is never retained.
func (r *Runtime) dispatchBatch(name string, msgs []Message) error {
	if len(msgs) == 1 {
		return r.dispatch(name, msgs[0])
	}
	n := r.topo.nodes[name]
	switch n.kind {
	case kindProcessor:
		if bp, ok := r.instances[name].(BatchProcessor); ok && !r.noBatch {
			return bp.ProcessBatch(msgs)
		}
		inst := r.instances[name]
		for i := range msgs {
			if err := inst.Process(msgs[i]); err != nil {
				return err
			}
		}
		return nil
	case kindSink:
		if r.noBatch {
			for i := range msgs {
				if _, _, err := r.producer.SendWatermarked(n.topic, msgs[i].Key, msgs[i].Value, msgs[i].Watermark); err != nil {
					return err
				}
			}
			return nil
		}
		recs := r.sinkScratch[:0]
		for i := range msgs {
			recs = append(recs, mq.Record{Key: msgs[i].Key, Value: msgs[i].Value, Watermark: msgs[i].Watermark})
		}
		err := r.producer.SendBatch(n.topic, recs)
		// Scrub the scratch before recycling: the records hold references to
		// the callers' key/value bytes, and a stale reference in spare
		// capacity would pin them past their lifetime.
		for i := range recs {
			recs[i] = mq.Record{}
		}
		r.sinkScratch = recs[:0]
		return err
	default:
		return fmt.Errorf("streams: cannot dispatch into source %q", name)
	}
}

// Start initializes all processors and launches the pump goroutine. A
// runtime that was stopped (even before ever starting) cannot be started.
func (r *Runtime) Start() error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return errors.New("streams: runtime stopped")
	}
	if r.started {
		r.mu.Unlock()
		return errors.New("streams: runtime already started")
	}
	r.started = true
	r.mu.Unlock()

	for i, name := range r.topo.order {
		if p, ok := r.instances[name]; ok {
			if err := p.Init(r.contexts[name]); err != nil {
				// Failed mid-init: close what was initialized and revert to
				// never-started, so a subsequent Stop cleans up consumers
				// without touching the unlaunched pump (nil cancel, open
				// done channel).
				for _, prev := range r.topo.order[:i] {
					if q, ok := r.instances[prev]; ok {
						_ = q.Close()
					}
				}
				r.mu.Lock()
				r.started = false
				r.mu.Unlock()
				return fmt.Errorf("streams: init %q: %w", name, err)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go r.pump(ctx)
	return nil
}

// pump is the single processing loop.
func (r *Runtime) pump(ctx context.Context) {
	defer close(r.done)
	defer r.busy.Store(false)
	sources := r.topo.Sources()
	// With a single source (every edge-tree topology) the idle branch can
	// block on the topic's append signal instead of sleeping the full poll
	// wait — the runtime wakes the moment records arrive, like a blocking
	// Kafka poll. The channel is armed before each poll so a record landing
	// between the empty poll and the wait is never missed.
	var wake <-chan struct{}
	single := len(sources) == 1
	for {
		if ctx.Err() != nil {
			return
		}
		// Mark busy BEFORE fetching: a group poll commits offsets at fetch
		// time (Lag drops before the records are dispatched), so quiescence
		// probes must see either lag > 0 or Busy() — never a gap.
		r.busy.Store(true)
		// Sync closures run here, between cycles: every previously fetched
		// record has been dispatched and no fetch is in flight, so a closure
		// observes state consistent with the committed offsets.
		select {
		case fn := <-r.syncCh:
			fn()
		default:
		}
		r.firePunctuations()

		if single {
			wake = r.consumers[sources[0]].WaitChan()
		}
		progressed := false
		for _, src := range sources {
			recs, err := r.consumers[src].TryPollInto(r.recScratch[:0], r.pollBatch)
			if err != nil {
				if !errors.Is(err, mq.ErrClosed) {
					r.fail(err)
				}
				return
			}
			r.recScratch = recs
			if r.noBatch {
				// Seed path: one dispatch per record, in order.
				for _, rec := range recs {
					msg := Message{Key: rec.Key, Value: rec.Value, Ts: rec.Ts, Watermark: rec.Watermark, Partition: rec.Partition}
					for _, child := range r.topo.nodes[src].children {
						if err := r.dispatch(child, msg); err != nil {
							r.fail(err)
							return
						}
					}
				}
			} else if len(recs) > 0 {
				// Batched path: view the fetch as one []Message and hand the
				// whole batch down — BatchProcessor children decode/process
				// per fetched batch, sinks append once per fetched batch.
				msgs := r.msgScratch[:0]
				for _, rec := range recs {
					msgs = append(msgs, Message{Key: rec.Key, Value: rec.Value, Ts: rec.Ts, Watermark: rec.Watermark, Partition: rec.Partition})
				}
				r.msgScratch = msgs
				for _, child := range r.topo.nodes[src].children {
					if err := r.dispatchBatch(child, msgs); err != nil {
						r.fail(err)
						return
					}
				}
			}
			if len(recs) > 0 {
				progressed = true
			}
		}
		if r.failed() {
			return
		}
		if progressed {
			// End-of-cycle cut: every record fetched this cycle has been
			// dispatched, so observers see state consistent with the
			// committed offsets (even when ctx was cancelled mid-cycle —
			// the exit check at the loop top runs after this).
			for _, o := range r.observers {
				o.AfterCycle()
			}
		} else {
			if single && r.consumers[sources[0]].TopicClosed() {
				// Drained and the topic is gone: no record can ever
				// arrive again (and its wake channel fires forever).
				// End-of-stream: flush windowed processors by firing
				// every live punctuation once before exiting.
				r.finalPunctuations()
				return
			}
			// Idle: block until records arrive (single source), bounded by
			// the nearest punctuation or the configured poll wait.
			r.busy.Store(false)
			timer := time.NewTimer(r.idleWait())
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case fn := <-r.syncCh: // Sync while idle: run without waiting out the timer
				timer.Stop()
				fn()
			case <-wake: // nil (multi-source): never fires, timer bounds
				timer.Stop()
			case <-timer.C:
			}
		}
	}
}

func (r *Runtime) idleWait() time.Duration {
	wait := r.pollWait
	r.mu.Lock()
	now := r.clock.Now()
	for _, p := range r.puncts {
		if p.cancelled {
			continue
		}
		if d := p.next.Sub(now); d < wait {
			wait = d
		}
	}
	r.mu.Unlock()
	if wait < 0 {
		wait = 0
	}
	return wait
}

func (r *Runtime) firePunctuations() {
	now := r.clock.Now()
	r.mu.Lock()
	var due []*punctuation
	live := r.puncts[:0]
	for _, p := range r.puncts {
		if p.cancelled {
			continue
		}
		if !now.Before(p.next) {
			due = append(due, p)
			p.next = now.Add(p.interval)
		}
		live = append(live, p)
	}
	r.puncts = live
	r.mu.Unlock()
	for _, p := range due {
		p.fn(now)
	}
}

// finalPunctuations fires every live punctuation once, due or not —
// end-of-stream flush semantics, so a windowed processor's buffered final
// window is forwarded instead of silently dropped.
func (r *Runtime) finalPunctuations() {
	now := r.clock.Now()
	r.mu.Lock()
	var due []*punctuation
	for _, p := range r.puncts {
		if !p.cancelled {
			due = append(due, p)
			p.next = now.Add(p.interval)
		}
	}
	r.mu.Unlock()
	for _, p := range due {
		p.fn(now)
	}
}

func (r *Runtime) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

func (r *Runtime) failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err != nil
}

// Stop shuts the pump down, closes processors and consumers, and waits.
// It is idempotent, and safe on a never-started runtime: the consumers are
// still closed (leaving their groups, releasing their partitions), though
// processors — never initialized — are not Close()d.
func (r *Runtime) Stop() error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return r.err
	}
	r.stopped = true
	started := r.started
	r.mu.Unlock()

	if started {
		r.cancel()
		<-r.done
		for name, p := range r.instances {
			if err := p.Close(); err != nil {
				r.fail(fmt.Errorf("streams: close %q: %w", name, err))
			}
		}
	}
	for _, c := range r.consumers {
		c.Close()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Freeze halts the pump goroutine without releasing anything: processors are
// not closed and consumers stay in their groups, still owning their
// partitions. It models a member crashing ("kill -9"): processing stops
// dead, but the group has not yet noticed. The caller can then inspect
// still-owned state (SourceCommitted) before completing the death with Stop,
// which triggers the rebalance. Idempotent; a no-op before Start or after
// Stop.
func (r *Runtime) Freeze() {
	r.mu.Lock()
	if !r.started || r.stopped || r.frozen {
		r.mu.Unlock()
		return
	}
	r.frozen = true
	r.mu.Unlock()
	r.cancel()
	<-r.done
}

// Sync runs fn on the pump goroutine between processing cycles — at a point
// where every fetched record has been dispatched and no fetch is in flight —
// and returns once fn has completed. Processor state observed by fn is
// consistent with the source consumers' committed offsets, which makes Sync
// the barrier primitive for checkpoint-before-rebalance. It fails if the
// pump is not running (never started, stopped, frozen, or failed).
func (r *Runtime) Sync(fn func()) error {
	r.mu.Lock()
	running := r.started && !r.stopped && !r.frozen
	r.mu.Unlock()
	if !running {
		return errors.New("streams: runtime not running")
	}
	done := make(chan struct{})
	select {
	case r.syncCh <- func() { defer close(done); fn() }:
		<-done
		return nil
	case <-r.done:
		return errors.New("streams: runtime not running")
	}
}

// SourceCommitted returns the committed offsets of every partition currently
// owned by this runtime's source consumers, sorted by partition. With the
// single-source topologies the session builds, the offsets all refer to that
// source's topic.
func (r *Runtime) SourceCommitted() []PartitionOffset {
	var offs []PartitionOffset
	for _, c := range r.consumers {
		for _, p := range c.Assignment() {
			offs = append(offs, PartitionOffset{Partition: p, Offset: c.Committed(p)})
		}
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i].Partition < offs[j].Partition })
	return offs
}

// Busy reports whether the pump is mid-cycle: fetched records may be in
// flight through the DAG even though Lag reads 0 (group offsets commit at
// fetch time). Quiescence probes must require Lag() == 0 && !Busy().
func (r *Runtime) Busy() bool { return r.busy.Load() }

// Lag returns the total number of records waiting in this runtime's source
// topics (0 when fully caught up). Drain logic uses it to detect quiescence.
func (r *Runtime) Lag() int64 {
	var lag int64
	for _, c := range r.consumers {
		lag += c.Lag()
	}
	return lag
}

// Done is closed when the pump goroutine exits.
func (r *Runtime) Done() <-chan struct{} { return r.done }

// Err returns the first error the runtime hit, if any.
func (r *Runtime) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
