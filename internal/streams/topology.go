// Package streams is a miniature stream-processing library over the mq
// broker, standing in for the Kafka Streams library [16] the ApproxIoT
// prototype used. It provides the two APIs the paper's implementation
// needed:
//
//   - a topology builder (the "High-Level Streams DSL"): sources that
//     consume topics, processors wired into a DAG, and sinks that produce
//     into topics; and
//   - a low-level Processor contract (the "Low-Level Processor API") with
//     Forward for emitting downstream and punctuation for interval-driven
//     work — which is exactly how the sampling module flushes a window.
//
// One Runtime corresponds to one logical node of the edge tree: a single
// pump goroutine polls the node's sources, pushes records through the DAG,
// and fires due punctuations, mirroring a Kafka Streams task thread.
package streams

import (
	"errors"
	"fmt"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
)

// Message is the unit that flows through a topology.
type Message struct {
	Key   []byte
	Value []byte
	Ts    time.Time
	// Watermark is the piggybacked event-time low watermark of the
	// producing chain (zero = none). Sources copy it off the consumed
	// mq.Record; sinks piggyback it back onto the produced record, so
	// watermarks ride the data path across every hop.
	Watermark mq.Watermark
	// Partition is the input-topic partition the source consumed this
	// message from (0 for messages that never crossed the broker). Ordering
	// guarantees are per partition, so processors that act on cross-record
	// promises — an end-of-stream watermark above all — need to know which
	// FIFO lane a message rode in on.
	Partition int
}

// Processor is the low-level operator contract. Implementations are owned
// by a single Runtime pump goroutine: Process and punctuation callbacks are
// never invoked concurrently.
type Processor interface {
	// Init is called once before any message, with the node's context.
	Init(ctx ProcessorContext) error
	// Process handles one message. Returning an error stops the runtime.
	Process(msg Message) error
	// Close is called once during shutdown, after the last message.
	Close() error
}

// BatchProcessor is an optional extension of Processor: an operator that can
// take a whole polled batch in one call. When a runtime's source fetches N
// records it hands BatchProcessor children the full []Message slice — one
// dispatch, one downstream flush — instead of N Process calls. The batch
// slice is only valid for the duration of the call and must not be retained.
// Semantics must be identical to processing the messages one at a time in
// order; batching is a transport-level amortization, never a behavioral one.
type BatchProcessor interface {
	Processor
	// ProcessBatch handles a polled batch of messages, in order. Returning
	// an error stops the runtime.
	ProcessBatch(msgs []Message) error
}

// ProcessorContext is the API a Processor uses to interact with its node.
type ProcessorContext interface {
	// Forward emits a message to every downstream child of this node.
	Forward(msg Message)
	// ForwardBatch emits a batch of messages, in order, to every downstream
	// child of this node. Sink children produce the whole batch with a
	// single broker append (one lock acquisition, one consumer wakeup);
	// BatchProcessor children receive the slice in one call. The slice is
	// not retained — callers may reuse it after ForwardBatch returns —
	// but the Key/Value bytes may be retained by the broker (see the codec
	// buffer-ownership rule).
	ForwardBatch(msgs []Message)
	// Schedule registers a punctuation: fn fires every interval on the
	// runtime's clock until the runtime stops or cancel is called.
	Schedule(interval time.Duration, fn func(now time.Time)) (cancel func())
	// NodeName returns the topology name of this processor.
	NodeName() string
	// Now returns the runtime's current time.
	Now() time.Time
}

// ProcessorFunc adapts a function to the Processor interface for stateless
// operators.
type ProcessorFunc func(ctx ProcessorContext, msg Message) error

type funcProcessor struct {
	fn  ProcessorFunc
	ctx ProcessorContext
}

// NewProcessorFunc wraps fn as a Processor.
func NewProcessorFunc(fn ProcessorFunc) Processor { return &funcProcessor{fn: fn} }

func (p *funcProcessor) Init(ctx ProcessorContext) error { p.ctx = ctx; return nil }
func (p *funcProcessor) Process(msg Message) error       { return p.fn(p.ctx, msg) }
func (p *funcProcessor) Close() error                    { return nil }

// Errors returned by the topology builder.
var (
	ErrDuplicateNode = errors.New("streams: duplicate node name")
	ErrUnknownParent = errors.New("streams: unknown parent node")
	ErrEmptyTopology = errors.New("streams: topology has no sources")
	ErrNoParents     = errors.New("streams: node needs at least one parent")
)

type nodeKind int

const (
	kindSource nodeKind = iota + 1
	kindProcessor
	kindSink
)

type node struct {
	name     string
	kind     nodeKind
	topic    string // sources and sinks
	supplier func() Processor
	parents  []string
	children []string
}

// Topology is an immutable processing DAG built with NewTopology. Parents
// must be declared before children, which structurally rules out cycles.
type Topology struct {
	nodes map[string]*node
	order []string // declaration order (a topological order)
}

// TopologyBuilder accumulates nodes; Build validates and freezes them.
type TopologyBuilder struct {
	t   *Topology
	err error
}

// NewTopology returns an empty builder.
func NewTopology() *TopologyBuilder {
	return &TopologyBuilder{t: &Topology{nodes: make(map[string]*node)}}
}

func (b *TopologyBuilder) add(n *node) *TopologyBuilder {
	if b.err != nil {
		return b
	}
	if _, ok := b.t.nodes[n.name]; ok {
		b.err = fmt.Errorf("%w: %q", ErrDuplicateNode, n.name)
		return b
	}
	if n.kind != kindSource && len(n.parents) == 0 {
		b.err = fmt.Errorf("%w: %q", ErrNoParents, n.name)
		return b
	}
	for _, p := range n.parents {
		parent, ok := b.t.nodes[p]
		if !ok {
			b.err = fmt.Errorf("%w: %q (child %q)", ErrUnknownParent, p, n.name)
			return b
		}
		parent.children = append(parent.children, n.name)
	}
	b.t.nodes[n.name] = n
	b.t.order = append(b.t.order, n.name)
	return b
}

// Source adds a node that consumes topic and forwards each record downstream.
func (b *TopologyBuilder) Source(name, topic string) *TopologyBuilder {
	return b.add(&node{name: name, kind: kindSource, topic: topic})
}

// Processor adds an operator node fed by the named parents. supplier is
// invoked once per Runtime to create the instance.
func (b *TopologyBuilder) Processor(name string, supplier func() Processor, parents ...string) *TopologyBuilder {
	return b.add(&node{name: name, kind: kindProcessor, supplier: supplier, parents: parents})
}

// Sink adds a node that produces every received message into topic.
func (b *TopologyBuilder) Sink(name, topic string, parents ...string) *TopologyBuilder {
	return b.add(&node{name: name, kind: kindSink, topic: topic, parents: parents})
}

// Build validates the topology.
func (b *TopologyBuilder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	hasSource := false
	for _, n := range b.t.nodes {
		if n.kind == kindSource {
			hasSource = true
			break
		}
	}
	if !hasSource {
		return nil, ErrEmptyTopology
	}
	return b.t, nil
}

// Sources returns the names of all source nodes in declaration order.
func (t *Topology) Sources() []string {
	var out []string
	for _, name := range t.order {
		if t.nodes[name].kind == kindSource {
			out = append(out, name)
		}
	}
	return out
}
