package streams

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file is the "High-Level Streams DSL" layer (§IV-A): the paper's
// prototype used Kafka Streams' DSL to build the pub/sub plumbing and the
// root's computation engine, and the low-level Processor API (topology.go /
// runtime.go here) for the sampling module. The DSL compiles fluent
// Stream/Filter/Map/GroupByKey/WindowedAggregate chains down to the same
// Topology the low-level API builds.

// StreamBuilder accumulates DSL operations and compiles them to a Topology.
type StreamBuilder struct {
	tb  *TopologyBuilder
	seq int
}

// NewStreamBuilder returns an empty DSL builder.
func NewStreamBuilder() *StreamBuilder {
	return &StreamBuilder{tb: NewTopology()}
}

func (b *StreamBuilder) next(kind string) string {
	b.seq++
	return fmt.Sprintf("%s-%d", kind, b.seq)
}

// Build compiles the accumulated operations into an executable Topology.
func (b *StreamBuilder) Build() (*Topology, error) { return b.tb.Build() }

// KStream is a fluent handle on a record stream flowing through the DSL.
type KStream struct {
	b    *StreamBuilder
	node string
}

// Stream starts a KStream from a topic.
func (b *StreamBuilder) Stream(topic string) *KStream {
	name := b.next("source")
	b.tb.Source(name, topic)
	return &KStream{b: b, node: name}
}

// Filter keeps only messages satisfying pred.
func (s *KStream) Filter(pred func(Message) bool) *KStream {
	name := s.b.next("filter")
	s.b.tb.Processor(name, func() Processor {
		return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
			if pred(msg) {
				ctx.Forward(msg)
			}
			return nil
		})
	}, s.node)
	return &KStream{b: s.b, node: name}
}

// Map transforms each message one-to-one.
func (s *KStream) Map(fn func(Message) Message) *KStream {
	name := s.b.next("map")
	s.b.tb.Processor(name, func() Processor {
		return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
			ctx.Forward(fn(msg))
			return nil
		})
	}, s.node)
	return &KStream{b: s.b, node: name}
}

// FlatMap transforms each message into zero or more messages.
func (s *KStream) FlatMap(fn func(Message) []Message) *KStream {
	name := s.b.next("flatmap")
	s.b.tb.Processor(name, func() Processor {
		return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
			for _, out := range fn(msg) {
				ctx.Forward(out)
			}
			return nil
		})
	}, s.node)
	return &KStream{b: s.b, node: name}
}

// Peek observes each message without changing the stream.
func (s *KStream) Peek(fn func(Message)) *KStream {
	name := s.b.next("peek")
	s.b.tb.Processor(name, func() Processor {
		return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
			fn(msg)
			ctx.Forward(msg)
			return nil
		})
	}, s.node)
	return &KStream{b: s.b, node: name}
}

// Merge combines this stream with others into one.
func (s *KStream) Merge(others ...*KStream) *KStream {
	name := s.b.next("merge")
	parents := make([]string, 0, len(others)+1)
	parents = append(parents, s.node)
	for _, o := range others {
		parents = append(parents, o.node)
	}
	s.b.tb.Processor(name, func() Processor {
		return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
			ctx.Forward(msg)
			return nil
		})
	}, parents...)
	return &KStream{b: s.b, node: name}
}

// Process attaches a custom low-level Processor — the DSL escape hatch the
// paper's sampling module used.
func (s *KStream) Process(supplier func() Processor) *KStream {
	name := s.b.next("process")
	s.b.tb.Processor(name, supplier, s.node)
	return &KStream{b: s.b, node: name}
}

// To terminates the stream into a topic.
func (s *KStream) To(topic string) {
	s.b.tb.Sink(s.b.next("sink"), topic, s.node)
}

// GroupByKey prepares the stream for keyed windowed aggregation.
func (s *KStream) GroupByKey() *KGroupedStream {
	return &KGroupedStream{b: s.b, node: s.node}
}

// KGroupedStream is a keyed stream awaiting an aggregation.
type KGroupedStream struct {
	b    *StreamBuilder
	node string
}

// Aggregation state lives in a KeyValueStore, the Kafka Streams state-store
// analogue. The windowed aggregator owns one store instance per runtime.
type KeyValueStore interface {
	Get(key string) (any, bool)
	Put(key string, value any)
	Delete(key string)
	// Keys returns all keys in sorted order.
	Keys() []string
	// Clear removes everything.
	Clear()
}

// memStore is the in-memory KeyValueStore.
type memStore struct {
	mu sync.Mutex
	m  map[string]any
}

// NewMemStore returns an empty in-memory state store.
func NewMemStore() KeyValueStore {
	return &memStore{m: make(map[string]any)}
}

func (s *memStore) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *memStore) Put(key string, value any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = value
}

func (s *memStore) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
}

func (s *memStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *memStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string]any)
}

// WindowedAggregate folds messages per key into state and, every window,
// emits one message per key via emit and clears the window's state. init
// creates a key's zero accumulator; agg folds one message into it.
func (g *KGroupedStream) WindowedAggregate(
	window time.Duration,
	init func() any,
	agg func(key string, msg Message, acc any) any,
	emit func(key string, acc any, at time.Time) Message,
) *KStream {
	name := g.b.next("winagg")
	g.b.tb.Processor(name, func() Processor {
		return &windowedAggregator{window: window, init: init, agg: agg, emit: emit, store: NewMemStore()}
	}, g.node)
	return &KStream{b: g.b, node: name}
}

// windowedAggregator is the stateful processor behind WindowedAggregate.
type windowedAggregator struct {
	window time.Duration
	init   func() any
	agg    func(string, Message, any) any
	emit   func(string, any, time.Time) Message
	store  KeyValueStore
	ctx    ProcessorContext
	cancel func()
}

var _ Processor = (*windowedAggregator)(nil)

func (w *windowedAggregator) Init(ctx ProcessorContext) error {
	w.ctx = ctx
	w.cancel = ctx.Schedule(w.window, w.flush)
	return nil
}

func (w *windowedAggregator) Process(msg Message) error {
	key := string(msg.Key)
	acc, ok := w.store.Get(key)
	if !ok {
		acc = w.init()
	}
	w.store.Put(key, w.agg(key, msg, acc))
	return nil
}

func (w *windowedAggregator) flush(now time.Time) {
	for _, key := range w.store.Keys() {
		acc, _ := w.store.Get(key)
		w.ctx.Forward(w.emit(key, acc, now))
	}
	w.store.Clear()
}

func (w *windowedAggregator) Close() error {
	if w.cancel != nil {
		w.cancel()
	}
	// Emit the final partial window so shutdown loses nothing.
	if w.ctx != nil {
		w.flush(w.ctx.Now())
	}
	return nil
}
