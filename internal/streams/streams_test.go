package streams

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/transport"
)

func buildBroker(t *testing.T, topics ...string) *mq.Broker {
	t.Helper()
	b := mq.NewBroker()
	for _, name := range topics {
		if _, err := b.CreateTopic(name, 2); err != nil {
			t.Fatalf("CreateTopic(%q): %v", name, err)
		}
	}
	return b
}

func drain(t *testing.T, b *mq.Broker, topic string, want int, timeout time.Duration) []mq.Record {
	t.Helper()
	c, err := mq.NewConsumer(b, topic)
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	defer c.Close()
	deadline := time.Now().Add(timeout)
	var out []mq.Record
	for len(out) < want && time.Now().Before(deadline) {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		recs, err := c.Poll(ctx, want)
		cancel()
		if err != nil {
			break
		}
		out = append(out, recs...)
	}
	return out
}

func TestBuilderValidation(t *testing.T) {
	_, err := NewTopology().Build()
	if !errors.Is(err, ErrEmptyTopology) {
		t.Fatalf("empty: err = %v, want ErrEmptyTopology", err)
	}

	_, err = NewTopology().Source("s", "t").Source("s", "t").Build()
	if !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate: err = %v, want ErrDuplicateNode", err)
	}

	_, err = NewTopology().Source("s", "t").Sink("k", "out", "ghost").Build()
	if !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("unknown parent: err = %v, want ErrUnknownParent", err)
	}

	_, err = NewTopology().Source("s", "t").Sink("k", "out").Build()
	if !errors.Is(err, ErrNoParents) {
		t.Fatalf("orphan sink: err = %v, want ErrNoParents", err)
	}
}

func TestSourceToSinkPassthrough(t *testing.T) {
	b := buildBroker(t, "in", "out")
	topo, err := NewTopology().
		Source("src", "in").
		Sink("snk", "out", "src").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rt, err := NewRuntime(transport.WrapBroker(b), topo, "app")
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer rt.Stop()

	p := mq.NewProducer(b)
	for i := 0; i < 10; i++ {
		p.Send("in", []byte{byte(i)}, []byte{byte(i)})
	}
	recs := drain(t, b, "out", 10, 2*time.Second)
	if len(recs) != 10 {
		t.Fatalf("sink received %d records, want 10", len(recs))
	}
}

func TestProcessorTransformsAndForwards(t *testing.T) {
	b := buildBroker(t, "in", "out")
	double := func() Processor {
		return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
			ctx.Forward(Message{Key: msg.Key, Value: append(msg.Value, msg.Value...), Ts: msg.Ts})
			return nil
		})
	}
	topo, _ := NewTopology().
		Source("src", "in").
		Processor("double", double, "src").
		Sink("snk", "out", "double").
		Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app")
	rt.Start()
	defer rt.Stop()

	mq.NewProducer(b).Send("in", nil, []byte("ab"))
	recs := drain(t, b, "out", 1, 2*time.Second)
	if len(recs) != 1 || !bytes.Equal(recs[0].Value, []byte("abab")) {
		t.Fatalf("got %q, want \"abab\"", recs)
	}
}

func TestFanOutToMultipleChildren(t *testing.T) {
	b := buildBroker(t, "in", "out1", "out2")
	topo, _ := NewTopology().
		Source("src", "in").
		Sink("s1", "out1", "src").
		Sink("s2", "out2", "src").
		Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app")
	rt.Start()
	defer rt.Stop()

	mq.NewProducer(b).Send("in", nil, []byte("x"))
	if got := drain(t, b, "out1", 1, 2*time.Second); len(got) != 1 {
		t.Fatalf("out1 got %d records, want 1", len(got))
	}
	if got := drain(t, b, "out2", 1, 2*time.Second); len(got) != 1 {
		t.Fatalf("out2 got %d records, want 1", len(got))
	}
}

func TestChainedProcessors(t *testing.T) {
	b := buildBroker(t, "in", "out")
	appendByte := func(tag byte) func() Processor {
		return func() Processor {
			return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
				ctx.Forward(Message{Value: append(msg.Value, tag)})
				return nil
			})
		}
	}
	topo, _ := NewTopology().
		Source("src", "in").
		Processor("p1", appendByte('1'), "src").
		Processor("p2", appendByte('2'), "p1").
		Sink("snk", "out", "p2").
		Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app")
	rt.Start()
	defer rt.Stop()

	mq.NewProducer(b).Send("in", nil, []byte("x"))
	recs := drain(t, b, "out", 1, 2*time.Second)
	if len(recs) != 1 || string(recs[0].Value) != "x12" {
		t.Fatalf("got %q, want \"x12\"", recs)
	}
}

func TestProcessorErrorStopsRuntime(t *testing.T) {
	b := buildBroker(t, "in")
	boom := errors.New("boom")
	failing := func() Processor {
		return NewProcessorFunc(func(ctx ProcessorContext, msg Message) error {
			return boom
		})
	}
	topo, _ := NewTopology().
		Source("src", "in").
		Processor("bad", failing, "src").
		Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app")
	rt.Start()

	mq.NewProducer(b).Send("in", nil, []byte("x"))
	select {
	case <-rt.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("runtime did not stop on processor error")
	}
	if err := rt.Stop(); !errors.Is(err, boom) {
		t.Fatalf("Stop err = %v, want boom", err)
	}
}

type punctuatingProcessor struct {
	mu     sync.Mutex
	fires  int
	cancel func()
}

func (p *punctuatingProcessor) Init(ctx ProcessorContext) error {
	p.cancel = ctx.Schedule(10*time.Millisecond, func(now time.Time) {
		p.mu.Lock()
		p.fires++
		p.mu.Unlock()
	})
	return nil
}
func (p *punctuatingProcessor) Process(Message) error { return nil }
func (p *punctuatingProcessor) Close() error          { return nil }

func (p *punctuatingProcessor) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fires
}

func TestPunctuationFiresPeriodically(t *testing.T) {
	b := buildBroker(t, "in")
	proc := &punctuatingProcessor{}
	topo, _ := NewTopology().
		Source("src", "in").
		Processor("tick", func() Processor { return proc }, "src").
		Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app", WithPollWait(time.Millisecond))
	rt.Start()
	defer rt.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for proc.count() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if proc.count() < 3 {
		t.Fatalf("punctuation fired %d times in 2s, want >= 3", proc.count())
	}
}

func TestPunctuationCancel(t *testing.T) {
	b := buildBroker(t, "in")
	proc := &punctuatingProcessor{}
	topo, _ := NewTopology().
		Source("src", "in").
		Processor("tick", func() Processor { return proc }, "src").
		Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app", WithPollWait(time.Millisecond))
	rt.Start()
	defer rt.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for proc.count() < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	proc.cancel()
	n := proc.count()
	time.Sleep(50 * time.Millisecond)
	if proc.count() > n+1 { // one in-flight fire is tolerated
		t.Fatalf("punctuation kept firing after cancel: %d -> %d", n, proc.count())
	}
}

func TestStopIsIdempotentAndStopsPump(t *testing.T) {
	b := buildBroker(t, "in")
	topo, _ := NewTopology().Source("src", "in").Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app")
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := rt.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := rt.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	select {
	case <-rt.Done():
	default:
		t.Fatal("pump still running after Stop")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	b := buildBroker(t, "in")
	topo, _ := NewTopology().Source("src", "in").Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app")
	rt.Start()
	defer rt.Stop()
	if err := rt.Start(); err == nil {
		t.Fatal("second Start succeeded, want error")
	}
}

func TestTwoRuntimesDistinctAppIDsBothSeeStream(t *testing.T) {
	b := buildBroker(t, "in", "outA", "outB")
	mkTopo := func(out string) *Topology {
		topo, _ := NewTopology().Source("src", "in").Sink("snk", out, "src").Build()
		return topo
	}
	rtA, _ := NewRuntime(transport.WrapBroker(b), mkTopo("outA"), "appA")
	rtB, _ := NewRuntime(transport.WrapBroker(b), mkTopo("outB"), "appB")
	rtA.Start()
	rtB.Start()
	defer rtA.Stop()
	defer rtB.Stop()

	p := mq.NewProducer(b)
	for i := 0; i < 6; i++ {
		p.Send("in", []byte{byte(i)}, []byte{byte(i)})
	}
	if got := drain(t, b, "outA", 6, 2*time.Second); len(got) != 6 {
		t.Fatalf("appA saw %d records, want 6", len(got))
	}
	if got := drain(t, b, "outB", 6, 2*time.Second); len(got) != 6 {
		t.Fatalf("appB saw %d records, want 6", len(got))
	}
}

func TestSharedAppIDSplitsPartitions(t *testing.T) {
	b := buildBroker(t, "in", "out")
	mkTopo := func() *Topology {
		topo, _ := NewTopology().Source("src", "in").Sink("snk", "out", "src").Build()
		return topo
	}
	rt1, _ := NewRuntime(transport.WrapBroker(b), mkTopo(), "shared")
	rt2, _ := NewRuntime(transport.WrapBroker(b), mkTopo(), "shared")
	rt1.Start()
	rt2.Start()
	defer rt1.Stop()
	defer rt2.Stop()

	p := mq.NewProducer(b)
	const n = 40
	for i := 0; i < n; i++ {
		p.Send("in", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	recs := drain(t, b, "out", n, 2*time.Second)
	if len(recs) != n {
		t.Fatalf("horizontally-scaled app emitted %d records, want exactly %d (no duplicates)", len(recs), n)
	}
}

func TestSharedAppIDMemberStopRebalances(t *testing.T) {
	// Stopping one member of a horizontally-scaled application mid-run
	// must hand its partitions to the survivor, which drains the rest of
	// the stream — the live runner's shard groups rely on this to tolerate
	// member shutdown without stranding records.
	b := buildBroker(t, "in", "out")
	mkTopo := func() *Topology {
		topo, _ := NewTopology().Source("src", "in").Sink("snk", "out", "src").Build()
		return topo
	}
	rt1, _ := NewRuntime(transport.WrapBroker(b), mkTopo(), "shared", WithPollWait(time.Millisecond))
	rt2, _ := NewRuntime(transport.WrapBroker(b), mkTopo(), "shared", WithPollWait(time.Millisecond))
	rt1.Start()
	rt2.Start()
	defer rt2.Stop()

	out, err := mq.NewConsumer(b, "out")
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	defer out.Close()
	collect := func(want int) int {
		deadline := time.Now().Add(2 * time.Second)
		got := 0
		for got < want && time.Now().Before(deadline) {
			ctx, cancel := context.WithDeadline(context.Background(), deadline)
			recs, err := out.Poll(ctx, want-got)
			cancel()
			if err != nil {
				break
			}
			got += len(recs)
		}
		return got
	}

	p := mq.NewProducer(b)
	const half = 20
	for i := 0; i < half; i++ {
		p.Send("in", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	if got := collect(half); got != half {
		t.Fatalf("two members emitted %d records, want %d", got, half)
	}

	if err := rt1.Stop(); err != nil {
		t.Fatalf("member Stop: %v", err)
	}
	for i := half; i < 2*half; i++ {
		p.Send("in", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	if got := collect(half); got != half {
		t.Fatalf("survivor emitted %d records after rebalance, want %d (no loss)", got, half)
	}
	if lag := rt2.Lag(); lag != 0 {
		t.Fatalf("survivor lag = %d after drain, want 0", lag)
	}
	// No duplicates trickle in after the fact.
	time.Sleep(50 * time.Millisecond)
	if recs, _ := out.TryPoll(8); len(recs) != 0 {
		t.Fatalf("%d duplicate records appeared after the full drain", len(recs))
	}
}

type bufferingProcessor struct {
	mu  sync.Mutex
	buf []Message
	ctx ProcessorContext
}

func (p *bufferingProcessor) Init(ctx ProcessorContext) error {
	p.ctx = ctx
	ctx.Schedule(time.Hour, func(time.Time) { // window far beyond the test
		p.mu.Lock()
		buf := p.buf
		p.buf = nil
		p.mu.Unlock()
		for _, m := range buf {
			p.ctx.Forward(m)
		}
	})
	return nil
}
func (p *bufferingProcessor) Process(msg Message) error {
	p.mu.Lock()
	p.buf = append(p.buf, msg)
	p.mu.Unlock()
	return nil
}
func (p *bufferingProcessor) Close() error { return nil }

func TestEndOfStreamFlushesFinalWindow(t *testing.T) {
	// Deleting the input topic is the end-of-stream signal: the pump must
	// fire pending punctuations once — flushing a windowed processor's
	// buffered final window to the sink — before exiting, instead of
	// dropping it.
	b := buildBroker(t, "in", "out")
	proc := &bufferingProcessor{}
	topo, _ := NewTopology().
		Source("src", "in").
		Processor("window", func() Processor { return proc }, "src").
		Sink("snk", "out", "window").
		Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "app", WithPollWait(time.Millisecond))
	rt.Start()
	defer rt.Stop()

	p := mq.NewProducer(b)
	for i := 0; i < 5; i++ {
		p.Send("in", nil, []byte{byte(i)})
	}
	// Wait until the processor has buffered everything, then end the stream.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		proc.mu.Lock()
		n := len(proc.buf)
		proc.mu.Unlock()
		if n == 5 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.DeleteTopic("in"); err != nil {
		t.Fatalf("DeleteTopic: %v", err)
	}
	select {
	case <-rt.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("pump did not exit after its topic closed")
	}
	if got := drain(t, b, "out", 5, 2*time.Second); len(got) != 5 {
		t.Fatalf("final window forwarded %d records, want 5", len(got))
	}
}

type initFailProcessor struct{ closed bool }

func (p *initFailProcessor) Init(ProcessorContext) error { return errors.New("init boom") }
func (p *initFailProcessor) Process(Message) error       { return nil }
func (p *initFailProcessor) Close() error                { p.closed = true; return nil }

func TestStopAfterFailedStartDoesNotPanic(t *testing.T) {
	// A Start that fails during processor Init must leave the runtime in
	// the never-started state: Stop cleans up the consumers (releasing
	// group membership) without touching the unlaunched pump.
	b := buildBroker(t, "in")
	ok := &punctuatingProcessor{}
	topo, _ := NewTopology().
		Source("src", "in").
		Processor("fine", func() Processor { return ok }, "src").
		Processor("bad", func() Processor { return &initFailProcessor{} }, "fine").
		Build()
	rt, _ := NewRuntime(transport.WrapBroker(b), topo, "shared")
	survivor, _ := NewRuntime(transport.WrapBroker(b), func() *Topology {
		topo, _ := NewTopology().Source("src", "in").Build()
		return topo
	}(), "shared")

	if err := rt.Start(); err == nil {
		t.Fatal("Start succeeded despite failing Init")
	}
	if err := rt.Stop(); err != nil {
		t.Fatalf("Stop after failed Start: %v", err)
	}
	survivor.Start()
	defer survivor.Stop()

	p := mq.NewProducer(b)
	for i := 0; i < 8; i++ {
		p.Send("in", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && survivor.Lag() > 0 {
		time.Sleep(time.Millisecond)
	}
	if lag := survivor.Lag(); lag != 0 {
		t.Fatalf("survivor lag = %d: the failed member still owns partitions", lag)
	}
}

func TestStopBeforeStartReleasesGroupMembership(t *testing.T) {
	// A runtime that was built but never started still joined its consumer
	// group; Stop must make it leave so its partitions are not stranded —
	// the live runner's shard groups rely on this when a group build fails
	// partway.
	b := buildBroker(t, "in")
	mkTopo := func() *Topology {
		topo, _ := NewTopology().Source("src", "in").Build()
		return topo
	}
	never, _ := NewRuntime(transport.WrapBroker(b), mkTopo(), "shared")
	survivor, _ := NewRuntime(transport.WrapBroker(b), mkTopo(), "shared")
	if err := never.Stop(); err != nil {
		t.Fatalf("Stop before Start: %v", err)
	}
	if err := never.Start(); err == nil {
		t.Fatal("Start after Stop succeeded, want error")
	}
	survivor.Start()
	defer survivor.Stop()

	p := mq.NewProducer(b)
	for i := 0; i < 8; i++ {
		p.Send("in", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && survivor.Lag() > 0 {
		time.Sleep(time.Millisecond)
	}
	if lag := survivor.Lag(); lag != 0 {
		t.Fatalf("survivor lag = %d: the never-started member still owns partitions", lag)
	}
}

func BenchmarkPassthroughPipeline(b *testing.B) {
	br := mq.NewBroker()
	br.CreateTopic("in", 1, mq.WithRetention(4096))
	br.CreateTopic("out", 1, mq.WithRetention(4096))
	topo, _ := NewTopology().Source("src", "in").Sink("snk", "out", "src").Build()
	rt, _ := NewRuntime(transport.WrapBroker(br), topo, "bench")
	rt.Start()
	defer rt.Stop()
	sinkDrain, _ := mq.NewGroupConsumer(br, "out", "bench-drain")
	defer sinkDrain.Close()
	p := mq.NewProducer(br)
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Send("in", nil, val); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			for sinkDrain.Lag() > 0 {
				sinkDrain.TryPoll(256)
			}
		}
	}
}
