package vclock

import (
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC) // ICDCS'18 day one

func TestSimStartsAtGivenInstant(t *testing.T) {
	s := NewSim(epoch)
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestSimExecutesInTimestampOrder(t *testing.T) {
	s := NewSim(epoch)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run() executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimTieBreaksByScheduleOrder(t *testing.T) {
	s := NewSim(epoch)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", order)
		}
	}
}

func TestSimClockAdvancesToEventTime(t *testing.T) {
	s := NewSim(epoch)
	var at time.Time
	s.After(42*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if want := epoch.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw now=%v, want %v", at, want)
	}
}

func TestSimPastEventClampsToNow(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	s.At(epoch.Add(-time.Second), func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
	if !s.Now().Equal(epoch) {
		t.Fatalf("clock moved backwards to %v", s.Now())
	}
}

func TestSimCascadingEvents(t *testing.T) {
	s := NewSim(epoch)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 10 {
			s.After(time.Millisecond, recurse)
		}
	}
	s.After(time.Millisecond, recurse)
	s.Run()
	if depth != 10 {
		t.Fatalf("cascade depth = %d, want 10", depth)
	}
	if want := epoch.Add(10 * time.Millisecond); !s.Now().Equal(want) {
		t.Fatalf("now = %v, want %v", s.Now(), want)
	}
}

func TestSimRunUntilLeavesLaterEventsQueued(t *testing.T) {
	s := NewSim(epoch)
	var fired []string
	s.After(10*time.Millisecond, func() { fired = append(fired, "early") })
	s.After(100*time.Millisecond, func() { fired = append(fired, "late") })
	n := s.RunUntil(epoch.Add(50 * time.Millisecond))
	if n != 1 || len(fired) != 1 || fired[0] != "early" {
		t.Fatalf("RunUntil fired %v (n=%d), want only early", fired, n)
	}
	if want := epoch.Add(50 * time.Millisecond); !s.Now().Equal(want) {
		t.Fatalf("now = %v, want deadline %v", s.Now(), want)
	}
	if p := s.Pending(); p != 1 {
		t.Fatalf("Pending() = %d, want 1", p)
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("late event lost: fired=%v", fired)
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSimStopAfterFire(t *testing.T) {
	s := NewSim(epoch)
	tm := s.After(time.Millisecond, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop() = true after the event fired")
	}
}

func TestSimRunForAdvancesRelative(t *testing.T) {
	s := NewSim(epoch)
	s.RunFor(time.Second)
	s.RunFor(time.Second)
	if want := epoch.Add(2 * time.Second); !s.Now().Equal(want) {
		t.Fatalf("now = %v, want %v", s.Now(), want)
	}
}

func TestSimConcurrentScheduling(t *testing.T) {
	s := NewSim(epoch)
	var count atomic.Int64
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				s.After(time.Duration(i)*time.Microsecond, func() { count.Add(1) })
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if n := s.Run(); n != 800 {
		t.Fatalf("Run() = %d, want 800", n)
	}
	if count.Load() != 800 {
		t.Fatalf("count = %d, want 800", count.Load())
	}
}

func TestWallClockAfterFires(t *testing.T) {
	var w WallClock
	ch := make(chan struct{})
	w.After(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("wall-clock timer never fired")
	}
}

func TestWallClockNegativeDelayClamped(t *testing.T) {
	var w WallClock
	ch := make(chan struct{})
	w.At(time.Now().Add(-time.Hour), func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("past-deadline wall timer never fired")
	}
}
