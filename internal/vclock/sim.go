package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Sim is a deterministic discrete-event scheduler. Events are executed in
// (time, sequence) order; ties on time break by scheduling order, which makes
// every simulated experiment exactly reproducible.
//
// Sim is safe for concurrent scheduling, but Run/Step must be driven from a
// single goroutine. In ApproxIoT's simulated mode the entire tree executes
// inside the event loop, so callbacks themselves run single-threaded.
type Sim struct {
	mu    sync.Mutex
	now   time.Time
	seq   uint64
	queue eventQueue
}

var _ Scheduler = (*Sim)(nil)

// NewSim returns a simulator whose clock starts at start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current simulated instant.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// At schedules fn at instant t. Scheduling in the past clamps to Now.
func (s *Sim) At(t time.Time, fn func()) Timer {
	if fn == nil {
		panic("vclock: nil callback")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Before(s.now) {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return simTimer{ev: ev}
}

// After schedules fn at Now+d.
func (s *Sim) After(d time.Duration, fn func()) Timer {
	s.mu.Lock()
	base := s.now
	s.mu.Unlock()
	return s.At(base.Add(d), fn)
}

// Step executes the single earliest pending event, advancing the clock to its
// timestamp. It reports false when no events are pending.
func (s *Sim) Step() bool {
	for {
		s.mu.Lock()
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			return false
		}
		ev := heap.Pop(&s.queue).(*event)
		if ev.cancelled {
			s.mu.Unlock()
			continue
		}
		s.now = ev.at
		s.mu.Unlock()
		ev.fn()
		return true
	}
}

// Run executes events until the queue drains. It returns the number of
// events executed. Callbacks may schedule further events.
func (s *Sim) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline stay queued.
func (s *Sim) RunUntil(deadline time.Time) int {
	n := 0
	for {
		s.mu.Lock()
		if s.queue.Len() == 0 || s.queue[0].at.After(deadline) {
			if s.now.Before(deadline) {
				s.now = deadline
			}
			s.mu.Unlock()
			return n
		}
		s.mu.Unlock()
		if !s.Step() {
			return n
		}
		n++
	}
}

// RunFor executes events for a simulated duration d from the current instant.
func (s *Sim) RunFor(d time.Duration) int {
	return s.RunUntil(s.Now().Add(d))
}

// Pending reports the number of queued (non-cancelled) events.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// String describes the simulator state, mainly for test failure messages.
func (s *Sim) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("sim(now=%s pending=%d)", s.now.Format(time.RFC3339Nano), s.queue.Len())
}

type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type simTimer struct{ ev *event }

func (t simTimer) Stop() bool {
	if t.ev.cancelled {
		return false
	}
	// Cancellation is lazy: the event stays in the heap and is skipped when
	// popped. index == -1 means it already fired.
	if t.ev.index == -1 {
		return false
	}
	t.ev.cancelled = true
	return true
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
