// Package vclock provides the time abstraction used by every ApproxIoT
// component. Components never call time.Now directly; they hold a Clock.
//
// Two implementations are provided:
//
//   - WallClock: thin wrapper over the runtime clock, used in live mode.
//   - Sim: a deterministic discrete-event scheduler, used in simulated mode
//     for the latency/bandwidth/accuracy experiments. Time only advances when
//     the simulation runs an event, so experiments that emulate minutes of
//     WAN traffic finish in milliseconds and are exactly reproducible.
package vclock

import "time"

// Clock is the minimal time source shared by live and simulated modes.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
}

// Scheduler extends Clock with the ability to run a function at a future
// instant. The simulated clock executes callbacks in timestamp order; the
// wall clock delegates to time.AfterFunc.
type Scheduler interface {
	Clock
	// At schedules fn to run at instant t. If t is not after Now, fn runs
	// at Now (it is never dropped). Returns a handle that can cancel the
	// pending call.
	At(t time.Time, fn func()) Timer
	// After schedules fn to run d after Now.
	After(d time.Duration, fn func()) Timer
}

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the callback if it has not fired yet and reports
	// whether it was cancelled before firing.
	Stop() bool
}

// WallClock implements Scheduler on the real runtime clock.
// The zero value is ready to use.
type WallClock struct{}

var _ Scheduler = WallClock{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// At runs fn when the wall clock reaches t.
func (w WallClock) At(t time.Time, fn func()) Timer {
	return w.After(time.Until(t), fn)
}

// After runs fn once d has elapsed.
func (WallClock) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return wallTimer{time.AfterFunc(d, fn)}
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool { return w.t.Stop() }
