package mq

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// The batched produce/consume hot path must be semantically invisible: a
// SendBatch delivers exactly what the same records sent one at a time would
// deliver — same partitions for keyed records, same per-key order, same
// piggybacked watermarks — and PollInto returns the same records Poll would,
// just appended onto a caller-owned scratch slice.

// drainTopic reads every record currently in the topic via a standalone
// consumer, in poll order.
func drainTopic(t *testing.T, b *Broker, topic string, want int) []Record {
	t.Helper()
	c, err := NewConsumer(b, topic)
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	defer c.Close()
	var out []Record
	deadline := time.Now().Add(5 * time.Second)
	for len(out) < want && time.Now().Before(deadline) {
		recs, err := c.TryPoll(want)
		if err != nil {
			t.Fatalf("TryPoll: %v", err)
		}
		out = append(out, recs...)
	}
	if len(out) != want {
		t.Fatalf("drained %d records, want %d", len(out), want)
	}
	return out
}

// TestSendBatchMatchesPerRecordSends sends the same keyed, watermarked
// stream through SendBatch on one broker and per-record SendWatermarked on
// another, then checks the delivered streams are identical per key:
// same partition assignment, same order, same watermark on every record.
func TestSendBatchMatchesPerRecordSends(t *testing.T) {
	const parts, n = 4, 64
	mkRecs := func() []Record {
		recs := make([]Record, n)
		for i := range recs {
			key := fmt.Sprintf("src-%d", i%5)
			recs[i] = Record{
				Key:   []byte(key),
				Value: []byte(fmt.Sprintf("v-%03d", i)),
				Watermark: Watermark{
					From: key,
					At:   time.Unix(0, int64(i)*int64(time.Millisecond)),
				},
			}
		}
		return recs
	}

	batched := NewBroker()
	newTestTopic(t, batched, "t", parts)
	if err := NewProducer(batched).SendBatch("t", mkRecs()); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}

	single := NewBroker()
	newTestTopic(t, single, "t", parts)
	sp := NewProducer(single)
	for _, rec := range mkRecs() {
		if _, _, err := sp.SendWatermarked("t", rec.Key, rec.Value, rec.Watermark); err != nil {
			t.Fatalf("SendWatermarked: %v", err)
		}
	}

	perKey := func(recs []Record) map[string][]Record {
		m := make(map[string][]Record)
		for _, r := range recs {
			m[string(r.Key)] = append(m[string(r.Key)], r)
		}
		return m
	}
	got := perKey(drainTopic(t, batched, "t", n))
	want := perKey(drainTopic(t, single, "t", n))
	if len(got) != len(want) {
		t.Fatalf("batched delivered %d keys, per-record %d", len(got), len(want))
	}
	for key, ws := range want {
		gs := got[key]
		if len(gs) != len(ws) {
			t.Fatalf("key %s: batched %d records, per-record %d", key, len(gs), len(ws))
		}
		for i := range ws {
			if !bytes.Equal(gs[i].Value, ws[i].Value) {
				t.Fatalf("key %s record %d: value %q vs %q — per-key order broken", key, i, gs[i].Value, ws[i].Value)
			}
			if gs[i].Partition != ws[i].Partition {
				t.Fatalf("key %s record %d: partition %d vs %d — batched pick diverged from key hash", key, i, gs[i].Partition, ws[i].Partition)
			}
			if gs[i].Watermark != ws[i].Watermark {
				t.Fatalf("key %s record %d: watermark %+v vs %+v — piggyback lost in batch append", key, i, gs[i].Watermark, ws[i].Watermark)
			}
		}
	}
}

// TestSendBatchWatermarkFoldEquivalence checks the property event-time
// consumers depend on: folding the watermarks off a batched delivery (take
// the per-chain max, then the cross-chain min) yields the same low watermark
// as folding the per-record delivery. This is what makes batching invisible
// to the watermark ladder.
func TestSendBatchWatermarkFoldEquivalence(t *testing.T) {
	const parts = 2
	recs := []Record{
		{Key: []byte("a"), Value: []byte("1"), Watermark: Watermark{From: "a", At: time.Unix(10, 0)}},
		{Key: []byte("b"), Value: []byte("2"), Watermark: Watermark{From: "b", At: time.Unix(5, 0)}},
		{Key: []byte("a"), Value: []byte("3"), Watermark: Watermark{From: "a", At: time.Unix(20, 0)}},
		{Key: []byte("b"), Value: []byte("4"), Watermark: Watermark{From: "b", At: time.Unix(15, 0)}},
		{Key: []byte("a"), Value: []byte("5"), Watermark: Watermark{From: "a", At: time.Unix(30, 0)}},
	}
	fold := func(delivered []Record) time.Time {
		perChain := make(map[string]time.Time)
		for _, r := range delivered {
			if r.Watermark.At.After(perChain[r.Watermark.From]) {
				perChain[r.Watermark.From] = r.Watermark.At
			}
		}
		var min time.Time
		for _, at := range perChain {
			if min.IsZero() || at.Before(min) {
				min = at
			}
		}
		return min
	}

	batched := NewBroker()
	newTestTopic(t, batched, "t", parts)
	if err := NewProducer(batched).SendBatch("t", append([]Record(nil), recs...)); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	single := NewBroker()
	newTestTopic(t, single, "t", parts)
	sp := NewProducer(single)
	for _, rec := range recs {
		if _, _, err := sp.SendWatermarked("t", rec.Key, rec.Value, rec.Watermark); err != nil {
			t.Fatalf("SendWatermarked: %v", err)
		}
	}

	got := fold(drainTopic(t, batched, "t", len(recs)))
	want := fold(drainTopic(t, single, "t", len(recs)))
	if !got.Equal(want) {
		t.Fatalf("batched fold %v, per-record fold %v", got, want)
	}
	if !want.Equal(time.Unix(15, 0)) {
		t.Fatalf("fold = %v, want min-of-chain-maxes 15s", want)
	}
}

// TestSendBatchEmptyAndErrors pins the edges: an empty batch is a no-op, an
// unknown topic errors, and a closed broker surfaces ErrClosed without
// appending anything.
func TestSendBatchEmptyAndErrors(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	p := NewProducer(b)
	if err := p.SendBatch("t", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := p.SendBatch("t", []Record{}); err != nil {
		t.Fatalf("zero-length batch: %v", err)
	}
	if err := p.SendBatch("missing", []Record{{Value: []byte("x")}}); err == nil {
		t.Fatal("unknown topic accepted")
	}
	topic, _ := b.Topic("t")
	if hw := topic.HighWatermark(0); hw != 0 {
		t.Fatalf("no-op batches appended %d records", hw)
	}
	b.Close()
	if err := p.SendBatch("t", []Record{{Value: []byte("x")}}); err != ErrClosed {
		t.Fatalf("closed broker: err = %v, want ErrClosed", err)
	}
}

// TestSendBatchOversizedSpansPolls sends one batch far larger than the
// consumer's poll budget: every record must still arrive, in order, across
// successive polls, and a single batch append must wake a blocked consumer
// exactly like a single send would.
func TestSendBatchOversizedSpansPolls(t *testing.T) {
	const n, pollMax = 1000, 64
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	c, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer c.Close()

	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: []byte("k"), Value: []byte(fmt.Sprintf("%04d", i))}
	}
	done := make(chan error, 1)
	go func() {
		time.Sleep(10 * time.Millisecond) // let the consumer block first
		done <- NewProducer(b).SendBatch("t", recs)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var got []Record
	scratch := make([]Record, 0, pollMax)
	for len(got) < n {
		out, err := c.PollInto(ctx, scratch[:0], pollMax)
		if err != nil {
			t.Fatalf("PollInto after %d records: %v", len(got), err)
		}
		if len(out) > pollMax {
			t.Fatalf("poll returned %d records over budget %d", len(out), pollMax)
		}
		got = append(got, out...)
		scratch = out
	}
	if err := <-done; err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	for i, r := range got {
		if want := fmt.Sprintf("%04d", i); string(r.Value) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Value, want)
		}
		if r.Offset != int64(i) {
			t.Fatalf("record %d at offset %d", i, r.Offset)
		}
	}
}

// TestPollIntoReusesScratch pins the allocation contract of the batched poll
// path: once the scratch slice has warmed up to the batch size, a
// produce/TryPollInto cycle performs no per-poll slice allocation (the
// records' Key/Value bytes alias the broker's log and are not copied).
func TestPollIntoReusesScratch(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	p := NewProducer(b)
	c, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer c.Close()

	const batch = 32
	recs := make([]Record, batch)
	value := []byte("payload")
	for i := range recs {
		recs[i] = Record{Key: []byte("k"), Value: value}
	}
	scratch := make([]Record, 0, batch)
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.SendBatch("t", recs); err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
		out, err := c.TryPollInto(scratch[:0], batch)
		if err != nil {
			t.Fatalf("TryPollInto: %v", err)
		}
		if len(out) != batch {
			t.Fatalf("polled %d records, want %d", len(out), batch)
		}
		scratch = out
	})
	// The broker's own log growth amortizes to < 1 alloc/op; the poll side
	// itself must contribute zero.
	if allocs > 2 {
		t.Fatalf("produce+poll cycle allocates %.1f objects/op, want ~0 on the poll path", allocs)
	}
}

// TestTryPollIntoEmptyReturnsDst checks the no-data contract: the scratch
// slice comes back unextended (same length), so callers can distinguish
// "nothing ready" without a nil check.
func TestTryPollIntoEmptyReturnsDst(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 2)
	c, err := NewConsumer(b, "t")
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	defer c.Close()
	scratch := make([]Record, 0, 8)
	out, err := c.TryPollInto(scratch, 8)
	if err != nil {
		t.Fatalf("TryPollInto: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty topic returned %d records", len(out))
	}
	if cap(out) != cap(scratch) {
		t.Fatalf("scratch slice replaced: cap %d vs %d", cap(out), cap(scratch))
	}
}
