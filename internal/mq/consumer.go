package mq

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// group coordinates the members of one consumer group on one topic: it
// tracks committed offsets per partition and deals partitions out to members
// round-robin, rebalancing whenever membership changes. Membership is
// guarded by mu; each committed offset has its own lock so members fetching
// disjoint partitions never contend.
type group struct {
	mu      sync.Mutex
	nextID  int
	members []string
	// epoch is the fencing generation: bumped on every join/leave, it lets
	// claim detect that an assignment snapshot predates a rebalance. watch
	// is closed and replaced on every membership change so consumers can
	// observe rebalances without polling.
	epoch int64
	watch chan struct{}

	committed []groupOffset
}

// groupOffset is one partition's committed position, individually locked so
// claim can make read-fetch-commit atomic per partition without serializing
// the whole group.
type groupOffset struct {
	mu  sync.Mutex
	off int64
}

func newGroup(partitions int) *group {
	return &group{
		committed: make([]groupOffset, partitions),
		watch:     make(chan struct{}),
	}
}

func (g *group) join() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := fmt.Sprintf("member-%d", g.nextID)
	g.nextID++
	g.members = append(g.members, id)
	sort.Strings(g.members)
	g.bumpLocked()
	return id
}

func (g *group) leave(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, m := range g.members {
		if m == id {
			g.members = append(g.members[:i], g.members[i+1:]...)
			g.bumpLocked()
			return
		}
	}
}

// bumpLocked advances the fencing epoch and wakes rebalance watchers.
// Callers hold g.mu.
func (g *group) bumpLocked() {
	g.epoch++
	close(g.watch)
	g.watch = make(chan struct{})
}

// rebalanceCh returns a channel closed at the next membership change.
func (g *group) rebalanceCh() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.watch
}

func (g *group) currentEpoch() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// owns reports whether member id owns partition p under the current
// membership.
func (g *group) owns(id string, p int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, m := range g.members {
		if m == id {
			return p%len(g.members) == i
		}
	}
	return false
}

// assignment returns the partitions currently owned by member id:
// partition p belongs to the member at index p mod len(members).
func (g *group) assignment(id string, partitions int) []int {
	owned, _ := g.assignmentEpoch(id, partitions)
	return owned
}

// assignmentEpoch is assignment plus the fencing epoch the snapshot was
// computed at, so a claim can detect that a rebalance has invalidated it.
func (g *group) assignmentEpoch(id string, partitions int) ([]int, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	idx := -1
	for i, m := range g.members {
		if m == id {
			idx = i
			break
		}
	}
	if idx < 0 || len(g.members) == 0 {
		return nil, g.epoch
	}
	var owned []int
	for p := 0; p < partitions; p++ {
		if p%len(g.members) == idx {
			owned = append(owned, p)
		}
	}
	return owned, g.epoch
}

func (g *group) committedOffset(p int) int64 {
	po := &g.committed[p]
	po.mu.Lock()
	defer po.mu.Unlock()
	return po.off
}

// commit advances the committed offset for partition p, never regressing.
func (g *group) commit(p int, offset int64) {
	po := &g.committed[p]
	po.mu.Lock()
	defer po.mu.Unlock()
	if offset > po.off {
		po.off = offset
	}
}

// claim atomically reads partition p's committed offset, fetches records
// through fetch (which appends onto dst and returns the extended slice), and
// commits past them — all under the partition's offset lock, so members on
// disjoint partitions proceed concurrently while fetch-and-commit on one
// partition is serialized.
//
// epoch is the fencing generation the claimant's assignment snapshot was
// computed at. When the group has rebalanced since (epoch moved on), the
// claimant's ownership of p is re-verified under the partition lock and a
// stale owner is fenced off with an empty result — without this check a
// member that snapshotted its assignment just before a membership change
// could fetch (and commit past) a batch that now belongs to another member.
// The per-partition offset lock already guaranteed at-most-once delivery;
// the fence closes the remaining wrong-owner window.
func (g *group) claim(id string, epoch int64, p int, dst []Record, fetch func(dst []Record, from int64) ([]Record, error)) ([]Record, error) {
	po := &g.committed[p]
	po.mu.Lock()
	defer po.mu.Unlock()
	if g.currentEpoch() != epoch && !g.owns(id, p) {
		return dst, nil
	}
	n0 := len(dst)
	dst, err := fetch(dst, po.off)
	if err != nil || len(dst) == n0 {
		return dst, err
	}
	if next := dst[len(dst)-1].Offset + 1; next > po.off {
		po.off = next
	}
	return dst, nil
}

// Consumer reads records from one topic, either as a member of a consumer
// group (partitions split among members, offsets committed group-wide) or
// standalone (all partitions, private positions).
type Consumer struct {
	topic *Topic
	grp   *group
	id    string

	mu        sync.Mutex
	positions map[int]int64 // standalone mode read positions
	rrStart   int           // fairness rotation across partitions
	closed    bool
}

// NewConsumer returns a standalone consumer over every partition of topic,
// starting at the current low watermarks.
func NewConsumer(b *Broker, topic string) (*Consumer, error) {
	t, err := b.Topic(topic)
	if err != nil {
		return nil, err
	}
	c := &Consumer{topic: t, positions: make(map[int]int64, t.Partitions())}
	for p := 0; p < t.Partitions(); p++ {
		c.positions[p] = t.LowWatermark(p)
	}
	return c, nil
}

// NewGroupConsumer returns a consumer that joins the named group on topic.
// Partitions are rebalanced across the group's live members.
func NewGroupConsumer(b *Broker, topic, groupName string) (*Consumer, error) {
	t, err := b.Topic(topic)
	if err != nil {
		return nil, err
	}
	g := t.group(groupName)
	return &Consumer{topic: t, grp: g, id: g.join()}, nil
}

// Assignment returns the partitions this consumer currently owns.
func (c *Consumer) Assignment() []int {
	if c.grp == nil {
		parts := make([]int, c.topic.Partitions())
		for i := range parts {
			parts[i] = i
		}
		return parts
	}
	return c.grp.assignment(c.id, c.topic.Partitions())
}

// Poll returns up to max records, blocking until at least one record is
// available, ctx is cancelled, or the topic closes. Group consumers read
// from and advance the group's committed offsets (auto-commit);
// standalone consumers advance private positions.
func (c *Consumer) Poll(ctx context.Context, max int) ([]Record, error) {
	return c.PollInto(ctx, nil, max)
}

// PollInto is Poll with a caller-owned scratch slice: records are appended
// onto dst (pass dst[:0] to recycle it across polls) and the extended slice
// is returned, so a steady-state poll loop allocates nothing per poll. The
// records — including their Key/Value bytes, which alias the broker's
// retained log — remain valid after the call; only the slice header is
// recycled by the caller.
func (c *Consumer) PollInto(ctx context.Context, dst []Record, max int) ([]Record, error) {
	if max <= 0 {
		max = 1
	}
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return dst, ErrClosed
		}
		c.mu.Unlock()

		wait := c.topic.waitCh() // arm before reading to avoid lost wakeups
		out, err := c.pollOnce(dst, max)
		if err != nil {
			return dst, err
		}
		if len(out) > len(dst) {
			return out, nil
		}
		if c.topic.isClosed() {
			return dst, ErrClosed
		}
		select {
		case <-ctx.Done():
			return dst, ctx.Err()
		case <-wait:
		}
	}
}

// TryPoll is a non-blocking Poll; it returns (nil, nil) when no records are
// ready.
func (c *Consumer) TryPoll(max int) ([]Record, error) {
	return c.TryPollInto(nil, max)
}

// TryPollInto is a non-blocking PollInto; it returns dst unextended when no
// records are ready.
func (c *Consumer) TryPollInto(dst []Record, max int) ([]Record, error) {
	if max <= 0 {
		max = 1
	}
	return c.pollOnce(dst, max)
}

// WaitChan returns a channel closed on the topic's next append (or already
// closed if the topic is shut down). Arm it *before* a TryPoll, then block
// on it only if the poll came back empty — the arm-before-read order makes
// a wakeup between the poll and the wait impossible to lose. After a wakeup
// with no records, check TopicClosed: a shut-down topic wakes immediately
// and forever.
func (c *Consumer) WaitChan() <-chan struct{} {
	return c.topic.waitCh()
}

// TopicClosed reports whether the consumer's topic has been shut down.
// Retained records can still be fetched, but no new records will arrive.
func (c *Consumer) TopicClosed() bool {
	return c.topic.isClosed()
}

// pollOnce appends up to max ready records onto dst and returns the extended
// slice (dst unextended when nothing is ready). The append-into shape keeps
// the hot poll path allocation-free once dst's capacity has warmed up.
func (c *Consumer) pollOnce(dst []Record, max int) ([]Record, error) {
	var owned []int
	var epoch int64
	if c.grp != nil {
		owned, epoch = c.grp.assignmentEpoch(c.id, c.topic.Partitions())
	} else {
		owned = c.Assignment()
	}
	if len(owned) == 0 {
		return dst, nil
	}
	c.mu.Lock()
	start := c.rrStart % len(owned)
	c.rrStart++
	c.mu.Unlock()

	out := dst
	base := len(dst)
	for i := 0; i < len(owned) && len(out)-base < max; i++ {
		p := owned[(start+i)%len(owned)]
		budget := max - (len(out) - base)
		if c.grp != nil {
			// Group mode: fetch-and-commit atomically, fenced by the
			// epoch the assignment was snapshotted at, so concurrent
			// members — including stale owners mid-rebalance — never
			// deliver the same record twice nor fetch a partition that
			// has moved to another member.
			got, err := c.grp.claim(c.id, epoch, p, out, func(dst []Record, from int64) ([]Record, error) {
				got, err := c.topic.FetchInto(dst, p, from, budget)
				if err == ErrOutOfRange {
					// The log was compacted past the committed offset;
					// skip forward to the oldest retained record.
					return c.topic.FetchInto(dst, p, c.topic.LowWatermark(p), budget)
				}
				return got, err
			})
			if err != nil {
				return dst, err
			}
			out = got
			continue
		}
		from := c.position(p)
		got, err := c.topic.FetchInto(out, p, from, budget)
		if err == ErrOutOfRange {
			// The log was compacted past our position; skip forward.
			c.setPosition(p, c.topic.LowWatermark(p))
			continue
		}
		if err != nil {
			return dst, err
		}
		if len(got) == len(out) {
			continue
		}
		c.setPosition(p, got[len(got)-1].Offset+1)
		out = got
	}
	return out, nil
}

func (c *Consumer) position(p int) int64 {
	if c.grp != nil {
		return c.grp.committedOffset(p)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.positions[p]
}

func (c *Consumer) setPosition(p int, offset int64) {
	if c.grp != nil {
		c.grp.commit(p, offset)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.positions[p] = offset
}

// Generation returns the consumer group's current fencing epoch: it
// advances on every membership change (join or leave), so two reads
// bracketing an operation detect whether a rebalance happened in between.
// Standalone consumers always report 0.
func (c *Consumer) Generation() int64 {
	if c.grp == nil {
		return 0
	}
	return c.grp.currentEpoch()
}

// RebalanceChan returns a channel closed at the group's next membership
// change (then replaced — re-arm by calling again). It lets a member react
// to rebalances without polling Assignment. Standalone consumers, which
// never rebalance, get a channel that never closes.
func (c *Consumer) RebalanceChan() <-chan struct{} {
	if c.grp == nil {
		return make(chan struct{})
	}
	return c.grp.rebalanceCh()
}

// Committed returns this consumer's read position for partition p: the
// group's committed offset in group mode, the private position standalone.
func (c *Consumer) Committed(p int) int64 {
	return c.position(p)
}

// Seek moves a standalone consumer's position for partition p. It returns
// ErrNotSubscribed for group consumers, whose offsets are group-owned.
func (c *Consumer) Seek(p int, offset int64) error {
	if c.grp != nil {
		return ErrNotSubscribed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.positions[p] = offset
	return nil
}

// Lag returns the total number of records between this consumer's positions
// and the high watermarks of its owned partitions.
func (c *Consumer) Lag() int64 {
	var lag int64
	for _, p := range c.Assignment() {
		d := c.topic.HighWatermark(p) - c.position(p)
		if d > 0 {
			lag += d
		}
	}
	return lag
}

// Close releases the consumer; group members leave the group, triggering a
// rebalance for the remaining members.
func (c *Consumer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.grp != nil {
		c.grp.leave(c.id)
	}
}
