package mq

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDeleteTopic(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	if err := b.DeleteTopic("t"); err != nil {
		t.Fatalf("DeleteTopic: %v", err)
	}
	if _, err := b.Topic("t"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("topic survived deletion: %v", err)
	}
	if err := b.DeleteTopic("t"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("double delete err = %v, want ErrUnknownTopic", err)
	}
	// The name is reusable after deletion.
	if _, err := b.CreateTopic("t", 1); err != nil {
		t.Fatalf("recreate after delete: %v", err)
	}
}

func TestDeleteTopicWakesBlockedConsumers(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	c, _ := NewConsumer(b, "t")
	errs := make(chan error, 1)
	go func() {
		_, err := c.Poll(context.Background(), 1)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := b.DeleteTopic("t"); err != nil {
		t.Fatalf("DeleteTopic: %v", err)
	}
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("poll err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer never woke after topic deletion")
	}
}

func TestGroupsListing(t *testing.T) {
	b := NewBroker()
	topic := newTestTopic(t, b, "t", 2)
	if got := topic.Groups(); len(got) != 0 {
		t.Fatalf("fresh topic has groups %v", got)
	}
	c1, _ := NewGroupConsumer(b, "t", "zeta")
	c2, _ := NewGroupConsumer(b, "t", "alpha")
	defer c1.Close()
	defer c2.Close()
	got := topic.Groups()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Groups() = %v, want sorted [alpha zeta]", got)
	}
}

func TestGroupMemberCloseRebalancesAndDrains(t *testing.T) {
	// A member leaving mid-run must release its partitions to the
	// survivors, who then drain the topic to zero group lag — the dynamic
	// half of the consumer-group contract (the static split is covered by
	// the consumer tests).
	b := NewBroker()
	topic := newTestTopic(t, b, "t", 4)
	p := NewProducer(b)
	c1, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	c2, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer c2.Close()

	if got := len(c1.Assignment()) + len(c2.Assignment()); got != 4 {
		t.Fatalf("two members jointly own %d partitions, want 4", got)
	}
	const n = 64
	for i := 0; i < n; i++ {
		// Distinct keys spread records across all four partitions.
		if _, _, err := p.Send("t", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}

	// c1 consumes part of its share, then leaves mid-run. Its committed
	// offsets stay with the group, so nothing it already processed is
	// replayed and nothing it had not reached is lost.
	if _, err := c1.Poll(context.Background(), 8); err != nil {
		t.Fatalf("c1.Poll: %v", err)
	}
	c1.Close()
	if got := c1.Assignment(); len(got) != 0 {
		t.Fatalf("closed member still owns partitions %v", got)
	}
	if got := c2.Assignment(); len(got) != 4 {
		t.Fatalf("survivor owns %v after rebalance, want all 4 partitions", got)
	}

	// The survivor drains everything that remains.
	seen := 0
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && c2.Lag() > 0 {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		recs, err := c2.Poll(ctx, 16)
		cancel()
		if err != nil {
			t.Fatalf("survivor Poll: %v", err)
		}
		seen += len(recs)
	}
	if lag, err := topic.GroupLag("g"); err != nil || lag != 0 {
		t.Fatalf("group lag after drain = (%d, %v), want 0", lag, err)
	}
	if seen < n-8 {
		t.Fatalf("survivor drained %d records, want at least %d (all minus the leaver's committed share)", seen, n-8)
	}
}

func TestGroupLag(t *testing.T) {
	b := NewBroker()
	topic := newTestTopic(t, b, "t", 1)
	p := NewProducer(b)
	c, _ := NewGroupConsumer(b, "t", "g")
	defer c.Close()
	for i := 0; i < 10; i++ {
		p.Send("t", nil, []byte{byte(i)})
	}
	lag, err := topic.GroupLag("g")
	if err != nil || lag != 10 {
		t.Fatalf("GroupLag = (%d, %v), want 10", lag, err)
	}
	c.Poll(context.Background(), 4)
	lag, _ = topic.GroupLag("g")
	if lag != 6 {
		t.Fatalf("GroupLag after consuming 4 = %d, want 6", lag)
	}
	if _, err := topic.GroupLag("ghost"); err == nil {
		t.Fatal("unknown group accepted")
	}
}
