package mq

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDeleteTopic(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	if err := b.DeleteTopic("t"); err != nil {
		t.Fatalf("DeleteTopic: %v", err)
	}
	if _, err := b.Topic("t"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("topic survived deletion: %v", err)
	}
	if err := b.DeleteTopic("t"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("double delete err = %v, want ErrUnknownTopic", err)
	}
	// The name is reusable after deletion.
	if _, err := b.CreateTopic("t", 1); err != nil {
		t.Fatalf("recreate after delete: %v", err)
	}
}

func TestDeleteTopicWakesBlockedConsumers(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	c, _ := NewConsumer(b, "t")
	errs := make(chan error, 1)
	go func() {
		_, err := c.Poll(context.Background(), 1)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := b.DeleteTopic("t"); err != nil {
		t.Fatalf("DeleteTopic: %v", err)
	}
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("poll err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer never woke after topic deletion")
	}
}

func TestGroupsListing(t *testing.T) {
	b := NewBroker()
	topic := newTestTopic(t, b, "t", 2)
	if got := topic.Groups(); len(got) != 0 {
		t.Fatalf("fresh topic has groups %v", got)
	}
	c1, _ := NewGroupConsumer(b, "t", "zeta")
	c2, _ := NewGroupConsumer(b, "t", "alpha")
	defer c1.Close()
	defer c2.Close()
	got := topic.Groups()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Groups() = %v, want sorted [alpha zeta]", got)
	}
}

func TestGroupLag(t *testing.T) {
	b := NewBroker()
	topic := newTestTopic(t, b, "t", 1)
	p := NewProducer(b)
	c, _ := NewGroupConsumer(b, "t", "g")
	defer c.Close()
	for i := 0; i < 10; i++ {
		p.Send("t", nil, []byte{byte(i)})
	}
	lag, err := topic.GroupLag("g")
	if err != nil || lag != 10 {
		t.Fatalf("GroupLag = (%d, %v), want 10", lag, err)
	}
	c.Poll(context.Background(), 4)
	lag, _ = topic.GroupLag("g")
	if lag != 6 {
		t.Fatalf("GroupLag after consuming 4 = %d, want 6", lag)
	}
	if _, err := topic.GroupLag("ghost"); err == nil {
		t.Fatal("unknown group accepted")
	}
}
