package mq

import (
	"bytes"
	"hash/fnv"
	"sync/atomic"
	"time"
)

// Producer appends records to a broker's topics, choosing partitions by key
// hash (same key → same partition, preserving per-source ordering the way
// the paper's per-sub-stream topics do) or round-robin for empty keys.
type Producer struct {
	broker *Broker
	rr     atomic.Uint64
	nowFn  func() time.Time
}

// ProducerOption customizes a Producer.
type ProducerOption func(*Producer)

// WithNow overrides the timestamp source (used by simulated-time tests).
func WithNow(now func() time.Time) ProducerOption {
	return func(p *Producer) { p.nowFn = now }
}

// NewProducer returns a producer bound to broker.
func NewProducer(broker *Broker, opts ...ProducerOption) *Producer {
	p := &Producer{broker: broker, nowFn: time.Now}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// Send appends value under key to the topic and returns the record's
// position. An empty key round-robins across partitions.
func (p *Producer) Send(topic string, key, value []byte) (partition int, offset int64, err error) {
	return p.SendWatermarked(topic, key, value, Watermark{})
}

// SendWatermarked is Send with an event-time low watermark piggybacked on
// the record (see Record.Watermark). A zero watermark is identical to Send.
func (p *Producer) SendWatermarked(topic string, key, value []byte, watermark Watermark) (partition int, offset int64, err error) {
	t, err := p.broker.Topic(topic)
	if err != nil {
		return 0, 0, err
	}
	partition = p.pick(t, key)
	offset, err = t.append(partition, Record{Key: key, Value: value, Ts: p.nowFn(), Watermark: watermark})
	return partition, offset, err
}

// SendBatch appends a batch of records to the topic in one shot: one
// timestamp read, one partition pick per key run, and a single topic-lock
// acquisition (one consumer wakeup) for the whole batch — the amortization
// that closes the per-record hot-path gap. Each record's Key, Value, and
// Watermark are taken as given; Ts, Partition, and Offset are assigned by
// the send. Consecutive records with equal keys reuse the previous pick, and
// non-consecutive equal keys still hash identically, so per-key ordering is
// exactly what per-record Sends would produce. Empty-keyed records
// round-robin per run, not per record (the sticky-partitioner trade Kafka's
// batching producer makes). An empty batch is a no-op.
//
// recs is written in place (Ts/Partition assignment) but not retained; the
// caller may reuse it. Values ARE retained by the broker's partition logs —
// callers must not mutate a sent Value (see the codec's buffer-ownership
// rule).
func (p *Producer) SendBatch(topic string, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	t, err := p.broker.Topic(topic)
	if err != nil {
		return err
	}
	now := p.nowFn()
	var lastKey []byte
	lastPart := -1
	for i := range recs {
		recs[i].Ts = now
		if lastPart >= 0 && bytes.Equal(recs[i].Key, lastKey) {
			recs[i].Partition = lastPart
			continue
		}
		recs[i].Partition = p.pick(t, recs[i].Key)
		lastKey, lastPart = recs[i].Key, recs[i].Partition
	}
	return t.appendBatch(recs)
}

// SendTo appends directly to a specific partition.
func (p *Producer) SendTo(topic string, partition int, key, value []byte) (int64, error) {
	return p.SendToWatermarked(topic, partition, key, value, Watermark{})
}

// SendToWatermarked is SendTo with an event-time low watermark piggybacked
// on the record. Partition-directed watermarked sends exist for topic-global
// control events — end-of-stream above all — which must reach every
// partition's consumer, not just the one the key hashes to.
func (p *Producer) SendToWatermarked(topic string, partition int, key, value []byte, watermark Watermark) (int64, error) {
	t, err := p.broker.Topic(topic)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= t.Partitions() {
		return 0, ErrOutOfRange
	}
	return t.append(partition, Record{Key: key, Value: value, Ts: p.nowFn(), Watermark: watermark})
}

func (p *Producer) pick(t *Topic, key []byte) int {
	n := t.Partitions()
	if n == 1 {
		return 0
	}
	if len(key) == 0 {
		return int(p.rr.Add(1)-1) % n
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}
