package mq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestTopic(t *testing.T, b *Broker, name string, parts int, opts ...TopicOption) *Topic {
	t.Helper()
	topic, err := b.CreateTopic(name, parts, opts...)
	if err != nil {
		t.Fatalf("CreateTopic(%q): %v", name, err)
	}
	return topic
}

func TestCreateTopicValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.CreateTopic("t", 0); !errors.Is(err, ErrNoPartitions) {
		t.Fatalf("zero partitions: err = %v, want ErrNoPartitions", err)
	}
	newTestTopic(t, b, "t", 2)
	if _, err := b.CreateTopic("t", 2); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("duplicate: err = %v, want ErrTopicExists", err)
	}
	if _, err := b.Topic("missing"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("missing: err = %v, want ErrUnknownTopic", err)
	}
}

func TestProduceAssignsMonotonicOffsets(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	p := NewProducer(b)
	for i := 0; i < 10; i++ {
		_, off, err := p.Send("t", nil, []byte{byte(i)})
		if err != nil {
			t.Fatalf("Send: %v", err)
		}
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
}

func TestKeyHashingIsSticky(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 4)
	p := NewProducer(b)
	first, _, err := p.Send("t", []byte("source-7"), []byte("a"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i := 0; i < 20; i++ {
		part, _, err := p.Send("t", []byte("source-7"), []byte("b"))
		if err != nil {
			t.Fatalf("Send: %v", err)
		}
		if part != first {
			t.Fatalf("same key landed on partitions %d and %d", first, part)
		}
	}
}

func TestEmptyKeyRoundRobins(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 4)
	p := NewProducer(b)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		part, _, err := p.Send("t", nil, []byte("x"))
		if err != nil {
			t.Fatalf("Send: %v", err)
		}
		seen[part] = true
	}
	if len(seen) != 4 {
		t.Fatalf("round robin used %d/4 partitions", len(seen))
	}
}

func TestSendToValidatesPartition(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 2)
	p := NewProducer(b)
	if _, err := p.SendTo("t", 5, nil, []byte("x")); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := p.SendTo("t", -1, nil, []byte("x")); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestStandaloneConsumerReadsEverything(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 3)
	p := NewProducer(b)
	for i := 0; i < 30; i++ {
		if _, _, err := p.Send("t", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	c, err := NewConsumer(b, "t")
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	defer c.Close()
	got := 0
	for got < 30 {
		recs, err := c.Poll(context.Background(), 10)
		if err != nil {
			t.Fatalf("Poll: %v", err)
		}
		got += len(recs)
	}
	if got != 30 {
		t.Fatalf("consumed %d records, want 30", got)
	}
	if c.Lag() != 0 {
		t.Fatalf("Lag = %d after draining, want 0", c.Lag())
	}
}

func TestPollBlocksUntilProduce(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	c, err := NewConsumer(b, "t")
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	defer c.Close()

	done := make(chan []Record, 1)
	go func() {
		recs, err := c.Poll(context.Background(), 1)
		if err != nil {
			t.Errorf("Poll: %v", err)
		}
		done <- recs
	}()

	select {
	case <-done:
		t.Fatal("Poll returned before any record was produced")
	case <-time.After(20 * time.Millisecond):
	}

	if _, _, err := NewProducer(b).Send("t", nil, []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case recs := <-done:
		if len(recs) != 1 || string(recs[0].Value) != "hello" {
			t.Fatalf("got %v, want the produced record", recs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Poll never woke after produce")
	}
}

func TestPollHonorsContextCancellation(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	c, _ := NewConsumer(b, "t")
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Poll(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestPollWakesOnBrokerClose(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	c, _ := NewConsumer(b, "t")
	errs := make(chan error, 1)
	go func() {
		_, err := c.Poll(context.Background(), 1)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Poll never woke on broker close")
	}
}

func TestTryPollNonBlocking(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	c, _ := NewConsumer(b, "t")
	defer c.Close()
	recs, err := c.TryPoll(5)
	if err != nil || recs != nil {
		t.Fatalf("TryPoll on empty = (%v, %v), want (nil, nil)", recs, err)
	}
}

func TestGroupSplitsPartitions(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 4)
	c1, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer c1.Close()
	c2, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer c2.Close()

	a1, a2 := c1.Assignment(), c2.Assignment()
	if len(a1)+len(a2) != 4 {
		t.Fatalf("assignments %v + %v do not cover 4 partitions", a1, a2)
	}
	overlap := map[int]bool{}
	for _, p := range a1 {
		overlap[p] = true
	}
	for _, p := range a2 {
		if overlap[p] {
			t.Fatalf("partition %d assigned to both members", p)
		}
	}
}

func TestGroupConsumesEachRecordOnce(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 4)
	p := NewProducer(b)
	const total = 200
	for i := 0; i < total; i++ {
		if _, _, err := p.Send("t", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}

	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	consume := func(c *Consumer) {
		defer wg.Done()
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			recs, err := c.Poll(ctx, 16)
			cancel()
			if err != nil {
				return // timeout: drained
			}
			mu.Lock()
			for _, r := range recs {
				seen[fmt.Sprintf("%d/%d", r.Partition, r.Offset)]++
			}
			mu.Unlock()
		}
	}
	c1, _ := NewGroupConsumer(b, "t", "g")
	c2, _ := NewGroupConsumer(b, "t", "g")
	defer c1.Close()
	defer c2.Close()
	wg.Add(2)
	go consume(c1)
	go consume(c2)
	wg.Wait()

	if len(seen) != total {
		t.Fatalf("consumed %d distinct records, want %d", len(seen), total)
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("record %s consumed %d times", key, n)
		}
	}
}

func TestGroupRebalanceOnLeave(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 4)
	c1, _ := NewGroupConsumer(b, "t", "g")
	c2, _ := NewGroupConsumer(b, "t", "g")
	c2.Close()
	if got := len(c1.Assignment()); got != 4 {
		t.Fatalf("after peer left, assignment = %d partitions, want 4", got)
	}
	c1.Close()
}

func TestGroupOffsetsSurviveMemberChurn(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	p := NewProducer(b)
	for i := 0; i < 5; i++ {
		p.Send("t", nil, []byte{byte(i)})
	}
	c1, _ := NewGroupConsumer(b, "t", "g")
	recs, err := c1.Poll(context.Background(), 3)
	if err != nil || len(recs) != 3 {
		t.Fatalf("first poll = (%d recs, %v)", len(recs), err)
	}
	c1.Close()

	c2, _ := NewGroupConsumer(b, "t", "g")
	defer c2.Close()
	recs, err = c2.Poll(context.Background(), 10)
	if err != nil {
		t.Fatalf("second poll: %v", err)
	}
	if len(recs) != 2 || recs[0].Value[0] != 3 {
		t.Fatalf("new member resumed at wrong offset: got %d recs starting %v", len(recs), recs[0].Value)
	}
}

func TestSeekStandaloneOnly(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	p := NewProducer(b)
	for i := 0; i < 5; i++ {
		p.Send("t", nil, []byte{byte(i)})
	}
	c, _ := NewConsumer(b, "t")
	defer c.Close()
	if err := c.Seek(0, 3); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	recs, _ := c.TryPoll(10)
	if len(recs) != 2 || recs[0].Offset != 3 {
		t.Fatalf("after Seek(3): %v", recs)
	}

	gc, _ := NewGroupConsumer(b, "t", "g")
	defer gc.Close()
	if err := gc.Seek(0, 0); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("group Seek err = %v, want ErrNotSubscribed", err)
	}
}

func TestRetentionCompactsConsumedPrefix(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1, WithRetention(10))
	p := NewProducer(b)
	c, _ := NewGroupConsumer(b, "t", "g")
	defer c.Close()

	for i := 0; i < 500; i++ {
		if _, _, err := p.Send("t", nil, []byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if i%50 == 49 {
			for c.Lag() > 0 {
				if _, err := c.Poll(context.Background(), 64); err != nil {
					t.Fatalf("Poll: %v", err)
				}
			}
		}
	}
	topic, _ := b.Topic("t")
	if lw := topic.LowWatermark(0); lw == 0 {
		t.Fatal("retention never compacted the log")
	}
	if hw := topic.HighWatermark(0); hw != 500 {
		t.Fatalf("high watermark = %d, want 500", hw)
	}
}

func TestFetchBelowLowWatermark(t *testing.T) {
	b := NewBroker()
	topic := newTestTopic(t, b, "t", 1, WithRetention(1))
	p := NewProducer(b)
	c, _ := NewGroupConsumer(b, "t", "g")
	for i := 0; i < 100; i++ {
		p.Send("t", nil, []byte{byte(i)})
		c.Poll(context.Background(), 64)
	}
	c.Close()
	if _, err := topic.Fetch(0, 0, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Fetch(0) after compaction: err = %v, want ErrOutOfRange", err)
	}
}

func TestConcurrentProducersAndGroup(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 8)
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := NewProducer(b)
			for j := 0; j < perProducer; j++ {
				if _, _, err := p.Send("t", []byte(fmt.Sprintf("%d-%d", id, j)), []byte("v")); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(i)
	}

	var consumed sync.Map
	var total int64
	var cwg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		c, err := NewGroupConsumer(b, "t", "g")
		if err != nil {
			t.Fatalf("NewGroupConsumer: %v", err)
		}
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			defer c.Close()
			for {
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				recs, err := c.Poll(ctx, 32)
				cancel()
				if err != nil {
					return
				}
				for _, r := range recs {
					consumed.Store(fmt.Sprintf("%d/%d", r.Partition, r.Offset), true)
				}
				mu.Lock()
				total += int64(len(recs))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()

	distinct := 0
	consumed.Range(func(_, _ any) bool { distinct++; return true })
	if distinct != producers*perProducer {
		t.Fatalf("consumed %d distinct records, want %d", distinct, producers*perProducer)
	}
}

func TestProducerTimestampInjection(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 1)
	fixed := time.Date(2018, 7, 2, 12, 0, 0, 0, time.UTC)
	p := NewProducer(b, WithNow(func() time.Time { return fixed }))
	p.Send("t", nil, []byte("x"))
	topic, _ := b.Topic("t")
	recs, _ := topic.Fetch(0, 0, 1)
	if !recs[0].Ts.Equal(fixed) {
		t.Fatalf("Ts = %v, want %v", recs[0].Ts, fixed)
	}
}

func BenchmarkProduce(b *testing.B) {
	br := NewBroker()
	br.CreateTopic("t", 4, WithRetention(1024))
	p := NewProducer(br)
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Send("t", nil, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProduceConsume(b *testing.B) {
	br := NewBroker()
	br.CreateTopic("t", 1, WithRetention(4096))
	p := NewProducer(br)
	c, _ := NewGroupConsumer(br, "t", "g")
	defer c.Close()
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Send("t", nil, val); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			for c.Lag() > 0 {
				if _, err := c.Poll(context.Background(), 64); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func TestMultiPartitionPerKeyOrdering(t *testing.T) {
	// Key-hash partitioning pins each key to one partition, so consuming a
	// multi-partition topic must observe every key's records in production
	// order even though records of different keys interleave arbitrarily.
	br := NewBroker()
	defer br.Close()
	newTestTopic(t, br, "t", 4)
	p := NewProducer(br)

	keys := []string{"src-a", "src-b", "src-c", "src-d", "src-e"}
	const perKey = 200
	for seq := 0; seq < perKey; seq++ {
		for _, k := range keys {
			if _, _, err := p.Send("t", []byte(k), []byte(fmt.Sprintf("%s:%d", k, seq))); err != nil {
				t.Fatal(err)
			}
		}
	}

	c, err := NewConsumer(br, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	next := make(map[string]int, len(keys))
	total := 0
	for total < perKey*len(keys) {
		recs, err := c.Poll(context.Background(), 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			k := string(rec.Key)
			var seq int
			fmt.Sscanf(string(rec.Value[len(k)+1:]), "%d", &seq)
			if seq != next[k] {
				t.Fatalf("key %s: got seq %d, want %d (out-of-order within key)", k, seq, next[k])
			}
			next[k]++
			total++
		}
	}
}

func TestGroupPerKeyOrderingAcrossMembers(t *testing.T) {
	// A consumer group over a multi-partition topic: each key lands in one
	// partition owned by one member, so per-key order survives the split
	// and no record is seen twice.
	br := NewBroker()
	defer br.Close()
	newTestTopic(t, br, "t", 4)
	p := NewProducer(br)

	var members []*Consumer
	for i := 0; i < 2; i++ {
		c, err := NewGroupConsumer(br, "t", "g")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		members = append(members, c)
	}

	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	const perKey = 100
	for seq := 0; seq < perKey; seq++ {
		for _, k := range keys {
			if _, _, err := p.Send("t", []byte(k), []byte(fmt.Sprintf("%d", seq))); err != nil {
				t.Fatal(err)
			}
		}
	}

	var (
		mu    sync.Mutex
		next  = make(map[string]int, len(keys))
		total int
		wg    sync.WaitGroup
	)
	want := perKey * len(keys)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, m := range members {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				done := total >= want
				mu.Unlock()
				if done {
					return
				}
				recs, err := m.TryPoll(64)
				if err != nil || ctx.Err() != nil {
					return
				}
				if len(recs) == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				mu.Lock()
				for _, rec := range recs {
					k := string(rec.Key)
					var seq int
					fmt.Sscanf(string(rec.Value), "%d", &seq)
					if seq != next[k] {
						mu.Unlock()
						t.Errorf("key %s: got seq %d, want %d", k, seq, next[k])
						return
					}
					next[k]++
					total++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if total != want {
		t.Fatalf("consumed %d records, want %d", total, want)
	}
	for _, k := range keys {
		if next[k] != perKey {
			t.Fatalf("key %s: consumed %d, want %d", k, next[k], perKey)
		}
	}
}

// TestControlTopicFanout pins the broadcast shape the live control plane
// relies on: standalone consumers on a single-partition topic are
// independent — every one of them sees every record, in publish order,
// regardless of how many records it drains per poll — unlike group members,
// which split the stream. A "latest wins" drain (the control-plane read
// pattern) therefore converges every consumer to the same final record.
func TestControlTopicFanout(t *testing.T) {
	b := NewBroker()
	if _, err := b.CreateTopic("control", 1); err != nil {
		t.Fatal(err)
	}
	const consumers, records = 3, 17

	subs := make([]*Consumer, consumers)
	for i := range subs {
		c, err := NewConsumer(b, "control")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		subs[i] = c
	}

	p := NewProducer(b)
	for seq := 0; seq < records; seq++ {
		if _, _, err := p.Send("control", nil, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}

	for i, c := range subs {
		// Drain with a small max to force multiple polls; the latest
		// record must win and the full history must arrive in order.
		var seen []byte
		for {
			recs, err := c.TryPoll(4)
			if err != nil {
				t.Fatalf("consumer %d: %v", i, err)
			}
			if len(recs) == 0 {
				break
			}
			for _, rec := range recs {
				seen = append(seen, rec.Value[0])
			}
		}
		if len(seen) != records {
			t.Fatalf("consumer %d saw %d records, want all %d", i, len(seen), records)
		}
		for seq, v := range seen {
			if v != byte(seq) {
				t.Fatalf("consumer %d: position %d holds seq %d", i, seq, v)
			}
		}
		if latest := seen[len(seen)-1]; latest != records-1 {
			t.Fatalf("consumer %d: latest-wins drain landed on %d", i, latest)
		}
		if lag := c.Lag(); lag != 0 {
			t.Fatalf("consumer %d still lags %d after drain", i, lag)
		}
	}
}
