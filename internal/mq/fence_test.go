package mq

import "testing"

// seedBothPartitions sends keyed records until both partitions of a 2-way
// topic hold at least two, returning the total sent.
func seedBothPartitions(t *testing.T, b *Broker, topic string) int {
	t.Helper()
	p := NewProducer(b)
	sent := 0
	var hw [2]int64
	for i := 0; i < 256 && (hw[0] < 2 || hw[1] < 2); i++ {
		key := []byte{byte(i)}
		part, _, err := p.Send(topic, key, []byte("v"))
		if err != nil {
			t.Fatalf("Send: %v", err)
		}
		hw[part]++
		sent++
	}
	if hw[0] < 2 || hw[1] < 2 {
		t.Fatalf("could not seed both partitions: hw = %v", hw)
	}
	return sent
}

// TestClaimFencesStaleOwner is the regression test for the stale-owner
// window during a rebalance: a member that snapshotted its assignment just
// before another member joined must not fetch (nor commit past) a partition
// that has moved away. Without the epoch fence in claim, the stale owner
// fetches the batch and the rightful owner finds the offset already
// advanced.
func TestClaimFencesStaleOwner(t *testing.T) {
	b := NewBroker()
	top := newTestTopic(t, b, "t", 2)
	seedBothPartitions(t, b, "t")

	g := top.group("g")
	a := g.join() // sole member: owns p0 and p1
	owned, epoch := g.assignmentEpoch(a, 2)
	if len(owned) != 2 {
		t.Fatalf("sole member owns %v, want both partitions", owned)
	}

	// Membership changes after the snapshot: members sort lexically, so the
	// earlier joiner keeps p0 and the new member takes p1.
	bMember := g.join()
	if got := g.assignment(a, 2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("after join, a owns %v, want [0]", got)
	}
	if got := g.assignment(bMember, 2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after join, b owns %v, want [1]", got)
	}

	fetch := func(p int) func([]Record, int64) ([]Record, error) {
		return func(dst []Record, from int64) ([]Record, error) {
			return top.FetchInto(dst, p, from, 100)
		}
	}

	// Stale claim on the lost partition: must be fenced — no records, no
	// commit.
	got, err := g.claim(a, epoch, 1, nil, fetch(1))
	if err != nil {
		t.Fatalf("stale claim: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("stale owner fetched %d records from a reassigned partition", len(got))
	}
	if off := g.committedOffset(1); off != 0 {
		t.Fatalf("stale owner committed p1 to %d", off)
	}

	// Stale epoch on a partition the member still owns: liveness — the
	// fence re-checks ownership rather than rejecting the epoch outright.
	got, err = g.claim(a, epoch, 0, nil, fetch(0))
	if err != nil {
		t.Fatalf("retained-partition claim: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("fence blocked a partition the member still owns")
	}

	// The rightful owner's fresh claim gets everything from offset 0.
	_, freshEpoch := g.assignmentEpoch(bMember, 2)
	got, err = g.claim(bMember, freshEpoch, 1, nil, fetch(1))
	if err != nil {
		t.Fatalf("rightful claim: %v", err)
	}
	if len(got) == 0 || got[0].Offset != 0 {
		t.Fatalf("rightful owner got %d records (first offset %v), want all from 0",
			len(got), func() any {
				if len(got) > 0 {
					return got[0].Offset
				}
				return "none"
			}())
	}
}

// TestGenerationAndRebalanceChan covers the membership-change notification
// surface: Generation advances on join and leave, and RebalanceChan closes
// exactly when membership changes.
func TestGenerationAndRebalanceChan(t *testing.T) {
	b := NewBroker()
	newTestTopic(t, b, "t", 2)

	c1, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer c1.Close()
	gen := c1.Generation()
	ch := c1.RebalanceChan()
	select {
	case <-ch:
		t.Fatal("RebalanceChan closed with no membership change")
	default:
	}

	c2, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("RebalanceChan not closed after a member joined")
	}
	if c1.Generation() != gen+1 {
		t.Fatalf("Generation = %d after join, want %d", c1.Generation(), gen+1)
	}

	ch = c1.RebalanceChan()
	c2.Close()
	select {
	case <-ch:
	default:
		t.Fatal("RebalanceChan not closed after a member left")
	}
	if c1.Generation() != gen+2 {
		t.Fatalf("Generation = %d after leave, want %d", c1.Generation(), gen+2)
	}
}

// TestGroupCommittedTracksClaims verifies the committed-offset introspection
// used by crash recovery: after a group consumer drains the topic, the
// per-partition committed offsets equal the high watermarks.
func TestGroupCommittedTracksClaims(t *testing.T) {
	b := NewBroker()
	top := newTestTopic(t, b, "t", 2)
	sent := seedBothPartitions(t, b, "t")

	c, err := NewGroupConsumer(b, "t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer c.Close()
	drained := 0
	for drained < sent {
		recs, err := c.TryPoll(64)
		if err != nil {
			t.Fatalf("TryPoll: %v", err)
		}
		drained += len(recs)
	}

	offs, err := top.GroupCommitted("g")
	if err != nil {
		t.Fatalf("GroupCommitted: %v", err)
	}
	var total int64
	for p, off := range offs {
		if off != top.HighWatermark(p) {
			t.Fatalf("p%d committed %d, want high watermark %d", p, off, top.HighWatermark(p))
		}
		if off != c.Committed(p) {
			t.Fatalf("p%d Consumer.Committed %d != GroupCommitted %d", p, c.Committed(p), off)
		}
		total += off
	}
	if total != int64(sent) {
		t.Fatalf("committed total %d, want %d", total, sent)
	}
	if _, err := top.GroupCommitted("nope"); err == nil {
		t.Fatal("GroupCommitted on unknown group: want error")
	}
}
