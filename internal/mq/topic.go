package mq

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Record is one message in a partition log.
type Record struct {
	// Key selects the partition (hashed); an empty key round-robins.
	Key []byte
	// Value is the payload, opaque to the broker.
	Value []byte
	// Ts is the producer-assigned timestamp.
	Ts time.Time
	// Watermark is an optional piggybacked event-time low watermark. Zero
	// means "no watermark". The broker treats it as opaque metadata;
	// event-time consumers fold it into their own watermark tracking.
	Watermark Watermark
	// Partition and Offset locate the record once appended.
	Partition int
	Offset    int64
}

// Watermark is an event-time low watermark a producer piggybacks on its
// records: the promise that (barring allowed lateness) no future record of
// the same producing chain carries an event timestamp below At. From names
// the originating chain — distinct producers may legitimately carry the
// same record keys (shared sub-stream IDs), so consumers must track
// watermark progress per (From, key), never per key alone.
//
// A zero At with a non-empty From is a liveness keepalive: the producer
// promises nothing about event time yet (it may still be buffering its
// first windows) but is alive — consumers refresh their idle clocks for
// the chain without folding a watermark.
type Watermark struct {
	// From identifies the producing chain (a source valve, a tree node).
	From string
	// At is the low-watermark instant (zero: keepalive only).
	At time.Time
}

// IsZero reports a watermark that carries nothing at all — neither a
// low-watermark instant nor a keepalive identity.
func (w Watermark) IsZero() bool { return w.From == "" && w.At.IsZero() }

// TopicOption customizes topic creation.
type TopicOption func(*Topic)

// WithRetention bounds each partition to at most n fully-consumed records:
// once every registered consumer group has committed past them, older
// records may be discarded down to the most recent n. Without this option
// logs grow without bound, as in Kafka with unlimited retention.
func WithRetention(n int) TopicOption {
	return func(t *Topic) { t.retain = n }
}

// Topic is a named, partitioned, append-only log.
type Topic struct {
	name   string
	parts  []*partition
	retain int // 0 = unlimited

	mu     sync.Mutex
	groups map[string]*group
	closed bool
	// changed is closed and replaced whenever any partition receives an
	// append, waking blocked consumers.
	changed chan struct{}
}

func newTopic(name string, partitions int, opts ...TopicOption) *Topic {
	t := &Topic{
		name:    name,
		parts:   make([]*partition, partitions),
		groups:  make(map[string]*group),
		changed: make(chan struct{}),
	}
	for i := range t.parts {
		t.parts[i] = &partition{}
	}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Partitions returns the partition count.
func (t *Topic) Partitions() int { return len(t.parts) }

// append adds a record to partition p and wakes blocked consumers.
func (t *Topic) append(p int, rec Record) (int64, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0, ErrClosed
	}
	offset := t.parts[p].append(rec, p)
	old := t.changed
	t.changed = make(chan struct{})
	t.mu.Unlock()
	close(old)

	if t.retain > 0 {
		t.maybeCompact(p)
	}
	return offset, nil
}

// appendBatch appends a batch of records — each with Partition already
// assigned by the producer — under a single topic-lock acquisition, waking
// blocked consumers once for the whole batch instead of once per record.
// Consecutive records sharing a partition are appended as one run under
// that partition's lock.
func (t *Topic) appendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	for lo := 0; lo < len(recs); {
		p := recs[lo].Partition
		hi := lo + 1
		for hi < len(recs) && recs[hi].Partition == p {
			hi++
		}
		t.parts[p].appendRun(recs[lo:hi], p)
		lo = hi
	}
	old := t.changed
	t.changed = make(chan struct{})
	t.mu.Unlock()
	close(old)

	if t.retain > 0 {
		for lo := 0; lo < len(recs); {
			p := recs[lo].Partition
			hi := lo + 1
			for hi < len(recs) && recs[hi].Partition == p {
				hi++
			}
			t.maybeCompact(p)
			lo = hi
		}
	}
	return nil
}

// closedChan is returned by waitCh on a shut-down topic so waiters armed
// after the close still wake immediately.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// waitCh returns a channel closed on the next append, or an already-closed
// channel if the topic is shut down.
func (t *Topic) waitCh() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return closedChan
	}
	return t.changed
}

func (t *Topic) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	close(t.changed)
	t.changed = make(chan struct{}) // keep waitCh non-nil for stragglers
}

func (t *Topic) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// HighWatermark returns the next offset to be assigned in partition p.
func (t *Topic) HighWatermark(p int) int64 {
	return t.parts[p].highWatermark()
}

// LowWatermark returns the oldest retained offset in partition p.
func (t *Topic) LowWatermark(p int) int64 {
	return t.parts[p].lowWatermark()
}

// Fetch reads up to max records from partition p starting at offset from.
// It never blocks; an empty result means the caller is at the high
// watermark. Reading below the low watermark returns ErrOutOfRange.
func (t *Topic) Fetch(p int, from int64, max int) ([]Record, error) {
	return t.parts[p].fetchInto(nil, from, max)
}

// FetchInto is the scratch-reusing form of Fetch: records are appended to
// dst (which may be nil or a recycled slice) and the extended slice is
// returned, so a steady-state poll loop allocates nothing. On error the
// returned slice is dst unchanged.
func (t *Topic) FetchInto(dst []Record, p int, from int64, max int) ([]Record, error) {
	return t.parts[p].fetchInto(dst, from, max)
}

// maybeCompact drops records that every group has committed past, keeping at
// least the latest retain records. Compaction runs only once a partition has
// accumulated twice its retention, so its cost is amortized O(1) per append.
func (t *Topic) maybeCompact(p int) {
	if t.parts[p].length() < 2*t.retain {
		return
	}
	t.mu.Lock()
	minCommitted := int64(-1)
	for _, g := range t.groups {
		c := g.committedOffset(p)
		if minCommitted == -1 || c < minCommitted {
			minCommitted = c
		}
	}
	t.mu.Unlock()
	if minCommitted <= 0 {
		return
	}
	t.parts[p].truncate(minCommitted, t.retain)
}

// Groups returns the names of the consumer groups registered on the topic,
// sorted for deterministic output.
func (t *Topic) Groups() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.groups))
	for name := range t.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GroupLag returns the total records between a group's committed offsets and
// the high watermarks, or an error for an unknown group.
func (t *Topic) GroupLag(name string) (int64, error) {
	t.mu.Lock()
	g, ok := t.groups[name]
	t.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("mq: unknown group %q on topic %q", name, t.name)
	}
	var lag int64
	for p := range t.parts {
		d := t.HighWatermark(p) - g.committedOffset(p)
		if d > 0 {
			lag += d
		}
	}
	return lag, nil
}

// GroupCommitted returns a group's committed offset for every partition
// (index = partition), or an error for an unknown group. The snapshot is
// not atomic across partitions; each offset is individually consistent.
func (t *Topic) GroupCommitted(name string) ([]int64, error) {
	t.mu.Lock()
	g, ok := t.groups[name]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mq: unknown group %q on topic %q", name, t.name)
	}
	offs := make([]int64, len(t.parts))
	for p := range offs {
		offs[p] = g.committedOffset(p)
	}
	return offs, nil
}

// group returns (creating if needed) the named consumer group.
func (t *Topic) group(name string) *group {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.groups[name]
	if !ok {
		g = newGroup(len(t.parts))
		t.groups[name] = g
	}
	return g
}

// partition is a single append-only log with a sliding base offset.
type partition struct {
	mu      sync.Mutex
	records []Record
	base    int64 // offset of records[0]
}

func (p *partition) append(rec Record, idx int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec.Partition = idx
	rec.Offset = p.base + int64(len(p.records))
	p.records = append(p.records, rec)
	return rec.Offset
}

// appendRun appends a run of records destined for this partition under one
// lock acquisition. The stored copies get their Partition/Offset assigned;
// the caller's slice is left untouched.
func (p *partition) appendRun(recs []Record, idx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rec := range recs {
		rec.Partition = idx
		rec.Offset = p.base + int64(len(p.records))
		p.records = append(p.records, rec)
	}
}

func (p *partition) highWatermark() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base + int64(len(p.records))
}

func (p *partition) lowWatermark() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base
}

// fetchInto appends up to max records starting at offset from onto dst and
// returns the extended slice — the zero-alloc fetch the hot poll path uses
// (pass nil dst for the allocating form). On error dst is returned unchanged.
func (p *partition) fetchInto(dst []Record, from int64, max int) ([]Record, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from < p.base {
		return dst, ErrOutOfRange
	}
	start := from - p.base
	if start >= int64(len(p.records)) {
		return dst, nil
	}
	end := start + int64(max)
	if end > int64(len(p.records)) {
		end = int64(len(p.records))
	}
	return append(dst, p.records[start:end]...), nil
}

// length returns the number of retained records.
func (p *partition) length() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.records)
}

// truncate drops records with offset < upTo, retaining at least keep
// records. The surviving records are copied down in place and the freed
// tail zeroed so payload memory is reclaimable — no reallocation.
func (p *partition) truncate(upTo int64, keep int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	limit := p.base + int64(len(p.records)) - int64(keep)
	if upTo > limit {
		upTo = limit
	}
	if upTo <= p.base {
		return
	}
	drop := upTo - p.base
	n := copy(p.records, p.records[drop:])
	tail := p.records[n:]
	for i := range tail {
		tail[i] = Record{}
	}
	p.records = p.records[:n]
	p.base = upTo
}
