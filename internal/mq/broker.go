// Package mq is an in-memory, partitioned, offset-based publish/subscribe
// broker — the substrate the ApproxIoT prototype obtained from Apache Kafka
// [15]. It models the parts of Kafka the paper's pipeline actually uses:
//
//   - named topics backed by append-only partition logs with monotonically
//     increasing offsets,
//   - producers with key-hash or round-robin partitioning,
//   - consumer groups whose members split a topic's partitions and track
//     committed offsets, rebalancing as members join and leave,
//   - blocking polls with context cancellation, and
//   - size-bounded retention so long benchmark runs do not grow without
//     bound.
//
// Edge-computing layers are connected by pre-defined topics exactly as in
// the paper's Figure 4: each layer's sampling processors consume the topic
// below them and produce into the topic above.
package mq

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by broker operations.
var (
	ErrTopicExists   = errors.New("mq: topic already exists")
	ErrUnknownTopic  = errors.New("mq: unknown topic")
	ErrClosed        = errors.New("mq: closed")
	ErrNoPartitions  = errors.New("mq: partition count must be positive")
	ErrOutOfRange    = errors.New("mq: offset out of range")
	ErrNotSubscribed = errors.New("mq: consumer has no subscription")
)

// Broker owns a set of topics. All methods are safe for concurrent use.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*Topic
	closed bool
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: make(map[string]*Topic)}
}

// CreateTopic creates a topic with the given number of partitions.
func (b *Broker) CreateTopic(name string, partitions int, opts ...TopicOption) (*Topic, error) {
	if partitions <= 0 {
		return nil, ErrNoPartitions
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	t := newTopic(name, partitions, opts...)
	b.topics[name] = t
	return t, nil
}

// Topic looks up a topic by name.
func (b *Broker) Topic(name string) (*Topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

// Topics returns the names of all topics.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics))
	for name := range b.topics {
		names = append(names, name)
	}
	return names
}

// DeleteTopic removes a topic: its partitions are discarded and blocked
// consumers wake with ErrClosed.
func (b *Broker) DeleteTopic(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	t.close()
	delete(b.topics, name)
	return nil
}

// Close shuts the broker down: subsequent CreateTopic calls fail and all
// blocked polls are woken with ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, t := range b.topics {
		t.close()
	}
}
