// Package xrand supplies the seeded random sources and distribution samplers
// used by ApproxIoT's samplers and workload generators.
//
// Every randomized component in this repository receives a *Rand explicitly —
// there is no package-level RNG — so experiments are reproducible from a
// single root seed. Independent sub-streams derive their own generators via
// Split, which uses SplitMix64 so sibling streams are decorrelated.
package xrand

import (
	"math"
	"math/rand"
)

// Rand is a seeded pseudo-random generator with the distribution samplers the
// paper's workloads need (Gaussian sub-streams, Poisson sub-streams with λ up
// to 10^7, and heavy-tailed value models for the trace generators).
type Rand struct {
	src *rand.Rand
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(int64(mix(seed))))}
}

// Split derives the i-th child generator. Children of distinct (seed, i)
// pairs are decorrelated, which keeps per-sub-stream randomness independent
// the way the paper's per-source generators were.
func Split(seed uint64, i uint64) *Rand {
	return New(mix(seed) ^ mix(i+0x9e3779b97f4a7c15))
}

// mix is the SplitMix64 finalizer. It turns correlated integer seeds into
// decorrelated ones.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63n returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 { return r.src.Int63n(n) }

// Uint64 returns a uniform 64-bit sample.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation, matching the paper's Gaussian sub-streams A–D.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)); used by the synthetic NYC-taxi fare
// model, which needs a heavy right tail.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponential sample with the given rate (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	return r.src.ExpFloat64() / rate
}

// poissonSwitch is the λ above which Poisson switches from Knuth's
// multiplication method (O(λ) per draw) to the PTRS transformed-rejection
// sampler (O(1) per draw). Fig. 10c needs λ = 10^7, where Knuth would be
// ~10^7 multiplications per item.
const poissonSwitch = 30

// Poisson returns a Poisson sample with mean lambda. lambda <= 0 yields 0.
func (r *Rand) Poisson(lambda float64) int64 {
	switch {
	case lambda <= 0:
		return 0
	case lambda < poissonSwitch:
		return r.poissonKnuth(lambda)
	default:
		return r.poissonPTRS(lambda)
	}
}

// poissonKnuth is Knuth's classic multiplication method, exact for small λ.
func (r *Rand) poissonKnuth(lambda float64) int64 {
	limit := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS transformed-rejection sampler
// ("The transformed rejection method for generating Poisson random
// variables", 1993). Valid for λ >= 10; O(1) expected time for any λ.
func (r *Rand) poissonPTRS(lambda float64) int64 {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.src.Float64() - 0.5
		v := r.src.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-logGamma(k+1) {
			return int64(k)
		}
	}
}

// logGamma returns ln Γ(x) via math.Lgamma, dropping the sign (x > 0 here).
func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
