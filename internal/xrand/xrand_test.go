package xrand

import (
	"math"
	"testing"
)

func TestDeterministicForSameSeed(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 equal draws", same)
	}
}

func TestSplitChildrenAreDecorrelated(t *testing.T) {
	a, b := Split(42, 0), Split(42, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits produced %d/64 equal draws", same)
	}
}

func TestSplitIsReproducible(t *testing.T) {
	a, b := Split(42, 3), Split(42, 3)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split with identical (seed,i) is not reproducible")
		}
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(1)
	for i := 0; i < 32; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(<0) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(>1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %.4f, want 0.3 +- 0.01", got)
	}
}

func TestNormalMoments(t *testing.T) {
	tests := []struct {
		name         string
		mean, stddev float64
	}{
		{"substream A", 10, 5},
		{"substream B", 1000, 50},
		{"substream C", 10000, 500},
		{"substream D", 100000, 5000},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := New(99)
			const n = 100000
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				v := r.Normal(tc.mean, tc.stddev)
				sum += v
				sumSq += v * v
			}
			mean := sum / n
			sd := math.Sqrt(sumSq/n - mean*mean)
			if math.Abs(mean-tc.mean) > 4*tc.stddev/math.Sqrt(n) {
				t.Errorf("mean = %.2f, want %.2f", mean, tc.mean)
			}
			if math.Abs(sd-tc.stddev)/tc.stddev > 0.03 {
				t.Errorf("stddev = %.2f, want %.2f", sd, tc.stddev)
			}
		})
	}
}

func TestPoissonMoments(t *testing.T) {
	// Covers both the Knuth branch (λ < 30) and the PTRS branch, including
	// the paper's Fig. 10c λ = 10^7 sub-stream D.
	lambdas := []float64{0.5, 3, 10, 29.9, 30, 100, 1000, 10000, 1e7}
	for _, lambda := range lambdas {
		r := New(uint64(lambda) + 5)
		n := 50000
		if lambda >= 1e6 {
			n = 20000
		}
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		// Poisson mean and variance are both λ. Tolerate 5 standard errors.
		se := math.Sqrt(lambda / float64(n))
		if math.Abs(mean-lambda) > 5*se+0.01 {
			t.Errorf("lambda=%g: mean = %.3f, want %.3f", lambda, mean, lambda)
		}
		if lambda >= 10 && math.Abs(variance-lambda)/lambda > 0.1 {
			t.Errorf("lambda=%g: variance = %.3f, want ~%.3f", lambda, variance, lambda)
		}
	}
}

func TestPoissonNonPositiveLambda(t *testing.T) {
	r := New(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestPoissonNeverNegative(t *testing.T) {
	r := New(77)
	for _, lambda := range []float64{0.1, 15, 1000} {
		for i := 0; i < 1000; i++ {
			if v := r.Poisson(lambda); v < 0 {
				t.Fatalf("Poisson(%g) = %d < 0", lambda, v)
			}
		}
	}
}

func TestLogNormalPositiveAndHeavyTailed(t *testing.T) {
	r := New(5)
	const n = 50000
	var max, sum float64
	for i := 0; i < n; i++ {
		v := r.LogNormal(2.5, 0.5)
		if v <= 0 {
			t.Fatalf("LogNormal returned non-positive %g", v)
		}
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / n
	want := math.Exp(2.5 + 0.5*0.5/2) // analytic log-normal mean
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("LogNormal mean = %.3f, want ~%.3f", mean, want)
	}
	if max < 3*mean {
		t.Fatalf("LogNormal max %.2f suspiciously close to mean %.2f: no tail", max, mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(6)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(4)
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Exp(4) mean = %.4f, want 0.25", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func BenchmarkPoissonSmallLambda(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(10)
	}
}

func BenchmarkPoissonHugeLambda(b *testing.B) {
	// Fig. 10c generates items with λ = 10^7; this must be O(1) per draw.
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(1e7)
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Normal(1000, 50)
	}
}
