package core

import (
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stats"
)

// Sliding windows by pane composition ([10], [11] in PAPER.md): a sliding
// window of length slide × Window is the sum of its last slide tumbling
// panes. Only additive aggregates slide — SUM and COUNT — because for those
// both the value and the Eq. 11 variance add across disjoint panes, so the
// composed estimate keeps a rigorous error bound. MEAN, top-k, and quantile
// answers are not additive across panes and stay tumbling-only.
//
// Both runners feed the same slidingState at the same point — the root's
// window emit, after empty windows are skipped — so sim and live compose
// identical pane sequences under the same seed.

// SlidingResult is one sliding-window estimate attached to the tumbling
// window that completes it.
type SlidingResult struct {
	Kind query.Kind
	// Estimate sums the last Panes tumbling pane estimates; values and
	// variances both add (independent panes), keeping bounds rigorous.
	Estimate   stats.Estimate
	Confidence stats.Confidence
	// Panes is how many tumbling panes the estimate composes. It is below
	// the configured slide during warm-up (the first slide−1 windows).
	Panes int
}

// Bound returns the half-width of the sliding estimate's confidence interval.
func (s SlidingResult) Bound() float64 { return s.Estimate.Bound(s.Confidence) }

// Interval returns the [lo, hi] confidence interval.
func (s SlidingResult) Interval() (lo, hi float64) { return s.Estimate.Interval(s.Confidence) }

// slidingKinds selects the additive subset of the registered query kinds —
// the ones whose estimates may be composed across panes.
func slidingKinds(kinds []query.Kind) []query.Kind {
	var out []query.Kind
	for _, k := range kinds {
		if k == query.Sum || k == query.Count {
			out = append(out, k)
		}
	}
	return out
}

// slidingState owns one query.Slider ring per additive kind and is driven by
// the single goroutine (or event loop) that emits root windows.
type slidingState struct {
	slide   int
	window  time.Duration
	conf    stats.Confidence
	kinds   []query.Kind
	sliders []*query.Slider

	// Event-time gap tracking: emitted window starts are monotone, so the
	// distance between consecutive starts reveals skipped (empty) panes.
	lastStart int64
	seen      bool
}

// newSlidingState returns nil when sliding is off (slide < 2) or no
// registered kind is additive.
func newSlidingState(slide int, window time.Duration, conf stats.Confidence, kinds []query.Kind) *slidingState {
	sk := slidingKinds(kinds)
	if slide < 2 || len(sk) == 0 {
		return nil
	}
	ss := &slidingState{slide: slide, window: window, conf: conf, kinds: sk}
	for range sk {
		ss.sliders = append(ss.sliders, query.NewSlider(slide))
	}
	return ss
}

// observe folds one emitted tumbling window into the pane rings and attaches
// the sliding estimates to it. Event-time panes that were never emitted
// (SampleSize 0 windows are skipped before this point) are zero by
// definition, so gap-fill pushes zero panes to keep the composed window
// spanning exactly slide × Window of event time. Processing-time windows
// carry no Start and compose by emission order.
func (ss *slidingState) observe(win *WindowResult) {
	if !win.Start.IsZero() && ss.window > 0 {
		if ss.seen {
			gap := int((win.Start.UnixNano()-ss.lastStart)/int64(ss.window)) - 1
			if gap > ss.slide {
				gap = ss.slide
			}
			for g := 0; g < gap; g++ {
				for _, sl := range ss.sliders {
					sl.Push(stats.Estimate{})
				}
			}
		}
		ss.lastStart = win.Start.UnixNano()
		ss.seen = true
	}
	win.Sliding = make([]SlidingResult, len(ss.kinds))
	for i, k := range ss.kinds {
		cur := ss.sliders[i].Push(win.Result(k).Estimate)
		win.Sliding[i] = SlidingResult{
			Kind:       k,
			Estimate:   cur,
			Confidence: ss.conf,
			Panes:      ss.sliders[i].Len(),
		}
	}
}
