// Package core assembles ApproxIoT from its parts: the per-node workflow of
// Algorithm 2 (Node, Root), the budget-to-sample-size cost function, the
// adaptive feedback loop of §IV-B, and two runners that instantiate a
// topology.TreeSpec — SimRunner on deterministic virtual time with WAN
// emulation, and LiveRunner on real goroutines over the mq broker, matching
// the paper's Kafka deployment.
package core

import (
	"math"
	"sync"

	"github.com/approxiot/approxiot/internal/query"
)

// CostFunction translates a node's resource budget into the interval's
// sample size (Algorithm 2, line 3). The paper assumes such a function
// exists and configures it manually; FractionBudget and FixedBudget are the
// two obvious instances, and FeedbackController closes the loop the paper's
// §IV-B sketches.
type CostFunction interface {
	// SampleSize returns the reservoir budget for an interval in which
	// observed items arrived.
	SampleSize(observed int) int
}

// FractionBudget keeps a fixed fraction of the interval's input — the
// "sampling fraction" knob every figure of the evaluation sweeps.
type FractionBudget struct {
	// Fraction in (0, 1]; values above 1 behave like 1 (keep everything).
	Fraction float64
}

// SampleSize implements CostFunction as ceil(fraction · observed).
func (f FractionBudget) SampleSize(observed int) int {
	if f.Fraction <= 0 || observed <= 0 {
		return 0
	}
	if f.Fraction >= 1 {
		return observed
	}
	return int(math.Ceil(f.Fraction * float64(observed)))
}

// FixedBudget keeps at most Size items per interval regardless of input —
// the natural knob for a memory-constrained edge node.
type FixedBudget struct {
	Size int
}

// SampleSize implements CostFunction.
func (f FixedBudget) SampleSize(int) int {
	if f.Size < 0 {
		return 0
	}
	return f.Size
}

// WeightedCostFunction is an optional extension: cost functions that size
// the sample against the *estimated original* stream volume Σ W^in·c —
// which Eq. 8 makes exactly available at every node — rather than against
// the already-thinned input. Node.CloseInterval prefers this interface.
type WeightedCostFunction interface {
	CostFunction
	// SampleSizeWeighted returns the budget for an interval whose pairs
	// estimate estOriginal original items.
	SampleSizeWeighted(estOriginal float64) int
}

// EffectiveFractionBudget keeps Fraction of the estimated original stream:
// the first sampling layer thins the stream to the fraction, and layers
// above — whose budget then matches or exceeds what they receive — forward
// with weights intact. This makes the configured fraction the system's
// end-to-end sampling fraction, which is what the paper's evaluation sweeps
// (and why Fig. 7's bandwidth saving is 1−f on every sampled segment).
type EffectiveFractionBudget struct {
	Fraction float64
}

var _ WeightedCostFunction = EffectiveFractionBudget{}

// SampleSize implements CostFunction for unweighted callers (observed input
// treated as original volume).
func (e EffectiveFractionBudget) SampleSize(observed int) int {
	return FractionBudget{Fraction: e.Fraction}.SampleSize(observed)
}

// SampleSizeWeighted implements WeightedCostFunction.
func (e EffectiveFractionBudget) SampleSizeWeighted(estOriginal float64) int {
	if e.Fraction <= 0 || estOriginal <= 0 {
		return 0
	}
	f := e.Fraction
	if f > 1 {
		f = 1
	}
	return int(math.Ceil(f * estOriginal))
}

// FeedbackController implements the adaptive feedback mechanism of §IV-B:
// when the error bound of a window result exceeds the user's target, the
// sampling parameters are refined (fraction raised) for subsequent runs;
// when the error is comfortably under target, the fraction is relaxed to
// save resources. It is itself a CostFunction, so it can be installed
// directly on every node of the tree.
//
// The controller is multiplicative-increase / multiplicative-decrease with
// a dead band: relative error above target scales the fraction up by Gain,
// error below target/2 scales it down by Gain.
type FeedbackController struct {
	mu       sync.Mutex
	fraction float64
	target   float64
	min, max float64
	gain     float64
}

// FeedbackOption customizes the controller.
type FeedbackOption func(*FeedbackController)

// WithFractionBounds clamps the fraction to [min, max].
func WithFractionBounds(min, max float64) FeedbackOption {
	return func(f *FeedbackController) {
		if min > 0 {
			f.min = min
		}
		if max > 0 && max <= 1 {
			f.max = max
		}
	}
}

// WithGain sets the multiplicative adjustment step (default 1.5).
func WithGain(g float64) FeedbackOption {
	return func(f *FeedbackController) {
		if g > 1 {
			f.gain = g
		}
	}
}

// NewFeedbackController returns a controller starting at initialFraction
// that steers the relative error bound (bound / |estimate|) towards target.
func NewFeedbackController(initialFraction, targetRelError float64, opts ...FeedbackOption) *FeedbackController {
	f := &FeedbackController{
		fraction: clamp(initialFraction, 0.01, 1),
		target:   targetRelError,
		min:      0.01,
		max:      1,
		gain:     1.5,
	}
	for _, opt := range opts {
		opt(f)
	}
	f.fraction = clamp(f.fraction, f.min, f.max)
	return f
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Fraction returns the current sampling fraction.
func (f *FeedbackController) Fraction() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fraction
}

// Target returns the current relative-error target.
func (f *FeedbackController) Target() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.target
}

// SetTarget changes the relative-error target mid-run — the analyst
// tightening or relaxing their error budget while the pipeline is live.
// The fraction itself is untouched; subsequent Observe calls steer it
// toward the new target. Non-positive targets are ignored.
func (f *FeedbackController) SetTarget(target float64) {
	if target <= 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.target = target
}

// SampleSize implements CostFunction at the current fraction.
func (f *FeedbackController) SampleSize(observed int) int {
	return FractionBudget{Fraction: f.Fraction()}.SampleSize(observed)
}

// Observe feeds one window's query result back into the controller and
// returns the (possibly adjusted) fraction to use next.
func (f *FeedbackController) Observe(res query.Result) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := math.Abs(res.Estimate.Value)
	if v == 0 || res.SampleSize == 0 {
		return f.fraction // nothing informative this window
	}
	rel := res.Bound() / v
	switch {
	case rel > f.target:
		f.fraction = clamp(f.fraction*f.gain, f.min, f.max)
	case rel < f.target/2:
		f.fraction = clamp(f.fraction/f.gain, f.min, f.max)
	}
	return f.fraction
}
