package core

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/sample"
	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/xrand"
)

func TestSimResultHelpers(t *testing.T) {
	res, err := RunSim(testbedConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes() <= 0 {
		t.Fatal("TotalBytes not accumulated")
	}
	var sum int64
	for _, b := range res.LayerBytes {
		sum += b
	}
	if res.TotalBytes() != sum {
		t.Fatalf("TotalBytes = %d, want Σ layers %d", res.TotalBytes(), sum)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
	for _, m := range res.LayerMessages {
		if m <= 0 {
			t.Fatalf("LayerMessages = %v, want all positive", res.LayerMessages)
		}
	}
	// AccuracyLoss for non-additive kinds reports 0 by contract.
	if got := res.AccuracyLoss(query.Mean); got != 0 {
		t.Fatalf("AccuracyLoss(Mean) = %g, want 0 (unsupported)", got)
	}
	truth := res.TotalTruth()
	var direct float64
	for _, v := range res.TruthSum {
		direct += v
	}
	// Both sums iterate the same map; Go randomizes iteration order, so the
	// two can differ by float non-associativity — compare relatively.
	if math.Abs(truth-direct) > 1e-12*math.Abs(direct) {
		t.Fatalf("TotalTruth = %g, want %g", truth, direct)
	}
}

func TestWindowResultLookup(t *testing.T) {
	w := WindowResult{Results: []query.Result{
		{Kind: query.Sum, Estimate: stats.Estimate{Value: 10}},
		{Kind: query.Count, Estimate: stats.Estimate{Value: 3}},
	}}
	if got := w.Result(query.Sum).Estimate.Value; got != 10 {
		t.Fatalf("Result(Sum) = %g", got)
	}
	if got := w.Result(query.Mean); got.Kind != 0 {
		t.Fatalf("Result(missing) = %+v, want zero", got)
	}
}

func TestFixedBudgetTree(t *testing.T) {
	// FixedBudget caps every node's interval at an absolute size — the
	// memory-constrained-edge configuration. The invariant must hold and
	// the root sample must respect the cap per window.
	cfg := testbedConfig(0) // fraction unused
	cfg.Cost = FixedBudget{Size: 200}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotCount := res.TotalEstimate(query.Count)
	if rel := math.Abs(gotCount-float64(res.Generated)) / float64(res.Generated); rel > 1e-9 {
		t.Fatalf("FixedBudget broke Eq. 8: %g vs %d", gotCount, res.Generated)
	}
	for _, w := range res.Windows {
		// Root keeps ≤ 200 + fairness floors (4 sub-streams, ≥1 each).
		if w.SampleSize > 250 {
			t.Fatalf("window sample %d exceeds fixed budget 200 materially", w.SampleSize)
		}
	}
}

func TestFailureDuringWholeRun(t *testing.T) {
	// A node down for the entire run: its subtree contributes nothing.
	cfg := testbedConfig(0.5)
	cfg.Failures = []Failure{{Layer: 1, Node: 0, At: 0, For: time.Hour}}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.TotalEstimate(query.Count)
	ratio := got / float64(res.Generated)
	// Layer-1 node 0 serves half the sources.
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("estimated/generated = %.3f with half the tree down, want ~0.5", ratio)
	}
}

func TestNodeIngestItemsGroupsRuns(t *testing.T) {
	// IngestItems groups consecutive same-source runs; interleaved sources
	// still land in the right strata.
	n := whsNode("n", 100)
	items := append(mkItems("a", 1, 2), mkItems("b", 3)...)
	items = append(items, mkItems("a", 4)...)
	n.IngestItems(items)
	out := n.CloseInterval()
	counts := map[string]int{}
	for _, b := range out {
		counts[string(b.Source)] += len(b.Items)
	}
	if counts["a"] != 3 || counts["b"] != 1 {
		t.Fatalf("strata counts = %v, want a:3 b:1", counts)
	}
}

func TestRootWithSRSSampler(t *testing.T) {
	// The root can run any strategy; with SRS at p=1 nothing is lost.
	root := NewRoot("r", sample.NewCoinFlipFraction(xrand.New(1), 1), FractionBudget{Fraction: 1},
		query.NewEngine(), query.Sum, query.Count)
	root.IngestItems(mkItems("a", 1, 2, 3))
	win, _ := root.CloseWindow(epoch)
	if got := win.Result(query.Count).Estimate.Value; got != 3 {
		t.Fatalf("COUNT = %g, want 3", got)
	}
}
