package core

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Scenario-breadth cross-mode suite: sliding windows, group-by top-k, and
// quantiles with bounds, pinned between the simulated and the live runner.
// The two runners execute the same compiled plan and observe windows at the
// same point (root emit, after the empty-window skip), so at census budget —
// where sampling cannot diverge on arrival order — every query class must
// agree per window within float-addition-order tolerance, at every
// {Partitions, RootShards, LayerShards} combination.

// relClose compares within crossModeTolerance relative error, treating
// near-zero pairs (e.g. census variances) as equal.
func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return m < 1e-12 || d/m <= crossModeTolerance
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// breadthQueries is the full mixed register: plain aggregates beside
// parameterized group-by and order-statistic kinds.
func breadthQueries() []query.Kind {
	return []query.Kind{query.Sum, query.Count, query.TopKOf(3), query.QuantileOf(0.5)}
}

// pushBreadthRun is pushEventRun with the query register, sliding slide, and
// parallelism knobs open — the breadth suite sweeps all three.
func pushBreadthRun(t *testing.T, spec topology.TreeSpec, queries []query.Kind, slide int,
	partitions, rootShards int, layerShards []int,
	lateness time.Duration, cost CostFunction, perSlot [][]stream.Item) *LiveResult {
	t.Helper()
	s, err := OpenLive(nil, LiveConfig{
		Spec:            spec,
		NewSampler:      WHSFactory(),
		Cost:            cost,
		Window:          10 * time.Millisecond,
		Queries:         queries,
		Slide:           slide,
		Partitions:      partitions,
		RootShards:      rootShards,
		LayerShards:     layerShards,
		Seed:            21,
		EventTime:       true,
		AllowedLateness: lateness,
	})
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	for slot, items := range perSlot {
		ing, err := s.Ingester(slot)
		if err != nil {
			t.Fatalf("Ingester(%d): %v", slot, err)
		}
		buf := append([]stream.Item(nil), items...)
		if err := ing.Push(buf...); err != nil {
			t.Fatalf("Push slot %d: %v", slot, err)
		}
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	return res
}

// assertWindowBreadthEqual compares one live window against its sim twin
// across every query class: bit-equal counts, rel-tolerance sums, identical
// top-k ranking with matching group estimates, matching quantile values and
// intervals, and matching sliding composites — all with finite bounds.
func assertWindowBreadthEqual(t *testing.T, i int, sw, lw WindowResult, queries []query.Kind, slide int) {
	t.Helper()
	if !lw.Start.Equal(sw.Start) || !lw.End.Equal(sw.End) {
		t.Fatalf("window %d bounds live [%v,%v) vs sim [%v,%v)", i, lw.Start, lw.End, sw.Start, sw.End)
	}
	for _, kind := range queries {
		sr, lr := sw.Result(kind), lw.Result(kind)
		switch {
		case kind == query.Count:
			if sr.Estimate.Value != lr.Estimate.Value {
				t.Fatalf("window %d count live %.2f vs sim %.2f", i, lr.Estimate.Value, sr.Estimate.Value)
			}
		default:
			if !relClose(sr.Estimate.Value, lr.Estimate.Value) {
				t.Fatalf("window %d %v estimate live %.6f vs sim %.6f", i, kind, lr.Estimate.Value, sr.Estimate.Value)
			}
			if !relClose(sr.Estimate.Variance, lr.Estimate.Variance) {
				t.Fatalf("window %d %v variance live %.6g vs sim %.6g", i, kind, lr.Estimate.Variance, sr.Estimate.Variance)
			}
		}
		if !finite(lr.Bound()) || !finite(sr.Bound()) {
			t.Fatalf("window %d %v bound not finite (live %g, sim %g)", i, kind, lr.Bound(), sr.Bound())
		}
		if kind.IsTopK() {
			if len(lr.Groups) != len(sr.Groups) {
				t.Fatalf("window %d top-k live %d groups vs sim %d", i, len(lr.Groups), len(sr.Groups))
			}
			for g := range sr.Groups {
				sg, lg := sr.Groups[g], lr.Groups[g]
				if sg.Source != lg.Source {
					t.Fatalf("window %d top-k rank %d live %q vs sim %q", i, g, lg.Source, sg.Source)
				}
				if !relClose(sg.Sum.Value, lg.Sum.Value) || !relClose(sg.Count, lg.Count) {
					t.Fatalf("window %d top-k group %q live (%.6f, %.2f) vs sim (%.6f, %.2f)",
						i, sg.Source, lg.Sum.Value, lg.Count, sg.Sum.Value, sg.Count)
				}
			}
		}
		if kind.IsQuantile() {
			if sr.Quantile == nil || lr.Quantile == nil {
				t.Fatalf("window %d quantile result missing (sim %v, live %v)", i, sr.Quantile, lr.Quantile)
			}
			if !relClose(sr.Quantile.Value, lr.Quantile.Value) ||
				!relClose(sr.Quantile.Lo, lr.Quantile.Lo) || !relClose(sr.Quantile.Hi, lr.Quantile.Hi) {
				t.Fatalf("window %d quantile live %.6f [%.6f,%.6f] vs sim %.6f [%.6f,%.6f]", i,
					lr.Quantile.Value, lr.Quantile.Lo, lr.Quantile.Hi,
					sr.Quantile.Value, sr.Quantile.Lo, sr.Quantile.Hi)
			}
			if sr.Quantile.SampleSize != lr.Quantile.SampleSize {
				t.Fatalf("window %d quantile zeta live %d vs sim %d", i, lr.Quantile.SampleSize, sr.Quantile.SampleSize)
			}
		}
	}
	if slide >= 2 {
		if len(sw.Sliding) == 0 || len(lw.Sliding) != len(sw.Sliding) {
			t.Fatalf("window %d sliding live %d entries vs sim %d", i, len(lw.Sliding), len(sw.Sliding))
		}
		for j := range sw.Sliding {
			ss, ls := sw.Sliding[j], lw.Sliding[j]
			if ss.Kind != ls.Kind || ss.Panes != ls.Panes {
				t.Fatalf("window %d sliding[%d] live (%v, %d panes) vs sim (%v, %d panes)",
					i, j, ls.Kind, ls.Panes, ss.Kind, ss.Panes)
			}
			if !relClose(ss.Estimate.Value, ls.Estimate.Value) || !relClose(ss.Estimate.Variance, ls.Estimate.Variance) {
				t.Fatalf("window %d sliding %v live (%.6f, %.6g) vs sim (%.6f, %.6g)", i, ss.Kind,
					ls.Estimate.Value, ls.Estimate.Variance, ss.Estimate.Value, ss.Estimate.Variance)
			}
			if !finite(ls.Bound()) || !finite(ss.Bound()) {
				t.Fatalf("window %d sliding %v bound not finite", i, ss.Kind)
			}
		}
	}
}

// TestCrossModeQueryBreadth is the acceptance test for the scenario-breadth
// expansion: one simulated census run with the mixed query register and a
// 3-pane slide anchors the comparison, and live runs at three parallelism
// combos — each pushing the same workload fully shuffled — must reproduce
// every window's estimates for every query class.
func TestCrossModeQueryBreadth(t *testing.T) {
	spec := topology.Testbed() // 8 sources, 1 s windows
	const slots, perSlot, slide = 8, 40, 3
	span := 4 * time.Second
	items := eventItems(slots, perSlot, span)
	census := EffectiveFractionBudget{Fraction: 1}
	queries := breadthQueries()

	sim, err := RunSim(SimConfig{
		Spec:            spec,
		Source:          func(i int) workload.Source { return &sliceSource{items: items[i]} },
		NewSampler:      WHSFactory(),
		Cost:            census,
		Duration:        span,
		Queries:         queries,
		Slide:           slide,
		Seed:            21,
		EventTime:       true,
		AllowedLateness: span,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if len(sim.Windows) != 4 {
		t.Fatalf("sim closed %d windows, want 4", len(sim.Windows))
	}
	for i, w := range sim.Windows {
		// Only the additive kinds slide; the pane count saturates at slide.
		if len(w.Sliding) != 2 {
			t.Fatalf("sim window %d has %d sliding entries, want 2 (Sum, Count)", i, len(w.Sliding))
		}
		wantPanes := i + 1
		if wantPanes > slide {
			wantPanes = slide
		}
		if w.Sliding[0].Panes != wantPanes {
			t.Fatalf("sim window %d composed %d panes, want %d", i, w.Sliding[0].Panes, wantPanes)
		}
	}

	combos := []struct {
		name        string
		partitions  int
		rootShards  int
		layerShards []int
	}{
		{"all-ones", 1, 1, nil},
		{"layer-sharded", 4, 2, []int{2, 2}},
		{"fully-sharded-uneven", 8, 4, []int{4, 3}},
	}
	rng := xrand.New(0xB4EAD)
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			shuffled := make([][]stream.Item, slots)
			for s := range items {
				perm := append([]stream.Item(nil), items[s]...)
				for i := len(perm) - 1; i > 0; i-- {
					j := int(rng.Uint64() % uint64(i+1))
					perm[i], perm[j] = perm[j], perm[i]
				}
				shuffled[s] = perm
			}
			live := pushBreadthRun(t, spec, queries, slide,
				combo.partitions, combo.rootShards, combo.layerShards, span, census, shuffled)
			if live.Produced != int64(slots*perSlot) {
				t.Fatalf("live produced %d, want %d", live.Produced, slots*perSlot)
			}
			if len(live.Windows) != len(sim.Windows) {
				t.Fatalf("live closed %d windows, sim %d", len(live.Windows), len(sim.Windows))
			}
			for i := range sim.Windows {
				assertWindowBreadthEqual(t, i, sim.Windows[i], live.Windows[i], queries, slide)
			}
			// Eq. 8 accounting: Σ window counts + late drops == produced.
			var liveCount float64
			for _, w := range live.Windows {
				liveCount += w.EstimatedInput
			}
			assertCountInvariant(t, "live breadth "+combo.name,
				liveCount+float64(live.LateDropped), float64(live.Produced))
		})
	}
	var simCount float64
	for _, w := range sim.Windows {
		simCount += w.EstimatedInput
	}
	assertCountInvariant(t, "sim breadth", simCount+float64(sim.LateDropped), float64(sim.Generated))
}

// recomputeSliding recomputes window i's sliding composite for one kind from
// the retained pane history: the sum — values and variances both — of every
// emitted window whose start falls inside the slide-wide horizon ending at
// window i. Skipped (never-emitted) panes contribute nothing, matching the
// slider's zero-estimate gap fill.
func recomputeSliding(windows []WindowResult, i int, kind query.Kind, slide int, pane time.Duration) (value, variance float64) {
	horizon := windows[i].Start.Add(-time.Duration(slide-1) * pane)
	for j := 0; j <= i; j++ {
		if windows[j].Start.Before(horizon) {
			continue
		}
		est := windows[j].Result(kind).Estimate
		value += est.Value
		variance += est.Variance
	}
	return value, variance
}

// TestSlidingPaneHistoryProperty pins the pane-composition identity in both
// runners: every reported sliding estimate equals the estimate recomputed
// from the retained pane history — values AND variances — including across a
// silent pane, which the slider must gap-fill with a zero estimate rather
// than letting a stale pane linger in the horizon.
func TestSlidingPaneHistoryProperty(t *testing.T) {
	spec := topology.Testbed()
	const slots, perSlot, slide = 8, 40, 3
	span := 5 * time.Second
	full := eventItems(slots, perSlot, span)

	// Silence window [2s, 3s): its pane is never emitted, so sliding
	// composites spanning it must see a zero pane in its place.
	gapFrom, gapTo := simEpoch.Add(2*time.Second), simEpoch.Add(3*time.Second)
	items := make([][]stream.Item, slots)
	var kept int
	for s := range full {
		for _, it := range full[s] {
			if !it.Ts.Before(gapFrom) && it.Ts.Before(gapTo) {
				continue
			}
			items[s] = append(items[s], it)
		}
		kept += len(items[s])
	}

	pane := spec.Window
	check := func(label string, windows []WindowResult) {
		t.Helper()
		if len(windows) != 4 { // 5 panes minus the silenced one
			t.Fatalf("%s: %d windows, want 4", label, len(windows))
		}
		for i, w := range windows {
			for _, kind := range []query.Kind{query.Sum, query.Count} {
				sl, ok := w.SlidingResult(kind)
				if !ok {
					t.Fatalf("%s window %d: no sliding result for %v", label, i, kind)
				}
				wantV, wantVar := recomputeSliding(windows, i, kind, slide, pane)
				if !relClose(sl.Estimate.Value, wantV) {
					t.Fatalf("%s window %d %v sliding %.6f, history recomputes %.6f",
						label, i, kind, sl.Estimate.Value, wantV)
				}
				if !relClose(sl.Estimate.Variance, wantVar) {
					t.Fatalf("%s window %d %v sliding variance %.6g, history recomputes %.6g",
						label, i, kind, sl.Estimate.Variance, wantVar)
				}
			}
		}
		// The gap must bite: the first window after the silent pane composes
		// strictly less than a full 3-pane horizon of its neighbours.
		after := windows[2] // [3s, 4s): horizon covers the silent [2s,3s) pane
		sl, _ := after.SlidingResult(query.Count)
		var dense float64
		for i := 0; i <= 2; i++ {
			dense += windows[i].Result(query.Count).Estimate.Value
		}
		if sl.Estimate.Value >= dense {
			t.Fatalf("%s: gap window composite %.1f not reduced vs dense 3-pane sum %.1f",
				label, sl.Estimate.Value, dense)
		}
	}

	sim, err := RunSim(SimConfig{
		Spec:            spec,
		Source:          func(i int) workload.Source { return &sliceSource{items: items[i]} },
		NewSampler:      WHSFactory(),
		Cost:            EffectiveFractionBudget{Fraction: 1},
		Duration:        span,
		Queries:         []query.Kind{query.Sum, query.Count},
		Slide:           slide,
		Seed:            21,
		EventTime:       true,
		AllowedLateness: span,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if sim.Generated != int64(kept) {
		t.Fatalf("sim generated %d, want %d", sim.Generated, kept)
	}
	check("sim", sim.Windows)

	live := pushBreadthRun(t, spec, []query.Kind{query.Sum, query.Count}, slide,
		4, 2, []int{2, 2}, span, EffectiveFractionBudget{Fraction: 1}, items)
	check("live", live.Windows)

	// The property also holds at a sampled fraction, where pane estimates
	// carry real variance: composition must add variances, not recompute.
	sampled := pushBreadthRun(t, spec, []query.Kind{query.Sum, query.Count}, slide,
		4, 2, []int{2, 2}, span, EffectiveFractionBudget{Fraction: 0.3}, items)
	for i, w := range sampled.Windows {
		sl, ok := w.SlidingResult(query.Sum)
		if !ok {
			t.Fatalf("sampled window %d: no sliding Sum", i)
		}
		wantV, wantVar := recomputeSliding(sampled.Windows, i, query.Sum, slide, pane)
		if !relClose(sl.Estimate.Value, wantV) || !relClose(sl.Estimate.Variance, wantVar) {
			t.Fatalf("sampled window %d sliding (%.6f, %.6g), history recomputes (%.6f, %.6g)",
				i, sl.Estimate.Value, sl.Estimate.Variance, wantV, wantVar)
		}
		if wantVar > 0 && sl.Bound() <= 0 {
			t.Fatalf("sampled window %d: positive variance but bound %g", i, sl.Bound())
		}
	}
}

// TestTopKQuantilePermutationInvariance extends the permutation property to
// the parameterized kinds: at census budget any push order yields the same
// top-k ranking (sources and sums) and the same quantile value and interval.
func TestTopKQuantilePermutationInvariance(t *testing.T) {
	spec := topology.Testbed()
	const slots, perSlot = 8, 25
	span := 3 * time.Second
	items := eventItems(slots, perSlot, span)
	queries := breadthQueries()
	topk, med := query.TopKOf(3), query.QuantileOf(0.5)

	trials := 3
	if testing.Short() {
		trials = 2
	}
	type winKey struct {
		start    int64
		ranking  string
		topSum   float64
		quantile float64
		lo, hi   float64
	}
	var baseline []winKey
	rng := xrand.New(0xFACADE)
	for trial := 0; trial < trials; trial++ {
		perSlotItems := make([][]stream.Item, slots)
		for s := range items {
			perm := append([]stream.Item(nil), items[s]...)
			if trial > 0 { // trial 0 pushes in order: the reference
				for i := len(perm) - 1; i > 0; i-- {
					j := int(rng.Uint64() % uint64(i+1))
					perm[i], perm[j] = perm[j], perm[i]
				}
			}
			perSlotItems[s] = perm
		}
		res := pushBreadthRun(t, spec, queries, 0, 4, 2, []int{2, 2},
			span, EffectiveFractionBudget{Fraction: 1}, perSlotItems)
		keys := make([]winKey, len(res.Windows))
		for i, w := range res.Windows {
			tr, qr := w.Result(topk), w.Result(med)
			if qr.Quantile == nil {
				t.Fatalf("trial %d window %d: quantile missing", trial, i)
			}
			var ranking string
			for _, g := range tr.Groups {
				ranking += string(g.Source) + ","
			}
			keys[i] = winKey{
				start:    w.Start.UnixNano(),
				ranking:  ranking,
				topSum:   tr.Estimate.Value,
				quantile: qr.Quantile.Value,
				lo:       qr.Quantile.Lo,
				hi:       qr.Quantile.Hi,
			}
		}
		if trial == 0 {
			baseline = keys
			continue
		}
		if len(keys) != len(baseline) {
			t.Fatalf("trial %d: %d windows vs baseline %d", trial, len(keys), len(baseline))
		}
		for i := range keys {
			b, k := baseline[i], keys[i]
			if k.start != b.start || k.ranking != b.ranking {
				t.Fatalf("trial %d window %d: ranking %q vs baseline %q", trial, i, k.ranking, b.ranking)
			}
			if !relClose(k.topSum, b.topSum) || !relClose(k.quantile, b.quantile) ||
				!relClose(k.lo, b.lo) || !relClose(k.hi, b.hi) {
				t.Fatalf("trial %d window %d: %+v vs baseline %+v", trial, i, k, b)
			}
		}
	}
}

// TestTopKQuantileShardInvariance pins shard-count invariance directly: under
// a fixed seed at census budget, re-deploying the same plan across different
// {Partitions, RootShards, LayerShards} leaves the top-k ranking and the
// quantile answer of every window unchanged — sharding only partitions the
// input that weight compounding makes split-insensitive.
func TestTopKQuantileShardInvariance(t *testing.T) {
	spec := topology.Testbed()
	const slots, perSlot = 8, 25
	span := 3 * time.Second
	items := eventItems(slots, perSlot, span)
	queries := breadthQueries()
	topk, med := query.TopKOf(3), query.QuantileOf(0.5)

	base := pushBreadthRun(t, spec, queries, 0, 1, 1, nil,
		span, EffectiveFractionBudget{Fraction: 1}, items)
	sharded := pushBreadthRun(t, spec, queries, 0, 8, 4, []int{4, 3},
		span, EffectiveFractionBudget{Fraction: 1}, items)
	if len(base.Windows) == 0 || len(base.Windows) != len(sharded.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(base.Windows), len(sharded.Windows))
	}
	for i := range base.Windows {
		bw, sw := base.Windows[i], sharded.Windows[i]
		bt, st := bw.Result(topk), sw.Result(topk)
		if len(bt.Groups) != len(st.Groups) {
			t.Fatalf("window %d: %d vs %d top-k groups", i, len(bt.Groups), len(st.Groups))
		}
		for g := range bt.Groups {
			if bt.Groups[g].Source != st.Groups[g].Source ||
				!relClose(bt.Groups[g].Sum.Value, st.Groups[g].Sum.Value) {
				t.Fatalf("window %d rank %d: %q %.6f vs %q %.6f", i, g,
					bt.Groups[g].Source, bt.Groups[g].Sum.Value,
					st.Groups[g].Source, st.Groups[g].Sum.Value)
			}
		}
		bq, sq := bw.Result(med).Quantile, sw.Result(med).Quantile
		if bq == nil || sq == nil {
			t.Fatalf("window %d: quantile missing", i)
		}
		if !relClose(bq.Value, sq.Value) || !relClose(bq.Lo, sq.Lo) || !relClose(bq.Hi, sq.Hi) {
			t.Fatalf("window %d: quantile %.6f [%.6f,%.6f] vs %.6f [%.6f,%.6f]", i,
				bq.Value, bq.Lo, bq.Hi, sq.Value, sq.Lo, sq.Hi)
		}
	}
}

// TestQuantileBoundMonotoneInFraction pins the accuracy dial for order
// statistics: on a fixed seeded workload, raising the sampling fraction
// grows ζ, and the quantile's rank-CI interval — the reported bound — must
// shrink monotonically, reaching its minimum at census.
func TestQuantileBoundMonotoneInFraction(t *testing.T) {
	med := query.QuantileOf(0.5)
	fractions := []float64{0.05, 0.2, 1.0}
	widths := make([]float64, len(fractions))
	for fi, f := range fractions {
		sim, err := RunSim(SimConfig{
			Spec:       topology.Testbed(),
			Source:     microSource(9, 400),
			NewSampler: WHSFactory(),
			Cost:       EffectiveFractionBudget{Fraction: f},
			Duration:   5 * time.Second,
			Queries:    []query.Kind{query.Count, med},
			Seed:       9,
		})
		if err != nil {
			t.Fatalf("RunSim fraction %g: %v", f, err)
		}
		if len(sim.Windows) == 0 {
			t.Fatalf("fraction %g closed no windows", f)
		}
		var width float64
		var n int
		for _, w := range sim.Windows {
			qr := w.Result(med).Quantile
			if qr == nil {
				t.Fatalf("fraction %g: quantile missing", f)
			}
			if qr.Hi < qr.Lo {
				t.Fatalf("fraction %g: inverted interval [%g, %g]", f, qr.Lo, qr.Hi)
			}
			bound := w.Result(med).Bound()
			if !finite(bound) || !relClose(bound, (qr.Hi-qr.Lo)/2) {
				t.Fatalf("fraction %g: bound %g vs half-width %g", f, bound, (qr.Hi-qr.Lo)/2)
			}
			width += qr.Hi - qr.Lo
			n++
		}
		widths[fi] = width / float64(n)
	}
	for i := 1; i < len(widths); i++ {
		if widths[i] >= widths[i-1] {
			t.Fatalf("quantile interval not shrinking with fraction: %v at fractions %v", widths, fractions)
		}
	}
	if widths[len(widths)-1] <= 0 {
		t.Fatal("census interval collapsed to zero width: rank CI should stay positive")
	}
}
