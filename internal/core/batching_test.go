package core

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Batched-path equivalence suite: the hot path batches every hop — Ingester
// pushes, member polls, processor dispatch, inter-layer emits — but batching
// is a transport-level amortization, never a behavioral one. These tests run
// the same workload with batching on (the default) and with recordAtATime
// forcing the original per-record path, at every {Partitions, RootShards,
// LayerShards} combination, and require the results to agree: exact count
// invariants in processing time, bit-equal windows and LateDropped in event
// time.

// batchEquivCombos is the shard sweep shared with TestCrossModeEquivalence.
var batchEquivCombos = []struct {
	name        string
	partitions  int
	rootShards  int
	layerShards []int
}{
	{"all-ones", 1, 1, nil},
	{"partitioned-unsharded", 4, 1, nil},
	{"root-sharded", 4, 4, nil},
	{"layer-sharded", 4, 2, []int{2, 2}},
	{"fully-sharded-uneven", 8, 4, []int{4, 3}},
}

// TestBatchedProcessingTimeEquivalence sweeps the shard combos in
// processing-time mode at census budget. Wall-clock window boundaries are
// nondeterministic, so the per-window split may differ between runs — but
// the run-level invariants may not: every produced item lands in exactly one
// window (Σ EstimatedInput = Produced) and at fraction 1 the estimate is the
// truth, batched or not.
func TestBatchedProcessingTimeEquivalence(t *testing.T) {
	spec := topology.Testbed()
	const seed, items = 21, 12000
	for _, combo := range batchEquivCombos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			run := func(perRecord bool) *LiveResult {
				res, err := RunLive(LiveConfig{
					Spec:          spec,
					Source:        microSource(seed, 1000),
					NewSampler:    WHSFactory(),
					Cost:          EffectiveFractionBudget{Fraction: 1},
					Items:         items,
					Window:        30 * time.Millisecond,
					Queries:       []query.Kind{query.Sum, query.Count},
					Partitions:    combo.partitions,
					RootShards:    combo.rootShards,
					LayerShards:   combo.layerShards,
					Seed:          seed,
					recordAtATime: perRecord,
				})
				if err != nil {
					t.Fatalf("RunLive(perRecord=%v): %v", perRecord, err)
				}
				return res
			}
			batched := run(false)
			perRec := run(true)

			for _, res := range []*LiveResult{batched, perRec} {
				if res.Produced != items {
					t.Fatalf("produced %d, want %d", res.Produced, items)
				}
				assertCountInvariant(t, "census", res.EstimateCount, float64(res.Produced))
				// At census budget the sampler keeps everything with
				// weight 1: the estimate IS the truth, so any batched-path
				// loss (a dropped emit, a double flush) shows up here.
				if rel := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum; rel > crossModeTolerance {
					t.Fatalf("census sum %.6f vs truth %.6f (rel %.2e)", res.EstimateSum, res.TruthSum, rel)
				}
			}
			// Same seed, same generators: the ground truth is identical, so
			// the census estimates of the two paths must agree exactly.
			if rel := math.Abs(batched.EstimateSum-perRec.EstimateSum) / perRec.EstimateSum; rel > crossModeTolerance {
				t.Fatalf("batched sum %.6f vs per-record %.6f (rel %.2e)", batched.EstimateSum, perRec.EstimateSum, rel)
			}
			if batched.EstimateCount != perRec.EstimateCount {
				t.Fatalf("batched count %.2f vs per-record %.2f", batched.EstimateCount, perRec.EstimateCount)
			}
		})
	}
}

// pushEventBatched is pushEventRun with the shard knobs and the batching
// toggle exposed: it opens an event-time session, pushes each slot's items
// through its Ingester, and closes.
func pushEventBatched(t *testing.T, spec topology.TreeSpec, lateness time.Duration, perRecord bool, partitions, rootShards int, layerShards []int, perSlot [][]stream.Item) *LiveResult {
	t.Helper()
	s, err := OpenLive(nil, LiveConfig{
		Spec:            spec,
		NewSampler:      WHSFactory(),
		Cost:            EffectiveFractionBudget{Fraction: 1},
		Window:          10 * time.Millisecond,
		Queries:         []query.Kind{query.Sum, query.Count},
		Seed:            21,
		EventTime:       true,
		AllowedLateness: lateness,
		Partitions:      partitions,
		RootShards:      rootShards,
		LayerShards:     layerShards,
		recordAtATime:   perRecord,
	})
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	for slot, items := range perSlot {
		ing, err := s.Ingester(slot)
		if err != nil {
			t.Fatalf("Ingester(%d): %v", slot, err)
		}
		buf := append([]stream.Item(nil), items...) // Push re-stamps Pub in place
		if err := ing.Push(buf...); err != nil {
			t.Fatalf("Push slot %d: %v", slot, err)
		}
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	return res
}

// TestBatchedEventTimeEquivalence is the deterministic half of the suite:
// in event time, window boundaries come from item timestamps and the
// watermark ladder, not the wall clock. At every shard combo both paths must
// preserve the accounting identity Σ window counts + LateDropped = Produced
// (with multiple partitions, inter-layer emits can reorder across partition
// logs and legitimately drop late arrivals — a pre-existing property of
// sharded event time that batching must not change, though the exact drop
// count depends on poll interleaving). On the single-member, single-
// partition deployment — where the permutation-invariance suite already
// guarantees determinism — the batched and the per-record path must produce
// bit-identical windows: same bounds, same exact counts, same sums, zero
// late drops. A multi-record Ingester push becomes ONE broker batch whose
// watermark ladder must close exactly the windows the per-record sends
// would close.
func TestBatchedEventTimeEquivalence(t *testing.T) {
	spec := topology.Testbed() // 8 sources, 1 s windows
	const slots, perSlot = 8, 30
	span := 3 * time.Second
	items := eventItems(slots, perSlot, span)

	// Shuffle each slot once (within the full-span lateness horizon) so the
	// run exercises out-of-order ingest; both paths get the same permutation.
	rng := xrand.New(0xBA7C4)
	shuffled := make([][]stream.Item, slots)
	for s := range items {
		perm := append([]stream.Item(nil), items[s]...)
		for i := len(perm) - 1; i > 0; i-- {
			j := int(rng.Uint64() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		shuffled[s] = perm
	}

	for _, combo := range batchEquivCombos {
		combo := combo
		deterministic := combo.partitions == 1 && combo.rootShards == 1 && combo.layerShards == nil
		t.Run(combo.name, func(t *testing.T) {
			batched := pushEventBatched(t, spec, span, false, combo.partitions, combo.rootShards, combo.layerShards, shuffled)
			perRec := pushEventBatched(t, spec, span, true, combo.partitions, combo.rootShards, combo.layerShards, shuffled)

			for _, res := range []*LiveResult{batched, perRec} {
				if res.Produced != int64(slots*perSlot) {
					t.Fatalf("produced %d, want %d", res.Produced, slots*perSlot)
				}
				// Σ window counts + LateDropped = Produced, the accounting
				// identity the batched path must preserve: every item is in
				// exactly one window or counted dropped, never both, never
				// neither.
				var est float64
				for _, w := range res.Windows {
					est += w.EstimatedInput
				}
				assertCountInvariant(t, combo.name, est+float64(res.LateDropped), float64(res.Produced))
			}
			if !deterministic {
				return
			}
			if batched.LateDropped != 0 || perRec.LateDropped != 0 {
				t.Fatalf("dropped %d/%d in-horizon items on the single-member deployment", batched.LateDropped, perRec.LateDropped)
			}
			if len(batched.Windows) != len(perRec.Windows) {
				t.Fatalf("batched closed %d windows, per-record %d", len(batched.Windows), len(perRec.Windows))
			}
			for i := range perRec.Windows {
				bw, pw := batched.Windows[i], perRec.Windows[i]
				if !bw.Start.Equal(pw.Start) || !bw.End.Equal(pw.End) {
					t.Fatalf("window %d bounds batched [%v,%v) vs per-record [%v,%v)", i, bw.Start, bw.End, pw.Start, pw.End)
				}
				bc := bw.Result(query.Count).Estimate.Value
				pc := pw.Result(query.Count).Estimate.Value
				if bc != pc {
					t.Fatalf("window %d count batched %.2f vs per-record %.2f", i, bc, pc)
				}
				bs := bw.Result(query.Sum).Estimate.Value
				ps := pw.Result(query.Sum).Estimate.Value
				if rel := math.Abs(bs-ps) / math.Abs(ps); rel > crossModeTolerance {
					t.Fatalf("window %d sum batched %.6f vs per-record %.6f (rel %.2e)", i, bs, ps, rel)
				}
			}
		})
	}
}

// TestBatchedLateDroppedEquivalence pins the late-data contract on the
// batched path: stragglers pushed past the horizon inside a multi-record
// batch are dropped and counted exactly as per-record sends would drop
// them — advanceEventTime runs per message, so a watermark crossing mid-
// batch closes the same windows in both paths.
func TestBatchedLateDroppedEquivalence(t *testing.T) {
	spec := topology.Testbed()
	const slots, perSlot = 8, 24
	span := 4 * time.Second
	items := eventItems(slots, perSlot, span)

	run := func(perRecord bool) *LiveResult {
		s, err := OpenLive(nil, LiveConfig{
			Spec:            spec,
			NewSampler:      WHSFactory(),
			Cost:            EffectiveFractionBudget{Fraction: 1},
			Window:          10 * time.Millisecond,
			Queries:         []query.Kind{query.Sum, query.Count},
			Seed:            7,
			EventTime:       true,
			AllowedLateness: 0,  // a window closes the moment the watermark touches its end
			IdleTimeout:     -1, // closes are watermark-driven only
			recordAtATime:   perRecord,
		})
		if err != nil {
			t.Fatalf("OpenLive: %v", err)
		}
		for slot := range items {
			ing, err := s.Ingester(slot)
			if err != nil {
				t.Fatalf("Ingester: %v", err)
			}
			buf := append([]stream.Item(nil), items[slot]...)
			if err := ing.Push(buf...); err != nil {
				t.Fatalf("Push: %v", err)
			}
		}
		// Wait until the tree has processed most of the stream, so window 0
		// is closed territory at the leaves — the stragglers below are then
		// late by the per-record rules, and the batched path must agree.
		deadline := time.Now().Add(10 * time.Second)
		for s.Snapshot().RootProcessed < int64(3*slots*perSlot/4) && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		for slot := 0; slot < slots; slot++ {
			ing, _ := s.Ingester(slot)
			late := items[slot][0] // window 0
			late.Value = 1e9       // unmissable if it leaked into a window
			if err := ing.Push(late); err != nil {
				t.Fatalf("late push: %v", err)
			}
		}
		res, err := s.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		return res
	}

	batched := run(false)
	perRec := run(true)
	for _, res := range []*LiveResult{batched, perRec} {
		if res.LateDropped != slots {
			t.Fatalf("LateDropped = %d, want %d", res.LateDropped, slots)
		}
		if res.Produced != int64(slots*(perSlot+1)) {
			t.Fatalf("produced %d", res.Produced)
		}
		var est float64
		for _, w := range res.Windows {
			est += w.EstimatedInput
			if w.Result(query.Sum).Estimate.Value > 1e8 {
				t.Fatalf("late item leaked into window starting %v", w.Start)
			}
		}
		assertCountInvariant(t, "on-time", est, float64(slots*perSlot))
	}
	if len(batched.Windows) != len(perRec.Windows) {
		t.Fatalf("batched closed %d windows, per-record %d", len(batched.Windows), len(perRec.Windows))
	}
	for i := range perRec.Windows {
		bc := batched.Windows[i].Result(query.Count).Estimate.Value
		pc := perRec.Windows[i].Result(query.Count).Estimate.Value
		if bc != pc {
			t.Fatalf("window %d count batched %.2f vs per-record %.2f", i, bc, pc)
		}
	}
}
