package core

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/stream"
)

// This file is the event-time windowing machinery shared by the live and
// the simulated runner (the MillWheel/Dataflow model, scaled down to what
// the ApproxIoT tree needs):
//
//   - records are assigned to tumbling windows by their event timestamp
//     (Item.Ts), not by when they happen to be buffered at a ticker;
//   - every producer piggybacks a low watermark on the records it sends
//     (mq.Record.Watermark, an (origin, instant) pair) — the promise that
//     no future record of that chain carries an earlier event timestamp;
//   - every node tracks the latest watermark per upstream
//     (producer, sub-stream) chain and takes the minimum as its own
//     watermark. Producers the compiled plan expects
//     (Plan.ExpectedProducers) hold the minimum until heard from; chains
//     silent longer than the idle timeout are excluded (the wall-clock
//     ticker retained from processing-time mode plays exactly this role),
//     except end-of-stream promises, which never age;
//   - a window [s, s+W) closes once the node's watermark reaches
//     s+W+AllowedLateness; records assigned to a window that is already
//     closed are dropped and counted (LateDropped), never allowed to
//     corrupt a closed window's exact count.
//
// Closes propagate bottom-up in the order the data does, on three rules
// that together make every close complete: records are ingested BEFORE
// their piggybacked watermark is folded; outbound stamps never promise
// beyond what the sender has already forwarded (the dataWatermark /
// outboundWatermark ladder); and members re-assert liveness upstream
// (keepalives) while they hold buffered state, so a parent cannot age a
// slow-but-live child out of the minimum and close windows over its data.
// Empty windows forward zero-item heartbeat batches, so a quiet sub-stream
// does not stall its ancestors.

// eosWatermark is the end-of-stream watermark: far enough in the future to
// close every window that could ever hold data, while staying inside the
// range time.Time arithmetic in unix nanoseconds can represent.
var eosWatermark = time.Date(2200, 1, 1, 0, 0, 0, 0, time.UTC)

// eosHorizon classifies end-of-stream promises: a chain watermark within a
// year of eosWatermark can only descend from it (bound+lateness offsets
// are operational spans, nowhere near a year). Such a chain is exempt from
// the idle timeout — idleness models "more data may come, delayed", while
// end-of-stream means "done forever", and aging a finished chain out of
// the minimum would strand the windows its final flush should close.
var eosHorizon = eosWatermark.AddDate(-1, 0, 0)

// windowFloor returns the start (in unix nanoseconds) of the tumbling
// window of length w that contains the instant tsNanos.
func windowFloor(tsNanos int64, w time.Duration) int64 {
	r := tsNanos % int64(w)
	if r < 0 {
		r += int64(w)
	}
	return tsNanos - r
}

// atomicFloat64 is a float64 with atomic add/load, for counters read by
// snapshot goroutines while the owner accumulates.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat64) load() float64 { return math.Float64frombits(f.bits.Load()) }

// lateCounter accounts records dropped past the lateness horizon in both
// currencies the Σ-window-counts + late == produced identity needs: raw
// items (what physically hit the floor) and the estimated original input
// those items represent. A leaf drops weight-1 records, so the two
// coincide there; an interior node drops already-sampled batches whose
// items each stand for Batch.Weight originals, and only the weighted form
// keeps the identity exact through such a drop.
type lateCounter struct {
	items atomic.Int64
	input atomicFloat64
}

func (c *lateCounter) add(n int, weight float64) {
	c.items.Add(int64(n))
	c.input.add(weight * float64(n))
}

// closedWindow is one event-time window a node has closed: its start
// instant and the weighted sample batches that survived the node's sampler.
type closedWindow struct {
	start int64 // unix nanos of the window start
	theta []stream.Batch
}

// startTime returns the window's start as a time.Time.
func (c closedWindow) startTime() time.Time { return time.Unix(0, c.start).UTC() }

// eventWindows buckets a node's Ψ store by event-time tumbling window: one
// private sampling Node per open window, created on first assignment.
// Closing is watermark-driven and monotone — once the close bound passes a
// window start, records assigned below the bound are counted late and
// dropped. Not safe for concurrent use; owners serialize access exactly as
// they do for Node.
type eventWindows struct {
	window   time.Duration
	lateness time.Duration
	newNode  func() *Node

	open     map[int64]*Node
	bound    int64 // window starts below this are closed territory
	boundSet bool
	late     *lateCounter

	// Lifetime counters (per-window nodes are ephemeral, so the window
	// store aggregates them): observed items buffered, emitted items
	// forwarded from closed windows, and windows closed. Atomic because
	// telemetry readers (the live session's Snapshot) read them while the
	// owner ingests.
	obs, emit, wins atomic.Int64
}

func newEventWindows(window, lateness time.Duration, late *lateCounter, newNode func() *Node) *eventWindows {
	return &eventWindows{
		window:   window,
		lateness: lateness,
		newNode:  newNode,
		open:     make(map[int64]*Node),
		late:     late,
	}
}

// ingest assigns a weighted batch's items to their event-time windows,
// splitting the batch at window boundaries. Items that belong to a window
// the close bound has already passed are dropped and counted late.
func (ew *eventWindows) ingest(b stream.Batch) {
	items := b.Items
	for lo := 0; lo < len(items); {
		w := windowFloor(items[lo].Ts.UnixNano(), ew.window)
		hi := lo + 1
		for hi < len(items) && windowFloor(items[hi].Ts.UnixNano(), ew.window) == w {
			hi++
		}
		run := items[lo:hi]
		if ew.boundSet && w < ew.bound {
			ew.late.add(len(run), b.Weight)
		} else {
			n := ew.open[w]
			if n == nil {
				n = ew.newNode()
				ew.open[w] = n
			}
			// IngestBatch copies items out, so handing it a sub-slice of
			// the caller's storage is safe.
			n.IngestBatch(stream.Batch{Source: b.Source, Weight: b.Weight, Items: run})
			ew.obs.Add(int64(len(run)))
		}
		lo = hi
	}
}

// closeBoundFor returns the close bound a watermark implies: every window
// [s, s+W) with s+W+lateness ≤ wm is closeable, so the first still-open
// window start is floor(wm−W−L)+W.
func (ew *eventWindows) closeBoundFor(wm time.Time) int64 {
	cut := wm.UnixNano() - int64(ew.window) - int64(ew.lateness)
	return windowFloor(cut, ew.window) + int64(ew.window)
}

// dataWatermark returns the outbound watermark for a closed window's data
// records: start+lateness, the promise that every window BELOW start has
// been fully forwarded. It must never reach the window's own close
// threshold (start+window+lateness): that would authorize the parent to
// close this very window after the flush's FIRST record, orphaning the
// same window's remaining batches — and a whole-flush stamp at the final
// watermark would orphan every later window of the flush the same way.
// Zero (no promise) for windows at or before the unix epoch.
func (ew *eventWindows) dataWatermark(start int64) time.Time {
	v := start + int64(ew.lateness)
	if v <= 0 {
		return time.Time{}
	}
	return time.Unix(0, v).UTC()
}

// outboundWatermark is the member's honest promise to its parent: every
// window below the current close bound has been fully forwarded, so the
// parent may close exactly that far — bound+lateness maps back to the same
// bound — and not a window further. Zero (no promise yet) before the first
// advance. A member must never stamp outbound records with its *inbound*
// watermark: that can run a whole flush ahead of what the member has
// actually forwarded, and a parent trusting it closes windows whose data
// is still buffered below.
func (ew *eventWindows) outboundWatermark() time.Time {
	if !ew.boundSet {
		return time.Time{}
	}
	return time.Unix(0, ew.bound+int64(ew.lateness)).UTC()
}

// wouldAdvance reports whether advance(wm) would move the close bound —
// callers with a window-boundary obligation (draining the control topic)
// use it to act only when a close is actually imminent.
func (ew *eventWindows) wouldAdvance(wm time.Time) bool {
	if wm.IsZero() {
		return false
	}
	return !ew.boundSet || ew.closeBoundFor(wm) > ew.bound
}

// advance moves the close bound to what wm implies and closes every open
// window below it, in ascending event-time order. The bound is monotone: a
// regressing watermark (an idle source resuming with old data) closes
// nothing and cannot reopen closed territory.
func (ew *eventWindows) advance(wm time.Time) []closedWindow {
	if !ew.wouldAdvance(wm) {
		return nil
	}
	ew.bound = ew.closeBoundFor(wm)
	ew.boundSet = true
	var starts []int64
	for s := range ew.open {
		if s < ew.bound {
			starts = append(starts, s)
		}
	}
	if len(starts) == 0 {
		return nil
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]closedWindow, 0, len(starts))
	for _, s := range starts {
		n := ew.open[s]
		delete(ew.open, s)
		theta := n.CloseInterval()
		for _, b := range theta {
			ew.emit.Add(int64(len(b.Items)))
		}
		ew.wins.Add(1)
		out = append(out, closedWindow{start: s, theta: theta})
	}
	return out
}

// stats aggregates the lifetime counters across the ephemeral per-window
// nodes: items buffered into windows (late drops excluded — they are
// accounted separately), items emitted from closed windows, and windows
// closed. Safe to call from any goroutine.
func (ew *eventWindows) stats() NodeStats {
	return NodeStats{
		Observed:  ew.obs.Load(),
		Emitted:   ew.emit.Load(),
		Intervals: ew.wins.Load(),
	}
}

// buffered counts the items currently held across open windows — the
// event-time analogue of Node.Observed, feeding the live drain probe.
func (ew *eventWindows) buffered() int {
	total := 0
	for _, n := range ew.open {
		total += n.Observed()
	}
	return total
}

// chainKey identifies one producing chain's sub-stream at a node: the
// upstream producer (a source valve or a child tree node) plus the
// sub-stream it carried. Distinct chains may legitimately carry the same
// sub-stream ID — sources with identical distributions share IDs to be
// stratified together — so watermark progress must never be tracked per
// sub-stream alone: the fast chain's watermark would close windows the
// slow chain still holds data for.
type chainKey struct {
	from string
	src  stream.SourceID
}

// sourceMark is one chain's watermark state at a node.
type sourceMark struct {
	wm   time.Time // highest piggybacked watermark seen
	seen time.Time // arrival-clock instant of the last record (wall live, virtual sim)
}

// laneKey identifies one producer's record flow over one input-topic
// partition at a node. The broker's only ordering guarantee is per-partition
// FIFO, so a piggybacked watermark is a promise about the records still
// queued BEHIND it on its own lane — and nothing else. Lanes, not
// sub-streams, are therefore the unit the close bound must be floored by.
type laneKey struct {
	from string
	lane int
}

// watermarkTracker derives a node's low watermark from the watermarks
// piggybacked on arriving records, as the minimum over two complementary
// views of the same stamps:
//
//   - (producer, sub-stream) chains — the semantic view: the latest promise
//     per chain, with expectation placeholders holding the minimum for
//     producers the plan names before they are first heard;
//   - (producer, lane) floors — the transport view: the latest stamp
//     consumed per owned input partition. Per-src chains alone are unsound
//     once a topic has more than one partition: a producer's stamps for
//     sub-stream X ride X's key lane, so draining X's lane first can lift
//     the chain minimum past windows whose data for sub-stream Y is still
//     queued, unconsumed, on Y's lane. The floor for Y's lane — stuck at
//     the last stamp actually consumed off it — is exactly what per-lane
//     FIFO licenses, and holds the bound until that data is ingested.
//
// Floors exist for every known producer × owned lane (a lane the producer
// never touches holds the bound as an alive-but-unpromising placeholder
// until the idle timeout ages it out, or until the producer's terminal
// end-of-stream broadcast covers it). They activate only when an ownedFn is
// installed — single-FIFO transports (the simulator's network) need no
// floors, and their behavior is unchanged. Chains and floors share the idle
// and end-of-stream exemption rules. Not safe for concurrent use.
type watermarkTracker struct {
	idle   time.Duration
	chains map[chainKey]*sourceMark

	ownedFn func() []int // owned input partitions; nil disables lane floors
	laneSet []int        // cached owned lanes (refreshed on unknown-lane sight)
	lanes   map[laneKey]*sourceMark
	known   map[string]bool // producers whose floors have been materialized
}

func newWatermarkTracker(idle time.Duration) *watermarkTracker {
	return &watermarkTracker{
		idle:   idle,
		chains: make(map[chainKey]*sourceMark),
		lanes:  make(map[laneKey]*sourceMark),
		known:  make(map[string]bool),
	}
}

func containsLane(lanes []int, lane int) bool {
	for _, l := range lanes {
		if l == lane {
			return true
		}
	}
	return false
}

// refreshOwned installs the current owned-lane set: floors for lanes no
// longer owned are dropped (their records now flow to another member, whose
// own floors guard them) and missing floors for every known producer ×
// owned lane are materialized as placeholders aged from now.
func (t *watermarkTracker) refreshOwned(lanes []int, now time.Time) {
	t.laneSet = lanes
	for key := range t.lanes {
		if !containsLane(t.laneSet, key.lane) {
			delete(t.lanes, key)
		}
	}
	for from := range t.known {
		t.materialize(from, now)
	}
}

func (t *watermarkTracker) materialize(from string, now time.Time) {
	for _, l := range t.laneSet {
		key := laneKey{from: from, lane: l}
		if _, ok := t.lanes[key]; !ok {
			t.lanes[key] = &sourceMark{seen: now}
		}
	}
}

// ensureFrom registers one producer into the floor universe, materializing
// its per-lane placeholders across the owned set.
func (t *watermarkTracker) ensureFrom(from string, now time.Time) {
	if from == "" || t.known[from] {
		return
	}
	t.known[from] = true
	t.materialize(from, now)
}

// observeLane max-folds one consumed stamp into its (producer, lane) floor.
// Producers stamp outbound records monotonically in production order (the
// dataWatermark / outboundWatermark ladder), so per-lane FIFO guarantees
// every record still queued behind this one on the same lane carries a
// stamp at least this high — the floor is a sound per-lane close bound. A
// zero instant refreshes liveness without promising anything.
func (t *watermarkTracker) observeLane(from string, lane int, at, now time.Time) {
	if len(t.laneSet) == 0 || from == "" {
		return
	}
	t.ensureFrom(from, now)
	key := laneKey{from: from, lane: lane}
	m := t.lanes[key]
	if m == nil {
		m = &sourceMark{}
		t.lanes[key] = m
	}
	if at.After(m.wm) {
		m.wm = at
	}
	m.seen = now
}

// fold routes one record's piggybacked watermark into the tracker: the lane
// floor first (the transport-level promise the stamp actually makes), then
// the (producer, sub-stream) chain it semantically belongs to. End-of-stream
// promises resolve the producer's chains outright — the producer's floors,
// lifted lane by lane as its terminal broadcast copies are consumed, keep
// the bound below any of its data still queued on other lanes. Reports
// whether the stamp revealed a brand-new chain (callers announce those
// upstream). Consuming a record off a lane the cached owned set does not
// list re-reads the assignment — the cheap signal that a rebalance granted
// this member new partitions.
func (t *watermarkTracker) fold(wm mq.Watermark, src stream.SourceID, lane int, now time.Time) (isNew bool) {
	if t.ownedFn != nil && !containsLane(t.laneSet, lane) {
		if lanes := t.ownedFn(); lanes == nil {
			t.ownedFn = nil // context cannot report ownership; floors stay off
		} else {
			if !containsLane(lanes, lane) {
				lanes = append(lanes, lane) // mid-rebalance: trust consumption
			}
			t.refreshOwned(lanes, now)
		}
	}
	switch {
	case wm.At.IsZero():
		if wm.From != "" {
			t.observeLane(wm.From, lane, time.Time{}, now)
			t.keepalive(wm.From, now)
		}
	case !wm.At.Before(eosHorizon):
		t.observeLane(wm.From, lane, wm.At, now)
		t.resolveEOS(wm.From, now)
	default:
		t.observeLane(wm.From, lane, wm.At, now)
		isNew = t.update(wm, src, now)
	}
	return isNew
}

// expect registers a producer that is statically known (from the compiled
// plan) to feed this node before it has sent anything: a placeholder entry
// with a zero watermark that holds the node's watermark back until the
// producer's first record arrives. Without expectations a node could only
// learn of an upstream chain by hearing from it — and a sibling chain's
// watermark could close windows the unheard chain still holds data for
// (pumps race; there is no cross-producer ordering). A producer that never
// speaks (an unused source slot, a shard member owning no partitions) ages
// out through the idle timeout like any silent chain.
func (t *watermarkTracker) expect(from string, now time.Time) {
	t.ensureFrom(from, now)
	key := chainKey{from: from}
	if _, ok := t.chains[key]; !ok {
		t.chains[key] = &sourceMark{seen: now}
	}
}

// update folds one piggybacked watermark for src's chain, observed at
// arrival-clock instant now, and reports whether the chain is new to this
// tracker. Per-chain watermarks are monotone; the arrival stamp always
// refreshes (a record of any vintage proves the chain is alive). The
// producer's expectation placeholder, if any, is resolved: its real chains
// now represent it.
func (t *watermarkTracker) update(wm mq.Watermark, src stream.SourceID, now time.Time) (isNew bool) {
	t.ensureFrom(wm.From, now)
	key := chainKey{from: wm.From, src: src}
	m := t.chains[key]
	if m == nil {
		m = &sourceMark{}
		t.chains[key] = m
		isNew = true
		delete(t.chains, chainKey{from: wm.From})
	}
	if wm.At.After(m.wm) {
		m.wm = wm.At
	}
	m.seen = now
	return isNew
}

// resolveEOS resolves one producer's end of stream: every chain it owns is
// raised to the end-of-stream watermark and its expectation placeholder is
// dissolved. Folding the promise chain-by-chain instead would strand the
// drain: a sign-off for a sub-stream the member has not heard yet creates a
// chain, while the heard chains' stale marks pin the minimum below the
// windows the final flush must close. Resolving wholesale is safe because
// the producer's lane floors stay put — data still queued on another lane
// keeps its floor (and so the bound) down until it is consumed there.
func (t *watermarkTracker) resolveEOS(from string, now time.Time) {
	t.ensureFrom(from, now)
	delete(t.chains, chainKey{from: from})
	for key, m := range t.chains {
		if key.from != from {
			continue
		}
		if eosWatermark.After(m.wm) {
			m.wm = eosWatermark
		}
		m.seen = now
	}
}

// keepalive refreshes the idle clock of every chain from one producer
// without touching any watermark: the producer said "alive, nothing to
// promise yet". A producer this tracker has never heard real watermarks
// from gets (or keeps) an expectation placeholder — alive-but-unpromising
// must hold the minimum, exactly like a statically-expected producer that
// has not spoken, or a sibling's flush could close windows the producer
// is still buffering data for.
func (t *watermarkTracker) keepalive(from string, now time.Time) {
	t.ensureFrom(from, now)
	refreshed := false
	for key, m := range t.chains {
		if key.from == from {
			m.seen = now
			refreshed = true
		}
	}
	if !refreshed {
		t.chains[chainKey{from: from}] = &sourceMark{seen: now}
	}
}

// watermark returns the node's current low watermark: the minimum over
// non-idle chains, or the zero time when nothing qualifies — no data yet,
// everything idle, or an expected producer still unheard (event time then
// simply does not advance).
func (t *watermarkTracker) watermark(now time.Time) time.Time {
	wm, _ := t.watermarkState(now)
	return wm
}

// allStale reports that no chain can ever advance this watermark again
// without new input: every tracked chain has been silent past the idle
// timeout and none promises end-of-stream. Steady-state that just means
// "wait"; at quiesce, when no further input can arrive, a member in this
// state buffers windows nothing will ever close — the signal to force an
// end-of-stream drain. Never true with aging disabled (idle <= 0, where
// silence is indistinguishable from patience) or before anything was
// tracked.
func (t *watermarkTracker) allStale(now time.Time) bool {
	if t.idle <= 0 || len(t.chains) == 0 {
		return false
	}
	for _, m := range t.chains {
		if now.Sub(m.seen) <= t.idle || !m.wm.Before(eosHorizon) {
			return false
		}
	}
	for _, m := range t.lanes {
		if now.Sub(m.seen) <= t.idle || !m.wm.Before(eosHorizon) {
			return false
		}
	}
	return true
}

// watermarkState is watermark plus the reason a zero came back: blocked
// reports that a non-idle expectation placeholder is holding the node —
// as opposed to the tracker being empty or fully idle. Merging layers (the
// live root ticker) must treat a blocked member as a veto, not as a member
// with no opinion.
func (t *watermarkTracker) watermarkState(now time.Time) (wm time.Time, blocked bool) {
	var min time.Time
	take := func(m *sourceMark) bool {
		if t.idle > 0 && now.Sub(m.seen) > t.idle && m.wm.Before(eosHorizon) {
			return true // idle chain or floor: excluded from the minimum
		}
		if m.wm.IsZero() {
			return false // expected producer (or untouched lane) unheard
		}
		if min.IsZero() || m.wm.Before(min) {
			min = m.wm
		}
		return true
	}
	for _, m := range t.chains {
		if !take(m) {
			return time.Time{}, true
		}
	}
	for _, m := range t.lanes {
		if !take(m) {
			return time.Time{}, true
		}
	}
	return min, false
}

// activeSources lists the distinct sub-streams of the tracked, non-idle
// chains — the set a node must cover with data or heartbeats when it
// closes windows, so its parent's per-chain watermarks keep advancing.
// Idle chains are deliberately left out: heartbeating them would keep them
// artificially fresh upstream and re-introduce the stall the idle timeout
// exists to break.
func (t *watermarkTracker) activeSources(now time.Time) []stream.SourceID {
	seen := make(map[stream.SourceID]bool, len(t.chains))
	out := make([]stream.SourceID, 0, len(t.chains))
	for key, m := range t.chains {
		if t.idle > 0 && now.Sub(m.seen) > t.idle && m.wm.Before(eosHorizon) {
			continue
		}
		if m.wm.IsZero() {
			continue // expectation placeholder, not a sub-stream
		}
		if !seen[key.src] {
			seen[key.src] = true
			out = append(out, key.src)
		}
	}
	return out
}

// heartbeat returns a zero-item batch for src: the payload a node forwards
// to carry a watermark upstream when it has no data for a sub-stream.
// Ingesting it is a no-op everywhere; only the piggybacked watermark and
// the arrival stamp matter.
func heartbeat(src stream.SourceID) stream.Batch {
	return stream.Batch{Source: src, Weight: 1}
}
