package core

import (
	"errors"
	"testing"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/topology"
)

func testPlanConfig() PlanConfig {
	return PlanConfig{
		Spec:       topology.Testbed(),
		NewSampler: WHSFactory(),
		Cost:       EffectiveFractionBudget{Fraction: 0.5},
		Seed:       7,
	}
}

func TestCompilePlanWiring(t *testing.T) {
	plan, err := CompilePlan(testPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := plan.Spec

	// One descriptor per node, laid out by (layer, index).
	if len(plan.Layers) != len(spec.Layers) {
		t.Fatalf("plan has %d layers, spec %d", len(plan.Layers), len(spec.Layers))
	}
	for l, layer := range plan.Layers {
		if len(layer) != spec.Layers[l].Nodes {
			t.Fatalf("layer %d has %d descriptors, want %d", l, len(layer), spec.Layers[l].Nodes)
		}
		for i, d := range layer {
			if d.Layer != l || d.Index != i {
				t.Fatalf("descriptor at [%d][%d] claims (%d,%d)", l, i, d.Layer, d.Index)
			}
			if d.SamplerSeed != nodeSeed(l, i, plan.Seed) {
				t.Fatalf("node (%d,%d) seed lineage %d, want %d", l, i, d.SamplerSeed, nodeSeed(l, i, plan.Seed))
			}
		}
	}

	// Parent edges match topology.ParentIndex and point one layer up;
	// parent topics name the parent's input topic.
	for l := 0; l < plan.RootLayer(); l++ {
		for i, d := range plan.Layers[l] {
			if d.IsRoot {
				t.Fatalf("edge node (%d,%d) marked root", l, i)
			}
			wantParent := topology.ParentIndex(spec.Layers[l].Nodes, spec.Layers[l+1].Nodes, i)
			if d.ParentLayer != l+1 || d.ParentIndex != wantParent {
				t.Fatalf("node (%d,%d) parent (%d,%d), want (%d,%d)",
					l, i, d.ParentLayer, d.ParentIndex, l+1, wantParent)
			}
			if d.ParentTopic != plan.Layers[l+1][wantParent].Topic {
				t.Fatalf("node (%d,%d) parent topic %q, want %q",
					l, i, d.ParentTopic, plan.Layers[l+1][wantParent].Topic)
			}
		}
	}

	root := plan.Root()
	if !root.IsRoot || root.ParentLayer != -1 || root.ParentIndex != -1 || root.ParentTopic != "" {
		t.Fatalf("root descriptor = %+v, want terminal", root)
	}

	// Sources map onto layer 0 exactly as ParentIndex dictates.
	if len(plan.Sources) != spec.Sources {
		t.Fatalf("%d source descriptors, want %d", len(plan.Sources), spec.Sources)
	}
	for s, sd := range plan.Sources {
		want := topology.ParentIndex(spec.Sources, spec.Layers[0].Nodes, s)
		if sd.ParentIndex != want {
			t.Fatalf("source %d parent %d, want %d", s, sd.ParentIndex, want)
		}
		if sd.Topic != plan.Layers[0][want].Topic {
			t.Fatalf("source %d topic %q, want %q", s, sd.Topic, plan.Layers[0][want].Topic)
		}
	}

	// One topic per computing node plus the control topic, defaulting to
	// one partition.
	topics := plan.Topics()
	if len(topics) != spec.NodeCount()+1 {
		t.Fatalf("%d topics, want %d nodes + control", len(topics), spec.NodeCount())
	}
	seen := make(map[string]bool)
	for _, td := range topics {
		if td.Partitions != 1 {
			t.Fatalf("topic %q has %d partitions, want default 1", td.Name, td.Partitions)
		}
		if seen[td.Name] {
			t.Fatalf("duplicate topic %q", td.Name)
		}
		seen[td.Name] = true
	}
	if plan.ControlTopic == "" || !seen[plan.ControlTopic] {
		t.Fatalf("control topic %q missing from Topics()", plan.ControlTopic)
	}

	// EdgeNodes covers exactly the non-root descriptors.
	if got, want := len(plan.EdgeNodes()), spec.NodeCount()-1; got != want {
		t.Fatalf("EdgeNodes returned %d descriptors, want %d", got, want)
	}
}

func TestCompilePlanDefaultsAndErrors(t *testing.T) {
	plan, err := CompilePlan(testPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Queries) != 1 || plan.Queries[0] != query.Sum {
		t.Fatalf("default queries = %v, want [Sum]", plan.Queries)
	}
	if plan.Partitions != 1 || plan.RootShards != 1 {
		t.Fatalf("defaults Partitions=%d RootShards=%d, want 1/1", plan.Partitions, plan.RootShards)
	}

	cfg := testPlanConfig()
	cfg.NewSampler = nil
	if _, err := CompilePlan(cfg); !errors.Is(err, ErrNoSampler) {
		t.Fatalf("err = %v, want ErrNoSampler", err)
	}
	cfg = testPlanConfig()
	cfg.Cost = nil
	if _, err := CompilePlan(cfg); !errors.Is(err, ErrNoCost) {
		t.Fatalf("err = %v, want ErrNoCost", err)
	}
	cfg = testPlanConfig()
	cfg.Spec.Sources = 0
	if _, err := CompilePlan(cfg); !errors.Is(err, topology.ErrNoSources) {
		t.Fatalf("err = %v, want wrapped topology.ErrNoSources", err)
	}
	cfg = testPlanConfig()
	cfg.Partitions = -1
	if _, err := CompilePlan(cfg); !errors.Is(err, ErrNoPartitions) {
		t.Fatalf("err = %v, want ErrNoPartitions", err)
	}
	cfg = testPlanConfig()
	cfg.RootShards = -1
	if _, err := CompilePlan(cfg); !errors.Is(err, ErrNoRootShards) {
		t.Fatalf("err = %v, want ErrNoRootShards", err)
	}
	cfg = testPlanConfig()
	cfg.Partitions = 2
	cfg.RootShards = 3
	if _, err := CompilePlan(cfg); !errors.Is(err, ErrShardsExceedPartitions) {
		t.Fatalf("err = %v, want ErrShardsExceedPartitions", err)
	}
}

func TestPlanRootShardSplitsFixedBudget(t *testing.T) {
	// FixedBudget is the root's total sample cap: with N shards each shard
	// gets Size/N so the merged window never exceeds the configured cap.
	cfg := testPlanConfig()
	cfg.Cost = FixedBudget{Size: 200}
	cfg.Partitions = 4
	cfg.RootShards = 4
	plan, err := CompilePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for shard := 0; shard < 4; shard++ {
		n := plan.NewRootShard(shard)
		n.IngestItems(mkItems("a", make([]float64, 100)...))
		out := n.CloseInterval()
		var kept int
		for _, b := range out {
			kept += len(b.Items)
		}
		if kept > 50 {
			t.Fatalf("shard %d kept %d items, want ≤ 200/4", shard, kept)
		}
		total += kept
	}
	if total != 200 {
		t.Fatalf("shards kept %d items total, want the full 200 cap", total)
	}
	// An uneven cap spreads its remainder across the low shards: 10 over 3
	// shards is 4+3+3, never truncated to 3+3+3 and never zero while the
	// cap covers the shard count.
	cfg.Cost = FixedBudget{Size: 10}
	cfg.RootShards = 3
	cfg.Partitions = 3
	uneven, err := CompilePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for shard := 0; shard < 3; shard++ {
		n := uneven.NewRootShard(shard)
		n.IngestItems(mkItems("a", make([]float64, 50)...))
		var kept int
		for _, b := range n.CloseInterval() {
			kept += len(b.Items)
		}
		total += kept
	}
	if total != 10 {
		t.Fatalf("uneven shards kept %d items total, want the full 10 cap", total)
	}

	// Edge nodes and input-relative budgets are untouched by the split.
	edge := plan.NewNode(plan.Layers[0][0])
	edge.IngestItems(mkItems("a", make([]float64, 300)...))
	var kept int
	for _, b := range edge.CloseInterval() {
		kept += len(b.Items)
	}
	if kept == 0 || kept > 200 {
		t.Fatalf("edge node kept %d items, want full FixedBudget 200 cap", kept)
	}
}

func TestPlanRootShardSeedLineage(t *testing.T) {
	// Shard 0 must carry the canonical root lineage so RootShards=1 samples
	// exactly like the unsharded root; higher shards must diverge.
	plan, err := CompilePlan(testPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	root := plan.Root()
	shard0 := plan.NewRootShard(0)
	if shard0.ID() != root.ID {
		t.Fatalf("shard 0 ID %q, want root ID %q", shard0.ID(), root.ID)
	}
	shard1 := plan.NewRootShard(1)
	if shard1.ID() == shard0.ID() {
		t.Fatal("shard 1 must have its own identity")
	}
}

func TestPlanPartitionKnobsPropagate(t *testing.T) {
	cfg := testPlanConfig()
	cfg.Partitions = 8
	cfg.RootShards = 4
	plan, err := CompilePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Partitions != 8 || plan.RootShards != 4 {
		t.Fatalf("knobs = %d/%d, want 8/4", plan.Partitions, plan.RootShards)
	}
	for _, td := range plan.Topics() {
		if td.Name == plan.ControlTopic {
			// Control records need one total order across every consumer,
			// so the control topic never partitions.
			if td.Partitions != 1 {
				t.Fatalf("control topic compiled with %d partitions, want 1", td.Partitions)
			}
			continue
		}
		if td.Partitions != 8 {
			t.Fatalf("topic %q compiled with %d partitions, want 8", td.Name, td.Partitions)
		}
	}
}

func TestPlanLayerShards(t *testing.T) {
	// Defaults: every descriptor is a single-member group.
	plan, err := CompilePlan(testPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	for l, layer := range plan.Layers {
		for _, d := range layer {
			if d.Shards != 1 {
				t.Fatalf("default node (%d,%d) has %d shards, want 1", l, d.Index, d.Shards)
			}
		}
	}
	if len(plan.LayerShards) != len(plan.Spec.Layers) {
		t.Fatalf("normalized LayerShards has %d entries, want one per layer (%d)", len(plan.LayerShards), len(plan.Spec.Layers))
	}

	// Explicit per-layer counts land on the descriptors; zero entries
	// default; the root entry mirrors RootShards.
	cfg := testPlanConfig()
	cfg.Partitions = 8
	cfg.RootShards = 4
	cfg.LayerShards = []int{3, 0}
	plan, err = CompilePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 4}
	for l, layer := range plan.Layers {
		for _, d := range layer {
			if d.Shards != want[l] {
				t.Fatalf("node (%d,%d) has %d shards, want %d", l, d.Index, d.Shards, want[l])
			}
		}
	}
	if plan.LayerShards[plan.RootLayer()] != 4 {
		t.Fatalf("normalized root entry = %d, want RootShards 4", plan.LayerShards[plan.RootLayer()])
	}

	// Validation: negative entries, entries beyond the partitions, and
	// attempts to size the root layer are all rejected.
	cfg = testPlanConfig()
	cfg.LayerShards = []int{-1}
	if _, err := CompilePlan(cfg); !errors.Is(err, ErrNegativeLayerShards) {
		t.Fatalf("err = %v, want ErrNegativeLayerShards", err)
	}
	cfg = testPlanConfig()
	cfg.Partitions = 2
	cfg.LayerShards = []int{3}
	if _, err := CompilePlan(cfg); !errors.Is(err, ErrShardsExceedPartitions) {
		t.Fatalf("err = %v, want ErrShardsExceedPartitions", err)
	}
	cfg = testPlanConfig()
	cfg.Partitions = 4
	cfg.LayerShards = []int{1, 1, 2}
	if _, err := CompilePlan(cfg); !errors.Is(err, ErrLayerShardsRoot) {
		t.Fatalf("err = %v, want ErrLayerShardsRoot", err)
	}
}

func TestPlanNodeShardIdentityAndLineage(t *testing.T) {
	// Shard 0 of any node must be indistinguishable from the unsharded
	// node (canonical identity and seed lineage); members beyond 0 get
	// their own identity and a lineage that collides with no tree node's.
	cfg := testPlanConfig()
	cfg.Partitions = 4
	cfg.RootShards = 2
	cfg.LayerShards = []int{2, 2}
	plan, err := CompilePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, layer := range plan.Layers {
		for _, d := range layer {
			shard0 := plan.NewNodeShard(d, 0)
			if shard0.ID() != d.ID {
				t.Fatalf("shard 0 of %s has ID %q", d.ID, shard0.ID())
			}
			for shard := 0; shard < d.Shards; shard++ {
				id := plan.NewNodeShard(d, shard).ID()
				if seen[id] {
					t.Fatalf("duplicate member identity %q", id)
				}
				seen[id] = true
			}
		}
	}
	// Salted shard seeds collide with no node seed of any layer.
	nodeSeeds := make(map[uint64]string)
	for l, layer := range plan.Layers {
		for _, d := range layer {
			nodeSeeds[nodeSeed(l, d.Index, plan.Seed)] = d.ID
		}
	}
	for l, layer := range plan.Layers {
		for _, d := range layer {
			for shard := 1; shard < d.Shards; shard++ {
				s := nodeSeed(l, d.Index, shardSeed(plan.Seed, shard))
				if owner, ok := nodeSeeds[s]; ok {
					t.Fatalf("shard %d of %s shares seed lineage with node %s", shard, d.ID, owner)
				}
			}
		}
	}
}
