package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/topology"
)

// adaptiveLiveConfig is the paced live deployment the convergence tests
// share: long enough production (~40 ms windows over ~1.2 s) for the
// controller to walk its full bound range.
func adaptiveLiveConfig(ctl *FeedbackController) LiveConfig {
	return LiveConfig{
		Spec:       topology.Testbed(),
		Source:     microSource(9, 1000),
		NewSampler: WHSFactory(),
		Items:      40000,
		Window:     40 * time.Millisecond,
		Queries:    []query.Kind{query.Sum, query.Count},
		Seed:       9,
		Feedback:   ctl,
		SourceRate: 2000,
	}
}

// TestLiveAdaptiveStepConvergence drives the live control plane through a
// step change in the analyst's error target and asserts bounded-time
// convergence. Extreme targets pin both plateaus deterministically: a very
// lax target (0.5) decays the fraction to the lower bound; mid-run the
// target drops to effectively zero, so the controller must multiply the
// fraction up to the upper bound — one gain step per window, i.e. within
// K = ceil(log_gain(max/min)) windows of the step — and hold it there.
func TestLiveAdaptiveStepConvergence(t *testing.T) {
	const (
		minFrac = 0.01
		maxFrac = 0.8 // < 1 so the full-sample zero-bound corner stays out of play
		gain    = 1.5
		stepAt  = 8 // window index of the target change
	)
	ctl := NewFeedbackController(0.2, 0.5, WithFractionBounds(minFrac, maxFrac), WithGain(gain))
	cfg := adaptiveLiveConfig(ctl)
	var windows int
	cfg.OnWindow = func(WindowResult) {
		windows++
		if windows == stepAt {
			ctl.SetTarget(1e-9)
		}
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	assertCountInvariant(t, "adaptive step", res.EstimateCount, float64(res.Produced))

	// K MIMD steps bridge the full bound range; allow a few windows of
	// scheduler slack on top.
	K := int(math.Ceil(math.Log(maxFrac/minFrac) / math.Log(gain)))
	if len(res.Fractions) < stepAt+K+4 {
		t.Fatalf("only %d windows closed, need at least %d to observe convergence", len(res.Fractions), stepAt+K+4)
	}
	// Before the step: the lax target has the fraction pinned at the lower
	// bound (the decay from 0.2 to 0.01 takes ~7 windows).
	if f := res.Fractions[stepAt-1]; f != minFrac {
		t.Fatalf("fraction before the step = %g, want pinned at min %g (trajectory %v)", f, minFrac, res.Fractions)
	}
	// After the step: the fraction must reach the upper bound within K
	// windows (+slack) and never leave it again.
	reached := -1
	for i := stepAt; i < len(res.Fractions); i++ {
		if res.Fractions[i] == maxFrac {
			reached = i
			break
		}
	}
	if reached < 0 {
		t.Fatalf("fraction never reached max after the step: %v", res.Fractions)
	}
	if reached > stepAt+K+3 {
		t.Fatalf("fraction took %d windows to converge, want ≤ %d (trajectory %v)", reached-stepAt, K+3, res.Fractions)
	}
	for i := reached; i < len(res.Fractions); i++ {
		if res.Fractions[i] != maxFrac {
			t.Fatalf("fraction left the plateau at window %d: %v", i, res.Fractions)
		}
	}
}

// TestAdaptiveRejectsCountOnlyQueries pins the validation both runners
// share: COUNT is exact under Eq. 8 (zero-width bound), so a feedback loop
// with nothing but COUNT to observe would silently decay the fraction to
// its floor — the config is rejected instead.
func TestAdaptiveRejectsCountOnlyQueries(t *testing.T) {
	cfg := adaptiveLiveConfig(NewFeedbackController(0.1, 0.02))
	cfg.Queries = []query.Kind{query.Count}
	if _, err := RunLive(cfg); !errors.Is(err, ErrFeedbackNeedsQuery) {
		t.Fatalf("live err = %v, want ErrFeedbackNeedsQuery", err)
	}
	if _, err := RunSim(SimConfig{
		Spec:       topology.Testbed(),
		Source:     microSource(9, 250),
		NewSampler: WHSFactory(),
		Duration:   2 * time.Second,
		Queries:    []query.Kind{query.Count},
		Feedback:   NewFeedbackController(0.1, 0.02),
	}); !errors.Is(err, ErrFeedbackNeedsQuery) {
		t.Fatalf("sim err = %v, want ErrFeedbackNeedsQuery", err)
	}
	// COUNT alongside an informative kind is fine — the loop observes the
	// other kind (order irrelevant).
	cfg = adaptiveLiveConfig(NewFeedbackController(0.1, 0.02))
	cfg.Queries = []query.Kind{query.Count, query.Sum}
	cfg.Items = 4000
	cfg.SourceRate = 0
	if _, err := RunLive(cfg); err != nil {
		t.Fatalf("Count+Sum adaptive run rejected: %v", err)
	}
}

// TestLiveAdaptiveValidation pins the Feedback-over-Cost contract: a nil
// Cost is fine when a controller is installed, and the frozen-cost path
// reports no fraction trajectory.
func TestLiveAdaptiveValidation(t *testing.T) {
	ctl := NewFeedbackController(0.5, 0.05)
	cfg := adaptiveLiveConfig(ctl)
	cfg.Cost = nil // Feedback owns the budget
	cfg.Items = 4000
	cfg.SourceRate = 0 // unpaced: validation only needs one window
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive with nil Cost + Feedback: %v", err)
	}
	assertCountInvariant(t, "nil-cost adaptive", res.EstimateCount, float64(res.Produced))

	frozen, err := RunLive(liveConfig(4000, 0.5))
	if err != nil {
		t.Fatalf("RunLive frozen: %v", err)
	}
	if frozen.Fractions != nil {
		t.Fatalf("frozen-cost run recorded a fraction trajectory: %v", frozen.Fractions)
	}
	if frozen.Latency.Count() == 0 || frozen.Bandwidth.Total() == 0 || len(frozen.Nodes) == 0 {
		t.Fatal("telemetry must be populated on frozen-cost runs too")
	}
}
