package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/approxiot/approxiot/internal/checkpoint"
	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/streams"
)

// This file is the elastic-topology layer of live mode: a running deployment
// grows, shrinks, and survives member crashes without restarting.
//
//   - AddMember / RemoveMember resize one node's consumer group mid-run: the
//     broker rebalances the input topic's partitions across the new
//     membership, and — for FixedBudget deployments — the groupBudget
//     re-splits the node's total sample cap across the live members at their
//     next window boundary. Eq. 8 weight compounding is what makes this
//     coordination-free: each member's forwarded estimates stay exact at any
//     member count, so no merge barrier needs renegotiating.
//   - KillMember / RestartMember model a crash-recovery cycle: a kill
//     freezes the member dead (its group notices only at the rebalance) and
//     records the broker-committed offsets as the recovery horizon; a
//     restart rebuilds the member, restores its last checkpoint, replays the
//     committed-past-checkpoint gap from the broker's retained log, and
//     rejoins the group — without double-counting, losing items, or
//     regressing the watermark.
//   - AddEdgeNode / RemoveEdgeNode attach and drain a whole layer-0 subtree:
//     a detach stops admitting pushes, waits for the node's topic to drain,
//     flushes every member's buffered state downstream, and retires the
//     group; an attach rebuilds it with fresh member identities.
//
// Every membership change ends in postChange: the surviving members flush
// (checkpointing their state against their post-rebalance partition
// assignment) and the group's committed input offsets are snapshotted as the
// fallback replay origin for state no checkpoint covers.

// Elastic-topology errors.
var (
	// ErrUnknownNode rejects an operation naming a node ID the plan did not
	// compile.
	ErrUnknownNode = errors.New("core: unknown node")
	// ErrUnknownMember rejects an operation naming a member ID no group
	// holds (including members retired by RemoveMember/RemoveEdgeNode).
	ErrUnknownMember = errors.New("core: unknown member")
	// ErrNotEdgeNode rejects elastic operations on the root: the root group
	// merges at window close and is sized for the session's lifetime.
	ErrNotEdgeNode = errors.New("core: node is not an edge node (the root group is not elastic)")
	// ErrNotLeafNode rejects detach/attach above layer 0: an interior node's
	// input topic is fed by live children, so draining it "for good" would
	// wedge them.
	ErrNotLeafNode = errors.New("core: only layer-0 edge nodes can be detached or attached")
	// ErrLastMember rejects removing a group's only live member — a node
	// with zero members would strand its topic; detach the whole node
	// instead (RemoveEdgeNode).
	ErrLastMember = errors.New("core: cannot remove a group's last live member")
	// ErrNodeDetached rejects operations (including ingestion) on a node
	// detached by RemoveEdgeNode.
	ErrNodeDetached = errors.New("core: edge node is detached")
	// ErrNodeAttached rejects AddEdgeNode on a node that is already
	// attached.
	ErrNodeAttached = errors.New("core: edge node is already attached")
	// ErrMemberDead rejects kill/remove of a member that is not live.
	ErrMemberDead = errors.New("core: member is not running")
	// ErrMemberAlive rejects RestartMember of a member that was never
	// killed.
	ErrMemberAlive = errors.New("core: member is not killed")
	// ErrNoCheckpointStore rejects RestartMember on a session opened without
	// LiveConfig.Checkpoint: with no saved state and no recovery horizon,
	// a "restarted" member would be a silent data loss.
	ErrNoCheckpointStore = errors.New("core: RestartMember requires LiveConfig.Checkpoint")
)

// groupBudget re-splits one node's absolute FixedBudget cap across the
// group's live members, dynamically: total/n each, the remainder to the
// earliest joiners. Members join in shard order at OpenLive — which makes
// the initial shares bit-identical to the static NewNodeShardCost split —
// and rejoin at restart/add. SampleSize is consulted only at a member's
// window close, so a re-split takes effect exactly at window boundaries,
// never mid-interval, and the live shares always sum to the configured
// total (or to 0 when no member is live).
type groupBudget struct {
	mu    sync.Mutex
	total int
	order []string // live member IDs in join order
}

func newGroupBudget(total int) *groupBudget {
	return &groupBudget{total: total}
}

// join registers a member and returns its cost function. Idempotent per ID.
func (b *groupBudget) join(id string) *memberBudget {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, o := range b.order {
		if o == id {
			return &memberBudget{b: b, id: id}
		}
	}
	b.order = append(b.order, id)
	return &memberBudget{b: b, id: id}
}

// leave removes a member from the split; unknown IDs are a no-op.
func (b *groupBudget) leave(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, o := range b.order {
		if o == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

// share returns the member's current slice of the total: total/n, plus one
// for the first total%n joiners. A member that has left samples nothing.
func (b *groupBudget) share(id string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.order)
	for i, o := range b.order {
		if o == id {
			s := b.total / n
			if i < b.total%n {
				s++
			}
			return s
		}
	}
	return 0
}

// shares returns every live member's current slice, keyed by ID (tests and
// introspection).
func (b *groupBudget) shares() map[string]int {
	b.mu.Lock()
	order := append([]string(nil), b.order...)
	b.mu.Unlock()
	out := make(map[string]int, len(order))
	for _, id := range order {
		out[id] = b.share(id)
	}
	return out
}

// memberBudget is one member's view of its group's budget split.
type memberBudget struct {
	b  *groupBudget
	id string
}

var _ CostFunction = (*memberBudget)(nil)

// SampleSize implements CostFunction with the member's current share.
func (m *memberBudget) SampleSize(int) int { return m.b.share(m.id) }

// MemberState describes one consumer-group member for introspection.
type MemberState struct {
	// ID is the member's identity — telemetry key, watermark chain origin,
	// and checkpoint key.
	ID string
	// Shard is the member's shard index (fixes its seed lineage).
	Shard int
	// State is "live", "killed" (restartable), or "removed" (retired).
	State string
}

// EdgeNodeIDs lists the IDs of every edge node, bottom-up in (layer, node)
// order — the handles AddMember / RemoveEdgeNode and friends accept.
func (s *LiveSession) EdgeNodeIDs() []string {
	descs := s.plan.EdgeNodes()
	out := make([]string, len(descs))
	for i, d := range descs {
		out[i] = d.ID
	}
	return out
}

// GroupMembers reports the membership of one node's consumer group,
// retired and killed members included, in join order.
func (s *LiveSession) GroupMembers(nodeID string) ([]MemberState, error) {
	g, ok := s.groupByID[nodeID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, nodeID)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]MemberState, 0, len(g.members))
	for _, m := range g.members {
		st := "live"
		switch {
		case m.removed:
			st = "removed"
		case m.dead:
			st = "killed"
		}
		out = append(out, MemberState{ID: m.id, Shard: m.shard, State: st})
	}
	return out, nil
}

// edgeGroup resolves a node ID to its (non-root, attached-or-not) group.
func (s *LiveSession) edgeGroup(nodeID string) (*shardGroup, error) {
	g, ok := s.groupByID[nodeID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, nodeID)
	}
	if g.desc.IsRoot {
		return nil, ErrNotEdgeNode
	}
	return g, nil
}

// findMember locates a member by ID across the edge groups.
func (s *LiveSession) findMember(id string) (*shardGroup, *groupMember) {
	for _, g := range s.groups {
		if g.desc.IsRoot {
			continue
		}
		g.mu.Lock()
		for _, m := range g.members {
			if m.id == id {
				g.mu.Unlock()
				return g, m
			}
		}
		g.mu.Unlock()
	}
	return nil, nil
}

// AddMember grows nodeID's consumer group by one mid-run: a fresh member —
// new shard index, new salted seed lineage, new identity — is built with
// exactly the wiring OpenLive used, started (the broker rebalances the
// input topic's partitions across the enlarged group), and the membership
// barrier flushes the group so FixedBudget re-splits land at the next
// window boundary. Returns the new member's ID. The group cannot grow past
// the topic's partition count (the surplus member would own nothing).
func (s *LiveSession) AddMember(nodeID string) (string, error) {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if err := s.ingestAllowed(); err != nil {
		return "", err
	}
	g, err := s.edgeGroup(nodeID)
	if err != nil {
		return "", err
	}
	if g.isDetached() {
		return "", fmt.Errorf("%w: %q", ErrNodeDetached, nodeID)
	}
	if g.liveCount() >= s.plan.Partitions {
		return "", fmt.Errorf("%w: %q already has %d members over %d partitions",
			ErrShardsExceedPartitions, nodeID, g.liveCount(), s.plan.Partitions)
	}
	g.mu.Lock()
	shard := g.nextShard
	g.nextShard++
	g.mu.Unlock()
	m, err := g.build(shard)
	if err != nil {
		if g.budget != nil {
			g.budget.leave(memberID(g.desc, shard))
		}
		return "", err
	}
	if err := m.rt.Start(); err != nil {
		if g.budget != nil {
			g.budget.leave(m.id)
		}
		_ = m.rt.Stop()
		return "", err
	}
	g.mu.Lock()
	g.members = append(g.members, m)
	g.mu.Unlock()
	return m.id, s.postChange(g)
}

// RemoveMember gracefully shrinks nodeID's consumer group by one: the
// newest live member is frozen, everything it still buffers is flushed
// downstream (a rescale is a window boundary — processing-time Ψ closes
// early, event-time windows close at end-of-stream with honest per-window
// watermark stamps and the member signs its chains off), and the member
// leaves the group — its partitions rebalance to the survivors, who resume
// at its committed offsets. Nothing is lost and nothing needs replaying.
// Returns the removed member's ID; a group keeps at least one live member
// (ErrLastMember — detach the whole node instead).
func (s *LiveSession) RemoveMember(nodeID string) (string, error) {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if err := s.ingestAllowed(); err != nil {
		return "", err
	}
	g, err := s.edgeGroup(nodeID)
	if err != nil {
		return "", err
	}
	if g.isDetached() {
		return "", fmt.Errorf("%w: %q", ErrNodeDetached, nodeID)
	}
	live := g.live()
	if len(live) <= 1 {
		return "", fmt.Errorf("%w: %q", ErrLastMember, nodeID)
	}
	m := live[len(live)-1]
	s.retireMember(g, m)
	return m.id, s.postChange(g)
}

// retireMember runs the graceful-exit protocol on one member: mark retired
// (probes skip it), freeze the pump, flush all buffered state downstream,
// leave the group (rebalance), leave the budget split, and drop the
// member's checkpoint — its identity is never reused. Callers hold elMu.
func (s *LiveSession) retireMember(g *shardGroup, m *groupMember) {
	g.mu.Lock()
	m.removed = true
	g.mu.Unlock()
	m.rt.Freeze()
	if m.proc != nil {
		m.proc.drainAll(time.Now())
	}
	_ = m.rt.Stop()
	if g.budget != nil {
		g.budget.leave(m.id)
	}
	if s.cfg.Checkpoint != nil {
		_ = s.cfg.Checkpoint.Delete(m.id)
	}
}

// KillMember crashes a live member: the pump freezes dead mid-flight —
// buffered Ψ, open windows, and unforwarded state die with it, exactly as
// "kill -9" would take them — and the broker-committed offsets at the kill
// instant are recorded as the recovery horizon before the member leaves its
// group (the rebalance hands its partitions to the survivors, who resume at
// those offsets — gap records stay the dead member's exclusively). Without
// a checkpoint store the kill still works — crashes don't ask permission —
// but the dead state is unrecoverable and the deployment's window counts
// stay short by whatever the victim held.
func (s *LiveSession) KillMember(id string) error {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if err := s.ingestAllowed(); err != nil {
		return err
	}
	g, m := s.findMember(id)
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	if !m.live() {
		return fmt.Errorf("%w: %q", ErrMemberDead, id)
	}
	g.mu.Lock()
	m.dead = true
	g.mu.Unlock()
	m.rt.Freeze()
	// The recovery horizon must be what the BROKER remembers about the dead
	// member — its committed offsets — not anything read out of the corpse:
	// a real crash leaves no corpse to read.
	m.killedOffsets = m.rt.SourceCommitted()
	m.killedChangeOffs = g.changeOffsetsSnapshot()
	_ = m.rt.Stop()
	if g.budget != nil {
		g.budget.leave(m.id)
	}
	return s.postChange(g)
}

// RestartMember resurrects a killed member: a fresh member is rebuilt for
// the same shard (same ID, same seed lineage), its last checkpoint is
// loaded and verified — a corrupt blob fails the restart with the member
// still restartable — and recovery runs inside the new runtime's Init,
// after its consumer joins the group but before the pump starts: restore
// the checkpointed reservoir, watermark chains, and counters, then replay
// the records the dead member committed past its last checkpoint from the
// broker's retained log. Replay re-ingests without forwarding and without
// re-counting side effects the dead member already charged (late drops,
// decode errors): the restored close bound equals the bound at death —
// checkpoints are taken at every cut where output was forwarded — so
// replay classifies every gap record exactly as the dead member did, and
// the member resumes bit-honest: no double counts, no losses, watermark
// monotone.
func (s *LiveSession) RestartMember(id string) error {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if err := s.ingestAllowed(); err != nil {
		return err
	}
	g, m := s.findMember(id)
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	if m.removed {
		return fmt.Errorf("%w: %q was removed", ErrUnknownMember, id)
	}
	if !m.dead {
		return fmt.Errorf("%w: %q", ErrMemberAlive, id)
	}
	if s.cfg.Checkpoint == nil {
		return ErrNoCheckpointStore
	}
	// Load and fully decode the checkpoint BEFORE anything joins the group:
	// a corrupt blob must fail fast, leaving the dead member restartable
	// (against a repaired store) and the group untouched.
	var ck *memberCkpt
	raw, err := s.cfg.Checkpoint.Load(id)
	switch {
	case err == nil:
		if ck, err = decodeMemberCheckpoint(raw); err != nil {
			return fmt.Errorf("core: restart %q: %w", id, err)
		}
		if ck.eventTime != s.cfg.EventTime {
			return fmt.Errorf("core: restart %q: %w: checkpoint mode mismatch", id, checkpoint.ErrCorrupt)
		}
	case errors.Is(err, checkpoint.ErrNotFound):
		ck = nil // fresh state; replay from the last membership barrier
	default:
		return fmt.Errorf("core: restart %q: %w", id, err)
	}
	killed := m.killedOffsets
	changeOffs := m.killedChangeOffs
	nm, err := g.build(m.shard)
	if err != nil {
		if g.budget != nil {
			g.budget.leave(id)
		}
		return err
	}
	nm.proc.recover = func(p *samplingProcessor, _ streams.ProcessorContext) error {
		if ck != nil {
			p.restoreCheckpoint(ck, time.Now())
		}
		return s.replayGap(p, g.desc, ck, killed, changeOffs)
	}
	if err := nm.rt.Start(); err != nil {
		// Init (and with it recovery) failed: the dead member stays dead
		// and restartable.
		if g.budget != nil {
			g.budget.leave(id)
		}
		_ = nm.rt.Stop()
		return err
	}
	g.mu.Lock()
	for i, cur := range g.members {
		if cur == m {
			g.members[i] = nm // same ID: telemetry continuity via the restore
			break
		}
	}
	g.mu.Unlock()
	return s.postChange(g)
}

// replayGap re-ingests the records a dead member committed past after its
// last checkpoint: [checkpoint offset, kill offset) per partition it owned
// at death, with the group's last membership-barrier offsets standing in
// for partitions the checkpoint does not cover (no checkpoint at all, or a
// save failure between barriers). The gap is the dead member's exclusively
// — survivors resumed at the kill offsets — so replaying it exactly once
// restores the state lost between the checkpoint and the crash. Nothing is
// forwarded and no side effect the dead member already charged to session
// counters (late drops, decode errors) is re-counted; the first regular
// cycle after the restart advances and forwards from the rebuilt state.
func (s *LiveSession) replayGap(p *samplingProcessor, desc NodeDesc, ck *memberCkpt, killed []streams.PartitionOffset, changeOffs []int64) error {
	defer func() {
		if p.ew != nil {
			p.pending.Store(int64(p.ew.buffered()))
		} else if p.node != nil {
			p.pending.Store(int64(p.node.Observed()))
		}
	}()
	if len(killed) == 0 {
		return nil
	}
	ckptOffs := make(map[int]int64, len(killed))
	if ck != nil {
		for _, po := range ck.offsets {
			ckptOffs[po.Partition] = po.Offset
		}
	}
	if p.ew != nil {
		// Replay lates were already counted by the dead member — the
		// restored bound equals the bound at death, so replay classifies
		// identically — and must not be double-charged to the session.
		var throwaway lateCounter
		orig := p.ew.late
		p.ew.late = &throwaway
		defer func() { p.ew.late = orig }()
	}
	now := time.Now()
	var buf []mq.Record
	var scratch stream.Batch
	var err error
	for _, po := range killed {
		start := int64(0)
		if po.Partition < len(changeOffs) {
			start = changeOffs[po.Partition]
		}
		if o, ok := ckptOffs[po.Partition]; ok {
			start = o
		}
		for off := start; off < po.Offset; {
			buf, err = s.bus.FetchInto(buf[:0], desc.Topic, po.Partition, off, 256)
			if err != nil {
				// ErrOutOfRange here means the broker compacted the gap away
				// — the retained log no longer reaches back to the
				// checkpoint. Recovery cannot be honest; fail the restart.
				return fmt.Errorf("core: replay %s partition %d offset %d: %w", desc.ID, po.Partition, off, err)
			}
			if len(buf) == 0 {
				break // defensive: below the high watermark this cannot happen
			}
			for i := range buf {
				rec := &buf[i]
				if rec.Offset >= po.Offset {
					// Records past the kill horizon belong to the survivors.
					off = po.Offset
					break
				}
				off = rec.Offset + 1
				if stream.UnmarshalBatchInto(&scratch, rec.Value) != nil {
					continue // already counted into DecodeErrors by the dead member
				}
				if p.ew != nil {
					p.ew.ingest(scratch)
					// Fold the piggybacked watermark lanewise — the same
					// per-lane floor rule the live path applies, so replayed
					// end-of-stream copies lift exactly the lanes they rode —
					// but never announce (the dead member announced this
					// chain when it first heard it) and never advance
					// (replay rebuilds buffered state only).
					p.wt.fold(rec.Watermark, scratch.Source, rec.Partition, now)
				} else {
					p.node.IngestBatch(scratch)
				}
			}
		}
	}
	return nil
}

// RemoveEdgeNode detaches a whole layer-0 node from the running tree: the
// session stops admitting pushes for its source slots (ErrNodeDetached),
// waits for the node's input topic to drain (bounded by DrainTimeout), then
// retires every member — freeze, flush all buffered state downstream (in
// event-time mode the members close their windows at end-of-stream and sign
// their watermark chains off, so the parent's minimum releases in-band
// instead of waiting out the idle timeout), stop. The node's topology slot
// survives: AddEdgeNode rebuilds the group later. Only layer-0 nodes
// detach — an interior node's topic is fed by live children.
func (s *LiveSession) RemoveEdgeNode(nodeID string) error {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if err := s.ingestAllowed(); err != nil {
		return err
	}
	g, err := s.edgeGroup(nodeID)
	if err != nil {
		return err
	}
	if g.desc.Layer != 0 {
		return fmt.Errorf("%w: %q is layer %d", ErrNotLeafNode, nodeID, g.desc.Layer)
	}
	if g.isDetached() {
		return fmt.Errorf("%w: %q", ErrNodeDetached, nodeID)
	}
	// 1. Stop admitting: set the flag, then fence — taking the push barrier
	// for writing waits out every push admitted before the flag, so after
	// this line no new record can land in the node's topic.
	g.mu.Lock()
	g.detached = true
	g.mu.Unlock()
	s.pushMu.Lock()
	s.pushMu.Unlock() //nolint:staticcheck // empty critical section IS the fence
	// 2. Wait for the members to consume what was already admitted: records
	// stranded in the topic after the members stop would break the
	// invariant (pushed and counted, never processed).
	undo := func(cause error) error {
		g.mu.Lock()
		g.detached = false
		g.mu.Unlock()
		return cause
	}
	var deadline time.Time
	if s.cfg.DrainTimeout > 0 {
		deadline = time.Now().Add(s.cfg.DrainTimeout)
	}
	for g.lag() > 0 || g.busy() {
		if s.ctx.Err() != nil {
			return undo(ErrSessionClosed)
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return undo(ErrDrainTimeout)
		}
		wait := s.cfg.Window / 8
		if wait <= 0 {
			wait = time.Millisecond
		}
		select {
		case <-s.ctx.Done():
			return undo(ErrSessionClosed)
		case <-time.After(wait):
		}
	}
	// Wait for pending == 0 too? No: pending is buffered Ψ awaiting a
	// window flush, and in event-time mode nothing flushes it until the
	// watermark moves — which it never will again, the topic being fenced.
	// retireMember's drainAll flushes it downstream explicitly instead.
	// 3. Retire every member.
	live := g.live()
	for _, m := range live {
		s.retireMember(g, m)
	}
	g.mu.Lock()
	g.detachedCount = len(live)
	g.mu.Unlock()
	return nil
}

// AddEdgeNode re-attaches a node detached by RemoveEdgeNode: the group is
// rebuilt at its pre-detach size with entirely fresh members — continuing
// shard indices, so new identities and new salted seed lineages — started,
// and the membership barrier re-baselines the group's offsets. Pushes for
// the node's source slots are admitted again from the moment it returns.
func (s *LiveSession) AddEdgeNode(nodeID string) error {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if err := s.ingestAllowed(); err != nil {
		return err
	}
	g, err := s.edgeGroup(nodeID)
	if err != nil {
		return err
	}
	if g.desc.Layer != 0 {
		return fmt.Errorf("%w: %q is layer %d", ErrNotLeafNode, nodeID, g.desc.Layer)
	}
	if !g.isDetached() {
		return fmt.Errorf("%w: %q", ErrNodeAttached, nodeID)
	}
	g.mu.Lock()
	count := g.detachedCount
	g.mu.Unlock()
	if count <= 0 {
		count = 1
	}
	added := make([]*groupMember, 0, count)
	abort := func(cause error) error {
		for i := len(added) - 1; i >= 0; i-- {
			_ = added[i].rt.Stop()
			if g.budget != nil {
				g.budget.leave(added[i].id)
			}
		}
		return cause
	}
	for i := 0; i < count; i++ {
		g.mu.Lock()
		shard := g.nextShard
		g.nextShard++
		g.mu.Unlock()
		m, err := g.build(shard)
		if err != nil {
			if g.budget != nil {
				g.budget.leave(memberID(g.desc, shard))
			}
			return abort(err)
		}
		added = append(added, m)
	}
	for _, m := range added {
		if err := m.rt.Start(); err != nil {
			return abort(err)
		}
	}
	g.mu.Lock()
	g.members = append(g.members, added...)
	g.detached = false
	g.mu.Unlock()
	return s.postChange(g)
}

// postChange is the membership barrier every elastic operation ends with:
// each surviving member flushes on its own pump goroutine — forwarding due
// windows and saving a checkpoint that covers its post-rebalance partition
// assignment — and the group's committed input offsets are then snapshotted
// as the fallback replay origin for any state a later crash's checkpoint
// does not cover. A member that stops between the mutation and the barrier
// (concurrent shutdown) is skipped: the barrier is best-effort on a dying
// session, whose final result no longer depends on it.
func (s *LiveSession) postChange(g *shardGroup) error {
	for _, m := range g.live() {
		if m.proc == nil {
			continue
		}
		proc := m.proc
		_ = m.rt.Sync(func() { proc.flush() })
	}
	offs, err := s.bus.GroupCommitted(g.desc.Topic, g.desc.ID+"-in")
	if err != nil {
		return nil // topic or group gone: session shutting down
	}
	g.mu.Lock()
	g.changeOffsets = offs
	g.mu.Unlock()
	return nil
}
