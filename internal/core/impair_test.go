package core

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
)

// TestSimJitterPreservesInvariant: out-of-order delivery (WAN jitter) must
// not break the count invariant — batches land in whatever interval they
// arrive in, and Eq. 8 holds per pair regardless.
func TestSimJitterPreservesInvariant(t *testing.T) {
	cfg := testbedConfig(0.3)
	cfg.LinkJitter = 150 * time.Millisecond // larger than a chunk: reorders
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim with jitter: %v", err)
	}
	gotCount := res.TotalEstimate(query.Count)
	if rel := math.Abs(gotCount-float64(res.Generated)) / float64(res.Generated); rel > 1e-9 {
		t.Fatalf("jitter broke Eq. 8: %g vs %d", gotCount, res.Generated)
	}
	if loss := res.AccuracyLoss(query.Sum); loss > 0.05 {
		t.Fatalf("jitter degraded accuracy to %.3f", loss)
	}
}

// TestSimPacketLossDegradesGracefully: lost batches reduce the estimate
// proportionally; the system neither stalls nor panics, and the remaining
// estimate is still in the right ballpark.
func TestSimPacketLossDegradesGracefully(t *testing.T) {
	cfg := testbedConfig(0.5)
	cfg.LinkLoss = 0.1
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim with loss: %v", err)
	}
	gotCount := res.TotalEstimate(query.Count)
	ratio := gotCount / float64(res.Generated)
	// Loss applies per hop (3 hops): survival ≈ 0.9³ ≈ 0.73. Edge batches
	// are fewer and larger than source chunks, so the realized ratio has
	// wide variance; it must land strictly between "everything" and
	// "almost nothing".
	if ratio >= 1 || ratio < 0.4 {
		t.Fatalf("estimated/generated = %.3f under 10%% loss, want in [0.4, 1)", ratio)
	}
	if len(res.Windows) == 0 {
		t.Fatal("pipeline stalled under loss")
	}
}

// TestSimLossAndFailureCombined stacks impairments: a crashed edge node plus
// lossy links. The run must still complete with sane output.
func TestSimLossAndFailureCombined(t *testing.T) {
	cfg := testbedConfig(0.5)
	cfg.LinkLoss = 0.05
	cfg.LinkJitter = 20 * time.Millisecond
	cfg.Failures = []Failure{{Layer: 1, Node: 0, At: 2 * time.Second, For: time.Second}}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim with combined impairments: %v", err)
	}
	if res.Generated == 0 || len(res.Windows) == 0 {
		t.Fatal("no output under combined impairments")
	}
	got := res.TotalEstimate(query.Count)
	if got <= 0 || got >= float64(res.Generated) {
		t.Fatalf("estimated count %.0f of %d implausible", got, res.Generated)
	}
}

// TestSimJitterDeterministic: impairments are seeded, so impaired runs are
// still exactly reproducible.
func TestSimJitterDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := testbedConfig(0.3)
		cfg.LinkJitter = 30 * time.Millisecond
		cfg.LinkLoss = 0.02
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalEstimate(query.Sum)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("impaired runs differ: %g vs %g", a, b)
	}
}
