package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/approxiot/approxiot/internal/checkpoint"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/streams"
)

// This file is the member checkpoint codec: the serialized recovery state of
// one edge shard-group member, written by samplingProcessor.saveCheckpoint at
// punctuation-time flush (where committed consumer offsets and ingested items
// coincide exactly — never mid-batch) and restored by a replacement member
// before it replays the offset gap from the broker's retained log.
//
// The blob is self-contained: consumer offsets for every owned partition, the
// member's lifetime counters, and the full Ψ state — carried sub-stream
// weights plus buffered weighted batches in processing-time mode; the close
// bound, watermark chains, and every open event window in event-time mode.
// Sampler RNG state is deliberately NOT serialized: a restarted member is a
// new member of the statistical population (the estimate stays unbiased by
// Eq. 8 weighting, which is what the invariant checks), exactly as a
// replacement Kafka Streams instance would re-seed its task state.

// ckptVersion is the blob format version; a mismatch is corruption (the
// store's job is integrity, the codec's job is meaning).
const ckptVersion = 1

// memberCkpt is a decoded member checkpoint, ready to restore.
type memberCkpt struct {
	eventTime bool
	offsets   []streams.PartitionOffset
	stats     NodeStats

	// Processing-time mode: the member's single interval store.
	weights map[stream.SourceID]float64
	psi     []stream.Batch

	// Event-time mode: close bound, watermark chains, open windows.
	bound    int64
	boundSet bool
	chains   []ckptChain
	windows  []ckptWindow
}

// ckptChain is one serialized watermark chain: the producing origin, the
// sub-stream, and the chain's low watermark (0 = expectation placeholder,
// still unheard). The arrival clock (seen) is NOT serialized — a restored
// chain is stamped with the restore instant, so a chain idle across the
// crash ages out on the survivor's schedule, not retroactively.
type ckptChain struct {
	from string
	src  stream.SourceID
	wm   int64 // unix nanos; 0 = zero time
}

// ckptWindow is one serialized open event window.
type ckptWindow struct {
	start   int64
	weights map[stream.SourceID]float64
	psi     []stream.Batch
}

// encodeMemberCheckpoint serializes the member's full recovery state onto
// dst. Runs on the member's pump goroutine (flush / Sync barrier), where the
// processor state is quiescent and offs reflects every ingested record.
func encodeMemberCheckpoint(dst []byte, p *samplingProcessor, offs []streams.PartitionOffset) []byte {
	dst = append(dst, ckptVersion)
	mode := byte(0)
	if p.ew != nil {
		mode = 1
	}
	dst = append(dst, mode)
	dst = binary.AppendUvarint(dst, uint64(len(offs)))
	for _, po := range offs {
		dst = binary.AppendUvarint(dst, uint64(po.Partition))
		dst = binary.AppendUvarint(dst, uint64(po.Offset))
	}
	st := p.stats()
	dst = binary.AppendUvarint(dst, uint64(st.Observed))
	dst = binary.AppendUvarint(dst, uint64(st.Emitted))
	dst = binary.AppendUvarint(dst, uint64(st.Intervals))
	if p.ew == nil {
		return appendNodeSection(dst, p.node)
	}
	ew, wt := p.ew, p.wt
	if ew.boundSet {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendVarint(dst, ew.bound)
	dst = binary.AppendUvarint(dst, uint64(len(wt.chains)))
	for key, m := range wt.chains {
		dst = appendCkptString(dst, key.from)
		dst = appendCkptString(dst, string(key.src))
		var wm int64
		if !m.wm.IsZero() {
			wm = m.wm.UnixNano()
		}
		dst = binary.AppendVarint(dst, wm)
	}
	dst = binary.AppendUvarint(dst, uint64(len(ew.open)))
	for start, n := range ew.open {
		dst = binary.AppendVarint(dst, start)
		dst = appendNodeSection(dst, n)
	}
	return dst
}

// appendNodeSection serializes one sampling node's interval state: the
// carried W^in per sub-stream, then the buffered Ψ batches (lineage order —
// addPair reconstructs the lineage index on restore).
func appendNodeSection(dst []byte, n *Node) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(n.weights)))
	for src, w := range n.weights {
		dst = appendCkptString(dst, string(src))
		dst = binary.AppendUvarint(dst, math.Float64bits(w))
	}
	dst = binary.AppendUvarint(dst, uint64(len(n.psi)))
	for _, b := range n.psi {
		dst = binary.AppendUvarint(dst, uint64(b.WireSize()))
		dst = b.AppendMarshal(dst)
	}
	return dst
}

func appendCkptString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// errCkptDecode wraps every decode failure in checkpoint.ErrCorrupt: a blob
// that passed the store's integrity check but does not parse is damaged
// state all the same, and restoring a half-read Ψ would silently break the
// count invariant the checkpoint exists to protect.
func errCkptDecode(what string) error {
	return fmt.Errorf("%w: checkpoint %s", checkpoint.ErrCorrupt, what)
}

// ckptReader is a cursor over a checkpoint blob; the first failure sticks.
type ckptReader struct {
	data []byte
	off  int
	err  error
}

func (r *ckptReader) fail(what string) {
	if r.err == nil {
		r.err = errCkptDecode(what)
	}
}

func (r *ckptReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("truncated")
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *ckptReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *ckptReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length and sanity-bounds it against the bytes
// remaining (each element costs ≥ 1 byte), so a corrupt length cannot drive
// a multi-gigabyte allocation before the truncation is discovered.
func (r *ckptReader) count() int {
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.data)-r.off) {
		r.fail("impossible count")
		return 0
	}
	return int(n)
}

func (r *ckptReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("truncated string")
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *ckptReader) batch() stream.Batch {
	n := r.uvarint()
	if r.err != nil {
		return stream.Batch{}
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("truncated batch")
		return stream.Batch{}
	}
	b, err := stream.UnmarshalBatch(r.data[r.off : r.off+int(n)])
	if err != nil {
		r.fail("bad batch payload")
		return stream.Batch{}
	}
	r.off += int(n)
	return b
}

func (r *ckptReader) nodeSection() (map[stream.SourceID]float64, []stream.Batch) {
	weights := make(map[stream.SourceID]float64)
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		src := stream.SourceID(r.str())
		w := math.Float64frombits(r.uvarint())
		if r.err == nil {
			weights[src] = w
		}
	}
	var psi []stream.Batch
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		b := r.batch()
		if r.err == nil {
			psi = append(psi, b)
		}
	}
	return weights, psi
}

// decodeMemberCheckpoint parses a checkpoint blob. Any malformation —
// truncation, a bad count, an undecodable batch — surfaces as
// checkpoint.ErrCorrupt so recovery refuses the blob instead of restoring
// partial state.
func decodeMemberCheckpoint(raw []byte) (*memberCkpt, error) {
	r := &ckptReader{data: raw}
	if v := r.u8(); r.err == nil && v != ckptVersion {
		return nil, errCkptDecode(fmt.Sprintf("version %d", v))
	}
	mode := r.u8()
	if r.err == nil && mode > 1 {
		return nil, errCkptDecode("unknown mode")
	}
	ck := &memberCkpt{eventTime: mode == 1}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		po := streams.PartitionOffset{
			Partition: int(r.uvarint()),
			Offset:    int64(r.uvarint()),
		}
		if r.err == nil {
			ck.offsets = append(ck.offsets, po)
		}
	}
	ck.stats = NodeStats{
		Observed:  int64(r.uvarint()),
		Emitted:   int64(r.uvarint()),
		Intervals: int64(r.uvarint()),
	}
	if !ck.eventTime {
		ck.weights, ck.psi = r.nodeSection()
		if r.err != nil {
			return nil, r.err
		}
		return ck, nil
	}
	ck.boundSet = r.u8() != 0
	ck.bound = r.varint()
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		c := ckptChain{from: r.str(), src: stream.SourceID(r.str()), wm: r.varint()}
		if r.err == nil {
			ck.chains = append(ck.chains, c)
		}
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		w := ckptWindow{start: r.varint()}
		w.weights, w.psi = r.nodeSection()
		if r.err == nil {
			ck.windows = append(ck.windows, w)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return ck, nil
}

// restoreState rebuilds a node's interval state from a checkpoint's node
// section. Ψ batches are re-ingested through addPair so the lineage index is
// reconstructed, then the serialized weight map is applied on top (the
// carried W^in at checkpoint time wins over whatever the psi replay set),
// and finally the lifetime counters are overwritten with the checkpointed
// values — addPair inflated them as a side effect of the rebuild.
func (n *Node) restoreState(weights map[stream.SourceID]float64, psi []stream.Batch, st NodeStats) {
	for _, b := range psi {
		n.addPair(b.Source, b.Weight, b.Items)
	}
	for src, w := range weights {
		n.weights.Set(src, w)
	}
	n.totalObserved.Store(st.Observed)
	n.totalEmitted.Store(st.Emitted)
	n.intervals.Store(st.Intervals)
}

// restoreCheckpoint installs a decoded checkpoint into a freshly-built
// member processor, before its pump starts and before the offset-gap replay.
// now stamps every restored watermark chain's arrival clock: the crash span
// must not count against a chain's idle timeout retroactively.
func (p *samplingProcessor) restoreCheckpoint(ck *memberCkpt, now time.Time) {
	if p.ew == nil {
		p.node.restoreState(ck.weights, ck.psi, ck.stats)
		p.pending.Store(int64(p.node.Observed()))
		return
	}
	p.ew.bound = ck.bound
	p.ew.boundSet = ck.boundSet
	for _, w := range ck.windows {
		n := p.ew.newNode()
		// Per-window nodes are ephemeral; their lifetime counters are
		// irrelevant (ew aggregates), so restore with zero stats.
		n.restoreState(w.weights, w.psi, NodeStats{})
		p.ew.open[w.start] = n
	}
	p.ew.obs.Store(ck.stats.Observed)
	p.ew.emit.Store(ck.stats.Emitted)
	p.ew.wins.Store(ck.stats.Intervals)
	// Rebuild the chain map over whatever expectations Init registered: a
	// serialized chain (placeholder included) supersedes the static
	// expectation for the same origin.
	for _, c := range ck.chains {
		key := chainKey{from: c.from, src: c.src}
		var wm time.Time
		if c.wm != 0 {
			wm = time.Unix(0, c.wm).UTC()
		}
		if !wm.IsZero() {
			// A real chain resolves the origin's expectation placeholder,
			// exactly as watermarkTracker.update would have.
			delete(p.wt.chains, chainKey{from: c.from})
		}
		p.wt.chains[key] = &sourceMark{wm: wm, seen: now}
	}
	p.pending.Store(int64(p.ew.buffered()))
}
