package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/checkpoint"
	"github.com/approxiot/approxiot/internal/metrics"
	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/streams"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/transport"
	"github.com/approxiot/approxiot/internal/workload"
)

// LiveConfig describes a live-mode deployment: the tree is instantiated as
// real goroutines — every compiled node runs as a consumer group of one or
// more streams.Runtime members, chained by mq topics — exactly mirroring the
// paper's Kafka/Kafka-Streams deployment (Fig. 4) scaled out the way Kafka
// Streams applications scale: by adding instances to a consumer group.
// Live mode measures compute throughput; WAN characteristics are the
// simulated mode's job.
//
// Two entry points share this config: OpenLive returns a long-lived
// LiveSession handle with push ingestion, and RunLive is the batch-shaped
// wrapper (generator-fed, fixed item count, blocks until drained).
type LiveConfig struct {
	// Spec gives the tree structure (link parameters are ignored live).
	Spec topology.TreeSpec
	// Bus selects the transport backend the deployment runs over. Nil (the
	// default) gives the session a private in-memory broker, closed with the
	// session — the single-process shape every test and example uses. A
	// caller-supplied bus (e.g. a transport/tcp client dialed at a shared
	// broker daemon) is used as-is and NOT closed by the session: topic
	// creation is idempotent across clients, so several processes can open
	// sessions against the same bus and share the tree's topics.
	Bus transport.Bus
	// Source builds source node i's generator. Required by RunLive; ignored
	// by OpenLive, whose sessions are fed by pushes.
	Source func(i int) workload.Source
	// NewSampler builds each node's strategy. Required.
	NewSampler SamplerFactory
	// Cost is the budget policy shared by all nodes. Required.
	Cost CostFunction
	// Items is the total number of items to produce across all sources.
	// Required by RunLive; ignored by OpenLive.
	Items int64
	// Window is the live processing-time sampling/query interval (default
	// 50 ms — wall time is expensive, simulated seconds are not). In
	// event-time mode it is the wall-clock ticker cadence only: how often
	// idle-source timeouts are re-checked and due windows are swept, not
	// what defines a window.
	Window time.Duration
	// EventTime switches window assignment from "whatever is buffered at
	// the tick" to event-time tumbling windows of Spec.Window length:
	// records are bucketed by Item.Ts at every layer, per-source low
	// watermarks piggyback on data records up the tree, and a window
	// closes only when the watermark passes its end plus AllowedLateness.
	// The wall-clock ticker is retained as the idle-source timeout. The
	// Ingester valves preserve caller-supplied event timestamps (zero Ts
	// defaults to the publish instant). Incompatible with Streaming.
	EventTime bool
	// AllowedLateness is how far event time may run behind the watermark
	// before a window closes: window [s, s+W) closes once the watermark
	// reaches s+W+AllowedLateness. Records assigned to a closed window are
	// counted into LiveResult.LateDropped and dropped — never folded into
	// a closed window's exact count. Only meaningful with EventTime.
	AllowedLateness time.Duration
	// IdleTimeout bounds how long a silent sub-stream can hold the
	// watermark back in event-time mode: a source with no records for this
	// long (wall clock) is excluded from the watermark minimum until it
	// speaks again. 0 selects the default — 4×Window, raised to
	// AllowedLateness if that is larger, so a source pausing within its
	// promised lateness is never aged out. Negative disables the exclusion
	// (a silent source then stalls event time, by request); that requires
	// single-member groups (ErrEventTimeIdleSharded otherwise).
	IdleTimeout time.Duration
	// RootWork is the artificial per-item query execution cost at the
	// datacenter, modelling the paper's saturated root (default 0).
	RootWork time.Duration
	// Queries lists the root's aggregates (default SUM).
	Queries []query.Kind
	// Slide, when ≥ 2, composes sliding-window estimates from the last
	// Slide tumbling panes at the root (pane composition): each emitted
	// window additionally carries WindowResult.Sliding for the additive
	// query kinds (SUM/COUNT), with variances added across panes so the
	// composed bounds stay rigorous. Sim and live feed identical pane
	// sequences under the same seed, so sliding estimates are covered by
	// the cross-mode equivalence suite.
	Slide int
	// Confidence selects the error-bound level of every window result
	// (default 95%). Adaptive runs steer the relative *bound* at this
	// confidence toward the controller's target, so sim and live must
	// agree on it for their trajectories to be comparable.
	Confidence stats.Confidence
	// Streaming forwards per batch without windowing (SRS / native).
	Streaming bool
	// Partitions is the partition count of every mq topic (default 1).
	// Records are keyed by SourceID, so each sub-stream maps to exactly one
	// partition and per-stratum ordering is preserved.
	Partitions int
	// RootShards sizes the root consumer group (default 1, max Partitions).
	// Each shard runs the root sampling stage over the partitions it owns;
	// shard outputs are merged at window close, and the Eq. 8 weights make
	// the merged count estimate exact regardless of the shard count.
	RootShards int
	// LayerShards sizes each edge layer's consumer groups, indexed by
	// layer (missing or zero entries default to 1, max Partitions each).
	// Every node of layer l runs as LayerShards[l] group members over its
	// input topic; each member samples the partitions it owns and forwards
	// its weighted batches independently — weight compounding needs no
	// merge barrier between members.
	LayerShards []int
	// Seed drives all samplers and generators.
	Seed uint64
	// Feedback, when set, closes the §IV-B loop on the live tree: every
	// node's budget becomes a control-plane-driven fraction starting at
	// the controller's current fraction. At each window close the root
	// observes the merged WindowResult — the first registered non-COUNT
	// query kind, since Eq. 8 makes COUNT exact and its bound
	// uninformative — and publishes the adjusted fraction as a control
	// record; every
	// edge member drains the control topic at its next window boundary
	// (root members are colocated with the controller and take the update
	// directly at the merge), so fraction changes never land mid-interval.
	// Feedback takes precedence over Cost (which may then be nil). A
	// controller is stateful — use a fresh one per run.
	Feedback *FeedbackController
	// SourceRate throttles each source slot to at most this many items per
	// second (0 = produce as fast as the pipeline accepts). The Ingester
	// valves apply it to pushed streams too; adaptive runs use it to
	// stretch production across enough windows for the controller to
	// converge.
	SourceRate float64
	// MaxIngestLag is the push-side backpressure high-water mark: an
	// Ingester blocks while its leaf topic's unconsumed backlog exceeds
	// this many records, so pushers cannot outrun the pipeline into
	// unbounded broker memory. 0 selects the default (8192); negative
	// disables backpressure.
	MaxIngestLag int
	// DrainTimeout bounds how long Close waits for the pipeline to quiesce
	// before assembling the final result anyway. A wedged pipeline then
	// surfaces ErrDrainTimeout (on Close/Err and LiveResult.DrainTimedOut)
	// instead of silently returning a result missing in-flight items.
	// 0 selects the default (2 minutes); negative waits forever (context
	// cancellation remains the only way out of a wedged drain).
	DrainTimeout time.Duration
	// OnWindow, if set, observes every non-empty window result as it
	// closes, after the feedback step. It runs on the window ticker
	// goroutine — keep it fast, and never call the session's Close from
	// it (Close waits for the ticker, so that deadlocks). Snapshot is
	// safe to call from the hook.
	OnWindow func(WindowResult)
	// Checkpoint, when set, makes every edge shard-group member durable:
	// at each punctuation flush (a window boundary, where committed
	// consumer offsets and ingested items coincide exactly) the member
	// serializes its reservoir (Ψ), carried weights, watermark chains, and
	// consumer offsets into the store under its member ID. A member
	// restarted after a crash (LiveSession.RestartMember) loads its blob,
	// restores state, replays the offset gap from the broker's retained
	// log, and rejoins its group without double-counting or losing items.
	// Incompatible with Streaming (no window boundary exists to anchor a
	// consistent cut). Save errors are counted (LiveSnapshot.
	// CheckpointErrors), never fatal — a deployment outlives a full disk.
	Checkpoint checkpoint.Store

	// corruptRoot injects this many undecodable records into the root
	// topic before the sources start — a test hook for DecodeErrors
	// accounting (unexported; tests live in this package).
	corruptRoot int

	// recordAtATime forces the pre-batching hot path everywhere: member
	// runtimes dispatch one record per Process call and sinks/valves
	// publish one record per broker append. The cross-mode equivalence
	// suite uses it as the semantic reference the batched path must match
	// bit for bit (unexported; tests live in this package).
	recordAtATime bool
}

// LiveResult reports a live run's measurements.
type LiveResult struct {
	// Produced counts items generated and published by the sources.
	Produced int64
	// RootProcessed counts items the root aggregated (post sampling).
	RootProcessed int64
	// DecodeErrors counts data-plane records whose batch payload failed
	// to decode anywhere in the pipeline. Corrupt records are counted and
	// skipped — never silently dropped, never allowed to poison the run.
	// (Malformed broadcast control records are skipped without counting
	// here: every member reads the same record, so a shared counter would
	// report one bad record once per member.)
	DecodeErrors int64
	// LateDropped counts items that arrived past the lateness horizon in
	// event-time mode: their window had already closed at the node that
	// would have buffered them, so they were counted here and dropped
	// rather than corrupting a closed window's exact count. An item is
	// counted once, at the first node that rejects it. Always 0 in
	// processing-time mode.
	LateDropped int64
	// LateDroppedInput is the estimated original input the late-dropped
	// records represent: a leaf drops raw weight-1 items (equal to
	// LateDropped there), while an interior node drops already-sampled
	// batches whose items each stand for Batch.Weight originals. The
	// accounting identity Σ Windows.EstimatedInput + LateDroppedInput ==
	// Produced holds in this currency at every layer.
	LateDroppedInput float64
	// DrainTimedOut reports that Close's drain deadline expired before the
	// pipeline quiesced: the result was assembled anyway, but in-flight
	// items may be missing from it. Close/Err surface the same condition
	// as ErrDrainTimeout.
	DrainTimedOut bool
	// Elapsed spans first publish to last root-side processing.
	Elapsed time.Duration
	// Throughput is Produced/Elapsed — the paper's "items processed per
	// second" with the pipeline as the bottleneck.
	Throughput float64
	// Windows holds the root's non-empty window results.
	Windows []WindowResult
	// TruthSum is the exact total of generated item values.
	TruthSum float64
	// EstimateSum totals the SUM estimates across windows.
	EstimateSum float64
	// EstimateCount totals the estimated input counts across windows.
	EstimateCount float64
	// Latency is the end-to-end item latency distribution — source publish
	// instant to root-side processing — over the items that survived
	// sampling to the root. Always populated.
	Latency *metrics.Histogram
	// Bandwidth accounts the bytes produced onto every link, keyed by the
	// destination topic name (the control topic included). Always
	// populated; produce-side accounting, so each byte counts once.
	Bandwidth *metrics.BandwidthAccount
	// Fractions is the adaptive trajectory: the controller's fraction
	// after observing each entry of Windows, in order. Nil when Feedback
	// is not configured.
	Fractions []float64
	// Nodes holds per-member lifetime telemetry keyed by member ID
	// ("edge1-3", "root-0-shard2", ...). Always populated.
	Nodes map[string]NodeTelemetry
}

// NodeTelemetry is one shard-group member's lifetime measurement.
type NodeTelemetry struct {
	// Observed counts items the member received; Emitted counts items it
	// forwarded after sampling; Intervals counts its window closes.
	Observed, Emitted, Intervals int64
	// Throughput is Observed divided by the run's Elapsed span.
	Throughput float64
}

// live-mode errors.
var (
	ErrNoItems = errors.New("core: LiveConfig.Items must be positive")
	// ErrEventTimeStreaming rejects EventTime combined with Streaming:
	// streaming mode forwards per batch with no windows to assign records
	// to, so event-time windowing has nothing to act on.
	ErrEventTimeStreaming = errors.New("core: EventTime requires windowed mode (Streaming must be false)")
	// ErrCheckpointStreaming rejects Checkpoint combined with Streaming:
	// streaming mode forwards per batch with no window boundary to anchor a
	// consistent cut, so there is no safe instant to checkpoint at.
	ErrCheckpointStreaming = errors.New("core: Checkpoint requires windowed mode (Streaming must be false)")
	// ErrEventTimeIdleSharded rejects a disabled idle exclusion
	// (IdleTimeout < 0) combined with multi-member consumer groups: a
	// group member only hears the producers whose record keys hash to its
	// partitions, and with aging disabled an unheard-but-expected producer
	// would hold the member's watermark at zero forever.
	ErrEventTimeIdleSharded = errors.New("core: IdleTimeout < 0 (no idle exclusion) requires single-member groups (RootShards 1, LayerShards 1)")
)

// samplingProcessor adapts a core.Node to the streams.Processor contract:
// batches arrive as wire-encoded messages, windows flush on punctuation (or
// immediately in streaming mode). One instance runs inside one shard-group
// member and owns its Node exclusively.
//
// In event-time mode (ew non-nil) the member's Ψ store lives in ew instead
// of node: records are bucketed by event timestamp, watermarks piggybacked
// on arriving records feed wt, and windows close on watermark advance —
// inline on Process when a record's watermark makes windows due, and on the
// punctuation ticker, which is retained purely as the idle-source timeout.
type samplingProcessor struct {
	id         string
	node       *Node // processing-time Ψ (nil in event-time mode)
	window     time.Duration
	streaming  bool
	decodeErrs *atomic.Int64
	pending    atomic.Int64 // items buffered in Ψ awaiting the window flush
	ctx        streams.ProcessorContext
	cancel     func()
	scratch    stream.Batch // reused decode buffer; IngestBatch copies out

	// bwc is the member's private produce-side byte counter for its parent
	// link (lock-free; folded into the account at read time).
	bwc *metrics.BandwidthCounter
	// enc and outMsgs are the member's outbound-hop scratch: every flush
	// encodes all of its batches into enc's reusable buffer via
	// AppendMarshal, then forwards them as one message batch (one broker
	// append downstream). See flushEmits for the buffer-ownership rule.
	enc     batchEncoder
	outMsgs []streams.Message

	// Event-time mode only: ew buckets Ψ per event window, wt tracks the
	// member's per-source low watermark, and quiesce (session-owned) stops
	// the punctuation keepalives once shutdown starts — the end-of-stream
	// cascade carries every promise that still matters, and a steady
	// keepalive stream would hold the drain probe's idle check open
	// forever. eosNotify broadcasts this member's own terminal end-of-stream
	// record to every parent-topic partition (nil for processing-time mode
	// and the root tier), sent once — eosSent — after the member's final
	// forward, so every downstream lane floor gets its lifting copy.
	ew        *eventWindows
	wt        *watermarkTracker
	quiesce   *atomic.Bool
	eosNotify func()
	eosSent   bool

	// Adaptive runs only: control is the member's private standalone
	// consumer on the plan's control topic, drained at each window
	// boundary into cost — so a whole interval samples under one fraction.
	control transport.Consumer
	cost    *dynamicCost

	// Durability (LiveConfig.Checkpoint): ckpt is the session's store,
	// ckptBuf the reusable encode scratch, ckptErrs the session's
	// save-failure counter, and recover the one-shot restore hook Init
	// runs before the pump starts (set by RestartMember's rebuild).
	ckpt     checkpoint.Store
	ckptBuf  []byte
	ckptErrs *atomic.Int64
	// ckptDirty marks output forwarded since the last checkpoint by an
	// inline event-time advance (mid-cycle, where offsets overcommit and a
	// checkpoint would be inconsistent); AfterCycle saves at the next safe
	// cut, so no forwarded window ever outlives the checkpoint covering it.
	ckptDirty bool
	recover   func(p *samplingProcessor, ctx streams.ProcessorContext) error
}

// encSpan locates one encoded record inside a batchEncoder's buffer: the
// key occupies [ks, ke) and the marshaled batch payload [ke, ve).
type encSpan struct{ ks, ke, ve int }

// batchEncoder accumulates (key, batch) encodings for one outbound flush in
// a single reusable scratch buffer — AppendMarshal instead of per-batch
// Marshal allocations. Because the mq broker retains produced Key/Value
// bytes in its partition logs, the scratch itself must never be handed to a
// send: materialize (messages / records) copies the accumulated encodings
// into ONE freshly-allocated block per flush, slices the keys and values out
// of it, and the block is never written again. The pool thus applies to the
// transient encoding only; retained bytes still cost exactly one allocation
// per flush, not one per record.
type batchEncoder struct {
	buf   []byte
	spans []encSpan
	wms   []mq.Watermark
}

// add encodes one outbound record: key bytes, then the batch payload.
func (e *batchEncoder) add(key stream.SourceID, b stream.Batch, wm mq.Watermark) {
	ks := len(e.buf)
	e.buf = append(e.buf, key...)
	ke := len(e.buf)
	e.buf = b.AppendMarshal(e.buf)
	e.spans = append(e.spans, encSpan{ks, ke, len(e.buf)})
	e.wms = append(e.wms, wm)
}

func (e *batchEncoder) empty() bool { return len(e.spans) == 0 }

// payloadBytes totals the encoded batch payloads (produce-side bandwidth;
// keys are broker-internal routing metadata and are not accounted, matching
// the per-record path).
func (e *batchEncoder) payloadBytes() int64 {
	var n int64
	for _, sp := range e.spans {
		n += int64(sp.ve - sp.ke)
	}
	return n
}

// messages materializes the accumulated encodings as streams messages
// appended onto dst, backed by one retained block (see type comment).
func (e *batchEncoder) messages(dst []streams.Message, ts time.Time) []streams.Message {
	block := make([]byte, len(e.buf))
	copy(block, e.buf)
	for i, sp := range e.spans {
		dst = append(dst, streams.Message{
			Key:       block[sp.ks:sp.ke:sp.ke],
			Value:     block[sp.ke:sp.ve:sp.ve],
			Ts:        ts,
			Watermark: e.wms[i],
		})
	}
	return dst
}

// records materializes the accumulated encodings as mq records appended onto
// dst, backed by one retained block — the direct-produce form the Ingester
// valve hands to SendBatch.
func (e *batchEncoder) records(dst []mq.Record) []mq.Record {
	block := make([]byte, len(e.buf))
	copy(block, e.buf)
	for i, sp := range e.spans {
		dst = append(dst, mq.Record{
			Key:       block[sp.ks:sp.ke:sp.ke],
			Value:     block[sp.ke:sp.ve:sp.ve],
			Watermark: e.wms[i],
		})
	}
	return dst
}

// reset recycles the scratch for the next flush.
func (e *batchEncoder) reset() {
	e.buf = e.buf[:0]
	e.spans = e.spans[:0]
	e.wms = e.wms[:0]
}

var (
	_ streams.Processor      = (*samplingProcessor)(nil)
	_ streams.BatchProcessor = (*samplingProcessor)(nil)
)

func (p *samplingProcessor) Init(ctx streams.ProcessorContext) error {
	p.ctx = ctx
	if p.wt != nil {
		// The tracker's lane floors need the consumer's partition
		// assignment — installed before recovery, so the offset-gap replay
		// already classifies lanewise.
		p.wt.ownedFn = func() []int { return ownedLanesOf(p.ctx) }
	}
	if p.recover != nil {
		// Crash recovery runs here: Init is called synchronously by the
		// runtime's Start, after the consumer has joined its group but
		// before the pump goroutine launches — the one point where the
		// restored state and the offset-gap replay cannot race arriving
		// records. One-shot: a recovery failure must not re-run on a
		// subsequent restart attempt with the state half-restored.
		rec := p.recover
		p.recover = nil
		if err := rec(p, ctx); err != nil {
			return err
		}
	}
	if !p.streaming {
		p.cancel = ctx.Schedule(p.window, func(time.Time) { p.flush() })
	}
	return nil
}

func (p *samplingProcessor) Process(msg streams.Message) error {
	if p.ew != nil {
		p.processEvent(msg, time.Now())
		p.pending.Store(int64(p.ew.buffered()))
		return nil
	}
	if err := stream.UnmarshalBatchInto(&p.scratch, msg.Value); err != nil {
		p.decodeErrs.Add(1)
		return nil
	}
	p.node.IngestBatch(p.scratch)
	p.pending.Store(int64(p.node.Observed()))
	if p.streaming {
		p.flush()
	}
	return nil
}

// ProcessBatch handles one polled batch: decode and ingest stay per-message
// (so window assignment, the watermark ladder, and LateDropped accounting
// are bit-identical to record-at-a-time processing) while the batch
// amortizes the clock read, the pending-gauge store, and — via the emit
// scratch — the downstream broker append.
func (p *samplingProcessor) ProcessBatch(msgs []streams.Message) error {
	if p.ew != nil {
		now := time.Now()
		for i := range msgs {
			p.processEvent(msgs[i], now)
		}
		p.pending.Store(int64(p.ew.buffered()))
		return nil
	}
	if p.streaming {
		// Streaming mode forwards per ingested batch: a combined flush
		// would hand the sampler one larger interval (different budget
		// math), so batching must not regroup it.
		for i := range msgs {
			if err := p.Process(msgs[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range msgs {
		if err := stream.UnmarshalBatchInto(&p.scratch, msgs[i].Value); err != nil {
			p.decodeErrs.Add(1)
			continue
		}
		p.node.IngestBatch(p.scratch)
	}
	p.pending.Store(int64(p.node.Observed()))
	return nil
}

// processEvent is the event-time per-message step, shared by Process and
// ProcessBatch: ingest, fold the piggybacked watermark, and advance — the
// advance runs per message, never deferred to the batch end, so a watermark
// landing mid-batch closes exactly the windows it would have closed
// unbatched and later records in the same batch are judged late against the
// same bound.
func (p *samplingProcessor) processEvent(msg streams.Message, now time.Time) {
	if err := stream.UnmarshalBatchInto(&p.scratch, msg.Value); err != nil {
		p.decodeErrs.Add(1)
		return
	}
	// Ingest before folding the record's watermark: the piggybacked
	// watermark may close the very window this record's items belong
	// to, and they must land inside it, not be counted late.
	p.ew.ingest(p.scratch)
	if p.wt.fold(msg.Watermark, p.scratch.Source, msg.Partition, now) {
		// First sight of this chain: announce it upstream before any
		// record can lift the parent's minimum past windows the chain
		// still holds data for.
		p.announce(p.scratch.Source)
	}
	p.advanceEventTime(now)
}

// ownedLanesOf lists the input-topic partitions the context's consumer
// currently owns — the lane universe for the watermark tracker's per-lane
// floors. Nil when the context cannot report ownership; the tracker then
// leaves floors off and classification degrades to the per-chain minimum
// alone (single-FIFO harness contexts, where that minimum is sound).
func ownedLanesOf(ctx streams.ProcessorContext) []int {
	or, ok := ctx.(streams.OffsetReader)
	if !ok {
		return nil
	}
	pos := or.SourceCommitted()
	lanes := make([]int, len(pos))
	for i, po := range pos {
		lanes[i] = po.Partition
	}
	return lanes
}

// flushEmits forwards everything the member's encoder accumulated as one
// message batch — one downstream broker append — and accounts the bytes.
// The broker retains produced Key/Value bytes, so the encoder materializes
// them into one fresh block per flush; the encoder scratch (and the message
// slice header) are recycled. outMsgs is scrubbed after the forward so spare
// capacity never pins a retired block.
func (p *samplingProcessor) flushEmits() {
	if p.enc.empty() {
		return
	}
	p.bwc.Add(p.enc.payloadBytes())
	msgs := p.enc.messages(p.outMsgs[:0], p.ctx.Now())
	p.enc.reset()
	p.ctx.ForwardBatch(msgs)
	for i := range msgs {
		msgs[i] = streams.Message{}
	}
	p.outMsgs = msgs[:0]
}

func (p *samplingProcessor) flush() {
	if p.ew != nil {
		// Event-time punctuation: re-derive the watermark (idle sources
		// may now be excluded) and sweep windows that became due, then
		// re-assert liveness upstream — a member buffering data behind
		// the lateness horizon has forwarded nothing yet, and without the
		// keepalive its parent could age it out of the minimum and close
		// windows its buffered data belongs to.
		now := time.Now()
		switch {
		case p.advanceEventTime(now):
			// An advance already re-asserted liveness (its heartbeats
			// carry the outbound watermark for every active source);
			// duplicate keepalives would only double the traffic.
		case p.quiesce.Load() && p.ew.buffered() > 0 && p.wt.allStale(now):
			// Shutdown backstop: every chain is stranded — a rebalance
			// moved this member's sub-streams to partitions it no longer
			// owns, so no record, heartbeat, or EOS will ever arrive to
			// close what it buffers. No further input is possible past
			// quiesce, so force the end-of-stream drain; any straggler
			// is late-dropped with honest LateDroppedInput accounting.
			p.drainAll(now)
		default:
			p.keepalive(now)
		}
		p.pending.Store(int64(p.ew.buffered()))
		p.saveCheckpoint()
		return
	}
	p.applyControl()
	for _, b := range p.node.CloseInterval() {
		p.enc.add(b.Source, b, mq.Watermark{})
	}
	p.flushEmits()
	// Zero pending only after forwarding: the drain probe must always see
	// in-flight data as either buffered Ψ here or lag on the parent topic.
	p.pending.Store(int64(p.node.Observed()))
	p.saveCheckpoint()
}

// saveCheckpoint serializes the member's recovery state into the session's
// checkpoint store. It runs only from flush — punctuation time, between poll
// cycles — where the committed consumer offsets account for exactly the
// records the member has ingested; checkpointing mid-batch would commit a
// cut with fetched-but-not-ingested records and recovery would skip them.
// Streaming mode has no such boundary, so it never checkpoints (OpenLive
// rejects the combination). Save failures are counted, not fatal.
func (p *samplingProcessor) saveCheckpoint() {
	if p.ckpt == nil || p.streaming {
		return
	}
	or, ok := p.ctx.(streams.OffsetReader)
	if !ok {
		return
	}
	p.ckptDirty = false
	p.ckptBuf = encodeMemberCheckpoint(p.ckptBuf[:0], p, or.SourceCommitted())
	if err := p.ckpt.Save(p.id, p.ckptBuf); err != nil && p.ckptErrs != nil {
		p.ckptErrs.Add(1)
	}
}

// drainAll is the graceful-removal flush: everything the member still
// buffers is forwarded NOW, regardless of window boundaries, so a removed
// member leaves nothing behind. Processing-time mode closes the interval
// early — a rescale IS a window boundary, the same rule the barrier flush
// applies. Event-time mode advances to the end-of-stream watermark (closing
// every open window with the honest per-window ladder stamps) and signs off
// with end-of-stream heartbeats for every active sub-stream, so the parent's
// chains for this member resolve immediately instead of waiting out the
// idle timeout. Runs on the frozen member's state, after its pump stopped.
func (p *samplingProcessor) drainAll(now time.Time) {
	p.applyControl()
	if p.ew == nil {
		for _, b := range p.node.CloseInterval() {
			p.enc.add(b.Source, b, mq.Watermark{})
		}
		p.flushEmits()
		p.pending.Store(0)
		return
	}
	srcs := p.wt.activeSources(now)
	closed := p.ew.advance(eosWatermark)
	for _, cw := range closed {
		stamp := mq.Watermark{From: p.id, At: p.ew.dataWatermark(cw.start)}
		for _, b := range cw.theta {
			p.enc.add(b.Source, b, stamp)
		}
	}
	out := mq.Watermark{From: p.id, At: eosWatermark}
	if len(srcs) == 0 {
		// The member never heard a sub-stream (or everything idled out):
		// still sign off under its own identity, so the parent's
		// expectation placeholder for this member resolves in-band.
		srcs = []stream.SourceID{stream.SourceID(p.id)}
	}
	for _, src := range srcs {
		p.enc.add(src, heartbeat(src), out)
	}
	p.flushEmits()
	p.signalEOS()
	p.pending.Store(0)
}

// signalEOS broadcasts the member's terminal end-of-stream record to every
// parent-topic partition, once, after its final forward. The keyed sign-offs
// above cover only the lanes the member's sub-streams hash to; the parent's
// per-lane watermark floors for this member lift lane by lane, each as its
// copy is consumed, so every lane needs one. The broadcast runs synchronously
// after flushEmits, so on every lane it appends behind the member's last data.
func (p *samplingProcessor) signalEOS() {
	if p.eosSent || p.eosNotify == nil {
		return
	}
	p.eosSent = true
	p.eosNotify()
}

// memberEOSBroadcast builds a member's terminal end-of-stream broadcast: one
// zero-item record per parent-topic partition, keyed and originated by the
// member itself, at the end-of-stream watermark — the interior-tier analogue
// of Ingester.sendEOS, and the producer half of the lane-floor contract.
func memberEOSBroadcast(prod transport.Producer, topic, id string, partitions int, bwc *metrics.BandwidthCounter) func() {
	return func() {
		payload := heartbeat(stream.SourceID(id)).Marshal()
		wm := mq.Watermark{From: id, At: eosWatermark}
		for part := 0; part < partitions; part++ {
			bwc.Add(int64(len(payload)))
			// The broker outlives the drain; a send can only fail once the
			// session is past the point of caring about these records.
			_, _ = prod.SendToWatermarked(topic, part, []byte(id), payload, wm)
		}
	}
}

// advanceEventTime closes every event window the member's current watermark
// makes due, forwards the results, and reports whether the close bound
// moved. Data records are stamped with their window's dataWatermark — the
// ladder a parent must climb window by window, so a multi-window flush can
// never close more at the parent than has already arrived — and after the
// data, every active source gets a zero-item heartbeat at the outbound
// watermark, so parents advance across empty windows and reach the final
// bound. Control-topic drains stay pinned to window boundaries, exactly
// like the processing-time flush.
func (p *samplingProcessor) advanceEventTime(now time.Time) bool {
	wm := p.wt.watermark(now)
	if !p.ew.wouldAdvance(wm) {
		return false
	}
	p.applyControl()
	closed := p.ew.advance(wm)
	for _, cw := range closed {
		stamp := mq.Watermark{From: p.id, At: p.ew.dataWatermark(cw.start)}
		for _, b := range cw.theta {
			p.enc.add(b.Source, b, stamp)
		}
	}
	out := mq.Watermark{From: p.id, At: p.ew.outboundWatermark()}
	for _, src := range p.wt.activeSources(now) {
		p.enc.add(src, heartbeat(src), out)
	}
	p.flushEmits()
	if !out.At.Before(eosHorizon) {
		// The member's own promise reached end-of-stream tier: cover every
		// parent lane so the parent's floors for this member all lift.
		p.signalEOS()
	}
	p.ckptDirty = true
	return true
}

// AfterCycle implements streams.CycleObserver: if an inline event-time
// advance forwarded windows this cycle, checkpoint now — the end-of-cycle
// cut is the first point where committed offsets and ingested records
// coincide again. This keeps the recovery contract airtight: the close
// bound in the newest checkpoint always equals the bound at any later
// crash, so replay classifies every gap record exactly as the dead member
// did.
func (p *samplingProcessor) AfterCycle() {
	if p.ckptDirty {
		p.saveCheckpoint()
	}
}

// keepalive re-asserts the member's liveness upstream for every active
// sub-stream: at the outbound watermark once one exists, else as a
// zero-instant presence record that refreshes the parent's idle clocks
// without promising anything. Idle sub-streams are deliberately not
// covered — the member has excluded them from its own minimum, and
// keeping them artificially fresh upstream would re-introduce the stall
// the idle timeout exists to break.
func (p *samplingProcessor) keepalive(now time.Time) {
	if p.quiesce.Load() {
		return
	}
	srcs := p.wt.activeSources(now)
	if len(srcs) == 0 {
		return
	}
	out := mq.Watermark{From: p.id, At: p.ew.outboundWatermark()}
	for _, src := range srcs {
		p.enc.add(src, heartbeat(src), out)
	}
	p.flushEmits()
}

// announce forwards a zero-item heartbeat for a newly-seen chain's
// sub-stream at the member's outbound watermark — never the inbound one,
// which may promise windows this member has not flushed yet — so the
// parent registers the chain in its minimum before any close could pass
// its data by. Before the member's first advance there is no promise to
// make (and nothing the parent could close), so nothing is sent.
func (p *samplingProcessor) announce(src stream.SourceID) {
	wm := p.ew.outboundWatermark()
	if wm.IsZero() {
		return
	}
	p.enc.add(src, heartbeat(src), mq.Watermark{From: p.id, At: wm})
	p.flushEmits()
}

// stats returns the member's lifetime counters, whichever store owns them.
func (p *samplingProcessor) stats() NodeStats {
	if p.ew != nil {
		return p.ew.stats()
	}
	return p.node.Stats()
}

// applyControl drains the member's control consumer and installs the
// newest published fraction. It runs immediately before CloseInterval —
// the window boundary — so Eq. 8 weight compounding never sees a
// mid-interval fraction change. Later records win. A malformed record is
// skipped and the member keeps its current fraction (self-healing at the
// next update); it is NOT counted into DecodeErrors, which is a
// data-plane counter — the control topic is a broadcast every member
// reads, so per-member counting would inflate one bad record by the
// deployment's member count.
func (p *samplingProcessor) applyControl() {
	if p.control == nil {
		return
	}
	latest := -1.0
	for {
		recs, err := p.control.TryPoll(64)
		if err != nil || len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			if _, f, err := decodeControl(rec.Value); err == nil {
				latest = f
			}
		}
	}
	if latest > 0 {
		p.cost.set(latest)
	}
}

func (p *samplingProcessor) Close() error {
	if p.cancel != nil {
		p.cancel()
	}
	if p.control != nil {
		p.control.Close()
	}
	return nil
}

// rootProcessor is the root-flavored shard member: it ingests into a
// private sampling node under a mutex (the window ticker merges all members'
// Θ at window close) instead of forwarding, spins the configured per-item
// query cost, and maintains the run's root-side counters. In-flight records
// are covered by the member Runtime's Busy gauge; buffered root Θ awaits
// the window ticker, not the drain, so no pending counter is needed here.
//
// In event-time mode (ew non-nil) the member buckets Θ per event window and
// tracks its per-source watermark in wt, both under mu; the session's
// window ticker merges the members' watermarks and drives every member's
// window closes to the same bound.
type rootProcessor struct {
	mu   sync.Mutex
	node *Node // processing-time Θ (nil in event-time mode)
	ew   *eventWindows
	wt   *watermarkTracker
	// ctx reports the consumer's partition assignment for the tracker's
	// lane floors (the root consumes, it never signs off itself).
	ctx streams.ProcessorContext

	id           string
	work         time.Duration
	processed    *atomic.Int64
	decodeErrs   *atomic.Int64
	lastActivity *atomic.Int64      // unix nanos of last root-side processing
	latency      *metrics.Histogram // private per member; merged into the result at shutdown
	scratch      stream.Batch       // reused decode buffer; IngestBatch copies out
}

var (
	_ streams.Processor      = (*rootProcessor)(nil)
	_ streams.BatchProcessor = (*rootProcessor)(nil)
)

func (p *rootProcessor) Init(ctx streams.ProcessorContext) error {
	p.ctx = ctx
	if p.wt != nil {
		p.wt.ownedFn = func() []int { return ownedLanesOf(p.ctx) }
	}
	return nil
}

func (p *rootProcessor) Process(msg streams.Message) error {
	p.lastActivity.Store(time.Now().UnixNano())
	p.mu.Lock()
	n := p.processLocked(msg)
	p.mu.Unlock()
	p.processed.Add(n)
	p.lastActivity.Store(time.Now().UnixNano())
	return nil
}

// ProcessBatch ingests one polled batch under a single mutex acquisition —
// the per-record lock/unlock was pure overhead, since each member owns its
// node privately and only the window ticker ever contends. Decode, the
// watermark fold, and late accounting stay per-message inside the loop, so
// batching changes no window content.
func (p *rootProcessor) ProcessBatch(msgs []streams.Message) error {
	p.lastActivity.Store(time.Now().UnixNano())
	var total int64
	p.mu.Lock()
	for i := range msgs {
		total += p.processLocked(msgs[i])
	}
	p.mu.Unlock()
	p.processed.Add(total)
	p.lastActivity.Store(time.Now().UnixNano())
	return nil
}

// processLocked is the per-message root step. Callers hold p.mu.
func (p *rootProcessor) processLocked(msg streams.Message) int64 {
	if err := stream.UnmarshalBatchInto(&p.scratch, msg.Value); err != nil {
		p.decodeErrs.Add(1)
		return 0
	}
	spin(time.Duration(len(p.scratch.Items)) * p.work)
	now := time.Now()
	for _, it := range p.scratch.Items {
		// Items are stamped with their wall-clock publish instant at the
		// source (Pub — and in processing-time mode Ts is the same
		// instant), so this is genuine end-to-end latency: edge window
		// waits, broker hops, and the root's own service time all count.
		ref := it.Pub
		if ref.IsZero() {
			ref = it.Ts
		}
		p.latency.Observe(now.Sub(ref))
	}
	if p.ew != nil {
		// Ingest before folding the watermark, mirroring the edge members.
		p.ew.ingest(p.scratch)
		p.wt.fold(msg.Watermark, p.scratch.Source, msg.Partition, now)
	} else {
		p.node.IngestBatch(p.scratch)
	}
	return int64(len(p.scratch.Items))
}

func (p *rootProcessor) Close() error { return nil }

// closeInterval drains the member's Θ under its lock (processing-time mode).
func (p *rootProcessor) closeInterval() []stream.Batch {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node.CloseInterval()
}

// watermarkState returns the member's current event-time watermark (zero
// when the member has seen no live chains) and whether an expected-but-
// unheard producer is holding it back.
func (p *rootProcessor) watermarkState(now time.Time) (time.Time, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wt.watermarkState(now)
}

// advanceTo closes the member's event windows up to the merged watermark
// the session's ticker derived. All members advance to the same bound, so
// a window is merged across members exactly once.
func (p *rootProcessor) advanceTo(wm time.Time) []closedWindow {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ew.advance(wm)
}

// stats returns the member's lifetime counters, whichever store owns them.
func (p *rootProcessor) stats() NodeStats {
	if p.ew != nil {
		return p.ew.stats()
	}
	return p.node.Stats()
}

// groupMember is one consumer-group member of a shardGroup: its runtime, its
// shard identity (which fixes the member ID and seed lineage), and its
// lifecycle flags. A member is live until killed (KillMember — restartable)
// or removed (RemoveMember / RemoveEdgeNode — retired for good); retired and
// dead members stay in the group's member list so lifetime telemetry
// survives them.
type groupMember struct {
	shard int
	id    string
	rt    *streams.Runtime
	proc  *samplingProcessor // nil for root members
	// dead marks a killed member awaiting RestartMember; removed marks one
	// gone for good.
	dead, removed bool
	// killedOffsets are the broker-committed source offsets at the kill
	// instant — the end of the replay range a restarted member re-ingests.
	killedOffsets []streams.PartitionOffset
	// killedChangeOffs is the group's membership-barrier offset snapshot as
	// it stood at the kill instant — the replay origin for any partition the
	// member's last checkpoint does not cover (no checkpoint yet, or a save
	// failure). It must be captured at the kill: later barriers advance the
	// group snapshot past offsets the victim still has to replay.
	killedChangeOffs []int64
}

// live reports whether the member is pumping (not killed, not retired).
func (m *groupMember) live() bool { return !m.dead && !m.removed }

// shardGroup is the live instantiation of one compiled node as a consumer
// group: its streams.Runtime members share the node's ID as their
// application ID, so the broker deals the input topic's partitions out
// across them — exactly how a Kafka Streams application scales
// horizontally. Every member owns a private sampling node; Eq. 8 weight
// compounding keeps the forwarded estimates exact without any cross-member
// coordination, which is also what makes the group elastic: members can
// join, leave, die, and rejoin mid-run (see elastic.go) without a merge
// barrier to renegotiate. The root node is a shardGroup too (its members
// merely don't sink — the window ticker merges their Θ instead — and the
// root group is not elastic).
type shardGroup struct {
	desc NodeDesc

	// mu guards the member list and the elastic flags: membership changes
	// (serialized by the session's elMu) mutate under it while the drain
	// probe, telemetry, and ingest valves read concurrently.
	mu      sync.Mutex
	members []*groupMember
	// nextShard is the next shard index to assign. Monotone — member IDs,
	// checkpoint keys, and salted seed lineages are never reused across the
	// group's lifetime, so a restarted or re-added member can never collide
	// with a retired one's identity.
	nextShard int
	// changeOffsets snapshots the group's committed input offsets at the
	// last membership barrier (postChange) — the fallback replay origin for
	// partitions a dead member's checkpoint does not cover. Zeros at birth.
	changeOffsets []int64
	// detached marks a layer-0 group drained and stopped by RemoveEdgeNode:
	// pushes to its source slots are rejected and the session's drain and
	// lag probes skip it. detachedCount remembers how many members to
	// rebuild at AddEdgeNode.
	detached      bool
	detachedCount int

	// build constructs (without starting) the member for one shard index —
	// captured at group creation so RestartMember / AddMember rebuild
	// members with exactly the wiring OpenLive used.
	build func(shard int) (*groupMember, error)
	// budget is the group's dynamic FixedBudget splitter (nil for every
	// other cost policy); kill/remove must leave it, rebuilds rejoin it.
	budget *groupBudget
}

// newShardGroup builds (without starting) the group's initial members.
// newProc is invoked once per member with the shard index and must return
// the member's processor twice: as the streams.Processor to wire into the
// topology, and as the *samplingProcessor the elastic layer drives (nil for
// root members). recordAtATime forces the pre-batching dispatch path in
// every member runtime (the equivalence suite's semantic reference).
func newShardGroup(bus transport.Bus, desc NodeDesc, recordAtATime bool, newProc func(shard int) (streams.Processor, *samplingProcessor)) (*shardGroup, error) {
	g := &shardGroup{desc: desc, nextShard: desc.Shards}
	opts := []streams.RuntimeOption{
		streams.WithPollWait(time.Millisecond),
		streams.WithPollBatch(512),
	}
	if recordAtATime {
		opts = append(opts, streams.WithRecordAtATime())
	}
	g.build = func(shard int) (*groupMember, error) {
		proc, sp := newProc(shard)
		b := streams.NewTopology().
			Source("in", desc.Topic).
			Processor("sampler", func() streams.Processor { return proc }, "in")
		if desc.ParentTopic != "" {
			b = b.Sink("out", desc.ParentTopic, "sampler")
		}
		topo, err := b.Build()
		if err != nil {
			return nil, err
		}
		rt, err := streams.NewRuntime(bus, topo, desc.ID, opts...)
		if err != nil {
			return nil, err
		}
		return &groupMember{shard: shard, id: memberID(desc, shard), rt: rt, proc: sp}, nil
	}
	for shard := 0; shard < desc.Shards; shard++ {
		m, err := g.build(shard)
		if err != nil {
			g.stop()
			return nil, err
		}
		g.members = append(g.members, m)
	}
	return g, nil
}

// start launches every live member; on failure the group is stopped.
func (g *shardGroup) start() error {
	for _, m := range g.live() {
		if err := m.rt.Start(); err != nil {
			g.stop()
			return err
		}
	}
	return nil
}

// stop shuts members down in reverse order. Idempotent; never-started, dead,
// and retired members included (their Stop is a no-op).
func (g *shardGroup) stop() {
	g.mu.Lock()
	members := append([]*groupMember(nil), g.members...)
	g.mu.Unlock()
	for i := len(members) - 1; i >= 0; i-- {
		_ = members[i].rt.Stop()
	}
}

// live snapshots the group's live members in shard-join order.
func (g *shardGroup) live() []*groupMember {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*groupMember, 0, len(g.members))
	for _, m := range g.members {
		if m.live() {
			out = append(out, m)
		}
	}
	return out
}

// liveCount counts the members currently pumping.
func (g *shardGroup) liveCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, m := range g.members {
		if m.live() {
			n++
		}
	}
	return n
}

// lag totals the unfetched records across the group's live members. A dead
// member's partitions rebalance to the survivors at its Stop, so their lag
// covers the whole topic.
func (g *shardGroup) lag() int64 {
	var lag int64
	for _, m := range g.live() {
		lag += m.rt.Lag()
	}
	return lag
}

// busy reports whether any live member's pump is mid-cycle (fetched records
// may be in flight even at zero lag).
func (g *shardGroup) busy() bool {
	for _, m := range g.live() {
		if m.rt.Busy() {
			return true
		}
	}
	return false
}

// pending totals the items buffered in live members' Ψ stores awaiting
// their window flush — the drain probe's third leg.
func (g *shardGroup) pending() int64 {
	var pending int64
	for _, m := range g.live() {
		if m.proc != nil {
			pending += m.proc.pending.Load()
		}
	}
	return pending
}

// isDetached reports whether the group has been drained and stopped by
// RemoveEdgeNode.
func (g *shardGroup) isDetached() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.detached
}

// changeOffsetsSnapshot copies the offsets recorded at the last membership
// barrier.
func (g *shardGroup) changeOffsetsSnapshot() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int64(nil), g.changeOffsets...)
}

// RunLive executes one live experiment against the compiled deployment
// plan: the batch-shaped compatibility wrapper over the session API. It
// opens a LiveSession, feeds cfg.Items generator items through the same
// Ingester valves external pushers use, drains, and returns the final
// result — exactly the pre-session contract.
func RunLive(cfg LiveConfig) (*LiveResult, error) {
	if cfg.Source == nil {
		return nil, ErrNoSourceFunc
	}
	if cfg.Items <= 0 {
		return nil, ErrNoItems
	}
	s, err := OpenLive(nil, cfg)
	if err != nil {
		return nil, err
	}
	s.feed(cfg.Source, cfg.Items)
	return s.Close()
}

// spin burns CPU for roughly d, modelling per-item query execution cost.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
