package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/streams"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
)

// LiveConfig describes a live-mode run: the tree is instantiated as real
// goroutines — one streams.Runtime per edge node, chained by mq topics —
// exactly mirroring the paper's Kafka/Kafka-Streams deployment (Fig. 4).
// Live mode measures compute throughput; WAN characteristics are the
// simulated mode's job.
type LiveConfig struct {
	// Spec gives the tree structure (link parameters are ignored live).
	Spec topology.TreeSpec
	// Source builds source node i's generator. Required.
	Source func(i int) workload.Source
	// NewSampler builds each node's strategy. Required.
	NewSampler SamplerFactory
	// Cost is the budget policy shared by all nodes. Required.
	Cost CostFunction
	// Items is the total number of items to produce across all sources.
	Items int64
	// Window is the live sampling/query interval (default 50 ms — wall
	// time is expensive, simulated seconds are not).
	Window time.Duration
	// RootWork is the artificial per-item query execution cost at the
	// datacenter, modelling the paper's saturated root (default 0).
	RootWork time.Duration
	// Queries lists the root's aggregates (default SUM).
	Queries []query.Kind
	// Streaming forwards per batch without windowing (SRS / native).
	Streaming bool
	// Seed drives all samplers and generators.
	Seed uint64
}

// LiveResult reports a live run's measurements.
type LiveResult struct {
	// Produced counts items generated and published by the sources.
	Produced int64
	// RootProcessed counts items the root aggregated (post sampling).
	RootProcessed int64
	// Elapsed spans first publish to last root-side processing.
	Elapsed time.Duration
	// Throughput is Produced/Elapsed — the paper's "items processed per
	// second" with the pipeline as the bottleneck.
	Throughput float64
	// Windows holds the root's non-empty window results.
	Windows []WindowResult
	// TruthSum is the exact total of generated item values.
	TruthSum float64
	// EstimateSum totals the SUM estimates across windows.
	EstimateSum float64
	// EstimateCount totals the estimated input counts across windows.
	EstimateCount float64
}

// live-mode errors.
var ErrNoItems = errors.New("core: LiveConfig.Items must be positive")

// topicName names the mq topic feeding node (layer, idx).
func topicName(layer, idx int) string {
	return fmt.Sprintf("layer%d-node%d", layer, idx)
}

// samplingProcessor adapts a core.Node to the streams.Processor contract:
// batches arrive as wire-encoded messages, windows flush on punctuation (or
// immediately in streaming mode).
type samplingProcessor struct {
	node      *Node
	window    time.Duration
	streaming bool
	ctx       streams.ProcessorContext
	cancel    func()
}

var _ streams.Processor = (*samplingProcessor)(nil)

func (p *samplingProcessor) Init(ctx streams.ProcessorContext) error {
	p.ctx = ctx
	if !p.streaming {
		p.cancel = ctx.Schedule(p.window, func(time.Time) { p.flush() })
	}
	return nil
}

func (p *samplingProcessor) Process(msg streams.Message) error {
	b, err := stream.UnmarshalBatch(msg.Value)
	if err != nil {
		return fmt.Errorf("core: node %s: %w", p.node.ID(), err)
	}
	p.node.IngestBatch(b)
	if p.streaming {
		p.flush()
	}
	return nil
}

func (p *samplingProcessor) flush() {
	for _, b := range p.node.CloseInterval() {
		p.ctx.Forward(streams.Message{Key: []byte(b.Source), Value: b.Marshal(), Ts: p.ctx.Now()})
	}
}

func (p *samplingProcessor) Close() error {
	if p.cancel != nil {
		p.cancel()
	}
	return nil
}

// RunLive executes one live experiment.
func RunLive(cfg LiveConfig) (*LiveResult, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid tree spec: %w", err)
	}
	if cfg.Source == nil {
		return nil, ErrNoSourceFunc
	}
	if cfg.NewSampler == nil {
		return nil, ErrNoSampler
	}
	if cfg.Cost == nil {
		return nil, ErrNoCost
	}
	if cfg.Items <= 0 {
		return nil, ErrNoItems
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * time.Millisecond
	}
	if len(cfg.Queries) == 0 {
		cfg.Queries = []query.Kind{query.Sum}
	}

	spec := cfg.Spec
	rootLayer := spec.RootLayer()
	broker := mq.NewBroker()
	defer broker.Close()

	// One topic per computing node, created before any runtime subscribes.
	for l, ls := range spec.Layers {
		for i := 0; i < ls.Nodes; i++ {
			if _, err := broker.CreateTopic(topicName(l, i), 1, mq.WithRetention(4096)); err != nil {
				return nil, err
			}
		}
	}

	// Edge layers: one streams.Runtime per node.
	var runtimes []*streams.Runtime
	stopAll := func() {
		for i := len(runtimes) - 1; i >= 0; i-- {
			_ = runtimes[i].Stop()
		}
	}
	for l := 0; l < rootLayer; l++ {
		ls := spec.Layers[l]
		for i := 0; i < ls.Nodes; i++ {
			id := fmt.Sprintf("%s-%d", ls.Name, i)
			node := NewNode(id, cfg.NewSampler(l, i, cfg.Seed), cfg.Cost)
			proc := &samplingProcessor{node: node, window: cfg.Window, streaming: cfg.Streaming}
			parentTopic := topicName(l+1, topology.ParentIndex(ls.Nodes, spec.Layers[l+1].Nodes, i))
			topo, err := streams.NewTopology().
				Source("in", topicName(l, i)).
				Processor("sampler", func() streams.Processor { return proc }, "in").
				Sink("out", parentTopic, "sampler").
				Build()
			if err != nil {
				stopAll()
				return nil, err
			}
			rt, err := streams.NewRuntime(broker, topo, id,
				streams.WithPollWait(time.Millisecond),
				streams.WithPollBatch(512))
			if err != nil {
				stopAll()
				return nil, err
			}
			if err := rt.Start(); err != nil {
				stopAll()
				return nil, err
			}
			runtimes = append(runtimes, rt)
		}
	}

	// Root consumer: record-at-a-time aggregation with optional per-item
	// work, window results on a wall-clock ticker.
	engine := query.NewEngine()
	root := NewRoot("root", cfg.NewSampler(rootLayer, 0, cfg.Seed), cfg.Cost, engine, cfg.Queries...)
	rootConsumer, err := mq.NewGroupConsumer(broker, topicName(rootLayer, 0), "root")
	if err != nil {
		stopAll()
		return nil, err
	}
	defer rootConsumer.Close()

	res := &LiveResult{}
	var (
		rootProcessed atomic.Int64
		lastActivity  atomic.Int64 // unix nanos of last root processing
		rootBusy      atomic.Bool  // root is mid-burst (spinning through records)
		rootMu        sync.Mutex   // guards root + res.Windows
	)
	closeWindow := func() {
		rootMu.Lock()
		win, _ := root.CloseWindow(time.Now())
		if win.SampleSize > 0 {
			res.Windows = append(res.Windows, win)
		}
		rootMu.Unlock()
	}

	rootCtx, cancelRoot := context.WithCancel(context.Background())
	var rootWG sync.WaitGroup
	rootWG.Add(1)
	go func() {
		defer rootWG.Done()
		ticker := time.NewTicker(cfg.Window)
		defer ticker.Stop()
		for {
			select {
			case <-rootCtx.Done():
				return
			case <-ticker.C:
				closeWindow()
			default:
			}
			recs, err := rootConsumer.TryPoll(512)
			if err != nil {
				return
			}
			if len(recs) == 0 {
				select {
				case <-rootCtx.Done():
					return
				case <-time.After(time.Millisecond):
				}
				continue
			}
			rootBusy.Store(true)
			lastActivity.Store(time.Now().UnixNano())
			for _, rec := range recs {
				b, err := stream.UnmarshalBatch(rec.Value)
				if err != nil {
					continue
				}
				spin(time.Duration(len(b.Items)) * cfg.RootWork)
				rootMu.Lock()
				root.IngestBatch(b)
				rootMu.Unlock()
				rootProcessed.Add(int64(len(b.Items)))
				lastActivity.Store(time.Now().UnixNano())
			}
			rootBusy.Store(false)
		}
	}()

	// Sources: produce Items total, split across source nodes, publishing
	// one batch per sub-stream per chunk.
	start := time.Now()
	lastActivity.Store(start.UnixNano())
	perSource := cfg.Items / int64(spec.Sources)
	var (
		produced atomic.Int64
		truthMu  sync.Mutex
		srcWG    sync.WaitGroup
	)
	chunk := cfg.Window / 4
	if chunk <= 0 {
		chunk = cfg.Window
	}
	for s := 0; s < spec.Sources; s++ {
		s := s
		srcWG.Add(1)
		go func() {
			defer srcWG.Done()
			gen := cfg.Source(s)
			producer := mq.NewProducer(broker)
			topic := topicName(0, topology.ParentIndex(spec.Sources, spec.Layers[0].Nodes, s))
			var sent int64
			now := start
			var localTruth float64
			for sent < perSource {
				items := gen.Generate(now, chunk)
				now = now.Add(chunk)
				if len(items) == 0 {
					continue
				}
				if int64(len(items)) > perSource-sent {
					items = items[:perSource-sent]
				}
				for _, it := range items {
					localTruth += it.Value
				}
				for lo := 0; lo < len(items); {
					hi := lo + 1
					src := items[lo].Source
					for hi < len(items) && items[hi].Source == src {
						hi++
					}
					b := stream.Batch{Source: src, Weight: 1, Items: items[lo:hi]}
					if _, _, err := producer.Send(topic, []byte(src), b.Marshal()); err != nil {
						return
					}
					lo = hi
				}
				sent += int64(len(items))
			}
			produced.Add(sent)
			truthMu.Lock()
			res.TruthSum += localTruth
			truthMu.Unlock()
		}()
	}
	srcWG.Wait()

	// Drain: wait until every layer is caught up and the root has been
	// idle for several windows (final punctuation flushes included).
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var lag int64
		for _, rt := range runtimes {
			lag += rt.Lag()
		}
		lag += rootConsumer.Lag()
		idle := time.Since(time.Unix(0, lastActivity.Load()))
		if lag == 0 && !rootBusy.Load() && idle > 4*cfg.Window {
			break
		}
		time.Sleep(cfg.Window / 4)
	}
	end := time.Unix(0, lastActivity.Load())

	cancelRoot()
	rootWG.Wait()
	closeWindow() // final partial window
	stopAll()

	res.Produced = produced.Load()
	res.RootProcessed = rootProcessed.Load()
	res.Elapsed = end.Sub(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Produced) / res.Elapsed.Seconds()
	}
	for _, w := range res.Windows {
		res.EstimateSum += w.Result(query.Sum).Estimate.Value
		res.EstimateCount += w.EstimatedInput
	}
	return res, nil
}

// spin burns CPU for roughly d, modelling per-item query execution cost.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
