package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/streams"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
)

// LiveConfig describes a live-mode run: the tree is instantiated as real
// goroutines — one streams.Runtime per edge node, chained by mq topics —
// exactly mirroring the paper's Kafka/Kafka-Streams deployment (Fig. 4).
// Live mode measures compute throughput; WAN characteristics are the
// simulated mode's job.
type LiveConfig struct {
	// Spec gives the tree structure (link parameters are ignored live).
	Spec topology.TreeSpec
	// Source builds source node i's generator. Required.
	Source func(i int) workload.Source
	// NewSampler builds each node's strategy. Required.
	NewSampler SamplerFactory
	// Cost is the budget policy shared by all nodes. Required.
	Cost CostFunction
	// Items is the total number of items to produce across all sources.
	Items int64
	// Window is the live sampling/query interval (default 50 ms — wall
	// time is expensive, simulated seconds are not).
	Window time.Duration
	// RootWork is the artificial per-item query execution cost at the
	// datacenter, modelling the paper's saturated root (default 0).
	RootWork time.Duration
	// Queries lists the root's aggregates (default SUM).
	Queries []query.Kind
	// Streaming forwards per batch without windowing (SRS / native).
	Streaming bool
	// Partitions is the partition count of every mq topic (default 1).
	// Records are keyed by SourceID, so each sub-stream maps to exactly one
	// partition and per-stratum ordering is preserved.
	Partitions int
	// RootShards sizes the root consumer group (default 1, max Partitions).
	// Each shard runs the root sampling stage over the partitions it owns;
	// shard outputs are merged at window close, and the Eq. 8 weights make
	// the merged count estimate exact regardless of the shard count.
	RootShards int
	// Seed drives all samplers and generators.
	Seed uint64
}

// LiveResult reports a live run's measurements.
type LiveResult struct {
	// Produced counts items generated and published by the sources.
	Produced int64
	// RootProcessed counts items the root aggregated (post sampling).
	RootProcessed int64
	// Elapsed spans first publish to last root-side processing.
	Elapsed time.Duration
	// Throughput is Produced/Elapsed — the paper's "items processed per
	// second" with the pipeline as the bottleneck.
	Throughput float64
	// Windows holds the root's non-empty window results.
	Windows []WindowResult
	// TruthSum is the exact total of generated item values.
	TruthSum float64
	// EstimateSum totals the SUM estimates across windows.
	EstimateSum float64
	// EstimateCount totals the estimated input counts across windows.
	EstimateCount float64
}

// live-mode errors.
var ErrNoItems = errors.New("core: LiveConfig.Items must be positive")

// samplingProcessor adapts a core.Node to the streams.Processor contract:
// batches arrive as wire-encoded messages, windows flush on punctuation (or
// immediately in streaming mode).
type samplingProcessor struct {
	node      *Node
	window    time.Duration
	streaming bool
	ctx       streams.ProcessorContext
	cancel    func()
	scratch   stream.Batch // reused decode buffer; IngestBatch copies out
}

var _ streams.Processor = (*samplingProcessor)(nil)

func (p *samplingProcessor) Init(ctx streams.ProcessorContext) error {
	p.ctx = ctx
	if !p.streaming {
		p.cancel = ctx.Schedule(p.window, func(time.Time) { p.flush() })
	}
	return nil
}

func (p *samplingProcessor) Process(msg streams.Message) error {
	if err := stream.UnmarshalBatchInto(&p.scratch, msg.Value); err != nil {
		return fmt.Errorf("core: node %s: %w", p.node.ID(), err)
	}
	p.node.IngestBatch(p.scratch)
	if p.streaming {
		p.flush()
	}
	return nil
}

func (p *samplingProcessor) flush() {
	for _, b := range p.node.CloseInterval() {
		p.ctx.Forward(streams.Message{Key: []byte(b.Source), Value: b.Marshal(), Ts: p.ctx.Now()})
	}
}

func (p *samplingProcessor) Close() error {
	if p.cancel != nil {
		p.cancel()
	}
	return nil
}

// rootShard is one member of the root consumer group: a private sampling
// node fed by the partitions the shard owns, merged with its peers at every
// window close.
type rootShard struct {
	mu       sync.Mutex
	node     *Node
	consumer *mq.Consumer
}

// RunLive executes one live experiment against the compiled deployment plan.
func RunLive(cfg LiveConfig) (*LiveResult, error) {
	plan, err := CompilePlan(PlanConfig{
		Spec:       cfg.Spec,
		NewSampler: cfg.NewSampler,
		Cost:       cfg.Cost,
		Queries:    cfg.Queries,
		Seed:       cfg.Seed,
		Partitions: cfg.Partitions,
		RootShards: cfg.RootShards,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Source == nil {
		return nil, ErrNoSourceFunc
	}
	if cfg.Items <= 0 {
		return nil, ErrNoItems
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * time.Millisecond
	}

	spec := plan.Spec
	broker := mq.NewBroker()
	defer broker.Close()

	// The plan names every topic and fixes its partition count; create them
	// before any runtime subscribes.
	for _, td := range plan.Topics() {
		if _, err := broker.CreateTopic(td.Name, td.Partitions, mq.WithRetention(4096)); err != nil {
			return nil, err
		}
	}

	// Edge layers: one streams.Runtime per compiled node descriptor.
	var runtimes []*streams.Runtime
	stopAll := func() {
		for i := len(runtimes) - 1; i >= 0; i-- {
			_ = runtimes[i].Stop()
		}
	}
	for _, desc := range plan.EdgeNodes() {
		proc := &samplingProcessor{node: plan.NewNode(desc), window: cfg.Window, streaming: cfg.Streaming}
		topo, err := streams.NewTopology().
			Source("in", desc.Topic).
			Processor("sampler", func() streams.Processor { return proc }, "in").
			Sink("out", desc.ParentTopic, "sampler").
			Build()
		if err != nil {
			stopAll()
			return nil, err
		}
		rt, err := streams.NewRuntime(broker, topo, desc.ID,
			streams.WithPollWait(time.Millisecond),
			streams.WithPollBatch(512))
		if err != nil {
			stopAll()
			return nil, err
		}
		if err := rt.Start(); err != nil {
			stopAll()
			return nil, err
		}
		runtimes = append(runtimes, rt)
	}

	// Root consumer group: RootShards members split the root topic's
	// partitions. Each shard aggregates and samples its share; a window
	// ticker merges every shard's Θ and runs the queries once.
	engine := query.NewEngine()
	shards := make([]*rootShard, plan.RootShards)
	for i := range shards {
		c, err := mq.NewGroupConsumer(broker, plan.Root().Topic, "root")
		if err != nil {
			stopAll()
			return nil, err
		}
		defer c.Close()
		shards[i] = &rootShard{node: plan.NewRootShard(i), consumer: c}
	}

	res := &LiveResult{}
	var (
		rootProcessed atomic.Int64
		lastActivity  atomic.Int64 // unix nanos of last root processing
		busyShards    atomic.Int64 // shards mid-burst (processing a poll)
		windowMu      sync.Mutex   // serializes window closes; guards res.Windows
	)
	closeWindow := func(at time.Time) {
		windowMu.Lock()
		defer windowMu.Unlock()
		var theta []stream.Batch
		for _, sh := range shards {
			sh.mu.Lock()
			theta = append(theta, sh.node.CloseInterval()...)
			sh.mu.Unlock()
		}
		win := NewWindowResult(at, engine, plan.Queries, theta)
		if win.SampleSize > 0 {
			res.Windows = append(res.Windows, win)
		}
	}

	rootCtx, cancelRoot := context.WithCancel(context.Background())
	var rootWG sync.WaitGroup
	for _, sh := range shards {
		sh := sh
		rootWG.Add(1)
		go func() {
			defer rootWG.Done()
			var scratch stream.Batch // reused decode buffer; IngestBatch copies out
			for {
				// Poll blocks on the topic's wait channel until records
				// arrive or the context cancels — the pipeline idles
				// without spinning.
				recs, err := sh.consumer.Poll(rootCtx, 512)
				if err != nil {
					return
				}
				busyShards.Add(1)
				lastActivity.Store(time.Now().UnixNano())
				for _, rec := range recs {
					if err := stream.UnmarshalBatchInto(&scratch, rec.Value); err != nil {
						continue
					}
					spin(time.Duration(len(scratch.Items)) * cfg.RootWork)
					sh.mu.Lock()
					sh.node.IngestBatch(scratch)
					sh.mu.Unlock()
					rootProcessed.Add(int64(len(scratch.Items)))
					lastActivity.Store(time.Now().UnixNano())
				}
				busyShards.Add(-1)
			}
		}()
	}

	// Window ticker: a blocking select — no busy branch — closes windows
	// while the shards poll.
	rootWG.Add(1)
	go func() {
		defer rootWG.Done()
		ticker := time.NewTicker(cfg.Window)
		defer ticker.Stop()
		for {
			select {
			case <-rootCtx.Done():
				return
			case now := <-ticker.C:
				closeWindow(now)
			}
		}
	}()

	// Sources: produce Items total, split across source nodes, publishing
	// one batch per sub-stream per chunk, keyed by SourceID so a sub-stream
	// sticks to one partition.
	start := time.Now()
	lastActivity.Store(start.UnixNano())
	perSource := cfg.Items / int64(spec.Sources)
	var (
		produced atomic.Int64
		truthMu  sync.Mutex
		srcWG    sync.WaitGroup
	)
	chunk := cfg.Window / 4
	if chunk <= 0 {
		chunk = cfg.Window
	}
	for s := 0; s < spec.Sources; s++ {
		s := s
		srcWG.Add(1)
		go func() {
			defer srcWG.Done()
			gen := cfg.Source(s)
			producer := mq.NewProducer(broker)
			topic := plan.Sources[s].Topic
			var sent int64
			now := start
			var localTruth float64
			for sent < perSource {
				items := gen.Generate(now, chunk)
				now = now.Add(chunk)
				if len(items) == 0 {
					continue
				}
				if int64(len(items)) > perSource-sent {
					items = items[:perSource-sent]
				}
				for _, it := range items {
					localTruth += it.Value
				}
				for lo := 0; lo < len(items); {
					hi := lo + 1
					src := items[lo].Source
					for hi < len(items) && items[hi].Source == src {
						hi++
					}
					b := stream.Batch{Source: src, Weight: 1, Items: items[lo:hi]}
					if _, _, err := producer.Send(topic, []byte(src), b.Marshal()); err != nil {
						return
					}
					lo = hi
				}
				sent += int64(len(items))
			}
			produced.Add(sent)
			truthMu.Lock()
			res.TruthSum += localTruth
			truthMu.Unlock()
		}()
	}
	srcWG.Wait()

	// Drain: wait until every layer is caught up and the root has been
	// idle for several windows (final punctuation flushes included).
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var lag int64
		for _, rt := range runtimes {
			lag += rt.Lag()
		}
		for _, sh := range shards {
			lag += sh.consumer.Lag()
		}
		idle := time.Since(time.Unix(0, lastActivity.Load()))
		if lag == 0 && busyShards.Load() == 0 && idle > 4*cfg.Window {
			break
		}
		time.Sleep(cfg.Window / 4)
	}
	end := time.Unix(0, lastActivity.Load())

	cancelRoot()
	rootWG.Wait()
	closeWindow(time.Now()) // final partial window
	stopAll()

	res.Produced = produced.Load()
	res.RootProcessed = rootProcessed.Load()
	res.Elapsed = end.Sub(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Produced) / res.Elapsed.Seconds()
	}
	for _, w := range res.Windows {
		res.EstimateSum += w.Result(query.Sum).Estimate.Value
		res.EstimateCount += w.EstimatedInput
	}
	return res, nil
}

// spin burns CPU for roughly d, modelling per-item query execution cost.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
