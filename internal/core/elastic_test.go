package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/checkpoint"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/xrand"
)

// elasticConfig is the shared deployment for rescale/recovery tests: the
// paper testbed over 4 partitions, layer-0 groups starting at 2 members,
// FixedBudget so the dynamic groupBudget split engages.
func elasticConfig(store checkpoint.Store) LiveConfig {
	return LiveConfig{
		Spec:        topology.Testbed(),
		NewSampler:  WHSFactory(),
		Cost:        FixedBudget{Size: 96},
		Window:      20 * time.Millisecond,
		Queries:     []query.Kind{query.Sum, query.Count},
		Seed:        11,
		Partitions:  4,
		LayerShards: []int{2},
		Checkpoint:  store,
	}
}

// pushRounds pushes perRound items into every source slot, rounds times,
// invoking between(r) after each round — the hook is where tests kill,
// restart, add, and remove mid-flow. Pushes rejected because a leaf is
// detached are tolerated (they are not counted into Produced either).
func pushRounds(t *testing.T, s *LiveSession, rounds, perRound int, between func(r int)) {
	t.Helper()
	slots := s.plan.Spec.Sources
	ings := make([]*Ingester, slots)
	for i := range ings {
		ing, err := s.Ingester(i)
		if err != nil {
			t.Fatalf("Ingester(%d): %v", i, err)
		}
		ings[i] = ing
	}
	for r := 0; r < rounds; r++ {
		for slot, ing := range ings {
			items := make([]stream.Item, perRound)
			for k := range items {
				items[k] = stream.Item{
					Source: stream.SourceID(fmt.Sprintf("s%d", slot)),
					Value:  float64(slot+1) + 0.01*float64(k),
				}
			}
			if err := ing.Push(items...); err != nil && !errors.Is(err, ErrNodeDetached) {
				t.Fatalf("round %d slot %d: %v", r, slot, err)
			}
		}
		if between != nil {
			between(r)
		}
	}
}

// TestGroupBudgetShareProperty is the property form of the re-split
// contract: under any random join/leave sequence the live shares always
// sum to the configured total, no two shares differ by more than one, and
// the initial shard-order join reproduces the static NewNodeShardCost
// split exactly (cross-mode equivalence depends on that).
func TestGroupBudgetShareProperty(t *testing.T) {
	rng := xrand.New(9)
	for trial := 0; trial < 40; trial++ {
		total := 1 + int(rng.Uint64()%200)
		b := newGroupBudget(total)
		var ids []string
		next := 0
		for op := 0; op < 60; op++ {
			if len(ids) == 0 || rng.Uint64()%3 != 0 {
				id := fmt.Sprintf("m%d", next)
				next++
				b.join(id)
				ids = append(ids, id)
			} else {
				i := int(rng.Uint64() % uint64(len(ids)))
				b.leave(ids[i])
				ids = append(ids[:i], ids[i+1:]...)
			}
			if len(ids) == 0 {
				continue
			}
			sum, lo, hi := 0, total+1, -1
			for _, id := range ids {
				s := b.share(id)
				sum += s
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			if sum != total {
				t.Fatalf("trial %d op %d: shares sum %d, want %d (n=%d)", trial, op, sum, total, len(ids))
			}
			if hi-lo > 1 {
				t.Fatalf("trial %d op %d: share spread %d..%d", trial, op, lo, hi)
			}
		}
	}
	// Shard-order joins == the static split.
	for _, tc := range []struct{ total, n int }{{96, 2}, {97, 3}, {5, 4}, {1, 1}, {10, 10}} {
		b := newGroupBudget(tc.total)
		for i := 0; i < tc.n; i++ {
			b.join(fmt.Sprintf("shard%d", i))
		}
		for i := 0; i < tc.n; i++ {
			want := tc.total / tc.n
			if i < tc.total%tc.n {
				want++
			}
			if got := b.share(fmt.Sprintf("shard%d", i)); got != want {
				t.Fatalf("total %d n %d shard %d: share %d, want %d", tc.total, tc.n, i, got, want)
			}
		}
	}
}

// TestElasticRescaleLive grows and shrinks a layer-0 group mid-run —
// pushes flowing the whole time — and demands the Eq. 8 count invariant
// exactly at close plus a budget split that still sums to the configured
// total for the final membership.
func TestElasticRescaleLive(t *testing.T) {
	s, err := OpenLive(nil, elasticConfig(checkpoint.NewMemoryStore()))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	const rounds, perRound = 12, 40
	pushRounds(t, s, rounds, perRound, func(r int) {
		switch r {
		case 2:
			if _, err := s.AddMember("edge1-0"); err != nil {
				t.Fatalf("AddMember r2: %v", err)
			}
		case 4:
			if _, err := s.AddMember("edge1-0"); err != nil {
				t.Fatalf("AddMember r4: %v", err)
			}
		case 6:
			if _, err := s.RemoveMember("edge1-0"); err != nil {
				t.Fatalf("RemoveMember r6: %v", err)
			}
		case 8:
			if _, err := s.RemoveMember("edge1-0"); err != nil {
				t.Fatalf("RemoveMember r8: %v", err)
			}
			if _, err := s.RemoveMember("edge1-0"); err != nil {
				t.Fatalf("RemoveMember r8b: %v", err)
			}
		}
		time.Sleep(s.cfg.Window / 2)
	})
	members, err := s.GroupMembers("edge1-0")
	if err != nil {
		t.Fatalf("GroupMembers: %v", err)
	}
	live, removed := 0, 0
	for _, m := range members {
		switch m.State {
		case "live":
			live++
		case "removed":
			removed++
		default:
			t.Fatalf("unexpected member state %q", m.State)
		}
	}
	if live != 1 || removed != 3 {
		t.Fatalf("membership live=%d removed=%d, want 1/3 (%v)", live, removed, members)
	}
	if g := s.groupByID["edge1-0"]; g.budget != nil {
		sum := 0
		for _, share := range g.budget.shares() {
			sum += share
		}
		if sum != 96 {
			t.Fatalf("live budget shares sum %d, want 96", sum)
		}
	} else {
		t.Fatal("FixedBudget group has no groupBudget")
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := int64(rounds * perRound * s.plan.Spec.Sources)
	if res.Produced != want {
		t.Fatalf("produced %d, want %d", res.Produced, want)
	}
	assertCountInvariant(t, "rescale live", res.EstimateCount, float64(res.Produced))
}

// TestElasticKillRestartProcTime crashes a member mid-flow — pushes keep
// coming while it is dead, its partitions rebalanced to the survivor —
// then restarts it from its checkpoint and demands the count invariant
// exactly at close: checkpoint restore plus gap replay must neither lose
// nor double-count a single item.
func TestElasticKillRestartProcTime(t *testing.T) {
	store := checkpoint.NewMemoryStore()
	s, err := OpenLive(nil, elasticConfig(store))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	const victim = "edge1-1-shard1"
	const rounds, perRound = 12, 40
	pushRounds(t, s, rounds, perRound, func(r int) {
		switch r {
		case 3:
			// No settling sleep first: the kill should land with ingested-
			// but-unflushed state on the victim.
			if err := s.KillMember(victim); err != nil {
				t.Fatalf("KillMember: %v", err)
			}
			members, err := s.GroupMembers("edge1-1")
			if err != nil {
				t.Fatalf("GroupMembers: %v", err)
			}
			killed := 0
			for _, m := range members {
				if m.State == "killed" {
					killed++
				}
			}
			if killed != 1 {
				t.Fatalf("killed members %d, want 1 (%v)", killed, members)
			}
		case 7:
			if err := s.RestartMember(victim); err != nil {
				t.Fatalf("RestartMember: %v", err)
			}
		}
		time.Sleep(s.cfg.Window / 2)
	})
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := int64(rounds * perRound * s.plan.Spec.Sources)
	if res.Produced != want {
		t.Fatalf("produced %d, want %d", res.Produced, want)
	}
	assertCountInvariant(t, "kill/restart proc-time", res.EstimateCount, float64(res.Produced))
	if snap := s.Snapshot(); snap.CheckpointErrors != 0 {
		t.Fatalf("checkpoint errors %d, want 0", snap.CheckpointErrors)
	}
}

// TestElasticKillRestartEventTime is the crash-recovery round trip under
// event-time windowing, for both checkpoint backends: kill between
// checkpoints, restart, and the closed windows must still account for
// every produced item exactly — Σ EstimatedInput + LateDropped ==
// Produced — with window boundaries strictly monotone (the restored
// member's watermark never regresses past work already closed).
func TestElasticKillRestartEventTime(t *testing.T) {
	backends := []struct {
		name  string
		store func(t *testing.T) checkpoint.Store
	}{
		{"memory", func(*testing.T) checkpoint.Store { return checkpoint.NewMemoryStore() }},
		{"file", func(t *testing.T) checkpoint.Store {
			fs, err := checkpoint.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatalf("NewFileStore: %v", err)
			}
			return fs
		}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			cfg := elasticConfig(be.store(t))
			cfg.EventTime = true
			// Modest lateness and the default idle timeout: chains stranded
			// by the kill/restart rebalances resolve via idle aging, so a
			// large timeout here directly serializes into the close. Items a
			// rebalance pushes past the horizon land in LateDropped — which
			// the invariant below accounts for.
			cfg.AllowedLateness = 300 * time.Millisecond
			s, err := OpenLive(nil, cfg)
			if err != nil {
				t.Fatalf("OpenLive: %v", err)
			}
			const victim = "edge1-2-shard1"
			const rounds, perSlot = 10, 30
			base := simEpoch
			slots := s.plan.Spec.Sources
			ings := make([]*Ingester, slots)
			for i := range ings {
				if ings[i], err = s.Ingester(i); err != nil {
					t.Fatalf("Ingester(%d): %v", i, err)
				}
			}
			span := 300 * time.Millisecond
			for r := 0; r < rounds; r++ {
				for slot, ing := range ings {
					items := make([]stream.Item, perSlot)
					for k := range items {
						items[k] = stream.Item{
							Source: stream.SourceID(fmt.Sprintf("s%d", slot)),
							Value:  float64(slot + 1),
							Ts: base.Add(time.Duration(r)*span +
								time.Duration(k)*span/perSlot +
								time.Duration(slot)*time.Millisecond),
						}
					}
					if err := ing.Push(items...); err != nil {
						t.Fatalf("round %d slot %d: %v", r, slot, err)
					}
				}
				switch r {
				case 3:
					if err := s.KillMember(victim); err != nil {
						t.Fatalf("KillMember: %v", err)
					}
				case 6:
					if err := s.RestartMember(victim); err != nil {
						t.Fatalf("RestartMember: %v", err)
					}
				}
				time.Sleep(s.cfg.Window / 2)
			}
			res, err := s.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
			want := int64(rounds * perSlot * slots)
			if res.Produced != want {
				t.Fatalf("produced %d, want %d", res.Produced, want)
			}
			var estimated float64
			for i, w := range res.Windows {
				estimated += w.EstimatedInput
				if w.End.Sub(w.Start) != s.plan.Spec.Window {
					t.Fatalf("window %d spans %v", i, w.End.Sub(w.Start))
				}
				if i > 0 && !w.Start.After(res.Windows[i-1].Start) {
					t.Fatalf("window %d start %v not after %v — watermark regressed",
						i, w.Start, res.Windows[i-1].Start)
				}
			}
			assertCountInvariant(t, "kill/restart event-time "+be.name,
				estimated+res.LateDroppedInput, float64(res.Produced))
			if snap := s.Snapshot(); snap.CheckpointErrors != 0 {
				t.Fatalf("checkpoint errors %d, want 0", snap.CheckpointErrors)
			}
		})
	}
}

// TestRestartCorruptCheckpointRejected pins the failure mode: a flipped
// byte in the on-disk blob fails the restart with ErrCorrupt, the member
// stays killed (and restartable), and restoring the original bytes lets
// the same restart succeed with the invariant intact.
func TestRestartCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	s, err := OpenLive(nil, elasticConfig(fs))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	const victim = "edge1-0-shard1"
	pushRounds(t, s, 4, 40, func(int) { time.Sleep(s.cfg.Window) })
	if err := s.KillMember(victim); err != nil {
		t.Fatalf("KillMember: %v", err)
	}
	path := filepath.Join(dir, victim+".ckpt")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no checkpoint on disk for %s: %v", victim, err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatalf("corrupt write: %v", err)
	}
	if err := s.RestartMember(victim); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("restart on corrupt blob: err = %v, want ErrCorrupt", err)
	}
	members, err := s.GroupMembers("edge1-0")
	if err != nil {
		t.Fatalf("GroupMembers: %v", err)
	}
	stillKilled := false
	for _, m := range members {
		if m.ID == victim && m.State == "killed" {
			stillKilled = true
		}
	}
	if !stillKilled {
		t.Fatalf("victim not restartable after failed restart: %v", members)
	}
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatalf("repair write: %v", err)
	}
	if err := s.RestartMember(victim); err != nil {
		t.Fatalf("restart after repair: %v", err)
	}
	pushRounds(t, s, 2, 40, func(int) { time.Sleep(s.cfg.Window) })
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	assertCountInvariant(t, "corrupt-then-repaired restart", res.EstimateCount, float64(res.Produced))
}

// TestCheckpointCodecGarbageRejected pins the codec contract: anything
// that is not a complete, well-formed blob decodes to ErrCorrupt, and a
// genuine blob round-trips. The genuine blob comes from a real killed
// member — the encoder has no other public entry point, deliberately.
func TestCheckpointCodecGarbageRejected(t *testing.T) {
	store := checkpoint.NewMemoryStore()
	s, err := OpenLive(nil, elasticConfig(store))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	pushRounds(t, s, 4, 40, func(int) { time.Sleep(s.cfg.Window) })
	const victim = "edge1-3-shard1"
	if err := s.KillMember(victim); err != nil {
		t.Fatalf("KillMember: %v", err)
	}
	raw, err := store.Load(victim)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ck, err := decodeMemberCheckpoint(raw)
	if err != nil {
		t.Fatalf("decode genuine blob: %v", err)
	}
	if ck.eventTime {
		t.Fatal("proc-time blob decoded as event-time")
	}
	for name, bad := range map[string][]byte{
		"nil":       nil,
		"empty":     {},
		"garbage":   []byte("not a checkpoint"),
		"truncated": raw[:len(raw)-1],
	} {
		if _, err := decodeMemberCheckpoint(bad); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("decode %s: err = %v, want ErrCorrupt", name, err)
		}
	}
	if err := s.RestartMember(victim); err != nil {
		t.Fatalf("RestartMember: %v", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestDetachAttachEdgeNode drains a whole leaf subtree out of the running
// tree and re-attaches it: pushes for its slots bounce with
// ErrNodeDetached in between, other slots keep flowing, and the final
// count invariant covers exactly the pushes that were admitted.
func TestDetachAttachEdgeNode(t *testing.T) {
	s, err := OpenLive(nil, elasticConfig(checkpoint.NewMemoryStore()))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	push := func(slot, n int) error {
		ing, err := s.Ingester(slot)
		if err != nil {
			t.Fatalf("Ingester(%d): %v", slot, err)
		}
		items := make([]stream.Item, n)
		for k := range items {
			items[k] = stream.Item{Source: stream.SourceID(fmt.Sprintf("s%d", slot)), Value: 1 + float64(k)}
		}
		return ing.Push(items...)
	}
	for slot := 0; slot < s.plan.Spec.Sources; slot++ {
		if err := push(slot, 100); err != nil {
			t.Fatalf("warm push slot %d: %v", slot, err)
		}
	}
	// Testbed maps sources {0,1} onto edge1-0.
	if err := s.RemoveEdgeNode("edge1-0"); err != nil {
		t.Fatalf("RemoveEdgeNode: %v", err)
	}
	if err := push(0, 10); !errors.Is(err, ErrNodeDetached) {
		t.Fatalf("push to detached leaf: err = %v, want ErrNodeDetached", err)
	}
	if err := push(5, 100); err != nil {
		t.Fatalf("push to attached leaf while sibling detached: %v", err)
	}
	if err := s.AddEdgeNode("edge1-0"); err != nil {
		t.Fatalf("AddEdgeNode: %v", err)
	}
	if err := push(0, 100); err != nil {
		t.Fatalf("push after re-attach: %v", err)
	}
	members, err := s.GroupMembers("edge1-0")
	if err != nil {
		t.Fatalf("GroupMembers: %v", err)
	}
	live, retired := 0, 0
	for _, m := range members {
		if m.State == "live" {
			live++
		} else {
			retired++
		}
	}
	if live != 2 || retired != 2 {
		t.Fatalf("post-reattach membership live=%d retired=%d, want 2/2 (%v)", live, retired, members)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if want := int64(8*100 + 100 + 100); res.Produced != want {
		t.Fatalf("produced %d, want %d (rejected pushes must not count)", res.Produced, want)
	}
	assertCountInvariant(t, "detach/attach", res.EstimateCount, float64(res.Produced))
}

// TestElasticGuards sweeps the rejection surface: every malformed elastic
// request fails with its contract error and leaves the session running.
func TestElasticGuards(t *testing.T) {
	s, err := OpenLive(nil, elasticConfig(nil)) // no checkpoint store
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	defer s.Close()
	if _, err := s.AddMember("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("AddMember unknown: %v", err)
	}
	if _, err := s.AddMember("root-0"); !errors.Is(err, ErrNotEdgeNode) {
		t.Fatalf("AddMember root: %v", err)
	}
	if err := s.RemoveEdgeNode("edge2-0"); !errors.Is(err, ErrNotLeafNode) {
		t.Fatalf("RemoveEdgeNode interior: %v", err)
	}
	if err := s.AddEdgeNode("edge1-0"); !errors.Is(err, ErrNodeAttached) {
		t.Fatalf("AddEdgeNode attached: %v", err)
	}
	if err := s.KillMember("edge1-0-shard9"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("KillMember unknown: %v", err)
	}
	if err := s.RestartMember("edge1-0"); !errors.Is(err, ErrMemberAlive) {
		t.Fatalf("RestartMember live: %v", err)
	}
	// edge2-0 runs a single member (LayerShards only sizes layer 0).
	if _, err := s.RemoveMember("edge2-0"); !errors.Is(err, ErrLastMember) {
		t.Fatalf("RemoveMember last: %v", err)
	}
	// 4 partitions cap the group at 4 members: 2 seeded + 2 added.
	for i := 0; i < 2; i++ {
		if _, err := s.AddMember("edge1-0"); err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
	}
	if _, err := s.AddMember("edge1-0"); !errors.Is(err, ErrShardsExceedPartitions) {
		t.Fatalf("AddMember past partitions: %v", err)
	}
	if err := s.KillMember("edge1-0"); err != nil {
		t.Fatalf("KillMember: %v", err)
	}
	if err := s.KillMember("edge1-0"); !errors.Is(err, ErrMemberDead) {
		t.Fatalf("KillMember dead twice: %v", err)
	}
	if err := s.RestartMember("edge1-0"); !errors.Is(err, ErrNoCheckpointStore) {
		t.Fatalf("RestartMember without store: %v", err)
	}
}

// TestElasticRandomSequenceProperty is the property-based rescale test: a
// seeded random sequence of add/remove/kill/restart against random nodes,
// pushes interleaved throughout, every dead member restarted before close
// — and the count invariant must hold exactly, every trial.
func TestElasticRandomSequenceProperty(t *testing.T) {
	for trial := uint64(0); trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := xrand.New(100 + trial)
			s, err := OpenLive(nil, elasticConfig(checkpoint.NewMemoryStore()))
			if err != nil {
				t.Fatalf("OpenLive: %v", err)
			}
			nodes := []string{"edge1-0", "edge1-1", "edge1-2", "edge1-3"}
			var mu sync.Mutex
			dead := map[string]bool{}
			const rounds, perRound = 10, 30
			pushRounds(t, s, rounds, perRound, func(r int) {
				node := nodes[rng.Uint64()%uint64(len(nodes))]
				switch rng.Uint64() % 4 {
				case 0:
					if _, err := s.AddMember(node); err != nil && !errors.Is(err, ErrShardsExceedPartitions) {
						t.Errorf("AddMember(%s): %v", node, err)
					}
				case 1:
					if _, err := s.RemoveMember(node); err != nil && !errors.Is(err, ErrLastMember) {
						t.Errorf("RemoveMember(%s): %v", node, err)
					}
				case 2:
					members, err := s.GroupMembers(node)
					if err != nil {
						t.Errorf("GroupMembers(%s): %v", node, err)
						return
					}
					for _, m := range members {
						if m.State == "live" {
							if err := s.KillMember(m.ID); err != nil {
								t.Errorf("KillMember(%s): %v", m.ID, err)
							} else {
								mu.Lock()
								dead[m.ID] = true
								mu.Unlock()
							}
							break
						}
					}
				case 3:
					mu.Lock()
					for id := range dead {
						delete(dead, id)
						mu.Unlock()
						if err := s.RestartMember(id); err != nil {
							t.Errorf("RestartMember(%s): %v", id, err)
						}
						mu.Lock()
					}
					mu.Unlock()
				}
				time.Sleep(s.cfg.Window / 2)
			})
			// The invariant demands every crash eventually recovers: restart
			// whoever is still dead before closing.
			for id := range dead {
				if err := s.RestartMember(id); err != nil {
					t.Fatalf("final RestartMember(%s): %v", id, err)
				}
			}
			res, err := s.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
			want := int64(rounds * perRound * s.plan.Spec.Sources)
			if res.Produced != want {
				t.Fatalf("produced %d, want %d", res.Produced, want)
			}
			assertCountInvariant(t, fmt.Sprintf("random sequence seed %d", trial),
				res.EstimateCount, float64(res.Produced))
		})
	}
}

// pushEventRound pushes perSlot event-stamped items into every slot, round
// r spanning [r*span, (r+1)*span) of event time from simEpoch. Detached
// leaves reject with ErrNodeDetached; those pushes are skipped (and not
// produced). Returns the number of items actually admitted.
func pushEventRound(t *testing.T, s *LiveSession, r, perSlot int) int64 {
	t.Helper()
	const span = 300 * time.Millisecond
	var pushed int64
	for slot := 0; slot < s.plan.Spec.Sources; slot++ {
		ing, err := s.Ingester(slot)
		if err != nil {
			t.Fatalf("Ingester(%d): %v", slot, err)
		}
		items := make([]stream.Item, perSlot)
		for k := range items {
			items[k] = stream.Item{
				Source: stream.SourceID(fmt.Sprintf("s%d", slot)),
				Value:  float64(slot + 1),
				Ts: simEpoch.Add(time.Duration(r)*span +
					time.Duration(k)*span/time.Duration(perSlot)),
			}
		}
		switch err := ing.Push(items...); {
		case err == nil:
			pushed += int64(perSlot)
		case errors.Is(err, ErrNodeDetached):
		default:
			t.Fatalf("Push(slot %d): %v", slot, err)
		}
	}
	return pushed
}

// TestEventTimeDetachDrains regression-tests the detach drain loop in
// event-time mode: buffered Ψ awaiting a window flush (pending) must NOT
// gate the loop — nothing flushes it once the topic is fenced, so waiting
// on it made every event-time detach spin to DrainTimeout and undo itself.
// retireMember's drainAll force-closes the buffer instead.
func TestEventTimeDetachDrains(t *testing.T) {
	cfg := elasticConfig(checkpoint.NewMemoryStore())
	cfg.EventTime = true
	cfg.AllowedLateness = 300 * time.Millisecond
	cfg.DrainTimeout = 5 * time.Second
	s, err := OpenLive(nil, cfg)
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	var produced int64
	for r := 0; r < 3; r++ {
		produced += pushEventRound(t, s, r, 20)
		time.Sleep(cfg.Window / 2)
	}
	start := time.Now()
	if err := s.RemoveEdgeNode("edge1-0"); err != nil {
		t.Fatalf("RemoveEdgeNode: %v", err)
	}
	if took := time.Since(start); took > cfg.DrainTimeout/2 {
		t.Fatalf("detach took %v — drained via timeout, not via the probe", took)
	}
	for r := 3; r < 5; r++ {
		produced += pushEventRound(t, s, r, 20)
		time.Sleep(cfg.Window / 2)
	}
	if err := s.AddEdgeNode("edge1-0"); err != nil {
		t.Fatalf("AddEdgeNode: %v", err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.Produced != produced {
		t.Fatalf("produced %d, want %d", res.Produced, produced)
	}
	assertCountInvariant(t, "event-time detach",
		res.EstimateCount+res.LateDroppedInput, float64(res.Produced))
}

// TestEventTimeRescaleCloseUnwedged regression-tests the shutdown path
// after mid-run rebalances: growing a group reassigns partitions, so a
// member can be left buffering windows for sub-streams it no longer owns —
// with keyed EOS delivery it would hear nothing ever again and Close would
// spin to DrainTimeout. The per-partition EOS broadcast (and the allStale
// force-drain backstop) must close such members in-band.
func TestEventTimeRescaleCloseUnwedged(t *testing.T) {
	cfg := elasticConfig(checkpoint.NewMemoryStore())
	cfg.EventTime = true
	cfg.AllowedLateness = 300 * time.Millisecond
	cfg.DrainTimeout = 20 * time.Second
	s, err := OpenLive(nil, cfg)
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	var produced int64
	for r := 0; r < 8; r++ {
		produced += pushEventRound(t, s, r, 20)
		if r == 4 {
			// Widen every leaf group mid-run: partitions rebalance, and
			// whichever member loses a sub-stream's partition is left
			// holding its buffered windows.
			for _, node := range []string{"edge1-0", "edge1-1", "edge1-2", "edge1-3"} {
				if _, err := s.AddMember(node); err != nil {
					t.Fatalf("AddMember(%s): %v", node, err)
				}
			}
		}
		time.Sleep(cfg.Window / 2)
	}
	start := time.Now()
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if took := time.Since(start); took > cfg.DrainTimeout/2 {
		t.Fatalf("close took %v — quiesced via timeout, not in-band", took)
	}
	if res.Produced != produced {
		t.Fatalf("produced %d, want %d", res.Produced, produced)
	}
	assertCountInvariant(t, "event-time rescale close",
		res.EstimateCount+res.LateDroppedInput, float64(res.Produced))
}
