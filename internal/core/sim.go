package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/approxiot/approxiot/internal/metrics"
	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/netsim"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/sample"
	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/vclock"
	"github.com/approxiot/approxiot/internal/workload"
	"github.com/approxiot/approxiot/internal/xrand"
)

// SamplerFactory builds the sampling strategy for one node of the tree.
// layer is -1 for none (unused), 0..rootLayer otherwise.
type SamplerFactory func(layer, node int, seed uint64) sample.Sampler

// WHSFactory configures every node with weighted hierarchical sampling —
// the ApproxIoT system. The default allocator is WaterFill so unbalanced
// sub-streams cannot strand budget; pass sample.WithAllocator to override.
func WHSFactory(opts ...sample.WHSOption) SamplerFactory {
	return func(layer, node int, seed uint64) sample.Sampler {
		all := make([]sample.WHSOption, 0, len(opts)+1)
		all = append(all, sample.WithAllocator(sample.WaterFill{}))
		all = append(all, opts...)
		return sample.NewWHS(xrandFor(layer, node, seed), all...)
	}
}

// SRSFactory configures the SRS baseline: the first edge layer flips a coin
// per item at the configured fraction (thinning the stream to the system's
// end-to-end sampling fraction, matching ApproxIoT's effective budget) and
// layers above forward the survivors. SRS needs no window, so it pairs with
// SimConfig.Streaming.
func SRSFactory(fraction float64) SamplerFactory {
	return func(layer, node int, seed uint64) sample.Sampler {
		if layer == 0 {
			return sample.NewCoinFlipFraction(xrandFor(layer, node, seed), fraction)
		}
		return sample.Passthrough{}
	}
}

// SRSBudgetFactory configures coin-flip sampling whose keep probability
// tracks the node's interval budget instead of a fixed fraction (windowed
// operation).
func SRSBudgetFactory() SamplerFactory {
	return func(layer, node int, seed uint64) sample.Sampler {
		return sample.NewCoinFlip(xrandFor(layer, node, seed))
	}
}

// NativeFactory disables sampling everywhere — the native baseline.
func NativeFactory() SamplerFactory {
	return func(int, int, uint64) sample.Sampler { return sample.Passthrough{} }
}

// ParallelWHSFactory configures nodes with the §III-E parallel sampler.
func ParallelWHSFactory(workers int) SamplerFactory {
	return func(layer, node int, seed uint64) sample.Sampler {
		return sample.NewParallelWHS(workers, nodeSeed(layer, node, seed))
	}
}

// Failure takes one node offline for a period: while down, the node drops
// everything it would have forwarded (crash of a sampling node).
type Failure struct {
	Layer int
	Node  int
	At    time.Duration // offset from simulation start
	For   time.Duration
}

// SimConfig describes one simulated experiment.
type SimConfig struct {
	// Spec is the tree deployment (topology.Testbed() reproduces §V-A).
	Spec topology.TreeSpec
	// Source returns the workload generator for source node i. Required.
	Source func(i int) workload.Source
	// NewSampler builds each node's strategy. Required.
	NewSampler SamplerFactory
	// Cost is the budget→sample-size policy, shared by all nodes. Required.
	Cost CostFunction
	// Duration is how long sources generate. After it, the pipeline drains.
	Duration time.Duration
	// RootServiceRate is the datacenter's processing capacity in
	// items/second (0 = infinite). The saturation experiments set this.
	RootServiceRate float64
	// ChunksPerWindow is the source send granularity (default 8).
	ChunksPerWindow int
	// Queries lists the aggregates the root runs per window (default SUM).
	Queries []query.Kind
	// Slide, when ≥ 2, composes sliding-window estimates from the last
	// Slide tumbling panes at the root (pane composition): each reported
	// window additionally carries WindowResult.Sliding for the additive
	// query kinds (SUM/COUNT), with variances added across panes.
	Slide int
	// Streaming makes edge nodes forward immediately instead of buffering
	// a window: each arriving batch is sampled and shipped on the spot.
	// This models the SRS and native baselines, which need no window at
	// the edge layers (the Fig. 9 contrast) — only the root's query window
	// remains. Reservoir-based strategies need Streaming=false.
	Streaming bool
	// EventTime switches window assignment from arrival order to
	// event-time tumbling windows of Spec.Window length, driven by the
	// same per-source watermark machinery the live runner uses — in
	// virtual time. With LinkJitter reordering deliveries, records are
	// assigned to the window their timestamp names, and records past the
	// lateness horizon land in SimResult.LateDropped. Incompatible with
	// Streaming.
	EventTime bool
	// AllowedLateness is how far event time may run behind the watermark
	// before a window closes (see LiveConfig.AllowedLateness). Only
	// meaningful with EventTime.
	AllowedLateness time.Duration
	// IdleTimeout bounds how long a silent sub-stream can hold the
	// watermark back, in virtual time (default 4×Spec.Window, raised to
	// AllowedLateness if that is larger; negative disables the exclusion).
	// Only meaningful with EventTime.
	IdleTimeout time.Duration
	// Confidence for error bounds (default 95%).
	Confidence stats.Confidence
	// Seed drives all samplers.
	Seed uint64
	// Feedback, when set, closes the §IV-B loop on the simulated tree:
	// every node's budget reads the controller's fraction (effective
	// end-to-end semantics, like EffectiveFractionBudget), and at each
	// root window close the controller observes the result of the first
	// registered non-COUNT query kind (COUNT is exact by Eq. 8, so its
	// bound is uninformative) and adjusts. Feedback takes precedence over
	// Cost (which may then be nil). In simulation the controller is shared
	// memory — the live runner's control topic is the distributed form of
	// the same loop. A controller is stateful — use a fresh one per run.
	Feedback *FeedbackController
	// OnWindow, if set, observes every window result as it is produced,
	// after the feedback step.
	OnWindow func(WindowResult)
	// Failures optionally crash nodes mid-run.
	Failures []Failure
	// LinkJitter perturbs every link's propagation delay by a seeded
	// uniform ± amount (0 = none). Batches may arrive out of order.
	LinkJitter time.Duration
	// LinkLoss drops each link message independently with this
	// probability (0 = lossless). Lost batches are simply gone — the
	// estimate degrades but the pipeline keeps running.
	LinkLoss float64
	// DrainWindows is how many extra windows to run after Duration so
	// in-flight data reaches the root (default: layers + 2).
	DrainWindows int
}

// SimResult is everything a simulated run measured.
type SimResult struct {
	// Windows holds every root window result in order.
	Windows []WindowResult
	// Latency is the end-to-end item latency distribution (source
	// timestamp → root query execution), over sampled items.
	Latency *metrics.Histogram
	// LayerBytes[l] is the total bytes carried by the links into layer l.
	LayerBytes []int64
	// LayerMessages[l] counts link-level messages into layer l.
	LayerMessages []int64
	// Generated counts items produced at the sources.
	Generated int64
	// TruthSum and TruthCount are exact per-sub-stream ground truth
	// accumulated at generation time.
	TruthSum   map[stream.SourceID]float64
	TruthCount map[stream.SourceID]int64
	// RootObserved counts items that reached the root (post edge
	// sampling, pre root sampling).
	RootObserved int64
	// LateDropped counts items that arrived past the lateness horizon in
	// event-time mode: their window had already closed at the node that
	// would have buffered them (counted once, at the first node that
	// rejects them). Always 0 in processing-time mode.
	LateDropped int64
	// LateDroppedInput is the estimated original input the late-dropped
	// records represent (each drop weighted by its batch's compounded
	// weight). At leaves this equals LateDropped; when an interior node
	// drops an already-sampled batch it exceeds it. The exact identity is
	// Σ Windows.EstimatedInput + LateDroppedInput == Produced.
	LateDroppedInput float64
	// Fractions is the adaptive trajectory: the controller's fraction
	// after observing each entry of Windows, in order. Nil when Feedback
	// is not configured.
	Fractions []float64
	// Elapsed is the simulated time covered (duration + drain).
	Elapsed time.Duration
}

// TotalTruth returns the exact total of all generated item values.
func (r *SimResult) TotalTruth() float64 {
	var t float64
	for _, v := range r.TruthSum {
		t += v
	}
	return t
}

// TotalEstimate sums a query kind's estimates across windows. For SUM and
// COUNT this estimates the run total.
func (r *SimResult) TotalEstimate(kind query.Kind) float64 {
	var t float64
	for _, w := range r.Windows {
		t += w.Result(kind).Estimate.Value
	}
	return t
}

// AccuracyLoss returns the paper's accuracy-loss metric for the run total
// of a SUM or COUNT query: |approx − exact| / exact.
func (r *SimResult) AccuracyLoss(kind query.Kind) float64 {
	var exact float64
	switch kind {
	case query.Sum:
		exact = r.TotalTruth()
	case query.Count:
		for _, c := range r.TruthCount {
			exact += float64(c)
		}
	default:
		return 0
	}
	return stats.AccuracyLoss(r.TotalEstimate(kind), exact)
}

// TotalBytes sums link traffic across all layers.
func (r *SimResult) TotalBytes() int64 {
	var t int64
	for _, b := range r.LayerBytes {
		t += b
	}
	return t
}

// Configuration errors.
var (
	ErrNoSourceFunc = errors.New("core: SimConfig.Source is required")
	ErrNoSampler    = errors.New("core: SimConfig.NewSampler is required")
	ErrNoCost       = errors.New("core: SimConfig.Cost is required")
	ErrNoDuration   = errors.New("core: SimConfig.Duration must be positive")
)

func nodeSeed(layer, node int, seed uint64) uint64 {
	return seed ^ (uint64(layer+1) << 32) ^ uint64(node+1)
}

func xrandFor(layer, node int, seed uint64) *xrand.Rand {
	return xrand.New(nodeSeed(layer, node, seed))
}

// simNode is one computing node plus its uplink.
type simNode struct {
	id     string // compiled node ID; the watermark origin for forwards
	node   *Node
	uplink *netsim.Link
	parent *simNode // nil for root
	isRoot bool
	root   *Root
	// Event-time mode: per-event-window Ψ and the node's watermark state,
	// exactly the structures the live members carry.
	ew *eventWindows
	wt *watermarkTracker
	// downs lists [from, to) windows during which the node is crashed.
	downs []timeRange
}

type timeRange struct{ from, to time.Time }

// down reports whether the node is inside a failure window at instant t.
func (sn *simNode) down(t time.Time) bool {
	for _, r := range sn.downs {
		if !t.Before(r.from) && t.Before(r.to) {
			return true
		}
	}
	return false
}

// RunSim executes one experiment and returns its measurements.
func RunSim(cfg SimConfig) (*SimResult, error) {
	if cfg.Feedback != nil {
		cfg.Cost = feedbackCost{ctl: cfg.Feedback}
	}
	plan, err := CompilePlan(PlanConfig{
		Spec:       cfg.Spec,
		NewSampler: cfg.NewSampler,
		Cost:       cfg.Cost,
		Queries:    cfg.Queries,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Source == nil {
		return nil, ErrNoSourceFunc
	}
	if cfg.Duration <= 0 {
		return nil, ErrNoDuration
	}
	if cfg.Feedback != nil && feedbackKind(plan.Queries) == query.Count {
		return nil, ErrFeedbackNeedsQuery
	}
	if cfg.ChunksPerWindow <= 0 {
		cfg.ChunksPerWindow = 8
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = stats.TwoSigma
	}
	if cfg.DrainWindows <= 0 {
		cfg.DrainWindows = len(cfg.Spec.Layers) + 2
	}
	if cfg.EventTime {
		if cfg.Streaming {
			return nil, ErrEventTimeStreaming
		}
		if cfg.AllowedLateness < 0 {
			cfg.AllowedLateness = 0
		}
		switch {
		case cfg.IdleTimeout == 0:
			// Default: several windows, but never less than the lateness
			// horizon (mirrors the live runner — a source pausing within
			// its promised lateness must not be aged out of the minimum).
			cfg.IdleTimeout = 4 * plan.Spec.Window
			if cfg.AllowedLateness > cfg.IdleTimeout {
				cfg.IdleTimeout = cfg.AllowedLateness
			}
		case cfg.IdleTimeout < 0:
			cfg.IdleTimeout = 0 // tracker semantics: 0 = never exclude
		}
	}
	var late lateCounter // event-time mode: records past the lateness horizon

	epoch := time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)
	sim := vclock.NewSim(epoch)
	spec := plan.Spec
	rootLayer := plan.RootLayer()

	res := &SimResult{
		Latency:       metrics.NewHistogram(),
		LayerBytes:    make([]int64, len(spec.Layers)),
		LayerMessages: make([]int64, len(spec.Layers)),
		TruthSum:      make(map[stream.SourceID]float64),
		TruthCount:    make(map[stream.SourceID]int64),
	}

	// Instantiate the compiled plan bottom-up: parent edges, IDs, and seed
	// lineage all come from the node descriptors. Event-time mode swaps
	// every node's single-interval Ψ for a per-event-window store plus a
	// watermark tracker — the same structures the live members carry.
	engine := query.NewEngine(query.WithConfidence(cfg.Confidence))
	layers := make([][]*simNode, len(spec.Layers))
	var root *simNode
	for l := len(spec.Layers) - 1; l >= 0; l-- {
		layers[l] = make([]*simNode, len(plan.Layers[l]))
		for i, desc := range plan.Layers[l] {
			desc := desc
			sn := &simNode{id: desc.ID}
			if desc.IsRoot {
				sn.isRoot = true
				sn.root = plan.NewRoot(engine)
				root = sn
			} else {
				sn.node = plan.NewNode(desc)
				sn.parent = layers[desc.ParentLayer][desc.ParentIndex]
			}
			if cfg.EventTime {
				sn.ew = newEventWindows(spec.Window, cfg.AllowedLateness, &late,
					func() *Node { return plan.NewNode(desc) })
				sn.wt = newWatermarkTracker(cfg.IdleTimeout)
				// Statically-known producers hold the watermark until heard
				// from, exactly like the live members (see
				// Plan.ExpectedProducers).
				for _, from := range plan.ExpectedProducers(desc) {
					sn.wt.expect(from, epoch)
				}
			}
			layers[l][i] = sn
		}
	}

	// Links into each layer: one per child (sources feed layer 0).
	linkSeq := uint64(0)
	mkLink := func(ls topology.LayerSpec) *netsim.Link {
		linkSeq++
		opts := []netsim.LinkOption{
			netsim.WithRTT(ls.LinkRTT),
			netsim.WithBandwidth(ls.LinkBandwidth),
		}
		if cfg.EventTime {
			// Watermarks ride the data path, so per-chain delivery must be
			// ordered (as mq partitions are live): jitter then varies
			// latency — cross-link arrival order still scrambles — without
			// letting a watermark overtake the data it vouches for.
			opts = append(opts, netsim.WithFIFO())
		}
		if cfg.LinkJitter > 0 {
			opts = append(opts, netsim.WithJitter(cfg.LinkJitter, cfg.Seed^linkSeq))
		}
		if cfg.LinkLoss > 0 {
			opts = append(opts, netsim.WithLoss(cfg.LinkLoss, cfg.Seed^(linkSeq<<16)))
		}
		return netsim.NewLink(sim, opts...)
	}
	sourceLinks := make([]*netsim.Link, spec.Sources)
	sourceParents := make([]*simNode, spec.Sources)
	for s := 0; s < spec.Sources; s++ {
		sourceLinks[s] = mkLink(spec.Layers[0])
		sourceParents[s] = layers[0][plan.Sources[s].ParentIndex]
	}
	for l := 1; l < len(spec.Layers); l++ {
		for _, child := range layers[l-1] {
			child.uplink = mkLink(spec.Layers[l])
		}
	}

	// Root service model: arriving batches queue behind a server with a
	// fixed per-item cost before landing in the root's window store. An
	// item's end-to-end latency is measured the moment the root processes
	// it into the window aggregate (record-at-a-time, as in Kafka
	// Streams) — edge-window waits, network, and service queueing all
	// count; waiting for the window result to be emitted does not.
	var rootBusy time.Time
	ingestAtRoot := func(b stream.Batch, wm mq.Watermark) {
		now := sim.Now()
		for _, it := range b.Items {
			res.Latency.Observe(now.Sub(it.Ts))
		}
		if cfg.EventTime {
			// Ingest before folding the piggybacked watermark, mirroring
			// the live members: a record must land in the window its own
			// watermark may close.
			root.ew.ingest(b)
			switch {
			case wm.At.IsZero():
				if wm.From != "" {
					root.wt.keepalive(wm.From, now)
				}
			default:
				root.wt.update(wm, b.Source, now)
			}
			return
		}
		root.root.IngestBatch(b)
	}
	deliverToRoot := func(b stream.Batch, wm mq.Watermark) {
		res.RootObserved += int64(len(b.Items))
		if cfg.RootServiceRate <= 0 {
			ingestAtRoot(b, wm)
			return
		}
		start := sim.Now()
		if rootBusy.After(start) {
			start = rootBusy
		}
		work := time.Duration(float64(len(b.Items)) / cfg.RootServiceRate * float64(time.Second))
		rootBusy = start.Add(work)
		sim.At(rootBusy, func() { ingestAtRoot(b, wm) })
	}

	// forward sends one batch from a child node over its uplink (wm is the
	// piggybacked watermark, zero outside event-time mode); deliver hands a
	// batch to an edge node — buffering it into the node's window (default),
	// sampling-and-relaying immediately (Streaming), or assigning it to its
	// event-time window and advancing the node's watermark (EventTime).
	var deliver func(sn *simNode, layerIdx int, b stream.Batch, wm mq.Watermark)
	var advanceEvent func(sn *simNode, layerIdx int) bool
	forward := func(child *simNode, layerIdx int, b stream.Batch, wm mq.Watermark) {
		size := b.WireSize()
		res.LayerBytes[layerIdx+1] += int64(size)
		res.LayerMessages[layerIdx+1]++
		parent := child.parent
		child.uplink.Send(size, func() {
			if parent.isRoot {
				deliverToRoot(b, wm)
			} else {
				deliver(parent, layerIdx+1, b, wm)
			}
		})
	}
	deliver = func(sn *simNode, layerIdx int, b stream.Batch, wm mq.Watermark) {
		if cfg.EventTime {
			sn.ew.ingest(b)
			switch {
			case wm.At.IsZero():
				if wm.From != "" {
					sn.wt.keepalive(wm.From, sim.Now())
				}
			case sn.wt.update(wm, b.Source, sim.Now()):
				// First sight of this chain: announce it upstream at the
				// node's outbound watermark — never the inbound one, which
				// may promise windows this node has not flushed yet — so no
				// close can pass its data by (see the live runner's
				// announce).
				if out := sn.ew.outboundWatermark(); !out.IsZero() && !sn.down(sim.Now()) {
					forward(sn, layerIdx, heartbeat(b.Source), mq.Watermark{From: sn.id, At: out})
				}
			}
			advanceEvent(sn, layerIdx)
			return
		}
		sn.node.IngestBatch(b)
		if !cfg.Streaming {
			return
		}
		out := sn.node.CloseInterval()
		if sn.down(sim.Now()) {
			return
		}
		for _, ob := range out {
			forward(sn, layerIdx, ob, mq.Watermark{})
		}
	}
	// advanceEvent closes every event window the node's watermark makes
	// due, forwards the results, and reports whether the close bound
	// moved: data stamped with each window's dataWatermark (the watermark
	// ladder — see the live runner's advanceEventTime), then a heartbeat
	// per active sub-stream at the outbound watermark so parents advance
	// across empty windows. A crashed node still resets its windows but
	// forwards nothing, like the processing-time tick.
	advanceEvent = func(sn *simNode, layerIdx int) bool {
		now := sim.Now()
		wm := sn.wt.watermark(now)
		if !sn.ew.wouldAdvance(wm) {
			return false
		}
		closed := sn.ew.advance(wm)
		if sn.down(now) {
			return true
		}
		for _, cw := range closed {
			stamp := mq.Watermark{From: sn.id, At: sn.ew.dataWatermark(cw.start)}
			for _, b := range cw.theta {
				forward(sn, layerIdx, b, stamp)
			}
		}
		out := mq.Watermark{From: sn.id, At: sn.ew.outboundWatermark()}
		for _, src := range sn.wt.activeSources(now) {
			forward(sn, layerIdx, heartbeat(src), out)
		}
		return true
	}

	end := epoch.Add(cfg.Duration)
	drainEnd := end.Add(time.Duration(cfg.DrainWindows) * spec.Window)

	// Sources: every chunk, generate items and ship one batch per
	// sub-stream to the leaf layer.
	chunk := spec.Window / time.Duration(cfg.ChunksPerWindow)
	if chunk <= 0 {
		chunk = spec.Window
	}
	for s := 0; s < spec.Sources; s++ {
		s := s
		gen := cfg.Source(s)
		link, parent := sourceLinks[s], sourceParents[s]
		// Event-time mode: the source's per-sub-stream low watermark — the
		// highest event timestamp generated so far — piggybacks on every
		// batch it ships, exactly like the live Ingester valves.
		var marks map[stream.SourceID]time.Time
		if cfg.EventTime {
			marks = make(map[stream.SourceID]time.Time)
		}
		var tick func()
		tick = func() {
			now := sim.Now()
			if !now.Before(end) {
				return
			}
			items := gen.Generate(now, chunk)
			res.Generated += int64(len(items))
			for _, it := range items {
				res.TruthSum[it.Source] += it.Value
				res.TruthCount[it.Source]++
			}
			// One wire message per sub-stream present in the chunk.
			for start := 0; start < len(items); {
				endIdx := start + 1
				src := items[start].Source
				for endIdx < len(items) && items[endIdx].Source == src {
					endIdx++
				}
				b := stream.Batch{Source: src, Weight: 1, Items: items[start:endIdx]}
				var wm mq.Watermark
				if cfg.EventTime {
					mark := marks[src]
					for _, it := range b.Items {
						if it.Ts.After(mark) {
							mark = it.Ts
						}
					}
					marks[src] = mark
					wm = mq.Watermark{From: sourceFrom(s), At: mark}
				}
				size := b.WireSize()
				res.LayerBytes[0] += int64(size)
				res.LayerMessages[0]++
				if parent.isRoot {
					link.Send(size, func() { deliverToRoot(b, wm) })
				} else {
					link.Send(size, func() { deliver(parent, 0, b, wm) })
				}
				start = endIdx
			}
			sim.After(chunk, tick)
		}
		sim.At(epoch, tick)
	}

	// Failures: record each node's crash windows.
	for _, f := range cfg.Failures {
		if f.Layer < 0 || f.Layer >= len(layers) || f.Node < 0 || f.Node >= len(layers[f.Layer]) {
			return nil, fmt.Errorf("core: failure targets unknown node (%d,%d)", f.Layer, f.Node)
		}
		sn := layers[f.Layer][f.Node]
		sn.downs = append(sn.downs, timeRange{from: epoch.Add(f.At), to: epoch.Add(f.At + f.For)})
	}

	// Window ticks for sampling layers (streaming mode forwards inline).
	// In event-time mode the tick is the idle-source timeout: it re-derives
	// the node's watermark — silent sub-streams may now be excluded — and
	// sweeps windows that became due, instead of closing by arrival order.
	for l := 0; l < rootLayer && !cfg.Streaming; l++ {
		l := l
		for _, sn := range layers[l] {
			sn := sn
			var tick func()
			tick = func() {
				now := sim.Now()
				if cfg.EventTime {
					// Re-assert liveness upstream when the advance did not
					// (its own heartbeats already do — see the live
					// members' keepalive): a node buffering behind the
					// lateness horizon has forwarded nothing, and its
					// parent must not age it out of the minimum meanwhile.
					if !advanceEvent(sn, l) && !sn.down(now) {
						out := mq.Watermark{From: sn.id, At: sn.ew.outboundWatermark()}
						for _, src := range sn.wt.activeSources(now) {
							forward(sn, l, heartbeat(src), out)
						}
					}
				} else {
					out := sn.node.CloseInterval()
					if !sn.down(now) {
						for _, b := range out {
							forward(sn, l, b, mq.Watermark{})
						}
					}
				}
				if !now.Add(spec.Window).After(drainEnd) {
					sim.After(spec.Window, tick)
				}
			}
			sim.At(epoch.Add(spec.Window), tick)
		}
	}

	// emitRootWindow packages one window's Θ into a reported result and
	// steps the feedback loop — shared by the processing-time tick, the
	// event-time tick, and the end-of-stream sweep. Only windows that
	// aggregated at least one item are reported (the warm-up and drain
	// windows at the edges of the run are empty by construction).
	sliding := newSlidingState(cfg.Slide, spec.Window, cfg.Confidence, plan.Queries)
	emitRootWindow := func(result WindowResult) {
		if result.SampleSize == 0 {
			return
		}
		if sliding != nil {
			sliding.observe(&result)
		}
		res.Windows = append(res.Windows, result)
		if cfg.Feedback != nil {
			// §IV-B feedback step: in virtual time the adjusted
			// fraction is visible to every node's next window close
			// the moment Observe returns — the simulated analogue
			// of the live runner's control-topic broadcast.
			res.Fractions = append(res.Fractions, cfg.Feedback.Observe(result.Result(feedbackKind(plan.Queries))))
		}
		if cfg.OnWindow != nil {
			cfg.OnWindow(result)
		}
	}
	closeRootEvent := func(now, wm time.Time) {
		for _, cw := range root.ew.advance(wm) {
			win := NewWindowResult(now, engine, plan.Queries, cw.theta)
			win.Start = cw.startTime()
			win.End = win.Start.Add(spec.Window)
			emitRootWindow(win)
		}
	}

	// Root window ticks: run the queries over Θ — every event-time window
	// the root's watermark makes due, or the single processing-time window.
	{
		var tick func()
		tick = func() {
			now := sim.Now()
			if cfg.EventTime {
				closeRootEvent(now, root.wt.watermark(now))
			} else {
				result, _ := root.root.CloseWindow(now)
				emitRootWindow(result)
			}
			if !now.Add(spec.Window).After(drainEnd) {
				sim.After(spec.Window, tick)
			}
		}
		sim.At(epoch.Add(spec.Window), tick)
	}

	sim.Run()
	if cfg.EventTime {
		// End of stream: the event queue is drained, so nothing is in
		// flight — flush every remaining open window bottom-up with direct
		// delivery (there are no links left to ride), then sweep the root.
		// This is the virtual-time analogue of the live session's
		// end-of-stream watermark cascade at Close.
		for l := 0; l < rootLayer; l++ {
			for _, sn := range layers[l] {
				closed := sn.ew.advance(eosWatermark)
				if sn.down(sim.Now()) {
					continue
				}
				for _, cw := range closed {
					for _, b := range cw.theta {
						if sn.parent.isRoot {
							res.RootObserved += int64(len(b.Items))
							ingestAtRoot(b, mq.Watermark{From: sn.id, At: eosWatermark})
						} else {
							sn.parent.ew.ingest(b)
						}
					}
				}
			}
		}
		closeRootEvent(sim.Now(), eosWatermark)
		res.LateDropped = late.items.Load()
		res.LateDroppedInput = late.input.load()
	}
	res.Elapsed = sim.Now().Sub(epoch)
	return res, nil
}
