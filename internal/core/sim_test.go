package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
)

// microSource builds the per-source generator: the Gaussian micro mix with
// each sub-stream's rate split evenly across the 8 source nodes.
func microSource(seed uint64, perStreamRate float64) func(i int) workload.Source {
	return func(i int) workload.Source {
		return workload.GaussianMicro(seed+uint64(i)*1000, perStreamRate)
	}
}

func testbedConfig(fraction float64) SimConfig {
	return SimConfig{
		Spec:       topology.Testbed(),
		Source:     microSource(1, 250), // 4 sub-streams × 250/s × 8 sources = 8000 items/s
		NewSampler: WHSFactory(),
		Cost:       EffectiveFractionBudget{Fraction: fraction},
		Duration:   5 * time.Second,
		Queries:    []query.Kind{query.Sum, query.Count},
		Seed:       7,
	}
}

func TestSimValidatesConfig(t *testing.T) {
	valid := testbedConfig(0.5)

	cases := []struct {
		name   string
		mutate func(*SimConfig)
		want   error
	}{
		{"missing source", func(c *SimConfig) { c.Source = nil }, ErrNoSourceFunc},
		{"missing sampler", func(c *SimConfig) { c.NewSampler = nil }, ErrNoSampler},
		{"missing cost", func(c *SimConfig) { c.Cost = nil }, ErrNoCost},
		{"zero duration", func(c *SimConfig) { c.Duration = 0 }, ErrNoDuration},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			if _, err := RunSim(cfg); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("invalid spec", func(t *testing.T) {
		cfg := valid
		cfg.Spec.Sources = 0
		if _, err := RunSim(cfg); err == nil {
			t.Fatal("invalid spec accepted")
		}
	})
	t.Run("failure out of range", func(t *testing.T) {
		cfg := valid
		cfg.Failures = []Failure{{Layer: 9, Node: 0}}
		if _, err := RunSim(cfg); err == nil {
			t.Fatal("out-of-range failure accepted")
		}
	})
}

// TestSimCountInvariantEndToEnd is the headline correctness property: after
// the pipeline drains, the root's estimated item count equals the number of
// generated items exactly (Eq. 8 composed over three hops and all windows).
func TestSimCountInvariantEndToEnd(t *testing.T) {
	for _, fraction := range []float64{0.1, 0.5, 1.0} {
		res, err := RunSim(testbedConfig(fraction))
		if err != nil {
			t.Fatalf("RunSim(f=%g): %v", fraction, err)
		}
		if res.Generated == 0 {
			t.Fatal("no items generated")
		}
		gotCount := res.TotalEstimate(query.Count)
		if rel := math.Abs(gotCount-float64(res.Generated)) / float64(res.Generated); rel > 1e-9 {
			t.Errorf("f=%g: estimated count %.1f vs generated %d (rel %.2e) — Eq. 8 violated",
				fraction, gotCount, res.Generated, rel)
		}
	}
}

func TestSimAccuracyImprovesWithFraction(t *testing.T) {
	loss := func(fraction float64) float64 {
		res, err := RunSim(testbedConfig(fraction))
		if err != nil {
			t.Fatalf("RunSim: %v", err)
		}
		return res.AccuracyLoss(query.Sum)
	}
	low, high := loss(0.05), loss(0.9)
	if high > low {
		t.Fatalf("loss at 90%% (%g) exceeds loss at 5%% (%g)", high, low)
	}
	if low > 0.05 {
		t.Fatalf("loss at 5%% fraction = %g, want < 5%% for the Gaussian mix", low)
	}
}

func TestSimNativeIsExact(t *testing.T) {
	cfg := testbedConfig(1)
	cfg.NewSampler = NativeFactory()
	cfg.Cost = FractionBudget{Fraction: 1}
	cfg.Streaming = true
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if got := res.AccuracyLoss(query.Sum); got > 1e-9 {
		t.Fatalf("native execution accuracy loss = %g, want 0", got)
	}
	if res.RootObserved != res.Generated {
		t.Fatalf("native root observed %d of %d items", res.RootObserved, res.Generated)
	}
}

func TestSimSRSUnbiasedButNoisier(t *testing.T) {
	whs, err := RunSim(testbedConfig(0.1))
	if err != nil {
		t.Fatalf("WHS run: %v", err)
	}
	cfg := testbedConfig(0.1)
	cfg.NewSampler = SRSFactory(0.1)
	cfg.Streaming = true
	srs, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("SRS run: %v", err)
	}
	// Both should land near the truth; WHS at least as close in this
	// deterministic configuration.
	if srs.AccuracyLoss(query.Sum) > 0.5 {
		t.Fatalf("SRS loss = %g, implausibly bad for 10%% on balanced Gaussian", srs.AccuracyLoss(query.Sum))
	}
	if whs.AccuracyLoss(query.Sum) > srs.AccuracyLoss(query.Sum)+0.01 {
		t.Fatalf("WHS loss %g not better than SRS loss %g",
			whs.AccuracyLoss(query.Sum), srs.AccuracyLoss(query.Sum))
	}
}

func TestSimBandwidthScalesWithFraction(t *testing.T) {
	full, err := RunSim(testbedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tenth, err := RunSim(testbedConfig(0.1))
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0 (sources → edge1) is unsampled: identical bytes.
	if full.LayerBytes[0] != tenth.LayerBytes[0] {
		t.Fatalf("source-layer bytes differ: %d vs %d", full.LayerBytes[0], tenth.LayerBytes[0])
	}
	// Layers 1+ carry ~10% of the native bytes at fraction 0.1.
	ratio := float64(tenth.LayerBytes[1]+tenth.LayerBytes[2]) / float64(full.LayerBytes[1]+full.LayerBytes[2])
	if ratio < 0.05 || ratio > 0.2 {
		t.Fatalf("sampled-layer byte ratio = %.3f, want ~0.1", ratio)
	}
}

func TestSimLatencyReflectsRootSaturation(t *testing.T) {
	fast := testbedConfig(1)
	fast.NewSampler = NativeFactory()
	fast.Streaming = true
	fast.RootServiceRate = 1e9 // effectively unloaded
	unloaded, err := RunSim(fast)
	if err != nil {
		t.Fatal(err)
	}

	slow := fast
	slow.RootServiceRate = 4000 // offered 8000/s → 2× overload
	saturated, err := RunSim(slow)
	if err != nil {
		t.Fatal(err)
	}
	if saturated.Latency.Mean() < 2*unloaded.Latency.Mean() {
		t.Fatalf("saturated mean latency %v not ≫ unloaded %v",
			saturated.Latency.Mean(), unloaded.Latency.Mean())
	}
}

func TestSimWindowedLatencyGrowsWithWindow(t *testing.T) {
	mean := func(window time.Duration) time.Duration {
		cfg := testbedConfig(0.1)
		cfg.Spec.Window = window
		cfg.Duration = 10 * window
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean()
	}
	small, large := mean(500*time.Millisecond), mean(4*time.Second)
	if large <= small {
		t.Fatalf("latency did not grow with window: %v (0.5s) vs %v (4s)", small, large)
	}
}

func TestSimStreamingSRSLatencyFlatAcrossWindows(t *testing.T) {
	mean := func(window time.Duration) time.Duration {
		cfg := testbedConfig(0.1)
		cfg.NewSampler = SRSFactory(0.1)
		cfg.Streaming = true
		cfg.Spec.Window = window
		cfg.Duration = 10 * window
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean()
	}
	small, large := mean(500*time.Millisecond), mean(4*time.Second)
	// SRS latency is dominated by the root window only; it may grow with
	// the root window but far less than proportionally… the paper's claim
	// is that it stays (nearly) flat because edges do not wait. Allow the
	// root-window component: large/small must stay well under the 8×
	// window growth.
	if float64(large) > 4*float64(small) {
		t.Fatalf("streaming SRS latency grew %vx with window (%v → %v)",
			float64(large)/float64(small), small, large)
	}
}

func TestSimNodeFailureDegradesGracefully(t *testing.T) {
	cfg := testbedConfig(0.5)
	cfg.Failures = []Failure{{Layer: 0, Node: 0, At: time.Second, For: 2 * time.Second}}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim with failure: %v", err)
	}
	// The crashed edge node drops its windows: the root must see fewer
	// items than generated, but the run completes and the remaining
	// estimate stays sane.
	gotCount := res.TotalEstimate(query.Count)
	if gotCount >= float64(res.Generated) {
		t.Fatalf("failure had no effect: estimated %g of %d", gotCount, res.Generated)
	}
	if gotCount < float64(res.Generated)/2 {
		t.Fatalf("single node failure lost too much: %g of %d", gotCount, res.Generated)
	}
	if len(res.Windows) == 0 {
		t.Fatal("no windows produced")
	}
}

func TestSimSingleNodeTopology(t *testing.T) {
	cfg := testbedConfig(0.3)
	cfg.Spec = topology.SingleNode(4)
	cfg.Spec.Window = time.Second
	cfg.Source = func(i int) workload.Source {
		return workload.GaussianMicro(uint64(i)+10, 500)
	}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim single-node: %v", err)
	}
	gotCount := res.TotalEstimate(query.Count)
	if rel := math.Abs(gotCount-float64(res.Generated)) / float64(res.Generated); rel > 1e-9 {
		t.Fatalf("single-node Eq. 8 violated: %g vs %d", gotCount, res.Generated)
	}
}

func TestSimParallelWHSFactory(t *testing.T) {
	cfg := testbedConfig(0.2)
	cfg.NewSampler = ParallelWHSFactory(4)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim parallel: %v", err)
	}
	gotCount := res.TotalEstimate(query.Count)
	if rel := math.Abs(gotCount-float64(res.Generated)) / float64(res.Generated); rel > 1e-9 {
		t.Fatalf("parallel WHS Eq. 8 violated: %g vs %d", gotCount, res.Generated)
	}
}

func TestSimOnWindowCallback(t *testing.T) {
	cfg := testbedConfig(0.5)
	calls := 0
	cfg.OnWindow = func(WindowResult) { calls++ }
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(res.Windows) {
		t.Fatalf("OnWindow fired %d times for %d windows", calls, len(res.Windows))
	}
	if calls == 0 {
		t.Fatal("no windows observed")
	}
}

func TestSimDeterministicAcrossRuns(t *testing.T) {
	a, err := RunSim(testbedConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(testbedConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if a.Generated != b.Generated {
		t.Fatalf("generated differ: %d vs %d", a.Generated, b.Generated)
	}
	if a.TotalEstimate(query.Sum) != b.TotalEstimate(query.Sum) {
		t.Fatalf("estimates differ: %g vs %g", a.TotalEstimate(query.Sum), b.TotalEstimate(query.Sum))
	}
	if a.TotalBytes() != b.TotalBytes() {
		t.Fatalf("bytes differ: %d vs %d", a.TotalBytes(), b.TotalBytes())
	}
}

func TestSimErrorBoundCoversTruth(t *testing.T) {
	// With the 95% bound and ~25 windows, the per-window interval should
	// cover the per-window truth most of the time. We check the run total:
	// combined bound must cover the true total.
	res, err := RunSim(testbedConfig(0.2))
	if err != nil {
		t.Fatal(err)
	}
	var est, varSum float64
	for _, w := range res.Windows {
		r := w.Result(query.Sum)
		est += r.Estimate.Value
		varSum += r.Estimate.Variance
	}
	bound := 3 * math.Sqrt(varSum) // 99.7%
	truth := res.TotalTruth()
	if math.Abs(est-truth) > bound {
		t.Fatalf("run total %0.f outside truth %0.f ± %0.f", est, truth, bound)
	}
}

// TestSimLongTailedStreams checks the §III-A claim that the algorithm
// handles long-tailed (bursty) streams as well as uniform-speed ones: the
// same sub-streams arriving in staggered bursts must estimate as accurately
// as their uniform twin at the same long-run rates.
func TestSimLongTailedStreams(t *testing.T) {
	run := func(bursty bool) float64 {
		cfg := testbedConfig(0.2)
		cfg.Source = func(i int) workload.Source {
			seed := uint64(i)*1000 + 1
			if bursty {
				return workload.LongTailed(seed, 250)
			}
			return workload.GaussianMicro(seed, 250)
		}
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Invariant must hold regardless of burstiness.
		gotCount := res.TotalEstimate(query.Count)
		if rel := math.Abs(gotCount-float64(res.Generated)) / float64(res.Generated); rel > 1e-9 {
			t.Fatalf("bursty=%v: Eq. 8 violated (%g vs %d)", bursty, gotCount, res.Generated)
		}
		return res.AccuracyLoss(query.Sum)
	}
	uniform, longTailed := run(false), run(true)
	if longTailed > 10*uniform+0.01 {
		t.Fatalf("long-tailed loss %g far above uniform %g", longTailed, uniform)
	}
}
