package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/metrics"
	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/streams"
	"github.com/approxiot/approxiot/internal/transport"
)

// This file is the multi-process form of the live session: a NodeSession
// runs ONE slice of the compiled tree — some edge layers, the root, or just
// the source valves — against a caller-supplied transport bus, so a 3-tier
// deployment can run as three (or more) OS processes sharing a broker
// daemon over TCP (internal/transport/tcp), the shape the paper's
// Kafka-based prototype deploys in. Every process compiles the SAME plan
// from the same LiveConfig, so topic names, partition counts, member IDs,
// seed lineages, and watermark expectations agree by construction; the
// cross-process contract is the plan, not any runtime handshake.
//
// Determinism contract: node mode requires event-time windows. Processing-
// time windows are cut by each process's private wall clock, so two
// processes could never agree on window contents; event-time windows are
// cut by record timestamps and closed by watermarks that travel with the
// data, which is exactly what makes the multi-process run produce per-
// window counts identical to a single-process run of the same workload.
//
// Completion flows with the data too. The source process pushes its items,
// then FinishIngest broadcasts the end-of-stream watermark; the close wave
// cascades bottom-up through every tier exactly as it does inside a single
// process, and when the root's merged watermark reaches end-of-stream the
// root session publishes a completion marker on the plan's control topic.
// Edge-tier processes WaitDone on that marker — by then everything they
// will ever consume has been forwarded — then Drain and exit.

// Node-mode errors.
var (
	// ErrNodeNeedsBus rejects OpenNode without a caller-supplied bus: a
	// process-per-tier deployment is meaningless on a private in-memory
	// broker no other process can reach.
	ErrNodeNeedsBus = errors.New("core: node sessions need a shared transport bus (set LiveConfig.Bus)")
	// ErrNodeNeedsEventTime rejects processing-time node sessions: windows
	// cut by per-process wall clocks cannot agree across processes.
	ErrNodeNeedsEventTime = errors.New("core: node sessions require EventTime (wall-clock windows are per-process and cannot merge exactly)")
	// ErrNodeUnsupported rejects LiveConfig features that need the whole
	// tree in one process (the feedback loop's root-colocated controller,
	// checkpoint restarts driven by the session's elastic layer).
	ErrNodeUnsupported = errors.New("core: node sessions do not support Feedback or Checkpoint")
	// ErrNodeTierEmpty rejects a tier that selects nothing to run.
	ErrNodeTierEmpty = errors.New("core: node tier selects no layers, no root, and no ingest valves")
	// ErrNodeBadLayer rejects a tier layer outside the plan's edge layers.
	ErrNodeBadLayer = errors.New("core: node tier layer out of range (select the root with NodeTier.Root)")
)

// nodeDoneMarker is the control-topic record the root session publishes
// when its merged watermark reaches end-of-stream. Its length differs from
// controlRecordSize, so an adaptive member's control drain (decodeControl)
// rejects and skips it — the marker can never be mistaken for a fraction.
var nodeDoneMarker = []byte("approxiot:eos-done")

// NodeTier selects the slice of the compiled tree one process runs.
type NodeTier struct {
	// Layers lists the edge layers (0-based, bottom-up) whose shard groups
	// this process runs. The root layer is selected by Root, never here.
	Layers []int
	// Root runs the root consumer group, the window merger, and the
	// completion detector in this process.
	Root bool
	// Ingest makes this process a source: Push/Pusher valves publish into
	// the leaf topics with backpressure, and FinishIngest broadcasts the
	// end-of-stream watermark. A process may combine Ingest with Layers
	// (the usual leaf-tier shape) or run ingest-only (a sensor gateway).
	Ingest bool
}

// NodeResult is the slice of a run's measurement a single tier can vouch
// for. Only the source tier has a meaningful Produced; only the root tier
// has Windows; every tier counts its own decode errors and late drops —
// cross-process accounting identities (Σ window counts + late-dropped
// input = produced) are assembled by whoever can see all tiers.
type NodeResult struct {
	// Produced counts items pushed through this process's valves.
	Produced int64
	// RootProcessed counts items the root members aggregated (root tier).
	RootProcessed int64
	// DecodeErrors counts undecodable data-plane records seen here.
	DecodeErrors int64
	// LateDropped / LateDroppedInput count records this tier dropped past
	// the lateness horizon, in items and estimated original input.
	LateDropped      int64
	LateDroppedInput float64
	// Windows holds the merged window results, in event-time order (root
	// tier only).
	Windows []WindowResult
}

// NodeSession is one process's slice of a live deployment. Construct with
// OpenNode; all methods are safe for concurrent use. The session never
// owns its bus — Close leaves the backend (and the topics it holds)
// running for the other tiers.
type NodeSession struct {
	cfg  LiveConfig
	plan *Plan
	tier NodeTier
	bus  transport.Bus

	groups    []*shardGroup // edge groups, then the root group last
	rootGrp   *shardGroup
	rootProcs []*rootProcessor
	engine    *query.Engine

	// Root-tier window state, guarded by windowMu like the live session's.
	windowMu      sync.Mutex
	windows       []WindowResult
	windowsClosed atomic.Int64

	produced      atomic.Int64
	rootProcessed atomic.Int64
	decodeErrs    atomic.Int64
	late          lateCounter
	lastActivity  atomic.Int64
	startNanos    atomic.Int64
	started       atomic.Bool
	quiesce       atomic.Bool
	bw            *metrics.BandwidthAccount

	valveMu sync.Mutex
	valves  []*NodePusher

	cancelTick context.CancelFunc
	tickWG     sync.WaitGroup

	doneOnce sync.Once
	done     chan struct{} // root tier: merged watermark reached end-of-stream

	closeOnce sync.Once
	closed    chan struct{}
	res       *NodeResult
}

// OpenNode instantiates one tier of cfg's deployment against cfg.Bus and
// returns the running slice. Every process of the deployment must pass an
// identical LiveConfig (same spec, seed, partitions, shards, window
// parameters) — the compiled plan is the cross-process contract — and a
// tier that names its own share. Cancelling ctx aborts the session without
// a drain; a nil ctx behaves like context.Background().
func OpenNode(ctx context.Context, cfg LiveConfig, tier NodeTier) (*NodeSession, error) {
	if cfg.Bus == nil {
		return nil, ErrNodeNeedsBus
	}
	if !cfg.EventTime {
		return nil, ErrNodeNeedsEventTime
	}
	if cfg.Feedback != nil || cfg.Checkpoint != nil {
		return nil, ErrNodeUnsupported
	}
	if !tier.Root && !tier.Ingest && len(tier.Layers) == 0 {
		return nil, ErrNodeTierEmpty
	}
	cfg, plan, err := compileLive(cfg)
	if err != nil {
		return nil, err
	}
	layers := append([]int(nil), tier.Layers...)
	sort.Ints(layers)
	for i, l := range layers {
		if l < 0 || l >= plan.RootLayer() {
			return nil, fmt.Errorf("%w: layer %d of %d edge layers", ErrNodeBadLayer, l, plan.RootLayer())
		}
		if i > 0 && layers[i-1] == l {
			return nil, fmt.Errorf("%w: layer %d selected twice", ErrNodeBadLayer, l)
		}
	}
	tier.Layers = layers

	n := &NodeSession{
		cfg:    cfg,
		plan:   plan,
		tier:   tier,
		bus:    cfg.Bus,
		bw:     metrics.NewBandwidthAccount(),
		valves: make([]*NodePusher, plan.Spec.Sources),
		done:   make(chan struct{}),
		closed: make(chan struct{}),
	}
	now := time.Now()
	n.startNanos.Store(now.UnixNano())
	n.lastActivity.Store(now.UnixNano())

	// Every process creates every topic: creation is idempotent at equal
	// partition counts, so tiers race their startups safely and no tier
	// depends on another being up first.
	for _, td := range plan.Topics() {
		if err := n.bus.CreateTopic(td.Name, td.Partitions, 4096); err != nil {
			return nil, err
		}
	}

	fail := func(err error) (*NodeSession, error) {
		for i := len(n.groups) - 1; i >= 0; i-- {
			n.groups[i].stop()
		}
		return nil, err
	}
	for _, l := range tier.Layers {
		for _, desc := range plan.Layers[l] {
			grp, err := n.buildEdgeGroup(desc, now)
			if err != nil {
				return fail(err)
			}
			n.groups = append(n.groups, grp)
		}
	}
	if tier.Root {
		grp, err := n.buildRootGroup(now)
		if err != nil {
			return fail(err)
		}
		n.rootGrp = grp
		n.groups = append(n.groups, grp)
		n.engine = query.NewEngine(query.WithConfidence(cfg.Confidence))
	}
	for _, g := range n.groups {
		if err := g.start(); err != nil {
			return fail(err)
		}
	}

	if tier.Root {
		// The root tier's sweep ticker plays the live session's window
		// ticker role: merge the members' watermarks, emit due windows, and
		// detect end-of-stream.
		tickCtx, cancel := context.WithCancel(context.Background())
		n.cancelTick = cancel
		n.tickWG.Add(1)
		go func() {
			defer n.tickWG.Done()
			ticker := time.NewTicker(cfg.Window)
			defer ticker.Stop()
			for {
				select {
				case <-tickCtx.Done():
					return
				case at := <-ticker.C:
					n.sweep(at)
				}
			}
		}()
	}

	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				n.Close()
			case <-n.closed:
			}
		}()
	}
	return n, nil
}

// buildEdgeGroup instantiates one compiled edge node as a consumer group,
// wiring its members exactly as OpenLive does (same member IDs, same seed
// lineages, same FixedBudget split, same watermark expectations) minus the
// feedback and checkpoint plumbing node mode rejects — that parity is what
// makes a multi-process run's windows identical to a single-process run's.
func (n *NodeSession) buildEdgeGroup(desc NodeDesc, now time.Time) (*shardGroup, error) {
	var gb *groupBudget
	if fb, ok := n.cfg.Cost.(FixedBudget); ok {
		gb = newGroupBudget(fb.Size)
	}
	grp, err := newShardGroup(n.bus, desc, n.cfg.recordAtATime, func(shard int) (streams.Processor, *samplingProcessor) {
		sp := &samplingProcessor{
			id:         memberID(desc, shard),
			quiesce:    &n.quiesce,
			window:     n.cfg.Window,
			decodeErrs: &n.decodeErrs,
			bwc:        n.bw.Counter(desc.ParentTopic),
		}
		mk := func() *Node { return n.plan.NewNodeShard(desc, shard) }
		if gb != nil {
			mb := gb.join(memberID(desc, shard))
			mk = func() *Node { return n.plan.NewNodeShardCost(desc, shard, mb) }
		}
		sp.ew = newEventWindows(n.plan.Spec.Window, n.cfg.AllowedLateness, &n.late, mk)
		sp.eosNotify = memberEOSBroadcast(n.bus.NewProducer(), desc.ParentTopic,
			sp.id, n.plan.Partitions, sp.bwc)
		sp.wt = newWatermarkTracker(n.cfg.IdleTimeout)
		for _, from := range n.plan.ExpectedProducers(desc) {
			sp.wt.expect(from, now)
		}
		return sp, sp
	})
	if err != nil {
		return nil, err
	}
	grp.budget = gb
	grp.changeOffsets = make([]int64, n.plan.Partitions)
	return grp, nil
}

// buildRootGroup instantiates the root consumer group, mirroring OpenLive's
// root wiring without the adaptive branches.
func (n *NodeSession) buildRootGroup(now time.Time) (*shardGroup, error) {
	plan := n.plan
	n.rootProcs = make([]*rootProcessor, plan.RootShards)
	grp, err := newShardGroup(n.bus, plan.Root(), n.cfg.recordAtATime, func(shard int) (streams.Processor, *samplingProcessor) {
		p := &rootProcessor{
			id:           memberID(plan.Root(), shard),
			work:         n.cfg.RootWork,
			processed:    &n.rootProcessed,
			decodeErrs:   &n.decodeErrs,
			lastActivity: &n.lastActivity,
			latency:      metrics.NewHistogram(),
		}
		mk := func() *Node { return plan.NewRootShard(shard) }
		p.ew = newEventWindows(plan.Spec.Window, n.cfg.AllowedLateness, &n.late, mk)
		p.wt = newWatermarkTracker(n.cfg.IdleTimeout)
		for _, from := range plan.ExpectedProducers(plan.Root()) {
			p.wt.expect(from, now)
		}
		n.rootProcs[shard] = p
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	grp.changeOffsets = make([]int64, plan.Partitions)
	return grp, nil
}

// mergedRootWatermark merges the root members' watermarks exactly as the
// live session's ticker does: minimum over members with an opinion, zero
// while any member is blocked on an expected-but-unheard producer.
func (n *NodeSession) mergedRootWatermark(now time.Time) time.Time {
	var min time.Time
	for _, rp := range n.rootProcs {
		wm, blocked := rp.watermarkState(now)
		if blocked {
			return time.Time{}
		}
		if wm.IsZero() {
			continue
		}
		if min.IsZero() || wm.Before(min) {
			min = wm
		}
	}
	return min
}

// sweep runs one root-tier ticker round: advance every member to the
// merged watermark, emit the windows that became due, and — once the
// watermark carries an end-of-stream promise — flush the remainder and
// declare the run complete.
func (n *NodeSession) sweep(at time.Time) {
	wm := n.mergedRootWatermark(at)
	if wm.IsZero() {
		return
	}
	n.emitDue(at, wm)
	if !wm.Before(eosHorizon) {
		// End of stream: every chain has promised it is done forever, so
		// one final advance to the absolute bound empties every member.
		n.emitDue(at, eosWatermark)
		n.completeRoot()
	}
}

// emitDue advances every root member to wm, merges the closed windows by
// start, and emits them in ascending event-time order — the node-mode twin
// of the live session's closeEventWindows.
func (n *NodeSession) emitDue(at time.Time, wm time.Time) {
	n.windowMu.Lock()
	defer n.windowMu.Unlock()
	merged := make(map[int64][]stream.Batch)
	for _, rp := range n.rootProcs {
		for _, cw := range rp.advanceTo(wm) {
			merged[cw.start] = append(merged[cw.start], cw.theta...)
		}
	}
	if len(merged) == 0 {
		return
	}
	starts := make([]int64, 0, len(merged))
	for st := range merged {
		starts = append(starts, st)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, st := range starts {
		win := NewWindowResult(at, n.engine, n.plan.Queries, merged[st])
		win.Start = time.Unix(0, st).UTC()
		win.End = win.Start.Add(n.plan.Spec.Window)
		if win.SampleSize == 0 {
			continue
		}
		n.windows = append(n.windows, win)
		n.windowsClosed.Add(1)
		if n.cfg.OnWindow != nil {
			n.cfg.OnWindow(win)
		}
	}
}

// completeRoot publishes the run's completion marker on the control topic
// — the in-band signal edge-tier processes WaitDone on — and closes Done.
// Once, no matter how many sweeps see the end-of-stream watermark.
func (n *NodeSession) completeRoot() {
	n.doneOnce.Do(func() {
		p := n.bus.NewProducer()
		// Best-effort: a failed send only degrades remote WaitDone to its
		// caller's context deadline; this process's Done still closes.
		_, _, _ = p.Send(n.plan.ControlTopic, nil, nodeDoneMarker)
		close(n.done)
	})
}

// Done returns a channel closed when the run completes — on the root tier,
// when the merged watermark reaches end-of-stream. Other tiers learn of
// completion via WaitDone (the channel closes only with the session).
func (n *NodeSession) Done() <-chan struct{} { return n.done }

// WaitDone blocks until the deployment-wide run completes: the root tier
// waits for its own end-of-stream detection, every other tier waits for
// the completion marker the root published on the control topic. Returns
// ctx's error on cancellation and ErrSessionClosed if the session is
// closed while waiting.
func (n *NodeSession) WaitDone(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n.tier.Root {
		select {
		case <-n.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-n.closed:
			return ErrSessionClosed
		}
	}
	c, err := n.bus.NewConsumer(n.plan.ControlTopic)
	if err != nil {
		return err
	}
	defer c.Close()
	for {
		select {
		case <-n.closed:
			return ErrSessionClosed
		default:
		}
		recs, err := c.Poll(ctx, 64)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return ctx.Err()
			}
			return err
		}
		for _, r := range recs {
			if bytes.Equal(r.Value, nodeDoneMarker) {
				n.doneOnce.Do(func() { close(n.done) })
				return nil
			}
		}
	}
}

// Drain blocks until this process's groups quiesce: no unfetched input, no
// pump mid-cycle, nothing buffered in Ψ — held for several consecutive
// probes so a flush racing the probe cannot fake quiescence. Call after
// WaitDone (the pipeline upstream of this tier has stopped producing) and
// before Close. Returns ctx's error on cancellation.
func (n *NodeSession) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	wait := n.cfg.Window / 4
	if wait <= 0 {
		wait = time.Millisecond
	}
	clean := 0
	for clean < 3 {
		var lag, pending int64
		busy := false
		for _, g := range n.groups {
			pending += g.pending()
			lag += g.lag()
			busy = busy || g.busy()
		}
		if lag == 0 && !busy && pending == 0 {
			clean++
		} else {
			clean = 0
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-n.closed:
			return nil
		case <-time.After(wait):
		}
	}
	return nil
}

// markStarted pins the elapsed span to the first push.
func (n *NodeSession) markStarted() {
	if n.started.CompareAndSwap(false, true) {
		now := time.Now().UnixNano()
		n.startNanos.Store(now)
		n.lastActivity.Store(now)
	}
}

// isClosed reports whether Close has run.
func (n *NodeSession) isClosed() bool {
	select {
	case <-n.closed:
		return true
	default:
		return false
	}
}

// Close stops this process's groups and assembles the tier's final
// NodeResult. It does NOT close the bus (the session never owns it) and it
// does not drain — call Drain first for a graceful exit. Idempotent; every
// call returns the same result.
func (n *NodeSession) Close() *NodeResult {
	n.closeOnce.Do(func() {
		n.quiesce.Store(true)
		if n.cancelTick != nil {
			n.cancelTick()
			n.tickWG.Wait()
		}
		if n.rootGrp != nil {
			// Root members fully drain fetched records at Stop; one final
			// sweep emits whatever that made due, end-of-stream included.
			n.rootGrp.stop()
			n.emitDue(time.Now(), eosWatermark)
		}
		for i := len(n.groups) - 1; i >= 0; i-- {
			n.groups[i].stop()
		}
		n.windowMu.Lock()
		windows := append([]WindowResult(nil), n.windows...)
		n.windowMu.Unlock()
		n.res = &NodeResult{
			Produced:         n.produced.Load(),
			RootProcessed:    n.rootProcessed.Load(),
			DecodeErrors:     n.decodeErrs.Load(),
			LateDropped:      n.late.items.Load(),
			LateDroppedInput: n.late.input.load(),
			Windows:          windows,
		}
		close(n.closed)
	})
	<-n.closed
	return n.res
}

// Snapshot assembles this tier's telemetry in the live session's snapshot
// shape, so the internal/ops HTTP surface (/health, /metrics) serves a
// node process unchanged. Fields another tier owns read zero here: a leaf
// process reports no windows, a root process no produced count.
func (n *NodeSession) Snapshot() LiveSnapshot {
	now := time.Now()
	state := StateIngesting
	if n.isClosed() {
		state = StateClosed
	}
	snap := LiveSnapshot{
		State:            state,
		Produced:         n.produced.Load(),
		RootProcessed:    n.rootProcessed.Load(),
		DecodeErrors:     n.decodeErrs.Load(),
		LateDropped:      n.late.items.Load(),
		LateDroppedInput: n.late.input.load(),
		WindowsClosed:    int(n.windowsClosed.Load()),
		Latency:          metrics.NewHistogram(),
		Bandwidth:        n.bw.Snapshot(),
		Window:           n.cfg.Window,
		MaxIngestLag:     n.cfg.MaxIngestLag,
		EventTime:        true,
		Start:            time.Unix(0, n.startNanos.Load()),
		LastActivity:     time.Unix(0, n.lastActivity.Load()),
	}
	if !n.isClosed() {
		snap.IngestLag = n.ingestLag()
		if n.tier.Root {
			snap.Watermark = n.mergedRootWatermark(now)
		}
	}
	elapsed := now.Sub(snap.Start)
	if elapsed < 0 {
		elapsed = 0
	}
	snap.Elapsed = elapsed
	if elapsed > 0 {
		snap.Throughput = float64(snap.Produced) / elapsed.Seconds()
	}
	for _, rp := range n.rootProcs {
		snap.Latency.Merge(rp.latency)
	}
	snap.Nodes = make(map[string]NodeTelemetry)
	record := func(id string, st NodeStats) {
		tel := NodeTelemetry{Observed: st.Observed, Emitted: st.Emitted, Intervals: st.Intervals}
		if elapsed > 0 {
			tel.Throughput = float64(st.Observed) / elapsed.Seconds()
		}
		snap.Nodes[id] = tel
	}
	for _, g := range n.groups {
		g.mu.Lock()
		members := append([]*groupMember(nil), g.members...)
		g.mu.Unlock()
		for _, m := range members {
			if m.proc != nil {
				record(m.id, m.proc.stats())
			}
		}
	}
	for _, rp := range n.rootProcs {
		record(rp.id, rp.stats())
	}
	return snap
}

// ingestLag totals the unconsumed leaf-topic backlog — the same probe the
// valves' backpressure uses, summed across topics for telemetry. A group
// another process has not registered yet simply contributes nothing.
func (n *NodeSession) ingestLag() int64 {
	var total int64
	seen := make(map[string]struct{}, len(n.plan.Sources))
	for _, src := range n.plan.Sources {
		if _, dup := seen[src.Topic]; dup {
			continue
		}
		seen[src.Topic] = struct{}{}
		leaf := n.plan.Layers[0][src.ParentIndex]
		lag, err := n.bus.GroupLag(src.Topic, leaf.ID+"-in")
		if err != nil {
			continue
		}
		total += lag
	}
	return total
}

// Pusher returns the push valve for one source slot (Ingest tiers only;
// the valve is cached per slot). The valve is the node-mode twin of the
// live session's Ingester: it stamps, batches, paces, applies ingest
// backpressure against the leaf group's lag, and piggybacks the slot's
// event-time watermark.
func (n *NodeSession) Pusher(slot int) (*NodePusher, error) {
	if !n.tier.Ingest {
		return nil, fmt.Errorf("core: tier has no ingest valves (set NodeTier.Ingest)")
	}
	if slot < 0 || slot >= n.plan.Spec.Sources {
		return nil, fmt.Errorf("%w: slot %d of %d sources", ErrBadSourceSlot, slot, n.plan.Spec.Sources)
	}
	n.valveMu.Lock()
	defer n.valveMu.Unlock()
	if v := n.valves[slot]; v != nil {
		return v, nil
	}
	src := n.plan.Sources[slot]
	leaf := n.plan.Layers[0][src.ParentIndex]
	v := &NodePusher{
		n:        n,
		slot:     slot,
		topic:    src.Topic,
		lagGroup: leaf.ID + "-in", // the leaf node's consumer group (streams source node "in")
		producer: n.bus.NewProducer(),
		bwc:      n.bw.Counter(src.Topic),
		rate:     n.cfg.SourceRate,
		from:     sourceFrom(slot),
		marks:    make(map[stream.SourceID]time.Time),
	}
	n.valves[slot] = v
	return v, nil
}

// Push publishes items onto source slot `slot` — the multi-arg convenience
// over Pusher(slot).Push.
func (n *NodeSession) Push(slot int, items ...stream.Item) error {
	v, err := n.Pusher(slot)
	if err != nil {
		return err
	}
	return v.Push(items...)
}

// FinishIngest ends this process's ingestion: the end-of-stream watermark
// is broadcast through every source slot's valve (valves for never-pushed
// slots are created so every statically-expected producer chain terminates
// in-band) and further pushes are rejected with ErrSessionDraining. The
// close wave then cascades through every tier and the root completes.
func (n *NodeSession) FinishIngest() error {
	if !n.tier.Ingest {
		return fmt.Errorf("core: tier has no ingest valves (set NodeTier.Ingest)")
	}
	for slot := 0; slot < n.plan.Spec.Sources; slot++ {
		v, err := n.Pusher(slot)
		if err != nil {
			return err
		}
		v.sendEOS()
	}
	return nil
}

// NodePusher is the push valve for one source slot of a node session: the
// process-per-tier twin of the live Ingester, publishing into the slot's
// leaf topic over whatever bus the session runs on. Pushes through one
// valve are serialized; distinct slots push concurrently.
type NodePusher struct {
	n        *NodeSession
	slot     int
	topic    string
	lagGroup string
	producer transport.Producer
	bwc      *metrics.BandwidthCounter
	rate     float64
	from     string

	// sent is atomic so observers (tests, telemetry) can read it while a
	// Push is parked in backpressure holding mu.
	sent atomic.Int64

	mu       sync.Mutex
	finished bool // end-of-stream sent; further pushes are rejected
	epoch    time.Time
	// marks tracks, per sub-stream, the highest event timestamp pushed —
	// the sub-stream's low watermark, piggybacked on every record.
	marks   map[stream.SourceID]time.Time
	enc     batchEncoder
	outRecs []mq.Record
}

// Slot returns the source slot this valve feeds.
func (v *NodePusher) Slot() int { return v.slot }

// Sent returns the number of items pushed through this valve so far.
func (v *NodePusher) Sent() int64 { return v.sent.Load() }

// Push publishes items into the slot's leaf topic: consecutive runs of the
// same sub-stream become one weighted batch keyed by SourceID, Pub is
// stamped with the publish instant, caller-supplied event timestamps are
// preserved (zero Ts defaults to the publish instant), and the sub-
// stream's low watermark piggybacks on the records. Push blocks for
// backpressure while the leaf group's backlog exceeds MaxIngestLag (a
// record count, like the group lag it is compared against), and
// paces to SourceRate. Returns ErrSessionDraining after FinishIngest and
// ErrSessionClosed after Close.
func (v *NodePusher) Push(items ...stream.Item) error {
	n := v.n
	if n.isClosed() {
		return ErrSessionClosed
	}
	if len(items) == 0 {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.finished {
		return ErrSessionDraining
	}
	if v.epoch.IsZero() {
		v.epoch = time.Now()
	}
	if err := v.backpressure(); err != nil {
		return err
	}
	n.markStarted()

	pub := time.Now()
	defaultSrc := stream.SourceID("")
	for j := range items {
		if items[j].Source == "" {
			if defaultSrc == "" {
				defaultSrc = stream.SourceID(fmt.Sprintf("source%d", v.slot))
			}
			items[j].Source = defaultSrc
		}
		items[j].Pub = pub
		if items[j].Ts.IsZero() {
			items[j].Ts = pub
		}
	}
	for lo := 0; lo < len(items); {
		hi := lo + 1
		src := items[lo].Source
		for hi < len(items) && items[hi].Source == src {
			hi++
		}
		b := stream.Batch{Source: src, Weight: 1, Items: items[lo:hi]}
		mark := v.marks[src]
		for _, it := range b.Items {
			if it.Ts.After(mark) {
				mark = it.Ts
			}
		}
		v.marks[src] = mark
		v.enc.add(src, b, mq.Watermark{From: v.from, At: mark})
		lo = hi
	}
	if !v.enc.empty() {
		v.bwc.Add(v.enc.payloadBytes())
		recs := v.enc.records(v.outRecs[:0])
		v.enc.reset()
		err := v.producer.SendBatch(v.topic, recs)
		// Scrub before recycling: spare capacity must not pin the block.
		for i := range recs {
			recs[i] = mq.Record{}
		}
		v.outRecs = recs[:0]
		if err != nil {
			if errors.Is(err, mq.ErrClosed) {
				return ErrSessionClosed
			}
			return err
		}
	}
	sent := v.sent.Add(int64(len(items)))
	n.produced.Add(int64(len(items)))

	if v.rate > 0 {
		ahead := time.Duration(float64(sent)/v.rate*float64(time.Second)) - time.Since(v.epoch)
		if ahead > 0 {
			select {
			case <-n.closed:
			case <-time.After(ahead):
			}
		}
	}
	return nil
}

// backpressure blocks while the leaf group's unconsumed backlog exceeds the
// configured high-water mark. Unlike the single-process valve — where an
// unknown group can only be a wiring bug — a node-mode probe failure is
// usually a startup race (the tier running the leaf group is not up yet),
// so the valve WAITS on probe errors instead of failing or admitting: a
// push is never admitted on a lag the probe could not vouch for, which is
// exactly the guarantee that keeps MaxIngestLag meaningful over a remote
// backend (a transport error that silently admitted pushes would disable
// backpressure). A closed topic still fails fast.
func (v *NodePusher) backpressure() error {
	n := v.n
	if n.cfg.MaxIngestLag < 0 {
		return nil
	}
	wait := n.cfg.Window / 8
	if wait <= 0 {
		wait = time.Millisecond
	}
	for {
		lag, err := n.bus.GroupLag(v.topic, v.lagGroup)
		if err == nil && lag <= int64(n.cfg.MaxIngestLag) {
			return nil
		}
		if errors.Is(err, mq.ErrClosed) {
			return ErrSessionClosed
		}
		if n.isClosed() {
			return ErrSessionClosed
		}
		select {
		case <-n.closed:
			return ErrSessionClosed
		case <-time.After(wait):
		}
	}
}

// sendEOS broadcasts the end-of-stream watermark for every sub-stream that
// pushed through this valve (or the slot's default stratum if none did) to
// EVERY partition of the leaf topic, and marks the valve finished. The
// broadcast mirrors the live Ingester's: after a rebalance a member can
// buffer windows for sub-streams whose partitions it no longer owns, and a
// keyed end-of-stream would never reach it.
func (v *NodePusher) sendEOS() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.finished {
		return
	}
	v.finished = true
	srcs := make([]stream.SourceID, 0, len(v.marks)+1)
	for src := range v.marks {
		srcs = append(srcs, src)
	}
	if len(srcs) == 0 {
		srcs = append(srcs, stream.SourceID(fmt.Sprintf("source%d", v.slot)))
	}
	for _, src := range srcs {
		payload := heartbeat(src).Marshal()
		wm := mq.Watermark{From: v.from, At: eosWatermark}
		for part := 0; part < v.n.plan.Partitions; part++ {
			v.bwc.Add(int64(len(payload)))
			// The bus outlives the drain; a send can only fail once the
			// deployment is past caring about these heartbeats.
			_, _ = v.producer.SendToWatermarked(v.topic, part, []byte(src), payload, wm)
		}
	}
}
