package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/metrics"
	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/streams"
	"github.com/approxiot/approxiot/internal/transport"
	"github.com/approxiot/approxiot/internal/workload"
)

// This file is the session layer of live mode: a LiveSession is the
// long-lived deployment handle behind the facade's approxiot.Open. Where the
// original RunLive was batch-shaped — produce a fixed item count, block, and
// return — the session separates the lifecycle into explicit phases:
//
//	OpenLive    compile the plan, create topics, start every shard group
//	            and the window ticker; return immediately
//	ingesting   callers push items (Ingest / Ingester), subscribe to
//	            window results (Windows), read telemetry (Snapshot), and
//	            steer the adaptive controller (SetTarget)
//	draining    Close stops accepting pushes and waits for in-flight
//	            windows to reach the root
//	closed      the final LiveResult is merged and returned; context
//	            cancellation jumps here directly, skipping the drain but
//	            keeping every already-closed window intact
//
// RunLive still exists as a thin compatibility wrapper: it opens a session,
// runs the configured generators through the same Ingester valve every
// external client uses, and closes.

// Session lifecycle errors.
var (
	// ErrSessionClosed rejects operations on a session that has finished
	// (Close completed or the context was cancelled).
	ErrSessionClosed = errors.New("core: live session closed")
	// ErrSessionDraining rejects pushes that arrive after Close started
	// draining: accepted items could no longer be guaranteed to reach the
	// root before the final window merge.
	ErrSessionDraining = errors.New("core: live session draining")
	// ErrNotAdaptive rejects SetTarget on a session opened without a
	// feedback controller.
	ErrNotAdaptive = errors.New("core: session has no feedback controller (set LiveConfig.Feedback / Config.Adaptive)")
	// ErrBadSourceSlot rejects an Ingester request for a slot outside
	// [0, Spec.Sources).
	ErrBadSourceSlot = errors.New("core: source slot out of range")
)

// SessionState is one phase of the Deployment lifecycle.
type SessionState int32

// Lifecycle states, in order. A session is born ingesting; Close moves it
// through draining to closed; context cancellation moves it to closed
// directly.
const (
	StateIngesting SessionState = iota
	StateDraining
	StateClosed
)

// String implements fmt.Stringer.
func (s SessionState) String() string {
	switch s {
	case StateIngesting:
		return "ingesting"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("SessionState(%d)", int32(s))
	}
}

// windowSubBuffer is the per-subscriber buffer of Windows channels. A
// subscriber that falls further behind misses results (they remain in the
// final LiveResult.Windows) rather than stalling the window ticker.
const windowSubBuffer = 128

// defaultMaxIngestLag is the push-side backpressure high-water mark: an
// Ingester blocks while its leaf topic's unconsumed backlog exceeds this
// many records, bounding broker memory no matter how fast callers push.
const defaultMaxIngestLag = 8192

// defaultDrainTimeout bounds how long Close waits for a wedged pipeline to
// quiesce before giving up and surfacing ErrDrainTimeout.
const defaultDrainTimeout = 2 * time.Minute

// ErrDrainTimeout reports that Close's drain deadline (LiveConfig.
// DrainTimeout) expired before the pipeline quiesced: the final LiveResult
// was assembled anyway, but in-flight items may be missing from it.
// Surfaced by Close and Err, and mirrored on LiveResult.DrainTimedOut.
var ErrDrainTimeout = errors.New("core: drain deadline exceeded; final result may be missing in-flight items")

// LiveSession is a running live deployment: the compiled tree instantiated
// as shard groups over a transport bus — the in-memory broker by default,
// or any backend supplied via LiveConfig.Bus — accepting pushed items and
// emitting window results until closed. Construct with OpenLive; all
// methods are safe for concurrent use.
type LiveSession struct {
	cfg  LiveConfig
	plan *Plan
	bus  transport.Bus
	// ownsBus: the session created its own in-memory bus and shuts it down
	// at close; a caller-supplied bus (LiveConfig.Bus) is left running — it
	// may serve other processes.
	ownsBus bool
	engine  *query.Engine

	groups    []*shardGroup          // every consumer group, root last
	groupByID map[string]*shardGroup // node ID → its group (root included)
	rootGrp   *shardGroup
	rootProcs []*rootProcessor
	rootCosts []*dynamicCost

	// elMu serializes membership changes (Add/Remove/Kill/Restart member,
	// edge-node detach/attach); per-group mu still guards the member lists
	// against the concurrent readers (drain probe, telemetry, valves).
	elMu sync.Mutex
	// ckptErrs counts checkpoint-save failures across every member
	// (LiveSnapshot.CheckpointErrors) — counted, never fatal.
	ckptErrs atomic.Int64

	res *LiveResult
	// final publishes res atomically once finalize has fully assembled it
	// (nil until then). Snapshot reads closed-run fields exclusively through
	// this pointer, so its safety is structural — independent of the order
	// shutdown happens to store the lifecycle state in.
	final atomic.Pointer[LiveResult]

	// quiesce silences the event-time keepalive punctuations from the
	// moment shutdown starts (see samplingProcessor.keepalive).
	quiesce atomic.Bool

	// Run-wide counters, written by member pumps and ingesters, read by
	// Snapshot at any time.
	produced      atomic.Int64
	rootProcessed atomic.Int64
	decodeErrs    atomic.Int64
	late          lateCounter  // event-time mode: records past the lateness horizon
	lastActivity  atomic.Int64 // unix nanos of last root-side processing
	startNanos    atomic.Int64 // run start: first ingest (open time until then)
	started       atomic.Bool

	// Per-slot ground truth, folded into res.TruthSum in slot order at
	// finalize so the total is deterministic regardless of goroutine
	// scheduling.
	truth []paddedFloat

	// Window-close machinery. windowMu serializes closeWindow and guards
	// res.Windows / res.Fractions. windowsClosed mirrors len(res.Windows)
	// atomically so Snapshot never needs windowMu — closeWindow calls the
	// OnWindow hook while holding it, and a hook that reads a Snapshot
	// must not self-deadlock.
	windowMu      sync.Mutex
	windowsClosed atomic.Int64
	ctlProducer   transport.Producer
	ctlSeq        uint64
	// sliding composes pane estimates at the root when LiveConfig.Slide ≥ 2
	// (nil otherwise); driven only under windowMu by emitWindowLocked.
	sliding *slidingState
	// lastWindow publishes the most recently emitted window result for
	// Snapshot (nil until the first non-empty window closes).
	lastWindow atomic.Pointer[WindowResult]

	// Windows() subscriptions.
	subMu      sync.Mutex
	subs       []chan WindowResult
	subsClosed bool
	subDrops   atomic.Int64

	// Ingestion valves, one per source slot, created on demand.
	ingMu     sync.Mutex
	ingesters []*Ingester

	// Push/Close barrier. Every Push holds pushMu for reading from its
	// state check to its last Send; shutdown flips the state, closes
	// drainCh (waking pacing sleeps), and takes pushMu for writing — so no
	// push admitted before the state flip can still be mid-flight when the
	// drain probe starts, and none can touch the broker or the truth
	// accumulators after finalize.
	pushMu  sync.RWMutex
	drainCh chan struct{}

	// Lifecycle.
	state      atomic.Int32
	ctx        context.Context
	cancelTick context.CancelFunc
	tickWG     sync.WaitGroup
	watchWG    sync.WaitGroup
	closeOnce  sync.Once
	done       chan struct{}
	errMu      sync.Mutex
	closeErr   error
}

// paddedFloat is a mutex-guarded accumulator with its own cache line's
// worth of state, so per-slot truth sums don't false-share.
type paddedFloat struct {
	mu sync.Mutex
	v  float64
	_  [40]byte
}

// OpenLive compiles cfg's deployment plan, instantiates it as live shard
// groups, and returns the running session. It returns as soon as the tree is
// pumping: no items flow until the caller pushes them (Ingest / Ingester).
// cfg.Source and cfg.Items are ignored — they belong to the batch-shaped
// RunLive wrapper. Cancelling ctx aborts the session: in-flight data is
// dropped, but every window already closed keeps its exact-count estimates,
// and all goroutines exit. A nil ctx behaves like context.Background().
func OpenLive(ctx context.Context, cfg LiveConfig) (*LiveSession, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, plan, err := compileLive(cfg)
	if err != nil {
		return nil, err
	}

	bus := cfg.Bus
	ownsBus := bus == nil
	if ownsBus {
		bus = transport.NewMem()
	}
	s := &LiveSession{
		cfg:     cfg,
		plan:    plan,
		bus:     bus,
		ownsBus: ownsBus,
		engine:  query.NewEngine(query.WithConfidence(cfg.Confidence)),
		res: &LiveResult{
			Latency:   metrics.NewHistogram(),
			Bandwidth: metrics.NewBandwidthAccount(),
		},
		truth:     make([]paddedFloat, plan.Spec.Sources),
		ingesters: make([]*Ingester, plan.Spec.Sources),
		groupByID: make(map[string]*shardGroup),
		ctx:       ctx,
		drainCh:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.sliding = newSlidingState(cfg.Slide, plan.Spec.Window, cfg.Confidence, plan.Queries)
	now := time.Now()
	s.startNanos.Store(now.UnixNano())
	s.lastActivity.Store(now.UnixNano())

	// The plan names every topic and fixes its partition count; create them
	// before any runtime subscribes. Creation is idempotent across bus
	// clients (same partition count), so on a shared bus the session races
	// other processes' startups safely.
	for _, td := range plan.Topics() {
		if err := s.bus.CreateTopic(td.Name, td.Partitions, 4096); err != nil {
			s.closeBus()
			return nil, err
		}
	}

	// Edge layers: one shard group per compiled node descriptor — the
	// node's consumer group, desc.Shards members strong. Adaptive runs
	// give every member a private dynamic cost plus a standalone control
	// consumer; the root publishes, the members drain at window close.
	fail := func(err error) (*LiveSession, error) {
		s.stopAll()
		s.closeBus()
		return nil, err
	}
	for _, desc := range plan.EdgeNodes() {
		desc := desc
		var memberErr error
		// FixedBudget groups get a dynamic splitter so membership changes
		// re-split the node's total cap across however many members are
		// live. Initial members join in shard order, so the initial shares
		// reproduce the static NewNodeShardCost split exactly — cross-mode
		// equivalence is untouched. Feedback runs own their budget already
		// (control-plane fractions are input-relative and compose at any
		// member count).
		var gb *groupBudget
		if fb, ok := cfg.Cost.(FixedBudget); ok && cfg.Feedback == nil {
			gb = newGroupBudget(fb.Size)
		}
		grp, err := newShardGroup(s.bus, desc, cfg.recordAtATime, func(shard int) (streams.Processor, *samplingProcessor) {
			sp := &samplingProcessor{
				id:         memberID(desc, shard),
				quiesce:    &s.quiesce,
				window:     cfg.Window,
				streaming:  cfg.Streaming,
				decodeErrs: &s.decodeErrs,
				ckpt:       cfg.Checkpoint,
				ckptErrs:   &s.ckptErrs,
				// Private lock-free byte counter for the member's parent
				// link; the account folds it in at read time.
				bwc: s.res.Bandwidth.Counter(desc.ParentTopic),
			}
			mk := func() *Node { return plan.NewNodeShard(desc, shard) }
			if gb != nil {
				mb := gb.join(memberID(desc, shard))
				mk = func() *Node { return plan.NewNodeShardCost(desc, shard, mb) }
			}
			if cfg.Feedback != nil {
				sp.cost = newDynamicCost(cfg.Feedback.Fraction())
				mk = func() *Node { return plan.NewNodeShardCost(desc, shard, sp.cost) }
				c, cerr := s.bus.NewConsumer(plan.ControlTopic)
				if cerr != nil && memberErr == nil {
					memberErr = cerr // keep the first failure; later shards must not clobber it
				}
				sp.control = c
			}
			if cfg.EventTime {
				// Ψ lives in per-event-window nodes; mk seeds each window
				// identically from the plan's lineage, so a window's
				// sampling is independent of how many windows preceded it.
				sp.ew = newEventWindows(plan.Spec.Window, cfg.AllowedLateness, &s.late, mk)
				sp.eosNotify = memberEOSBroadcast(s.bus.NewProducer(), desc.ParentTopic,
					sp.id, plan.Partitions, sp.bwc)
				sp.wt = newWatermarkTracker(cfg.IdleTimeout)
				// Every producer the plan says can feed this node holds the
				// watermark until heard from (or idled out) — sibling pumps
				// race, and a chain must never be invisible to the minimum
				// just because it is slow.
				for _, from := range plan.ExpectedProducers(desc) {
					sp.wt.expect(from, now)
				}
			} else {
				sp.node = mk()
			}
			return sp, sp
		})
		if err == nil {
			err = memberErr
		}
		if err != nil {
			return fail(err)
		}
		grp.budget = gb
		grp.changeOffsets = make([]int64, plan.Partitions)
		s.groups = append(s.groups, grp)
		s.groupByID[desc.ID] = grp
	}

	// Root consumer group: the same shard-group machinery, with
	// root-flavored members. RootShards members split the root topic's
	// partitions; each aggregates and samples its share, and a window
	// ticker merges every member's Θ and runs the queries once. The
	// controller is colocated with the root (the paper's datacenter), so
	// adaptive root members take fraction updates directly at the merge
	// instead of round-tripping through the control topic.
	s.rootProcs = make([]*rootProcessor, plan.RootShards)
	s.rootCosts = make([]*dynamicCost, 0, plan.RootShards)
	rootGrp, err := newShardGroup(s.bus, plan.Root(), cfg.recordAtATime, func(shard int) (streams.Processor, *samplingProcessor) {
		p := &rootProcessor{
			id:           memberID(plan.Root(), shard),
			work:         cfg.RootWork,
			processed:    &s.rootProcessed,
			decodeErrs:   &s.decodeErrs,
			lastActivity: &s.lastActivity,
			// Private histogram: shards must not serialize on one mutex in
			// the per-item hot path. Merged into res.Latency at shutdown
			// (and into fresh histograms by mid-run Snapshots).
			latency: metrics.NewHistogram(),
		}
		mk := func() *Node { return plan.NewRootShard(shard) }
		if cfg.Feedback != nil {
			dc := newDynamicCost(cfg.Feedback.Fraction())
			s.rootCosts = append(s.rootCosts, dc)
			mk = func() *Node { return plan.NewNodeShardCost(plan.Root(), shard, dc) }
		}
		if cfg.EventTime {
			p.ew = newEventWindows(plan.Spec.Window, cfg.AllowedLateness, &s.late, mk)
			p.wt = newWatermarkTracker(cfg.IdleTimeout)
			for _, from := range plan.ExpectedProducers(plan.Root()) {
				p.wt.expect(from, now)
			}
		} else {
			p.node = mk()
		}
		s.rootProcs[shard] = p
		return p, nil
	})
	if err != nil {
		return fail(err)
	}
	s.rootGrp = rootGrp
	s.groups = append(s.groups, rootGrp)
	s.groupByID[plan.Root().ID] = rootGrp

	if cfg.corruptRoot > 0 {
		// Test hook: poison the root topic before anything consumes it.
		p := s.bus.NewProducer()
		for i := 0; i < cfg.corruptRoot; i++ {
			if _, _, err := p.Send(plan.Root().Topic, nil, []byte{0xFF, 0xBA, 0xD0}); err != nil {
				return fail(err)
			}
		}
	}

	for _, g := range s.groups {
		if err := g.start(); err != nil {
			return fail(err)
		}
	}

	s.ctlProducer = s.bus.NewProducer()

	// Window ticker: a blocking select — no busy branch — closes windows
	// while the members pump. Its context is private: the user's ctx abort
	// path runs through shutdown, which stops the ticker in order.
	tickCtx, cancelTick := context.WithCancel(context.Background())
	s.cancelTick = cancelTick
	s.tickWG.Add(1)
	go func() {
		defer s.tickWG.Done()
		ticker := time.NewTicker(cfg.Window)
		defer ticker.Stop()
		for {
			select {
			case <-tickCtx.Done():
				return
			case now := <-ticker.C:
				s.closeWindow(now)
			}
		}
	}()

	// Context watcher: a cancelled ctx aborts the session without a drain.
	s.watchWG.Add(1)
	go func() {
		defer s.watchWG.Done()
		select {
		case <-ctx.Done():
			s.shutdown(false, ctx.Err())
		case <-s.done:
		}
	}()
	return s, nil
}

// compileLive is the shared prologue of every live entry point (OpenLive,
// and OpenNode in node mode): it compiles the deployment plan and
// normalizes the session-level defaults — window cadence, confidence,
// backpressure high-water mark, drain deadline, and the event-time idle
// timeout. Keeping it in one place is what guarantees a multi-process
// deployment's per-tier sessions agree with a single-process session on
// what every one of those knobs means; if the two entry points normalized
// independently they could silently compile incompatible trees.
func compileLive(cfg LiveConfig) (LiveConfig, *Plan, error) {
	if cfg.Feedback != nil {
		// The adaptive loop owns the budget: members get private
		// control-plane-driven costs below, and the plan carries the
		// controller (in effective-fraction form) for validation and as
		// the canonical cost of record.
		cfg.Cost = feedbackCost{ctl: cfg.Feedback}
	}
	plan, err := CompilePlan(PlanConfig{
		Spec:        cfg.Spec,
		NewSampler:  cfg.NewSampler,
		Cost:        cfg.Cost,
		Queries:     cfg.Queries,
		Seed:        cfg.Seed,
		Partitions:  cfg.Partitions,
		RootShards:  cfg.RootShards,
		LayerShards: cfg.LayerShards,
	})
	if err != nil {
		return cfg, nil, err
	}
	if cfg.Feedback != nil && feedbackKind(plan.Queries) == query.Count {
		return cfg, nil, ErrFeedbackNeedsQuery
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * time.Millisecond
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = stats.TwoSigma
	}
	if cfg.MaxIngestLag == 0 {
		cfg.MaxIngestLag = defaultMaxIngestLag
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = defaultDrainTimeout
	}
	if cfg.EventTime {
		if cfg.Streaming {
			return cfg, nil, ErrEventTimeStreaming
		}
		if cfg.AllowedLateness < 0 {
			cfg.AllowedLateness = 0
		}
		switch {
		case cfg.IdleTimeout == 0:
			// Default: several sweep ticks, but never less than the
			// lateness horizon — a source pausing for less than the
			// lateness it was promised must not be aged out of the
			// minimum, or its in-horizon records would be dropped by the
			// very mechanism lateness exists to protect them from.
			cfg.IdleTimeout = 4 * cfg.Window
			if cfg.AllowedLateness > cfg.IdleTimeout {
				cfg.IdleTimeout = cfg.AllowedLateness
			}
		case cfg.IdleTimeout < 0:
			// No idle exclusion: expectation placeholders for producers a
			// member never hears from would block its watermark forever.
			// Single-member groups hear every producer of their node, so
			// only they can run without the exclusion. (plan.LayerShards
			// is normalized — one entry per layer, the root entry mirrors
			// RootShards.)
			for _, shards := range plan.LayerShards {
				if shards > 1 {
					return cfg, nil, ErrEventTimeIdleSharded
				}
			}
			cfg.IdleTimeout = 0 // tracker semantics: 0 = never exclude
		}
	}
	if cfg.Checkpoint != nil && cfg.Streaming {
		return cfg, nil, ErrCheckpointStreaming
	}
	return cfg, plan, nil
}

// State returns the session's lifecycle phase.
func (s *LiveSession) State() SessionState { return SessionState(s.state.Load()) }

// Done is closed when the session reaches the closed state — by Close or by
// context cancellation. After Done, Close returns immediately with the
// final result.
func (s *LiveSession) Done() <-chan struct{} { return s.done }

// Err returns the error the session closed with: nil after a clean Close,
// the context's error after cancellation, nil while still running.
func (s *LiveSession) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.closeErr
}

// stopAll stops every group in reverse start order. Safe on never-started
// members.
func (s *LiveSession) stopAll() {
	for i := len(s.groups) - 1; i >= 0; i-- {
		s.groups[i].stop()
	}
}

// closeBus shuts the bus down if the session owns it (it created an
// in-memory bus because LiveConfig.Bus was nil). A caller-supplied bus is
// left running: on a shared backend it serves other sessions and processes,
// and shutting it down is its owner's call.
func (s *LiveSession) closeBus() {
	if s.ownsBus {
		_ = s.bus.Close()
	}
}

// ingestAllowed returns the state-specific rejection for pushes, nil while
// ingesting.
func (s *LiveSession) ingestAllowed() error {
	switch s.State() {
	case StateIngesting:
		if s.ctx.Err() != nil {
			return ErrSessionClosed
		}
		return nil
	case StateDraining:
		return ErrSessionDraining
	default:
		return ErrSessionClosed
	}
}

// markStarted pins the run's start instant to the first ingest, so Elapsed
// and throughput measure the traffic span, not time the session idled
// between OpenLive and the first push.
func (s *LiveSession) markStarted() {
	if s.started.CompareAndSwap(false, true) {
		now := time.Now().UnixNano()
		s.startNanos.Store(now)
		s.lastActivity.Store(now)
	}
}

// Ingester returns the push valve for one source slot (0 ≤ slot <
// Spec.Sources): the live analogue of "IoT source number slot". Pushes
// through the valve publish into the slot's leaf topic, are paced to
// LiveConfig.SourceRate, and block for backpressure when the leaf topic's
// unconsumed backlog exceeds LiveConfig.MaxIngestLag. The valve is cached:
// every call for the same slot returns the same *Ingester.
func (s *LiveSession) Ingester(slot int) (*Ingester, error) {
	if slot < 0 || slot >= s.plan.Spec.Sources {
		return nil, fmt.Errorf("%w: slot %d of %d sources", ErrBadSourceSlot, slot, s.plan.Spec.Sources)
	}
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	if in := s.ingesters[slot]; in != nil {
		return in, nil
	}
	src := s.plan.Sources[slot]
	leaf := s.plan.Layers[0][src.ParentIndex]
	in := &Ingester{
		s:         s,
		slot:      slot,
		topic:     src.Topic,
		leafID:    leaf.ID,
		lagGroup:  leaf.ID + "-in", // the leaf node's consumer group (streams source node "in")
		producer:  s.bus.NewProducer(),
		bwc:       s.res.Bandwidth.Counter(src.Topic),
		rate:      s.cfg.SourceRate,
		eventTime: s.cfg.EventTime,
		perRecord: s.cfg.recordAtATime,
		from:      sourceFrom(slot),
	}
	if in.eventTime {
		in.marks = make(map[stream.SourceID]time.Time)
	}
	s.ingesters[slot] = in
	return in, nil
}

// Ingest publishes items onto sub-stream src: every item's Source is set to
// src, and the batch enters the tree at a stable leaf — src hashes to a
// source slot, so one stratum always flows through the same layer-0 node
// and per-stratum ordering is preserved. Items are stamped with the
// wall-clock publish instant (Pub, for end-to-end latency; in
// processing-time mode Ts is overwritten with the same instant, in
// event-time mode a caller-supplied Ts is preserved as the event
// timestamp). Returns ErrSessionDraining / ErrSessionClosed once the
// session has left the ingesting state.
func (s *LiveSession) Ingest(src stream.SourceID, items ...stream.Item) error {
	for i := range items {
		items[i].Source = src
	}
	in, err := s.Ingester(s.slotFor(src))
	if err != nil {
		return err
	}
	return in.Push(items...)
}

// slotFor maps a sub-stream to its source slot by stable hash.
func (s *LiveSession) slotFor(src stream.SourceID) int {
	h := fnv.New32a()
	h.Write([]byte(src))
	return int(h.Sum32() % uint32(s.plan.Spec.Sources))
}

// Windows returns a subscription to window results: every WindowResult the
// root closes from now on is delivered in order, and the channel is closed
// when the session closes. The per-subscriber buffer holds windowSubBuffer
// results; a subscriber that falls further behind misses intermediate
// results (every window remains in the final LiveResult.Windows) — the
// window ticker never blocks on a slow reader.
func (s *LiveSession) Windows() <-chan WindowResult {
	ch := make(chan WindowResult, windowSubBuffer)
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subsClosed {
		close(ch)
		return ch
	}
	s.subs = append(s.subs, ch)
	return ch
}

// publishWindow fans one closed window out to every subscriber.
func (s *LiveSession) publishWindow(win WindowResult) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subsClosed {
		return
	}
	for _, ch := range s.subs {
		select {
		case ch <- win:
		default:
			s.subDrops.Add(1)
		}
	}
}

// closeSubs ends every Windows subscription.
func (s *LiveSession) closeSubs() {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subsClosed {
		return
	}
	s.subsClosed = true
	for _, ch := range s.subs {
		close(ch)
	}
	s.subs = nil
}

// SetTarget retunes the adaptive controller's relative-error target mid-run
// — the analyst tightening or relaxing their error budget while the
// deployment serves. The change takes effect at the next window close.
// Returns ErrNotAdaptive when the session was opened without a controller.
func (s *LiveSession) SetTarget(target float64) error {
	if s.cfg.Feedback == nil {
		return ErrNotAdaptive
	}
	s.cfg.Feedback.SetTarget(target)
	return nil
}

// Target returns the adaptive controller's current relative-error target (0
// when the session is not adaptive).
func (s *LiveSession) Target() float64 {
	if s.cfg.Feedback == nil {
		return 0
	}
	return s.cfg.Feedback.Target()
}

// closeWindow runs one window-close sweep. In processing-time mode it
// merges every root member's Θ, runs the queries, and emits one window; in
// event-time mode it merges the members' watermarks and emits every event
// window the merged watermark makes due, in event-time order. Runs on the
// ticker goroutine (and once more during shutdown).
func (s *LiveSession) closeWindow(at time.Time) {
	if s.cfg.EventTime {
		s.closeEventWindows(at, s.rootWatermark(at))
		return
	}
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	var theta []stream.Batch
	for _, rp := range s.rootProcs {
		theta = append(theta, rp.closeInterval()...)
	}
	win := NewWindowResult(at, s.engine, s.plan.Queries, theta)
	if win.SampleSize == 0 {
		return
	}
	s.emitWindowLocked(win)
}

// rootWatermark merges the root members' event-time watermarks: the
// minimum over members that have one. A member still waiting on an
// expected producer vetoes the merge (its windows would close incomplete);
// a member with nothing live — every chain idle, a shard whose partitions
// are empty past the idle timeout — has no opinion and is skipped, so it
// cannot stall event time forever.
func (s *LiveSession) rootWatermark(now time.Time) time.Time {
	var min time.Time
	for _, rp := range s.rootProcs {
		wm, blocked := rp.watermarkState(now)
		if blocked {
			return time.Time{}
		}
		if wm.IsZero() {
			continue
		}
		if min.IsZero() || wm.Before(min) {
			min = wm
		}
	}
	return min
}

// closeEventWindows advances every root member to the merged watermark,
// merges the members' closed windows by window start, and emits each merged
// window in ascending event-time order. Windows are exact: a member's
// contribution to window s can only arrive before the merged watermark
// passes s's close threshold (per-source watermark ordering), so a window
// is complete when it closes and is never emitted twice.
func (s *LiveSession) closeEventWindows(at, wm time.Time) {
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	if wm.IsZero() {
		return
	}
	merged := make(map[int64][]stream.Batch)
	for _, rp := range s.rootProcs {
		for _, cw := range rp.advanceTo(wm) {
			merged[cw.start] = append(merged[cw.start], cw.theta...)
		}
	}
	if len(merged) == 0 {
		return
	}
	starts := make([]int64, 0, len(merged))
	for st := range merged {
		starts = append(starts, st)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, st := range starts {
		win := NewWindowResult(at, s.engine, s.plan.Queries, merged[st])
		win.Start = time.Unix(0, st).UTC()
		win.End = win.Start.Add(s.plan.Spec.Window)
		if win.SampleSize == 0 {
			continue
		}
		s.emitWindowLocked(win)
	}
}

// emitWindowLocked records one closed window, steps the feedback loop, and
// fans the result out to hooks and subscribers. Callers hold windowMu.
func (s *LiveSession) emitWindowLocked(win WindowResult) {
	if s.sliding != nil {
		s.sliding.observe(&win)
	}
	s.res.Windows = append(s.res.Windows, win)
	s.windowsClosed.Add(1)
	last := win
	s.lastWindow.Store(&last)
	if s.cfg.Feedback != nil {
		// §IV-B feedback step: observe the merged window, then fan the
		// adjusted fraction out — directly to the colocated root
		// members, via the control topic to every edge member. Edge
		// windows already open keep their old fraction; the update
		// lands at their next boundary.
		f := s.cfg.Feedback.Observe(win.Result(feedbackKind(s.plan.Queries)))
		for _, dc := range s.rootCosts {
			dc.set(f)
		}
		s.ctlSeq++
		payload := encodeControl(s.ctlSeq, f)
		s.res.Bandwidth.Add(s.plan.ControlTopic, int64(len(payload)))
		// The broker outlives every window close, so the only send
		// failure mode is a deleted topic — impossible mid-run.
		_, _, _ = s.ctlProducer.Send(s.plan.ControlTopic, nil, payload)
		s.res.Fractions = append(s.res.Fractions, f)
	}
	if s.cfg.OnWindow != nil {
		s.cfg.OnWindow(win)
	}
	s.publishWindow(win)
}

// LiveSnapshot is a mid-run view of the deployment's telemetry — everything
// the final LiveResult assembles at exit, readable at any moment while
// members pump. All fields are copies or freshly-merged instruments; the
// caller owns them.
type LiveSnapshot struct {
	// State is the lifecycle phase at capture time.
	State SessionState
	// Produced / RootProcessed / DecodeErrors / LateDropped mirror the
	// LiveResult counters, at their current values.
	Produced      int64
	RootProcessed int64
	DecodeErrors  int64
	LateDropped   int64
	// LateDroppedInput is the estimated original input the late-dropped
	// records represent (LateDropped weighted by each batch's compounded
	// weight). See LiveResult.LateDroppedInput.
	LateDroppedInput float64
	// WindowsClosed counts the non-empty windows closed so far.
	WindowsClosed int
	// CheckpointErrors counts checkpoint-save failures across every member
	// since the session opened (0 when no checkpoint store is configured).
	// Saves are best-effort — a failure costs recovery fidelity, never the
	// pipeline — so a rising count is the operational signal to watch.
	CheckpointErrors int64
	// Elapsed spans the first ingest to now (to the run's end once closed).
	Elapsed time.Duration
	// Throughput is Produced/Elapsed so far.
	Throughput float64
	// Fraction is the adaptive controller's current sampling fraction (0
	// when the session is not adaptive).
	Fraction float64
	// Target is the adaptive controller's relative-error target (0 when
	// not adaptive).
	Target float64
	// Latency is a merged copy of the end-to-end latency distribution over
	// items that reached the root so far.
	Latency *metrics.Histogram
	// Bandwidth is a copy of the per-topic produce-side byte counters.
	Bandwidth map[string]int64
	// Nodes holds per-member lifetime telemetry keyed by member ID, at
	// current counter values.
	Nodes map[string]NodeTelemetry
	// SubscriberDrops counts window results dropped on full Windows()
	// subscriber buffers.
	SubscriberDrops int64

	// The fields below describe the deployment's configuration and health
	// probes — the inputs an operational surface (health checks, stall
	// detection) needs alongside the counters.

	// Window is the configured processing-time window (event-time mode:
	// the wall-clock sweep cadence).
	Window time.Duration
	// MaxIngestLag is the configured backpressure high-water mark per leaf
	// topic (negative: backpressure disabled).
	MaxIngestLag int
	// IngestLag is the total unconsumed backlog across the leaf topics at
	// capture time — how far the pushers are ahead of the pipeline.
	IngestLag int64
	// Start is the run's start instant (the first ingest; the open instant
	// until anything is pushed).
	Start time.Time
	// LastActivity is the instant of the most recent root-side processing.
	LastActivity time.Time
	// EventTime reports whether the deployment runs event-time windows.
	EventTime bool
	// Watermark is the merged root watermark (event-time mode only; zero
	// in processing-time mode, while blocked on an expected-but-unheard
	// producer, before any traffic, and once closed).
	Watermark time.Time
	// Adaptive reports whether a feedback controller is installed —
	// Fraction/Target are meaningful gauges only when true.
	Adaptive bool
	// LastWindow is the most recently emitted window result — every
	// registered query's estimate ± bound, including top-k groups, quantile
	// intervals, and sliding composites. Nil until the first non-empty
	// window closes. The ops /metrics exposition renders per-query gauges
	// from it.
	LastWindow *WindowResult
}

// Snapshot captures the deployment's telemetry mid-run: counters, latency,
// bandwidth, per-node throughput, and the adaptive fraction, all safe to
// read while every member keeps writing. Before the session API this view
// existed only once, assembled at exit.
func (s *LiveSession) Snapshot() LiveSnapshot {
	now := time.Now()
	snap := LiveSnapshot{
		State:            s.State(),
		Produced:         s.produced.Load(),
		RootProcessed:    s.rootProcessed.Load(),
		DecodeErrors:     s.decodeErrs.Load(),
		LateDropped:      s.late.items.Load(),
		LateDroppedInput: s.late.input.load(),
		Latency:          metrics.NewHistogram(),
		Bandwidth:        s.res.Bandwidth.Snapshot(),
		SubscriberDrops:  s.subDrops.Load(),
		Window:           s.cfg.Window,
		MaxIngestLag:     s.cfg.MaxIngestLag,
		EventTime:        s.cfg.EventTime,
		Adaptive:         s.cfg.Feedback != nil,
		Start:            time.Unix(0, s.startNanos.Load()),
		LastActivity:     time.Unix(0, s.lastActivity.Load()),
	}
	snap.WindowsClosed = int(s.windowsClosed.Load())
	snap.CheckpointErrors = s.ckptErrs.Load()
	snap.LastWindow = s.lastWindow.Load()
	if s.cfg.Feedback != nil {
		snap.Fraction = s.cfg.Feedback.Fraction()
		snap.Target = s.cfg.Feedback.Target()
	}
	// Closed-run fields come exclusively from the atomically-published
	// final result: s.res is off limits until shutdown stores it, so a
	// Snapshot racing Close can never read a half-assembled result.
	fin := s.final.Load()
	elapsed := now.Sub(snap.Start)
	if fin != nil {
		elapsed = fin.Elapsed
	}
	if fin == nil {
		snap.IngestLag = s.ingestLag()
		if s.cfg.EventTime {
			snap.Watermark = s.rootWatermark(now)
		}
	}
	if elapsed < 0 {
		elapsed = 0
	}
	snap.Elapsed = elapsed
	if elapsed > 0 {
		snap.Throughput = float64(snap.Produced) / elapsed.Seconds()
	}
	for _, rp := range s.rootProcs {
		snap.Latency.Merge(rp.latency)
	}
	snap.Nodes = s.nodeTelemetry(elapsed)
	return snap
}

// nodeTelemetry assembles the per-member lifetime counters at this instant,
// scaled to the given elapsed span. Shared by mid-run Snapshots and the
// final result merge, so the two can never diverge in shape.
func (s *LiveSession) nodeTelemetry(elapsed time.Duration) map[string]NodeTelemetry {
	nodes := make(map[string]NodeTelemetry, len(s.groups)+len(s.rootProcs))
	record := func(id string, st NodeStats) {
		tel := NodeTelemetry{Observed: st.Observed, Emitted: st.Emitted, Intervals: st.Intervals}
		if elapsed > 0 {
			tel.Throughput = float64(st.Observed) / elapsed.Seconds()
		}
		nodes[id] = tel
	}
	for _, g := range s.groups {
		g.mu.Lock()
		members := append([]*groupMember(nil), g.members...)
		g.mu.Unlock()
		// Dead and retired members included: their counters are the
		// last-known truth, and a restarted member replaces its dead
		// predecessor in the list under the same ID.
		for _, m := range members {
			if m.proc != nil {
				record(m.id, m.proc.stats())
			}
		}
	}
	for _, rp := range s.rootProcs {
		record(rp.id, rp.stats())
	}
	return nodes
}

// ingestLag totals the unconsumed backlog across every leaf topic — the
// records pushers have published that the layer-0 consumer groups have not
// yet committed past. The same probe the Ingester valves use for
// backpressure, summed for telemetry. Topics shared by several source slots
// count once. Returns what it has on a closed broker (no backlog left to
// report).
func (s *LiveSession) ingestLag() int64 {
	var total int64
	seen := make(map[string]struct{}, len(s.plan.Sources))
	for _, src := range s.plan.Sources {
		if _, dup := seen[src.Topic]; dup {
			continue
		}
		seen[src.Topic] = struct{}{}
		leaf := s.plan.Layers[0][src.ParentIndex]
		if g := s.groupByID[leaf.ID]; g != nil && g.isDetached() {
			continue // nothing consumes a detached node's topic
		}
		lag, err := s.bus.GroupLag(src.Topic, leaf.ID+"-in")
		if err != nil {
			continue // topic gone (bus closed) or group not yet registered
		}
		total += lag
	}
	return total
}

// drain waits until every group is caught up and the root has been idle for
// several windows (final punctuation flushes included). Every in-flight
// item is visible to this probe as exactly one of: unfetched topic lag, a
// busy member pump (records dispatch after their offsets commit), or Ψ
// buffered in an edge member awaiting its window flush — so the conjunction
// below cannot declare quiescence early no matter how the scheduler starves
// the pipeline. Read order matters: pending is sampled BEFORE the group
// lags, so a batch that flushes mid-probe is caught either in Ψ at the
// pending read or as parent-topic lag in the later group sweep (flushes
// forward before zeroing pending). A cancelled context ends the drain
// immediately (nil — the context's error is surfaced by the caller).
// A pipeline still wedged at cfg.DrainTimeout returns ErrDrainTimeout so
// the caller can mark the final result incomplete instead of pretending
// the drain succeeded.
func (s *LiveSession) drain() error {
	var deadline time.Time
	if s.cfg.DrainTimeout > 0 {
		deadline = time.Now().Add(s.cfg.DrainTimeout)
	}
	for deadline.IsZero() || time.Now().Before(deadline) {
		if s.ctx.Err() != nil {
			return nil
		}
		var lag, pending int64
		busy := false
		for _, g := range s.groups {
			if g.isDetached() {
				continue // drained and stopped; nothing in flight
			}
			pending += g.pending()
			lag += g.lag()
			busy = busy || g.busy()
		}
		idle := time.Since(time.Unix(0, s.lastActivity.Load()))
		if lag == 0 && !busy && pending == 0 && idle > 4*s.cfg.Window {
			return nil
		}
		select {
		case <-s.ctx.Done():
			return nil
		case <-time.After(s.cfg.Window / 4):
		}
	}
	return ErrDrainTimeout
}

// Close drains the deployment and returns the final merged LiveResult:
// pushes are rejected from the moment Close is called (ErrSessionDraining),
// in-flight windows reach the root, the final partial window is closed, and
// every goroutine the session owns exits. Close is idempotent — every call
// returns the same result — and safe to call after context cancellation, in
// which case it reports the context's error alongside the result assembled
// at abort time.
func (s *LiveSession) Close() (*LiveResult, error) {
	s.shutdown(true, nil)
	// Wait for the context watcher here rather than in shutdown: when the
	// watcher itself triggers the shutdown (ctx cancelled), waiting inside
	// would be the watcher waiting on its own exit.
	s.watchWG.Wait()
	return s.res, s.Err()
}

// shutdown runs the end-of-life sequence exactly once: optional drain, stop
// the ticker, stop the root group (members fully drain fetched records),
// close the final partial window, stop everything else, and merge the
// result. Concurrent callers (Close, the context watcher) block until the
// first caller finishes.
func (s *LiveSession) shutdown(drain bool, cause error) {
	s.closeOnce.Do(func() {
		s.quiesce.Store(true)
		s.state.Store(int32(StateDraining))
		// Barrier: wake pacing sleeps, then wait out every push that was
		// admitted before the state flip. After this, no Push can reach
		// the broker or the truth accumulators, so the drain probe cannot
		// miss in-flight pushes and finalize reads settled counters.
		close(s.drainCh)
		s.pushMu.Lock()
		s.pushMu.Unlock() //nolint:staticcheck // empty critical section IS the fence
		if drain {
			if s.cfg.EventTime {
				// End of stream: push the end-of-stream watermark through
				// every valve so the close wave cascades bottom-up through
				// the same per-source machinery data used, and the drain
				// probe below sees the buffered event windows flush.
				s.sendEOS()
			}
			if derr := s.drain(); derr != nil {
				// The pipeline never quiesced: assemble the result anyway,
				// but say so — a silent partial drain is indistinguishable
				// from a clean one to the caller.
				s.res.DrainTimedOut = true
				if cause == nil {
					cause = derr
				}
			}
		}
		if err := s.ctx.Err(); err != nil && cause == nil {
			cause = err // cancelled mid-Close: report it like an abort
		}
		end := time.Unix(0, s.lastActivity.Load())
		s.cancelTick()
		s.tickWG.Wait()
		s.rootGrp.stop() // root members fully drain their fetched records
		if s.cfg.EventTime {
			// Final sweep: whatever reached the root is emitted, in event
			// order — the event-time form of the final partial window.
			s.closeEventWindows(time.Now(), eosWatermark)
		} else {
			s.closeWindow(time.Now()) // final partial window
		}
		s.stopAll()
		s.closeBus()
		s.finalize(end)
		// Publish the fully-assembled result atomically BEFORE the state
		// flips to closed: concurrent Snapshots read closed-run fields only
		// through this pointer, never through s.res directly, so no
		// interleaving can observe a half-assembled result — regardless of
		// how the stores below are ordered or reordered in the future.
		s.final.Store(s.res)
		s.errMu.Lock()
		s.closeErr = cause
		s.errMu.Unlock()
		s.state.Store(int32(StateClosed))
		s.closeSubs()
		close(s.done)
	})
	<-s.done
}

// finalize merges the run's measurements into res. Runs once, after every
// group has stopped (the nodes are quiescent, so lifetime counters are
// final).
func (s *LiveSession) finalize(end time.Time) {
	res := s.res
	res.Produced = s.produced.Load()
	res.RootProcessed = s.rootProcessed.Load()
	res.DecodeErrors = s.decodeErrs.Load()
	res.LateDropped = s.late.items.Load()
	res.LateDroppedInput = s.late.input.load()
	for i := range s.truth {
		s.truth[i].mu.Lock()
		res.TruthSum += s.truth[i].v
		s.truth[i].mu.Unlock()
	}
	res.Elapsed = end.Sub(time.Unix(0, s.startNanos.Load()))
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Produced) / res.Elapsed.Seconds()
	}
	s.windowMu.Lock()
	windows := res.Windows
	s.windowMu.Unlock()
	for _, w := range windows {
		res.EstimateSum += w.Result(query.Sum).Estimate.Value
		res.EstimateCount += w.EstimatedInput
	}
	res.Nodes = s.nodeTelemetry(res.Elapsed)
	for _, rp := range s.rootProcs {
		res.Latency.Merge(rp.latency)
	}
}

// Ingester is the push valve for one source slot: it stamps, batches, paces,
// and publishes items into the slot's leaf topic. Obtain one per slot from
// LiveSession.Ingester. Pushes through one Ingester are serialized (the
// valve preserves per-stratum order); distinct slots push concurrently.
type Ingester struct {
	s         *LiveSession
	slot      int
	topic     string
	leafID    string // the layer-0 node this valve feeds (detach checks)
	lagGroup  string
	producer  transport.Producer
	bwc       *metrics.BandwidthCounter // private leaf-link byte counter
	rate      float64
	eventTime bool
	perRecord bool   // recordAtATime: publish one record per broker append
	from      string // watermark origin: this valve's chain identity

	mu    sync.Mutex
	sent  int64
	epoch time.Time // pacing schedule origin: the valve's first push
	// marks tracks, per sub-stream pushed through this valve, the highest
	// event timestamp seen — the sub-stream's low watermark, piggybacked
	// on every record the valve publishes (event-time mode only).
	marks map[stream.SourceID]time.Time
	// enc / outRecs are the valve's publish scratch: one push encodes every
	// same-source run into enc via AppendMarshal and lands the whole set
	// with a single SendBatch (one topic lock, one consumer wakeup). The
	// broker retains the produced bytes, so enc materializes them into one
	// fresh block per push — see batchEncoder.
	enc     batchEncoder
	outRecs []mq.Record
}

// Slot returns the source slot this valve feeds.
func (in *Ingester) Slot() int { return in.slot }

// Sent returns the number of items pushed through this valve so far.
func (in *Ingester) Sent() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sent
}

// Push publishes items into the session: consecutive runs of the same
// sub-stream become one weighted batch (weight 1 — the census), keyed by
// SourceID so a stratum sticks to one partition. Every item's Pub is
// stamped with the wall-clock publish instant (end-to-end latency is
// measured from here). In processing-time mode Ts is re-stamped with the
// same instant — the pre-event-time contract; in event-time mode a
// caller-supplied Ts is the item's event timestamp and is preserved (zero
// Ts defaults to the publish instant), and the sub-stream's low watermark
// piggybacks on the published records. Items with an empty Source default
// to the slot's stratum ("source<slot>"), and ground truth is accumulated
// for the final LiveResult. Push applies backpressure — it blocks while
// the leaf topic's backlog exceeds LiveConfig.MaxIngestLag — and pacing:
// with LiveConfig.SourceRate set, it sleeps off any lead over the rate
// schedule before returning. Returns ErrSessionDraining /
// ErrSessionClosed once the session has left the ingesting state.
func (in *Ingester) Push(items ...stream.Item) error {
	s := in.s
	// The read half of the Push/Close barrier: held until the last Send so
	// shutdown's write-lock acquisition is a fence behind every admitted
	// push — none can land records or truth after the drain probe starts.
	s.pushMu.RLock()
	defer s.pushMu.RUnlock()
	if err := s.ingestAllowed(); err != nil {
		return err
	}
	if g := s.groupByID[in.leafID]; g != nil && g.isDetached() {
		// The valve's leaf node is detached (RemoveEdgeNode): nothing
		// consumes its topic, so an admitted push would strand records and
		// wedge the final drain. RemoveEdgeNode fences in-flight pushes via
		// pushMu after setting the flag, so this check is race-free.
		return fmt.Errorf("%w: %q", ErrNodeDetached, in.leafID)
	}
	if len(items) == 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.epoch.IsZero() {
		in.epoch = time.Now()
	}
	if err := in.backpressure(); err != nil {
		return err
	}
	s.markStarted()

	// Stamp the wall-clock publish instant (Pub — end-to-end latency is
	// measured from here to root-side processing). Processing-time mode
	// re-stamps Ts with the same instant, the pre-event-time contract;
	// event-time mode preserves caller-supplied event timestamps and only
	// defaults a zero Ts to the publish instant.
	pub := time.Now()
	defaultSrc := stream.SourceID("")
	for j := range items {
		if items[j].Source == "" {
			if defaultSrc == "" {
				defaultSrc = stream.SourceID(fmt.Sprintf("source%d", in.slot))
			}
			items[j].Source = defaultSrc
		}
		items[j].Pub = pub
		if !in.eventTime || items[j].Ts.IsZero() {
			items[j].Ts = pub
		}
	}
	// Ground truth: item-by-item into the slot's running sum, so the
	// per-slot total is bit-identical to the pre-session accumulator and
	// the final fold (slot order, in finalize) is deterministic.
	t := &s.truth[in.slot]
	t.mu.Lock()
	for j := range items {
		t.v += items[j].Value
	}
	t.mu.Unlock()
	for lo := 0; lo < len(items); {
		hi := lo + 1
		src := items[lo].Source
		for hi < len(items) && items[hi].Source == src {
			hi++
		}
		b := stream.Batch{Source: src, Weight: 1, Items: items[lo:hi]}
		// Event-time mode: advance the sub-stream's low watermark to the
		// highest event timestamp in the run and piggyback it, so the leaf
		// member's per-chain watermark tracks this valve exactly.
		var wm mq.Watermark
		if in.eventTime {
			mark := in.marks[src]
			for _, it := range b.Items {
				if it.Ts.After(mark) {
					mark = it.Ts
				}
			}
			in.marks[src] = mark
			wm = mq.Watermark{From: in.from, At: mark}
		}
		if in.perRecord {
			// Seed path (equivalence reference): one append per run.
			payload := b.Marshal()
			in.bwc.Add(int64(len(payload)))
			if _, _, err := in.producer.SendWatermarked(in.topic, []byte(src), payload, wm); err != nil {
				if errors.Is(err, mq.ErrClosed) {
					return ErrSessionClosed
				}
				return err
			}
		} else {
			in.enc.add(src, b, wm)
		}
		lo = hi
	}
	if !in.enc.empty() {
		// Land every run with one batched append: one topic lock, one
		// consumer wakeup, and one retained block for the whole push.
		in.bwc.Add(in.enc.payloadBytes())
		recs := in.enc.records(in.outRecs[:0])
		in.enc.reset()
		err := in.producer.SendBatch(in.topic, recs)
		// Scrub before recycling: spare capacity must not pin the block.
		for i := range recs {
			recs[i] = mq.Record{}
		}
		in.outRecs = recs[:0]
		if err != nil {
			if errors.Is(err, mq.ErrClosed) {
				return ErrSessionClosed
			}
			return err
		}
	}
	in.sent += int64(len(items))
	s.produced.Add(int64(len(items)))

	if in.rate > 0 {
		// Pace to the configured rate: sleep off any lead over the ideal
		// sent/rate schedule.
		ahead := time.Duration(float64(in.sent)/in.rate*float64(time.Second)) - time.Since(in.epoch)
		if ahead > 0 {
			select {
			case <-s.ctx.Done():
			case <-s.drainCh: // Close must not wait out a pacing sleep
			case <-time.After(ahead):
			}
		}
	}
	return nil
}

// backpressure blocks while the leaf topic's unconsumed backlog (records the
// leaf node's consumer group has not yet committed past) exceeds the
// session's high-water mark, so a pusher can never outrun the pipeline into
// unbounded broker memory. It re-checks the session state while waiting.
func (in *Ingester) backpressure() error {
	s := in.s
	if s.cfg.MaxIngestLag < 0 {
		return nil
	}
	wait := s.cfg.Window / 8
	if wait <= 0 {
		wait = time.Millisecond
	}
	for {
		lag, err := s.bus.GroupLag(in.topic, in.lagGroup)
		if errors.Is(err, mq.ErrUnknownTopic) {
			return ErrSessionClosed
		}
		if err != nil {
			// Unknown group means the valve's lag-group name drifted from
			// the shard-group appID scheme — a wiring bug. Surface it:
			// silently admitting the push would disable backpressure and
			// reopen the unbounded-broker-memory hole it exists to close.
			// (Remote backends also land transport failures here, which is
			// the same call: never admit a push the probe could not vouch
			// for.)
			return fmt.Errorf("core: ingest backpressure probe on %q: %w", in.topic, err)
		}
		if lag <= int64(s.cfg.MaxIngestLag) {
			return nil
		}
		if err := s.ingestAllowed(); err != nil {
			return err
		}
		select {
		case <-s.ctx.Done():
			return ErrSessionClosed
		case <-time.After(wait):
		}
	}
}

// sendEOS publishes an end-of-stream watermark heartbeat for every
// sub-stream that ever pushed through this valve — or for the slot's
// default stratum if nothing ever did: a zero-item batch carrying
// eosWatermark, which closes every remaining event window at the leaf and
// lets the close wave cascade to the root. Runs during shutdown, after the
// push barrier — no concurrent Push can interleave.
func (in *Ingester) sendEOS() {
	in.mu.Lock()
	defer in.mu.Unlock()
	srcs := make([]stream.SourceID, 0, len(in.marks)+1)
	for src := range in.marks {
		srcs = append(srcs, src)
	}
	if len(srcs) == 0 {
		// An unused valve still speaks at end of stream: every member
		// statically expects it (Plan.ExpectedProducers), and resolving
		// the expectation in-band makes the close cascade deterministic
		// instead of waiting on the idle timeout to age the placeholder.
		srcs = append(srcs, stream.SourceID(fmt.Sprintf("source%d", in.slot)))
	}
	// End-of-stream is topic-global, so it is broadcast to EVERY partition
	// rather than keyed: after a mid-run rebalance a member can hold
	// buffered windows for sub-streams whose partitions it no longer owns
	// — a keyed EOS would reach only the new owner, and the buffering
	// member (hearing nothing, all chains stranded) could never close.
	for _, src := range srcs {
		payload := heartbeat(src).Marshal()
		wm := mq.Watermark{From: in.from, At: eosWatermark}
		for part := 0; part < in.s.plan.Partitions; part++ {
			in.s.res.Bandwidth.Add(in.topic, int64(len(payload)))
			// The broker outlives the drain; a send can only fail once the
			// session is past the point of caring about these heartbeats.
			_, _ = in.producer.SendToWatermarked(in.topic, part, []byte(src), payload, wm)
		}
	}
}

// sendEOS fans the end-of-stream watermark out through every source slot
// (event-time shutdown only), creating valves for slots that were never
// pushed so that every expected producer chain terminates explicitly.
func (s *LiveSession) sendEOS() {
	for slot := 0; slot < s.plan.Spec.Sources; slot++ {
		in, err := s.Ingester(slot)
		if err != nil {
			continue // unreachable: slots come from the plan
		}
		in.sendEOS()
	}
}

// feed is the built-in generator ingestion client the RunLive wrapper uses:
// it produces items total items, split across the tree's source slots — the
// remainder of items/Sources spread one item each over the low-indexed
// slots, so exactly items are produced — pushing each slot's stream through
// the same Ingester valve external clients use. Blocks until every slot's
// quota is pushed or the session stops accepting.
func (s *LiveSession) feed(source func(i int) workload.Source, items int64) {
	spec := s.plan.Spec
	perSource := items / int64(spec.Sources)
	remainder := items % int64(spec.Sources)
	chunk := s.cfg.Window / 4
	if chunk <= 0 {
		chunk = s.cfg.Window
	}
	var wg sync.WaitGroup
	for slot := 0; slot < spec.Sources; slot++ {
		quota := perSource
		if int64(slot) < remainder {
			quota++
		}
		ing, err := s.Ingester(slot)
		if err != nil {
			continue // unreachable: slots come from the plan
		}
		wg.Add(1)
		go func(slot int, quota int64, ing *Ingester) {
			defer wg.Done()
			gen := source(slot)
			now := time.Now()
			var sent int64
			for sent < quota {
				batch := gen.Generate(now, chunk)
				now = now.Add(chunk)
				if len(batch) == 0 {
					continue
				}
				if int64(len(batch)) > quota-sent {
					batch = batch[:quota-sent]
				}
				if err := ing.Push(batch...); err != nil {
					return // session draining/closed: stop producing
				}
				sent += int64(len(batch))
			}
		}(slot, quota, ing)
	}
	wg.Wait()
}
