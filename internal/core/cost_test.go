package core

import (
	"testing"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stats"
)

func TestFractionBudget(t *testing.T) {
	tests := []struct {
		f        float64
		observed int
		want     int
	}{
		{0.5, 100, 50},
		{0.1, 99, 10}, // ceil
		{1.0, 77, 77},
		{1.5, 10, 10},  // clamp to all
		{0, 100, 0},    // zero fraction
		{-1, 100, 0},   // negative fraction
		{0.5, 0, 0},    // nothing observed
		{0.001, 10, 1}, // ceil keeps at least one
	}
	for _, tc := range tests {
		if got := (FractionBudget{Fraction: tc.f}).SampleSize(tc.observed); got != tc.want {
			t.Errorf("FractionBudget(%g).SampleSize(%d) = %d, want %d", tc.f, tc.observed, got, tc.want)
		}
	}
}

func TestFixedBudget(t *testing.T) {
	if got := (FixedBudget{Size: 40}).SampleSize(99999); got != 40 {
		t.Fatalf("FixedBudget = %d, want 40", got)
	}
	if got := (FixedBudget{Size: -1}).SampleSize(10); got != 0 {
		t.Fatalf("negative FixedBudget = %d, want 0", got)
	}
}

func TestEffectiveFractionBudget(t *testing.T) {
	e := EffectiveFractionBudget{Fraction: 0.2}
	if got := e.SampleSizeWeighted(1000); got != 200 {
		t.Fatalf("SampleSizeWeighted(1000) = %d, want 200", got)
	}
	if got := e.SampleSize(1000); got != 200 {
		t.Fatalf("SampleSize fallback = %d, want 200", got)
	}
	if got := e.SampleSizeWeighted(0); got != 0 {
		t.Fatalf("zero volume = %d, want 0", got)
	}
	over := EffectiveFractionBudget{Fraction: 3}
	if got := over.SampleSizeWeighted(100); got != 100 {
		t.Fatalf("fraction > 1 = %d, want clamp to 100", got)
	}
}

func feedbackResult(value, variance float64, n int64) query.Result {
	return query.Result{
		Kind:       query.Sum,
		Estimate:   stats.Estimate{Value: value, Variance: variance},
		Confidence: stats.TwoSigma,
		SampleSize: n,
	}
}

func TestFeedbackRaisesFractionOnHighError(t *testing.T) {
	fc := NewFeedbackController(0.1, 0.01)
	// rel error = 2·sqrt(10000)/1000 = 0.2 >> 0.01 target.
	got := fc.Observe(feedbackResult(1000, 10000, 50))
	if got <= 0.1 {
		t.Fatalf("fraction = %g after high error, want raised above 0.1", got)
	}
}

func TestFeedbackLowersFractionOnLowError(t *testing.T) {
	fc := NewFeedbackController(0.5, 0.1)
	// rel error = 2·sqrt(1)/10000 = 0.0002 << target/2.
	got := fc.Observe(feedbackResult(10000, 1, 50))
	if got >= 0.5 {
		t.Fatalf("fraction = %g after tiny error, want lowered below 0.5", got)
	}
}

func TestFeedbackDeadBand(t *testing.T) {
	fc := NewFeedbackController(0.3, 0.1)
	// rel error = 2·sqrt(properly tuned)… pick variance so rel ∈ (target/2, target):
	// 2·sqrt(v)/1000 = 0.07 → v = 1225.
	got := fc.Observe(feedbackResult(1000, 1225, 50))
	if got != 0.3 {
		t.Fatalf("fraction = %g inside dead band, want unchanged 0.3", got)
	}
}

func TestFeedbackRespectsBounds(t *testing.T) {
	fc := NewFeedbackController(0.9, 0.001, WithFractionBounds(0.05, 0.95))
	for i := 0; i < 20; i++ {
		fc.Observe(feedbackResult(1000, 1e9, 50)) // huge error, keeps raising
	}
	if got := fc.Fraction(); got != 0.95 {
		t.Fatalf("fraction = %g, want capped at 0.95", got)
	}
	fc2 := NewFeedbackController(0.1, 10, WithFractionBounds(0.05, 0.95))
	for i := 0; i < 20; i++ {
		fc2.Observe(feedbackResult(1e9, 1, 50)) // tiny error, keeps lowering
	}
	if got := fc2.Fraction(); got != 0.05 {
		t.Fatalf("fraction = %g, want floored at 0.05", got)
	}
}

func TestFeedbackIgnoresUninformativeWindows(t *testing.T) {
	fc := NewFeedbackController(0.2, 0.01)
	if got := fc.Observe(feedbackResult(0, 100, 50)); got != 0.2 {
		t.Fatalf("zero-value window moved fraction to %g", got)
	}
	if got := fc.Observe(feedbackResult(100, 100, 0)); got != 0.2 {
		t.Fatalf("empty-sample window moved fraction to %g", got)
	}
}

func TestFeedbackIsACostFunction(t *testing.T) {
	var _ CostFunction = NewFeedbackController(0.25, 0.01)
	fc := NewFeedbackController(0.25, 0.01)
	if got := fc.SampleSize(1000); got != 250 {
		t.Fatalf("SampleSize = %d, want 250", got)
	}
}

func TestFeedbackGainOption(t *testing.T) {
	fc := NewFeedbackController(0.1, 0.001, WithGain(2))
	fc.Observe(feedbackResult(1000, 1e9, 50))
	if got := fc.Fraction(); got != 0.2 {
		t.Fatalf("fraction = %g, want doubled to 0.2", got)
	}
}
