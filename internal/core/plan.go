package core

import (
	"errors"
	"fmt"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/topology"
)

// This file is the deployment-plan layer: the single place where a logical
// topology.TreeSpec is compiled into concrete node wiring. Both runners —
// RunSim (virtual time + WAN emulation) and the live session layer behind
// OpenLive (goroutines over the mq broker; RunLive is its batch-shaped
// wrapper) — execute the same compiled Plan, so a spec that validates and
// wires one way in simulation is guaranteed to validate and wire the same
// way live. Before the plan existed each runner re-derived the tree walk,
// topic names, parent edges, and sampler seeding by hand.

// Plan-compilation errors.
var (
	// ErrNoPartitions rejects a negative PlanConfig.Partitions (0 selects
	// the single-partition default).
	ErrNoPartitions = errors.New("core: PlanConfig.Partitions must be at least 1")
	// ErrNoRootShards rejects a negative PlanConfig.RootShards (0 selects
	// the single-member default).
	ErrNoRootShards = errors.New("core: PlanConfig.RootShards must be at least 1")
	// ErrShardsExceedPartitions rejects a consumer group sized beyond the
	// topic's partition count: the surplus members would own nothing.
	ErrShardsExceedPartitions = errors.New("core: shard count must not exceed Partitions (extra shards would own no partitions)")
	// ErrNegativeLayerShards rejects a negative LayerShards entry (0 means
	// "default this layer to one member").
	ErrNegativeLayerShards = errors.New("core: LayerShards entries must be non-negative")
	// ErrLayerShardsRoot rejects a LayerShards slice long enough to reach
	// the root layer, whose group is sized by RootShards alone.
	ErrLayerShardsRoot = errors.New("core: LayerShards configures edge layers only; size the root group with RootShards")
)

// PlanConfig is the mode-independent description of a deployment: everything
// both the simulated and the live runner need to agree on.
type PlanConfig struct {
	// Spec is the logical tree (sources, layers, window).
	Spec topology.TreeSpec
	// NewSampler builds each node's sampling strategy. Required.
	NewSampler SamplerFactory
	// Cost is the budget policy shared by all nodes. Required.
	Cost CostFunction
	// Queries lists the root's aggregates (default SUM).
	Queries []query.Kind
	// Seed is the root of every node's seed lineage.
	Seed uint64
	// Partitions is the partition count of every live mq topic (default 1).
	// Records are keyed by SourceID, so one sub-stream always lands in one
	// partition and per-stratum ordering is preserved.
	Partitions int
	// RootShards is the size of the live root consumer group (default 1).
	// Each shard aggregates the partitions it owns; shards merge at window
	// close. Must not exceed Partitions.
	RootShards int
	// LayerShards sizes the live consumer group of every node in an edge
	// layer, indexed by layer (missing or zero entries default to 1). Each
	// member owns a private sampling node over the partitions it is
	// assigned and forwards its weighted batches independently — Eq. 8
	// weight compounding keeps the count estimate exact at any shard
	// count, so no merge barrier exists between members. Entries must not
	// exceed Partitions; the root layer is sized by RootShards, so
	// LayerShards must be shorter than the layer list.
	LayerShards []int
}

// NodeDesc is one compiled computing node of the tree: pure data, ready for
// either runner to instantiate.
type NodeDesc struct {
	// ID names the node ("edge1-3", "root-0").
	ID string
	// Layer and Index locate the node in the tree (bottom-up layers).
	Layer, Index int
	// ParentLayer / ParentIndex locate the parent edge; -1/-1 at the root.
	ParentLayer, ParentIndex int
	// Topic is the node's input topic in live mode.
	Topic string
	// ParentTopic is the topic the node forwards into ("" at the root).
	ParentTopic string
	// SamplerSeed records the node's seed lineage as the built-in sampler
	// factories derive it from (layer, index, plan seed) — introspection
	// metadata; a custom SamplerFactory may mix its inputs differently.
	SamplerSeed uint64
	// Shards is the size of the node's live consumer group: how many
	// members jointly consume Topic, each with a private sampling node
	// (LayerShards for edge layers, RootShards at the root; always ≥ 1).
	Shards int
	// IsRoot marks the datacenter node.
	IsRoot bool
}

// SourceDesc wires one IoT source into the first layer.
type SourceDesc struct {
	// Index is the source number.
	Index int
	// ParentIndex is the layer-0 node this source feeds.
	ParentIndex int
	// Topic is the live topic the source publishes into.
	Topic string
}

// TopicDesc is one live mq topic the plan requires.
type TopicDesc struct {
	// Name is the topic name ("layer0-node2", "control").
	Name string
	// Partitions is the partition count the topic must be created with.
	Partitions int
}

// Plan is an immutable compiled deployment: node descriptors per layer,
// source wiring, topic list, and the factories needed to instantiate nodes.
// Compile once, execute in any mode.
type Plan struct {
	// Spec echoes the validated tree spec.
	Spec topology.TreeSpec
	// Queries is the normalized query set (never empty).
	Queries []query.Kind
	// Seed is the plan-wide seed root.
	Seed uint64
	// Partitions, RootShards, and LayerShards are the live-mode
	// parallelism knobs. LayerShards is normalized to one entry per layer
	// (the root entry mirrors RootShards, every entry ≥ 1).
	Partitions  int
	RootShards  int
	LayerShards []int
	// Layers holds one descriptor per node, indexed [layer][node].
	Layers [][]NodeDesc
	// Sources holds one descriptor per IoT source.
	Sources []SourceDesc
	// ControlTopic is the deployment's single-partition control channel:
	// the live root publishes fraction updates (§IV-B feedback) into it and
	// every shard-group member drains it at its window boundaries. It is
	// part of every compiled plan — an adaptive run uses it, a frozen-cost
	// run just leaves it empty.
	ControlTopic string

	newSampler SamplerFactory
	cost       CostFunction
}

// topicName names the mq topic feeding node (layer, idx).
func topicName(layer, idx int) string {
	return fmt.Sprintf("layer%d-node%d", layer, idx)
}

// ControlTopicName names the per-deployment control topic. Node topics are
// all "layer<l>-node<i>", so the name cannot collide. Exported so callers
// can look the control plane up in bandwidth accounts without duplicating
// the string.
const ControlTopicName = "control"

// CompilePlan validates the configuration and compiles the tree into an
// explicit node graph. It is the only place parent edges and topic names
// are derived.
func CompilePlan(cfg PlanConfig) (*Plan, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid tree spec: %w", err)
	}
	if cfg.NewSampler == nil {
		return nil, ErrNoSampler
	}
	if cfg.Cost == nil {
		return nil, ErrNoCost
	}
	if len(cfg.Queries) == 0 {
		cfg.Queries = []query.Kind{query.Sum}
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	if cfg.Partitions < 0 {
		return nil, ErrNoPartitions
	}
	if cfg.RootShards == 0 {
		cfg.RootShards = 1
	}
	if cfg.RootShards < 0 {
		return nil, ErrNoRootShards
	}
	if cfg.RootShards > cfg.Partitions {
		return nil, fmt.Errorf("%w: RootShards %d over %d partitions", ErrShardsExceedPartitions, cfg.RootShards, cfg.Partitions)
	}

	spec := cfg.Spec
	rootLayer := spec.RootLayer()
	if len(cfg.LayerShards) > rootLayer {
		return nil, ErrLayerShardsRoot
	}
	layerShards := make([]int, len(spec.Layers))
	for l := range layerShards {
		layerShards[l] = 1
	}
	layerShards[rootLayer] = cfg.RootShards
	for l, s := range cfg.LayerShards {
		if s < 0 {
			return nil, fmt.Errorf("%w: layer %d wants %d", ErrNegativeLayerShards, l, s)
		}
		if s == 0 {
			continue
		}
		if s > cfg.Partitions {
			return nil, fmt.Errorf("%w: layer %d wants %d shards over %d partitions", ErrShardsExceedPartitions, l, s, cfg.Partitions)
		}
		layerShards[l] = s
	}

	p := &Plan{
		Spec:         spec,
		Queries:      append([]query.Kind(nil), cfg.Queries...),
		Seed:         cfg.Seed,
		Partitions:   cfg.Partitions,
		RootShards:   cfg.RootShards,
		LayerShards:  layerShards,
		Layers:       make([][]NodeDesc, len(spec.Layers)),
		Sources:      make([]SourceDesc, spec.Sources),
		ControlTopic: ControlTopicName,
		newSampler:   cfg.NewSampler,
		cost:         cfg.Cost,
	}
	for l, ls := range spec.Layers {
		p.Layers[l] = make([]NodeDesc, ls.Nodes)
		for i := 0; i < ls.Nodes; i++ {
			d := NodeDesc{
				ID:          fmt.Sprintf("%s-%d", ls.Name, i),
				Layer:       l,
				Index:       i,
				ParentLayer: -1,
				ParentIndex: -1,
				Topic:       topicName(l, i),
				SamplerSeed: nodeSeed(l, i, cfg.Seed),
				Shards:      layerShards[l],
				IsRoot:      l == rootLayer,
			}
			if !d.IsRoot {
				d.ParentLayer = l + 1
				d.ParentIndex = topology.ParentIndex(ls.Nodes, spec.Layers[l+1].Nodes, i)
				d.ParentTopic = topicName(d.ParentLayer, d.ParentIndex)
			}
			p.Layers[l][i] = d
		}
	}
	for s := 0; s < spec.Sources; s++ {
		parent := topology.ParentIndex(spec.Sources, spec.Layers[0].Nodes, s)
		p.Sources[s] = SourceDesc{Index: s, ParentIndex: parent, Topic: topicName(0, parent)}
	}
	return p, nil
}

// RootLayer returns the index of the root layer.
func (p *Plan) RootLayer() int { return p.Spec.RootLayer() }

// Root returns the root node's descriptor.
func (p *Plan) Root() NodeDesc { return p.Layers[p.RootLayer()][0] }

// Topics lists every live topic the plan requires — one per node with the
// plan's partition count, in deterministic (layer, node) order, plus the
// single-partition control topic last. Control records must reach every
// shard-group member in one total order, so the control topic never
// partitions regardless of the data-plane partition count.
func (p *Plan) Topics() []TopicDesc {
	var out []TopicDesc
	for _, layer := range p.Layers {
		for _, d := range layer {
			out = append(out, TopicDesc{Name: d.Topic, Partitions: p.Partitions})
		}
	}
	out = append(out, TopicDesc{Name: p.ControlTopic, Partitions: 1})
	return out
}

// EdgeNodes returns the non-root descriptors bottom-up, in deterministic
// (layer, node) order.
func (p *Plan) EdgeNodes() []NodeDesc {
	var out []NodeDesc
	for l := 0; l < p.RootLayer(); l++ {
		out = append(out, p.Layers[l]...)
	}
	return out
}

// NewNode instantiates a descriptor as a sampling node, seeding its sampler
// from the plan's seed lineage.
func (p *Plan) NewNode(d NodeDesc) *Node {
	return NewNode(d.ID, p.newSampler(d.Layer, d.Index, p.Seed), p.cost)
}

// shardSeed salts the plan seed for shard members beyond the canonical
// shard 0. The salt is a per-shard odd-constant multiple (a bijection on
// uint64), so a shard's (layer, index, salted seed) lineage collides with
// no tree node's and with no other shard's.
func shardSeed(seed uint64, shard int) uint64 {
	return seed + uint64(shard)*0x9e3779b97f4a7c15
}

// NewNodeShard instantiates one consumer-group member of a compiled node.
// Shard 0 carries the node's canonical identity and seed lineage, so a
// single-member group samples identically to the unsharded node; members
// beyond 0 get their own identity and a salted seed lineage.
//
// Each member applies the plan's cost function over the partitions it
// owns. Input-relative budgets (FractionBudget, EffectiveFractionBudget,
// the feedback controller) compose exactly — the members jointly observe
// the same input a single node would. The absolute FixedBudget is the
// node's *total* sample cap, so it is divided across the group here; a
// custom CostFunction with absolute semantics is applied per member as-is.
func (p *Plan) NewNodeShard(d NodeDesc, shard int) *Node {
	return p.NewNodeShardCost(d, shard, p.cost)
}

// NewNodeShardCost is NewNodeShard with the member's cost function
// overridden — the adaptive live runner uses it to give every member a
// private control-plane-driven budget in place of the plan's frozen one.
// The FixedBudget group split applies to the override exactly as it would
// to the plan cost.
func (p *Plan) NewNodeShardCost(d NodeDesc, shard int, cost CostFunction) *Node {
	id := memberID(d, shard)
	if fb, ok := cost.(FixedBudget); ok && d.Shards > 1 {
		// Spread the cap exactly: Size/N each, remainder to the low shards,
		// so shard budgets total Size and none is starved unless Size < N.
		size := fb.Size / d.Shards
		if shard < fb.Size%d.Shards {
			size++
		}
		cost = FixedBudget{Size: size}
	}
	return NewNode(id, p.newSampler(d.Layer, d.Index, shardSeed(p.Seed, shard)), cost)
}

// memberID names one consumer-group member of a compiled node: shard 0
// carries the node's canonical identity, members beyond get a -shardN
// suffix. Telemetry keys (LiveResult.Nodes) and watermark chain origins
// use these names.
func memberID(d NodeDesc, shard int) string {
	if shard > 0 {
		return fmt.Sprintf("%s-shard%d", d.ID, shard)
	}
	return d.ID
}

// sourceFrom names source slot i's watermark chain origin — the identity
// its ingestion valve (live) or generator (simulated) stamps on the
// records it produces.
func sourceFrom(slot int) string { return fmt.Sprintf("src%d", slot) }

// ExpectedProducers lists the watermark chain origins statically known to
// feed node d: the source valves of its slots (layer 0) or every consumer
// group member of its child nodes. Event-time members register these as
// expectations, so a producer the member has not yet heard from holds the
// watermark back instead of being silently absent from the minimum — the
// difference between an exact window and one that closes before a slow
// sibling's data arrives.
func (p *Plan) ExpectedProducers(d NodeDesc) []string {
	var out []string
	if d.Layer == 0 {
		for _, src := range p.Sources {
			if src.ParentIndex == d.Index {
				out = append(out, sourceFrom(src.Index))
			}
		}
		return out
	}
	for _, child := range p.Layers[d.Layer-1] {
		if child.ParentIndex != d.Index {
			continue
		}
		for shard := 0; shard < child.Shards; shard++ {
			out = append(out, memberID(child, shard))
		}
	}
	return out
}

// NewRootShard instantiates one member of the root's sampling stage; the
// live runner merges member outputs at window close (weight compounding
// makes the merged estimate exact at any member count).
func (p *Plan) NewRootShard(shard int) *Node {
	return p.NewNodeShard(p.Root(), shard)
}

// NewRoot instantiates the full root node — sampling stage plus query
// engine — for single-consumer execution (the simulated runner, and the
// live runner when RootShards is 1 conceptually: the live runner composes
// NewRootShard with the engine itself so shards can merge at window close).
func (p *Plan) NewRoot(engine *query.Engine) *Root {
	root := p.Root()
	return NewRoot(root.ID, p.newSampler(root.Layer, root.Index, p.Seed), p.cost, engine, p.Queries...)
}
