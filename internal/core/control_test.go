package core

import (
	"errors"
	"testing"

	"github.com/approxiot/approxiot/internal/query"
)

func TestControlRecordRoundTrip(t *testing.T) {
	for _, f := range []float64{0.01, 0.3333333333333333, 0.8, 1} {
		seq, got, err := decodeControl(encodeControl(42, f))
		if err != nil {
			t.Fatalf("decode(%g): %v", f, err)
		}
		if seq != 42 || got != f {
			t.Fatalf("round trip (42, %g) -> (%d, %g)", f, seq, got)
		}
	}
}

func TestControlRecordRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		{0x01},
		make([]byte, controlRecordSize-1),
		make([]byte, controlRecordSize+1),
		encodeControl(1, 0),    // fraction must be positive
		encodeControl(1, -0.5), // ... and not negative
		encodeControl(1, 1.5),  // ... and at most 1
	}
	for i, value := range bad {
		if _, _, err := decodeControl(value); !errors.Is(err, ErrBadControlRecord) {
			t.Fatalf("case %d: err = %v, want ErrBadControlRecord", i, err)
		}
	}
	// NaN bits are rejected too.
	nan := encodeControl(1, 0.5)
	for i := 8; i < 16; i++ {
		nan[i] = 0xFF
	}
	if _, _, err := decodeControl(nan); !errors.Is(err, ErrBadControlRecord) {
		t.Fatalf("NaN fraction: err = %v, want ErrBadControlRecord", err)
	}
}

func TestDynamicCostTracksFraction(t *testing.T) {
	dc := newDynamicCost(0.5)
	if got := dc.SampleSize(100); got != 50 {
		t.Fatalf("SampleSize(100) at 0.5 = %d, want 50", got)
	}
	if got := dc.SampleSizeWeighted(1000); got != 500 {
		t.Fatalf("SampleSizeWeighted(1000) at 0.5 = %d, want 500", got)
	}
	dc.set(0.1)
	if got := dc.SampleSize(100); got != 10 {
		t.Fatalf("SampleSize(100) after set(0.1) = %d, want 10", got)
	}
	// Effective semantics match EffectiveFractionBudget exactly.
	for _, est := range []float64{0, 1, 7, 1234.5} {
		want := EffectiveFractionBudget{Fraction: 0.1}.SampleSizeWeighted(est)
		if got := dc.SampleSizeWeighted(est); got != want {
			t.Fatalf("SampleSizeWeighted(%g) = %d, want %d", est, got, want)
		}
	}
}

func TestFeedbackCostReadsController(t *testing.T) {
	ctl := NewFeedbackController(0.25, 0.01)
	fc := feedbackCost{ctl: ctl}
	if got := fc.SampleSize(100); got != 25 {
		t.Fatalf("SampleSize(100) = %d, want 25", got)
	}
	if got := fc.SampleSizeWeighted(100); got != 25 {
		t.Fatalf("SampleSizeWeighted(100) = %d, want 25", got)
	}
}

func TestFeedbackControllerSetTarget(t *testing.T) {
	ctl := NewFeedbackController(0.1, 0.05)
	if got := ctl.Target(); got != 0.05 {
		t.Fatalf("Target() = %g, want 0.05", got)
	}
	ctl.SetTarget(0.01)
	if got := ctl.Target(); got != 0.01 {
		t.Fatalf("Target() after SetTarget = %g, want 0.01", got)
	}
	ctl.SetTarget(0) // ignored
	ctl.SetTarget(-1)
	if got := ctl.Target(); got != 0.01 {
		t.Fatalf("non-positive SetTarget changed target to %g", got)
	}
}

func TestFeedbackKindSkipsCount(t *testing.T) {
	// COUNT is exact under Eq. 8 (zero-width bound), so observing it would
	// pin the fraction at the floor; the loop must pick an informative kind.
	cases := []struct {
		kinds []query.Kind
		want  query.Kind
	}{
		{[]query.Kind{query.Sum}, query.Sum},
		{[]query.Kind{query.Count, query.Sum}, query.Sum},
		{[]query.Kind{query.Count, query.Mean, query.Sum}, query.Mean},
		{[]query.Kind{query.Count}, query.Count}, // nothing better registered
	}
	for _, c := range cases {
		if got := feedbackKind(c.kinds); got != c.want {
			t.Fatalf("feedbackKind(%v) = %v, want %v", c.kinds, got, c.want)
		}
	}
}
