package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
)

// sessionConfig is liveConfig without the batch-only fields: sessions are
// push-fed, so Source/Items stay zero.
func sessionConfig(fraction float64) LiveConfig {
	return LiveConfig{
		Spec:       topology.Testbed(),
		NewSampler: WHSFactory(),
		Cost:       EffectiveFractionBudget{Fraction: fraction},
		Window:     30 * time.Millisecond,
		Queries:    []query.Kind{query.Sum, query.Count},
		Seed:       3,
	}
}

// pushGenerated drives the session's Ingester valves with exactly the item
// stream the RunLive wrapper's built-in client would produce for (seed,
// items): same generators, same chunking, same quota split. Returns when
// every slot's quota is pushed.
func pushGenerated(t *testing.T, s *LiveSession, seed uint64, items int64) {
	t.Helper()
	spec := s.plan.Spec
	source := microSource(seed, 1000)
	perSource := items / int64(spec.Sources)
	remainder := items % int64(spec.Sources)
	chunk := s.cfg.Window / 4
	var wg sync.WaitGroup
	for slot := 0; slot < spec.Sources; slot++ {
		quota := perSource
		if int64(slot) < remainder {
			quota++
		}
		ing, err := s.Ingester(slot)
		if err != nil {
			t.Errorf("Ingester(%d): %v", slot, err)
			return
		}
		wg.Add(1)
		go func(slot int, quota int64, ing *Ingester) {
			defer wg.Done()
			gen := source(slot)
			now := time.Now()
			var sent int64
			for sent < quota {
				batch := gen.Generate(now, chunk)
				now = now.Add(chunk)
				if len(batch) == 0 {
					continue
				}
				if int64(len(batch)) > quota-sent {
					batch = batch[:quota-sent]
				}
				if err := ing.Push(batch...); err != nil {
					t.Errorf("Push(slot %d): %v", slot, err)
					return
				}
				sent += int64(len(batch))
			}
		}(slot, quota, ing)
	}
	wg.Wait()
}

// TestSessionEndToEnd is the acceptance path: open a deployment, push items,
// receive window results over the subscription while the run is in flight,
// read a mid-run snapshot, and get a final LiveResult from Close equivalent
// to the legacy Run path at the same seed and volume.
func TestSessionEndToEnd(t *testing.T) {
	const items = 16000
	cfg := sessionConfig(0.25)
	// Pace the pushers so production spans ~10 windows: without a rate the
	// whole volume lands inside one 30 ms window and only a single window
	// result can ever close.
	cfg.SourceRate = 6000
	s, err := OpenLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	if got := s.State(); got != StateIngesting {
		t.Fatalf("state after open = %v, want ingesting", got)
	}

	// Subscribe before pushing so no window can be missed.
	windows := s.Windows()
	var live []WindowResult
	seen2 := make(chan struct{})
	var collectWG sync.WaitGroup
	collectWG.Add(1)
	go func() {
		defer collectWG.Done()
		for w := range windows {
			live = append(live, w)
			if len(live) == 2 {
				close(seen2)
			}
		}
	}()

	pushGenerated(t, s, cfg.Seed, items)

	// ≥2 window results must arrive while the run is still in flight —
	// before Close is even called.
	select {
	case <-seen2:
	case <-time.After(10 * time.Second):
		t.Fatal("did not receive 2 window results while ingesting")
	}

	// Mid-run snapshot: the telemetry that used to exist only at exit.
	snap := s.Snapshot()
	if snap.State != StateIngesting {
		t.Fatalf("snapshot state = %v, want ingesting", snap.State)
	}
	if snap.Produced == 0 || snap.RootProcessed == 0 {
		t.Fatalf("snapshot counters empty: %+v", snap)
	}
	if snap.WindowsClosed < 2 {
		t.Fatalf("snapshot windows = %d, want ≥ 2", snap.WindowsClosed)
	}
	if snap.Latency.Count() == 0 {
		t.Fatal("snapshot latency histogram empty")
	}
	if len(snap.Bandwidth) == 0 || len(snap.Nodes) == 0 {
		t.Fatalf("snapshot bandwidth/nodes empty: %d links, %d nodes", len(snap.Bandwidth), len(snap.Nodes))
	}
	if snap.Throughput <= 0 {
		t.Fatalf("snapshot throughput = %v, want > 0", snap.Throughput)
	}

	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	collectWG.Wait() // Windows channel closed by Close

	// Equivalence with the legacy batch path at the same seed/volume: the
	// same LiveConfig with the generators the pusher above replayed.
	legacyCfg := sessionConfig(0.25)
	legacyCfg.Source = microSource(cfg.Seed, 1000)
	legacyCfg.Items = items
	legacy, err := RunLive(legacyCfg)
	if err != nil {
		t.Fatalf("legacy RunLive: %v", err)
	}
	if res.Produced != items || legacy.Produced != items {
		t.Fatalf("produced %d (session) / %d (legacy), want %d", res.Produced, legacy.Produced, items)
	}
	if rel := math.Abs(res.TruthSum-legacy.TruthSum) / math.Abs(legacy.TruthSum); rel > 1e-12 {
		t.Fatalf("truth diverged: %g (session) vs %g (legacy), rel %g", res.TruthSum, legacy.TruthSum, rel)
	}
	for name, r := range map[string]*LiveResult{"session": res, "legacy": legacy} {
		if rel := math.Abs(r.EstimateCount-float64(r.Produced)) / float64(r.Produced); rel > 1e-9 {
			t.Fatalf("%s: estimated count %.1f vs produced %d", name, r.EstimateCount, r.Produced)
		}
		if loss := math.Abs(r.EstimateSum-r.TruthSum) / r.TruthSum; loss > 0.1 {
			t.Fatalf("%s: accuracy loss %.3f, implausible at fraction 0.25", name, loss)
		}
	}

	// Every subscribed window is in the final result, in order.
	if len(live) == 0 || len(live) > len(res.Windows) {
		t.Fatalf("subscription saw %d windows, result has %d", len(live), len(res.Windows))
	}
	for i, w := range live {
		if !w.At.Equal(res.Windows[i].At) || w.SampleSize != res.Windows[i].SampleSize {
			t.Fatalf("subscribed window %d differs from result window", i)
		}
	}
	if s.State() != StateClosed {
		t.Fatalf("state after close = %v, want closed", s.State())
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing after a generous deadline. The runtime reclaims goroutines
// asynchronously, so a single instantaneous read would flake.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizers; cheap in tests
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s", n, want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSessionCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	s, err := OpenLive(ctx, sessionConfig(0.5))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	// Keep pushes in flight so cancellation genuinely lands mid-window.
	pusherDone := make(chan struct{})
	go func() {
		defer close(pusherDone)
		ing, err := s.Ingester(0)
		if err != nil {
			t.Error(err)
			return
		}
		gen := microSource(9, 1000)(0)
		now := time.Now()
		for {
			batch := gen.Generate(now, s.cfg.Window/4)
			now = now.Add(s.cfg.Window / 4)
			if err := ing.Push(batch...); err != nil {
				return // session aborted — expected
			}
		}
	}()
	time.Sleep(4 * s.cfg.Window) // let a few windows close with data flowing

	cancel()
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("session did not reach closed after cancel")
	}
	<-pusherDone
	if s.State() != StateClosed {
		t.Fatalf("state = %v, want closed", s.State())
	}
	res, err := s.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after cancel err = %v, want context.Canceled", err)
	}
	// Already-closed windows keep their exact-count estimates: the abort
	// dropped in-flight data, so the estimated input can only be ≤ what was
	// produced — never more, and each retained window is internally intact.
	if res.EstimateCount > float64(res.Produced)*(1+1e-9) {
		t.Fatalf("estimate count %.1f exceeds produced %d after abort", res.EstimateCount, res.Produced)
	}
	waitGoroutines(t, before+2) // the pusher above may still be unwinding
}

func TestSessionCancelAfterQuiesceKeepsInvariant(t *testing.T) {
	// When everything in flight has drained BEFORE the cancel, the abort
	// path must still deliver the full Eq. 8 invariant: estimated input ==
	// produced, because the final partial window is closed from fully
	// processed root Θ.
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	s, err := OpenLive(ctx, sessionConfig(0.5))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	pushGenerated(t, s, 3, 4000)
	// Wait until the pipeline is quiescent (same probe Close's drain uses).
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var lag, pending int64
		busy := false
		for _, g := range s.groups {
			pending += g.pending()
			lag += g.lag()
			busy = busy || g.busy()
		}
		if lag == 0 && !busy && pending == 0 &&
			time.Since(time.Unix(0, s.lastActivity.Load())) > 4*s.cfg.Window {
			break
		}
		time.Sleep(s.cfg.Window / 4)
	}
	cancel()
	<-s.Done()
	res, err := s.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Produced != 4000 {
		t.Fatalf("produced %d, want 4000", res.Produced)
	}
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("estimated count %.1f vs produced %d after quiesced cancel", res.EstimateCount, res.Produced)
	}
	waitGoroutines(t, before)
}

func TestSessionDoubleCloseIdempotent(t *testing.T) {
	s, err := OpenLive(context.Background(), sessionConfig(0.5))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	pushGenerated(t, s, 3, 2000)
	res1, err1 := s.Close()
	res2, err2 := s.Close()
	if res1 != res2 {
		t.Fatalf("double Close returned distinct results: %p vs %p", res1, res2)
	}
	if err1 != nil || err2 != nil {
		t.Fatalf("double Close errs = %v, %v", err1, err2)
	}
	// Concurrent Close during the first is also safe: exercised by calling
	// from two goroutines on a fresh session.
	s2, err := OpenLive(context.Background(), sessionConfig(0.5))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	var wg sync.WaitGroup
	results := make([]*LiveResult, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], _ = s2.Close()
		}()
	}
	wg.Wait()
	if results[0] != results[1] {
		t.Fatal("concurrent Close returned distinct results")
	}
}

func TestSessionIngestAfterClose(t *testing.T) {
	s, err := OpenLive(context.Background(), sessionConfig(0.5))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	ing, err := s.Ingester(0)
	if err != nil {
		t.Fatalf("Ingester: %v", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ing.Push(microItems(8)...); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Push after Close err = %v, want ErrSessionClosed", err)
	}
	if err := s.Ingest("late-stratum", microItems(8)...); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Ingest after Close err = %v, want ErrSessionClosed", err)
	}
	// A Windows subscription taken after close is immediately closed, not
	// a channel that blocks forever.
	if _, ok := <-s.Windows(); ok {
		t.Fatal("Windows after close delivered a value")
	}
}

// microItems builds n raw items for push tests.
func microItems(n int) []stream.Item {
	items := make([]stream.Item, n)
	for i := range items {
		items[i] = stream.Item{Source: "push-test", Value: float64(i)}
	}
	return items
}

func TestSessionIngesterValidation(t *testing.T) {
	s, err := OpenLive(context.Background(), sessionConfig(0.5))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	defer s.Close()
	if _, err := s.Ingester(-1); !errors.Is(err, ErrBadSourceSlot) {
		t.Fatalf("Ingester(-1) err = %v, want ErrBadSourceSlot", err)
	}
	if _, err := s.Ingester(s.plan.Spec.Sources); !errors.Is(err, ErrBadSourceSlot) {
		t.Fatalf("Ingester(N) err = %v, want ErrBadSourceSlot", err)
	}
	a, _ := s.Ingester(2)
	b, _ := s.Ingester(2)
	if a != b {
		t.Fatal("Ingester not cached per slot")
	}
	// Ingest routes a stratum to a stable slot.
	if s.slotFor("sensor-x") != s.slotFor("sensor-x") {
		t.Fatal("slotFor not stable")
	}
}

func TestSessionSetTarget(t *testing.T) {
	s, err := OpenLive(context.Background(), sessionConfig(0.5))
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	if err := s.SetTarget(0.05); !errors.Is(err, ErrNotAdaptive) {
		t.Fatalf("SetTarget on frozen session err = %v, want ErrNotAdaptive", err)
	}
	s.Close()

	cfg := sessionConfig(0.5)
	cfg.Cost = nil
	cfg.Feedback = NewFeedbackController(0.2, 0.02)
	sa, err := OpenLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("OpenLive adaptive: %v", err)
	}
	defer sa.Close()
	if got := sa.Target(); got != 0.02 {
		t.Fatalf("Target = %v, want 0.02", got)
	}
	if err := sa.SetTarget(0.1); err != nil {
		t.Fatalf("SetTarget: %v", err)
	}
	if got := sa.Target(); got != 0.1 {
		t.Fatalf("Target after SetTarget = %v, want 0.1", got)
	}
	if got := cfg.Feedback.Target(); got != 0.1 {
		t.Fatalf("controller target = %v, want passthrough 0.1", got)
	}
}

// TestRunLiveMatchesPreRefactorFixtures pins the compatibility wrapper to
// outputs captured from the monolithic RunLive immediately before the
// session refactor (same seeds, volumes, and parallelism). Produced and the
// Eq. 8 exact-count invariant must hold exactly; TruthSum is checked to
// 1e-12 relative — the session accumulates per-slot truth in deterministic
// slot order, while the old runner folded per-goroutine sums in completion
// order, so the totals may differ in the last few ulps (the old fold order
// was scheduler-dependent; no single order reproduces every old bit
// pattern).
func TestRunLiveMatchesPreRefactorFixtures(t *testing.T) {
	fixtures := []struct {
		seed     uint64
		items    int64
		parts    int
		truthSum float64 // captured pre-refactor
	}{
		{seed: 3, items: 16000, parts: 1, truthSum: math.Float64frombits(0x41BA3B271D5771A6)},
		{seed: 7, items: 12000, parts: 4, truthSum: math.Float64frombits(0x41B3D93E4260847E)},
	}
	for _, f := range fixtures {
		cfg := LiveConfig{
			Spec:       topology.Testbed(),
			Source:     microSource(f.seed, 1000),
			NewSampler: WHSFactory(),
			Cost:       EffectiveFractionBudget{Fraction: 0.25},
			Items:      f.items,
			Window:     30 * time.Millisecond,
			Queries:    []query.Kind{query.Sum, query.Count},
			Seed:       f.seed,
			Partitions: f.parts,
			RootShards: f.parts,
		}
		res, err := RunLive(cfg)
		if err != nil {
			t.Fatalf("seed %d: RunLive: %v", f.seed, err)
		}
		if res.Produced != f.items {
			t.Fatalf("seed %d: produced %d, want %d (pre-refactor)", f.seed, res.Produced, f.items)
		}
		if rel := math.Abs(res.EstimateCount-float64(f.items)) / float64(f.items); rel > 1e-9 {
			t.Fatalf("seed %d: estimate count %.3f, want %d exactly (pre-refactor invariant)", f.seed, res.EstimateCount, f.items)
		}
		if rel := math.Abs(res.TruthSum-f.truthSum) / math.Abs(f.truthSum); rel > 1e-12 {
			t.Fatalf("seed %d: truth %x, want %x (pre-refactor, rel %g)",
				f.seed, res.TruthSum, f.truthSum, rel)
		}
	}
}

func TestSessionBackpressureBounds(t *testing.T) {
	// A pusher that vastly outruns the pipeline must be throttled: the leaf
	// topic's backlog stays near the high-water mark instead of growing with
	// everything pushed.
	cfg := sessionConfig(0.5)
	cfg.MaxIngestLag = 512
	cfg.RootWork = 2 * time.Microsecond // slow the pipeline down
	s, err := OpenLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	ing, err := s.Ingester(0)
	if err != nil {
		t.Fatalf("Ingester: %v", err)
	}
	items := make([]stream.Item, 256)
	for i := range items {
		items[i] = stream.Item{Source: "bp", Value: 1}
	}
	for k := 0; k < 64; k++ {
		if err := ing.Push(items...); err != nil {
			t.Fatalf("Push: %v", err)
		}
		lag, err := s.bus.GroupLag(ing.topic, ing.lagGroup)
		if err != nil {
			t.Fatalf("GroupLag: %v", err)
		}
		// Push admits at most one batch above the mark before blocking.
		if lag > int64(cfg.MaxIngestLag)+int64(len(items)) {
			t.Fatalf("backlog %d far above high-water %d", lag, cfg.MaxIngestLag)
		}
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSessionOnWindowHookRuns(t *testing.T) {
	var mu sync.Mutex
	var hooked int
	var snapWindows int
	cfg := sessionConfig(0.5)
	var sess *LiveSession
	cfg.OnWindow = func(WindowResult) {
		mu.Lock()
		hooked++
		mu.Unlock()
		// Snapshot from inside the hook must not deadlock: closeWindow
		// holds windowMu while calling here, so Snapshot cannot take it.
		snapWindows = sess.Snapshot().WindowsClosed
	}
	s, err := OpenLive(context.Background(), cfg)
	sess = s
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	pushGenerated(t, s, 3, 4000)
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hooked != len(res.Windows) {
		t.Fatalf("OnWindow ran %d times for %d windows", hooked, len(res.Windows))
	}
	if snapWindows != len(res.Windows) {
		t.Fatalf("in-hook snapshot saw %d windows at the last close, result has %d", snapWindows, len(res.Windows))
	}
}

// BenchmarkSessionIngest measures the push hot path — stamp, batch, truth,
// publish, backpressure probe — through an Ingester valve, with the tree
// consuming concurrently. The tracked number for the session API, alongside
// BenchmarkLiveAdaptive for the control plane.
func BenchmarkSessionIngest(b *testing.B) {
	cfg := LiveConfig{
		Spec:       topology.SingleNode(1),
		NewSampler: WHSFactory(),
		Cost:       EffectiveFractionBudget{Fraction: 0.1},
		Window:     50 * time.Millisecond,
		Queries:    []query.Kind{query.Sum},
		Seed:       1,
	}
	s, err := OpenLive(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	ing, err := s.Ingester(0)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 512
	items := make([]stream.Item, batch)
	for i := range items {
		items[i] = stream.Item{Source: "bench", Value: float64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := ing.Push(items...); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*batch/elapsed.Seconds(), "items/s")
	}
	if _, err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// TestSessionSnapshotDuringClose races snapshot readers against the whole
// shutdown sequence: the closed-run fields (Elapsed, and the Throughput
// derived from it) must come from the atomically-published final result,
// never from a half-assembled one. Run under -race this is the regression
// guard for the Snapshot/Close lifecycle race; the semantic assertion —
// any snapshot that observes StateClosed must report exactly the final
// Elapsed — holds at any interleaving.
func TestSessionSnapshotDuringClose(t *testing.T) {
	for round := 0; round < 3; round++ {
		s, err := OpenLive(context.Background(), sessionConfig(0.3))
		if err != nil {
			t.Fatalf("OpenLive: %v", err)
		}
		pushGenerated(t, s, 11, 4000)
		var closedSnaps []LiveSnapshot
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				snap := s.Snapshot()
				if snap.State == StateClosed {
					closedSnaps = append(closedSnaps, snap)
					if len(closedSnaps) > 3 {
						return
					}
				}
				select {
				case <-s.Done():
					return
				default:
				}
			}
		}()
		res, err := s.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		<-done
		for _, snap := range closedSnaps {
			if snap.Elapsed != res.Elapsed {
				t.Fatalf("closed-state snapshot Elapsed = %v, final result has %v", snap.Elapsed, res.Elapsed)
			}
		}
		// And after Close returns, a fresh snapshot agrees with the result.
		snap := s.Snapshot()
		if snap.State != StateClosed || snap.Elapsed != res.Elapsed {
			t.Fatalf("post-close snapshot = {%v %v}, want {closed %v}", snap.State, snap.Elapsed, res.Elapsed)
		}
	}
}

// TestSessionDrainTimeoutWedgedPipeline wedges the pipeline with a
// saturated root — RootWork per-item spin far exceeding the drain budget —
// and asserts the timeout is surfaced instead of expiring silently:
// Close and Err return ErrDrainTimeout and the result is marked
// DrainTimedOut, so a caller can no longer mistake a partial drain for a
// clean one.
func TestSessionDrainTimeoutWedgedPipeline(t *testing.T) {
	cfg := sessionConfig(1.0) // census: every pushed item reaches the root
	cfg.Window = 25 * time.Millisecond
	cfg.RootWork = 15 * time.Millisecond // ~2s of root work for 150 items
	cfg.DrainTimeout = 200 * time.Millisecond
	s, err := OpenLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	items := make([]stream.Item, 150)
	now := time.Now()
	for i := range items {
		items[i] = stream.Item{Ts: now, Value: 1}
	}
	if err := s.Ingest("wedge", items...); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	// Let the edge layers forward into the root topic so the backlog sits
	// where the drain probe watches it.
	time.Sleep(100 * time.Millisecond)
	res, err := s.Close()
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Close error = %v, want ErrDrainTimeout", err)
	}
	if !errors.Is(s.Err(), ErrDrainTimeout) {
		t.Fatalf("Err() = %v, want ErrDrainTimeout", s.Err())
	}
	if !res.DrainTimedOut {
		t.Fatal("LiveResult.DrainTimedOut = false after a timed-out drain")
	}
}

// TestSessionDrainTimeoutCleanRun is the negative control: a healthy
// pipeline drains within the budget and reports nothing.
func TestSessionDrainTimeoutCleanRun(t *testing.T) {
	cfg := sessionConfig(0.5)
	cfg.DrainTimeout = 30 * time.Second
	s, err := OpenLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	pushGenerated(t, s, 5, 2000)
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.DrainTimedOut {
		t.Fatal("clean run marked DrainTimedOut")
	}
}

// TestSnapshotHealthFields covers the health-probe fields the ops surface
// reads: configuration echoes, ingest lag, and activity instants.
func TestSnapshotHealthFields(t *testing.T) {
	cfg := sessionConfig(0.5)
	s, err := OpenLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	snap := s.Snapshot()
	if snap.Window != cfg.Window {
		t.Errorf("Window = %v, want %v", snap.Window, cfg.Window)
	}
	if snap.MaxIngestLag != defaultMaxIngestLag {
		t.Errorf("MaxIngestLag = %d, want default %d", snap.MaxIngestLag, defaultMaxIngestLag)
	}
	if snap.EventTime || snap.Adaptive {
		t.Errorf("EventTime/Adaptive = %v/%v on a plain processing-time run", snap.EventTime, snap.Adaptive)
	}
	if snap.Start.IsZero() || snap.LastActivity.IsZero() {
		t.Error("Start/LastActivity zero on an open session")
	}
	pushGenerated(t, s, 9, 3000)
	if got := s.Snapshot().IngestLag; got < 0 {
		t.Errorf("IngestLag = %d, want ≥ 0", got)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.Snapshot().IngestLag; got != 0 {
		t.Errorf("IngestLag = %d after close, want 0", got)
	}
}
