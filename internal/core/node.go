package core

import (
	"time"

	"sync/atomic"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/sample"
	"github.com/approxiot/approxiot/internal/stream"
)

// Node executes Algorithm 2 on one computing node of the logical tree. Per
// time interval it accumulates the Ψ store — (W^in, items) pairs, one per
// weight lineage of each sub-stream — and on CloseInterval derives the
// sample size from its cost function, runs its sampler (WHS for ApproxIoT,
// coin-flip for the SRS baseline, passthrough for native execution), and
// hands the weighted sample batches to the caller for forwarding upstream.
//
// The node keeps the latest W^in per sub-stream across intervals, so items
// that arrive in a later interval than their weight (the Fig. 3 case) are
// processed with the carried, up-to-date weight.
//
// Node is not safe for concurrent *mutation*; runners own each node from a
// single goroutine (live mode) or the event loop (simulated mode). The
// lifetime counters behind Stats are atomic, so telemetry readers (the live
// session's Snapshot) may call Stats at any time while the owner ingests.
type Node struct {
	id      string
	sampler sample.Sampler
	cost    CostFunction

	weights  stream.WeightMap
	psi      []stream.Batch
	lineage  map[lineageKey]int // (source, weight) → index into psi
	observed int

	totalObserved atomic.Int64
	totalEmitted  atomic.Int64
	intervals     atomic.Int64
}

type lineageKey struct {
	src stream.SourceID
	w   float64
}

// NewNode returns a node with the given sampling strategy and budget.
func NewNode(id string, sampler sample.Sampler, cost CostFunction) *Node {
	return &Node{
		id:      id,
		sampler: sampler,
		cost:    cost,
		weights: make(stream.WeightMap),
		lineage: make(map[lineageKey]int),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() string { return n.id }

// IngestBatch receives a weighted batch from a downstream node: the weight
// map is updated (line 4's Ψ bookkeeping) and the pair joins the current
// interval, merging with an existing pair of the same lineage.
func (n *Node) IngestBatch(b stream.Batch) {
	if len(b.Items) == 0 {
		return
	}
	n.weights.Set(b.Source, b.Weight)
	n.addPair(b.Source, b.Weight, b.Items)
}

// IngestItems receives raw items (from sources, or items whose weight
// arrived in an earlier interval): each sub-stream's pair uses the last
// known weight, defaulting to 1 at the original source (§III-C).
func (n *Node) IngestItems(items []stream.Item) {
	for start := 0; start < len(items); {
		end := start + 1
		src := items[start].Source
		for end < len(items) && items[end].Source == src {
			end++
		}
		n.addPair(src, n.weights.Get(src), items[start:end])
		start = end
	}
}

func (n *Node) addPair(src stream.SourceID, w float64, items []stream.Item) {
	key := lineageKey{src: src, w: w}
	if idx, ok := n.lineage[key]; ok {
		n.psi[idx].Items = append(n.psi[idx].Items, items...)
	} else {
		n.lineage[key] = len(n.psi)
		batch := stream.Batch{Source: src, Weight: w}
		batch.Items = append(batch.Items, items...) // own the storage
		n.psi = append(n.psi, batch)
	}
	n.observed += len(items)
	n.totalObserved.Add(int64(len(items)))
}

// Observed returns the number of items received in the current interval.
func (n *Node) Observed() int { return n.observed }

// LastWeight returns the carried W^in for a sub-stream (1 if never seen).
func (n *Node) LastWeight(src stream.SourceID) float64 { return n.weights.Get(src) }

// CloseInterval ends the current interval: the sampler reduces Ψ under the
// cost function's budget and the node resets for the next interval. The
// returned batches carry W^out and are ready to forward to the parent (or,
// at the root, to append to Θ).
func (n *Node) CloseInterval() []stream.Batch {
	n.intervals.Add(1)
	if len(n.psi) == 0 {
		return nil
	}
	budget := n.cost.SampleSize(n.observed)
	if wc, ok := n.cost.(WeightedCostFunction); ok {
		var est float64
		for _, p := range n.psi {
			est += p.Weight * float64(len(p.Items))
		}
		budget = wc.SampleSizeWeighted(est)
	}
	out := n.sampler.SampleInterval(n.psi, budget)
	var emitted int64
	for _, b := range out {
		emitted += int64(len(b.Items))
	}
	n.totalEmitted.Add(emitted)
	n.psi = nil
	n.lineage = make(map[lineageKey]int)
	n.observed = 0
	return out
}

// Stats reports lifetime counters for instrumentation. Safe to call from
// any goroutine while the owner keeps ingesting: each counter is read
// atomically (the triple is not one consistent cut, which telemetry does
// not need).
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Observed:  n.totalObserved.Load(),
		Emitted:   n.totalEmitted.Load(),
		Intervals: n.intervals.Load(),
	}
}

// NodeStats are lifetime counters of one node.
type NodeStats struct {
	// Observed counts every item the node received.
	Observed int64
	// Emitted counts every item the node forwarded after sampling.
	Emitted int64
	// Intervals counts CloseInterval calls.
	Intervals int64
}

// WindowResult is what the root writes per window: the approximate answers
// with error bounds, plus bookkeeping the benchmarks consume.
type WindowResult struct {
	// At is the window-close instant (wall clock live, virtual time in
	// simulation).
	At time.Time
	// Start and End delimit the event-time tumbling window this result
	// covers. They are set only in event-time mode (EventTime configs);
	// processing-time windows, which are defined by the close ticker
	// rather than by record timestamps, leave both zero.
	Start, End time.Time
	// Results holds one entry per registered query kind, in order.
	Results []query.Result
	// SampleSize is the number of items aggregated (ζ over all strata).
	SampleSize int64
	// EstimatedInput is Σ ĉ — the estimated number of original items.
	EstimatedInput float64
	// Sliding holds sliding-window estimates composed from the last
	// Config.Slide tumbling panes (pane composition, [10][11] in PAPER.md).
	// Populated only when sliding is enabled; one entry per additive query
	// kind (SUM/COUNT), in registration order.
	Sliding []SlidingResult
}

// Result returns the window's answer for one query kind (zero Result if the
// kind was not registered).
func (w WindowResult) Result(kind query.Kind) query.Result {
	for _, r := range w.Results {
		if r.Kind == kind {
			return r
		}
	}
	return query.Result{}
}

// SlidingResult returns the window's sliding estimate for one query kind
// (zero result and false if sliding is off or the kind does not slide).
func (w WindowResult) SlidingResult(kind query.Kind) (SlidingResult, bool) {
	for _, s := range w.Sliding {
		if s.Kind == kind {
			return s, true
		}
	}
	return SlidingResult{}, false
}

// Root is the datacenter node: it samples its input once more (the root
// runs the same sampling module, §IV-B), accumulates Θ, and at each window
// close executes the registered queries and estimates their error bounds.
type Root struct {
	node   *Node
	engine *query.Engine
	kinds  []query.Kind
}

// NewRoot returns a root node evaluating the given query kinds per window.
func NewRoot(id string, sampler sample.Sampler, cost CostFunction, engine *query.Engine, kinds ...query.Kind) *Root {
	if len(kinds) == 0 {
		kinds = []query.Kind{query.Sum}
	}
	return &Root{node: NewNode(id, sampler, cost), engine: engine, kinds: kinds}
}

// Node exposes the embedded sampling node (ingest endpoints, stats).
func (r *Root) Node() *Node { return r.node }

// IngestBatch forwards to the underlying node.
func (r *Root) IngestBatch(b stream.Batch) { r.node.IngestBatch(b) }

// IngestItems forwards to the underlying node.
func (r *Root) IngestItems(items []stream.Item) { r.node.IngestItems(items) }

// CloseWindow ends the window: the root samples Ψ into Θ (line 16), runs
// the query job over Θ (line 22), and returns result ± error (line 25)
// together with the window's sampled items for latency accounting.
func (r *Root) CloseWindow(at time.Time) (WindowResult, []stream.Batch) {
	theta := r.node.CloseInterval()
	return NewWindowResult(at, r.engine, r.kinds, theta), theta
}

// NewWindowResult runs the registered queries over a window's Θ and packages
// the answers. The live runner uses it to merge sharded root stages: each
// shard's CloseInterval batches carry Eq. 8 weights, so concatenating shard
// outputs into one Θ yields exactly the estimates a single root would have
// produced over the union.
func NewWindowResult(at time.Time, engine *query.Engine, kinds []query.Kind, theta []stream.Batch) WindowResult {
	res := WindowResult{At: at, Results: engine.RunAll(kinds, theta)}
	if len(res.Results) > 0 {
		res.SampleSize = res.Results[0].SampleSize
		res.EstimatedInput = res.Results[0].EstimatedInput
	}
	return res
}
