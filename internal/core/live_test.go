package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/streams"
	"github.com/approxiot/approxiot/internal/topology"
)

func liveConfig(items int64, fraction float64) LiveConfig {
	return LiveConfig{
		Spec:       topology.Testbed(),
		Source:     microSource(11, 1000),
		NewSampler: WHSFactory(),
		Cost:       EffectiveFractionBudget{Fraction: fraction},
		Items:      items,
		Window:     30 * time.Millisecond,
		Queries:    []query.Kind{query.Sum, query.Count},
		Seed:       3,
	}
}

func TestLiveValidatesConfig(t *testing.T) {
	cfg := liveConfig(100, 0.5)
	cfg.Items = 0
	if _, err := RunLive(cfg); !errors.Is(err, ErrNoItems) {
		t.Fatalf("err = %v, want ErrNoItems", err)
	}
	cfg = liveConfig(100, 0.5)
	cfg.Source = nil
	if _, err := RunLive(cfg); !errors.Is(err, ErrNoSourceFunc) {
		t.Fatalf("err = %v, want ErrNoSourceFunc", err)
	}
}

func TestLivePipelineCountInvariant(t *testing.T) {
	res, err := RunLive(liveConfig(16000, 0.25))
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.Produced != 16000 {
		t.Fatalf("produced %d items, want 16000", res.Produced)
	}
	// Eq. 8 composed across the live pipeline: estimated input == produced.
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("estimated count %.1f vs produced %d (rel %.2e)", res.EstimateCount, res.Produced, rel)
	}
	// Sampling really happened: root saw roughly a quarter of the stream.
	ratio := float64(res.RootProcessed) / float64(res.Produced)
	if ratio < 0.15 || ratio > 0.4 {
		t.Fatalf("root processed ratio = %.2f, want ~0.25", ratio)
	}
}

func TestLiveSumEstimateNearTruth(t *testing.T) {
	res, err := RunLive(liveConfig(16000, 0.5))
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.TruthSum == 0 {
		t.Fatal("no ground truth accumulated")
	}
	loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum
	if loss > 0.05 {
		t.Fatalf("live accuracy loss = %.3f, want < 5%% at fraction 0.5", loss)
	}
}

func TestLiveNativePassthrough(t *testing.T) {
	cfg := liveConfig(8000, 1)
	cfg.NewSampler = NativeFactory()
	cfg.Cost = FractionBudget{Fraction: 1}
	cfg.Streaming = true
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.RootProcessed != res.Produced {
		t.Fatalf("native root processed %d of %d", res.RootProcessed, res.Produced)
	}
	loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum
	if loss > 1e-9 {
		t.Fatalf("native loss = %g, want exact", loss)
	}
}

func TestLiveSRSStreaming(t *testing.T) {
	cfg := liveConfig(16000, 0.2)
	cfg.NewSampler = SRSFactory(0.2)
	cfg.Streaming = true
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	ratio := float64(res.RootProcessed) / float64(res.Produced)
	if ratio < 0.1 || ratio > 0.35 {
		t.Fatalf("SRS root ratio = %.2f, want ~0.2", ratio)
	}
	loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum
	if loss > 0.2 {
		t.Fatalf("SRS loss = %.3f, implausibly bad on balanced Gaussian", loss)
	}
}

func TestLivePartitionedMatchesSingleShard(t *testing.T) {
	// Partitioned execution must not change what the pipeline estimates:
	// with the same seed, a 4-shard root over 4-partition topics produces
	// the same window-estimate totals as a single root consumer — the count
	// estimate is exactly the produced count in both (Eq. 8 composes across
	// shards because shard outputs merge as weighted batches), and the sum
	// estimate stays near the (identical) ground truth.
	run := func(shards int) *LiveResult {
		cfg := liveConfig(16000, 0.5)
		cfg.Partitions = 4
		cfg.RootShards = shards
		res, err := RunLive(cfg)
		if err != nil {
			t.Fatalf("RunLive(shards=%d): %v", shards, err)
		}
		return res
	}
	single := run(1)
	sharded := run(4)

	if single.Produced != sharded.Produced {
		t.Fatalf("produced %d vs %d, want identical under same seed", single.Produced, sharded.Produced)
	}
	if rel := math.Abs(single.TruthSum-sharded.TruthSum) / math.Abs(single.TruthSum); rel > 1e-9 {
		t.Fatalf("truth diverged between runs: %g vs %g", single.TruthSum, sharded.TruthSum)
	}
	for name, res := range map[string]*LiveResult{"single": single, "sharded": sharded} {
		if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
			t.Fatalf("%s: estimated count %.1f vs produced %d", name, res.EstimateCount, res.Produced)
		}
		if loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum; loss > 0.05 {
			t.Fatalf("%s: accuracy loss %.3f, want < 5%% at fraction 0.5", name, loss)
		}
	}
	// The exact-count invariant makes the two runs' estimate totals equal.
	if rel := math.Abs(single.EstimateCount-sharded.EstimateCount) / single.EstimateCount; rel > 1e-9 {
		t.Fatalf("count estimates diverged: %.1f vs %.1f", single.EstimateCount, sharded.EstimateCount)
	}
}

func TestLiveShardsRequirePartitions(t *testing.T) {
	cfg := liveConfig(100, 0.5)
	cfg.Partitions = 2
	cfg.RootShards = 4
	if _, err := RunLive(cfg); !errors.Is(err, ErrShardsExceedPartitions) {
		t.Fatalf("err = %v, want ErrShardsExceedPartitions", err)
	}
	cfg = liveConfig(100, 0.5)
	cfg.Partitions = 2
	cfg.LayerShards = []int{1, 4}
	if _, err := RunLive(cfg); !errors.Is(err, ErrShardsExceedPartitions) {
		t.Fatalf("layer err = %v, want ErrShardsExceedPartitions", err)
	}
	cfg = liveConfig(100, 0.5)
	cfg.Partitions = 4
	cfg.LayerShards = []int{1, 1, 2} // testbed has 2 edge layers; index 2 is the root
	if _, err := RunLive(cfg); !errors.Is(err, ErrLayerShardsRoot) {
		t.Fatalf("root-entry err = %v, want ErrLayerShardsRoot", err)
	}
}

func TestLiveProducedMatchesItemsWithRemainder(t *testing.T) {
	// 16001 does not divide across the testbed's 8 sources; the remainder
	// must be produced, not silently dropped (the old per-source integer
	// division lost Items % Sources items every uneven run).
	res, err := RunLive(liveConfig(16001, 0.25))
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.Produced != 16001 {
		t.Fatalf("produced %d items, want exactly 16001", res.Produced)
	}
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("estimated count %.1f vs produced %d (rel %.2e)", res.EstimateCount, res.Produced, rel)
	}
}

func TestLiveLayerShardedMatchesSingleShard(t *testing.T) {
	// Sharding every edge layer must not change what the pipeline
	// estimates: each group member samples the partitions it owns and
	// forwards weighted batches, so the count estimate composes exactly at
	// any {LayerShards, RootShards} combination (no merge barrier needed).
	run := func(layerShards []int, rootShards int) *LiveResult {
		cfg := liveConfig(16000, 0.5)
		cfg.Partitions = 4
		cfg.RootShards = rootShards
		cfg.LayerShards = layerShards
		res, err := RunLive(cfg)
		if err != nil {
			t.Fatalf("RunLive(layers=%v, root=%d): %v", layerShards, rootShards, err)
		}
		return res
	}
	single := run(nil, 1)
	sharded := run([]int{4, 2}, 4) // every interior layer scaled out

	if single.Produced != sharded.Produced {
		t.Fatalf("produced %d vs %d, want identical under same seed", single.Produced, sharded.Produced)
	}
	for name, res := range map[string]*LiveResult{"single": single, "layer-sharded": sharded} {
		if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
			t.Fatalf("%s: estimated count %.1f vs produced %d", name, res.EstimateCount, res.Produced)
		}
		if loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum; loss > 0.05 {
			t.Fatalf("%s: accuracy loss %.3f, want < 5%% at fraction 0.5", name, loss)
		}
		if res.DecodeErrors != 0 {
			t.Fatalf("%s: %d decode errors on a clean run", name, res.DecodeErrors)
		}
	}
	if rel := math.Abs(single.EstimateCount-sharded.EstimateCount) / single.EstimateCount; rel > 1e-9 {
		t.Fatalf("count estimates diverged: %.1f vs %.1f", single.EstimateCount, sharded.EstimateCount)
	}
}

func TestLiveLayerShardedNativeExact(t *testing.T) {
	// Native passthrough with every layer sharded: each produced item
	// traverses every consumer group exactly once — no loss, no
	// duplication — and the estimate stays exact.
	cfg := liveConfig(8000, 1)
	cfg.NewSampler = NativeFactory()
	cfg.Cost = FractionBudget{Fraction: 1}
	cfg.Streaming = true
	cfg.Partitions = 4
	cfg.LayerShards = []int{3, 2} // deliberately not dividing 4 evenly
	cfg.RootShards = 3
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.RootProcessed != res.Produced {
		t.Fatalf("layer-sharded native root processed %d of %d", res.RootProcessed, res.Produced)
	}
	loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum
	if loss > 1e-9 {
		t.Fatalf("layer-sharded native loss = %g, want exact", loss)
	}
}

func TestLiveDecodeErrorsCounted(t *testing.T) {
	// Corrupt records must be counted and skipped, not silently swallowed
	// (the old root loop `continue`d past them) and not allowed to kill
	// the pipeline.
	cfg := liveConfig(8000, 0.5)
	cfg.Partitions = 2
	cfg.RootShards = 2
	cfg.corruptRoot = 3
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.DecodeErrors != 3 {
		t.Fatalf("DecodeErrors = %d, want 3", res.DecodeErrors)
	}
	// The healthy records still flow: the count invariant is untouched.
	if res.Produced != 8000 {
		t.Fatalf("produced %d, want 8000", res.Produced)
	}
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("estimated count %.1f vs produced %d after corrupt records", res.EstimateCount, res.Produced)
	}
}

func TestSamplingProcessorCountsDecodeErrors(t *testing.T) {
	// The edge layers run the same policy as the root: a record that fails
	// to decode increments the shared counter and is skipped without
	// failing the member's runtime.
	var errs atomic.Int64
	p := &samplingProcessor{
		node:       NewNode("edge-test", WHSFactory()(0, 0, 1), EffectiveFractionBudget{Fraction: 0.5}),
		window:     time.Second,
		decodeErrs: &errs,
	}
	if err := p.Process(streams.Message{Value: []byte{0xFF, 0xBA, 0xD0}}); err != nil {
		t.Fatalf("corrupt record errored the processor: %v", err)
	}
	if errs.Load() != 1 {
		t.Fatalf("decode errors = %d, want 1", errs.Load())
	}
	if p.node.Observed() != 0 {
		t.Fatalf("corrupt record ingested %d items", p.node.Observed())
	}
}

func TestLivePartitionedNativeExact(t *testing.T) {
	// Native passthrough over a partitioned pipeline: every produced item
	// reaches some shard exactly once (no loss, no duplication across the
	// consumer group) and the merged estimate is exact.
	cfg := liveConfig(8000, 1)
	cfg.NewSampler = NativeFactory()
	cfg.Cost = FractionBudget{Fraction: 1}
	cfg.Streaming = true
	cfg.Partitions = 4
	cfg.RootShards = 3 // deliberately not dividing 4 evenly
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.RootProcessed != res.Produced {
		t.Fatalf("sharded native root processed %d of %d", res.RootProcessed, res.Produced)
	}
	loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum
	if loss > 1e-9 {
		t.Fatalf("sharded native loss = %g, want exact", loss)
	}
}

// BenchmarkLiveRootShards measures end-to-end live throughput as the root
// consumer group scales: multi-partition topics with a sharded root must
// sustain at least single-partition throughput (and scale with cores when
// RootWork dominates, since shards spin in parallel).
func BenchmarkLiveRootShards(b *testing.B) {
	items := int64(24000)
	if v := os.Getenv("APPROXIOT_BENCH_ITEMS"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			items = n
		}
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var throughput float64
			for i := 0; i < b.N; i++ {
				cfg := liveConfig(items, 0.25)
				cfg.RootWork = 5 * time.Microsecond
				cfg.Partitions = shards
				cfg.RootShards = shards
				res, err := RunLive(cfg)
				if err != nil {
					b.Fatal(err)
				}
				throughput += res.Throughput
			}
			b.ReportMetric(throughput/float64(b.N), "items/s")
		})
	}
}

func TestLiveThroughputImprovesWithSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock throughput comparison")
	}
	run := func(fraction float64) float64 {
		cfg := liveConfig(30000, fraction)
		cfg.RootWork = 20 * time.Microsecond // saturate the datacenter
		res, err := RunLive(cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		return res.Throughput
	}
	sampled := run(0.1)
	native := func() float64 {
		cfg := liveConfig(30000, 1)
		cfg.NewSampler = NativeFactory()
		cfg.Cost = FractionBudget{Fraction: 1}
		cfg.Streaming = true
		cfg.RootWork = 20 * time.Microsecond
		res, err := RunLive(cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		return res.Throughput
	}()
	if sampled < 1.5*native {
		t.Fatalf("10%% sampling throughput %.0f not well above native %.0f", sampled, native)
	}
}
