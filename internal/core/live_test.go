package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/topology"
)

func liveConfig(items int64, fraction float64) LiveConfig {
	return LiveConfig{
		Spec:       topology.Testbed(),
		Source:     microSource(11, 1000),
		NewSampler: WHSFactory(),
		Cost:       EffectiveFractionBudget{Fraction: fraction},
		Items:      items,
		Window:     30 * time.Millisecond,
		Queries:    []query.Kind{query.Sum, query.Count},
		Seed:       3,
	}
}

func TestLiveValidatesConfig(t *testing.T) {
	cfg := liveConfig(100, 0.5)
	cfg.Items = 0
	if _, err := RunLive(cfg); !errors.Is(err, ErrNoItems) {
		t.Fatalf("err = %v, want ErrNoItems", err)
	}
	cfg = liveConfig(100, 0.5)
	cfg.Source = nil
	if _, err := RunLive(cfg); !errors.Is(err, ErrNoSourceFunc) {
		t.Fatalf("err = %v, want ErrNoSourceFunc", err)
	}
}

func TestLivePipelineCountInvariant(t *testing.T) {
	res, err := RunLive(liveConfig(16000, 0.25))
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.Produced != 16000 {
		t.Fatalf("produced %d items, want 16000", res.Produced)
	}
	// Eq. 8 composed across the live pipeline: estimated input == produced.
	if rel := math.Abs(res.EstimateCount-float64(res.Produced)) / float64(res.Produced); rel > 1e-9 {
		t.Fatalf("estimated count %.1f vs produced %d (rel %.2e)", res.EstimateCount, res.Produced, rel)
	}
	// Sampling really happened: root saw roughly a quarter of the stream.
	ratio := float64(res.RootProcessed) / float64(res.Produced)
	if ratio < 0.15 || ratio > 0.4 {
		t.Fatalf("root processed ratio = %.2f, want ~0.25", ratio)
	}
}

func TestLiveSumEstimateNearTruth(t *testing.T) {
	res, err := RunLive(liveConfig(16000, 0.5))
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.TruthSum == 0 {
		t.Fatal("no ground truth accumulated")
	}
	loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum
	if loss > 0.05 {
		t.Fatalf("live accuracy loss = %.3f, want < 5%% at fraction 0.5", loss)
	}
}

func TestLiveNativePassthrough(t *testing.T) {
	cfg := liveConfig(8000, 1)
	cfg.NewSampler = NativeFactory()
	cfg.Cost = FractionBudget{Fraction: 1}
	cfg.Streaming = true
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.RootProcessed != res.Produced {
		t.Fatalf("native root processed %d of %d", res.RootProcessed, res.Produced)
	}
	loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum
	if loss > 1e-9 {
		t.Fatalf("native loss = %g, want exact", loss)
	}
}

func TestLiveSRSStreaming(t *testing.T) {
	cfg := liveConfig(16000, 0.2)
	cfg.NewSampler = SRSFactory(0.2)
	cfg.Streaming = true
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	ratio := float64(res.RootProcessed) / float64(res.Produced)
	if ratio < 0.1 || ratio > 0.35 {
		t.Fatalf("SRS root ratio = %.2f, want ~0.2", ratio)
	}
	loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum
	if loss > 0.2 {
		t.Fatalf("SRS loss = %.3f, implausibly bad on balanced Gaussian", loss)
	}
}

func TestLiveThroughputImprovesWithSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock throughput comparison")
	}
	run := func(fraction float64) float64 {
		cfg := liveConfig(30000, fraction)
		cfg.RootWork = 20 * time.Microsecond // saturate the datacenter
		res, err := RunLive(cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		return res.Throughput
	}
	sampled := run(0.1)
	native := func() float64 {
		cfg := liveConfig(30000, 1)
		cfg.NewSampler = NativeFactory()
		cfg.Cost = FractionBudget{Fraction: 1}
		cfg.Streaming = true
		cfg.RootWork = 20 * time.Microsecond
		res, err := RunLive(cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		return res.Throughput
	}()
	if sampled < 1.5*native {
		t.Fatalf("10%% sampling throughput %.0f not well above native %.0f", sampled, native)
	}
}
