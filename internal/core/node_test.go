package core

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/sample"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

var epoch = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)

func mkItems(src stream.SourceID, vals ...float64) []stream.Item {
	out := make([]stream.Item, len(vals))
	for i, v := range vals {
		out[i] = stream.Item{Source: src, Value: v, Ts: epoch.Add(time.Duration(i) * time.Millisecond)}
	}
	return out
}

func estCount(batches []stream.Batch) float64 {
	var c float64
	for _, b := range batches {
		c += b.Weight * float64(len(b.Items))
	}
	return c
}

func whsNode(id string, budget int) *Node {
	return NewNode(id, sample.NewWHS(xrand.New(42)), FixedBudget{Size: budget})
}

func TestNodeBasicIntervalInvariant(t *testing.T) {
	n := whsNode("n", 5)
	n.IngestItems(mkItems("a", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	out := n.CloseInterval()
	if got := estCount(out); math.Abs(got-10) > 1e-9 {
		t.Fatalf("estimated count = %g, want 10", got)
	}
	kept := 0
	for _, b := range out {
		kept += len(b.Items)
	}
	if kept != 5 {
		t.Fatalf("kept %d items on budget 5", kept)
	}
}

func TestNodeResetsBetweenIntervals(t *testing.T) {
	n := whsNode("n", 100)
	n.IngestItems(mkItems("a", 1, 2, 3))
	n.CloseInterval()
	if n.Observed() != 0 {
		t.Fatalf("Observed = %d after close, want 0", n.Observed())
	}
	n.IngestItems(mkItems("a", 4))
	out := n.CloseInterval()
	if len(out) != 1 || len(out[0].Items) != 1 {
		t.Fatalf("second interval leaked state: %+v", out)
	}
}

func TestNodeEmptyIntervalYieldsNothing(t *testing.T) {
	n := whsNode("n", 10)
	if out := n.CloseInterval(); out != nil {
		t.Fatalf("empty interval produced %v", out)
	}
}

func TestNodeWeightCarryAcrossIntervals(t *testing.T) {
	// The Fig. 3 rule: items arriving in a later interval than their weight
	// use the sub-stream's last known weight.
	n := whsNode("n", 100)
	n.IngestBatch(stream.Batch{Source: "s", Weight: 1.5, Items: mkItems("s", 5, 2)})
	n.CloseInterval()

	n.IngestItems(mkItems("s", 3, 4)) // weightless arrival
	out := n.CloseInterval()
	if len(out) != 1 {
		t.Fatalf("got %d batches, want 1", len(out))
	}
	if out[0].Weight != 1.5 {
		t.Fatalf("carried weight = %g, want 1.5 (last known W_in)", out[0].Weight)
	}
}

func TestNodeMergesSameLineage(t *testing.T) {
	n := whsNode("n", 100)
	n.IngestBatch(stream.Batch{Source: "s", Weight: 2, Items: mkItems("s", 1)})
	n.IngestBatch(stream.Batch{Source: "s", Weight: 2, Items: mkItems("s", 2)})
	out := n.CloseInterval()
	if len(out) != 1 {
		t.Fatalf("same-lineage pairs not merged: %d batches", len(out))
	}
	if len(out[0].Items) != 2 {
		t.Fatalf("merged pair has %d items, want 2", len(out[0].Items))
	}
}

func TestNodeKeepsDistinctLineages(t *testing.T) {
	n := whsNode("n", 100)
	n.IngestBatch(stream.Batch{Source: "s", Weight: 2, Items: mkItems("s", 1)})
	n.IngestBatch(stream.Batch{Source: "s", Weight: 4, Items: mkItems("s", 2)})
	out := n.CloseInterval()
	if len(out) != 2 {
		t.Fatalf("distinct weights merged: %d batches, want 2", len(out))
	}
	if got := estCount(out); math.Abs(got-6) > 1e-9 {
		t.Fatalf("estimated count = %g, want 2+4=6", got)
	}
}

func TestNodeIngestEmptyBatchIgnored(t *testing.T) {
	n := whsNode("n", 10)
	n.IngestBatch(stream.Batch{Source: "s", Weight: 3})
	if n.Observed() != 0 {
		t.Fatal("empty batch counted as observed")
	}
}

func TestNodeStats(t *testing.T) {
	n := whsNode("n", 2)
	n.IngestItems(mkItems("a", 1, 2, 3, 4))
	n.CloseInterval()
	n.IngestItems(mkItems("a", 5))
	n.CloseInterval()
	s := n.Stats()
	if s.Observed != 5 {
		t.Fatalf("Observed = %d, want 5", s.Observed)
	}
	if s.Emitted != 3 { // 2 (budget) + 1
		t.Fatalf("Emitted = %d, want 3", s.Emitted)
	}
	if s.Intervals != 2 {
		t.Fatalf("Intervals = %d, want 2", s.Intervals)
	}
}

// TestPaperFigure3EndToEnd replays the worked example of Fig. 3 across a
// three-node chain A → B → C and checks every number the paper states.
func TestPaperFigure3EndToEnd(t *testing.T) {
	// Node A: reservoir size 4; 6 items arrive in one interval (values
	// 1..6, "the index of the item is its value").
	nodeA := whsNode("A", 4)
	nodeA.IngestItems(mkItems("s", 1, 2, 3, 4, 5, 6))
	outA := nodeA.CloseInterval()
	if len(outA) != 1 {
		t.Fatalf("A emitted %d batches, want 1", len(outA))
	}
	if got := outA[0].Weight; got != 1.5 {
		t.Fatalf("A's weight = %g, want 6/4 = 1.5", got)
	}
	if len(outA[0].Items) != 4 {
		t.Fatalf("A sampled %d items, want 4", len(outA[0].Items))
	}

	// Node B: reservoir size 1. A's four samples arrive split across two
	// intervals of two items each; the second pair arrives weightless
	// (the weight came with interval v).
	nodeB := whsNode("B", 1)
	nodeB.IngestBatch(stream.Batch{Source: "s", Weight: 1.5, Items: outA[0].Items[:2]})
	outV := nodeB.CloseInterval()
	if len(outV) != 1 || outV[0].Weight != 3 {
		t.Fatalf("B interval v: weight = %v, want 1.5×2 = 3", outV)
	}
	if len(outV[0].Items) != 1 {
		t.Fatalf("B kept %d items, want 1", len(outV[0].Items))
	}

	nodeB.IngestItems(outA[0].Items[2:4]) // weight carried from interval v
	outV1 := nodeB.CloseInterval()
	if len(outV1) != 1 || outV1[0].Weight != 3 {
		t.Fatalf("B interval v+1: weight = %v, want carried 1.5×2 = 3", outV1)
	}

	// Root C: Θ gets both (3, {item}) pairs; the estimated count must be
	// exactly the 6 original items (Eq. 8), whatever was sampled.
	engine := query.NewEngine()
	root := NewRoot("C", sample.NewWHS(xrand.New(7)), FixedBudget{Size: 100}, engine, query.Sum, query.Count)
	root.IngestBatch(outV[0])
	root.IngestBatch(outV1[0])
	win, theta := root.CloseWindow(epoch.Add(time.Second))
	if got := win.Result(query.Count).Estimate.Value; math.Abs(got-6) > 1e-9 {
		t.Fatalf("estimated count at root = %g, want exactly 6 (Eq. 8)", got)
	}
	// The paper draws Θ as two (3, {item}) pairs; the root merges pairs of
	// identical lineage (same source, same weight), which is statistically
	// equivalent — both sampled items must survive with weight 3.
	thetaItems := 0
	for _, b := range theta {
		thetaItems += len(b.Items)
		if b.Weight != 3 {
			t.Fatalf("Θ pair weight = %g, want 3", b.Weight)
		}
	}
	if thetaItems != 2 {
		t.Fatalf("Θ holds %d items, want 2", thetaItems)
	}
	// The estimated sum is 3·x + 3·y for the two surviving items — e.g.
	// the paper's draw keeps items 5 and 3 giving 24. Bound the range.
	sum := win.Result(query.Sum).Estimate.Value
	if sum < 3*(1+1) || sum > 3*(6+6) {
		t.Fatalf("estimated sum %g outside feasible range [6, 36]", sum)
	}
}

func TestRootDefaultsToSumQuery(t *testing.T) {
	root := NewRoot("r", sample.NewWHS(xrand.New(1)), FixedBudget{Size: 10}, query.NewEngine())
	root.IngestItems(mkItems("a", 2, 4))
	win, _ := root.CloseWindow(epoch)
	if len(win.Results) != 1 || win.Results[0].Kind != query.Sum {
		t.Fatalf("default queries = %v, want [SUM]", win.Results)
	}
	if win.Result(query.Mean).Kind != 0 {
		t.Fatal("unregistered kind should return zero Result")
	}
}

func TestRootWindowBookkeeping(t *testing.T) {
	root := NewRoot("r", sample.NewWHS(xrand.New(1)), FixedBudget{Size: 100}, query.NewEngine(), query.Sum)
	root.IngestBatch(stream.Batch{Source: "a", Weight: 2, Items: mkItems("a", 1, 2, 3)})
	win, _ := root.CloseWindow(epoch.Add(time.Second))
	if win.SampleSize != 3 {
		t.Fatalf("SampleSize = %d, want 3", win.SampleSize)
	}
	if math.Abs(win.EstimatedInput-6) > 1e-9 {
		t.Fatalf("EstimatedInput = %g, want 6", win.EstimatedInput)
	}
	if !win.At.Equal(epoch.Add(time.Second)) {
		t.Fatalf("At = %v", win.At)
	}
}

func TestNodeWithEffectiveFractionBudget(t *testing.T) {
	// A second-layer node receiving an already-thinned stream (weight 10)
	// should pass it through: budget = f × (W·c) = 0.1 × (10·100) = 100 ≥
	// the 100 received items.
	n := NewNode("l2", sample.NewWHS(xrand.New(3)), EffectiveFractionBudget{Fraction: 0.1})
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 1
	}
	n.IngestBatch(stream.Batch{Source: "s", Weight: 10, Items: mkItems("s", vals...)})
	out := n.CloseInterval()
	if len(out) != 1 {
		t.Fatalf("got %d batches", len(out))
	}
	if len(out[0].Items) != 100 {
		t.Fatalf("second layer resampled to %d items; budget should cover all 100", len(out[0].Items))
	}
	if out[0].Weight != 10 {
		t.Fatalf("weight changed to %g, want 10", out[0].Weight)
	}
}

func TestNodeFirstLayerEffectiveFraction(t *testing.T) {
	// A first-layer node (weights 1) keeps the configured fraction.
	n := NewNode("l1", sample.NewWHS(xrand.New(3)), EffectiveFractionBudget{Fraction: 0.1})
	vals := make([]float64, 1000)
	n.IngestItems(mkItems("s", vals...))
	out := n.CloseInterval()
	kept := 0
	for _, b := range out {
		kept += len(b.Items)
	}
	if kept != 100 {
		t.Fatalf("kept %d, want 100 (10%% of 1000)", kept)
	}
}
