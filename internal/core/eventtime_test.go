package core

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
	"github.com/approxiot/approxiot/internal/xrand"
)

// simEpoch mirrors the virtual-time origin RunSim pins its clock to; the
// cross-mode tests stamp event timestamps off it so the two modes see the
// same absolute window boundaries.
var simEpoch = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)

func TestWindowFloor(t *testing.T) {
	w := time.Second
	cases := []struct{ ts, want int64 }{
		{0, 0},
		{1, 0},
		{int64(time.Second) - 1, 0},
		{int64(time.Second), int64(time.Second)},
		{int64(time.Second) + 5, int64(time.Second)},
		{-1, -int64(time.Second)},
		{-int64(time.Second), -int64(time.Second)},
	}
	for _, c := range cases {
		if got := windowFloor(c.ts, w); got != c.want {
			t.Fatalf("windowFloor(%d) = %d, want %d", c.ts, got, c.want)
		}
	}
}

func TestEventWindowsAssignAdvanceLate(t *testing.T) {
	var late lateCounter
	ew := newEventWindows(time.Second, 500*time.Millisecond, &late, func() *Node {
		return NewNode("n", WHSFactory()(0, 0, 1), FractionBudget{Fraction: 1})
	})
	at := func(d time.Duration) time.Time { return simEpoch.Add(d) }
	mk := func(src stream.SourceID, ds ...time.Duration) stream.Batch {
		items := make([]stream.Item, len(ds))
		for i, d := range ds {
			items[i] = stream.Item{Source: src, Value: 1, Ts: at(d)}
		}
		return stream.Batch{Source: src, Weight: 1, Items: items}
	}

	// Items across three windows, delivered out of order.
	ew.ingest(mk("a", 2500*time.Millisecond, 100*time.Millisecond, 1100*time.Millisecond, 200*time.Millisecond))
	if got := ew.buffered(); got != 4 {
		t.Fatalf("buffered %d, want 4", got)
	}

	// Watermark at 2.4s: window [0,1s) needs wm ≥ 1s+0.5s — closes; window
	// [1s,2s) needs wm ≥ 2.5s — stays open.
	closed := ew.advance(at(2400 * time.Millisecond))
	if len(closed) != 1 || closed[0].start != simEpoch.UnixNano() {
		t.Fatalf("closed %v, want exactly window 0", closed)
	}
	var n int
	for _, b := range closed[0].theta {
		n += len(b.Items)
	}
	if n != 2 {
		t.Fatalf("window 0 closed with %d items, want 2", n)
	}

	// A record for the closed window is late; one inside the horizon lands.
	ew.ingest(mk("a", 300*time.Millisecond))
	if late.items.Load() != 1 {
		t.Fatalf("late = %d, want 1", late.items.Load())
	}
	ew.ingest(mk("a", 1200*time.Millisecond))
	if late.items.Load() != 1 {
		t.Fatalf("in-horizon record counted late")
	}

	// A regressing watermark closes nothing and cannot reopen territory.
	if got := ew.advance(at(1000 * time.Millisecond)); got != nil {
		t.Fatalf("regressing watermark closed %v", got)
	}

	// End of stream flushes the rest in ascending order.
	rest := ew.advance(eosWatermark)
	if len(rest) != 2 || rest[0].start >= rest[1].start {
		t.Fatalf("final sweep %v, want windows 1s and 2s ascending", rest)
	}
	st := ew.stats()
	if st.Observed != 5 || st.Intervals != 3 {
		t.Fatalf("stats %+v, want 5 observed over 3 windows", st)
	}
}

func TestWatermarkTrackerMinAndIdle(t *testing.T) {
	wt := newWatermarkTracker(100 * time.Millisecond)
	wall := time.Unix(1000, 0)
	wmA := simEpoch.Add(3 * time.Second)
	wmB := simEpoch.Add(1 * time.Second)
	wt.update(mq.Watermark{From: "up", At: wmA}, "a", wall)
	wt.update(mq.Watermark{From: "up", At: wmB}, "b", wall)
	if got := wt.watermark(wall); !got.Equal(wmB) {
		t.Fatalf("watermark %v, want min %v", got, wmB)
	}
	// Watermarks are monotone per chain.
	wt.update(mq.Watermark{From: "up", At: simEpoch}, "b", wall)
	if got := wt.watermark(wall); !got.Equal(wmB) {
		t.Fatalf("regressed to %v", got)
	}
	// Two chains carrying the same sub-stream ID are tracked separately:
	// the slower chain holds the minimum.
	wt.update(mq.Watermark{From: "up2", At: simEpoch.Add(500 * time.Millisecond)}, "a", wall)
	if got := wt.watermark(wall); !got.Equal(simEpoch.Add(500 * time.Millisecond)) {
		t.Fatalf("shared-ID chains conflated: watermark %v", got)
	}
	if srcs := wt.activeSources(wall); len(srcs) != 2 {
		t.Fatalf("active sources %v, want distinct {a, b}", srcs)
	}
	// Everything but chain (up, a) goes idle: only it counts.
	wt.update(mq.Watermark{From: "up", At: wmA}, "a", wall.Add(150*time.Millisecond))
	if got := wt.watermark(wall.Add(150 * time.Millisecond)); !got.Equal(wmA) {
		t.Fatalf("idle chain still held watermark at %v", got)
	}
	if srcs := wt.activeSources(wall.Add(150 * time.Millisecond)); len(srcs) != 1 || srcs[0] != "a" {
		t.Fatalf("active sources %v, want [a]", srcs)
	}
	// b resumes and is tracked again.
	wt.update(mq.Watermark{From: "up", At: wmB}, "b", wall.Add(200*time.Millisecond))
	if got := wt.watermark(wall.Add(200 * time.Millisecond)); !got.Equal(wmB) {
		t.Fatalf("resumed chain not back in the min: %v", got)
	}
}

// sliceSource replays a fixed item list as a workload source: Generate
// returns the items whose event timestamp falls in [from, from+dt).
type sliceSource struct{ items []stream.Item }

func (s *sliceSource) Generate(from time.Time, dt time.Duration) []stream.Item {
	var out []stream.Item
	to := from.Add(dt)
	for _, it := range s.items {
		if !it.Ts.Before(from) && it.Ts.Before(to) {
			out = append(out, it)
		}
	}
	return out
}

var _ workload.Source = (*sliceSource)(nil)

// eventItems builds the deterministic cross-mode workload: per slot, one
// sub-stream with items spread over `span`, windows aligned to simEpoch.
func eventItems(slots int, perSlot int, span time.Duration) [][]stream.Item {
	out := make([][]stream.Item, slots)
	step := span / time.Duration(perSlot)
	for s := 0; s < slots; s++ {
		items := make([]stream.Item, perSlot)
		for k := 0; k < perSlot; k++ {
			items[k] = stream.Item{
				Source: stream.SourceID("s" + string(rune('0'+s))),
				Value:  0.5*float64(s+1) + 0.25*float64(k%17),
				Ts:     simEpoch.Add(time.Duration(k)*step + time.Duration(s)*time.Millisecond),
			}
		}
		out[s] = items
	}
	return out
}

// pushEventRun opens an event-time live session on spec and pushes each
// slot's items (already ordered or shuffled by the caller), then closes.
func pushEventRun(t *testing.T, spec topology.TreeSpec, lateness time.Duration, cost CostFunction, perSlot [][]stream.Item) *LiveResult {
	t.Helper()
	s, err := OpenLive(nil, LiveConfig{
		Spec:            spec,
		NewSampler:      WHSFactory(),
		Cost:            cost,
		Window:          10 * time.Millisecond,
		Queries:         []query.Kind{query.Sum, query.Count},
		Seed:            21,
		EventTime:       true,
		AllowedLateness: lateness,
	})
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	for slot, items := range perSlot {
		ing, err := s.Ingester(slot)
		if err != nil {
			t.Fatalf("Ingester(%d): %v", slot, err)
		}
		// Copy: Push re-stamps Pub in place and the caller may reuse items.
		buf := append([]stream.Item(nil), items...)
		if err := ing.Push(buf...); err != nil {
			t.Fatalf("Push slot %d: %v", slot, err)
		}
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	return res
}

// TestCrossModeEventTimeEquivalence is the acceptance suite: the simulated
// and the live runner drive the identical watermark machinery, so the same
// workload — pushed shuffled into the live tree, within AllowedLateness —
// must reproduce sim's per-window boundaries, exact per-window counts, and
// (at census budget, where sampling cannot diverge on arrival order) the
// same estimates. Records beyond the horizon land in LateDropped, never in
// a closed window.
func TestCrossModeEventTimeEquivalence(t *testing.T) {
	spec := topology.Testbed() // 8 sources, 1 s windows
	const slots, perSlot = 8, 40
	span := 4 * time.Second
	items := eventItems(slots, perSlot, span)
	census := EffectiveFractionBudget{Fraction: 1}

	sim, err := RunSim(SimConfig{
		Spec:            spec,
		Source:          func(i int) workload.Source { return &sliceSource{items: items[i]} },
		NewSampler:      WHSFactory(),
		Cost:            census,
		Duration:        span,
		Queries:         []query.Kind{query.Sum, query.Count},
		Seed:            21,
		EventTime:       true,
		AllowedLateness: span, // nothing late, however jittered
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if sim.Generated != slots*perSlot {
		t.Fatalf("sim generated %d, want %d", sim.Generated, slots*perSlot)
	}
	if sim.LateDropped != 0 {
		t.Fatalf("sim dropped %d items with full-span lateness", sim.LateDropped)
	}
	if len(sim.Windows) != 4 {
		t.Fatalf("sim closed %d windows, want 4", len(sim.Windows))
	}

	// Live: the same items, but each slot's stream fully shuffled — every
	// record still inside the lateness horizon.
	rng := xrand.New(77)
	shuffled := make([][]stream.Item, slots)
	for s := range items {
		perm := append([]stream.Item(nil), items[s]...)
		for i := len(perm) - 1; i > 0; i-- {
			j := int(rng.Uint64() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		shuffled[s] = perm
	}
	live := pushEventRun(t, spec, span, census, shuffled)
	if live.Produced != int64(slots*perSlot) {
		t.Fatalf("live produced %d, want %d", live.Produced, slots*perSlot)
	}
	if live.LateDropped != 0 {
		t.Fatalf("live dropped %d items pushed within the horizon", live.LateDropped)
	}
	if len(live.Windows) != len(sim.Windows) {
		t.Fatalf("live closed %d windows, sim %d", len(live.Windows), len(sim.Windows))
	}
	for i, sw := range sim.Windows {
		lw := live.Windows[i]
		if !lw.Start.Equal(sw.Start) || !lw.End.Equal(sw.End) {
			t.Fatalf("window %d bounds live [%v,%v) vs sim [%v,%v)", i, lw.Start, lw.End, sw.Start, sw.End)
		}
		if lw.End.Sub(lw.Start) != spec.Window {
			t.Fatalf("window %d spans %v, want %v", i, lw.End.Sub(lw.Start), spec.Window)
		}
		sc, lc := sw.Result(query.Count).Estimate.Value, lw.Result(query.Count).Estimate.Value
		if sc != lc {
			t.Fatalf("window %d count live %.2f vs sim %.2f", i, lc, sc)
		}
		ss, ls := sw.Result(query.Sum).Estimate.Value, lw.Result(query.Sum).Estimate.Value
		if rel := math.Abs(ls-ss) / math.Abs(ss); rel > 1e-9 {
			t.Fatalf("window %d sum live %.6f vs sim %.6f (rel %.2e)", i, ls, ss, rel)
		}
	}
	var simCount, liveCount float64
	for i := range sim.Windows {
		simCount += sim.Windows[i].EstimatedInput
		liveCount += live.Windows[i].EstimatedInput
	}
	assertCountInvariant(t, "sim event-time", simCount, float64(sim.Generated))
	assertCountInvariant(t, "live event-time", liveCount, float64(live.Produced))
}

// TestEventTimePermutationInvariance is the property form: any permutation
// of a slot's records within the lateness horizon yields identical window
// results — bit-equal counts at any budget (Eq. 8 exactness is
// order-free), and bit-equal estimates at census budget (no sampling
// decision left to depend on order).
func TestEventTimePermutationInvariance(t *testing.T) {
	spec := topology.Testbed()
	const slots, perSlot = 8, 25
	span := 3 * time.Second
	items := eventItems(slots, perSlot, span)

	trials := 3
	if testing.Short() {
		trials = 2
	}
	type winKey struct {
		start int64
		count float64
		sum   float64
	}
	var baseline []winKey
	rng := xrand.New(0xFACE)
	for trial := 0; trial < trials; trial++ {
		perSlotItems := make([][]stream.Item, slots)
		for s := range items {
			perm := append([]stream.Item(nil), items[s]...)
			if trial > 0 { // trial 0 pushes in order: the reference
				for i := len(perm) - 1; i > 0; i-- {
					j := int(rng.Uint64() % uint64(i+1))
					perm[i], perm[j] = perm[j], perm[i]
				}
			}
			perSlotItems[s] = perm
		}
		res := pushEventRun(t, spec, span, EffectiveFractionBudget{Fraction: 1}, perSlotItems)
		if res.LateDropped != 0 {
			t.Fatalf("trial %d: dropped %d in-horizon items", trial, res.LateDropped)
		}
		keys := make([]winKey, len(res.Windows))
		for i, w := range res.Windows {
			keys[i] = winKey{
				start: w.Start.UnixNano(),
				count: w.Result(query.Count).Estimate.Value,
				sum:   w.Result(query.Sum).Estimate.Value,
			}
		}
		if trial == 0 {
			baseline = keys
			continue
		}
		if len(keys) != len(baseline) {
			t.Fatalf("trial %d: %d windows vs baseline %d", trial, len(keys), len(baseline))
		}
		for i := range keys {
			if keys[i].start != baseline[i].start || keys[i].count != baseline[i].count {
				t.Fatalf("trial %d window %d: %+v vs baseline %+v", trial, i, keys[i], baseline[i])
			}
			if rel := math.Abs(keys[i].sum-baseline[i].sum) / math.Abs(baseline[i].sum); rel > 1e-9 {
				t.Fatalf("trial %d window %d sum %.6f vs baseline %.6f", trial, i, keys[i].sum, baseline[i].sum)
			}
		}
	}

	// Sampled variant: the reservoir's choices may depend on order, but the
	// Eq. 8 count estimate must not.
	var counts []float64
	for trial := 0; trial < 2; trial++ {
		perSlotItems := make([][]stream.Item, slots)
		for s := range items {
			perm := append([]stream.Item(nil), items[s]...)
			if trial > 0 {
				for i := len(perm) - 1; i > 0; i-- {
					j := int(rng.Uint64() % uint64(i+1))
					perm[i], perm[j] = perm[j], perm[i]
				}
			}
			perSlotItems[s] = perm
		}
		res := pushEventRun(t, spec, span, EffectiveFractionBudget{Fraction: 0.3}, perSlotItems)
		var total float64
		for _, w := range res.Windows {
			total += w.EstimatedInput
		}
		assertCountInvariant(t, "sampled permutation", total, float64(slots*perSlot))
		counts = append(counts, total)
	}
	if math.Abs(counts[0]-counts[1]) > 1e-9 {
		t.Fatalf("count estimate depends on push order: %v", counts)
	}
}

// TestEventTimeLateDropped pins the late-data contract: records pushed past
// the lateness horizon are counted into LateDropped and the closed window's
// exact count does not change.
func TestEventTimeLateDropped(t *testing.T) {
	spec := topology.Testbed()
	const slots, perSlot = 8, 24
	span := 4 * time.Second
	items := eventItems(slots, perSlot, span)

	s, err := OpenLive(nil, LiveConfig{
		Spec:       spec,
		NewSampler: WHSFactory(),
		Cost:       EffectiveFractionBudget{Fraction: 1},
		Window:     10 * time.Millisecond,
		Queries:    []query.Kind{query.Sum, query.Count},
		Seed:       7,
		EventTime:  true,
		// Zero lateness: a window closes the moment the watermark touches
		// its end.
		AllowedLateness: 0,
		IdleTimeout:     -1, // no idle exclusion: closes are watermark-driven only
	})
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	for slot := range items {
		ing, err := s.Ingester(slot)
		if err != nil {
			t.Fatalf("Ingester: %v", err)
		}
		buf := append([]stream.Item(nil), items[slot]...)
		if err := ing.Push(buf...); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	// Wait until every leaf has processed its slot's stream (watermark at
	// slot max), so window 0 is closed territory at the leaves.
	deadline := time.Now().Add(10 * time.Second)
	for s.Snapshot().RootProcessed < int64(3*slots*perSlot/4) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// Stragglers for window 0, one per slot — all beyond the horizon.
	const lateEach = 1
	for slot := 0; slot < slots; slot++ {
		ing, _ := s.Ingester(slot)
		lateItem := items[slot][0] // window 0
		lateItem.Value = 1e9       // would be unmissable if it leaked into a window
		if err := ing.Push(lateItem); err != nil {
			t.Fatalf("late push: %v", err)
		}
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.LateDropped != int64(slots*lateEach) {
		t.Fatalf("LateDropped = %d, want %d", res.LateDropped, slots*lateEach)
	}
	var estimated float64
	for _, w := range res.Windows {
		estimated += w.EstimatedInput
		if w.Result(query.Sum).Estimate.Value > 1e8 {
			t.Fatalf("late item leaked into window starting %v", w.Start)
		}
	}
	// Every on-time item is in a window; the late ones are not.
	assertCountInvariant(t, "on-time", estimated, float64(slots*perSlot))
	if res.Produced != int64(slots*(perSlot+lateEach)) {
		t.Fatalf("produced %d", res.Produced)
	}
}

// TestEventTimeIdleSourceTimeout exercises the watermark-stall path: one
// silent sub-stream must not hold windows open forever — the wall-clock
// ticker (the retained processing-time ticker, acting as the idle-source
// timeout) excludes it from the watermark minimum and the tree's windows
// close without it.
func TestEventTimeIdleSourceTimeout(t *testing.T) {
	spec := topology.Testbed()
	s, err := OpenLive(nil, LiveConfig{
		Spec:            spec,
		NewSampler:      WHSFactory(),
		Cost:            EffectiveFractionBudget{Fraction: 1},
		Window:          10 * time.Millisecond,
		Queries:         []query.Kind{query.Count},
		Seed:            3,
		EventTime:       true,
		AllowedLateness: 0,
		IdleTimeout:     60 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	wins := s.Windows()

	// The stalling source: one record, then silence.
	ingB, _ := s.Ingester(1)
	if err := ingB.Push(stream.Item{Source: "quiet", Value: 1, Ts: simEpoch.Add(100 * time.Millisecond)}); err != nil {
		t.Fatalf("push quiet: %v", err)
	}
	// The live source keeps pushing, 100 ms of event time per record: its
	// watermark races ahead, so windows become closeable — but only once
	// the quiet source ages out of the minimum. Event time never advances
	// in a fully-idle tree, so the pusher must stay live while we wait.
	ingA, _ := s.Ingester(0)
	stop := make(chan struct{})
	pusherDone := make(chan struct{})
	go func() {
		defer close(pusherDone)
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = ingA.Push(stream.Item{Source: "busy", Value: 1, Ts: simEpoch.Add(time.Duration(k) * 100 * time.Millisecond)})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// A window must stream out while the session is still ingesting —
	// proof the idle timeout, not Close's end-of-stream sweep, unblocked
	// the pipeline.
	select {
	case w, ok := <-wins:
		if !ok {
			t.Fatal("windows channel closed early")
		}
		if !w.Start.Equal(simEpoch) {
			t.Fatalf("first window starts %v, want %v", w.Start, simEpoch)
		}
		// Window 0 holds the quiet source's record plus the busy source's
		// first ten (ts 0–900ms): the idle source's data participates in
		// the windows it reached, it just cannot hold them open.
		if got := w.Result(query.Count).Estimate.Value; got != 11 {
			t.Fatalf("window 0 count %.1f, want 11", got)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no window closed: idle source stalled the watermark")
	}
	close(stop)
	<-pusherDone
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.LateDropped != 0 {
		t.Fatalf("dropped %d items, want 0 (quiet's record was on time)", res.LateDropped)
	}
}

// TestEventTimeSimJitterExactCounts runs the simulated tree with link
// jitter reordering deliveries: per-source watermark ordering plus the
// ingest-before-watermark rule must keep every window's count exact with
// nothing dropped.
func TestEventTimeSimJitterExactCounts(t *testing.T) {
	res, err := RunSim(SimConfig{
		Spec:            topology.Testbed(),
		Source:          microSource(21, 500),
		NewSampler:      WHSFactory(),
		Cost:            EffectiveFractionBudget{Fraction: 0.25},
		Duration:        4 * time.Second,
		Queries:         []query.Kind{query.Sum, query.Count},
		Seed:            21,
		EventTime:       true,
		AllowedLateness: 200 * time.Millisecond,
		LinkJitter:      30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if res.LateDropped != 0 {
		t.Fatalf("jitter within the horizon dropped %d items", res.LateDropped)
	}
	var estimated float64
	last := int64(math.MinInt64)
	for _, w := range res.Windows {
		estimated += w.EstimatedInput
		if w.Start.IsZero() || !w.End.Equal(w.Start.Add(time.Second)) {
			t.Fatalf("window bounds [%v,%v)", w.Start, w.End)
		}
		if w.Start.UnixNano() <= last {
			t.Fatalf("windows out of event order")
		}
		last = w.Start.UnixNano()
	}
	assertCountInvariant(t, "sim jitter", estimated, float64(res.Generated))
}

// TestEventTimeIdleShardedRejected pins the liveness gate: with the idle
// exclusion disabled, a multi-member group could wait forever on an
// expected producer whose keys all hash to a sibling member's partitions,
// so the combination is rejected at open.
func TestEventTimeIdleShardedRejected(t *testing.T) {
	_, err := OpenLive(nil, LiveConfig{
		Spec:        topology.Testbed(),
		NewSampler:  WHSFactory(),
		Cost:        EffectiveFractionBudget{Fraction: 1},
		EventTime:   true,
		IdleTimeout: -1,
		Partitions:  2,
		RootShards:  2,
	})
	if err != ErrEventTimeIdleSharded {
		t.Fatalf("err = %v, want ErrEventTimeIdleSharded", err)
	}
	_, err = OpenLive(nil, LiveConfig{
		Spec:        topology.Testbed(),
		NewSampler:  WHSFactory(),
		Cost:        EffectiveFractionBudget{Fraction: 1},
		EventTime:   true,
		IdleTimeout: -1,
		Partitions:  2,
		LayerShards: []int{2},
	})
	if err != ErrEventTimeIdleSharded {
		t.Fatalf("layer-sharded err = %v, want ErrEventTimeIdleSharded", err)
	}
}

// TestEventTimeRejectsStreaming pins the config gate in both runners.
func TestEventTimeRejectsStreaming(t *testing.T) {
	_, err := RunSim(SimConfig{
		Spec:       topology.Testbed(),
		Source:     microSource(1, 100),
		NewSampler: SRSFactory(0.1),
		Cost:       FractionBudget{Fraction: 1},
		Duration:   time.Second,
		Streaming:  true,
		EventTime:  true,
	})
	if err != ErrEventTimeStreaming {
		t.Fatalf("sim err = %v, want ErrEventTimeStreaming", err)
	}
	_, err = OpenLive(nil, LiveConfig{
		Spec:       topology.Testbed(),
		NewSampler: SRSFactory(0.1),
		Cost:       FractionBudget{Fraction: 1},
		Streaming:  true,
		EventTime:  true,
	})
	if err != ErrEventTimeStreaming {
		t.Fatalf("live err = %v, want ErrEventTimeStreaming", err)
	}
}
