package core

import (
	"encoding/binary"
	"errors"
	"math"
	"sync/atomic"

	"github.com/approxiot/approxiot/internal/query"
)

// This file is the live control plane for the §IV-B feedback mechanism.
//
// In simulated mode the controller is shared memory: every node reads the
// controller's fraction directly at its (virtual-time) window close. Live,
// the tree is real goroutines chained by mq topics, so the adjusted
// fraction travels the same way the data does: the root observes each
// merged WindowResult, asks the FeedbackController for the next fraction,
// and publishes a control record to the plan's single-partition control
// topic. Every shard-group member runs a standalone consumer on that topic
// and drains it at its own window boundary — fraction changes therefore
// land only between intervals, never mid-window, so Eq. 8 weight
// compounding (and with it the exact count invariant) is untouched.

// controlRecordSize is the wire size of one control record: sequence
// number plus the fraction, both fixed-width big-endian.
const controlRecordSize = 16

// ErrBadControlRecord reports an undecodable control-topic payload.
var ErrBadControlRecord = errors.New("core: malformed control record")

// ErrFeedbackNeedsQuery rejects adaptive runs whose every registered query
// is COUNT: Eq. 8 makes COUNT exact (zero-width bound), so the controller
// would read relative error 0 on every window and silently decay the
// fraction to its floor. Register SUM or MEAN alongside to adapt on.
var ErrFeedbackNeedsQuery = errors.New("core: feedback needs a non-COUNT query to observe (COUNT is exact, its bound is always 0)")

// encodeControl packs one fraction update. seq is the publishing window's
// sequence number — offsets already order the log, but the sequence makes
// records self-describing for debugging and cross-run journaling.
func encodeControl(seq uint64, fraction float64) []byte {
	buf := make([]byte, controlRecordSize)
	binary.BigEndian.PutUint64(buf[0:8], seq)
	binary.BigEndian.PutUint64(buf[8:16], math.Float64bits(fraction))
	return buf
}

// decodeControl unpacks a control record, validating the fraction.
func decodeControl(value []byte) (seq uint64, fraction float64, err error) {
	if len(value) != controlRecordSize {
		return 0, 0, ErrBadControlRecord
	}
	seq = binary.BigEndian.Uint64(value[0:8])
	fraction = math.Float64frombits(binary.BigEndian.Uint64(value[8:16]))
	if math.IsNaN(fraction) || fraction <= 0 || fraction > 1 {
		return 0, 0, ErrBadControlRecord
	}
	return seq, fraction, nil
}

// dynamicCost is the per-member live cost function of an adaptive run: an
// EffectiveFractionBudget whose fraction is swapped by the control plane.
// Reads and writes are a single atomic word, but by construction writes
// only happen at the member's window boundary (the control topic is
// drained immediately before CloseInterval), so a whole interval is
// sampled under one fraction.
type dynamicCost struct {
	bits atomic.Uint64
}

var _ WeightedCostFunction = (*dynamicCost)(nil)

func newDynamicCost(fraction float64) *dynamicCost {
	d := &dynamicCost{}
	d.set(fraction)
	return d
}

func (d *dynamicCost) fraction() float64 { return math.Float64frombits(d.bits.Load()) }

func (d *dynamicCost) set(f float64) { d.bits.Store(math.Float64bits(f)) }

// SampleSize implements CostFunction at the current fraction.
func (d *dynamicCost) SampleSize(observed int) int {
	return FractionBudget{Fraction: d.fraction()}.SampleSize(observed)
}

// SampleSizeWeighted implements WeightedCostFunction: like
// EffectiveFractionBudget, the fraction is end-to-end — the first sampling
// layer thins the stream and layers above forward with weights intact.
func (d *dynamicCost) SampleSizeWeighted(estOriginal float64) int {
	return EffectiveFractionBudget{Fraction: d.fraction()}.SampleSizeWeighted(estOriginal)
}

// feedbackKind picks the query result the controller observes: the first
// registered kind whose error bound is informative. COUNT is skipped —
// Eq. 8 makes the count estimate exact (zero variance), so its relative
// bound is 0 on every window and observing it would silently decay the
// fraction to the floor no matter how wrong the other answers are.
func feedbackKind(kinds []query.Kind) query.Kind {
	for _, k := range kinds {
		if k != query.Count {
			return k
		}
	}
	return kinds[0]
}

// feedbackCost adapts a FeedbackController to effective-fraction semantics
// for the simulated runner: every node shares the controller and reads its
// current fraction at window close. (The controller's own SampleSize is
// plain per-node fraction-of-observed — right for the single-node
// Estimator, compounding across a tree's layers — so tree runners use this
// wrapper instead.)
type feedbackCost struct {
	ctl *FeedbackController
}

var _ WeightedCostFunction = feedbackCost{}

// SampleSize implements CostFunction at the controller's current fraction.
func (f feedbackCost) SampleSize(observed int) int {
	return FractionBudget{Fraction: f.ctl.Fraction()}.SampleSize(observed)
}

// SampleSizeWeighted implements WeightedCostFunction.
func (f feedbackCost) SampleSizeWeighted(estOriginal float64) int {
	return EffectiveFractionBudget{Fraction: f.ctl.Fraction()}.SampleSizeWeighted(estOriginal)
}
