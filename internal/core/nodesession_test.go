package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/transport"
	"github.com/approxiot/approxiot/internal/transport/tcp"
	"github.com/approxiot/approxiot/internal/xrand"
)

// startNodeBroker runs a broker daemon the way cmd/approxiot-node's broker
// role does — an mq broker behind the TCP transport server — and returns
// its dial address.
func startNodeBroker(t *testing.T) string {
	t.Helper()
	b := mq.NewBroker()
	srv, err := tcp.Listen("127.0.0.1:0", transport.WrapBroker(b))
	if err != nil {
		t.Fatalf("tcp.Listen: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		b.Close()
	})
	return srv.Addr().String()
}

func dialNodeBus(t *testing.T, addr string) transport.Bus {
	t.Helper()
	c, err := tcp.Dial(addr)
	if err != nil {
		t.Fatalf("tcp.Dial(%s): %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// nodeTestConfig is the LiveConfig every "process" of a node-mode test
// shares — the cross-process contract. IdleTimeout is pinned high so no
// chain can be idle-aged while records sit in TCP buffers: completeness
// then rests purely on watermarks, which is the determinism being tested.
func nodeTestConfig(spec topology.TreeSpec, cost CostFunction, lateness time.Duration) LiveConfig {
	return LiveConfig{
		Spec:            spec,
		NewSampler:      WHSFactory(),
		Cost:            cost,
		Window:          10 * time.Millisecond,
		Queries:         []query.Kind{query.Sum, query.Count},
		Seed:            21,
		EventTime:       true,
		AllowedLateness: lateness,
		IdleTimeout:     30 * time.Second,
	}
}

// TestNodeTiersMatchSingleProcess is the multi-process acceptance test: the
// testbed tree split into three sessions over a real TCP broker — leaf tier
// with the source valves, intermediate tier, root tier, each on its own
// client connection exactly as three OS processes would connect — must
// close the same windows with the same bounds and bit-equal counts as a
// single-process OpenLive run of the same shuffled workload. At census
// budget the estimates match too; at half budget Eq. 8 still forces exact
// counts because per-window estimated input telescopes independently of
// which items the samplers kept.
func TestNodeTiersMatchSingleProcess(t *testing.T) {
	spec := topology.Testbed() // 8 sources, layers 4/2/1, 1 s windows
	const slots, perSlot = 8, 120
	span := 4 * time.Second
	items := eventItems(slots, perSlot, span)

	// Shuffle each slot within the lateness horizon, as the cross-mode
	// equivalence test does — determinism must not lean on arrival order.
	rng := xrand.New(99)
	shuffled := make([][]stream.Item, slots)
	for s := range items {
		perm := append([]stream.Item(nil), items[s]...)
		for i := len(perm) - 1; i > 0; i-- {
			j := int(rng.Uint64() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		shuffled[s] = perm
	}

	for _, tc := range []struct {
		name  string
		cost  CostFunction
		exact bool // estimates must match, not just counts
	}{
		{"census", FractionBudget{Fraction: 1}, true},
		{"half-budget", FractionBudget{Fraction: 0.5}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := nodeTestConfig(spec, tc.cost, span)

			// Reference: the whole tree in one process on the in-memory bus.
			ref := func() *LiveResult {
				s, err := OpenLive(nil, cfg)
				if err != nil {
					t.Fatalf("OpenLive: %v", err)
				}
				for slot, its := range shuffled {
					ing, err := s.Ingester(slot)
					if err != nil {
						t.Fatalf("ref Ingester(%d): %v", slot, err)
					}
					buf := append([]stream.Item(nil), its...)
					if err := ing.Push(buf...); err != nil {
						t.Fatalf("ref push slot %d: %v", slot, err)
					}
				}
				res, err := s.Close()
				if err != nil {
					t.Fatalf("ref close: %v", err)
				}
				return res
			}()

			// The same deployment as three tiers over TCP.
			addr := startNodeBroker(t)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			rootCfg := cfg
			rootCfg.Bus = dialNodeBus(t, addr)
			root, err := OpenNode(ctx, rootCfg, NodeTier{Root: true})
			if err != nil {
				t.Fatalf("OpenNode(root): %v", err)
			}
			defer root.Close()
			midCfg := cfg
			midCfg.Bus = dialNodeBus(t, addr)
			mid, err := OpenNode(ctx, midCfg, NodeTier{Layers: []int{1}})
			if err != nil {
				t.Fatalf("OpenNode(mid): %v", err)
			}
			defer mid.Close()
			leafCfg := cfg
			leafCfg.Bus = dialNodeBus(t, addr)
			leaf, err := OpenNode(ctx, leafCfg, NodeTier{Layers: []int{0}, Ingest: true})
			if err != nil {
				t.Fatalf("OpenNode(leaf): %v", err)
			}
			defer leaf.Close()

			for slot, its := range shuffled {
				buf := append([]stream.Item(nil), its...)
				if err := leaf.Push(slot, buf...); err != nil {
					t.Fatalf("leaf push slot %d: %v", slot, err)
				}
			}
			if err := leaf.FinishIngest(); err != nil {
				t.Fatalf("FinishIngest: %v", err)
			}
			if err := root.WaitDone(ctx); err != nil {
				t.Fatalf("root WaitDone: %v", err)
			}
			// Edge tiers learn of completion from the control topic, the way
			// separate processes must.
			if err := mid.WaitDone(ctx); err != nil {
				t.Fatalf("mid WaitDone: %v", err)
			}
			if err := leaf.WaitDone(ctx); err != nil {
				t.Fatalf("leaf WaitDone: %v", err)
			}
			if err := leaf.Drain(ctx); err != nil {
				t.Fatalf("leaf Drain: %v", err)
			}
			if err := mid.Drain(ctx); err != nil {
				t.Fatalf("mid Drain: %v", err)
			}
			leafRes := leaf.Close()
			midRes := mid.Close()
			rootRes := root.Close()

			total := int64(slots * perSlot)
			if leafRes.Produced != total {
				t.Fatalf("leaf produced %d, want %d", leafRes.Produced, total)
			}
			if rootRes.Produced != 0 || len(leafRes.Windows) != 0 {
				t.Fatalf("tier results bled across tiers: root produced %d, leaf closed %d windows",
					rootRes.Produced, len(leafRes.Windows))
			}
			late := leafRes.LateDropped + midRes.LateDropped + rootRes.LateDropped
			if late != 0 {
				t.Fatalf("dropped %d items pushed within the horizon", late)
			}
			if errs := leafRes.DecodeErrors + midRes.DecodeErrors + rootRes.DecodeErrors; errs != 0 {
				t.Fatalf("%d decode errors crossing the wire", errs)
			}

			if len(rootRes.Windows) != len(ref.Windows) {
				t.Fatalf("node run closed %d windows, single-process %d", len(rootRes.Windows), len(ref.Windows))
			}
			var nodeInput float64
			for i, rw := range ref.Windows {
				nw := rootRes.Windows[i]
				if !nw.Start.Equal(rw.Start) || !nw.End.Equal(rw.End) {
					t.Fatalf("window %d bounds node [%v,%v) vs single [%v,%v)",
						i, nw.Start, nw.End, rw.Start, rw.End)
				}
				rc, nc := rw.Result(query.Count).Estimate.Value, nw.Result(query.Count).Estimate.Value
				if rc != nc {
					t.Fatalf("window %d count node %.2f vs single %.2f", i, nc, rc)
				}
				if nw.EstimatedInput != rw.EstimatedInput {
					t.Fatalf("window %d estimated input node %.2f vs single %.2f",
						i, nw.EstimatedInput, rw.EstimatedInput)
				}
				if tc.exact {
					rs, ns := rw.Result(query.Sum).Estimate.Value, nw.Result(query.Sum).Estimate.Value
					if rel := math.Abs(ns-rs) / math.Abs(rs); rel > 1e-9 {
						t.Fatalf("window %d sum node %.6f vs single %.6f (rel %.2e)", i, ns, rs, rel)
					}
				}
				nodeInput += nw.EstimatedInput
			}
			// The accounting identity holds assembled across tiers: window
			// input plus every tier's late drops equals what the valves sent.
			nodeInput += leafRes.LateDroppedInput + midRes.LateDroppedInput + rootRes.LateDroppedInput
			assertCountInvariant(t, "node event-time", nodeInput, float64(leafRes.Produced))
		})
	}
}

// TestNodeBackpressureOverTCP is the satellite-5 regression: MaxIngestLag
// must hold through a remote backend. The valve's lag probe travels over
// TCP; an unknown group (the consuming tier not up yet) must BLOCK the
// push, not admit it, and once the group exists the valve must stall
// within one record of the high-water mark until a consumer drains. Lag is
// measured in records, as everywhere else — each Push below publishes one
// single-item batch record so the arithmetic is exact.
func TestNodeBackpressureOverTCP(t *testing.T) {
	spec := topology.TreeSpec{
		Sources: 1,
		Layers: []topology.LayerSpec{
			{Name: "edge", Nodes: 1},
			{Name: "root", Nodes: 1},
		},
		Window: 100 * time.Millisecond,
	}
	const maxLag, total = 8, 256
	cfg := nodeTestConfig(spec, FractionBudget{Fraction: 1}, 0)
	cfg.MaxIngestLag = maxLag

	addr := startNodeBroker(t)
	busA := dialNodeBus(t, addr) // the source process
	busB := dialNodeBus(t, addr) // the (initially absent) leaf process

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sess, err := OpenNode(ctx, withBus(cfg, busA), NodeTier{Ingest: true})
	if err != nil {
		t.Fatalf("OpenNode: %v", err)
	}
	defer sess.Close()
	pusher, err := sess.Pusher(0)
	if err != nil {
		t.Fatalf("Pusher: %v", err)
	}

	// The plan is the contract: derive the leaf topic and its group name
	// from the same compilation the session ran.
	plan, err := CompilePlan(PlanConfig{
		Spec:       spec,
		NewSampler: cfg.NewSampler,
		Cost:       cfg.Cost,
		Queries:    cfg.Queries,
		Seed:       cfg.Seed,
	})
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	srcTopic := plan.Sources[0].Topic
	lagGroup := plan.Layers[0][plan.Sources[0].ParentIndex].ID + "-in"

	pushed := make(chan error, 1)
	go func() {
		for sent := 0; sent < total; sent++ {
			if err := pusher.Push(stream.Item{Value: 1}); err != nil {
				pushed <- err
				return
			}
		}
		pushed <- nil
	}()

	// Phase 1: no leaf group anywhere yet — the probe fails, and the valve
	// must wait, never admit. (Admitting here is exactly the bug this test
	// pins: a transport error silently disabling backpressure.)
	time.Sleep(200 * time.Millisecond)
	if got := pusher.Sent(); got != 0 {
		t.Fatalf("valve admitted %d items with no consumer group to probe", got)
	}

	// Phase 2: the leaf group registers (the consuming tier came up) but
	// does not poll — the valve must advance to the high-water mark and
	// stall within one chunk of it.
	consumer, err := busB.NewGroupConsumer(srcTopic, lagGroup)
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer consumer.Close()
	deadline := time.Now().Add(10 * time.Second)
	for pusher.Sent() <= maxLag {
		if time.Now().After(deadline) {
			t.Fatalf("valve never advanced past the high-water mark; sent %d", pusher.Sent())
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // give an unbounded valve time to run away
	// Each admit requires lag <= maxLag at probe time and adds one record,
	// so an honest valve can never be more than one past the mark.
	if got := pusher.Sent(); got > maxLag+1 {
		t.Fatalf("valve sent %d with an unpolled group, want <= %d", got, maxLag+1)
	}
	if lag, err := busA.GroupLag(srcTopic, lagGroup); err != nil || lag > maxLag+1 {
		t.Fatalf("broker-side lag %d (err %v), want <= %d", lag, err, maxLag+1)
	}

	// Phase 3: the consumer drains; the valve must release and finish.
	drainCtx, stopDrain := context.WithCancel(ctx)
	defer stopDrain()
	go func() {
		for {
			if _, err := consumer.Poll(drainCtx, 256); err != nil {
				return
			}
		}
	}()
	select {
	case err := <-pushed:
		if err != nil {
			t.Fatalf("push failed after drain began: %v", err)
		}
	case <-ctx.Done():
		t.Fatalf("push never completed; sent %d of %d", pusher.Sent(), total)
	}
	if got := pusher.Sent(); got != total {
		t.Fatalf("sent %d, want %d", got, total)
	}
}

func withBus(cfg LiveConfig, bus transport.Bus) LiveConfig {
	cfg.Bus = bus
	return cfg
}

// TestOpenNodeValidation pins the node-mode contract errors.
func TestOpenNodeValidation(t *testing.T) {
	spec := topology.Testbed()
	base := nodeTestConfig(spec, FractionBudget{Fraction: 1}, 0)
	bus := transport.NewMem()
	defer bus.Close()

	if _, err := OpenNode(nil, base, NodeTier{Root: true}); !errors.Is(err, ErrNodeNeedsBus) {
		t.Fatalf("no bus: err = %v, want ErrNodeNeedsBus", err)
	}
	wallClock := withBus(base, bus)
	wallClock.EventTime = false
	if _, err := OpenNode(nil, wallClock, NodeTier{Root: true}); !errors.Is(err, ErrNodeNeedsEventTime) {
		t.Fatalf("processing time: err = %v, want ErrNodeNeedsEventTime", err)
	}
	if _, err := OpenNode(nil, withBus(base, bus), NodeTier{}); !errors.Is(err, ErrNodeTierEmpty) {
		t.Fatalf("empty tier: err = %v, want ErrNodeTierEmpty", err)
	}
	// The testbed has edge layers 0 and 1; layer 2 is the root, selectable
	// only via Root.
	if _, err := OpenNode(nil, withBus(base, bus), NodeTier{Layers: []int{2}}); !errors.Is(err, ErrNodeBadLayer) {
		t.Fatalf("root as layer: err = %v, want ErrNodeBadLayer", err)
	}
	if _, err := OpenNode(nil, withBus(base, bus), NodeTier{Layers: []int{0, 0}}); !errors.Is(err, ErrNodeBadLayer) {
		t.Fatalf("duplicate layer: err = %v, want ErrNodeBadLayer", err)
	}
}
