package core

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Cross-mode equivalence suite: the simulated and the live runner execute
// the same compiled plan, so the Eq. 8 guarantees must hold in both modes —
// and in live mode at every {Partitions, RootShards, LayerShards}
// combination, because consumer-group sharding only partitions the input
// that weight compounding already makes order- and split-insensitive.
//
// Two invariants are asserted per run:
//
//   - count exactness: the total estimated input count equals the number of
//     items actually generated (Eq. 8 composed across every layer), and
//   - total-weight conservation: Σ w·|items| over the root's Θ — which is
//     exactly what EstimatedInput totals — neither inflates nor deflates
//     through any sharded hop.

const crossModeTolerance = 1e-9

func assertCountInvariant(t *testing.T, label string, estimated, produced float64) {
	t.Helper()
	if produced == 0 {
		t.Fatalf("%s: produced nothing", label)
	}
	if rel := math.Abs(estimated-produced) / produced; rel > crossModeTolerance {
		t.Fatalf("%s: estimated input %.2f vs produced %.0f (rel %.2e)", label, estimated, produced, rel)
	}
}

func TestCrossModeEquivalence(t *testing.T) {
	spec := topology.Testbed()
	const seed = 21

	// Simulated mode: the knobs don't exist (virtual time, no broker), so
	// one run anchors the mode comparison.
	sim, err := RunSim(SimConfig{
		Spec:       spec,
		Source:     microSource(seed, 500),
		NewSampler: WHSFactory(),
		Cost:       EffectiveFractionBudget{Fraction: 0.25},
		Duration:   4 * time.Second,
		Queries:    []query.Kind{query.Sum, query.Count},
		Seed:       seed,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	var simEstimated float64
	for _, w := range sim.Windows {
		simEstimated += w.EstimatedInput
	}
	assertCountInvariant(t, "sim", simEstimated, float64(sim.Generated))

	// Live mode: the same spec, sampler, cost, and seed, swept across the
	// parallelism knobs — including the degenerate all-ones deployment.
	combos := []struct {
		name        string
		partitions  int
		rootShards  int
		layerShards []int
	}{
		{"all-ones", 1, 1, nil},
		{"partitioned-unsharded", 4, 1, nil},
		{"root-sharded", 4, 4, nil},
		{"layer-sharded", 4, 2, []int{2, 2}},
		{"fully-sharded-uneven", 8, 4, []int{4, 3}},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			res, err := RunLive(LiveConfig{
				Spec:        spec,
				Source:      microSource(seed, 1000),
				NewSampler:  WHSFactory(),
				Cost:        EffectiveFractionBudget{Fraction: 0.25},
				Items:       12000,
				Window:      30 * time.Millisecond,
				Queries:     []query.Kind{query.Sum, query.Count},
				Partitions:  combo.partitions,
				RootShards:  combo.rootShards,
				LayerShards: combo.layerShards,
				Seed:        seed,
			})
			if err != nil {
				t.Fatalf("RunLive: %v", err)
			}
			if res.Produced != 12000 {
				t.Fatalf("produced %d, want 12000", res.Produced)
			}
			assertCountInvariant(t, "live", res.EstimateCount, float64(res.Produced))
			// The modes agree on accuracy too: both estimate their own
			// exact truth within the fraction's expected loss.
			if loss := math.Abs(res.EstimateSum-res.TruthSum) / res.TruthSum; loss > 0.1 {
				t.Fatalf("live sum loss %.3f at fraction 0.25", loss)
			}
		})
	}
	if loss := sim.AccuracyLoss(query.Sum); loss > 0.1 {
		t.Fatalf("sim sum loss %.3f at fraction 0.25", loss)
	}
}

// TestCrossModeAdaptiveEquivalence extends the suite to adaptive runs: with
// identical controller gains and comparable per-window volumes (sim windows
// are 1 virtual second at 4000 items; live windows are 50 ms paced to 4000
// items), the sim and live feedback loops must settle on the same fraction
// plateau, and the count invariant — which weight compounding guarantees at
// *any* fraction — must stay exact while the fraction moves, at every shard
// combo.
func TestCrossModeAdaptiveEquivalence(t *testing.T) {
	const (
		seed    = 21
		initial = 0.05
		target  = 0.02
		gain    = 1.5
	)

	ctl := NewFeedbackController(initial, target, WithGain(gain))
	sim, err := RunSim(SimConfig{
		Spec:       topology.Testbed(),
		Source:     microSource(seed, 125), // 8 sources × 4 × 125/s = 4000 per 1 s window
		NewSampler: WHSFactory(),
		Duration:   14 * time.Second,
		Queries:    []query.Kind{query.Sum, query.Count},
		Seed:       seed,
		Feedback:   ctl,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if len(sim.Fractions) != len(sim.Windows) || len(sim.Fractions) == 0 {
		t.Fatalf("sim recorded %d fractions over %d windows", len(sim.Fractions), len(sim.Windows))
	}
	var simEstimated float64
	for _, w := range sim.Windows {
		simEstimated += w.EstimatedInput
	}
	assertCountInvariant(t, "sim", simEstimated, float64(sim.Generated))
	simFinal := sim.Fractions[len(sim.Fractions)-1]

	combos := []struct {
		name        string
		partitions  int
		rootShards  int
		layerShards []int
	}{
		{"all-ones", 1, 1, nil},
		{"fully-sharded", 4, 2, []int{2, 2}},
	}
	if testing.Short() {
		combos = combos[1:] // keep the control plane under the race detector
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			ctl := NewFeedbackController(initial, target, WithGain(gain))
			res, err := RunLive(LiveConfig{
				Spec:        topology.Testbed(),
				Source:      microSource(seed, 1000),
				NewSampler:  WHSFactory(),
				Items:       48000,
				Window:      50 * time.Millisecond,
				Queries:     []query.Kind{query.Sum, query.Count},
				Partitions:  combo.partitions,
				RootShards:  combo.rootShards,
				LayerShards: combo.layerShards,
				Seed:        seed,
				Feedback:    ctl,
				SourceRate:  10000, // 8 × 10000/s × 50 ms = 4000 per window
			})
			if err != nil {
				t.Fatalf("RunLive: %v", err)
			}
			if res.Produced != 48000 {
				t.Fatalf("produced %d, want 48000", res.Produced)
			}
			// The invariant the whole design hangs on: exact counts while
			// the fraction moves under control-plane adaptation.
			assertCountInvariant(t, "live", res.EstimateCount, float64(res.Produced))

			if len(res.Fractions) != len(res.Windows) || len(res.Fractions) < 6 {
				t.Fatalf("recorded %d fractions over %d windows, want one per window and enough to converge", len(res.Fractions), len(res.Windows))
			}
			for i, f := range res.Fractions {
				if f < 0.01 || f > 1 {
					t.Fatalf("window %d fraction %g outside controller bounds", i, f)
				}
			}
			// Trajectory equivalence: both loops settle, and the live
			// plateau is within a couple of MIMD steps of the sim plateau
			// (wall-clock windows are noisier than virtual-time ones, so
			// allow gain³ while typical runs agree within one step).
			last := res.Fractions[len(res.Fractions)-1]
			for _, f := range res.Fractions[len(res.Fractions)-4:] {
				if f > last*gain+1e-12 || f < last/gain-1e-12 {
					t.Fatalf("trajectory still moving at the tail: %v", res.Fractions)
				}
			}
			slack := gain * gain * gain
			if ratio := last / simFinal; ratio > slack || ratio < 1/slack {
				t.Fatalf("live plateau %.4f vs sim plateau %.4f (ratio %.2f beyond gain³)", last, simFinal, ratio)
			}

			// Runtime observability: the adaptive loop is driven by these,
			// so they must be live on every run.
			if res.Latency.Count() == 0 || res.Latency.Quantile(0.5) <= 0 {
				t.Fatalf("latency histogram empty: %v", res.Latency)
			}
			if res.Bandwidth.Total() == 0 {
				t.Fatal("bandwidth account empty")
			}
			if got := res.Bandwidth.Link("control"); got == 0 {
				t.Fatal("no control-plane bytes accounted")
			}
			if len(res.Nodes) == 0 {
				t.Fatal("no node telemetry")
			}
			var rootThroughput float64
			for id, tel := range res.Nodes {
				if tel.Observed > 0 && tel.Throughput <= 0 {
					t.Fatalf("node %s observed %d items at zero throughput", id, tel.Observed)
				}
				if id == "root-0" {
					rootThroughput = tel.Throughput
				}
			}
			if rootThroughput <= 0 {
				t.Fatal("root-0 telemetry missing or idle")
			}
		})
	}
}

// TestShardInvarianceProperty drives randomized {seed, partitions, shards}
// deployments and checks that sharding is estimate-invariant: the merged
// estimated input count of a sharded run equals the single-shard run's
// (same seed, same items) within exactness tolerance.
func TestShardInvarianceProperty(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	rng := xrand.New(0xC0FFEE)
	spec := topology.Testbed()
	for trial := 0; trial < trials; trial++ {
		seed := rng.Uint64()
		partitions := 1 + int(rng.Uint64()%8)
		rootShards := 1 + int(rng.Uint64()%uint64(partitions))
		layerShards := make([]int, spec.RootLayer())
		for l := range layerShards {
			layerShards[l] = 1 + int(rng.Uint64()%uint64(partitions))
		}
		items := int64(6000 + rng.Uint64()%4000)

		run := func(partitions, rootShards int, layerShards []int) *LiveResult {
			res, err := RunLive(LiveConfig{
				Spec:        spec,
				Source:      microSource(seed, 1000),
				NewSampler:  WHSFactory(),
				Cost:        EffectiveFractionBudget{Fraction: 0.3},
				Items:       items,
				Window:      25 * time.Millisecond,
				Queries:     []query.Kind{query.Sum, query.Count},
				Partitions:  partitions,
				RootShards:  rootShards,
				LayerShards: layerShards,
				Seed:        seed,
			})
			if err != nil {
				t.Fatalf("trial %d: RunLive(p=%d r=%d l=%v): %v", trial, partitions, rootShards, layerShards, err)
			}
			return res
		}
		baseline := run(1, 1, nil)
		sharded := run(partitions, rootShards, layerShards)

		if baseline.Produced != items || sharded.Produced != items {
			t.Fatalf("trial %d: produced %d/%d, want %d", trial, baseline.Produced, sharded.Produced, items)
		}
		assertCountInvariant(t, "baseline", baseline.EstimateCount, float64(items))
		assertCountInvariant(t, "sharded", sharded.EstimateCount, float64(items))
		if rel := math.Abs(baseline.EstimateCount-sharded.EstimateCount) / baseline.EstimateCount; rel > crossModeTolerance {
			t.Fatalf("trial %d (p=%d r=%d l=%v): merged estimate %.2f vs single-shard %.2f",
				trial, partitions, rootShards, layerShards, sharded.EstimateCount, baseline.EstimateCount)
		}
	}
}

// TestShardBudgetSplitProperty checks, for randomized caps and shard
// counts, that dividing an absolute FixedBudget across a node's group
// members never exceeds the configured cap in total — and reaches it
// exactly whenever the input is large enough.
func TestShardBudgetSplitProperty(t *testing.T) {
	rng := xrand.New(0xBADCAB)
	for trial := 0; trial < 20; trial++ {
		shards := 1 + int(rng.Uint64()%6)
		capSize := 1 + int(rng.Uint64()%300)
		cfg := testPlanConfig()
		cfg.Cost = FixedBudget{Size: capSize}
		cfg.Partitions = shards
		cfg.RootShards = shards
		layerShards := make([]int, cfg.Spec.RootLayer())
		for l := range layerShards {
			layerShards[l] = shards
		}
		cfg.LayerShards = layerShards
		plan, err := CompilePlan(cfg)
		if err != nil {
			t.Fatalf("trial %d: CompilePlan: %v", trial, err)
		}
		// Every node of every layer: feed each member more than the cap
		// and total what the group keeps.
		for l, layer := range plan.Layers {
			for _, desc := range layer {
				if desc.Shards != shards {
					t.Fatalf("trial %d: node (%d,%d) compiled with %d shards, want %d", trial, l, desc.Index, desc.Shards, shards)
				}
				total := 0
				for shard := 0; shard < desc.Shards; shard++ {
					n := plan.NewNodeShard(desc, shard)
					n.IngestItems(mkItems("a", make([]float64, capSize+1)...))
					for _, b := range n.CloseInterval() {
						total += len(b.Items)
					}
				}
				if total > capSize {
					t.Fatalf("trial %d: node %s group kept %d items over cap %d", trial, desc.ID, total, capSize)
				}
				if capSize >= desc.Shards && total != capSize {
					t.Fatalf("trial %d: node %s group kept %d items, want the full cap %d", trial, desc.ID, total, capSize)
				}
			}
		}
	}
}
