package sample

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

// mkItems builds n items for one source with value = index.
func mkItems(src stream.SourceID, n int) []stream.Item {
	items := make([]stream.Item, n)
	base := time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)
	for i := range items {
		items[i] = stream.Item{Source: src, Value: float64(i), Ts: base.Add(time.Duration(i) * time.Millisecond)}
	}
	return items
}

// estimatedCount returns Σ|I|·W over batches, the left side of Eq. 8.
func estimatedCount(batches []stream.Batch) float64 {
	var c float64
	for _, b := range batches {
		c += float64(len(b.Items)) * b.Weight
	}
	return c
}

func TestReservoirKeepsAllWhenUnderCapacity(t *testing.T) {
	r := NewReservoir(10, xrand.New(1))
	items := mkItems("s", 7)
	r.AddAll(items)
	if r.Len() != 7 || r.Seen() != 7 {
		t.Fatalf("Len=%d Seen=%d, want 7/7", r.Len(), r.Seen())
	}
	for i, it := range r.Items() {
		if it.Value != float64(i) {
			t.Fatalf("under-capacity reservoir reordered items: %v", r.Items())
		}
	}
	if r.Weight() != 1 {
		t.Fatalf("Weight = %g, want 1 when c <= N", r.Weight())
	}
}

func TestReservoirCapsAtCapacity(t *testing.T) {
	r := NewReservoir(5, xrand.New(2))
	r.AddAll(mkItems("s", 1000))
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	if r.Seen() != 1000 {
		t.Fatalf("Seen = %d, want 1000", r.Seen())
	}
	if got, want := r.Weight(), 200.0; got != want {
		t.Fatalf("Weight = %g, want %g (c/N)", got, want)
	}
}

func TestReservoirZeroCapacity(t *testing.T) {
	r := NewReservoir(0, xrand.New(3))
	r.AddAll(mkItems("s", 50))
	if r.Len() != 0 {
		t.Fatalf("zero-capacity reservoir held %d items", r.Len())
	}
	if r.Seen() != 50 {
		t.Fatalf("Seen = %d, want 50", r.Seen())
	}
	if r.Weight() != 1 {
		t.Fatalf("Weight = %g (degenerate case should stay 1)", r.Weight())
	}
}

func TestReservoirNegativeCapacityClamped(t *testing.T) {
	r := NewReservoir(-5, xrand.New(3))
	r.Add(stream.Item{Source: "s"})
	if r.Len() != 0 || r.Cap() != 0 {
		t.Fatalf("negative capacity not clamped: len=%d cap=%d", r.Len(), r.Cap())
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(4, xrand.New(4))
	r.AddAll(mkItems("s", 100))
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Fatalf("Reset left len=%d seen=%d", r.Len(), r.Seen())
	}
	r.AddAll(mkItems("s", 3))
	if r.Len() != 3 || r.Weight() != 1 {
		t.Fatalf("reservoir unusable after Reset: len=%d w=%g", r.Len(), r.Weight())
	}
}

// TestReservoirUniformInclusion verifies Algorithm R's defining property:
// every stream position lands in the sample with probability N/c.
func TestReservoirUniformInclusion(t *testing.T) {
	const (
		n      = 100
		capN   = 10
		trials = 20000
	)
	counts := make([]int, n)
	rng := xrand.New(42)
	for tr := 0; tr < trials; tr++ {
		r := NewReservoir(capN, rng)
		r.AddAll(mkItems("s", n))
		for _, it := range r.Items() {
			counts[int(it.Value)]++
		}
	}
	want := float64(trials) * capN / n // 2000 per position
	for pos, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.10 {
			t.Errorf("position %d selected %d times, want %0.f ± 10%%", pos, c, want)
		}
	}
}

func TestReservoirSampleSizeProperty(t *testing.T) {
	f := func(seed uint64, capRaw, nRaw uint8) bool {
		capN := int(capRaw) % 32
		n := int(nRaw)
		r := NewReservoir(capN, xrand.New(seed))
		r.AddAll(mkItems("s", n))
		want := n
		if capN < n {
			want = capN
		}
		return r.Len() == want && r.Seen() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualSplitExactDivision(t *testing.T) {
	counts := map[stream.SourceID]int{"a": 50, "b": 50, "c": 50, "d": 50}
	alloc := EqualSplit{}.Allocate(100, counts)
	for src, n := range alloc {
		if n != 25 {
			t.Fatalf("alloc[%s] = %d, want 25", src, n)
		}
	}
}

func TestEqualSplitRemainderIsDeterministic(t *testing.T) {
	counts := map[stream.SourceID]int{"a": 5, "b": 5, "c": 5}
	alloc := EqualSplit{}.Allocate(10, counts)
	// 10/3 = 3 rem 1 → first sorted source gets the extra slot.
	if alloc["a"] != 4 || alloc["b"] != 3 || alloc["c"] != 3 {
		t.Fatalf("alloc = %v, want a:4 b:3 c:3", alloc)
	}
}

func TestEqualSplitMinimumOneSlot(t *testing.T) {
	counts := map[stream.SourceID]int{"a": 10, "b": 10, "c": 10, "d": 10, "e": 10}
	alloc := EqualSplit{}.Allocate(2, counts)
	for src, n := range alloc {
		if n < 1 {
			t.Fatalf("alloc[%s] = %d; no sub-stream may be neglected (§III-A)", src, n)
		}
	}
}

func TestEqualSplitZeroBudget(t *testing.T) {
	alloc := EqualSplit{}.Allocate(0, map[stream.SourceID]int{"a": 10})
	if alloc["a"] != 0 {
		t.Fatalf("zero budget allocated %d", alloc["a"])
	}
}

func TestEqualSplitEmptyCounts(t *testing.T) {
	alloc := EqualSplit{}.Allocate(10, nil)
	if len(alloc) != 0 {
		t.Fatalf("empty counts produced %v", alloc)
	}
}

func TestProportionalFollowsCounts(t *testing.T) {
	counts := map[stream.SourceID]int{"big": 900, "small": 100}
	alloc := Proportional{}.Allocate(100, counts)
	if alloc["big"] != 90 || alloc["small"] < 1 {
		t.Fatalf("alloc = %v, want big:90 small:>=1", alloc)
	}
}

func TestProportionalMinimumOne(t *testing.T) {
	counts := map[stream.SourceID]int{"big": 1000000, "rare": 1}
	alloc := Proportional{}.Allocate(50, counts)
	if alloc["rare"] < 1 {
		t.Fatalf("rare sub-stream starved: %v", alloc)
	}
}

func TestWHSPaperFigure2Example(t *testing.T) {
	// Fig. 2: sub-stream S1 delivers 4 items into a reservoir of size 3 with
	// W_in = 3 → W_out = 3·(4/3) = 4. S2 delivers 2 items (c <= N) with
	// W_in = 2 → W_out = 2.
	rng := xrand.New(7)
	s := NewWHS(rng)

	b1 := s.Sample(mkItems("S1", 4), stream.WeightMap{"S1": 3}, 3)
	if len(b1) != 1 {
		t.Fatalf("got %d batches, want 1", len(b1))
	}
	if b1[0].Weight != 4 {
		t.Fatalf("S1 W_out = %g, want 4 (paper Fig. 2)", b1[0].Weight)
	}
	if len(b1[0].Items) != 3 {
		t.Fatalf("S1 sample size = %d, want 3", len(b1[0].Items))
	}

	b2 := s.Sample(mkItems("S2", 2), stream.WeightMap{"S2": 2}, 3)
	if b2[0].Weight != 2 {
		t.Fatalf("S2 W_out = %g, want 2 (c <= N keeps W_in)", b2[0].Weight)
	}
	if len(b2[0].Items) != 2 {
		t.Fatalf("S2 sample size = %d, want 2", len(b2[0].Items))
	}
}

// TestWHSCountInvariant is the heart of the paper's correctness argument
// (Eq. 8): W^out·c̃ = W^in·c at every node, exactly.
func TestWHSCountInvariant(t *testing.T) {
	f := func(seed uint64, nRaw uint16, budgetRaw, stratums uint8) bool {
		rng := xrand.New(seed)
		k := 1 + int(stratums)%6
		budget := int(budgetRaw)
		var items []stream.Item
		want := 0.0
		weights := stream.WeightMap{}
		for i := 0; i < k; i++ {
			src := stream.SourceID(string(rune('a' + i)))
			n := 1 + (int(nRaw)+i*37)%200
			items = append(items, mkItems(src, n)...)
			wIn := 1 + rng.Float64()*5
			weights.Set(src, wIn)
			want += wIn * float64(n)
		}
		s := NewWHS(xrand.New(seed + 1))
		batches := s.Sample(items, weights, budget)
		if budget <= 0 {
			return len(batches) == 0
		}
		got := estimatedCount(batches)
		return math.Abs(got-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestWHSEverySubstreamRepresented(t *testing.T) {
	var items []stream.Item
	items = append(items, mkItems("huge", 10000)...)
	items = append(items, mkItems("tiny", 1)...)
	s := NewWHS(xrand.New(9))
	batches := s.Sample(items, nil, 10)
	seen := map[stream.SourceID]bool{}
	for _, b := range batches {
		seen[b.Source] = true
	}
	if !seen["tiny"] {
		t.Fatal("rare sub-stream was neglected — violates the core design goal")
	}
}

func TestWHSDeterministicForSeed(t *testing.T) {
	items := append(mkItems("a", 500), mkItems("b", 300)...)
	a := NewWHS(xrand.New(5)).Sample(items, nil, 50)
	b := NewWHS(xrand.New(5)).Sample(items, nil, 50)
	if len(a) != len(b) {
		t.Fatalf("batch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Weight != b[i].Weight || len(a[i].Items) != len(b[i].Items) {
			t.Fatal("same seed produced different samples")
		}
		for j := range a[i].Items {
			if a[i].Items[j].Value != b[i].Items[j].Value {
				t.Fatal("same seed selected different items")
			}
		}
	}
}

func TestWHSEmptyInput(t *testing.T) {
	if got := NewWHS(xrand.New(1)).Sample(nil, nil, 10); got != nil {
		t.Fatalf("Sample(nil) = %v, want nil", got)
	}
}

func TestWHSSampleBatchesKeepsWeightLineages(t *testing.T) {
	// Two pairs for the same sub-stream with different W^in (the Fig. 3
	// split-across-intervals case) must not be merged.
	pairs := []stream.Batch{
		{Source: "s", Weight: 1.5, Items: mkItems("s", 2)},
		{Source: "s", Weight: 3, Items: mkItems("s", 1)},
	}
	s := NewWHS(xrand.New(11))
	out := s.SampleBatches(pairs, 10)
	if len(out) != 2 {
		t.Fatalf("got %d batches, want 2 distinct lineages", len(out))
	}
	want := 1.5*2 + 3*1
	if got := estimatedCount(out); math.Abs(got-want) > 1e-9 {
		t.Fatalf("estimated count = %g, want %g", got, want)
	}
}

func TestCoinFlipFractionOneKeepsEverything(t *testing.T) {
	c := NewCoinFlipFraction(xrand.New(1), 1)
	items := mkItems("s", 100)
	batches := c.Sample(items, nil, 0)
	if got := estimatedCount(batches); got != 100 {
		t.Fatalf("estimated count = %g, want 100", got)
	}
	if len(batches[0].Items) != 100 {
		t.Fatalf("kept %d items, want all 100", len(batches[0].Items))
	}
	if batches[0].Weight != 1 {
		t.Fatalf("weight = %g, want 1 at p=1", batches[0].Weight)
	}
}

func TestCoinFlipZeroFractionDropsEverything(t *testing.T) {
	c := NewCoinFlipFraction(xrand.New(1), 0)
	if got := c.Sample(mkItems("s", 10), nil, 0); got != nil {
		t.Fatalf("p=0 kept %v", got)
	}
}

func TestCoinFlipKeepRateAndWeight(t *testing.T) {
	c := NewCoinFlipFraction(xrand.New(3), 0.25)
	items := mkItems("s", 100000)
	batches := c.Sample(items, nil, 0)
	kept := 0
	for _, b := range batches {
		kept += len(b.Items)
		if b.Weight != 4 { // 1/0.25
			t.Fatalf("weight = %g, want 4", b.Weight)
		}
	}
	if math.Abs(float64(kept)/100000-0.25) > 0.01 {
		t.Fatalf("keep rate = %g, want ~0.25", float64(kept)/100000)
	}
}

func TestCoinFlipBudgetDerivedProbability(t *testing.T) {
	c := NewCoinFlip(xrand.New(4))
	items := mkItems("s", 10000)
	batches := c.Sample(items, nil, 1000) // expect p = 0.1
	kept := 0
	for _, b := range batches {
		kept += len(b.Items)
	}
	if kept < 800 || kept > 1200 {
		t.Fatalf("kept %d items, want ~1000", kept)
	}
}

func TestCoinFlipCanLoseRareSubstream(t *testing.T) {
	// The failure mode ApproxIoT exists to fix: at a low fraction, SRS
	// frequently drops a 2-item sub-stream entirely.
	lost := 0
	for trial := 0; trial < 200; trial++ {
		c := NewCoinFlipFraction(xrand.New(uint64(trial)), 0.1)
		items := append(mkItems("big", 1000), mkItems("rare", 2)...)
		found := false
		for _, b := range c.Sample(items, nil, 0) {
			if b.Source == "rare" {
				found = true
			}
		}
		if !found {
			lost++
		}
	}
	// P(lose both) = 0.9² = 81%.
	if lost < 100 {
		t.Fatalf("rare sub-stream lost only %d/200 times; expected ~162", lost)
	}
}

func TestCoinFlipUnbiasedInExpectation(t *testing.T) {
	var est, truth float64
	items := mkItems("s", 1000)
	for _, it := range items {
		truth += it.Value
	}
	const trials = 400
	for tr := 0; tr < trials; tr++ {
		c := NewCoinFlipFraction(xrand.New(uint64(tr)+1000), 0.2)
		for _, b := range c.Sample(items, nil, 0) {
			for _, it := range b.Items {
				est += it.Value * b.Weight
			}
		}
	}
	est /= trials
	if math.Abs(est-truth)/truth > 0.05 {
		t.Fatalf("mean SRS estimate %.1f deviates from truth %.1f", est, truth)
	}
}

func TestPassthroughKeepsEverythingUnweighted(t *testing.T) {
	items := append(mkItems("a", 10), mkItems("b", 5)...)
	batches := Passthrough{}.Sample(items, stream.WeightMap{"a": 2}, 0)
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	for _, b := range batches {
		switch b.Source {
		case "a":
			if b.Weight != 2 || len(b.Items) != 10 {
				t.Fatalf("a: w=%g n=%d, want 2/10", b.Weight, len(b.Items))
			}
		case "b":
			if b.Weight != 1 || len(b.Items) != 5 {
				t.Fatalf("b: w=%g n=%d, want 1/5", b.Weight, len(b.Items))
			}
		}
	}
}

func TestParallelWHSCountInvariant(t *testing.T) {
	f := func(seed uint64, workersRaw, nRaw uint8) bool {
		workers := 1 + int(workersRaw)%8
		n := 1 + int(nRaw)
		items := append(mkItems("a", n), mkItems("b", n*2)...)
		p := NewParallelWHS(workers, seed)
		batches := p.Sample(items, stream.WeightMap{"a": 2, "b": 1.5}, 40)
		want := 2*float64(n) + 1.5*float64(n*2)
		got := estimatedCount(batches)
		return math.Abs(got-want) < 1e-6*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWHSConcurrentMatchesSequential(t *testing.T) {
	items := append(mkItems("a", 1000), mkItems("b", 700)...)
	seq := NewParallelWHS(4, 99).Sample(items, nil, 100)
	con := NewParallelWHS(4, 99, WithConcurrency(true)).Sample(items, nil, 100)
	if len(seq) != len(con) {
		t.Fatalf("batch counts differ: %d vs %d", len(seq), len(con))
	}
	for i := range seq {
		if seq[i].Source != con[i].Source || seq[i].Weight != con[i].Weight || len(seq[i].Items) != len(con[i].Items) {
			t.Fatal("concurrent execution changed the sample — workers must be order-independent")
		}
	}
}

func TestParallelWHSRespectsPerWorkerCap(t *testing.T) {
	items := mkItems("a", 10000)
	p := NewParallelWHS(4, 1)
	batches := p.Sample(items, nil, 40) // N=40, w=4 → ≤10 each
	for _, b := range batches {
		if len(b.Items) > 10 {
			t.Fatalf("worker reservoir held %d items, cap is N/w = 10", len(b.Items))
		}
	}
}

func TestParallelWHSSingleWorkerInvariant(t *testing.T) {
	items := mkItems("a", 500)
	batches := NewParallelWHS(1, 7).Sample(items, nil, 50)
	if got := estimatedCount(batches); math.Abs(got-500) > 1e-9 {
		t.Fatalf("estimated count = %g, want 500", got)
	}
}

func BenchmarkWHSSample(b *testing.B) {
	items := append(mkItems("a", 5000), append(mkItems("b", 3000), mkItems("c", 2000)...)...)
	s := NewWHS(xrand.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(items, nil, 1000)
	}
}

func BenchmarkCoinFlipSample(b *testing.B) {
	items := append(mkItems("a", 5000), append(mkItems("b", 3000), mkItems("c", 2000)...)...)
	c := NewCoinFlipFraction(xrand.New(1), 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample(items, nil, 0)
	}
}

func BenchmarkReservoirAdd(b *testing.B) {
	r := NewReservoir(1000, xrand.New(1))
	it := stream.Item{Source: "s", Value: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(it)
	}
}

func BenchmarkParallelWHS4Workers(b *testing.B) {
	items := mkItems("a", 10000)
	p := NewParallelWHS(4, 1, WithConcurrency(true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample(items, nil, 1000)
	}
}
