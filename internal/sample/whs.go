package sample

import (
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

// WHSampler implements Algorithm 1, weighted hierarchical sampling — the
// paper's core contribution. For one interval on one node it:
//
//  1. stratifies the input items into sub-streams by source (line 5),
//  2. allocates a reservoir size N_i per sub-stream from the total budget
//     (line 7, the getSampleSize step),
//  3. reservoir-samples each sub-stream independently (line 10), and
//  4. updates the weight: W^out = W^in·(c_i/N_i) when the sub-stream
//     overflowed its reservoir, W^out = W^in otherwise (Eq. 1–2).
//
// The algorithm needs no coordination with other nodes; weights compound
// multiplicatively hop by hop, which is what preserves the Eq. 8 count
// invariant end to end.
type WHSampler struct {
	rng   *xrand.Rand
	alloc Allocator
}

var _ Sampler = (*WHSampler)(nil)

// WHSOption customizes a WHSampler.
type WHSOption func(*WHSampler)

// WithAllocator overrides the budget-split policy (default EqualSplit).
func WithAllocator(a Allocator) WHSOption {
	return func(s *WHSampler) { s.alloc = a }
}

// NewWHS returns a weighted hierarchical sampler driven by rng.
func NewWHS(rng *xrand.Rand, opts ...WHSOption) *WHSampler {
	s := &WHSampler{rng: rng, alloc: EqualSplit{}}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Sample runs WHSamp (Algorithm 1) over one (W^in, items) pair.
func (s *WHSampler) Sample(items []stream.Item, weights stream.WeightMap, budget int) []stream.Batch {
	if len(items) == 0 {
		return nil
	}
	strata, sources := stratify(items)
	counts := make(map[stream.SourceID]int, len(strata))
	for src, its := range strata {
		counts[src] = len(its)
	}
	sizes := s.alloc.Allocate(budget, counts)

	batches := make([]stream.Batch, 0, len(sources))
	for _, src := range sources {
		ni := sizes[src]
		if ni <= 0 {
			continue // zero budget: sub-stream contributes nothing
		}
		res := NewReservoir(ni, s.rng)
		res.AddAll(strata[src])
		wOut := weights.Get(src) * res.Weight() // Eq. 2
		batches = append(batches, stream.Batch{
			Source: src,
			Weight: wOut,
			Items:  res.Items(),
		})
	}
	return batches
}

// SampleBatches applies Algorithm 2's inner loop: each (W^in, items) pair in
// Ψ is sampled independently, sharing the interval budget. This is the entry
// point nodes use when multiple upstream batches for the same sub-stream
// arrive within one interval (the Fig. 3 split-interval case); each pair
// keeps its own weight lineage.
func (s *WHSampler) SampleBatches(pairs []stream.Batch, budget int) []stream.Batch {
	if len(pairs) == 0 {
		return nil
	}
	var out []stream.Batch
	for _, pair := range pairs {
		weights := stream.WeightMap{pair.Source: pair.Weight}
		out = append(out, s.Sample(pair.Items, weights, budget)...)
	}
	return out
}
