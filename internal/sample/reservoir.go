package sample

import (
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Reservoir selects a uniform random sample of at most Cap items from an
// unbounded stream using Vitter's Algorithm R [7] (§II-B2): the first Cap
// items are kept; the i-th item thereafter replaces a random slot with
// probability Cap/i. Every item ends up in the reservoir with probability
// Cap/Seen.
type Reservoir struct {
	rng   *xrand.Rand
	cap   int
	items []stream.Item
	seen  int64
}

// NewReservoir returns a reservoir of the given capacity. A capacity <= 0
// keeps nothing (the degenerate zero-budget case).
func NewReservoir(capacity int, rng *xrand.Rand) *Reservoir {
	if capacity < 0 {
		capacity = 0
	}
	return &Reservoir{rng: rng, cap: capacity, items: make([]stream.Item, 0, capacity)}
}

// Add offers one item to the reservoir.
func (r *Reservoir) Add(it stream.Item) {
	r.seen++
	if r.cap == 0 {
		return
	}
	if len(r.items) < r.cap {
		r.items = append(r.items, it)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.items[j] = it
	}
}

// AddAll offers a slice of items in order.
func (r *Reservoir) AddAll(items []stream.Item) {
	for _, it := range items {
		r.Add(it)
	}
}

// Items returns the current sample. The returned slice is owned by the
// reservoir; callers that retain it across Reset must copy.
func (r *Reservoir) Items() []stream.Item { return r.items }

// Seen returns the number of items offered so far (c_i in Algorithm 1).
func (r *Reservoir) Seen() int64 { return r.seen }

// Cap returns the reservoir capacity (N_i in Algorithm 1).
func (r *Reservoir) Cap() int { return r.cap }

// Len returns the number of items currently held (c̃_i; min(c, N)).
func (r *Reservoir) Len() int { return len(r.items) }

// Weight returns the local weight w_i of Equation 1: c/N when the stream
// overflowed the reservoir, 1 otherwise.
func (r *Reservoir) Weight() float64 {
	if r.seen > int64(r.cap) && r.cap > 0 {
		return float64(r.seen) / float64(r.cap)
	}
	return 1
}

// Reset empties the reservoir for the next interval, retaining capacity.
func (r *Reservoir) Reset() {
	r.items = r.items[:0]
	r.seen = 0
}
