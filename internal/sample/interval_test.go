package sample

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

func mkPairs(spec ...struct {
	src stream.SourceID
	w   float64
	n   int
}) []stream.Batch {
	var out []stream.Batch
	for _, s := range spec {
		out = append(out, stream.Batch{Source: s.src, Weight: s.w, Items: mkItems(s.src, s.n)})
	}
	return out
}

type pairSpec = struct {
	src stream.SourceID
	w   float64
	n   int
}

func TestWHSIntervalInvariant(t *testing.T) {
	f := func(seed uint64, budgetRaw uint16) bool {
		budget := 1 + int(budgetRaw)%500
		rng := xrand.New(seed)
		var pairs []stream.Batch
		want := 0.0
		k := 1 + rng.Intn(4)
		for i := 0; i < k; i++ {
			src := stream.SourceID(string(rune('a' + rng.Intn(3)))) // collisions on purpose
			n := 1 + rng.Intn(300)
			w := 1 + rng.Float64()*4
			pairs = append(pairs, stream.Batch{Source: src, Weight: w, Items: mkItems(src, n)})
			want += w * float64(n)
		}
		out := NewWHS(xrand.New(seed+1)).SampleInterval(pairs, budget)
		return math.Abs(estimatedCount(out)-want) < 1e-6*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestWHSIntervalRespectsBudgetApproximately(t *testing.T) {
	pairs := mkPairs(
		pairSpec{"a", 1, 10000},
		pairSpec{"b", 1, 10000},
	)
	out := NewWHS(xrand.New(1)).SampleInterval(pairs, 200)
	kept := 0
	for _, b := range out {
		kept += len(b.Items)
	}
	if kept < 190 || kept > 210 {
		t.Fatalf("kept %d items on budget 200", kept)
	}
}

func TestWHSIntervalLineagesStayDistinct(t *testing.T) {
	// Same sub-stream, two lineages (Fig. 3's split-interval case):
	// output batches must keep separate weights.
	pairs := mkPairs(
		pairSpec{"s", 1.5, 60},
		pairSpec{"s", 3.0, 40},
	)
	out := NewWHS(xrand.New(2)).SampleInterval(pairs, 20)
	if len(out) != 2 {
		t.Fatalf("got %d output batches, want 2 lineages", len(out))
	}
	want := 1.5*60 + 3.0*40
	if got := estimatedCount(out); math.Abs(got-want) > 1e-9 {
		t.Fatalf("estimated count = %g, want %g", got, want)
	}
}

func TestWHSIntervalZeroBudget(t *testing.T) {
	pairs := mkPairs(pairSpec{"a", 1, 100})
	if out := NewWHS(xrand.New(3)).SampleInterval(pairs, 0); out != nil {
		t.Fatalf("zero budget produced %d batches", len(out))
	}
}

func TestWHSIntervalSkipsEmptyPairs(t *testing.T) {
	pairs := []stream.Batch{
		{Source: "a", Weight: 2, Items: nil},
		{Source: "b", Weight: 1, Items: mkItems("b", 5)},
	}
	out := NewWHS(xrand.New(4)).SampleInterval(pairs, 10)
	if len(out) != 1 || out[0].Source != "b" {
		t.Fatalf("empty pair not skipped: %v", out)
	}
}

func TestParallelWHSIntervalInvariant(t *testing.T) {
	pairs := mkPairs(
		pairSpec{"a", 2, 500},
		pairSpec{"b", 1, 300},
	)
	out := NewParallelWHS(4, 9).SampleInterval(pairs, 100)
	want := 2.0*500 + 1.0*300
	if got := estimatedCount(out); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("estimated count = %g, want %g", got, want)
	}
}

func TestCoinFlipIntervalBudgetDriven(t *testing.T) {
	pairs := mkPairs(pairSpec{"a", 1, 5000}, pairSpec{"b", 1, 5000})
	out := NewCoinFlip(xrand.New(5)).SampleInterval(pairs, 1000) // p = 0.1
	kept := 0
	for _, b := range out {
		kept += len(b.Items)
		if math.Abs(b.Weight-10) > 1e-9 {
			t.Fatalf("weight = %g, want 10", b.Weight)
		}
	}
	if kept < 800 || kept > 1200 {
		t.Fatalf("kept %d, want ~1000", kept)
	}
}

func TestCoinFlipIntervalScalesLineageWeight(t *testing.T) {
	pairs := mkPairs(pairSpec{"a", 4, 10000})
	out := NewCoinFlipFraction(xrand.New(6), 0.5).SampleInterval(pairs, 0)
	if len(out) != 1 {
		t.Fatalf("got %d batches", len(out))
	}
	if out[0].Weight != 8 { // W_in / p = 4 / 0.5
		t.Fatalf("weight = %g, want 8", out[0].Weight)
	}
}

func TestCoinFlipIntervalEmpty(t *testing.T) {
	if out := NewCoinFlip(xrand.New(7)).SampleInterval(nil, 100); out != nil {
		t.Fatalf("empty Ψ produced %v", out)
	}
}

func TestPassthroughIntervalIdentity(t *testing.T) {
	pairs := mkPairs(pairSpec{"a", 2.5, 7}, pairSpec{"b", 1, 3})
	var native Passthrough
	out := native.SampleInterval(pairs, 0)
	if len(out) != 2 {
		t.Fatalf("got %d batches, want 2", len(out))
	}
	if out[0].Weight != 2.5 || len(out[0].Items) != 7 {
		t.Fatalf("native execution altered the stream: %+v", out[0])
	}
}

func TestPassthroughIntervalDropsEmpty(t *testing.T) {
	pairs := []stream.Batch{{Source: "a", Weight: 1}}
	var native Passthrough
	if out := native.SampleInterval(pairs, 0); len(out) != 0 {
		t.Fatalf("empty pair forwarded: %v", out)
	}
}
