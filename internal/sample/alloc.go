package sample

import (
	"sort"

	"github.com/approxiot/approxiot/internal/stream"
)

// Allocator decides the per-sub-stream reservoir sizes N_i given the node's
// total sample budget — the getSampleSize step of Algorithm 1 (line 7). The
// paper leaves the policy open; this package provides the fair equal split
// used by the evaluation plus alternatives benchmarked in the allocation
// ablation (DESIGN.md §7).
type Allocator interface {
	// Allocate splits total across the observed sub-stream item counts.
	// Implementations must be deterministic, never return a negative size,
	// and — unless total <= 0 — give every sub-stream at least one slot so
	// no stratum is neglected (§III-A).
	Allocate(total int, counts map[stream.SourceID]int) map[stream.SourceID]int
}

// sortedSources returns map keys in sorted order for deterministic iteration.
func sortedSources(counts map[stream.SourceID]int) []stream.SourceID {
	sources := make([]stream.SourceID, 0, len(counts))
	for src := range counts {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	return sources
}

// EqualSplit divides the budget evenly across sub-streams, the fairness
// policy stratified sampling is built on: every stratum gets the same
// reservoir regardless of its arrival rate, so infrequent-but-significant
// sub-streams (Fig. 10c's sub-stream D) are never starved.
type EqualSplit struct{}

var _ Allocator = EqualSplit{}

// Allocate gives each sub-stream total/k slots, distributing the remainder
// to the lexicographically-first sub-streams, with a minimum of one slot.
func (EqualSplit) Allocate(total int, counts map[stream.SourceID]int) map[stream.SourceID]int {
	alloc := make(map[stream.SourceID]int, len(counts))
	k := len(counts)
	if k == 0 {
		return alloc
	}
	if total <= 0 {
		for src := range counts {
			alloc[src] = 0
		}
		return alloc
	}
	base, rem := total/k, total%k
	for i, src := range sortedSources(counts) {
		n := base
		if i < rem {
			n++
		}
		if n < 1 {
			n = 1
		}
		alloc[src] = n
	}
	return alloc
}

// WaterFill allocates max-min fairly: every sub-stream receives an equal
// share, and budget a small sub-stream cannot use (its count is below the
// share) is redistributed to the larger ones. This keeps the node's total
// sample at exactly min(budget, input) even when sub-stream rates are very
// unbalanced (Fig. 10's settings), while preserving EqualSplit's guarantee
// that no sub-stream is neglected.
type WaterFill struct{}

var _ Allocator = WaterFill{}

// Allocate implements max-min fair (water-filling) allocation.
func (WaterFill) Allocate(total int, counts map[stream.SourceID]int) map[stream.SourceID]int {
	alloc := make(map[stream.SourceID]int, len(counts))
	if len(counts) == 0 {
		return alloc
	}
	if total <= 0 {
		for src := range counts {
			alloc[src] = 0
		}
		return alloc
	}
	// Sort sources by ascending count; satisfy small sub-streams in full,
	// then split what remains evenly among the rest.
	sources := sortedSources(counts)
	sort.SliceStable(sources, func(i, j int) bool { return counts[sources[i]] < counts[sources[j]] })
	remaining := total
	for i, src := range sources {
		left := len(sources) - i
		share := remaining / left
		if rem := remaining % left; rem > 0 {
			share++ // spread the remainder across the first few
		}
		n := counts[src]
		if n > share {
			n = share
		}
		if n < 1 {
			n = 1 // fairness floor: never neglect a sub-stream
		}
		alloc[src] = n
		remaining -= n
		if remaining < 0 {
			remaining = 0
		}
	}
	return alloc
}

// ValueAware is an optional Allocator extension: policies that use the
// sub-streams' observed value dispersion in addition to their counts.
// WHSampler computes per-stratum standard deviations and prefers this
// method when the configured allocator implements it.
type ValueAware interface {
	Allocator
	// AllocateByVariance splits total using both counts and per-stratum
	// sample standard deviations.
	AllocateByVariance(total int, counts map[stream.SourceID]int, stddev map[stream.SourceID]float64) map[stream.SourceID]int
}

// Neyman implements optimal (Neyman) allocation, the classical
// variance-minimizing split for stratified estimation of a total:
// N_i ∝ c_i·s_i. Sub-streams that are large *and* volatile get bigger
// reservoirs; constant-valued sub-streams need almost none. This is an
// extension beyond the paper (its evaluation uses fair allocation), wired
// into the allocation ablation.
type Neyman struct{}

var _ ValueAware = Neyman{}

// Allocate falls back to water-filling when no variances are available.
func (Neyman) Allocate(total int, counts map[stream.SourceID]int) map[stream.SourceID]int {
	return WaterFill{}.Allocate(total, counts)
}

// AllocateByVariance splits total with N_i ∝ c_i·s_i (minimum one slot).
// Zero-variance strata still receive a floor so their counts stay exact.
func (Neyman) AllocateByVariance(total int, counts map[stream.SourceID]int, stddev map[stream.SourceID]float64) map[stream.SourceID]int {
	alloc := make(map[stream.SourceID]int, len(counts))
	if len(counts) == 0 {
		return alloc
	}
	if total <= 0 {
		for src := range counts {
			alloc[src] = 0
		}
		return alloc
	}
	var denom float64
	for src, c := range counts {
		denom += float64(c) * stddev[src]
	}
	if denom == 0 {
		return WaterFill{}.Allocate(total, counts)
	}
	remaining := total
	for _, src := range sortedSources(counts) {
		n := int(float64(total)*float64(counts[src])*stddev[src]/denom + 0.5)
		if n < 1 {
			n = 1
		}
		if n > counts[src] {
			n = counts[src] // a census of the stratum is enough
		}
		if n > remaining {
			n = remaining
		}
		if n < 1 {
			n = 1
		}
		alloc[src] = n
		remaining -= n
		if remaining < 0 {
			remaining = 0
		}
	}
	return alloc
}

// Proportional sizes each reservoir in proportion to the sub-stream's item
// count in the interval. This mimics what simple random sampling achieves in
// expectation and serves as the contrast arm of the allocation ablation: it
// starves rare sub-streams exactly the way Fig. 10c punishes.
type Proportional struct{}

var _ Allocator = Proportional{}

// Allocate gives each sub-stream round(total·c_i/Σc) slots, minimum one.
func (Proportional) Allocate(total int, counts map[stream.SourceID]int) map[stream.SourceID]int {
	alloc := make(map[stream.SourceID]int, len(counts))
	if len(counts) == 0 {
		return alloc
	}
	if total <= 0 {
		for src := range counts {
			alloc[src] = 0
		}
		return alloc
	}
	var sum int
	for _, c := range counts {
		sum += c
	}
	if sum == 0 {
		for src := range counts {
			alloc[src] = 1
		}
		return alloc
	}
	remaining := total
	sources := sortedSources(counts)
	for _, src := range sources {
		n := int(float64(total)*float64(counts[src])/float64(sum) + 0.5)
		if n < 1 {
			n = 1
		}
		if n > remaining {
			n = remaining
		}
		if n < 1 {
			n = 1 // fairness floor even when the budget has run out
		}
		alloc[src] = n
		remaining -= n
	}
	return alloc
}
