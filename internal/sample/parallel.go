package sample

import (
	"sync"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

// ParallelWHS implements the §III-E distributed-execution extension of
// weighted hierarchical sampling: each sub-stream is handled by w workers,
// each maintaining a local reservoir of size at most N_i/w and a local item
// counter for weight calculation. Workers never synchronize during an
// interval; their per-worker (W^out, sample) pairs are simply concatenated,
// and because the Eq. 8 invariant holds per worker it holds for the union.
//
// Items are spread across workers round-robin per sub-stream, matching the
// paper's "each worker node samples an equal portion of items".
type ParallelWHS struct {
	workers int
	alloc   Allocator
	rngs    []*xrand.Rand
	// concurrent enables real goroutine fan-out; with it off the workers
	// run sequentially but produce bit-identical output, which the
	// equivalence tests rely on.
	concurrent bool
}

var _ Sampler = (*ParallelWHS)(nil)

// ParallelOption customizes a ParallelWHS.
type ParallelOption func(*ParallelWHS)

// WithParallelAllocator overrides the budget-split policy (default EqualSplit).
func WithParallelAllocator(a Allocator) ParallelOption {
	return func(p *ParallelWHS) { p.alloc = a }
}

// WithConcurrency toggles real goroutine execution of the workers.
func WithConcurrency(on bool) ParallelOption {
	return func(p *ParallelWHS) { p.concurrent = on }
}

// NewParallelWHS returns a sampler with w workers. Each worker derives its
// own decorrelated generator from seed, so results do not depend on
// goroutine interleaving.
func NewParallelWHS(workers int, seed uint64, opts ...ParallelOption) *ParallelWHS {
	if workers < 1 {
		workers = 1
	}
	p := &ParallelWHS{workers: workers, alloc: EqualSplit{}}
	p.rngs = make([]*xrand.Rand, workers)
	for i := range p.rngs {
		p.rngs[i] = xrand.Split(seed, uint64(i))
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// Workers returns the configured worker count.
func (p *ParallelWHS) Workers() int { return p.workers }

// Sample stratifies items, splits each sub-stream round-robin across the
// workers, reservoir-samples each share with capacity N_i/w, and emits one
// weighted batch per (sub-stream, worker) pair.
func (p *ParallelWHS) Sample(items []stream.Item, weights stream.WeightMap, budget int) []stream.Batch {
	if len(items) == 0 {
		return nil
	}
	strata, sources := stratify(items)
	counts := make(map[stream.SourceID]int, len(strata))
	for src, its := range strata {
		counts[src] = len(its)
	}
	sizes := p.alloc.Allocate(budget, counts)

	// shares[w] collects this worker's slice of every sub-stream.
	type task struct {
		src   stream.SourceID
		items []stream.Item
		cap   int
		wIn   float64
	}
	tasks := make([][]task, p.workers)
	for _, src := range sources {
		ni := sizes[src]
		if ni <= 0 {
			continue
		}
		perWorker := ni / p.workers
		if perWorker < 1 {
			perWorker = 1 // never below one slot, same floor as EqualSplit
		}
		shares := make([][]stream.Item, p.workers)
		for i, it := range strata[src] {
			w := i % p.workers
			shares[w] = append(shares[w], it)
		}
		wIn := weights.Get(src)
		for w := 0; w < p.workers; w++ {
			if len(shares[w]) == 0 {
				continue
			}
			tasks[w] = append(tasks[w], task{src: src, items: shares[w], cap: perWorker, wIn: wIn})
		}
	}

	results := make([][]stream.Batch, p.workers)
	run := func(w int) {
		rng := p.rngs[w]
		for _, t := range tasks[w] {
			res := NewReservoir(t.cap, rng)
			res.AddAll(t.items)
			results[w] = append(results[w], stream.Batch{
				Source: t.src,
				Weight: t.wIn * res.Weight(),
				Items:  res.Items(),
			})
		}
	}
	if p.concurrent {
		var wg sync.WaitGroup
		for w := 0; w < p.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				run(w)
			}(w)
		}
		wg.Wait()
	} else {
		for w := 0; w < p.workers; w++ {
			run(w)
		}
	}

	var out []stream.Batch
	for w := 0; w < p.workers; w++ {
		out = append(out, results[w]...)
	}
	return out
}
