package sample

import (
	"testing"
	"testing/quick"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

func sumAlloc(alloc map[stream.SourceID]int) int {
	total := 0
	for _, n := range alloc {
		total += n
	}
	return total
}

func TestWaterFillExactBudgetWhenOversubscribed(t *testing.T) {
	counts := map[stream.SourceID]int{"a": 1000, "b": 1000, "c": 1000}
	alloc := WaterFill{}.Allocate(600, counts)
	if got := sumAlloc(alloc); got != 600 {
		t.Fatalf("allocated %d, want exactly 600", got)
	}
	for src, n := range alloc {
		if n < 199 || n > 201 {
			t.Fatalf("alloc[%s] = %d, want ~200 (fair)", src, n)
		}
	}
}

func TestWaterFillRedistributesUnusedShare(t *testing.T) {
	// Setting1-style imbalance: tiny sub-streams can't use their share;
	// the surplus must flow to the big ones.
	counts := map[stream.SourceID]int{"A": 50000, "B": 25000, "C": 12500, "D": 625}
	budget := 52875 // 60% of the total 88125
	alloc := WaterFill{}.Allocate(budget, counts)
	if got := sumAlloc(alloc); got != budget {
		t.Fatalf("allocated %d, want exactly %d", got, budget)
	}
	if alloc["D"] != 625 {
		t.Fatalf("alloc[D] = %d, want full census 625", alloc["D"])
	}
	if alloc["C"] != 12500 {
		t.Fatalf("alloc[C] = %d, want full census 12500", alloc["C"])
	}
	// A and B split the rest roughly evenly (both above the water level).
	if alloc["A"] < 19000 || alloc["B"] < 19000 {
		t.Fatalf("big sub-streams starved: A=%d B=%d", alloc["A"], alloc["B"])
	}
}

func TestWaterFillBudgetExceedsInput(t *testing.T) {
	counts := map[stream.SourceID]int{"a": 10, "b": 20}
	alloc := WaterFill{}.Allocate(1000, counts)
	if alloc["a"] < 10 || alloc["b"] < 20 {
		t.Fatalf("census denied under surplus budget: %v", alloc)
	}
}

func TestWaterFillZeroBudgetAndEmpty(t *testing.T) {
	alloc := WaterFill{}.Allocate(0, map[stream.SourceID]int{"a": 5})
	if alloc["a"] != 0 {
		t.Fatalf("zero budget allocated %d", alloc["a"])
	}
	empty := WaterFill{}.Allocate(10, nil)
	if len(empty) != 0 {
		t.Fatalf("empty counts produced %v", empty)
	}
}

func TestWaterFillNeverNeglects(t *testing.T) {
	f := func(seed uint64, budgetRaw uint16) bool {
		rng := xrand.New(seed)
		counts := map[stream.SourceID]int{}
		k := 1 + rng.Intn(8)
		for i := 0; i < k; i++ {
			counts[stream.SourceID(string(rune('a'+i)))] = 1 + rng.Intn(10000)
		}
		budget := 1 + int(budgetRaw)
		alloc := WaterFill{}.Allocate(budget, counts)
		for _, n := range alloc {
			if n < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNeymanFavorsVolatileStrata(t *testing.T) {
	counts := map[stream.SourceID]int{"calm": 1000, "wild": 1000}
	stddev := map[stream.SourceID]float64{"calm": 1, "wild": 99}
	alloc := Neyman{}.AllocateByVariance(500, counts, stddev)
	if alloc["wild"] <= alloc["calm"] {
		t.Fatalf("Neyman gave wild=%d calm=%d, want wild ≫ calm", alloc["wild"], alloc["calm"])
	}
	if alloc["calm"] < 1 {
		t.Fatal("calm stratum neglected")
	}
}

func TestNeymanCapsAtCensus(t *testing.T) {
	counts := map[stream.SourceID]int{"tiny": 10, "big": 10000}
	stddev := map[stream.SourceID]float64{"tiny": 1000, "big": 1}
	alloc := Neyman{}.AllocateByVariance(5000, counts, stddev)
	if alloc["tiny"] > 10 {
		t.Fatalf("allocated %d slots to a 10-item stratum", alloc["tiny"])
	}
}

func TestNeymanZeroVarianceFallsBack(t *testing.T) {
	counts := map[stream.SourceID]int{"a": 100, "b": 100}
	stddev := map[stream.SourceID]float64{"a": 0, "b": 0}
	alloc := Neyman{}.AllocateByVariance(50, counts, stddev)
	if sumAlloc(alloc) == 0 {
		t.Fatal("zero-variance strata got nothing; want water-fill fallback")
	}
}

func TestNeymanPlainAllocateDelegates(t *testing.T) {
	counts := map[stream.SourceID]int{"a": 100, "b": 100}
	got := Neyman{}.Allocate(50, counts)
	want := WaterFill{}.Allocate(50, counts)
	for src := range counts {
		if got[src] != want[src] {
			t.Fatalf("Allocate = %v, want water-fill %v", got, want)
		}
	}
}

func TestWHSWithNeymanAllocator(t *testing.T) {
	// A calm stratum (constant values) and a wild one: Neyman should put
	// nearly all budget on the wild one while keeping both estimable.
	rng := xrand.New(4)
	var pairs []stream.Batch
	calm := make([]stream.Item, 2000)
	wild := make([]stream.Item, 2000)
	for i := range calm {
		calm[i] = stream.Item{Source: "calm", Value: 100}
		wild[i] = stream.Item{Source: "wild", Value: rng.Normal(100, 80)}
	}
	pairs = append(pairs, stream.Batch{Source: "calm", Weight: 1, Items: calm})
	pairs = append(pairs, stream.Batch{Source: "wild", Weight: 1, Items: wild})

	s := NewWHS(xrand.New(5), WithAllocator(Neyman{}))
	out := s.SampleInterval(pairs, 400)
	var nCalm, nWild int
	for _, b := range out {
		switch b.Source {
		case "calm":
			nCalm += len(b.Items)
		case "wild":
			nWild += len(b.Items)
		}
	}
	if nWild <= nCalm {
		t.Fatalf("Neyman WHS kept calm=%d wild=%d, want wild ≫ calm", nCalm, nWild)
	}
	// Invariant must still hold.
	want := 4000.0
	if got := estimatedCount(out); got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("estimated count = %g, want %g", got, want)
	}
}
