// Package sample implements ApproxIoT's sampling algorithms and the
// baselines the paper evaluates against:
//
//   - Reservoir: Vitter's Algorithm R (§II-B2), the building block.
//   - WHSampler: the paper's core contribution, weighted hierarchical
//     stratified reservoir sampling (Algorithm 1). Runs independently on
//     every node of the edge tree with no cross-node coordination.
//   - ParallelWHS: the §III-E distributed-execution extension (w workers per
//     sub-stream, each with a reservoir of at most N_i/w).
//   - CoinFlip: the simple-random-sampling baseline [19].
//   - Passthrough: the native (no sampling) baseline.
//
// All samplers implement Sampler, so an edge node is configured with a
// strategy the same way the prototype swapped Kafka processors.
package sample

import (
	"sort"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Sampler is the contract edge nodes drive once per time interval
// (Algorithm 2, lines 5–19): pairs is the Ψ store — the (W^in, items) pairs
// received in the interval, each pair one weight lineage of one sub-stream —
// and budget is the interval's total sample size from the node's cost
// function. The result is the interval's outgoing (W^out, sample) batches.
//
// Implementations must preserve the Eq. 8 invariant per pair:
// Σ |out.Items|·out.Weight over a pair's outputs = in.Weight·|in.Items|.
type Sampler interface {
	SampleInterval(pairs []stream.Batch, budget int) []stream.Batch
}

// stratify groups items by source, preserving arrival order, and returns the
// sources in sorted order so all downstream iteration is deterministic.
func stratify(items []stream.Item) (map[stream.SourceID][]stream.Item, []stream.SourceID) {
	strata := make(map[stream.SourceID][]stream.Item)
	for _, it := range items {
		strata[it.Source] = append(strata[it.Source], it)
	}
	sources := make([]stream.SourceID, 0, len(strata))
	for src := range strata {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	return strata, sources
}

// Passthrough implements the paper's native-execution baseline: every item is
// forwarded with its input weight unchanged.
type Passthrough struct{}

var _ Sampler = Passthrough{}

// Sample forwards all items grouped per sub-stream; budget is ignored.
func (Passthrough) Sample(items []stream.Item, weights stream.WeightMap, _ int) []stream.Batch {
	strata, sources := stratify(items)
	batches := make([]stream.Batch, 0, len(sources))
	for _, src := range sources {
		batches = append(batches, stream.Batch{
			Source: src,
			Weight: weights.Get(src),
			Items:  strata[src],
		})
	}
	return batches
}

// CoinFlip implements the simple random sampling baseline used throughout
// the paper's evaluation ("SRS"): every item independently survives a coin
// flip [19]. Kept items carry weight W^in/p so the root's Horvitz–Thompson
// estimate is unbiased; the variance, however, is unprotected against skewed
// sub-streams — the effect Figures 5 and 10 measure.
type CoinFlip struct {
	rng *xrand.Rand
	// fraction, when > 0, fixes the keep probability. Otherwise the
	// probability is derived per interval as budget/len(items), which
	// matches ApproxIoT's budget for a fair comparison (§V-B).
	fraction float64
}

var _ Sampler = (*CoinFlip)(nil)

// NewCoinFlip returns an SRS sampler whose keep probability tracks the
// interval budget (expected sample size = budget).
func NewCoinFlip(rng *xrand.Rand) *CoinFlip {
	return &CoinFlip{rng: rng}
}

// NewCoinFlipFraction returns an SRS sampler with a fixed keep probability p,
// clamped to (0, 1].
func NewCoinFlipFraction(rng *xrand.Rand, p float64) *CoinFlip {
	if p <= 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &CoinFlip{rng: rng, fraction: p}
}

// Sample keeps each item with the configured probability.
func (c *CoinFlip) Sample(items []stream.Item, weights stream.WeightMap, budget int) []stream.Batch {
	if len(items) == 0 {
		return nil
	}
	p := c.fraction
	if p == 0 {
		p = float64(budget) / float64(len(items))
		if p > 1 {
			p = 1
		}
	}
	if p <= 0 {
		return nil
	}
	strata, sources := stratify(items)
	batches := make([]stream.Batch, 0, len(sources))
	for _, src := range sources {
		var kept []stream.Item
		for _, it := range strata[src] {
			if c.rng.Bernoulli(p) {
				kept = append(kept, it)
			}
		}
		if len(kept) == 0 {
			continue // sub-stream silently lost — SRS's failure mode
		}
		batches = append(batches, stream.Batch{
			Source: src,
			Weight: weights.Get(src) / p,
			Items:  kept,
		})
	}
	return batches
}
