package sample

import (
	"sort"

	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
)

// groupPairs clusters the interval's pairs by sub-stream, preserving their
// arrival order within each sub-stream, and returns sorted sources plus the
// per-sub-stream item counts for the allocator.
func groupPairs(pairs []stream.Batch) (map[stream.SourceID][]stream.Batch, []stream.SourceID, map[stream.SourceID]int) {
	bySource := make(map[stream.SourceID][]stream.Batch)
	counts := make(map[stream.SourceID]int)
	for _, p := range pairs {
		if len(p.Items) == 0 {
			continue
		}
		bySource[p.Source] = append(bySource[p.Source], p)
		counts[p.Source] += len(p.Items)
	}
	sources := make([]stream.SourceID, 0, len(bySource))
	for src := range bySource {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	return bySource, sources, counts
}

// stddevBySource computes each sub-stream's sample standard deviation over
// the interval's item values, for variance-aware allocators.
func stddevBySource(bySource map[stream.SourceID][]stream.Batch, sources []stream.SourceID) map[stream.SourceID]float64 {
	out := make(map[stream.SourceID]float64, len(sources))
	for _, src := range sources {
		var w stats.Welford
		for _, pair := range bySource[src] {
			for _, it := range pair.Items {
				w.Add(it.Value)
			}
		}
		out[src] = w.StdDev()
	}
	return out
}

// lineageShare splits a sub-stream's reservoir budget n across its lineages
// proportionally to their item counts, flooring at one slot each, so the
// sub-stream-level fairness of the allocator carries down to lineages.
func lineageShare(n, lineageCount, totalCount int) int {
	share := int(float64(n)*float64(lineageCount)/float64(totalCount) + 0.5)
	if share < 1 {
		share = 1
	}
	return share
}

// SampleInterval implements Algorithm 2's per-interval loop for weighted
// hierarchical sampling: the budget is allocated across sub-streams
// (fairly, per the Allocator), each sub-stream's share is divided over its
// weight lineages, and every lineage is reservoir-sampled with its weight
// updated per Eq. 1–2.
func (s *WHSampler) SampleInterval(pairs []stream.Batch, budget int) []stream.Batch {
	bySource, sources, counts := groupPairs(pairs)
	if len(sources) == 0 || budget <= 0 {
		return nil
	}
	var sizes map[stream.SourceID]int
	if va, ok := s.alloc.(ValueAware); ok {
		sizes = va.AllocateByVariance(budget, counts, stddevBySource(bySource, sources))
	} else {
		sizes = s.alloc.Allocate(budget, counts)
	}
	var out []stream.Batch
	for _, src := range sources {
		ni := sizes[src]
		if ni <= 0 {
			continue
		}
		total := counts[src]
		for _, pair := range bySource[src] {
			res := NewReservoir(lineageShare(ni, len(pair.Items), total), s.rng)
			res.AddAll(pair.Items)
			out = append(out, stream.Batch{
				Source: src,
				Weight: pair.Weight * res.Weight(),
				Items:  res.Items(),
			})
		}
	}
	return out
}

// SampleInterval implements the interval loop for the §III-E parallel
// sampler: identical allocation to WHSampler, with each lineage's share
// further split across the w workers.
func (p *ParallelWHS) SampleInterval(pairs []stream.Batch, budget int) []stream.Batch {
	bySource, sources, counts := groupPairs(pairs)
	if len(sources) == 0 || budget <= 0 {
		return nil
	}
	sizes := p.alloc.Allocate(budget, counts)
	var out []stream.Batch
	for _, src := range sources {
		ni := sizes[src]
		if ni <= 0 {
			continue
		}
		total := counts[src]
		for _, pair := range bySource[src] {
			share := lineageShare(ni, len(pair.Items), total)
			weights := stream.WeightMap{src: pair.Weight}
			out = append(out, p.Sample(pair.Items, weights, share)...)
		}
	}
	return out
}

// SampleInterval implements the interval loop for the SRS baseline: one coin
// flip per item at probability budget/|interval| (or the fixed fraction),
// with weights scaled by 1/p per lineage.
func (c *CoinFlip) SampleInterval(pairs []stream.Batch, budget int) []stream.Batch {
	total := 0
	for _, p := range pairs {
		total += len(p.Items)
	}
	if total == 0 {
		return nil
	}
	p := c.fraction
	if p == 0 {
		p = float64(budget) / float64(total)
		if p > 1 {
			p = 1
		}
	}
	if p <= 0 {
		return nil
	}
	var out []stream.Batch
	for _, pair := range pairs {
		var kept []stream.Item
		for _, it := range pair.Items {
			if c.rng.Bernoulli(p) {
				kept = append(kept, it)
			}
		}
		if len(kept) == 0 {
			continue
		}
		out = append(out, stream.Batch{
			Source: pair.Source,
			Weight: pair.Weight / p,
			Items:  kept,
		})
	}
	return out
}

// SampleInterval implements the interval loop for the native baseline:
// every pair is forwarded untouched.
func (Passthrough) SampleInterval(pairs []stream.Batch, _ int) []stream.Batch {
	out := make([]stream.Batch, 0, len(pairs))
	for _, p := range pairs {
		if len(p.Items) == 0 {
			continue
		}
		out = append(out, p)
	}
	return out
}
