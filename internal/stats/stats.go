// Package stats implements the statistics ApproxIoT's root node needs:
// streaming moments (Welford), the stratified variance estimators of the
// paper's §III-D (Equations 10–14), and confidence bounds from the
// "68-95-99.7" rule. It replaces the paper prototype's dependency on the
// Apache Commons Math library.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates count, mean and variance of a value stream in one pass
// using Welford's numerically-stable recurrence. The zero value is an empty
// accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into this one (Chan et al. parallel
// variance). Used by the §III-E parallel samplers to combine worker-local
// moments.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Sum returns the running total.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Variance returns the unbiased sample variance (n−1 denominator, Eq. 12),
// or 0 when fewer than two observations have been seen.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Confidence selects an error-bound level under the 68-95-99.7 rule [14]:
// the approximate result lies within z standard deviations of the exact
// result with the stated probability.
type Confidence int

// Confidence levels, in increasing width.
const (
	OneSigma   Confidence = 1 // 68%
	TwoSigma   Confidence = 2 // 95%
	ThreeSigma Confidence = 3 // 99.7%
)

// Z returns the number of standard deviations for the level.
func (c Confidence) Z() float64 {
	switch c {
	case OneSigma, TwoSigma, ThreeSigma:
		return float64(c)
	default:
		return float64(TwoSigma)
	}
}

// Probability returns the coverage probability for the level.
func (c Confidence) Probability() float64 {
	switch c {
	case OneSigma:
		return 0.68
	case ThreeSigma:
		return 0.997
	default:
		return 0.95
	}
}

// String implements fmt.Stringer ("95%" etc.).
func (c Confidence) String() string {
	return fmt.Sprintf("%g%%", c.Probability()*100)
}

// Stratum accumulates, at the root node, everything Equations 11–14 need for
// one sub-stream S_i: the moments of the sampled item values (ζ, mean, s²),
// the weighted sum estimate SUM_i (Eq. 3), and the estimated original count
// ĉ_{i,b} = Σ |I|·W^out, which Eq. 8 proves equals the ground-truth count.
type Stratum struct {
	moments     Welford
	weightedSum float64
	estCount    float64
}

// AddBatch folds one (W^out, I) pair from Θ into the stratum.
func (s *Stratum) AddBatch(weight float64, values []float64) {
	var sum float64
	for _, v := range values {
		s.moments.Add(v)
		sum += v
	}
	s.weightedSum += sum * weight
	s.estCount += float64(len(values)) * weight
}

// AddWeighted folds a single item carrying weight into the stratum.
func (s *Stratum) AddWeighted(weight, value float64) {
	s.moments.Add(value)
	s.weightedSum += value * weight
	s.estCount += weight
}

// Sum returns SUM_i, the Eq. 3 estimate of the sub-stream total.
func (s *Stratum) Sum() float64 { return s.weightedSum }

// Mean returns the estimated sub-stream mean SUM_i / ĉ_{i,b}.
func (s *Stratum) Mean() float64 {
	if s.estCount == 0 {
		return 0
	}
	return s.weightedSum / s.estCount
}

// SampleCount returns ζ, the number of sampled items seen at the root.
func (s *Stratum) SampleCount() int64 { return s.moments.N() }

// EstimatedCount returns ĉ_{i,b}, the estimated original item count.
func (s *Stratum) EstimatedCount() float64 { return s.estCount }

// SumVariance returns V̂ar(SUM_i) = ĉ·(ĉ−ζ)·s²/ζ (the Eq. 11 summand).
// With ζ < 2 the sample variance is undefined and the term is 0; the finite-
// population factor (ĉ−ζ) is clamped at 0 so rounding in ĉ never produces a
// negative variance.
func (s *Stratum) SumVariance() float64 {
	zeta := float64(s.moments.N())
	if zeta < 2 {
		return 0
	}
	fpc := s.estCount - zeta
	if fpc < 0 {
		fpc = 0
	}
	return s.estCount * fpc * s.moments.Variance() / zeta
}

// meanVarianceTerm returns V̂ar(MEAN_i) = s²/ζ · (ĉ−ζ)/ĉ (Eq. 14 before the
// φ² factor).
func (s *Stratum) meanVarianceTerm() float64 {
	zeta := float64(s.moments.N())
	if zeta < 2 || s.estCount <= 0 {
		return 0
	}
	fpc := (s.estCount - zeta) / s.estCount
	if fpc < 0 {
		fpc = 0
	}
	return s.moments.Variance() / zeta * fpc
}

// Estimate is an approximate query answer with its estimated variance.
type Estimate struct {
	Value    float64
	Variance float64
}

// Bound returns the half-width of the confidence interval at level c, i.e.
// z·σ̂. Results are reported as Value ± Bound.
func (e Estimate) Bound(c Confidence) float64 {
	return c.Z() * math.Sqrt(e.Variance)
}

// Interval returns the confidence interval [lo, hi] at level c.
func (e Estimate) Interval(c Confidence) (lo, hi float64) {
	b := e.Bound(c)
	return e.Value - b, e.Value + b
}

// String formats the estimate at 95% confidence, the form the paper's root
// node writes ("result ± error").
func (e Estimate) String() string {
	return fmt.Sprintf("%.6g ± %.6g", e.Value, e.Bound(TwoSigma))
}

// Sum combines per-stratum estimates into SUM* (Eq. 4) with its variance
// (Eq. 10 + Eq. 11): strata are sampled independently, so variances add.
func Sum(strata []*Stratum) Estimate {
	var est Estimate
	for _, s := range strata {
		est.Value += s.Sum()
		est.Variance += s.SumVariance()
	}
	return est
}

// Mean combines per-stratum estimates into MEAN* (Eq. 13) with its variance
// (Eq. 14): MEAN* = Σ φ_i·MEAN_i with φ_i = ĉ_i / Σ ĉ, and
// V̂ar(MEAN*) = Σ φ_i²·V̂ar(MEAN_i).
func Mean(strata []*Stratum) Estimate {
	var total float64
	for _, s := range strata {
		total += s.EstimatedCount()
	}
	if total == 0 {
		return Estimate{}
	}
	var est Estimate
	for _, s := range strata {
		phi := s.EstimatedCount() / total
		est.Value += phi * s.Mean()
		est.Variance += phi * phi * s.meanVarianceTerm()
	}
	return est
}

// Count combines per-stratum estimated counts into the estimated total
// number of items across all sub-streams. Its value is exact under Eq. 8
// (the count invariant), so the variance is reported as 0.
func Count(strata []*Stratum) Estimate {
	var est Estimate
	for _, s := range strata {
		est.Value += s.EstimatedCount()
	}
	return est
}

// AccuracyLoss returns |approx − exact| / |exact|, the paper's accuracy-loss
// metric (§V-A). A zero exact value with nonzero approx yields +Inf; both
// zero yields 0.
func AccuracyLoss(approx, exact float64) float64 {
	if exact == 0 {
		if approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(approx-exact) / math.Abs(exact)
}
