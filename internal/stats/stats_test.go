package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/approxiot/approxiot/internal/xrand"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordAgainstDirectComputation(t *testing.T) {
	values := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, v := range values {
		w.Add(v)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %g, want 5", w.Mean())
	}
	// Sample variance of the classic 2,4,4,4,5,5,7,9 set: Σ(x−5)² = 32, /7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g, want %g", w.Variance(), 32.0/7.0)
	}
	if !almostEqual(w.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %g, want 40", w.Sum())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Mean() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford not empty")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Fatalf("Variance with n=1 = %g, want 0", w.Variance())
	}
	if w.Mean() != 3 {
		t.Fatalf("Mean = %g, want 3", w.Mean())
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Classic catastrophic-cancellation case: large offset, small spread.
	var w Welford
	for _, v := range []float64{1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16} {
		w.Add(v)
	}
	if !almostEqual(w.Variance(), 30, 1e-6) {
		t.Fatalf("Variance = %g, want 30", w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	r := xrand.New(3)
	var all, left, right Welford
	for i := 0; i < 1000; i++ {
		v := r.Normal(50, 12)
		all.Add(v)
		if i%2 == 0 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	left.Merge(right)
	if left.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), all.N())
	}
	if !almostEqual(left.Mean(), all.Mean(), 1e-9) {
		t.Fatalf("merged Mean = %g, want %g", left.Mean(), all.Mean())
	}
	if !almostEqual(left.Variance(), all.Variance(), 1e-6) {
		t.Fatalf("merged Variance = %g, want %g", left.Variance(), all.Variance())
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.Add(5)
	b.Add(7)
	a.Merge(b) // empty <- non-empty
	if a.N() != 2 || !almostEqual(a.Mean(), 6, 1e-12) {
		t.Fatalf("merge into empty: n=%d mean=%g", a.N(), a.Mean())
	}
	var c Welford
	a.Merge(c) // non-empty <- empty
	if a.N() != 2 || !almostEqual(a.Mean(), 6, 1e-12) {
		t.Fatalf("merge of empty changed accumulator: n=%d mean=%g", a.N(), a.Mean())
	}
}

func TestConfidenceLevels(t *testing.T) {
	tests := []struct {
		c    Confidence
		z    float64
		p    float64
		name string
	}{
		{OneSigma, 1, 0.68, "68%"},
		{TwoSigma, 2, 0.95, "95%"},
		{ThreeSigma, 3, 0.997, "99.7%"},
		{Confidence(0), 2, 0.95, "95%"}, // unknown defaults to two sigma
	}
	for _, tc := range tests {
		if tc.c.Z() != tc.z {
			t.Errorf("%v.Z() = %g, want %g", tc.c, tc.c.Z(), tc.z)
		}
		if tc.c.Probability() != tc.p {
			t.Errorf("%v.Probability() = %g, want %g", tc.c, tc.c.Probability(), tc.p)
		}
		if tc.c.String() != tc.name {
			t.Errorf("String() = %q, want %q", tc.c.String(), tc.name)
		}
	}
}

func TestStratumPaperFigure3Example(t *testing.T) {
	// Fig. 3: Θ at root C holds (w=3, {item 5}) and (w=3, {item 3});
	// the paper computes the estimated sub-stream sum as 3·5 + 3·3 = 24.
	var s Stratum
	s.AddBatch(3, []float64{5})
	s.AddBatch(3, []float64{3})
	if got := s.Sum(); got != 24 {
		t.Fatalf("Sum = %g, want 24 (paper's Fig. 3 worked example)", got)
	}
	// ĉ = 1·3 + 1·3 = 6 — exactly the six original items at node A.
	if got := s.EstimatedCount(); got != 6 {
		t.Fatalf("EstimatedCount = %g, want 6", got)
	}
	if got := s.SampleCount(); got != 2 {
		t.Fatalf("SampleCount = %d, want 2", got)
	}
}

func TestStratumAddWeightedMatchesAddBatch(t *testing.T) {
	var a, b Stratum
	a.AddBatch(2.5, []float64{1, 2, 3})
	for _, v := range []float64{1, 2, 3} {
		b.AddWeighted(2.5, v)
	}
	if a.Sum() != b.Sum() || a.EstimatedCount() != b.EstimatedCount() || a.SampleCount() != b.SampleCount() {
		t.Fatalf("AddWeighted diverges from AddBatch: %+v vs %+v", a, b)
	}
}

func TestSumVarianceHandComputed(t *testing.T) {
	// ζ=4 samples {2,4,6,8} each with weight 2.5 → ĉ=10, s²=20/3.
	// Eq. 11: ĉ(ĉ−ζ)s²/ζ = 10·6·(20/3)/4 = 100.
	var s Stratum
	s.AddBatch(2.5, []float64{2, 4, 6, 8})
	if !almostEqual(s.SumVariance(), 100, 1e-9) {
		t.Fatalf("SumVariance = %g, want 100", s.SumVariance())
	}
}

func TestSumVarianceZeroWhenFullSample(t *testing.T) {
	// Weight 1 everywhere means the reservoir kept everything: ĉ = ζ and
	// the finite-population correction zeroes the variance.
	var s Stratum
	s.AddBatch(1, []float64{1, 5, 9, 13})
	if got := s.SumVariance(); got != 0 {
		t.Fatalf("SumVariance = %g, want 0 for a census", got)
	}
}

func TestSumVarianceDegenerateCounts(t *testing.T) {
	var s Stratum
	if s.SumVariance() != 0 {
		t.Fatal("empty stratum variance != 0")
	}
	s.AddBatch(10, []float64{4})
	if s.SumVariance() != 0 {
		t.Fatal("single-sample stratum variance != 0 (undefined s²)")
	}
}

func TestSumCombinesStrataIndependently(t *testing.T) {
	var a, b Stratum
	a.AddBatch(2, []float64{1, 3})   // sum 8, ĉ 4
	b.AddBatch(4, []float64{10, 20}) // sum 120, ĉ 8
	est := Sum([]*Stratum{&a, &b})
	if est.Value != 128 {
		t.Fatalf("Sum value = %g, want 128", est.Value)
	}
	wantVar := a.SumVariance() + b.SumVariance() // Eq. 10: variances add
	if !almostEqual(est.Variance, wantVar, 1e-9) {
		t.Fatalf("Sum variance = %g, want %g", est.Variance, wantVar)
	}
}

func TestMeanHandComputed(t *testing.T) {
	// Stratum A: ĉ=4, mean 2. Stratum B: ĉ=8, mean 15.
	// MEAN* = (4·2 + 8·15)/12 = 128/12.
	var a, b Stratum
	a.AddBatch(2, []float64{1, 3})
	b.AddBatch(4, []float64{10, 20})
	est := Mean([]*Stratum{&a, &b})
	if !almostEqual(est.Value, 128.0/12.0, 1e-9) {
		t.Fatalf("Mean value = %g, want %g", est.Value, 128.0/12.0)
	}
	if est.Variance <= 0 {
		t.Fatalf("Mean variance = %g, want > 0", est.Variance)
	}
}

func TestMeanEmpty(t *testing.T) {
	if est := Mean(nil); est.Value != 0 || est.Variance != 0 {
		t.Fatalf("Mean(nil) = %+v, want zero estimate", est)
	}
}

func TestCountSumsEstimatedCounts(t *testing.T) {
	var a, b Stratum
	a.AddBatch(3, []float64{1, 1})
	b.AddBatch(1, []float64{1})
	est := Count([]*Stratum{&a, &b})
	if est.Value != 7 {
		t.Fatalf("Count = %g, want 7", est.Value)
	}
	if est.Variance != 0 {
		t.Fatalf("Count variance = %g, want 0 (Eq. 8 invariant)", est.Variance)
	}
}

func TestEstimateBoundAndInterval(t *testing.T) {
	e := Estimate{Value: 100, Variance: 25} // σ = 5
	if got := e.Bound(OneSigma); got != 5 {
		t.Fatalf("OneSigma bound = %g, want 5", got)
	}
	if got := e.Bound(ThreeSigma); got != 15 {
		t.Fatalf("ThreeSigma bound = %g, want 15", got)
	}
	lo, hi := e.Interval(TwoSigma)
	if lo != 90 || hi != 110 {
		t.Fatalf("Interval = [%g,%g], want [90,110]", lo, hi)
	}
}

func TestAccuracyLoss(t *testing.T) {
	tests := []struct {
		approx, exact, want float64
	}{
		{100, 100, 0},
		{90, 100, 0.1},
		{110, 100, 0.1},
		{-90, -100, 0.1},
		{0, 0, 0},
	}
	for _, tc := range tests {
		if got := AccuracyLoss(tc.approx, tc.exact); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("AccuracyLoss(%g,%g) = %g, want %g", tc.approx, tc.exact, got, tc.want)
		}
	}
	if got := AccuracyLoss(5, 0); !math.IsInf(got, 1) {
		t.Errorf("AccuracyLoss(5,0) = %g, want +Inf", got)
	}
}

// Property: merging any split of a value stream reproduces sequential moments.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(seed uint64, cutRaw uint8) bool {
		r := xrand.New(seed)
		n := 64 + int(cutRaw)%64
		cut := int(cutRaw) % n
		var all, left, right Welford
		for i := 0; i < n; i++ {
			v := r.Normal(0, 100)
			all.Add(v)
			if i < cut {
				left.Add(v)
			} else {
				right.Add(v)
			}
		}
		left.Merge(right)
		return left.N() == all.N() &&
			almostEqual(left.Mean(), all.Mean(), 1e-6) &&
			almostEqual(left.Variance(), all.Variance(), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: variances are never negative, whatever the weights and values.
func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var s Stratum
		batches := 1 + r.Intn(5)
		for b := 0; b < batches; b++ {
			w := 1 + r.Float64()*9
			vals := make([]float64, 1+r.Intn(20))
			for i := range vals {
				vals[i] = r.Normal(0, 1000)
			}
			s.AddBatch(w, vals)
		}
		return s.SumVariance() >= 0 && s.meanVarianceTerm() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the CLT interval from Eq. 11 actually covers the true total at
// roughly its nominal rate when sampling uniformly at random.
func TestSumIntervalCoverage(t *testing.T) {
	const (
		trials     = 300
		population = 2000
		sampleSize = 200
	)
	r := xrand.New(123)
	pop := make([]float64, population)
	var truth float64
	for i := range pop {
		pop[i] = r.Normal(100, 25)
		truth += pop[i]
	}
	covered := 0
	for tr := 0; tr < trials; tr++ {
		perm := r.Perm(population)
		var s Stratum
		w := float64(population) / float64(sampleSize)
		for _, idx := range perm[:sampleSize] {
			s.AddWeighted(w, pop[idx])
		}
		est := Sum([]*Stratum{&s})
		lo, hi := est.Interval(TwoSigma)
		if truth >= lo && truth <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.88 { // nominal 95%, generous slack for 300 trials
		t.Fatalf("2σ interval covered truth in %.1f%% of trials, want >= 88%%", rate*100)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i))
	}
}

func BenchmarkStratumAddBatch(b *testing.B) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	var s Stratum
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddBatch(1.5, vals)
	}
}
