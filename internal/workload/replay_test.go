package workload

import (
	"strings"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/stream"
)

func traceItems() []stream.Item {
	base := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	return []stream.Item{
		{Source: "a", Value: 1, Ts: base},
		{Source: "b", Value: 2, Ts: base.Add(300 * time.Millisecond)},
		{Source: "a", Value: 3, Ts: base.Add(900 * time.Millisecond)},
		{Source: "a", Value: 4, Ts: base.Add(2500 * time.Millisecond)},
	}
}

func TestReplayPreservesSpacing(t *testing.T) {
	r := NewReplay(traceItems())
	first := r.Generate(epoch, time.Second)
	if len(first) != 3 {
		t.Fatalf("first second replayed %d items, want 3", len(first))
	}
	if !first[0].Ts.Equal(epoch) {
		t.Fatalf("first item at %v, want re-timed to %v", first[0].Ts, epoch)
	}
	if want := epoch.Add(300 * time.Millisecond); !first[1].Ts.Equal(want) {
		t.Fatalf("second item at %v, want %v", first[1].Ts, want)
	}
	second := r.Generate(epoch.Add(time.Second), time.Second)
	if len(second) != 0 {
		t.Fatalf("second interval replayed %d items, want 0 (gap in trace)", len(second))
	}
	third := r.Generate(epoch.Add(2*time.Second), time.Second)
	if len(third) != 1 || third[0].Value != 4 {
		t.Fatalf("third interval = %v, want the t=2.5s item", third)
	}
	if r.Len() != 0 {
		t.Fatalf("%d items left unplayed", r.Len())
	}
}

func TestReplaySpeedup(t *testing.T) {
	r := NewReplay(traceItems(), WithSpeedup(5)) // 2.5s trace → 0.5s
	out := r.Generate(epoch, time.Second)
	if len(out) != 4 {
		t.Fatalf("sped-up replay emitted %d of 4 items in 1s", len(out))
	}
	// Intervals are half-open: an item landing exactly on the boundary
	// belongs to the next interval.
	r2 := NewReplay(traceItems(), WithSpeedup(2.5)) // last item at exactly 1.0s
	if out := r2.Generate(epoch, time.Second); len(out) != 3 {
		t.Fatalf("boundary item leaked into the closed interval: %d items", len(out))
	}
}

func TestReplaySortsUnorderedInput(t *testing.T) {
	items := traceItems()
	items[0], items[3] = items[3], items[0] // shuffle
	r := NewReplay(items)
	out := r.Generate(epoch, 3*time.Second)
	for i := 1; i < len(out); i++ {
		if out[i].Ts.Before(out[i-1].Ts) {
			t.Fatal("replayed items out of order")
		}
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	r := NewReplay(nil)
	if out := r.Generate(epoch, time.Second); len(out) != 0 {
		t.Fatalf("empty trace produced %v", out)
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	// The exact format cmd/genworkload writes.
	csv := strings.Join([]string{
		"source,value,timestamp_ns",
		"zone-01,12.5,1357000000000000000",
		"zone-02,-3,1357000000100000000",
		"",
	}, "\n")
	items, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("parsed %d items, want 2", len(items))
	}
	if items[0].Source != "zone-01" || items[0].Value != 12.5 {
		t.Fatalf("item 0 = %+v", items[0])
	}
	if items[1].Ts.UnixNano() != 1357000000100000000 {
		t.Fatalf("item 1 ts = %v", items[1].Ts)
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong header": "a,b,c\nx,1,2\n",
		"bad value":    "source,value,timestamp_ns\nx,notanumber,2\n",
		"bad ts":       "source,value,timestamp_ns\nx,1,nanos\n",
		"wrong fields": "source,value,timestamp_ns\nx,1\n",
		"empty":        "",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReplayFeedsPipeline(t *testing.T) {
	// A recorded trace must be usable anywhere a Generator is.
	var src Source = NewReplay(traceItems())
	out := src.Generate(epoch, 3*time.Second)
	if len(out) != 4 {
		t.Fatalf("Source interface replay produced %d items", len(out))
	}
}
