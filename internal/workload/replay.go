package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"github.com/approxiot/approxiot/internal/stream"
)

// Source produces the items arriving in [from, from+dt). *Generator is the
// synthetic implementation; Replay feeds recorded traces (e.g. the real
// DEBS'15 taxi rides, when available) through the same pipelines.
type Source interface {
	Generate(from time.Time, dt time.Duration) []stream.Item
}

var (
	_ Source = (*Generator)(nil)
	_ Source = (*Replay)(nil)
)

// Replay is a Source backed by a recorded trace. Items are re-timed: the
// trace's first timestamp maps onto the first Generate call's start, and
// the original inter-arrival spacing is preserved (optionally compressed).
type Replay struct {
	items []stream.Item // sorted by Ts, original timestamps
	speed float64       // 1 = real time, 2 = twice as fast

	pos    int
	start  time.Time // re-timed epoch (pinned on first Generate)
	origin time.Time // trace's first timestamp
	begun  bool
}

// ReplayOption customizes a Replay.
type ReplayOption func(*Replay)

// WithSpeedup compresses the trace's time axis by factor (2 = play twice as
// fast). Factors <= 0 are ignored.
func WithSpeedup(factor float64) ReplayOption {
	return func(r *Replay) {
		if factor > 0 {
			r.speed = factor
		}
	}
}

// NewReplay returns a Source replaying the given items. The slice is copied
// and sorted by timestamp.
func NewReplay(items []stream.Item, opts ...ReplayOption) *Replay {
	r := &Replay{items: append([]stream.Item(nil), items...), speed: 1}
	sort.SliceStable(r.items, func(i, j int) bool { return r.items[i].Ts.Before(r.items[j].Ts) })
	if len(r.items) > 0 {
		r.origin = r.items[0].Ts
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Len returns the number of items remaining to replay.
func (r *Replay) Len() int { return len(r.items) - r.pos }

// Generate implements Source: it emits the trace items whose re-timed
// instants fall in [from, from+dt), with timestamps rewritten to the
// replayed clock.
func (r *Replay) Generate(from time.Time, dt time.Duration) []stream.Item {
	if !r.begun {
		r.start = from
		r.begun = true
	}
	end := from.Add(dt)
	var out []stream.Item
	for r.pos < len(r.items) {
		it := r.items[r.pos]
		elapsed := time.Duration(float64(it.Ts.Sub(r.origin)) / r.speed)
		at := r.start.Add(elapsed)
		if !at.Before(end) {
			break
		}
		it.Ts = at
		out = append(out, it)
		r.pos++
	}
	return out
}

// ReadCSV parses a trace in the format cmd/genworkload writes —
// a `source,value,timestamp_ns` header followed by one row per item.
func ReadCSV(rd io.Reader) ([]stream.Item, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	if header[0] != "source" || header[1] != "value" || header[2] != "timestamp_ns" {
		return nil, fmt.Errorf("workload: unexpected CSV header %v", header)
	}
	var items []stream.Item
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return items, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: %w", line, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d value: %w", line, err)
		}
		ns, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d timestamp: %w", line, err)
		}
		items = append(items, stream.Item{
			Source: stream.SourceID(rec[0]),
			Value:  v,
			Ts:     time.Unix(0, ns).UTC(),
		})
	}
}
