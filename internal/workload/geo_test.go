package workload

import (
	"strings"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/stream"
)

func geoSpecs() []GeoSubstreamSpec {
	return []GeoSubstreamSpec{
		{Name: "midtown", Lat: 40.7549, Lon: -73.9840, Scatter: 0.01, Rate: 500, Value: LogNormal{Mu: 2.4, Sigma: 0.55}},
		{Name: "jfk", Lat: 40.6413, Lon: -73.7781, Scatter: 0.005, Rate: 200, Value: Gaussian{Mu: 52, Sigma: 6}},
	}
}

func TestCellIDGrid(t *testing.T) {
	// Same cell for nearby points, different for distant ones.
	a := CellID(40.7549, -73.9840, 0.25)
	b := CellID(40.7601, -73.9755, 0.25)
	c := CellID(40.6413, -73.7781, 0.25)
	if a != b {
		t.Fatalf("nearby points split cells: %s vs %s", a, b)
	}
	if a == c {
		t.Fatalf("distant points share cell %s", a)
	}
	if !strings.HasPrefix(string(a), "cell:") {
		t.Fatalf("cell key %q lacks prefix", a)
	}
	// Negative coordinates floor, not truncate: -0.1 must not share the
	// 0.0 cell.
	if CellID(-0.1, 0, 1) == CellID(0.1, 0, 1) {
		t.Fatal("floor semantics broken across the equator")
	}
}

func TestGeoGeneratorDeterministic(t *testing.T) {
	epoch := time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)
	g1 := NewGeo(42, geoSpecs(), StratifyByCell(0.02))
	g2 := NewGeo(42, geoSpecs(), StratifyByCell(0.02))
	for w := 0; w < 5; w++ {
		at := epoch.Add(time.Duration(w) * time.Second)
		a := g1.Generate(at, time.Second)
		b := g2.Generate(at, time.Second)
		if len(a) != len(b) {
			t.Fatalf("window %d: %d vs %d items", w, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("window %d item %d: %+v vs %+v", w, i, a[i], b[i])
			}
		}
	}
}

func TestGeoCellStratification(t *testing.T) {
	epoch := time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)
	g := NewGeo(7, geoSpecs(), StratifyByCell(0.02))
	items := g.Generate(epoch, time.Second)
	if len(items) == 0 {
		t.Fatal("no items generated")
	}
	cells := make(map[stream.SourceID]int)
	for i, it := range items {
		if !strings.HasPrefix(string(it.Source), "cell:") {
			t.Fatalf("item source %q is not a cell key", it.Source)
		}
		cells[it.Source]++
		if i > 0 && items[i].Source < items[i-1].Source {
			t.Fatal("items not grouped by cell")
		}
	}
	// Scattered emitters must straddle cell boundaries at this resolution.
	if len(cells) < 3 {
		t.Fatalf("only %d cells realized, want spread", len(cells))
	}
}

func TestGeoNameStratificationDefault(t *testing.T) {
	epoch := time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)
	g := NewGeo(7, geoSpecs())
	items := g.Generate(epoch, time.Second)
	for _, it := range items {
		if it.Source != "midtown" && it.Source != "jfk" {
			t.Fatalf("unexpected stratum %q without StratifyByCell", it.Source)
		}
	}
	if got := g.Substreams(); len(got) != 2 || got[0] != "midtown" {
		t.Fatalf("Substreams = %v", got)
	}
	if g.TotalRate() != 700 {
		t.Fatalf("TotalRate = %g", g.TotalRate())
	}
}

func TestGeoRateAccounting(t *testing.T) {
	epoch := time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)
	g := NewGeo(3, geoSpecs(), StratifyByCell(0.02))
	var n int
	for w := 0; w < 10; w++ {
		n += len(g.Generate(epoch.Add(time.Duration(w)*time.Second), time.Second))
	}
	// 700 items/s × 10 s, exact up to the final fractional carry.
	if n < 6999 || n > 7000 {
		t.Fatalf("generated %d items, want ~7000", n)
	}
}

func TestNYCTaxiGeoPreset(t *testing.T) {
	epoch := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	g := NYCTaxiGeo(2013, 12, 150, 0.02)
	items := g.Generate(epoch, time.Second)
	if len(items) == 0 {
		t.Fatal("preset generated nothing")
	}
	cells := make(map[stream.SourceID]bool)
	for _, it := range items {
		if !strings.HasPrefix(string(it.Source), "cell:") {
			t.Fatalf("preset not cell-stratified: %q", it.Source)
		}
		if it.Value <= 0 {
			t.Fatalf("non-positive fare %g", it.Value)
		}
		cells[it.Source] = true
	}
	if len(cells) < 4 {
		t.Fatalf("only %d cells from 12 zones", len(cells))
	}
}
