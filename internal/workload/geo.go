package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Geospatial stratification, following "Decentralized Stratified Sampling for
// Low-Latency Approximate Geospatial Data Stream Processing in Edge-Cloud
// Architectures" (PAPERS.md): instead of strata keyed by a named source, the
// stream is stratified by the spatial grid cell each reading originates from.
// Because the whole pipeline keys strata by stream.SourceID — partition
// hashing, per-stratum reservoirs, Eq. 8 weight lineage, group-by queries —
// cell stratification is purely a keying decision at generation: every item's
// Source becomes its cell ID, and the tree's machinery stratifies by cell
// with no further changes. Top-k over cell strata then ranks spatial zones.

// CellID maps a position to the stratum key of its grid cell at res degrees
// per cell ("cell:163,-296"). Keys are stable across runs and resolutions
// snap positions onto a fixed global grid, so two emitters in the same cell
// share a stratum.
func CellID(lat, lon, res float64) stream.SourceID {
	if res <= 0 {
		res = 0.25
	}
	return stream.SourceID(fmt.Sprintf("cell:%d,%d",
		int(math.Floor(lat/res)), int(math.Floor(lon/res))))
}

// GeoSubstreamSpec configures one geographic emitter cluster — for the taxi
// workload, one dispatch zone's worth of vehicles.
type GeoSubstreamSpec struct {
	// Name identifies the emitter; it is the stratum key unless the
	// generator stratifies by cell.
	Name stream.SourceID
	// Lat/Lon is the cluster center in degrees.
	Lat, Lon float64
	// Scatter is the Gaussian position spread around the center, in
	// degrees of standard deviation (0 pins every reading to the center).
	Scatter float64
	// Rate is the nominal arrival rate in items/second.
	Rate float64
	// Value draws item values.
	Value ValueDist
	// Modulate optionally scales Rate over time (nil = constant).
	Modulate RateFunc
}

// GeoOption customizes a GeoGenerator.
type GeoOption func(*GeoGenerator)

// StratifyByCell keys every generated item's stratum by the spatial grid
// cell containing its position (res degrees per cell) instead of the emitter
// name. Each cell gets its own value RNG lineage, split from the root seed
// by a hash of the cell key — re-salted per cell, so a cell's value sequence
// is decorrelated from its neighbours' and independent of how other cells'
// traffic interleaves.
func StratifyByCell(res float64) GeoOption {
	if res <= 0 {
		res = 0.25
	}
	return func(g *GeoGenerator) { g.cellRes = res }
}

// GeoGenerator produces items from geographic emitter clusters, interval by
// interval, with the same deterministic rate accounting as Generator
// (fractional-item carry, midpoint-sampled modulation). It implements
// Source.
type GeoGenerator struct {
	specs   []GeoSubstreamSpec
	seed    uint64
	cellRes float64 // 0 = stratify by emitter name

	valRngs  []*xrand.Rand // per-emitter value lineage (name stratification)
	posRngs  []*xrand.Rand // per-emitter position scatter
	cellRngs map[stream.SourceID]*xrand.Rand
	carry    []float64
	start    time.Time
	begun    bool
}

// NewGeo returns a generator over geographic emitter specs; each emitter
// gets decorrelated value and position RNGs derived from seed.
func NewGeo(seed uint64, specs []GeoSubstreamSpec, opts ...GeoOption) *GeoGenerator {
	g := &GeoGenerator{
		specs:    append([]GeoSubstreamSpec(nil), specs...),
		seed:     seed,
		valRngs:  make([]*xrand.Rand, len(specs)),
		posRngs:  make([]*xrand.Rand, len(specs)),
		cellRngs: make(map[stream.SourceID]*xrand.Rand),
		carry:    make([]float64, len(specs)),
	}
	for i := range g.specs {
		g.valRngs[i] = xrand.Split(seed, uint64(i))
		g.posRngs[i] = xrand.Split(seed, uint64(i)+0x47454f) // "GEO" salt
	}
	for _, opt := range opts {
		opt(g)
	}
	return g
}

// fnv64 hashes a stratum key into the Split index that salts its RNG.
func fnv64(s stream.SourceID) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// cellRng returns (lazily creating) the value RNG for one cell's lineage.
func (g *GeoGenerator) cellRng(cell stream.SourceID) *xrand.Rand {
	r, ok := g.cellRngs[cell]
	if !ok {
		r = xrand.Split(g.seed, fnv64(cell))
		g.cellRngs[cell] = r
	}
	return r
}

// Substreams returns the emitter names in order. Under cell stratification
// the realized strata are cells, discovered as positions are drawn.
func (g *GeoGenerator) Substreams() []stream.SourceID {
	out := make([]stream.SourceID, len(g.specs))
	for i, s := range g.specs {
		out[i] = s.Name
	}
	return out
}

// TotalRate returns the sum of nominal rates (items/second).
func (g *GeoGenerator) TotalRate() float64 {
	var r float64
	for _, s := range g.specs {
		r += s.Rate
	}
	return r
}

// Generate produces the items arriving in [from, from+dt), timestamps spread
// evenly through each emitter's share of the interval. Items are grouped by
// stratum key (stable, preserving per-stratum timestamp order) so the
// runners' one-wire-message-per-run batching stays effective when many cells
// interleave.
func (g *GeoGenerator) Generate(from time.Time, dt time.Duration) []stream.Item {
	if !g.begun {
		g.start = from
		g.begun = true
	}
	elapsed := from.Sub(g.start)
	var items []stream.Item
	for i, spec := range g.specs {
		rate := spec.Rate
		if spec.Modulate != nil {
			rate *= avgModulation(spec.Modulate, elapsed, dt)
		}
		exact := rate*dt.Seconds() + g.carry[i]
		n := int(exact)
		g.carry[i] = exact - float64(n)
		if n <= 0 {
			continue
		}
		step := dt / time.Duration(n)
		for k := 0; k < n; k++ {
			lat, lon := spec.Lat, spec.Lon
			if spec.Scatter > 0 {
				lat += g.posRngs[i].Normal(0, spec.Scatter)
				lon += g.posRngs[i].Normal(0, spec.Scatter)
			}
			src, rng := spec.Name, g.valRngs[i]
			if g.cellRes > 0 {
				src = CellID(lat, lon, g.cellRes)
				rng = g.cellRng(src)
			}
			items = append(items, stream.Item{
				Source: src,
				Value:  spec.Value.Sample(rng),
				Ts:     from.Add(time.Duration(k)*step + step/2),
			})
		}
	}
	if g.cellRes > 0 {
		sort.SliceStable(items, func(a, b int) bool { return items[a].Source < items[b].Source })
	}
	return items
}

// nycZoneCenters places zone centers on NYC-ish coordinates: a dense
// Manhattan spine plus outer boroughs, spiralling outward from Midtown so
// the busiest zones cluster spatially the way taxi demand does.
func nycZoneCenters(zones int) [][2]float64 {
	const midtownLat, midtownLon = 40.7549, -73.9840
	out := make([][2]float64, zones)
	for i := range out {
		// Archimedean spiral: radius grows ~0.02° per zone, angle by the
		// golden angle so zones never line up on a ray.
		r := 0.008 + 0.016*float64(i)
		a := 2.399963 * float64(i)
		out[i] = [2]float64{midtownLat + r*math.Sin(a), midtownLon + r*math.Cos(a)}
	}
	return out
}

// NYCTaxiGeo is the geospatial form of the NYCTaxi preset: zones emitter
// clusters at NYC-ish coordinates with geometrically-skewed rates (busy
// Midtown vs. quiet outskirts), heavy-tailed log-normal fares, a diurnal
// demand cycle — stratified by spatial grid cell at cellRes degrees per
// cell (StratifyByCell). baseRate is the busiest zone's items/second.
func NYCTaxiGeo(seed uint64, zones int, baseRate, cellRes float64) *GeoGenerator {
	if zones < 1 {
		zones = 1
	}
	const rateSkew = 0.80
	centers := nycZoneCenters(zones)
	specs := make([]GeoSubstreamSpec, zones)
	rate := baseRate
	for i := range specs {
		specs[i] = GeoSubstreamSpec{
			Name:     stream.SourceID(fmt.Sprintf("zone-%02d", i)),
			Lat:      centers[i][0],
			Lon:      centers[i][1],
			Scatter:  0.006,
			Rate:     rate,
			Value:    LogNormal{Mu: 2.4, Sigma: 0.55},
			Modulate: Diurnal(19, 0.5),
		}
		rate *= rateSkew
		if rate < 0.01 {
			rate = 0.01
		}
	}
	return NewGeo(seed, specs, StratifyByCell(cellRes))
}
