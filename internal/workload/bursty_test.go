package workload

import (
	"math"
	"testing"
	"time"
)

func TestOnOffBurstsAndSilence(t *testing.T) {
	f := OnOff(time.Second, 0.2, 5)
	if got := f(0); got != 5 {
		t.Fatalf("burst phase multiplier = %g, want 5", got)
	}
	if got := f(500 * time.Millisecond); got != 0 {
		t.Fatalf("quiet phase multiplier = %g, want 0", got)
	}
	// Next period bursts again.
	if got := f(1050 * time.Millisecond); got != 5 {
		t.Fatalf("second period multiplier = %g, want 5", got)
	}
}

func TestOnOffDefaultsPreserveMeanRate(t *testing.T) {
	f := OnOff(time.Second, 0.25, 0) // factor defaults to 1/duty = 4
	var sum float64
	const steps = 1000
	for i := 0; i < steps; i++ {
		sum += f(time.Duration(i) * time.Millisecond)
	}
	if mean := sum / steps; math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean multiplier = %g, want ~1 (rate-preserving)", mean)
	}
}

func TestOnOffDegenerateInputs(t *testing.T) {
	f := OnOff(0, -1, 2) // period and duty clamped
	if got := f(0); got <= 0 {
		t.Fatalf("clamped OnOff returned %g at burst phase", got)
	}
}

func TestLongTailedMatchesUniformLongRunRate(t *testing.T) {
	bursty := LongTailed(3, 500)
	uniform := GaussianMicro(3, 500)
	var nb, nu int
	for i := 0; i < 60; i++ {
		at := epoch.Add(time.Duration(i) * time.Second)
		nb += len(bursty.Generate(at, time.Second))
		nu += len(uniform.Generate(at, time.Second))
	}
	if math.Abs(float64(nb)-float64(nu))/float64(nu) > 0.05 {
		t.Fatalf("long-tailed produced %d items vs uniform %d; long-run rates should match", nb, nu)
	}
}

func TestLongTailedIsActuallyBursty(t *testing.T) {
	g := LongTailed(5, 500)
	var counts []int
	for i := 0; i < 40; i++ {
		counts = append(counts, len(g.Generate(epoch.Add(time.Duration(i)*100*time.Millisecond), 100*time.Millisecond)))
	}
	var max, min = 0, 1 << 30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 3*(min+1) {
		t.Fatalf("per-100ms counts min=%d max=%d: not bursty", min, max)
	}
}
