package workload

import (
	"fmt"
	"time"

	"github.com/approxiot/approxiot/internal/stream"
)

// The paper's four Gaussian sub-streams (§V-A):
// A(µ=10, σ=5), B(1000, 50), C(10⁴, 500), D(10⁵, 5000).
var gaussianParams = []Gaussian{
	{Mu: 10, Sigma: 5},
	{Mu: 1000, Sigma: 50},
	{Mu: 10000, Sigma: 500},
	{Mu: 100000, Sigma: 5000},
}

// The paper's four Poisson sub-streams (§V-A): λ = 10, 100, 1000, 10⁴.
var poissonParams = []Poisson{
	{Lambda: 10},
	{Lambda: 100},
	{Lambda: 1000},
	{Lambda: 10000},
}

var microNames = []stream.SourceID{"A", "B", "C", "D"}

// GaussianMicro returns the Fig. 5a microbenchmark input: four Gaussian
// sub-streams, each arriving at perStreamRate items/second.
func GaussianMicro(seed uint64, perStreamRate float64) *Generator {
	specs := make([]SubstreamSpec, 4)
	for i := range specs {
		specs[i] = SubstreamSpec{Source: microNames[i], Rate: perStreamRate, Value: gaussianParams[i]}
	}
	return New(seed, specs...)
}

// PoissonMicro returns the Fig. 5b microbenchmark input: four Poisson
// sub-streams, each arriving at perStreamRate items/second.
func PoissonMicro(seed uint64, perStreamRate float64) *Generator {
	specs := make([]SubstreamSpec, 4)
	for i := range specs {
		specs[i] = SubstreamSpec{Source: microNames[i], Rate: perStreamRate, Value: poissonParams[i]}
	}
	return New(seed, specs...)
}

// RateSetting is one of Fig. 10's fluctuating-rate configurations, giving
// the arrival rates of sub-streams A:B:C:D in items/second.
type RateSetting struct {
	Name  string
	Rates [4]float64
}

// Settings returns the three Fig. 10 settings exactly as printed:
// Setting1 (50k:25k:12.5k:625), Setting2 (25k each), and Setting3 reversed.
func Settings() []RateSetting {
	return []RateSetting{
		{Name: "Setting1", Rates: [4]float64{50000, 25000, 12500, 625}},
		{Name: "Setting2", Rates: [4]float64{25000, 25000, 25000, 25000}},
		{Name: "Setting3", Rates: [4]float64{625, 12500, 25000, 50000}},
	}
}

// GaussianSetting returns the Fig. 10a input for one rate setting, scaled by
// scale (1.0 = the paper's rates; benches scale down to fit laptop runs
// while keeping the A:B:C:D ratios exact).
func GaussianSetting(seed uint64, s RateSetting, scale float64) *Generator {
	specs := make([]SubstreamSpec, 4)
	for i := range specs {
		specs[i] = SubstreamSpec{Source: microNames[i], Rate: s.Rates[i] * scale, Value: gaussianParams[i]}
	}
	return New(seed, specs...)
}

// PoissonSetting returns the Fig. 10b input for one rate setting.
func PoissonSetting(seed uint64, s RateSetting, scale float64) *Generator {
	specs := make([]SubstreamSpec, 4)
	for i := range specs {
		specs[i] = SubstreamSpec{Source: microNames[i], Rate: s.Rates[i] * scale, Value: poissonParams[i]}
	}
	return New(seed, specs...)
}

// ExtremeSkew returns the Fig. 10c input: Poisson sub-streams with
// λ = 10, 100, 1000 and 10⁷, where A carries 80% of all items, B 19.89%,
// C 0.1% and D just 0.01% — the rare-but-enormous sub-stream that makes
// simple random sampling overestimate wildly.
func ExtremeSkew(seed uint64, totalRate float64) *Generator {
	shares := [4]float64{0.80, 0.1989, 0.001, 0.0001}
	lambdas := [4]float64{10, 100, 1000, 1e7}
	specs := make([]SubstreamSpec, 4)
	for i := range specs {
		specs[i] = SubstreamSpec{
			Source: microNames[i],
			Rate:   totalRate * shares[i],
			Value:  Poisson{Lambda: lambdas[i]},
		}
	}
	return New(seed, specs...)
}

// NYCTaxi returns the §VI-A case-study substitute: zones sub-streams (taxi
// activity aggregated per dispatch zone, the strata), heterogeneous arrival
// rates (busy Manhattan zones vs. quiet outer ones, geometrically spaced by
// rateSkew), heavy-tailed fares (log-normal with a mean around $13, matching
// January-2013 NYC fares), and a diurnal demand cycle peaking at 19:00.
// baseRate is the busiest zone's items/second.
func NYCTaxi(seed uint64, zones int, baseRate float64) *Generator {
	if zones < 1 {
		zones = 1
	}
	const rateSkew = 0.75 // each zone is 25% quieter than the previous
	specs := make([]SubstreamSpec, zones)
	rate := baseRate
	for i := range specs {
		specs[i] = SubstreamSpec{
			Source:   stream.SourceID(fmt.Sprintf("zone-%02d", i)),
			Rate:     rate,
			Value:    LogNormal{Mu: 2.4, Sigma: 0.55},
			Modulate: Diurnal(19, 0.5),
		}
		rate *= rateSkew
		if rate < 0.01 {
			rate = 0.01
		}
	}
	return New(seed, specs...)
}

// Brasov pollution channel levels (µg/m³-scale) for the four pollutants the
// §VI-B query totals; AR(1) keeps them slowly varying ("more stable" than
// taxi fares, per the paper's explanation of the flatter accuracy curve).
var pollutants = []struct {
	name  stream.SourceID
	level float64
	sigma float64
}{
	{"pm", 35, 1.2},
	{"co", 5, 0.15},
	{"so2", 12, 0.4},
	{"no2", 28, 0.9},
}

// LongTailed returns the "long-tailed stream" input the paper's §III-A says
// the algorithm must handle alongside uniform-speed streams: the same four
// Gaussian sub-streams as GaussianMicro, but each arriving in bursts —
// 5× the nominal rate for one fifth of every (staggered) period, silent
// otherwise. Long-run rates match GaussianMicro exactly, so accuracy
// comparisons between the two are apples-to-apples.
func LongTailed(seed uint64, perStreamRate float64) *Generator {
	specs := make([]SubstreamSpec, 4)
	for i := range specs {
		period := time.Duration(i+1) * 700 * time.Millisecond // staggered bursts
		specs[i] = SubstreamSpec{
			Source:   microNames[i],
			Rate:     perStreamRate,
			Value:    gaussianParams[i],
			Modulate: OnOff(period, 0.2, 5),
		}
	}
	return New(seed, specs...)
}

// BrasovPollution returns the §VI-B case-study substitute: one sub-stream
// per pollutant (particulate matter, carbon monoxide, sulfur dioxide,
// nitrogen dioxide), each fed by sensorsPerChannel sensors reporting every
// period. The paper's sensors report every 5 minutes; benches compress the
// period to keep simulated runs short without changing the value process.
func BrasovPollution(seed uint64, sensorsPerChannel int, periodSeconds float64) *Generator {
	if sensorsPerChannel < 1 {
		sensorsPerChannel = 1
	}
	if periodSeconds <= 0 {
		periodSeconds = 300
	}
	specs := make([]SubstreamSpec, len(pollutants))
	for i, p := range pollutants {
		specs[i] = SubstreamSpec{
			Source: p.name,
			Rate:   float64(sensorsPerChannel) / periodSeconds,
			Value:  &AR1{Level: p.level, Phi: 0.97, Sigma: p.sigma},
		}
	}
	return New(seed, specs...)
}
