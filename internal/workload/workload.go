// Package workload generates the input streams of the paper's evaluation:
// the synthetic Gaussian and Poisson sub-stream mixes of §V, the
// fluctuating-rate settings and extreme-skew stream of Fig. 10, and the two
// real-world case studies of §VI. The real traces (DEBS'15 NYC taxi rides
// and the CityBench Brasov pollution feed) are not redistributable, so this
// package ships synthetic generators that preserve the statistical
// properties the evaluation exercises — value dispersion across sub-streams,
// arrival-rate heterogeneity, heavy tails, and slowly-drifting sensor
// levels. See DESIGN.md §4 for the substitution rationale.
package workload

import (
	"math"
	"time"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

// ValueDist draws item values for one sub-stream. Implementations may be
// stateful (e.g. AR1); each sub-stream owns its instance.
type ValueDist interface {
	Sample(r *xrand.Rand) float64
}

// Gaussian draws N(Mu, Sigma) values — the paper's sub-streams A–D in Fig. 5a.
type Gaussian struct{ Mu, Sigma float64 }

// Sample implements ValueDist.
func (g Gaussian) Sample(r *xrand.Rand) float64 { return r.Normal(g.Mu, g.Sigma) }

// Poisson draws Poisson(Lambda) values — Fig. 5b and Fig. 10c.
type Poisson struct{ Lambda float64 }

// Sample implements ValueDist.
func (p Poisson) Sample(r *xrand.Rand) float64 { return float64(r.Poisson(p.Lambda)) }

// LogNormal draws exp(N(Mu, Sigma)) values — heavy-tailed fares.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements ValueDist.
func (l LogNormal) Sample(r *xrand.Rand) float64 { return r.LogNormal(l.Mu, l.Sigma) }

// Constant always returns V; useful in tests and count-style queries.
type Constant struct{ V float64 }

// Sample implements ValueDist.
func (c Constant) Sample(*xrand.Rand) float64 { return c.V }

// AR1 draws a mean-reverting autoregressive series:
// x ← Level + Phi·(x − Level) + N(0, Sigma). It models "stable" sensor
// readings like the Brasov pollution levels (§VI-B), whose low dispersion is
// exactly why the paper sees a flatter accuracy curve there.
type AR1 struct {
	Level float64
	Phi   float64
	Sigma float64

	state       float64
	initialized bool
}

// Sample implements ValueDist.
func (a *AR1) Sample(r *xrand.Rand) float64 {
	if !a.initialized {
		a.state = a.Level
		a.initialized = true
	}
	a.state = a.Level + a.Phi*(a.state-a.Level) + r.Normal(0, a.Sigma)
	return a.state
}

// RateFunc modulates a sub-stream's arrival rate over elapsed stream time
// (1.0 = nominal). Used for the taxi workload's diurnal cycle.
type RateFunc func(elapsed time.Duration) float64

// SubstreamSpec configures one sub-stream (stratum).
type SubstreamSpec struct {
	// Source identifies the stratum.
	Source stream.SourceID
	// Rate is the nominal arrival rate in items/second.
	Rate float64
	// Value draws item values.
	Value ValueDist
	// Modulate optionally scales Rate over time (nil = constant).
	Modulate RateFunc
}

// Generator produces items for a set of sub-streams, interval by interval.
// Counts are deterministic given the seed: each sub-stream accumulates
// fractional items across intervals so long-run rates are exact.
type Generator struct {
	specs []SubstreamSpec
	rngs  []*xrand.Rand
	carry []float64
	start time.Time
	begun bool
}

// New returns a generator over specs; each sub-stream gets a decorrelated
// RNG derived from seed.
func New(seed uint64, specs ...SubstreamSpec) *Generator {
	g := &Generator{
		specs: append([]SubstreamSpec(nil), specs...),
		rngs:  make([]*xrand.Rand, len(specs)),
		carry: make([]float64, len(specs)),
	}
	for i := range g.rngs {
		g.rngs[i] = xrand.Split(seed, uint64(i))
	}
	return g
}

// Substreams returns the configured sub-stream IDs in order.
func (g *Generator) Substreams() []stream.SourceID {
	out := make([]stream.SourceID, len(g.specs))
	for i, s := range g.specs {
		out[i] = s.Source
	}
	return out
}

// TotalRate returns the sum of nominal rates (items/second).
func (g *Generator) TotalRate() float64 {
	var r float64
	for _, s := range g.specs {
		r += s.Rate
	}
	return r
}

// Generate produces the items arriving in [from, from+dt), timestamps spread
// evenly through the interval. The first call pins the generator's epoch for
// rate modulation.
func (g *Generator) Generate(from time.Time, dt time.Duration) []stream.Item {
	if !g.begun {
		g.start = from
		g.begun = true
	}
	elapsed := from.Sub(g.start)
	var items []stream.Item
	for i, spec := range g.specs {
		rate := spec.Rate
		if spec.Modulate != nil {
			rate *= avgModulation(spec.Modulate, elapsed, dt)
		}
		exact := rate*dt.Seconds() + g.carry[i]
		n := int(exact)
		g.carry[i] = exact - float64(n)
		if n <= 0 {
			continue
		}
		step := dt / time.Duration(n)
		rng := g.rngs[i]
		for k := 0; k < n; k++ {
			items = append(items, stream.Item{
				Source: spec.Source,
				Value:  spec.Value.Sample(rng),
				Ts:     from.Add(time.Duration(k)*step + step/2),
			})
		}
	}
	return items
}

// Reset restores the generator to its initial state (carries cleared, epoch
// unpinned). RNG state is not rewound; use a fresh Generator for bit-exact
// reproduction.
func (g *Generator) Reset() {
	for i := range g.carry {
		g.carry[i] = 0
	}
	g.begun = false
}

// avgModulation approximates the mean of a RateFunc over [elapsed,
// elapsed+dt) by midpoint sampling, so fast-cycling modulators (OnOff
// bursts shorter than the interval) do not alias against the interval grid.
func avgModulation(f RateFunc, elapsed time.Duration, dt time.Duration) float64 {
	const samples = 16
	var sum float64
	step := dt / samples
	for i := 0; i < samples; i++ {
		sum += f(elapsed + time.Duration(i)*step + step/2)
	}
	return sum / samples
}

// Diurnal returns a RateFunc with a 24-hour sinusoidal cycle: rate peaks at
// peakHour with amplitude amp (0..1), modelling taxi-demand cycles.
func Diurnal(peakHour float64, amp float64) RateFunc {
	if amp < 0 {
		amp = 0
	}
	if amp > 1 {
		amp = 1
	}
	return func(elapsed time.Duration) float64 {
		hours := elapsed.Hours()
		return 1 + amp*math.Cos(2*math.Pi*(hours-peakHour)/24)
	}
}

// OnOff returns a bursty RateFunc: within each period the sub-stream runs at
// burstFactor× its nominal rate for duty·period, then goes quiet. The mean
// rate multiplier is duty·burstFactor — callers wanting the nominal long-run
// rate should pick burstFactor = 1/duty. This models the paper's
// "long-tailed" input streams (§III-A), as opposed to uniform-speed ones.
func OnOff(period time.Duration, duty, burstFactor float64) RateFunc {
	if period <= 0 {
		period = time.Second
	}
	duty = math.Min(math.Max(duty, 0.01), 1)
	if burstFactor <= 0 {
		burstFactor = 1 / duty
	}
	return func(elapsed time.Duration) float64 {
		phase := math.Mod(elapsed.Seconds(), period.Seconds()) / period.Seconds()
		if phase < duty {
			return burstFactor
		}
		return 0
	}
}
