package workload

import (
	"math"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/xrand"
)

var epoch = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)

func countBySource(items []stream.Item) map[stream.SourceID]int {
	m := make(map[stream.SourceID]int)
	for _, it := range items {
		m[it.Source]++
	}
	return m
}

func TestGeneratorExactLongRunRate(t *testing.T) {
	g := New(1, SubstreamSpec{Source: "s", Rate: 333.3, Value: Constant{1}})
	total := 0
	for i := 0; i < 100; i++ {
		items := g.Generate(epoch.Add(time.Duration(i)*time.Second), time.Second)
		total += len(items)
	}
	// 100 s at 333.3/s: fractional carry makes the long-run count exact.
	if total != 33330 {
		t.Fatalf("generated %d items over 100s, want 33330", total)
	}
}

func TestGeneratorTimestampsInsideInterval(t *testing.T) {
	g := New(2, SubstreamSpec{Source: "s", Rate: 1000, Value: Constant{1}})
	from := epoch.Add(5 * time.Second)
	items := g.Generate(from, time.Second)
	for _, it := range items {
		if it.Ts.Before(from) || !it.Ts.Before(from.Add(time.Second)) {
			t.Fatalf("timestamp %v outside [%v, %v)", it.Ts, from, from.Add(time.Second))
		}
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	a := New(7, SubstreamSpec{Source: "s", Rate: 100, Value: Gaussian{Mu: 10, Sigma: 5}})
	b := New(7, SubstreamSpec{Source: "s", Rate: 100, Value: Gaussian{Mu: 10, Sigma: 5}})
	ia := a.Generate(epoch, time.Second)
	ib := b.Generate(epoch, time.Second)
	if len(ia) != len(ib) {
		t.Fatalf("counts differ: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i].Value != ib[i].Value {
			t.Fatal("same seed produced different values")
		}
	}
}

func TestGeneratorZeroRateSubstream(t *testing.T) {
	g := New(1, SubstreamSpec{Source: "quiet", Rate: 0, Value: Constant{1}})
	if items := g.Generate(epoch, time.Minute); len(items) != 0 {
		t.Fatalf("zero-rate sub-stream produced %d items", len(items))
	}
}

func TestGeneratorLowRateAccumulates(t *testing.T) {
	// 0.2 items/s: one item every 5 one-second intervals via carry.
	g := New(1, SubstreamSpec{Source: "slow", Rate: 0.2, Value: Constant{1}})
	total := 0
	for i := 0; i < 50; i++ {
		total += len(g.Generate(epoch.Add(time.Duration(i)*time.Second), time.Second))
	}
	if total != 10 {
		t.Fatalf("slow sub-stream produced %d items over 50s, want 10", total)
	}
}

func TestGaussianMicroShape(t *testing.T) {
	g := GaussianMicro(3, 1000)
	items := g.Generate(epoch, time.Second)
	counts := countBySource(items)
	if len(counts) != 4 {
		t.Fatalf("sub-streams = %d, want 4", len(counts))
	}
	for _, src := range []stream.SourceID{"A", "B", "C", "D"} {
		if counts[src] != 1000 {
			t.Errorf("%s count = %d, want 1000", src, counts[src])
		}
	}
	// Spot-check value scales: D's values should dwarf A's.
	var sumA, sumD float64
	for _, it := range items {
		switch it.Source {
		case "A":
			sumA += it.Value
		case "D":
			sumD += it.Value
		}
	}
	meanA, meanD := sumA/1000, sumD/1000
	if math.Abs(meanA-10) > 2 {
		t.Errorf("A mean = %.1f, want ~10", meanA)
	}
	if math.Abs(meanD-100000) > 2000 {
		t.Errorf("D mean = %.0f, want ~100000", meanD)
	}
}

func TestPoissonMicroMeans(t *testing.T) {
	g := PoissonMicro(4, 2000)
	items := g.Generate(epoch, time.Second)
	sums := map[stream.SourceID]float64{}
	counts := countBySource(items)
	for _, it := range items {
		sums[it.Source] += it.Value
	}
	wants := map[stream.SourceID]float64{"A": 10, "B": 100, "C": 1000, "D": 10000}
	for src, want := range wants {
		mean := sums[src] / float64(counts[src])
		if math.Abs(mean-want)/want > 0.1 {
			t.Errorf("%s mean = %.1f, want ~%.0f", src, mean, want)
		}
	}
}

func TestSettingsMatchPaper(t *testing.T) {
	s := Settings()
	if len(s) != 3 {
		t.Fatalf("settings = %d, want 3", len(s))
	}
	if s[0].Rates != [4]float64{50000, 25000, 12500, 625} {
		t.Errorf("Setting1 = %v", s[0].Rates)
	}
	if s[1].Rates != [4]float64{25000, 25000, 25000, 25000} {
		t.Errorf("Setting2 = %v", s[1].Rates)
	}
	if s[2].Rates != [4]float64{625, 12500, 25000, 50000} {
		t.Errorf("Setting3 = %v", s[2].Rates)
	}
}

func TestGaussianSettingScalesRates(t *testing.T) {
	g := GaussianSetting(1, Settings()[0], 0.01) // 500:250:125:6.25 items/s
	items := g.Generate(epoch, time.Second)
	counts := countBySource(items)
	if counts["A"] != 500 || counts["B"] != 250 || counts["C"] != 125 {
		t.Fatalf("scaled counts = %v", counts)
	}
}

func TestExtremeSkewProportions(t *testing.T) {
	g := ExtremeSkew(5, 100000)
	items := g.Generate(epoch, time.Second)
	counts := countBySource(items)
	if got := counts["A"]; got != 80000 {
		t.Errorf("A = %d, want 80000 (80%%)", got)
	}
	if got := counts["B"]; got != 19890 {
		t.Errorf("B = %d, want 19890 (19.89%%)", got)
	}
	if got := counts["C"]; got != 100 {
		t.Errorf("C = %d, want 100 (0.1%%)", got)
	}
	if got := counts["D"]; got != 10 {
		t.Errorf("D = %d, want 10 (0.01%%)", got)
	}
	// D's items must be enormous (λ=10⁷): the sum should be dominated by D.
	var sumD, sumAll float64
	for _, it := range items {
		sumAll += it.Value
		if it.Source == "D" {
			sumD += it.Value
		}
	}
	if sumD/sumAll < 0.9 {
		t.Errorf("D carries %.0f%% of the total value, want > 90%%", 100*sumD/sumAll)
	}
}

func TestNYCTaxiHeterogeneousRates(t *testing.T) {
	g := NYCTaxi(6, 10, 1000)
	items := g.Generate(epoch, time.Second)
	counts := countBySource(items)
	if len(counts) < 8 {
		t.Fatalf("only %d active zones, want most of 10", len(counts))
	}
	if counts["zone-00"] <= counts["zone-05"] {
		t.Errorf("zone-00 (%d) should be busier than zone-05 (%d)", counts["zone-00"], counts["zone-05"])
	}
	for _, it := range items {
		if it.Value <= 0 {
			t.Fatal("non-positive fare generated")
		}
	}
}

func TestNYCTaxiDiurnalModulation(t *testing.T) {
	g := NYCTaxi(6, 1, 1000)
	peak := len(g.Generate(epoch, time.Second)) // epoch pins t=0
	g2 := NYCTaxi(6, 1, 1000)
	g2.Generate(epoch, time.Second) // pin epoch
	// 19h later ≈ the peak hour for Diurnal(19, .5).
	later := len(g2.Generate(epoch.Add(19*time.Hour), time.Second))
	if later <= peak {
		t.Errorf("rate at peak hour (%d) not above midnight rate (%d)", later, peak)
	}
}

func TestBrasovPollutionStability(t *testing.T) {
	g := BrasovPollution(7, 300, 1) // 300 sensors/channel reporting every 1s
	items := g.Generate(epoch, time.Second)
	counts := countBySource(items)
	if len(counts) != 4 {
		t.Fatalf("channels = %d, want 4 pollutants", len(counts))
	}
	// AR(1) with small sigma: relative spread within a channel stays small.
	var sum, sumSq float64
	n := 0
	for _, it := range items {
		if it.Source != "pm" {
			continue
		}
		sum += it.Value
		sumSq += it.Value * it.Value
		n++
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if sd/mean > 0.3 {
		t.Errorf("pm coefficient of variation = %.2f, want stable (< 0.3)", sd/mean)
	}
}

func TestDiurnalBounds(t *testing.T) {
	f := Diurnal(19, 0.5)
	for h := 0; h < 48; h++ {
		v := f(time.Duration(h) * time.Hour)
		if v < 0.5-1e-9 || v > 1.5+1e-9 {
			t.Fatalf("Diurnal at %dh = %g outside [0.5, 1.5]", h, v)
		}
	}
	if got := f(19 * time.Hour); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("peak modulation = %g, want 1.5", got)
	}
	clamped := Diurnal(0, 5)
	if got := clamped(0); got > 2 {
		t.Fatalf("amp should clamp to 1: got %g", got)
	}
}

func TestAR1MeanReversion(t *testing.T) {
	a := &AR1{Level: 100, Phi: 0.9, Sigma: 1}
	r := xrand.New(1)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += a.Sample(r)
	}
	if mean := sum / n; math.Abs(mean-100) > 2 {
		t.Fatalf("AR1 long-run mean = %.2f, want ~100", mean)
	}
}

func TestGeneratorReset(t *testing.T) {
	g := New(1, SubstreamSpec{Source: "s", Rate: 0.5, Value: Constant{1}})
	g.Generate(epoch, time.Second) // leaves carry = 0.5
	g.Reset()
	items := g.Generate(epoch, time.Second)
	if len(items) != 0 {
		t.Fatalf("carry survived Reset: %d items", len(items))
	}
}

func TestTotalRate(t *testing.T) {
	g := GaussianMicro(1, 250)
	if got := g.TotalRate(); got != 1000 {
		t.Fatalf("TotalRate = %g, want 1000", got)
	}
}

func BenchmarkGenerateGaussianMicro(b *testing.B) {
	g := GaussianMicro(1, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(epoch.Add(time.Duration(i)*time.Second), time.Second)
	}
}

func BenchmarkGenerateExtremeSkew(b *testing.B) {
	g := ExtremeSkew(1, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(epoch.Add(time.Duration(i)*time.Second), time.Second)
	}
}
