package bench

import (
	"fmt"

	"github.com/approxiot/approxiot/internal/topology"
)

// Fig6 reproduces Figure 6: throughput (items/s) vs sampling fraction on
// the live pipeline, with the datacenter node as the bottleneck. The paper
// shows ApproxIoT ≈ SRS at every fraction, both ≈ native at 100%, and
// throughput growing as the fraction shrinks (1.3×–9.9× over 80%→10%)
// because the saturated root processes only the sampled stream.
func Fig6(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "6",
		Title:  "Throughput vs sampling fraction",
		XLabel: "fraction%",
		YLabel: "throughput (items/s)",
		Series: []Series{{Label: "ApproxIoT"}, {Label: "SRS"}, {Label: "Native"}},
		Notes:  "paper: ApproxIoT ≈ SRS; ≈ native at 100%; ~1/f scaling",
	}
	src := gaussianMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)
	return runFig6(fig, src, scale)
}

func runFig6(fig Figure, src sourceFunc, scale Scale) (Figure, error) {
	// Native has no fraction knob: measure once, draw as a flat line.
	native, err := liveFor(sysNative, 1, src(scale.Seed), scale)
	if err != nil {
		return fig, fmt.Errorf("bench: fig6 native: %w", err)
	}
	for _, pct := range fractionsWithFullPct {
		f := pct / 100
		whs, err := liveFor(sysWHS, f, src(scale.Seed), scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig6 WHS at %.0f%%: %w", pct, err)
		}
		srs, err := liveFor(sysSRS, f, src(scale.Seed), scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig6 SRS at %.0f%%: %w", pct, err)
		}
		fig.Series[0].Point(pct, whs.Throughput)
		fig.Series[1].Point(pct, srs.Throughput)
		fig.Series[2].Point(pct, native.Throughput)
	}
	return fig, nil
}
