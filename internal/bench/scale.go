package bench

import "time"

// Scale sizes the experiments. Quick keeps the full suite under a couple of
// minutes on a laptop; Full runs longer for tighter estimates (closer to
// the paper's minutes-long testbed runs).
type Scale struct {
	// Reps averages accuracy metrics over this many seeded repetitions.
	Reps int
	// SimDuration is the generation span of simulated runs.
	SimDuration time.Duration
	// RatePerSubstream is each synthetic sub-stream's total arrival rate
	// (items/second summed across the 8 source nodes).
	RatePerSubstream float64
	// LiveItems is the item count for live (throughput) runs.
	LiveItems int64
	// RootWork is the per-item query cost at the root in live runs.
	RootWork time.Duration
	// Seed is the base seed; repetitions offset it.
	Seed uint64
}

// Quick returns the fast preset used by `go test -bench` and CI.
func Quick() Scale {
	return Scale{
		Reps:             3,
		SimDuration:      8 * time.Second,
		RatePerSubstream: 1000,
		LiveItems:        24000,
		RootWork:         40 * time.Microsecond,
		Seed:             2018,
	}
}

// Full returns the slower preset for paper-style runs (cmd/approxbench
// -full).
func Full() Scale {
	return Scale{
		Reps:             5,
		SimDuration:      40 * time.Second,
		RatePerSubstream: 4000,
		LiveItems:        200000,
		RootWork:         10 * time.Microsecond,
		Seed:             2018,
	}
}

// seedFor derives the seed of repetition r.
func (s Scale) seedFor(r int) uint64 { return s.Seed + uint64(r)*7919 }
