package bench

import (
	"fmt"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/sample"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
)

// AblationHierarchy contrasts hierarchical sampling (every node samples)
// with sampling only at the root — the design choice §II-A motivates:
// root-only sampling wastes all bandwidth and compute spent shipping items
// that are then discarded. Accuracy is statistically equivalent; the
// bandwidth column is the argument.
func AblationHierarchy(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "A1",
		Title:  "Ablation: hierarchical vs root-only sampling (10% fraction)",
		XLabel: "variant",
		YLabel: "see columns",
		Series: []Series{
			{Label: "accuracy loss (%)"},
			{Label: "sampled-segment MB"},
		},
		Notes: "variant 1 = hierarchical (ApproxIoT), variant 2 = root-only",
	}
	src := gaussianMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)

	rootOnly := func(layer, node int, seed uint64) sample.Sampler {
		if layer == topology.Testbed().RootLayer() {
			return core.WHSFactory()(layer, node, seed)
		}
		return sample.Passthrough{}
	}

	for i, factory := range []core.SamplerFactory{core.WHSFactory(), rootOnly} {
		var lossSum, mb float64
		for r := 0; r < scale.Reps; r++ {
			seed := scale.seedFor(r)
			res, err := simFor(sysWHS, 0.1, src(seed), scale, func(c *core.SimConfig) {
				c.Seed = seed
				c.NewSampler = factory
			})
			if err != nil {
				return fig, fmt.Errorf("bench: hierarchy ablation: %w", err)
			}
			lossSum += res.AccuracyLoss(query.Sum) * 100
			mb += float64(sampledSegmentBytes(res.LayerBytes)) / 1e6
		}
		x := float64(i + 1)
		fig.Series[0].Point(x, lossSum/float64(scale.Reps))
		fig.Series[1].Point(x, mb/float64(scale.Reps))
	}
	return fig, nil
}

// AblationAllocator compares the budget-split policies on the most
// unbalanced rate setting (Setting1, 50k:25k:12.5k:625): WaterFill keeps
// the full budget in play, EqualSplit strands the share of small
// sub-streams, Proportional starves them.
func AblationAllocator(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "A2",
		Title:  "Ablation: reservoir allocation policy (Setting1, 60% fraction)",
		XLabel: "policy",
		YLabel: "see columns",
		Series: []Series{
			{Label: "accuracy loss (%)"},
			{Label: "effective fraction (%)"},
		},
		Notes: "policy 1 = WaterFill, 2 = EqualSplit, 3 = Proportional, 4 = Neyman",
	}
	setting := workload.Settings()[0]
	src := settingSources(setting, true, scale, topology.Testbed().Sources)

	allocators := []sample.Allocator{sample.WaterFill{}, sample.EqualSplit{}, sample.Proportional{}, sample.Neyman{}}
	for i, alloc := range allocators {
		alloc := alloc
		var lossSum, fracSum float64
		for r := 0; r < scale.Reps; r++ {
			seed := scale.seedFor(r)
			res, err := simFor(sysWHS, 0.6, src(seed), scale, func(c *core.SimConfig) {
				c.Seed = seed
				c.NewSampler = core.WHSFactory(sample.WithAllocator(alloc))
			})
			if err != nil {
				return fig, fmt.Errorf("bench: allocator ablation: %w", err)
			}
			lossSum += res.AccuracyLoss(query.Sum) * 100
			fracSum += 100 * float64(res.RootObserved) / float64(res.Generated)
		}
		x := float64(i + 1)
		fig.Series[0].Point(x, lossSum/float64(scale.Reps))
		fig.Series[1].Point(x, fracSum/float64(scale.Reps))
	}
	return fig, nil
}

// AblationParallelWorkers sweeps the §III-E worker count: splitting each
// sub-stream's reservoir across w workers removes coordination but each
// worker's smaller reservoir slightly increases estimator variance.
func AblationParallelWorkers(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "A3",
		Title:  "Ablation: §III-E parallel sampling workers (10% fraction)",
		XLabel: "workers",
		YLabel: "accuracy loss (%)",
		Series: []Series{{Label: "ApproxIoT-parallel"}},
	}
	src := gaussianMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		var lossSum float64
		for r := 0; r < scale.Reps; r++ {
			seed := scale.seedFor(r)
			res, err := simFor(sysWHS, 0.1, src(seed), scale, func(c *core.SimConfig) {
				c.Seed = seed
				c.NewSampler = core.ParallelWHSFactory(w)
			})
			if err != nil {
				return fig, fmt.Errorf("bench: worker ablation: %w", err)
			}
			lossSum += res.AccuracyLoss(query.Sum) * 100
		}
		fig.Series[0].Point(float64(w), lossSum/float64(scale.Reps))
	}
	return fig, nil
}

// AblationAlignment probes robustness to interval misalignment: the finer
// the source chunking, the more batches straddle interval boundaries at
// each layer (the Fig. 3 weight-carry case). The estimate must stay
// accurate regardless — Eq. 8 holds per pair, however pairs are split.
func AblationAlignment(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "A4",
		Title:  "Ablation: interval misalignment robustness (10% fraction)",
		XLabel: "chunks/window",
		YLabel: "accuracy loss (%)",
		Series: []Series{{Label: "ApproxIoT"}},
	}
	src := gaussianMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)
	for _, chunks := range []int{1, 2, 8, 32} {
		chunks := chunks
		var lossSum float64
		for r := 0; r < scale.Reps; r++ {
			seed := scale.seedFor(r)
			res, err := simFor(sysWHS, 0.1, src(seed), scale, func(c *core.SimConfig) {
				c.Seed = seed
				c.ChunksPerWindow = chunks
			})
			if err != nil {
				return fig, fmt.Errorf("bench: alignment ablation: %w", err)
			}
			lossSum += res.AccuracyLoss(query.Sum) * 100
		}
		fig.Series[0].Point(float64(chunks), lossSum/float64(scale.Reps))
	}
	return fig, nil
}
