package bench

import (
	"fmt"
	"time"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/topology"
)

// Fig8 reproduces Figure 8: end-to-end latency vs sampling fraction with a
// 1-second window and the datacenter saturated (the paper tuned source
// rates so the native root could not keep up). Native latency is dominated
// by the root's queueing backlog; ApproxIoT's shrinks with the fraction
// because the root only processes the sampled stream — a ~6× speedup at 10%.
func Fig8(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "8",
		Title:  "Latency vs sampling fraction (1s window, saturated root)",
		XLabel: "fraction%",
		YLabel: "latency (s)",
		Series: []Series{{Label: "ApproxIoT"}, {Label: "SRS"}, {Label: "Native"}},
		Notes:  "paper: ~6× speedup at 10% vs native",
	}
	src := gaussianMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)
	// Saturate: the root can service only half the offered native load.
	serviceRate := 4 * scale.RatePerSubstream / 2

	saturate := func(c *core.SimConfig) {
		c.RootServiceRate = serviceRate
		c.Spec.Window = time.Second
		// Saturation latency accumulates over time; give the backlog long
		// enough to dominate the window waits, as in the paper's runs.
		if min := 20 * time.Second; c.Duration < min {
			c.Duration = min
		}
	}
	native, err := simFor(sysNative, 1, src(scale.Seed), scale, saturate)
	if err != nil {
		return fig, fmt.Errorf("bench: fig8 native: %w", err)
	}
	for _, pct := range fractionsWithFullPct {
		f := pct / 100
		whs, err := simFor(sysWHS, f, src(scale.Seed), scale, saturate)
		if err != nil {
			return fig, fmt.Errorf("bench: fig8 WHS: %w", err)
		}
		srs, err := simFor(sysSRS, f, src(scale.Seed), scale, saturate)
		if err != nil {
			return fig, fmt.Errorf("bench: fig8 SRS: %w", err)
		}
		fig.Series[0].Point(pct, whs.Latency.Mean().Seconds())
		fig.Series[1].Point(pct, srs.Latency.Mean().Seconds())
		fig.Series[2].Point(pct, native.Latency.Mean().Seconds())
	}
	return fig, nil
}

// Fig9 reproduces Figure 9: latency vs window size at a fixed 10% fraction.
// ApproxIoT's latency grows with the window (items wait in every edge
// layer's reservoir until the interval closes) while the SRS-based system —
// which needs no window at the edges — stays flat.
func Fig9(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "9",
		Title:  "Latency vs window size (10% fraction)",
		XLabel: "window (s)",
		YLabel: "latency (s)",
		Series: []Series{{Label: "ApproxIoT"}, {Label: "SRS"}},
		Notes:  "paper: ApproxIoT grows with window, SRS flat",
	}
	src := gaussianMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)
	windows := []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	for _, w := range windows {
		w := w
		mutate := func(c *core.SimConfig) {
			c.Spec.Window = w
			if d := 12 * w; c.Duration < d {
				c.Duration = d
			}
		}
		whs, err := simFor(sysWHS, 0.1, src(scale.Seed), scale, mutate)
		if err != nil {
			return fig, fmt.Errorf("bench: fig9 WHS: %w", err)
		}
		srs, err := simFor(sysSRS, 0.1, src(scale.Seed), scale, mutate)
		if err != nil {
			return fig, fmt.Errorf("bench: fig9 SRS: %w", err)
		}
		fig.Series[0].Point(w.Seconds(), whs.Latency.Mean().Seconds())
		fig.Series[1].Point(w.Seconds(), srs.Latency.Mean().Seconds())
	}
	return fig, nil
}
