// Package bench regenerates every figure of the paper's evaluation
// (§V microbenchmarks, §VI case studies) plus the ablations DESIGN.md §7
// calls out. Each FigXX function runs the corresponding experiment on this
// repository's substrates and returns the same series the paper plots;
// cmd/approxbench and the top-level bench_test.go are thin wrappers.
//
// Absolute numbers differ from the paper (its testbed was 25 machines with
// tc-shaped WANs; ours is a simulator plus an in-process pipeline), but the
// shapes the paper claims — who wins, by what factor, where curves bend —
// are asserted in EXPERIMENTS.md and the figure tests.
package bench

import (
	"fmt"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Label string
	// X and Y are parallel; X values are shared across a figure's series
	// in most figures but kept per-series for generality.
	X []float64
	Y []float64
}

// Point appends one (x, y) pair.
func (s *Series) Point(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// At returns the y value for x (NaN-free figures only; -1 if x absent).
func (s *Series) At(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Figure is a reproduced table/figure.
type Figure struct {
	ID     string // "5a", "6", "10c", ...
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// Find returns the series with the given label.
func (f Figure) Find(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// Format renders the figure as an aligned text table, one row per x value,
// one column per series — the form the harness prints.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&b, "  (%s)\n", f.Notes)
	}
	if len(f.Series) == 0 {
		return b.String()
	}

	// Collect the union of x values in first-series order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}

	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.At(x); ok {
				row = append(row, fmt.Sprintf("%.6g", y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "  %-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  [y-axis: %s]\n", f.YLabel)
	return b.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%g", x)
	return s
}

// fractions is the paper's x-axis sweep for the fraction figures (percent).
var fractionsPct = []float64{10, 20, 40, 60, 80, 90}

// fractionsWithFullPct extends the sweep to 100% for the throughput and
// latency figures that include it.
var fractionsWithFullPct = []float64{10, 20, 40, 60, 80, 100}
