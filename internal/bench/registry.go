package bench

import (
	"fmt"
	"sort"
)

// Runner produces one figure at a scale.
type Runner func(Scale) (Figure, error)

// registry maps figure IDs to runners.
var registry = map[string]Runner{
	"5a":  Fig5a,
	"5b":  Fig5b,
	"6":   Fig6,
	"7":   Fig7,
	"8":   Fig8,
	"9":   Fig9,
	"10a": Fig10a,
	"10b": Fig10b,
	"10c": Fig10c,
	"11a": Fig11a,
	"11b": Fig11b,
	"A1":  AblationHierarchy,
	"A2":  AblationAllocator,
	"A3":  AblationParallelWorkers,
	"A4":  AblationAlignment,
}

// IDs returns all known figure IDs, paper figures first, then ablations.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ai, aj := ids[i][0] == 'A', ids[j][0] == 'A'
		if ai != aj {
			return !ai // paper figures before ablations
		}
		return lessFig(ids[i], ids[j])
	})
	return ids
}

func lessFig(a, b string) bool {
	na, sa := splitFig(a)
	nb, sb := splitFig(b)
	if na != nb {
		return na < nb
	}
	return sa < sb
}

func splitFig(id string) (int, string) {
	n := 0
	i := 0
	for i < len(id) && id[i] >= '0' && id[i] <= '9' {
		n = n*10 + int(id[i]-'0')
		i++
	}
	return n, id[i:]
}

// Run executes the runner registered under id.
func Run(id string, scale Scale) (Figure, error) {
	r, ok := registry[id]
	if !ok {
		return Figure{}, fmt.Errorf("bench: unknown figure %q (known: %v)", id, IDs())
	}
	return r(scale)
}
