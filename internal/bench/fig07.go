package bench

import (
	"fmt"

	"github.com/approxiot/approxiot/internal/metrics"
	"github.com/approxiot/approxiot/internal/topology"
)

// Fig7 reproduces Figure 7: network bandwidth saving rate vs sampling
// fraction. Sampling at the edge means the links above the first edge layer
// carry only the sampled fraction, so the saving rate is ≈ 100·(1 − f)% for
// both ApproxIoT and SRS.
func Fig7(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "7",
		Title:  "Bandwidth saving vs sampling fraction",
		XLabel: "fraction%",
		YLabel: "BW saving rate (%)",
		Series: []Series{{Label: "ApproxIoT"}, {Label: "SRS"}},
		Notes:  "paper: saving ≈ 100·(1−f)% on the sampled segments",
	}
	src := gaussianMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)

	// Baseline: native bytes on the sampled segments (layers ≥ 1).
	native, err := simFor(sysNative, 1, src(scale.Seed), scale, nil)
	if err != nil {
		return fig, fmt.Errorf("bench: fig7 native: %w", err)
	}
	baseline := sampledSegmentBytes(native.LayerBytes)

	for _, pct := range fractionsPct {
		f := pct / 100
		whs, err := simFor(sysWHS, f, src(scale.Seed), scale, nil)
		if err != nil {
			return fig, fmt.Errorf("bench: fig7 WHS: %w", err)
		}
		srs, err := simFor(sysSRS, f, src(scale.Seed), scale, nil)
		if err != nil {
			return fig, fmt.Errorf("bench: fig7 SRS: %w", err)
		}
		fig.Series[0].Point(pct, 100*metrics.SavingRate(sampledSegmentBytes(whs.LayerBytes), baseline))
		fig.Series[1].Point(pct, 100*metrics.SavingRate(sampledSegmentBytes(srs.LayerBytes), baseline))
	}
	return fig, nil
}

// sampledSegmentBytes sums link bytes above the first edge layer — the
// segments whose load sampling reduces (the source→edge1 hop necessarily
// carries the full stream).
func sampledSegmentBytes(layerBytes []int64) int64 {
	var total int64
	for l := 1; l < len(layerBytes); l++ {
		total += layerBytes[l]
	}
	return total
}
